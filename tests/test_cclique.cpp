// Tests for the CONGESTED CLIQUE adapter and Corollary 2 algorithms.
#include <gtest/gtest.h>

#include "cclique/cc_mis.hpp"
#include "cclique/clique.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "support/check.hpp"

namespace dmpc::cclique {
namespace {

using graph::Graph;

TEST(Clique, ChargingAccounting) {
  CongestedClique cc(100);
  cc.charge_rounds(3, "x");
  EXPECT_EQ(cc.metrics().rounds(), 3u);
  EXPECT_EQ(cc.metrics().total_communication(), 3u * 100u * 100u);
  cc.charge_lenzen_routing(500, "route");
  EXPECT_EQ(cc.metrics().rounds(), 5u);
}

TEST(Clique, RejectsOverloadedRouting) {
  CongestedClique cc(10);
  EXPECT_THROW(cc.charge_lenzen_routing(101, "too much"), CheckFailure);
}

TEST(Clique, NodeMemoryBound) {
  CongestedClique cc(10);
  EXPECT_NO_THROW(cc.check_node_memory(40, "fits"));
  EXPECT_THROW(cc.check_node_memory(41, "overflow"), CheckFailure);
}

TEST(CcMis, ValidAndDeterministic) {
  const Graph g = graph::random_regular(300, 5, 1);
  const auto a = cc_mis(g);
  const auto b = cc_mis(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, a.in_set));
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.metrics.rounds(), b.metrics.rounds());
}

TEST(CcMis, StructuredFamilies) {
  for (const Graph& g : {graph::cycle(100), graph::grid(10, 10),
                         graph::random_tree(100, 2)}) {
    EXPECT_TRUE(graph::is_maximal_independent_set(g, cc_mis(g).in_set));
  }
}

TEST(CcMis, FasterThanBaseline) {
  // Corollary 2's point: O(log Delta) vs O(log Delta log n) rounds.
  const Graph g = graph::random_regular(512, 4, 3);
  const auto ours = cc_mis(g);
  const auto baseline = cc_mis_censor_hillel(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, ours.in_set));
  EXPECT_TRUE(graph::is_maximal_independent_set(g, baseline.in_set));
  EXPECT_LT(ours.metrics.rounds(), baseline.metrics.rounds());
}

TEST(CcMis, PhaseCompressionKicksInForSmallDelta) {
  const Graph small_delta = graph::random_regular(1024, 3, 4);
  const auto result = cc_mis(small_delta);
  EXPECT_GT(result.phases_per_stage, 1u);
  const Graph big_delta = graph::gnm(128, 4000, 5);
  const auto dense = cc_mis(big_delta);
  EXPECT_TRUE(graph::is_maximal_independent_set(big_delta, dense.in_set));
}

TEST(CcMis, EdgelessGraph) {
  const Graph g = Graph::from_edges(6, {});
  const auto result = cc_mis(g);
  EXPECT_EQ(std::count(result.in_set.begin(), result.in_set.end(), true), 6);
  EXPECT_EQ(result.stages, 0u);
}

TEST(CcMatching, ValidViaLineGraph) {
  const Graph g = graph::random_regular(150, 4, 6);
  const auto result = cc_matching(g);
  EXPECT_TRUE(graph::is_maximal_matching(g, result.matching));
}

}  // namespace
}  // namespace dmpc::cclique
