// OpenMetrics v1.0 text exposition (obs/openmetrics.hpp): golden round trip
// of a fixed registry snapshot, escaping rules, and the every-entry-exactly-
// once property over arbitrary snapshots.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "graph/generators.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/openmetrics.hpp"

namespace dmpc {
namespace {

using obs::MetricKind;
using obs::MetricSection;
using obs::MetricsSnapshot;
using obs::MetricValue;

MetricValue counter(const std::string& name, MetricSection section,
                    std::int64_t value) {
  MetricValue m;
  m.name = name;
  m.section = section;
  m.kind = MetricKind::kCounter;
  m.value = value;
  return m;
}

MetricValue gauge(const std::string& name, MetricSection section,
                  std::int64_t value) {
  MetricValue m;
  m.name = name;
  m.section = section;
  m.kind = MetricKind::kGauge;
  m.value = value;
  return m;
}

MetricValue histogram(const std::string& name, MetricSection section,
                      std::vector<std::uint64_t> bounds,
                      std::vector<std::uint64_t> counts, std::int64_t total,
                      std::int64_t sum) {
  MetricValue m;
  m.name = name;
  m.section = section;
  m.kind = MetricKind::kHistogram;
  m.bounds = std::move(bounds);
  m.counts = std::move(counts);
  m.value = total;
  m.sum = sum;
  return m;
}

TEST(OpenMetrics, GoldenFixedSnapshot) {
  MetricsSnapshot snapshot;
  snapshot.entries.push_back(
      counter("mpc/rounds", MetricSection::kModel, 42));
  snapshot.entries.push_back(
      gauge("storage/bytes_mapped", MetricSection::kHost, 65536));
  snapshot.entries.push_back(histogram(
      "exec/batch", MetricSection::kHost, {1, 8}, {3, 2, 1}, 6, 19));
  const std::string expected =
      "# TYPE dmpc_mpc_rounds counter\n"
      "# HELP dmpc_mpc_rounds dmpc registry metric mpc/rounds\n"
      "dmpc_mpc_rounds_total{section=\"model\"} 42\n"
      "# TYPE dmpc_storage_bytes_mapped gauge\n"
      "# HELP dmpc_storage_bytes_mapped dmpc registry metric "
      "storage/bytes_mapped\n"
      "dmpc_storage_bytes_mapped{section=\"host\"} 65536\n"
      "# TYPE dmpc_exec_batch histogram\n"
      "# HELP dmpc_exec_batch dmpc registry metric exec/batch\n"
      "dmpc_exec_batch_bucket{section=\"host\",le=\"1\"} 3\n"
      "dmpc_exec_batch_bucket{section=\"host\",le=\"8\"} 5\n"
      "dmpc_exec_batch_bucket{section=\"host\",le=\"+Inf\"} 6\n"
      "dmpc_exec_batch_count{section=\"host\"} 6\n"
      "dmpc_exec_batch_sum{section=\"host\"} 19\n"
      "# EOF\n";
  EXPECT_EQ(obs::to_openmetrics(snapshot), expected);
}

TEST(OpenMetrics, EmptySnapshotIsJustEof) {
  EXPECT_EQ(obs::to_openmetrics(MetricsSnapshot{}), "# EOF\n");
}

TEST(OpenMetrics, CounterFamilyStripsPreexistingTotalSuffix) {
  MetricsSnapshot snapshot;
  snapshot.entries.push_back(
      counter("exec/tasks_total", MetricSection::kHost, 7));
  const std::string text = obs::to_openmetrics(snapshot);
  // The family must not end in _total; the sample carries it exactly once.
  EXPECT_NE(text.find("# TYPE dmpc_exec_tasks counter\n"), std::string::npos);
  EXPECT_NE(text.find("dmpc_exec_tasks_total{section=\"host\"} 7\n"),
            std::string::npos);
  EXPECT_EQ(text.find("_total_total"), std::string::npos);
}

TEST(OpenMetrics, NameSanitizationAndCollisionSuffix) {
  MetricsSnapshot snapshot;
  snapshot.entries.push_back(gauge("a/b", MetricSection::kModel, 1));
  snapshot.entries.push_back(gauge("a_b", MetricSection::kModel, 2));
  snapshot.entries.push_back(gauge("a-b", MetricSection::kModel, 3));
  const std::string text = obs::to_openmetrics(snapshot);
  // All three sanitize to dmpc_a_b; later entries get numeric suffixes so
  // every registry entry renders as its own family.
  EXPECT_NE(text.find("dmpc_a_b{section=\"model\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("dmpc_a_b_2{section=\"model\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("dmpc_a_b_3{section=\"model\"} 3\n"), std::string::npos);
}

TEST(OpenMetrics, LabelEscaping) {
  EXPECT_EQ(obs::openmetrics_escape_label("plain"), "plain");
  EXPECT_EQ(obs::openmetrics_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::openmetrics_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::openmetrics_escape_label("a\nb"), "a\\nb");
  // UTF-8 passes through byte-exactly (values are UTF-8 per the spec).
  EXPECT_EQ(obs::openmetrics_escape_label("r\xC3\xA9sum\xC3\xA9"),
            "r\xC3\xA9sum\xC3\xA9");
}

TEST(OpenMetrics, HelpEscaping) {
  // HELP escapes backslash and newline but NOT double quotes.
  EXPECT_EQ(obs::openmetrics_escape_help("a\"b"), "a\"b");
  EXPECT_EQ(obs::openmetrics_escape_help("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::openmetrics_escape_help("a\nb"), "a\\nb");
}

TEST(OpenMetrics, MetricNamePrefixAndCharset) {
  EXPECT_EQ(obs::openmetrics_metric_name("mpc/rounds"), "dmpc_mpc_rounds");
  EXPECT_EQ(obs::openmetrics_metric_name("weird name-1!"),
            "dmpc_weird_name_1_");
  const std::string name = obs::openmetrics_metric_name("\xFF\x01");
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    EXPECT_TRUE(ok) << "invalid byte in metric name: " << int(c);
  }
}

// Property: every registry entry appears exactly once as a family with a
// valid name, in snapshot (registration) order, and the exposition ends
// with the mandatory EOF marker.
TEST(OpenMetrics, EveryEntryRendersExactlyOnce) {
  const auto g = graph::gnm(200, 800, 3);
  SolveOptions options;
  options.profile = true;
  const Solver solver(options);
  (void)solver.mis(g);
  const MetricsSnapshot snapshot = solver.metrics_snapshot();
  ASSERT_FALSE(snapshot.entries.empty());
  const std::string text = solver.metrics_openmetrics();

  std::size_t type_lines = 0;
  std::istringstream lines(text);
  std::string line;
  std::vector<std::string> families;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) != 0) continue;
    ++type_lines;
    const std::string rest = line.substr(7);
    families.push_back(rest.substr(0, rest.find(' ')));
  }
  // One TYPE line per registry entry — nothing dropped, nothing doubled.
  EXPECT_EQ(type_lines, snapshot.entries.size());
  for (std::size_t i = 0; i < families.size(); ++i) {
    const std::string& family = families[i];
    EXPECT_EQ(family.rfind("dmpc_", 0), 0u) << family;
    for (char c : family) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      EXPECT_TRUE(ok) << "invalid byte in family " << family;
    }
    // Counters must not leak the sample suffix into the family name.
    if (snapshot.entries[i].kind == MetricKind::kCounter) {
      EXPECT_FALSE(family.size() >= 6 &&
                   family.compare(family.size() - 6, 6, "_total") == 0)
          << family;
    }
    for (std::size_t j = i + 1; j < families.size(); ++j) {
      EXPECT_NE(family, families[j]) << "family rendered twice";
    }
  }
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, SolverExpositionCarriesModelCounters) {
  const auto g = graph::gnm(200, 800, 4);
  const Solver solver{SolveOptions{}};
  (void)solver.mis(g);
  const std::string text = solver.metrics_openmetrics();
  EXPECT_NE(text.find("dmpc_mpc_rounds_total{section=\"model\"}"),
            std::string::npos);
  EXPECT_NE(text.find("# EOF\n"), std::string::npos);
}

}  // namespace
}  // namespace dmpc
