// Golden determinism tests: exact expected outputs on small fixed inputs.
// These pin the algorithms' observable behavior — an unintended change to
// seed enumeration, tie-breaking, or window sizing shows up here first.
// If a deliberate algorithm change breaks them, re-record the goldens and
// say so in the commit.
#include <gtest/gtest.h>

#include "api/solver.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"

namespace dmpc {
namespace {

using graph::Graph;

std::vector<std::uint32_t> mis_members(const std::vector<bool>& in_set) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < in_set.size(); ++v) {
    if (in_set[v]) out.push_back(v);
  }
  return out;
}

TEST(Golden, PetersenLikeFixedGraph) {
  // Petersen graph: outer 5-cycle, inner pentagram, spokes.
  const Graph g = Graph::from_edges(
      10, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},   // outer
           {5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5},   // inner
           {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}); // spokes
  const auto mis = Solver().mis(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, mis.in_set));
  // Golden output (recorded): deterministic forever. Petersen's maximum
  // independent set size is 4 and the solver finds one.
  EXPECT_EQ(mis_members(mis.in_set),
            (std::vector<std::uint32_t>{2, 4, 5, 6}));
  const auto mm = Solver().maximal_matching(g);
  EXPECT_TRUE(graph::is_maximal_matching(g, mm.matching));
  EXPECT_EQ(mm.matching.size(), 5u);  // Petersen has a perfect matching
}

TEST(Golden, FixedGnmRunsAreStable) {
  const Graph g = graph::gnm(64, 256, 123);
  const auto a = Solver().mis(g);
  const auto b = Solver().mis(g);
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.report.metrics.rounds(), b.report.metrics.rounds());
  EXPECT_EQ(a.report.metrics.total_communication(),
            b.report.metrics.total_communication());
  // The generator itself is a fixed function of its seed.
  const Graph h = graph::gnm(64, 256, 123);
  EXPECT_EQ(g.edges(), h.edges());
}

TEST(Golden, CycleSixExact) {
  const Graph g = graph::cycle(6);
  const auto mis = Solver().mis(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, mis.in_set));
  const auto members = mis_members(mis.in_set);
  // C6 maximal independent sets have size 2 or 3; record the exact pick.
  EXPECT_EQ(members.size(), 3u);
  EXPECT_EQ(members, (std::vector<std::uint32_t>{0, 2, 4}));
}

TEST(Golden, MatchingOutputsSortedAndUnique) {
  const Graph g = graph::gnm(128, 512, 9);
  const auto mm = Solver().maximal_matching(g);
  auto sorted = mm.matching;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
}

}  // namespace
}  // namespace dmpc
