// Tests for the deterministic MIS pipeline (§4, Theorem 14).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "mis/det_mis.hpp"

namespace dmpc::mis {
namespace {

using graph::Graph;

TEST(DetMis, ValidOnRandomGraphs) {
  for (std::uint64_t seed : {1, 2}) {
    const Graph g = graph::gnm(256, 2048, seed);
    const auto result = det_mis(g, DetMisConfig{});
    EXPECT_TRUE(graph::is_maximal_independent_set(g, result.in_set));
  }
}

TEST(DetMis, DeterministicAcrossRuns) {
  const Graph g = graph::gnm(200, 1600, 3);
  const auto a = det_mis(g, DetMisConfig{});
  const auto b = det_mis(g, DetMisConfig{});
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.metrics.rounds(), b.metrics.rounds());
}

TEST(DetMis, StructuredFamilies) {
  for (const Graph& g :
       {graph::cycle(64), graph::path(64), graph::star(63),
        graph::complete(32), graph::complete_bipartite(16, 16),
        graph::grid(8, 8)}) {
    const auto result = det_mis(g, DetMisConfig{});
    EXPECT_TRUE(graph::is_maximal_independent_set(g, result.in_set));
  }
}

TEST(DetMis, CompleteGraphPicksExactlyOne) {
  const Graph g = graph::complete(40);
  const auto result = det_mis(g, DetMisConfig{});
  EXPECT_EQ(std::count(result.in_set.begin(), result.in_set.end(), true), 1);
}

TEST(DetMis, IsolatedNodesAllJoin) {
  const Graph g = Graph::from_edges(6, {{0, 1}});
  const auto result = det_mis(g, DetMisConfig{});
  for (graph::NodeId v = 2; v < 6; ++v) EXPECT_TRUE(result.in_set[v]);
  EXPECT_TRUE(result.in_set[0] != result.in_set[1]);
}

TEST(DetMis, ReportsShowProgress) {
  const Graph g = graph::gnm(256, 2048, 5);
  const auto result = det_mis(g, DetMisConfig{});
  ASSERT_EQ(result.reports.size(), result.iterations);
  for (const auto& r : result.reports) {
    EXPECT_LT(r.edges_after, r.edges_before);
    EXPECT_GT(r.independent_added, 0u);
  }
  EXPECT_EQ(result.reports.back().edges_after, 0u);
}

TEST(DetMis, IterationsLogarithmic) {
  const Graph g = graph::gnm(1024, 8192, 6);
  const auto result = det_mis(g, DetMisConfig{});
  const double log_m = std::log2(static_cast<double>(g.num_edges()) + 1.0);
  EXPECT_LE(result.iterations, static_cast<std::uint64_t>(12 * log_m) + 12);
}

TEST(DetMis, PowerLawAndLopsided) {
  const Graph pl = graph::power_law(400, 2400, 2.5, 7);
  EXPECT_TRUE(graph::is_maximal_independent_set(
      pl, det_mis(pl, DetMisConfig{}).in_set));
  const Graph lop = graph::lopsided(4, 40, 100, 200, 8);
  EXPECT_TRUE(graph::is_maximal_independent_set(
      lop, det_mis(lop, DetMisConfig{}).in_set));
}

TEST(DetMis, SpaceWithinBudget) {
  const Graph g = graph::gnm(512, 4096, 9);
  DetMisConfig config;
  const auto cc = cluster_config_for(config, g.num_nodes(), g.num_edges());
  const auto result = det_mis(g, config);
  EXPECT_LE(result.metrics.peak_machine_load(), cc.machine_space);
}

TEST(DetMis, TinyGraphs) {
  const Graph empty = Graph::from_edges(4, {});
  const auto result = det_mis(empty, DetMisConfig{});
  EXPECT_EQ(std::count(result.in_set.begin(), result.in_set.end(), true), 4);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(DetMis, EpsVariants) {
  const Graph g = graph::gnm(256, 2048, 10);
  for (double eps : {0.3, 0.5, 0.7}) {
    DetMisConfig config;
    config.eps = eps;
    const auto result = det_mis(g, config);
    EXPECT_TRUE(graph::is_maximal_independent_set(g, result.in_set));
  }
}

}  // namespace
}  // namespace dmpc::mis
