// Unit tests for the core graph type, builder, validators, and IO.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/validate.hpp"
#include "support/check.hpp"

namespace dmpc::graph {
namespace {

Graph triangle_plus_pendant() {
  // 0-1, 1-2, 0-2 triangle; 2-3 pendant.
  return Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

TEST(Graph, BasicAccessors) {
  const Graph g = triangle_plus_pendant();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, NeighborsSortedAndAligned) {
  const Graph g = triangle_plus_pendant();
  auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 1u);
  EXPECT_EQ(nb[2], 3u);
  auto inc = g.incident_edges(2);
  for (std::size_t i = 0; i < nb.size(); ++i) {
    const Edge& e = g.edge(inc[i]);
    EXPECT_TRUE(e.u == 2 || e.v == 2);
    EXPECT_EQ(g.other_endpoint(inc[i], 2), nb[i]);
  }
}

TEST(Graph, CanonicalEdgeOrder) {
  const Graph g = Graph::from_edges(3, {{2, 1}, {1, 0}});
  EXPECT_EQ(g.edge(0).u, 0u);
  EXPECT_EQ(g.edge(0).v, 1u);
  EXPECT_EQ(g.edge(1).u, 1u);
  EXPECT_EQ(g.edge(1).v, 2u);
}

TEST(Graph, DuplicatesCollapse) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, RejectsSelfLoopsAndOutOfRange) {
  EXPECT_THROW(Graph::from_edges(3, {{1, 1}}), CheckFailure);
  EXPECT_THROW(Graph::from_edges(3, {{0, 3}}), CheckFailure);
}

TEST(Graph, FindEdge) {
  const Graph g = triangle_plus_pendant();
  EXPECT_NE(g.find_edge(0, 1), kNoEdge);
  EXPECT_EQ(g.find_edge(0, 1), g.find_edge(1, 0));
  EXPECT_EQ(g.find_edge(0, 3), kNoEdge);
  EXPECT_EQ(g.find_edge(0, 0), kNoEdge);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(5, {});
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Graph, AliveHelpers) {
  const Graph g = triangle_plus_pendant();
  std::vector<bool> alive(4, true);
  EXPECT_EQ(alive_edge_count(g, alive), 4u);
  EXPECT_EQ(alive_max_degree(g, alive), 3u);
  alive[2] = false;  // removes 3 edges
  EXPECT_EQ(alive_edge_count(g, alive), 1u);
  const auto deg = alive_degrees(g, alive);
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[1], 1u);
  EXPECT_EQ(deg[2], 0u);
  EXPECT_EQ(deg[3], 0u);
}

TEST(Graph, MaskedDegrees) {
  const Graph g = triangle_plus_pendant();
  std::vector<bool> mask(g.num_edges(), false);
  mask[g.find_edge(0, 1)] = true;
  mask[g.find_edge(2, 3)] = true;
  const auto deg = masked_degrees(g, mask);
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[1], 1u);
  EXPECT_EQ(deg[2], 1u);
  EXPECT_EQ(deg[3], 1u);
}

TEST(Builder, TryAddFiltersInvalid) {
  GraphBuilder b(3);
  EXPECT_FALSE(b.try_add_edge(0, 0));
  EXPECT_FALSE(b.try_add_edge(0, 5));
  EXPECT_TRUE(b.try_add_edge(0, 2));
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Validate, IndependentSet) {
  const Graph g = triangle_plus_pendant();
  EXPECT_TRUE(is_independent_set(g, {true, false, false, true}));
  EXPECT_FALSE(is_independent_set(g, {true, true, false, false}));
  EXPECT_TRUE(is_maximal_independent_set(g, {true, false, false, true}));
  // {0} alone: node 3 is not dominated.
  EXPECT_FALSE(is_maximal_independent_set(g, {true, false, false, false}));
  // {1, 3} is independent and maximal (0 and 2 dominated).
  EXPECT_TRUE(is_maximal_independent_set(g, {false, true, false, true}));
}

TEST(Validate, Matching) {
  const Graph g = triangle_plus_pendant();
  const EdgeId e01 = g.find_edge(0, 1);
  const EdgeId e23 = g.find_edge(2, 3);
  const EdgeId e02 = g.find_edge(0, 2);
  EXPECT_TRUE(is_matching(g, {e01, e23}));
  EXPECT_FALSE(is_matching(g, {e01, e02}));  // share node 0
  EXPECT_TRUE(is_maximal_matching(g, {e01, e23}));
  EXPECT_FALSE(is_maximal_matching(g, {e01}));  // edge 2-3 uncovered
  EXPECT_FALSE(is_matching(g, {static_cast<EdgeId>(99)}));
}

TEST(Validate, Coloring) {
  const Graph g = triangle_plus_pendant();
  EXPECT_TRUE(is_proper_coloring(g, {0, 1, 2, 0}));
  EXPECT_FALSE(is_proper_coloring(g, {0, 1, 0, 1}));
  // Distance-2: nodes 0 and 3 share neighbor 2, so equal colors fail.
  EXPECT_FALSE(is_distance2_coloring(g, {0, 1, 2, 0}));
  EXPECT_TRUE(is_distance2_coloring(g, {0, 1, 2, 3}));
}

TEST(Validate, MatchedNodes) {
  const Graph g = triangle_plus_pendant();
  const auto covered = matched_nodes(g, {g.find_edge(2, 3)});
  EXPECT_FALSE(covered[0]);
  EXPECT_FALSE(covered[1]);
  EXPECT_TRUE(covered[2]);
  EXPECT_TRUE(covered[3]);
}

TEST(Io, RoundTrip) {
  const Graph g = triangle_plus_pendant();
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge(e), g.edge(e));
  }
}

TEST(Io, CommentsAndHeader) {
  std::stringstream ss("# comment\n4 2\n0 1\n2 3 # trailing\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, RejectsMalformed) {
  std::stringstream empty("");
  EXPECT_THROW(read_edge_list(empty), CheckFailure);
  std::stringstream bad("3 1\n0\n");
  EXPECT_THROW(read_edge_list(bad), CheckFailure);
  std::stringstream out_of_range("2 1\n0 5\n");
  EXPECT_THROW(read_edge_list(out_of_range), CheckFailure);
}

}  // namespace
}  // namespace dmpc::graph
