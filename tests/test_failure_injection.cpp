// Failure-injection tests: the library must *fail loudly* when the model's
// premises are violated — space limits, malformed inputs, impossible
// configurations — rather than silently degrade.
#include <gtest/gtest.h>

#include <string>

#include "api/solver.hpp"
#include "graph/generators.hpp"
#include "lowdeg/lowdeg_solver.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"
#include "mpc/cluster.hpp"
#include "mpc/lowlevel.hpp"
#include "support/check.hpp"

namespace dmpc {
namespace {

using graph::Graph;

/// Provision a pinned-geometry cluster through the Solver facade (hand-built
/// mpc::ClusterConfig at call sites is deprecated).
mpc::Cluster pinned_cluster(std::uint64_t machine_space,
                            std::uint64_t num_machines,
                            bool enforce_space = true) {
  SolveOptions options;
  options.cluster.machine_space = machine_space;
  options.cluster.num_machines = num_machines;
  options.cluster.enforce_space = enforce_space;
  return Solver(options).cluster(/*n=*/2, /*m=*/0);
}

TEST(FailureInjection, UndersizedClusterRejectsMatchingPipeline) {
  // A cluster provisioned for a toy graph cannot run a bigger one: the
  // 2-hop gather (or a block layout) must trip the space check — and the
  // failure message must name the machine, the measured load, and the limit.
  const Graph big = graph::gnm(2048, 16384, 1);
  auto cluster = pinned_cluster(/*machine_space=*/64, /*num_machines=*/4096);
  matching::DetMatchingConfig config;
  try {
    matching::det_maximal_matching(cluster, big, config);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("machine="), std::string::npos) << message;
    EXPECT_NE(message.find("measured="), std::string::npos) << message;
    EXPECT_NE(message.find("limit=64"), std::string::npos) << message;
  }
}

TEST(FailureInjection, UndersizedClusterRejectsMisPipeline) {
  // The MIS pipeline's per-machine needs are modest (N_v windows are tiny),
  // so it takes a severely undersized cluster to trip: 16-word machines
  // cannot even hold the blocked edge layout.
  const Graph big = graph::gnm(2048, 16384, 2);
  auto cluster = pinned_cluster(/*machine_space=*/16, /*num_machines=*/1024);
  mis::DetMisConfig config;
  try {
    mis::det_mis(cluster, big, config);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("measured="), std::string::npos) << message;
    EXPECT_NE(message.find("limit=16"), std::string::npos) << message;
  }
}

TEST(FailureInjection, LowDegPipelineRejectsHighDegreeInput) {
  // Forcing the low-degree path on a hub graph must hit the 2-hop space
  // check rather than produce wrong output.
  const Graph hub = graph::star(4000);
  auto cluster = pinned_cluster(/*machine_space=*/256, /*num_machines=*/4096);
  EXPECT_THROW(lowdeg::lowdeg_mis(cluster, hub, lowdeg::LowDegConfig{}),
               CheckFailure);
}

TEST(FailureInjection, AutoDispatchAvoidsTheTrap) {
  // The same hub graph through the façade dispatches to the general
  // pipeline and succeeds.
  const Graph hub = graph::star(4000);
  EXPECT_EQ(Solver().mis(hub).report.algorithm_used, "sparsification");
}

TEST(FailureInjection, SpaceDisabledAblationRuns) {
  // With enforcement off, the undersized run completes (that is what the
  // E11 ablation measures) — the peak load records the violation instead.
  const Graph big = graph::gnm(1024, 8192, 3);
  auto cluster = pinned_cluster(/*machine_space=*/64, /*num_machines=*/4096,
                                /*enforce_space=*/false);
  matching::DetMatchingConfig config;
  const auto result = matching::det_maximal_matching(cluster, big, config);
  EXPECT_FALSE(result.matching.empty());
  EXPECT_GT(cluster.metrics().peak_machine_load(), 64u);
}

TEST(FailureInjection, LowLevelSortRejectsOversubscription) {
  auto cluster = pinned_cluster(/*machine_space=*/32, /*num_machines=*/4096);
  // 5000 tagged keys need far more than S/2 machines at S = 32.
  std::vector<mpc::Word> items(5000, 1);
  EXPECT_THROW(mpc::lowlevel::sort(cluster, items), CheckFailure);
}

TEST(FailureInjection, BadConfigsRejected) {
  EXPECT_THROW(mpc::Cluster(mpc::ClusterConfig{.machine_space = 1}),
               CheckFailure);
  EXPECT_THROW(mpc::ClusterConfig::for_input(100, 0.0, 1000), CheckFailure);
  EXPECT_THROW(mpc::ClusterConfig::for_input(100, 1.5, 1000), CheckFailure);
}

TEST(FailureInjection, IterationCapTrips) {
  const Graph g = graph::gnm(256, 2048, 4);
  matching::DetMatchingConfig config;
  config.max_iterations = 1;  // cannot finish in one iteration
  EXPECT_THROW(matching::det_maximal_matching(g, config), CheckFailure);
}

}  // namespace
}  // namespace dmpc
