// Property tests for the batched field kernels (field/batch_eval.hpp).
//
// The contract under test: poly_eval_many and PowerTable::eval return the
// exact canonical residues Modulus::poly_eval computes, bit for bit, on
// every supported dispatch path (scalar always; AVX2/NEON where the host
// has them), for every modulus class the kernels specialize on — the
// Mersenne prime 2^61 - 1 (limb-split lanes), small primes < 2^32 (Shoup
// lanes), and large non-Mersenne primes (scalar Shoup) — including
// degenerate counts (0, 1, non-multiples of the lane width) and unreduced
// inputs.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "field/batch_eval.hpp"
#include "field/modulus.hpp"
#include "support/rng.hpp"

namespace dmpc::field {
namespace {

// Representatives of every specialization: tiny (p = 2), small Shoup lanes
// (97, 65537, largest 32-bit prime), Mersenne-61, and a 62-bit prime that
// exercises the scalar Shoup fallback on every dispatch.
const std::uint64_t kModuli[] = {2,           97,
                                 65537,       4294967291ULL,
                                 kMersenne61, 2305843009213693907ULL};

const std::size_t kCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 33, 1000};

/// Forces `dispatch` for the lifetime of the scope.
class ScopedDispatch {
 public:
  explicit ScopedDispatch(BatchDispatch dispatch) {
    set_batch_dispatch(dispatch);
  }
  ~ScopedDispatch() { reset_batch_dispatch(); }
};

TEST(BatchEval, HornerMatchesPolyEvalOnEveryDispatchAndModulus) {
  Rng rng(0xB47C11ED5EEDULL);
  for (const auto dispatch : supported_batch_dispatches()) {
    ScopedDispatch forced(dispatch);
    for (const std::uint64_t p : kModuli) {
      const Modulus mod(p);
      for (std::size_t k = 1; k <= 6; ++k) {
        std::vector<std::uint64_t> coeffs(k);
        for (auto& c : coeffs) c = rng.next_u64();  // unreduced on purpose
        for (const std::size_t count : kCounts) {
          std::vector<std::uint64_t> xs(count);
          for (auto& x : xs) x = rng.next_u64();
          std::vector<std::uint64_t> out(count, 0xFEEDFACE);
          poly_eval_many(mod, coeffs.data(), k, xs.data(), count, out.data());
          for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(out[i], mod.poly_eval(coeffs, mod.reduce(xs[i])))
                << "dispatch=" << batch_dispatch_name(dispatch) << " p=" << p
                << " k=" << k << " count=" << count << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(BatchEval, PowerTableMatchesPolyEvalOnEveryDispatchAndModulus) {
  Rng rng(0x70B1E5EEDULL);
  for (const auto dispatch : supported_batch_dispatches()) {
    ScopedDispatch forced(dispatch);
    for (const std::uint64_t p : kModuli) {
      const Modulus mod(p);
      for (unsigned k = 1; k <= 6; ++k) {
        for (const std::size_t count : kCounts) {
          std::vector<std::uint64_t> xs(count);
          for (auto& x : xs) x = rng.next_u64();
          PowerTable table;
          table.build(mod, xs.data(), count, k);
          EXPECT_EQ(table.count(), count);
          EXPECT_EQ(table.k(), k);
          EXPECT_EQ(table.p(), p);
          std::vector<std::uint64_t> coeffs(k);
          for (auto& c : coeffs) c = rng.next_u64();
          std::vector<std::uint64_t> out(count, 0xFEEDFACE);
          table.eval(coeffs.data(), out.data());
          for (std::size_t i = 0; i < count; ++i) {
            ASSERT_EQ(out[i], mod.poly_eval(coeffs, mod.reduce(xs[i])))
                << "dispatch=" << batch_dispatch_name(dispatch) << " p=" << p
                << " k=" << k << " count=" << count << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(BatchEval, DispatchPathsAgreeBitForBit) {
  // Cross-check the paths against each other (not just against the scalar
  // reference): identical outputs for identical inputs on every path.
  Rng rng(0xD15BA7C4ULL);
  const std::size_t count = 257;  // deliberately not a lane multiple
  for (const std::uint64_t p : kModuli) {
    const Modulus mod(p);
    std::vector<std::uint64_t> xs(count);
    for (auto& x : xs) x = rng.next_u64();
    std::vector<std::uint64_t> coeffs(4);
    for (auto& c : coeffs) c = rng.next_u64();
    std::vector<std::vector<std::uint64_t>> results;
    for (const auto dispatch : supported_batch_dispatches()) {
      ScopedDispatch forced(dispatch);
      std::vector<std::uint64_t> out(count);
      poly_eval_many(mod, coeffs.data(), coeffs.size(), xs.data(), count,
                     out.data());
      results.push_back(std::move(out));
    }
    for (std::size_t d = 1; d < results.size(); ++d) {
      EXPECT_EQ(results[d], results[0]) << "p=" << p << " dispatch index "
                                        << d;
    }
  }
}

TEST(BatchEval, DispatchControls) {
  // Scalar is always supported and forceable; the supported list leads with
  // it; reset returns to the environment/host default.
  const auto supported = supported_batch_dispatches();
  ASSERT_FALSE(supported.empty());
  EXPECT_EQ(supported.front(), BatchDispatch::kScalar);
  const auto ambient = batch_dispatch();
  set_batch_dispatch(BatchDispatch::kScalar);
  EXPECT_EQ(batch_dispatch(), BatchDispatch::kScalar);
  EXPECT_STREQ(batch_dispatch_name(BatchDispatch::kScalar), "scalar");
  EXPECT_STREQ(batch_dispatch_name(BatchDispatch::kAvx2), "avx2");
  EXPECT_STREQ(batch_dispatch_name(BatchDispatch::kNeon), "neon");
  reset_batch_dispatch();
  EXPECT_EQ(batch_dispatch(), ambient);
}

TEST(BatchEval, EmptyAndDegenerateTables) {
  const Modulus mod(65537);
  PowerTable table;
  table.build(mod, nullptr, 0, 4);
  std::uint64_t sentinel = 42;
  const std::uint64_t coeffs[4] = {1, 2, 3, 4};
  table.eval(coeffs, &sentinel);  // count == 0: must not write
  EXPECT_EQ(sentinel, 42u);

  // k == 1: constant polynomial, no power columns.
  const std::uint64_t xs[3] = {5, 70000, 123};
  PowerTable constant;
  constant.build(mod, xs, 3, 1);
  std::uint64_t out[3];
  const std::uint64_t c0[1] = {70001};
  constant.eval(c0, out);
  for (const auto v : out) EXPECT_EQ(v, 70001u % 65537u);
}

}  // namespace
}  // namespace dmpc::field
