// Tests for the round profiler (obs/profiler.hpp): integer-exact Gini,
// window/commit semantics, ring eviction, top-k attribution, registry
// export, the report JSON profile block (profiled schema version behind
// SolveOptions::profile, 4 without), and host-side scope accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/report_json.hpp"
#include "api/solver.hpp"
#include "graph/generators.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "support/json.hpp"

namespace dmpc {
namespace {

constexpr std::uint64_t kAnyMachine = ~0ull;

// ---- Gini ----

TEST(Gini, DegenerateInputsAreZero) {
  EXPECT_EQ(obs::gini_ppm({}), 0u);
  EXPECT_EQ(obs::gini_ppm({42}), 0u);
  EXPECT_EQ(obs::gini_ppm({0, 0, 0}), 0u);
  EXPECT_EQ(obs::gini_ppm({7, 7, 7, 7}), 0u);
}

TEST(Gini, ExactSmallCases) {
  // {0, 10}: sum |x_i - x_j| = 10; n * sum = 20 -> 500000 ppm.
  EXPECT_EQ(obs::gini_ppm({0, 10}), 500000u);
  EXPECT_EQ(obs::gini_ppm({10, 0}), 500000u);  // sorts its argument
  // {10, 20, 30}: pairwise diffs 10+20+10 = 40; n * sum = 180.
  EXPECT_EQ(obs::gini_ppm({10, 20, 30}), 40ull * 1000000 / 180);
  // All mass on one of n slots approaches (n-1)/n.
  EXPECT_EQ(obs::gini_ppm({100, 0, 0, 0}), 750000u);
}

TEST(Gini, LargeValuesDoNotOverflow) {
  // Values near 2^32 with n = 1000 exceed 64-bit in the pair-sum
  // intermediate; the implementation must stay exact (__int128).
  std::vector<std::uint64_t> samples(1000, 0);
  samples[0] = 1ull << 40;
  // One loaded slot of n: gini = (n-1)/n exactly.
  EXPECT_EQ(obs::gini_ppm(samples), 999ull * 1000000 / 1000);
}

// ---- RoundProfiler windows ----

TEST(RoundProfiler, CommitFoldsWindowIntoRecord) {
  obs::RoundProfiler profiler;
  profiler.observe_load(10, 0);
  profiler.observe_load(30, 2);
  profiler.observe_load(20, kAnyMachine);
  profiler.commit("alpha", /*round_end=*/5, /*rounds=*/1,
                  /*total_communication=*/60);

  const auto snap = profiler.snapshot();
  ASSERT_EQ(snap.ring.size(), 1u);
  const auto& r = snap.ring[0];
  EXPECT_EQ(r.label, "alpha");
  EXPECT_EQ(r.round_begin, 0u);
  EXPECT_EQ(r.round_end, 5u);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.comm_words, 60u);
  EXPECT_EQ(r.load_count, 3u);
  EXPECT_EQ(r.load_sum, 60u);
  EXPECT_EQ(r.load_max, 30u);
  EXPECT_EQ(r.mean_load, 20u);
  EXPECT_EQ(r.attributed, 2u);  // kAnyMachine does not count
  EXPECT_EQ(r.gini_ppm, obs::gini_ppm({10, 30, 20}));
  // Top entries: words descending; kAnyMachine serializes as machine -1.
  ASSERT_EQ(r.top.size(), 3u);
  EXPECT_EQ(r.top[0].words, 30u);
  EXPECT_EQ(r.top[0].machine, 2);
  EXPECT_EQ(r.top[1].words, 20u);
  EXPECT_EQ(r.top[1].machine, -1);
  EXPECT_EQ(r.top[2].words, 10u);
  EXPECT_EQ(r.top[2].machine, 0);

  EXPECT_EQ(snap.load_max, 30u);
  EXPECT_EQ(snap.gini_max_ppm, r.gini_ppm);
  ASSERT_EQ(snap.by_label.count("alpha"), 1u);
  EXPECT_EQ(snap.by_label.at("alpha").records, 1u);
  EXPECT_EQ(snap.by_label.at("alpha").load_sum, 60u);
}

TEST(RoundProfiler, WindowsTileTheRoundAndCommAxes) {
  obs::RoundProfiler profiler;
  profiler.observe_load(4, 1);
  profiler.commit("a", 3, 3, 100);
  // Empty window: the commit still records the round/comm deltas.
  profiler.commit("b", 5, 2, 140);

  const auto snap = profiler.snapshot();
  ASSERT_EQ(snap.ring.size(), 2u);
  EXPECT_EQ(snap.ring[0].round_begin, 0u);
  EXPECT_EQ(snap.ring[0].round_end, 3u);
  EXPECT_EQ(snap.ring[0].comm_words, 100u);
  EXPECT_EQ(snap.ring[1].round_begin, 3u);
  EXPECT_EQ(snap.ring[1].round_end, 5u);
  EXPECT_EQ(snap.ring[1].rounds, 2u);
  EXPECT_EQ(snap.ring[1].comm_words, 40u);
  EXPECT_EQ(snap.ring[1].load_count, 0u);
  EXPECT_EQ(snap.ring[1].gini_ppm, 0u);
}

TEST(RoundProfiler, RingEvictsOldestButTotalsCoverEverything) {
  obs::RoundProfiler profiler(/*ring_capacity=*/2);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    profiler.observe_load(i, i);
    profiler.commit("x", i, 1, 10 * i);
  }
  const auto snap = profiler.snapshot();
  EXPECT_EQ(snap.records_committed, 5u);
  EXPECT_EQ(snap.records_dropped, 3u);
  ASSERT_EQ(snap.ring.size(), 2u);
  EXPECT_EQ(snap.ring[0].round_end, 4u);  // oldest retained
  EXPECT_EQ(snap.ring[1].round_end, 5u);
  // by_label still covers the evicted records.
  EXPECT_EQ(snap.by_label.at("x").records, 5u);
  EXPECT_EQ(snap.by_label.at("x").load_sum, 1u + 2 + 3 + 4 + 5);
  EXPECT_EQ(snap.by_label.at("x").comm_words, 50u);
}

TEST(RoundProfiler, TopKIsCappedAndDeterministic) {
  obs::RoundProfiler profiler;
  for (std::uint64_t m = 0; m < 10; ++m) {
    profiler.observe_load(100 - m, m);  // descending words by machine
  }
  profiler.commit("top", 1, 1, 0);
  const auto snap = profiler.snapshot();
  ASSERT_EQ(snap.ring.size(), 1u);
  const auto& top = snap.ring[0].top;
  ASSERT_EQ(top.size(), obs::RoundProfiler::kTopK);
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].words, 100 - i);
    EXPECT_EQ(top[i].machine, static_cast<std::int64_t>(i));
  }
}

TEST(RoundProfiler, SampleCapDropsGiniSamplesNotTotals) {
  obs::RoundProfiler profiler;
  const std::size_t n = obs::RoundProfiler::kSampleCap + 10;
  for (std::size_t i = 0; i < n; ++i) profiler.observe_load(1, 0);
  profiler.commit("cap", 1, 1, 0);
  const auto snap = profiler.snapshot();
  EXPECT_EQ(snap.samples_dropped, 10u);
  ASSERT_EQ(snap.ring.size(), 1u);
  EXPECT_EQ(snap.ring[0].load_count, n);  // exact despite the cap
  EXPECT_EQ(snap.ring[0].load_sum, n);
  EXPECT_EQ(snap.ring[0].gini_ppm, 0u);
}

TEST(RoundProfiler, ResetClearsEverything) {
  obs::RoundProfiler profiler;
  profiler.observe_load(9, 1);
  profiler.commit("r", 2, 2, 20);
  profiler.reset();
  const auto snap = profiler.snapshot();
  EXPECT_EQ(snap.records_committed, 0u);
  EXPECT_TRUE(snap.ring.empty());
  EXPECT_TRUE(snap.by_label.empty());
  EXPECT_EQ(snap.load_max, 0u);
}

// ---- Snapshot export and JSON ----

TEST(ProfileSnapshot, ExportWritesModelSectionCounters) {
  obs::RoundProfiler profiler;
  profiler.observe_load(10, 0);
  profiler.observe_load(30, 1);
  profiler.commit("exp", 4, 4, 40);
  auto snap = profiler.snapshot();
  snap.enabled = true;

  auto& registry = obs::MetricsRegistry::global();
  const auto before = registry.snapshot();
  snap.export_to(registry);
  const auto delta = obs::MetricsSnapshot::delta(registry.snapshot(), before);
  const auto* records = delta.find("profile/records");
  const auto* rounds = delta.find("profile/rounds");
  const auto* load_obs = delta.find("profile/load_observations");
  ASSERT_NE(records, nullptr);
  ASSERT_NE(rounds, nullptr);
  ASSERT_NE(load_obs, nullptr);
  EXPECT_EQ(records->value, 1);
  EXPECT_EQ(rounds->value, 4);
  EXPECT_EQ(load_obs->value, 2);
  EXPECT_EQ(records->section, obs::MetricSection::kModel);
}

TEST(ProfileSnapshot, DisabledExportIsANoOp) {
  // A default-constructed snapshot (no profiler attached) must not touch the
  // registry; this is what every unprofiled solve exports.
  obs::ProfileSnapshot snap;
  ASSERT_FALSE(snap.enabled);
  auto& registry = obs::MetricsRegistry::global();
  const auto before = registry.snapshot();
  snap.export_to(registry);
  const auto delta = obs::MetricsSnapshot::delta(registry.snapshot(), before);
  const auto* records = delta.find("profile/records");
  if (records != nullptr) EXPECT_EQ(records->value, 0);
}

TEST(ProfileSnapshot, JsonBlockIsIntegerOnlyAndComplete) {
  obs::RoundProfiler profiler;
  profiler.observe_load(5, 3);
  profiler.commit("j", 2, 2, 10);
  auto snap = profiler.snapshot();
  snap.enabled = true;
  const Json json = to_json(snap);
  EXPECT_EQ(json.at("ring_capacity").as_int64(),
            static_cast<std::int64_t>(obs::RoundProfiler::kDefaultRingCapacity));
  EXPECT_EQ(json.at("records_committed").as_int64(), 1);
  EXPECT_EQ(json.at("load_max").as_int64(), 5);
  const Json& ring = json.at("ring");
  ASSERT_EQ(ring.items().size(), 1u);
  EXPECT_EQ(ring.items()[0].at("label").as_string(), "j");
  EXPECT_EQ(ring.items()[0].at("top").items()[0].at("machine").as_int64(), 3);
  const Json& by_label = json.at("by_label");
  EXPECT_EQ(by_label.at("j").at("records").as_int64(), 1);
  // No floats anywhere in the serialized block.
  EXPECT_EQ(json.dump().find('.'), std::string::npos);
}

// ---- Solver integration ----

TEST(ProfiledSolve, ReportCarriesProfileBlockAndProfiledSchema) {
  const auto g = graph::gnm(300, 2400, 9);
  SolveOptions options;
  options.profile = true;
  const auto solution = Solver(options).mis(g);
  const auto& profile = solution.report.profile;
  EXPECT_TRUE(profile.enabled);
  EXPECT_GT(profile.records_committed, 0u);
  EXPECT_GT(profile.load_max, 0u);
  EXPECT_FALSE(profile.by_label.empty());
  // Every ring record's window statistics are internally consistent.
  for (const auto& r : solution.report.profile.ring) {
    EXPECT_LE(r.round_begin, r.round_end);
    EXPECT_LE(r.load_max, profile.load_max);
    if (r.load_count > 0) {
      EXPECT_EQ(r.mean_load, r.load_sum / r.load_count);
      EXPECT_LE(r.top.size(), obs::RoundProfiler::kTopK);
    }
  }
  const std::string json = to_json(solution.report).dump();
  EXPECT_NE(json.find("\"schema_version\":7"), std::string::npos);
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
}

TEST(ProfiledSolve, OffByDefaultKeepsBaseSchemaAndNoProfileKey) {
  const auto g = graph::gnm(300, 2400, 9);
  const auto solution = Solver(SolveOptions{}).mis(g);
  EXPECT_FALSE(solution.report.profile.enabled);
  const std::string json = to_json(solution.report).dump();
  EXPECT_NE(json.find("\"schema_version\":6"), std::string::npos);
  EXPECT_EQ(json.find("\"profile\""), std::string::npos);
}

TEST(ProfiledSolve, ProfileDoesNotPerturbSolutionOrMetrics) {
  const auto g = graph::gnm(300, 2400, 9);
  SolveOptions plain;
  SolveOptions profiled;
  profiled.profile = true;
  const auto a = Solver(plain).mis(g);
  const auto b = Solver(profiled).mis(g);
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.report.metrics.rounds(), b.report.metrics.rounds());
  EXPECT_EQ(a.report.metrics.total_communication(),
            b.report.metrics.total_communication());
  // Profile totals agree with the metrics the solve already reports.
  EXPECT_EQ(b.report.profile.load_max,
            b.report.metrics.peak_machine_load());
}

// ---- Host-side scopes ----

TEST(HostScope, AddsHostSectionCountersOnDestruction) {
  auto& registry = obs::MetricsRegistry::global();
  const auto before = registry.snapshot();
  {
    obs::HostScope scope("test/host_scope");
    std::vector<std::uint64_t> work(4096, 1);
    volatile std::uint64_t sink = 0;
    for (const auto v : work) sink += v;
  }
  const auto delta = obs::MetricsSnapshot::delta(registry.snapshot(), before);
  const auto* calls = delta.find("host/test/host_scope/calls");
  const auto* wall = delta.find("host/test/host_scope/wall_ns");
  ASSERT_NE(calls, nullptr);
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(calls->value, 1);
  EXPECT_EQ(calls->section, obs::MetricSection::kHost);
  EXPECT_GE(wall->value, 0);
}

TEST(HostScope, AllocCountersAreMonotoneWhenHooked) {
  const auto before = obs::thread_alloc_counters();
  {
    auto* p = new std::vector<std::uint64_t>(1024, 7);
    p->at(0) = 9;
    delete p;
  }
  const auto after = obs::thread_alloc_counters();
  if (after.allocations == 0) {
    GTEST_SKIP() << "alloc hooks compiled out (sanitizer/fuzzer build)";
  }
  EXPECT_GT(after.allocations, before.allocations);
  EXPECT_GT(after.bytes, before.bytes);
  EXPECT_GT(after.frees, before.frees);
}

TEST(HostScope, ThreadCpuClockAdvances) {
  const auto t0 = obs::thread_cpu_time_ns();
  volatile std::uint64_t x = 0;
  for (std::uint64_t i = 0; i < 2000000; ++i) x += i;
  EXPECT_GE(obs::thread_cpu_time_ns(), t0);
}

}  // namespace
}  // namespace dmpc
