// Unit tests for src/field: modular arithmetic and primality.
#include <gtest/gtest.h>

#include "field/modulus.hpp"
#include "field/primes.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dmpc::field {
namespace {

TEST(Primes, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(91));   // 7 * 13
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(561));  // Carmichael
  EXPECT_FALSE(is_prime(341));  // Fermat pseudoprime base 2
}

TEST(Primes, KnownLargePrimes) {
  EXPECT_TRUE(is_prime(kMersenne61));
  EXPECT_TRUE(is_prime(1000000007ULL));
  EXPECT_TRUE(is_prime(1000000000000000003ULL));
  EXPECT_FALSE(is_prime(1000000007ULL * 998244353ULL));
}

TEST(Primes, NextPrimeAtLeast) {
  EXPECT_EQ(next_prime_at_least(0), 2u);
  EXPECT_EQ(next_prime_at_least(2), 2u);
  EXPECT_EQ(next_prime_at_least(3), 3u);
  EXPECT_EQ(next_prime_at_least(4), 5u);
  EXPECT_EQ(next_prime_at_least(90), 97u);
  EXPECT_EQ(next_prime_at_least(1000000), 1000003u);
}

TEST(Modulus, RejectsBadModuli) {
  EXPECT_THROW(Modulus(0), CheckFailure);
  EXPECT_THROW(Modulus(1), CheckFailure);
  EXPECT_THROW(Modulus(1ULL << 62), CheckFailure);
}

TEST(Modulus, AddSub) {
  Modulus m(13);
  EXPECT_EQ(m.add(6, 6), 12u);
  EXPECT_EQ(m.add(6, 7), 0u);
  EXPECT_EQ(m.add(12, 12), 11u);
  EXPECT_EQ(m.sub(5, 3), 2u);
  EXPECT_EQ(m.sub(3, 5), 11u);
  EXPECT_EQ(m.sub(0, 12), 1u);
}

TEST(Modulus, MulMatchesWideReference) {
  Rng rng(11);
  for (std::uint64_t p : std::vector<std::uint64_t>{
           13, 1000000007, kMersenne61, (1ULL << 61) + 129}) {
    if (!is_prime(p)) continue;
    Modulus m(p);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t a = rng.next_below(p);
      const std::uint64_t b = rng.next_below(p);
      const auto expect = static_cast<std::uint64_t>(
          static_cast<__uint128_t>(a) * b % p);
      EXPECT_EQ(m.mul(a, b), expect);
    }
  }
}

TEST(Modulus, Mersenne61EdgeCases) {
  Modulus m(kMersenne61);
  EXPECT_EQ(m.mul(kMersenne61 - 1, kMersenne61 - 1),
            static_cast<std::uint64_t>(
                static_cast<__uint128_t>(kMersenne61 - 1) *
                (kMersenne61 - 1) % kMersenne61));
  EXPECT_EQ(m.mul(0, kMersenne61 - 1), 0u);
  EXPECT_EQ(m.mul(1, kMersenne61 - 1), kMersenne61 - 1);
}

TEST(Modulus, PowAndInverse) {
  Modulus m(1000000007ULL);
  EXPECT_EQ(m.pow(2, 10), 1024u);
  EXPECT_EQ(m.pow(5, 0), 1u);
  Rng rng(12);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = 1 + rng.next_below(m.value() - 1);
    EXPECT_EQ(m.mul(a, m.inv(a)), 1u);
  }
  EXPECT_THROW(m.inv(0), CheckFailure);
}

TEST(Modulus, FermatLittleTheorem) {
  Modulus m(97);
  for (std::uint64_t a = 1; a < 97; ++a) {
    EXPECT_EQ(m.pow(a, 96), 1u);
  }
}

TEST(Modulus, PolyEvalHorner) {
  Modulus m(101);
  // f(x) = 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38.
  EXPECT_EQ(m.poly_eval({3, 2, 1}, 5), 38u);
  // Empty polynomial is zero.
  EXPECT_EQ(m.poly_eval({}, 7), 0u);
  // Constant.
  EXPECT_EQ(m.poly_eval({42}, 99), 42u);
  // Coefficients reduce mod p.
  EXPECT_EQ(m.poly_eval({102}, 0), 1u);
}

}  // namespace
}  // namespace dmpc::field
