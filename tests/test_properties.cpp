// Property-based suites: parameterized sweeps over (generator, size, seed)
// asserting the invariants every run must satisfy — validity, maximality,
// determinism, per-iteration progress, and space bounds.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "api/solver.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"

namespace dmpc {
namespace {

using graph::Graph;

struct Workload {
  std::string name;
  Graph (*make)(std::uint32_t n, std::uint64_t seed);
};

Graph make_gnm(std::uint32_t n, std::uint64_t seed) {
  return graph::gnm(n, static_cast<graph::EdgeId>(n) * 6, seed);
}
Graph make_power_law(std::uint32_t n, std::uint64_t seed) {
  return graph::power_law(n, static_cast<graph::EdgeId>(n) * 4, 2.5, seed);
}
Graph make_regular(std::uint32_t n, std::uint64_t seed) {
  return graph::random_regular(n, 8, seed);
}
Graph make_bipartite(std::uint32_t n, std::uint64_t seed) {
  return graph::random_bipartite(n / 2, n - n / 2,
                                 static_cast<graph::EdgeId>(n) * 4, seed);
}
Graph make_tree(std::uint32_t n, std::uint64_t seed) {
  return graph::random_tree(n, seed);
}

using Param = std::tuple<int /*workload*/, std::uint32_t /*n*/,
                         std::uint64_t /*seed*/>;

const Workload kWorkloads[] = {
    {"gnm", make_gnm},         {"power_law", make_power_law},
    {"regular", make_regular}, {"bipartite", make_bipartite},
    {"tree", make_tree},
};

class SolverProperty : public ::testing::TestWithParam<Param> {
 protected:
  Graph make_graph() const {
    const auto& [w, n, seed] = GetParam();
    return kWorkloads[w].make(n, seed);
  }
};

TEST_P(SolverProperty, MisValidMaximalDeterministic) {
  const Graph g = make_graph();
  const auto a = Solver().mis(g);
  ASSERT_TRUE(graph::is_maximal_independent_set(g, a.in_set));
  const auto b = Solver().mis(g);
  EXPECT_EQ(a.in_set, b.in_set);
}

TEST_P(SolverProperty, MatchingValidMaximalDeterministic) {
  const Graph g = make_graph();
  const auto a = Solver().maximal_matching(g);
  ASSERT_TRUE(graph::is_maximal_matching(g, a.matching));
  const auto b = Solver().maximal_matching(g);
  EXPECT_EQ(a.matching, b.matching);
}

TEST_P(SolverProperty, SparsificationPipelineProgressEveryIteration) {
  const Graph g = make_graph();
  if (g.num_edges() == 0) GTEST_SKIP();
  const auto result = mis::det_mis(g, {});
  for (const auto& report : result.reports) {
    EXPECT_LT(report.edges_after, report.edges_before)
        << "iteration " << report.iteration << " made no progress";
  }
}

TEST_P(SolverProperty, MatchingPipelineSpaceBound) {
  const Graph g = make_graph();
  if (g.num_edges() == 0) GTEST_SKIP();
  matching::DetMatchingConfig config;
  const auto cc =
      matching::cluster_config_for(config, g.num_nodes(), g.num_edges());
  const auto result = matching::det_maximal_matching(g, config);
  EXPECT_LE(result.metrics.peak_machine_load(), cc.machine_space);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto& [w, n, seed] = info.param;
  return kWorkloads[w].name + "_n" + std::to_string(n) + "_s" +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(64u, 160u, 320u),
                       ::testing::Values(1ULL, 2ULL)),
    param_name);

// Degree-class boundary cases exercised explicitly.
class DegreeEdgeCases : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DegreeEdgeCases, StarOfEveryScaleSolves) {
  const auto leaves = GetParam();
  const Graph g = graph::star(leaves);
  const auto mis = Solver().mis(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, mis.in_set));
  // Either the hub alone or all leaves: both are maximal; solver must pick
  // one of the two.
  const auto members =
      std::count(mis.in_set.begin(), mis.in_set.end(), true);
  EXPECT_TRUE(members == 1 || members == static_cast<long>(leaves));
  const auto mm = Solver().maximal_matching(g);
  EXPECT_EQ(mm.matching.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Stars, DegreeEdgeCases,
                         ::testing::Values(1u, 2u, 7u, 33u, 150u));

// Space-exponent sweep: the fully-scalable claim — the pipelines must work
// for every constant eps, with the simulator enforcing S = O(n^eps).
class EpsSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EpsSweep, BothPipelinesValidAtEveryExponent) {
  const double eps = static_cast<double>(std::get<0>(GetParam())) / 10.0;
  const int family = std::get<1>(GetParam());
  const Graph g = kWorkloads[family].make(192, 3);
  SolveOptions options;
  options.eps = eps;
  const auto mis = Solver(options).mis(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, mis.in_set));
  const auto mm = Solver(options).maximal_matching(g);
  EXPECT_TRUE(graph::is_maximal_matching(g, mm.matching));
}

std::string eps_name(const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  return "eps0" + std::to_string(std::get<0>(info.param)) + "_" +
         kWorkloads[std::get<1>(info.param)].name;
}

INSTANTIATE_TEST_SUITE_P(Exponents, EpsSweep,
                         ::testing::Combine(::testing::Values(3, 4, 5, 6, 7),
                                            ::testing::Values(0, 1, 2, 3, 4)),
                         eps_name);

// Selection-mode sweep: threshold search and exact conditional
// expectations must both produce valid, deterministic output.
class SelectionModeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SelectionModeSweep, MatchingAndMisValid) {
  const int family = GetParam();
  const Graph g = kWorkloads[family].make(72, 4);
  matching::DetMatchingConfig mm_config;
  mm_config.selection_mode = matching::SelectionMode::kConditionalExpectation;
  const auto mm = matching::det_maximal_matching(g, mm_config);
  EXPECT_TRUE(graph::is_maximal_matching(g, mm.matching));
  mis::DetMisConfig mis_config;
  mis_config.selection_mode = matching::SelectionMode::kConditionalExpectation;
  const auto m = mis::det_mis(g, mis_config);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, m.in_set));
}

INSTANTIATE_TEST_SUITE_P(CeModes, SelectionModeSweep,
                         ::testing::Values(0, 1, 2, 3, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kWorkloads[info.param].name;
                         });

}  // namespace
}  // namespace dmpc
