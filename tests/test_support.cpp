// Unit tests for src/support: math helpers, RNG, stats, options, checks.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/check.hpp"
#include "support/logging.hpp"
#include "support/math.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace dmpc {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    DMPC_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(DMPC_CHECK(2 + 2 == 4));
}

TEST(Logging, LevelGatingAndRestore) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  DMPC_ERROR("suppressed at kOff: " << 42);  // must not crash
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
}

TEST(Logging, ParseLogLevelRecognizedValues) {
  const struct {
    const char* text;
    LogLevel expected;
  } cases[] = {{"debug", LogLevel::kDebug}, {"info", LogLevel::kInfo},
               {"warn", LogLevel::kWarn},   {"error", LogLevel::kError},
               {"off", LogLevel::kOff},     {"WARN", LogLevel::kWarn},
               {"Error", LogLevel::kError}, {"  info  ", LogLevel::kInfo},
               {"\tdebug", LogLevel::kDebug}};
  for (const auto& c : cases) {
    LogLevel out = LogLevel::kOff;
    EXPECT_TRUE(parse_log_level(c.text, out)) << "'" << c.text << "'";
    EXPECT_EQ(out, c.expected) << "'" << c.text << "'";
  }
}

TEST(Logging, ParseLogLevelRejectsUnknownAndLeavesOutputUntouched) {
  for (const char* bad : {"", "  ", "verbose", "warning", "2", "debugx",
                          "de bug", "warn,info"}) {
    LogLevel out = LogLevel::kError;  // sentinel
    EXPECT_FALSE(parse_log_level(bad, out)) << "'" << bad << "'";
    EXPECT_EQ(out, LogLevel::kError) << "'" << bad << "'";
  }
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(UINT64_MAX), 63);
  EXPECT_THROW(floor_log2(0), CheckFailure);
}

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1ULL << 40), 40);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 5), 1);
  EXPECT_EQ(ceil_div(6, 5), 2);
  EXPECT_THROW(ceil_div(1, 0), CheckFailure);
}

TEST(Math, Ipow) {
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(3, 0), 1);
  EXPECT_EQ(ipow(10, 6), 1000000);
  EXPECT_THROW(ipow(2, 64), CheckFailure);
}

TEST(Math, IpowReal) {
  EXPECT_EQ(ipow_real(1024, 0.5), 32);
  EXPECT_EQ(ipow_real(1000000, 1.0 / 3.0), 99);  // floor of ~99.999..
}

TEST(Math, Isqrt) {
  EXPECT_EQ(isqrt(0), 0);
  EXPECT_EQ(isqrt(1), 1);
  EXPECT_EQ(isqrt(15), 3);
  EXPECT_EQ(isqrt(16), 4);
  EXPECT_EQ(isqrt(1ULL << 40), 1ULL << 20);
  EXPECT_EQ(isqrt((1ULL << 40) - 1), (1ULL << 20) - 1);
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(4), 4);
  EXPECT_EQ(next_pow2(1000), 1024);
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng a2(7);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, NextBelowRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
  EXPECT_THROW(rng.next_below(0), CheckFailure);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(4);
  auto perm = rng.permutation(100);
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Stats, RunningBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(Stats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), CheckFailure);
  EXPECT_THROW(s.min(), CheckFailure);
}

TEST(Stats, Percentile) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, HistogramBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1);   // clamps to bucket 0
  h.add(0.5);
  h.add(9.9);
  h.add(100);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[4], 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Stats, LinearFitExact) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Options, ParsesKeysAndPositional) {
  const char* argv[] = {"prog", "--n=100", "--verbose", "input.txt",
                        "--eps=0.25"};
  ArgParser args(5, argv);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.5), 0.25);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
}

}  // namespace
}  // namespace dmpc
