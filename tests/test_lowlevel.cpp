// Tests for the genuine message-passing Lemma-4 primitives: correctness
// against std references, capacity enforcement by the router, and round
// counts consistent with the tree-depth charges of the primitive layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "mpc/lowlevel.hpp"
#include "mpc/primitives.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dmpc::mpc::lowlevel {
namespace {

Cluster make_cluster(std::uint64_t space, std::uint64_t machines = 4096) {
  ClusterConfig config;
  config.machine_space = space;
  config.num_machines = machines;
  return Cluster(config);
}

std::vector<Word> random_words(std::size_t count, std::uint64_t seed,
                               std::uint64_t bound = 1000000) {
  Rng rng(seed);
  std::vector<Word> v(count);
  for (auto& x : v) x = rng.next_below(bound);
  return v;
}

TEST(LowLevelPrefixSum, MatchesReference) {
  auto cluster = make_cluster(64);
  const auto input = random_words(1000, 1);
  const auto result = prefix_sum(cluster, input);
  ASSERT_EQ(result.size(), input.size());
  Word acc = 0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(result[i], acc);
    acc += input[i];
  }
}

TEST(LowLevelPrefixSum, SingleMachineAndTiny) {
  auto cluster = make_cluster(64);
  EXPECT_TRUE(prefix_sum(cluster, {}).empty());
  const auto one = prefix_sum(cluster, {42});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
  const auto two = prefix_sum(cluster, {5, 7});
  EXPECT_EQ(two, (std::vector<Word>{0, 5}));
}

TEST(LowLevelPrefixSum, DeepTreeStillCorrect) {
  // Small machines force a multi-level tree (S = 32, f = 8: three levels
  // for ~63 machines). Note S must cover block + f*levels scratch — the
  // S = n^eps premise; far smaller S is outside the model's feasible range.
  auto cluster = make_cluster(32);
  const auto input = random_words(500, 2, 100);
  const auto result = prefix_sum(cluster, input);
  Word acc = 0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(result[i], acc);
    acc += input[i];
  }
  // Rounds actually used stay within a small multiple of the tree depth
  // the primitive layer charges for the same input.
  const std::uint64_t depth = cluster.tree_depth(input.size());
  EXPECT_LE(cluster.metrics().rounds(), 6 * depth + 6);
}

TEST(LowLevelPrefixSum, EveryWordThroughRouter) {
  auto cluster = make_cluster(64);
  const auto input = random_words(512, 3);
  prefix_sum(cluster, input);
  EXPECT_GT(cluster.metrics().total_communication(), 0u);
  EXPECT_LE(cluster.metrics().peak_machine_load(), 64u);
}

TEST(LowLevelSort, MatchesStdSort) {
  auto cluster = make_cluster(256);
  auto input = random_words(2000, 4);
  auto expect = input;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sort(cluster, input), expect);
}

TEST(LowLevelSort, DuplicatesAndSortedInputs) {
  auto cluster = make_cluster(96);
  std::vector<Word> dup(300, 7);
  EXPECT_EQ(sort(cluster, dup), std::vector<Word>(300, 7));
  std::vector<Word> asc(300);
  std::iota(asc.begin(), asc.end(), 0);
  EXPECT_EQ(sort(cluster, asc), asc);
  std::vector<Word> desc(asc.rbegin(), asc.rend());
  EXPECT_EQ(sort(cluster, desc), asc);
}

TEST(LowLevelSort, TinyInputs) {
  auto cluster = make_cluster(32);
  EXPECT_TRUE(sort(cluster, {}).empty());
  EXPECT_EQ(sort(cluster, {3}), std::vector<Word>{3});
  EXPECT_EQ(sort(cluster, {3, 1, 2}), (std::vector<Word>{1, 2, 3}));
}

TEST(LowLevelSort, SpaceEnforcedThroughout) {
  auto cluster = make_cluster(192);
  auto input = random_words(1200, 5);
  const auto out = sort(cluster, input);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_LE(cluster.metrics().peak_machine_load(), 192u);
}

TEST(LowLevelSort, RoundsPolylogInMachines) {
  auto cluster = make_cluster(320);
  auto input = random_words(3000, 6);
  sort(cluster, input);
  // 3000 tagged keys at S=256 -> ~94 machines, fan-out 8: ~3 levels of 5
  // steps each — nowhere near O(M).
  EXPECT_LE(cluster.metrics().rounds(), 40u);
}

TEST(LowLevelBlocks, LoadCollectRoundTrip) {
  auto cluster = make_cluster(40);
  const auto input = random_words(137, 7);
  load_blocks(cluster, input);
  EXPECT_EQ(machines_for(cluster, input.size()),
            cluster.low_level_machines());
  EXPECT_EQ(collect_blocks(cluster, input.size()), input);
}

}  // namespace
}  // namespace dmpc::mpc::lowlevel
