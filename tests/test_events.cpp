// Progress-event stream (obs/events.hpp): filter grammar, bus semantics,
// JSONL serialization, the deterministic model projection, report schema
// stamping, and the unwind-flush contract (sinks flushed before a
// CertificationError escapes Solver::solve).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "api/report_json.hpp"
#include "api/solver.hpp"
#include "graph/generators.hpp"
#include "obs/events.hpp"
#include "obs/host_sampler.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"

namespace dmpc {
namespace {

using obs::EventBus;
using obs::EventFilter;
using obs::EventSection;
using obs::EventType;
using obs::ProgressEvent;

// ---- Filter grammar ----

TEST(EventFilter, DefaultPassesEverything) {
  EventFilter filter;
  EXPECT_TRUE(filter.passes_all());
  EXPECT_EQ(filter.mask(), EventFilter::kAll);
  for (auto type : {EventType::kSolveStarted, EventType::kRoundCompleted,
                    EventType::kRecovered, EventType::kCertificateClaim}) {
    EXPECT_TRUE(filter.passes(type));
  }
}

TEST(EventFilter, ParseSingleCategory) {
  const EventFilter filter = obs::parse_event_filter("round");
  EXPECT_TRUE(filter.passes(EventType::kRoundCompleted));
  EXPECT_FALSE(filter.passes(EventType::kSolveStarted));
  EXPECT_FALSE(filter.passes(EventType::kRecoveryAttempt));
  EXPECT_EQ(obs::event_filter_to_string(filter), "round");
}

TEST(EventFilter, ParseMultipleCategoriesCanonicalizes) {
  // to_string prints categories in fixed declaration order regardless of
  // the input order.
  const EventFilter filter = obs::parse_event_filter("recovery,round");
  EXPECT_EQ(obs::event_filter_to_string(filter), "round,recovery");
  EXPECT_TRUE(filter.passes(EventType::kRecoveryAttempt));
  EXPECT_TRUE(filter.passes(EventType::kRecovered));
  EXPECT_TRUE(filter.passes(EventType::kRoundCompleted));
  EXPECT_FALSE(filter.passes(EventType::kCheckpointTaken));
}

TEST(EventFilter, ParseAllKeyword) {
  const EventFilter filter = obs::parse_event_filter("all");
  EXPECT_TRUE(filter.passes_all());
  EXPECT_EQ(obs::event_filter_to_string(filter), "all");
}

TEST(EventFilter, RoundTripEveryMask) {
  // parse(to_string(f)) == f for every non-empty mask — the contract the
  // fuzz driver (tools/fuzz) pins on arbitrary inputs.
  for (std::uint32_t mask = 1; mask <= EventFilter::kAll; ++mask) {
    const EventFilter filter(mask);
    const EventFilter back =
        obs::parse_event_filter(obs::event_filter_to_string(filter));
    EXPECT_EQ(back.mask(), filter.mask()) << "mask=" << mask;
  }
}

TEST(EventFilter, ParseRejectsMalformedLists) {
  for (const char* text : {"", "round,", ",round", "round,,recovery", "bogus",
                           "round,round", "ROUND", "all,round", " round"}) {
    try {
      obs::parse_event_filter(text);
      FAIL() << "accepted '" << text << "'";
    } catch (const OptionsError& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kInvalidEventFilter) << text;
    }
  }
}

// ---- Bus semantics ----

TEST(EventBus, AssignsDensePerSectionSeq) {
  obs::CollectorEventSink collector;
  EventBus bus;
  ASSERT_TRUE(bus.subscribe(&collector));
  for (auto type : {EventType::kSolveStarted, EventType::kCheckpointTaken,
                    EventType::kRoundCompleted, EventType::kRecoveryAttempt,
                    EventType::kSolveFinished}) {
    ProgressEvent e;
    e.type = type;
    bus.emit(std::move(e));
  }
  bus.finish();
  ASSERT_EQ(collector.events().size(), 5u);
  // Model events number 0,1,2 and recovery events 0,1 independently.
  EXPECT_EQ(collector.events()[0].section, EventSection::kModel);
  EXPECT_EQ(collector.events()[0].seq, 0u);
  EXPECT_EQ(collector.events()[1].section, EventSection::kRecovery);
  EXPECT_EQ(collector.events()[1].seq, 0u);
  EXPECT_EQ(collector.events()[2].section, EventSection::kModel);
  EXPECT_EQ(collector.events()[2].seq, 1u);
  EXPECT_EQ(collector.events()[3].section, EventSection::kRecovery);
  EXPECT_EQ(collector.events()[3].seq, 1u);
  EXPECT_EQ(collector.events()[4].section, EventSection::kModel);
  EXPECT_EQ(collector.events()[4].seq, 2u);
  EXPECT_EQ(bus.model_events(), 3u);
  EXPECT_EQ(bus.recovery_events(), 2u);
  EXPECT_TRUE(collector.finished());
}

TEST(EventBus, FilterDropsButStillConsumesSeq) {
  obs::CollectorEventSink collector;
  EventBus bus;
  ASSERT_TRUE(bus.subscribe(&collector));
  bus.set_filter(obs::parse_event_filter("solve"));
  for (auto type : {EventType::kSolveStarted, EventType::kRoundCompleted,
                    EventType::kSolveFinished}) {
    ProgressEvent e;
    e.type = type;
    bus.emit(std::move(e));
  }
  bus.finish();
  // The round event was dropped, but the numbering is filter-independent:
  // solve_finished still carries seq 2.
  ASSERT_EQ(collector.events().size(), 2u);
  EXPECT_EQ(collector.events()[0].seq, 0u);
  EXPECT_EQ(collector.events()[1].seq, 2u);
  EXPECT_EQ(bus.model_events(), 3u);
  EXPECT_EQ(bus.filtered_events(), 1u);
}

TEST(EventBus, SubscribeRefusesPastCapAndNull) {
  EventBus bus;
  EXPECT_FALSE(bus.subscribe(nullptr));
  std::vector<obs::CollectorEventSink> sinks(EventBus::kMaxSubscribers + 1);
  for (std::size_t i = 0; i < EventBus::kMaxSubscribers; ++i) {
    EXPECT_TRUE(bus.subscribe(&sinks[i]));
  }
  EXPECT_FALSE(bus.subscribe(&sinks[EventBus::kMaxSubscribers]));
  EXPECT_EQ(bus.subscriber_count(), EventBus::kMaxSubscribers);
}

TEST(EventBus, FinishIsIdempotentAndStopsEmission) {
  obs::CollectorEventSink collector;
  EventBus bus;
  ASSERT_TRUE(bus.subscribe(&collector));
  bus.emit(ProgressEvent{});
  bus.finish();
  bus.finish();
  bus.emit(ProgressEvent{});  // ignored after finish
  EXPECT_EQ(collector.events().size(), 1u);
  EXPECT_TRUE(bus.finished());
}

// ---- Serialization ----

TEST(EventJsonl, FixedFieldOrderAndHostQuarantine) {
  ProgressEvent e;
  e.type = EventType::kRoundCompleted;
  e.section = EventSection::kModel;
  e.seq = 3;
  e.label = "phase/x";
  e.round = 7;
  e.rounds = 1;
  e.comm_words = 42;
  e.host_wall_ns = 999;
  e.host_unix_ms = 123456;
  const std::string with_host = obs::event_to_jsonl(e, /*include_host=*/true);
  const std::string stripped = obs::event_to_jsonl(e, /*include_host=*/false);
  EXPECT_NE(with_host.find("\"host\":{\"wall_ns\":999,\"unix_ms\":123456}"),
            std::string::npos);
  EXPECT_EQ(stripped.find("\"host\""), std::string::npos);
  // The stream version stamps every record.
  EXPECT_EQ(stripped.rfind("{\"v\":1,\"section\":\"model\",\"seq\":3,", 0), 0u);
  // Stripping host is a pure suffix removal: the model prefix is shared.
  EXPECT_EQ(with_host.compare(0, stripped.size() - 1, stripped, 0,
                              stripped.size() - 1),
            0);
}

TEST(EventJsonl, SinkWritesOneLinePerEvent) {
  std::ostringstream out;
  obs::JsonlEventSink sink(&out, /*include_host=*/false);
  EventBus bus;
  ASSERT_TRUE(bus.subscribe(&sink));
  bus.emit(ProgressEvent{});
  bus.emit(ProgressEvent{});
  bus.finish();
  const std::string text = out.str();
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
}

TEST(EventProgressLine, LifecycleEventsAlwaysPrint) {
  std::ostringstream out;
  obs::ProgressLineSink sink(&out, /*min_interval_ms=*/1000000);
  EventBus bus;
  ASSERT_TRUE(bus.subscribe(&sink));
  ProgressEvent started;
  started.type = EventType::kSolveStarted;
  started.label = "mis";
  bus.emit(std::move(started));
  // Round events are throttled by host wall clock (interval is huge here),
  // lifecycle events are urgent and always print.
  ProgressEvent round;
  round.type = EventType::kRoundCompleted;
  bus.emit(std::move(round));
  ProgressEvent finished;
  finished.type = EventType::kSolveFinished;
  finished.label = "sparsification";
  bus.emit(std::move(finished));
  bus.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("solve_started"), std::string::npos);
  EXPECT_NE(text.find("solve_finished"), std::string::npos);
  EXPECT_EQ(text.find("round_completed"), std::string::npos);
}

// ---- Solver integration ----

TEST(EventsSolve, StreamsLifecycleAndStampsSchemaV8) {
  const auto g = graph::gnm(300, 2400, 7);
  obs::CollectorEventSink collector;
  EventBus bus;
  ASSERT_TRUE(bus.subscribe(&collector));
  SolveOptions options;
  options.events = &bus;
  const Solver solver(options);
  const auto solution = solver.mis(g);

  // The Solver finished the bus at solve end.
  EXPECT_TRUE(bus.finished());
  EXPECT_TRUE(collector.finished());
  const auto& events = collector.events();
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events.front().type, EventType::kSolveStarted);
  EXPECT_EQ(events.front().label, "mis");
  EXPECT_EQ(events.front().value,
            static_cast<std::int64_t>(g.num_nodes()));
  EXPECT_EQ(events.back().type, EventType::kSolveFinished);
  EXPECT_EQ(events.back().label, solution.report.algorithm_used);
  EXPECT_EQ(events.back().round, solution.report.metrics.rounds());
  bool saw_phase = false;
  bool saw_round = false;
  for (const auto& e : events) {
    saw_phase = saw_phase || e.type == EventType::kPhaseStarted;
    saw_round = saw_round || e.type == EventType::kRoundCompleted;
    // Every event carries a host timestamp from the bus.
    EXPECT_GT(e.host_unix_ms, 0);
  }
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_round);

  // Report summary + schema stamp.
  ASSERT_TRUE(solution.report.events.enabled);
  EXPECT_EQ(solution.report.events.stream_version, obs::kEventStreamVersion);
  EXPECT_EQ(solution.report.events.model_events, bus.model_events());
  const std::string json = to_json(solution.report).dump();
  EXPECT_NE(json.find("\"schema_version\":8"), std::string::npos);
  EXPECT_NE(json.find("\"events_summary\""), std::string::npos);
}

TEST(EventsSolve, UnobservedReportIsByteIdenticalToPreEventsSchema) {
  const auto g = graph::gnm(200, 800, 9);
  const auto solution = Solver(SolveOptions{}).mis(g);
  const std::string json = to_json(solution.report).dump();
  // No bus attached: no events_summary key, pre-events schema stamp.
  EXPECT_EQ(json.find("\"events_summary\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":6"), std::string::npos);
  EXPECT_FALSE(solution.report.events.enabled);
}

TEST(EventsSolve, CertifiedSolveEmitsPassingClaimEvents) {
  const auto g = graph::gnm(300, 2400, 7);
  obs::CollectorEventSink collector;
  EventBus bus;
  ASSERT_TRUE(bus.subscribe(&collector));
  SolveOptions options;
  options.events = &bus;
  options.certify = verify::CertifyMode::kAnswer;
  const auto solution = Solver(options).mis(g);
  ASSERT_FALSE(solution.report.certificate.claims.empty());
  std::size_t claim_events = 0;
  for (const auto& e : collector.events()) {
    if (e.type != EventType::kCertificateClaim) continue;
    ++claim_events;
    EXPECT_EQ(e.section, EventSection::kModel);
    EXPECT_NE(e.value, 0) << e.label << " claim event reported failure";
  }
  EXPECT_EQ(claim_events, solution.report.certificate.claims.size());
}

TEST(EventsSolve, ReplaySolvesDoNotPolluteTheStream) {
  // certify=full under a fault plan replays the pipeline fault-free; the
  // replay must not emit into the caller's bus, so the stream matches the
  // single observed solve.
  const auto g = graph::gnm(300, 2400, 7);
  obs::CollectorEventSink plain_collector;
  {
    EventBus bus;
    ASSERT_TRUE(bus.subscribe(&plain_collector));
    SolveOptions options;
    options.events = &bus;
    (void)Solver(options).mis(g);
  }
  obs::CollectorEventSink certified_collector;
  {
    EventBus bus;
    ASSERT_TRUE(bus.subscribe(&certified_collector));
    SolveOptions options;
    options.events = &bus;
    options.certify = verify::CertifyMode::kFull;
    options.faults.add({mpc::FaultKind::kCrash, /*round=*/2, /*machine=*/0});
    (void)Solver(options).mis(g);
  }
  // Model projections agree except for the appended certificate claims —
  // strip those, renumber the dense model seq (claims consumed seq slots
  // ahead of solve_finished), and the streams are byte-identical.
  std::vector<ProgressEvent> certified_model;
  std::uint64_t model_seq = 0;
  for (const auto& e : certified_collector.events()) {
    if (e.type == EventType::kCertificateClaim) continue;
    certified_model.push_back(e);
    if (e.section == EventSection::kModel) {
      certified_model.back().seq = model_seq++;
    }
  }
  EXPECT_EQ(obs::model_projection(certified_model),
            obs::model_projection(plain_collector.events()));
}

// ---- Unwind flush (the CertificationError/FaultError contract) ----

TEST(EventsUnwind, SinksFlushedWhenCertificationFails) {
  // enforce_space off with a deliberately undersized S: the solve runs to
  // completion, then the kSpaceAccounting claim fails in checked mode and
  // CertificationError unwinds out of Solver::mis. Both the event bus and
  // the trace session must be finished before the exception escapes.
  const auto g = graph::gnm(300, 2400, 5);
  obs::CollectorEventSink collector;
  EventBus bus;
  ASSERT_TRUE(bus.subscribe(&collector));
  std::ostringstream trace_out;
  obs::JsonlTraceSink sink(&trace_out, /*include_wall_time=*/false);
  obs::TraceSession session(&sink);
  SolveOptions options;
  options.certify = verify::CertifyMode::kAnswer;
  options.cluster.machine_space = 32;
  options.cluster.enforce_space = false;
  options.events = &bus;
  options.trace = &session;
  EXPECT_THROW(Solver(options).mis(g), verify::CertificationError);

  EXPECT_TRUE(bus.finished());
  EXPECT_TRUE(collector.finished());
  // The stream captured the solve up to and including the failing claim.
  bool saw_failed_claim = false;
  for (const auto& e : collector.events()) {
    if (e.type == EventType::kCertificateClaim && e.value == 0) {
      saw_failed_claim = true;
      EXPECT_EQ(e.detail, "fail");
    }
  }
  EXPECT_TRUE(saw_failed_claim);
  EXPECT_GT(collector.events().size(), 4u);
  // The trace was flushed on the same unwind path.
  EXPECT_FALSE(trace_out.str().empty());
}

// ---- Host sampler ----

TEST(HostSampler, SampleOnceFillsRingInEveryBuild) {
  obs::HostSampler::Options options;
  options.ring_capacity = 4;
  obs::HostSampler sampler(options);
  for (int i = 0; i < 6; ++i) sampler.sample_once();
  EXPECT_EQ(sampler.samples_taken(), 6u);
  EXPECT_EQ(sampler.samples_dropped(), 2u);
  const auto samples = sampler.samples();
  ASSERT_EQ(samples.size(), 4u);
  // Oldest-first: wall clocks are monotone across the ring.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].wall_ns, samples[i - 1].wall_ns);
  }
  const Json json = sampler.to_json();
  EXPECT_EQ(json.at("taken").as_int64(), 6);
  EXPECT_EQ(json.at("dropped").as_int64(), 2);
  EXPECT_EQ(json.at("samples").items().size(), 4u);
}

TEST(HostSampler, StartStopMatchesCompileGate) {
  obs::HostSampler sampler;
  if (obs::HostSampler::compiled_in()) {
    EXPECT_TRUE(sampler.start());
    EXPECT_FALSE(sampler.start());  // already running
    sampler.stop();
    sampler.stop();  // idempotent
    EXPECT_GE(sampler.samples_taken(), 1u);
  } else {
    EXPECT_FALSE(sampler.start());
    sampler.stop();  // no-op, must not hang
    EXPECT_EQ(sampler.samples_taken(), 0u);
  }
}

}  // namespace
}  // namespace dmpc
