// Determinism matrix: generator families × thread counts.
//
// The engine's contract (docs/API.md, "Determinism under parallelism") is
// that for a fixed graph and fixed options excluding `threads`, solutions,
// reports, and JSONL traces are *byte-identical* for every thread count.
// This test pins that across three generator families and threads in
// {1, 2, hardware}.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/report_json.hpp"
#include "api/solver.hpp"
#include "field/batch_eval.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "mpc/io_faults.hpp"
#include "mpc/shard_format.hpp"
#include "mpc/storage.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"

namespace dmpc {
namespace {

using graph::Graph;

const std::uint32_t kThreadCounts[] = {1, 2, 0};  // 0 = hardware concurrency

/// The golden model section of a Solver's per-solve registry delta. One more
/// byte-comparable artifact per run: the metrics-snapshot axis of the matrix.
std::string registry_model_json(const Solver& solver) {
  return obs::to_json_section(solver.metrics_snapshot(),
                              obs::MetricSection::kModel,
                              /*include_zero=*/false)
      .dump();
}

struct RunArtifacts {
  std::vector<bool> mis_in_set;
  std::string mis_report_json;
  std::string mis_trace;
  std::string mis_registry_json;
  std::vector<graph::EdgeId> matching;
  std::string matching_report_json;
  std::string matching_trace;
};

/// When `storage` is non-null the Solver's storage overloads run (attaching
/// the backend to the cluster and exporting kHost residency gauges) on
/// storage->graph(); otherwise the plain-graph overloads run on `g`.
RunArtifacts run_all(const Graph& g, std::uint32_t threads,
                     const mpc::Storage* storage = nullptr) {
  RunArtifacts out;
  {
    std::ostringstream trace_out;
    obs::JsonlTraceSink sink(&trace_out, /*include_wall_time=*/false);
    obs::TraceSession session(&sink);
    SolveOptions options;
    options.threads = threads;
    options.trace = &session;
    const Solver solver(options);
    const auto solution =
        storage != nullptr ? solver.mis(*storage) : solver.mis(g);
    session.finish();
    out.mis_in_set = solution.in_set;
    out.mis_report_json = to_json(solution.report).dump();
    out.mis_trace = trace_out.str();
    out.mis_registry_json = registry_model_json(solver);
  }
  {
    std::ostringstream trace_out;
    obs::JsonlTraceSink sink(&trace_out, /*include_wall_time=*/false);
    obs::TraceSession session(&sink);
    SolveOptions options;
    options.threads = threads;
    options.trace = &session;
    const Solver solver(options);
    const auto solution = storage != nullptr
                              ? solver.maximal_matching(*storage)
                              : solver.maximal_matching(g);
    session.finish();
    out.matching = solution.matching;
    out.matching_report_json = to_json(solution.report).dump();
    out.matching_trace = trace_out.str();
  }
  return out;
}

void expect_matrix_identical(const Graph& g, const char* family) {
  const auto reference = run_all(g, /*threads=*/1);
  EXPECT_FALSE(reference.mis_trace.empty()) << family;
  EXPECT_FALSE(reference.matching_trace.empty()) << family;
  EXPECT_NE(reference.mis_registry_json.find("\"mpc/rounds\""),
            std::string::npos)
      << family;
  for (std::uint32_t threads : kThreadCounts) {
    const auto run = run_all(g, threads);
    EXPECT_EQ(run.mis_in_set, reference.mis_in_set)
        << family << " threads=" << threads;
    EXPECT_EQ(run.mis_report_json, reference.mis_report_json)
        << family << " threads=" << threads;
    EXPECT_EQ(run.mis_trace, reference.mis_trace)
        << family << " threads=" << threads;
    EXPECT_EQ(run.mis_registry_json, reference.mis_registry_json)
        << family << " threads=" << threads;
    EXPECT_EQ(run.matching, reference.matching)
        << family << " threads=" << threads;
    EXPECT_EQ(run.matching_report_json, reference.matching_report_json)
        << family << " threads=" << threads;
    EXPECT_EQ(run.matching_trace, reference.matching_trace)
        << family << " threads=" << threads;
  }
}

TEST(DeterminismMatrix, Gnm) {
  // Dense enough to take the sparsification path.
  expect_matrix_identical(graph::gnm(600, 4800, 11), "gnm");
}

// ---- Fault axis ----
//
// The recovery engine's contract extends the matrix by one dimension: for a
// fixed graph and fixed options, solutions, reports (modulo the "recovery"
// counter block), and traces are byte-identical across {no faults, crashes,
// drops} × thread counts.

struct FaultRun {
  std::vector<bool> in_set;
  std::vector<graph::EdgeId> matching;
  std::string report_json;  ///< MIS report with the recovery ledger zeroed.
  std::string trace;
  std::string registry_json;  ///< Model section only — fault-plan-invariant.
  std::uint64_t faults_injected = 0;
};

FaultRun run_with_faults(const Graph& g, std::uint32_t threads,
                         const mpc::FaultPlan& plan) {
  FaultRun out;
  std::ostringstream trace_out;
  obs::JsonlTraceSink sink(&trace_out, /*include_wall_time=*/false);
  obs::TraceSession session(&sink);
  SolveOptions options;
  options.threads = threads;
  options.trace = &session;
  options.faults = plan;
  const Solver solver(options);
  EXPECT_TRUE(solver.validate().ok()) << solver.validate().to_string();
  const auto solution = solver.mis(g);
  session.finish();
  out.in_set = solution.in_set;
  out.registry_json = registry_model_json(solver);
  out.faults_injected = solution.report.recovery.faults_injected;
  auto comparable = solution.report;
  comparable.recovery = mpc::RecoveryStats{};
  out.report_json = to_json(comparable).dump();
  out.trace = trace_out.str();
  out.matching = Solver(options).maximal_matching(g).matching;
  return out;
}

void expect_fault_matrix_identical(const Graph& g, const char* family) {
  mpc::FaultPlan crashes;
  crashes.add({mpc::FaultKind::kCrash, /*round=*/2, /*machine=*/0});
  crashes.add({mpc::FaultKind::kCrash, /*round=*/7, /*machine=*/1});
  mpc::FaultPlan drops;
  drops.add({mpc::FaultKind::kDrop, /*round=*/3, /*machine=*/0,
             /*message=*/0});
  drops.add({mpc::FaultKind::kDrop, /*round=*/9, /*machine=*/2,
             /*message=*/1});

  const auto reference = run_with_faults(g, /*threads=*/1, mpc::FaultPlan{});
  EXPECT_EQ(reference.faults_injected, 0u) << family;
  const std::uint32_t fault_threads[] = {1, 0};
  const struct {
    const char* name;
    const mpc::FaultPlan* plan;
  } axes[] = {{"none", nullptr}, {"crashes", &crashes}, {"drops", &drops}};
  for (const auto& axis : axes) {
    for (std::uint32_t threads : fault_threads) {
      const auto run = run_with_faults(
          g, threads, axis.plan != nullptr ? *axis.plan : mpc::FaultPlan{});
      EXPECT_EQ(run.in_set, reference.in_set)
          << family << " faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.report_json, reference.report_json)
          << family << " faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.trace, reference.trace)
          << family << " faults=" << axis.name << " threads=" << threads;
      // kModel metrics are defined to be fault-plan-invariant: retries
      // re-export the replayed pipeline's charges, not double-counted ones.
      EXPECT_EQ(run.registry_json, reference.registry_json)
          << family << " faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.matching, reference.matching)
          << family << " faults=" << axis.name << " threads=" << threads;
      if (axis.plan != nullptr) {
        EXPECT_GT(run.faults_injected, 0u)
            << family << " faults=" << axis.name << " threads=" << threads
            << ": plan did not fire";
      }
    }
  }
}

TEST(DeterminismMatrix, FaultAxisSparsification) {
  expect_fault_matrix_identical(graph::gnm(400, 3200, 14), "gnm");
}

TEST(DeterminismMatrix, FaultAxisLowDegree) {
  expect_fault_matrix_identical(graph::random_regular(400, 4, 15),
                                "random_regular");
}

TEST(DeterminismMatrix, RandomRegular) {
  // Low-degree path.
  expect_matrix_identical(graph::random_regular(500, 4, 12), "random_regular");
}

// ---- Certify axis ----
//
// Checked mode must not perturb determinism: with certify=full, solutions,
// certified reports, and traces stay byte-identical across thread counts
// and fault axes, and the certify=off trace is a byte prefix of the
// certify=full trace (the "verify/certify" span is appended, nothing else
// moves).

struct CertifiedRun {
  std::vector<bool> in_set;
  std::string report_json;  ///< Recovery ledger zeroed, certificate kept.
  std::string trace;
};

CertifiedRun run_certified(const Graph& g, std::uint32_t threads,
                           const mpc::FaultPlan& plan,
                           verify::CertifyMode mode) {
  CertifiedRun out;
  std::ostringstream trace_out;
  obs::JsonlTraceSink sink(&trace_out, /*include_wall_time=*/false);
  obs::TraceSession session(&sink);
  SolveOptions options;
  options.threads = threads;
  options.trace = &session;
  options.faults = plan;
  options.certify = mode;
  const auto solution = Solver(options).mis(g);
  session.finish();
  out.in_set = solution.in_set;
  auto comparable = solution.report;
  comparable.recovery = mpc::RecoveryStats{};
  out.report_json = to_json(comparable).dump();
  out.trace = trace_out.str();
  return out;
}

TEST(DeterminismMatrix, CertifyAxis) {
  const Graph g = graph::gnm(400, 3200, 16);
  mpc::FaultPlan crashes;
  crashes.add({mpc::FaultKind::kCrash, /*round=*/2, /*machine=*/0});

  const auto reference = run_certified(g, /*threads=*/1, mpc::FaultPlan{},
                                       verify::CertifyMode::kFull);
  EXPECT_NE(reference.report_json.find("\"certificate\""), std::string::npos);
  EXPECT_NE(reference.trace.find("verify/certify"), std::string::npos);

  const std::uint32_t thread_counts[] = {1, 2, 0};
  const struct {
    const char* name;
    const mpc::FaultPlan* plan;
  } axes[] = {{"none", nullptr}, {"crashes", &crashes}};
  for (const auto& axis : axes) {
    for (std::uint32_t threads : thread_counts) {
      const auto run = run_certified(
          g, threads, axis.plan != nullptr ? *axis.plan : mpc::FaultPlan{},
          verify::CertifyMode::kFull);
      EXPECT_EQ(run.in_set, reference.in_set)
          << "faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.report_json, reference.report_json)
          << "faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.trace, reference.trace)
          << "faults=" << axis.name << " threads=" << threads;
    }
  }

  // certify=off produces a byte-prefix of the certify=full trace.
  const auto off = run_certified(g, /*threads=*/1, mpc::FaultPlan{},
                                 verify::CertifyMode::kOff);
  ASSERT_LT(off.trace.size(), reference.trace.size());
  EXPECT_EQ(reference.trace.compare(0, off.trace.size(), off.trace), 0);
}

TEST(DeterminismMatrix, PowerLaw) {
  expect_matrix_identical(graph::power_law(400, 1600, 2.5, 13), "power_law");
}

// ---- Profiler axis ----
//
// The round profiler (obs/profiler.hpp) extends the matrix: with
// SolveOptions::profile on, the report's `profile` block — and the whole
// profiled-schema report around it — must stay byte-identical across
// thread counts and admissible fault plans, because every observation and
// commit happens on the orchestrating thread and only on committing
// attempts.

struct ProfiledRun {
  std::vector<bool> in_set;
  std::string report_json;   ///< Schema 5, recovery ledger zeroed.
  std::string profile_json;  ///< The profile block alone.
  std::string registry_json;
};

ProfiledRun run_profiled(const Graph& g, std::uint32_t threads,
                         const mpc::FaultPlan& plan) {
  SolveOptions options;
  options.threads = threads;
  options.faults = plan;
  options.profile = true;
  const Solver solver(options);
  const auto solution = solver.mis(g);
  ProfiledRun out;
  out.in_set = solution.in_set;
  out.profile_json = obs::to_json(solution.report.profile).dump();
  out.registry_json = registry_model_json(solver);
  auto comparable = solution.report;
  comparable.recovery = mpc::RecoveryStats{};
  out.report_json = to_json(comparable).dump();
  return out;
}

TEST(DeterminismMatrix, ProfilerAxis) {
  const auto g = graph::gnm(400, 3200, 14);
  mpc::FaultPlan crashes;
  crashes.add({mpc::FaultKind::kCrash, /*round=*/2, /*machine=*/0});
  crashes.add({mpc::FaultKind::kCrash, /*round=*/7, /*machine=*/1});

  const auto reference = run_profiled(g, /*threads=*/1, mpc::FaultPlan{});
  EXPECT_NE(reference.report_json.find("\"profile\""), std::string::npos);
  EXPECT_NE(reference.report_json.find("\"schema_version\":7"),
            std::string::npos);
  EXPECT_NE(reference.profile_json.find("\"records_committed\""),
            std::string::npos);
  // The exported profile counters land in the golden registry section.
  EXPECT_NE(reference.registry_json.find("\"profile/records\""),
            std::string::npos);

  const struct {
    const char* name;
    const mpc::FaultPlan* plan;
  } axes[] = {{"none", nullptr}, {"crashes", &crashes}};
  for (const auto& axis : axes) {
    for (std::uint32_t threads : kThreadCounts) {
      const auto run = run_profiled(
          g, threads, axis.plan != nullptr ? *axis.plan : mpc::FaultPlan{});
      EXPECT_EQ(run.in_set, reference.in_set)
          << "faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.profile_json, reference.profile_json)
          << "faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.report_json, reference.report_json)
          << "faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.registry_json, reference.registry_json)
          << "faults=" << axis.name << " threads=" << threads;
    }
  }
}

// ---- Storage axis ----
//
// Residency is host-side only (docs/STORAGE.md): solving out of a mapped
// shard directory — single-shard or many — must leave solutions, reports,
// traces, and the golden registry section byte-identical to the in-memory
// CSR, crossed with every thread count.

TEST(DeterminismMatrix, StorageAxis) {
  namespace fs = std::filesystem;
  const Graph g = graph::gnm(600, 4800, 11);
  const fs::path dir =
      fs::temp_directory_path() / "dmpc_determinism_storage_axis";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string edge_path = (dir / "g.txt").string();
  graph::write_edge_list_file(g, edge_path);

  // Backend instances: the heap CSR, a single mapped shard (default target
  // sizing), and a many-shard layout (forced small shards).
  mpc::InMemoryStorage memory(graph::read_edge_list_file(edge_path));
  mpc::shard_build(edge_path, (dir / "one").string(), {});
  mpc::ShardBuildOptions small;
  small.shard_words = 2048;
  mpc::shard_build(edge_path, (dir / "many").string(), small);
  const auto one = mpc::MmapShardStorage::open((dir / "one").string());
  const auto many = mpc::MmapShardStorage::open((dir / "many").string());
  ASSERT_EQ(one->stats().shards, 1u);
  ASSERT_GT(many->stats().shards, 1u);

  const auto reference = run_all(g, /*threads=*/1);
  const struct {
    const char* name;
    const mpc::Storage* storage;
  } backends[] = {{"memory", &memory}, {"mmap1", one.get()},
                  {"mmapN", many.get()}};
  for (const auto& backend : backends) {
    for (std::uint32_t threads : kThreadCounts) {
      const auto run =
          run_all(backend.storage->graph(), threads, backend.storage);
      EXPECT_EQ(run.mis_in_set, reference.mis_in_set)
          << backend.name << " threads=" << threads;
      EXPECT_EQ(run.mis_report_json, reference.mis_report_json)
          << backend.name << " threads=" << threads;
      EXPECT_EQ(run.mis_trace, reference.mis_trace)
          << backend.name << " threads=" << threads;
      EXPECT_EQ(run.mis_registry_json, reference.mis_registry_json)
          << backend.name << " threads=" << threads;
      EXPECT_EQ(run.matching, reference.matching)
          << backend.name << " threads=" << threads;
      EXPECT_EQ(run.matching_report_json, reference.matching_report_json)
          << backend.name << " threads=" << threads;
      EXPECT_EQ(run.matching_trace, reference.matching_trace)
          << backend.name << " threads=" << threads;
    }
  }
  fs::remove_all(dir);
}

// ---- I/O fault axis ----
//
// The storage recovery ladder (docs/STORAGE.md, "Integrity & degraded
// mode") extends the matrix once more: for a fixed shard directory, any
// admissible IoFaultPlan whose events resolve within the retry/quarantine
// budget must leave solutions, reports (modulo the recovery ledger),
// traces, and the golden registry section byte-identical to the fault-free
// open, crossed with thread counts.

struct IoFaultRun {
  std::vector<bool> in_set;
  std::vector<graph::EdgeId> matching;
  std::string report_json;  ///< Recovery ledger (host + storage) zeroed.
  std::string trace;
  std::string registry_json;
};

IoFaultRun run_with_io_faults(const mpc::Storage& storage,
                              std::uint32_t threads) {
  IoFaultRun out;
  std::ostringstream trace_out;
  obs::JsonlTraceSink sink(&trace_out, /*include_wall_time=*/false);
  obs::TraceSession session(&sink);
  SolveOptions options;
  options.threads = threads;
  options.trace = &session;
  const Solver solver(options);
  const auto solution = solver.mis(storage);
  session.finish();
  out.in_set = solution.in_set;
  out.registry_json = registry_model_json(solver);
  auto comparable = solution.report;
  comparable.recovery = mpc::RecoveryStats{};
  out.report_json = to_json(comparable).dump();
  out.trace = trace_out.str();
  out.matching = Solver(options).maximal_matching(storage).matching;
  return out;
}

TEST(DeterminismMatrix, IoFaultAxis) {
  namespace fs = std::filesystem;
  const Graph g = graph::gnm(600, 4800, 11);
  const fs::path dir =
      fs::temp_directory_path() / "dmpc_determinism_io_fault_axis";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string edge_path = (dir / "g.txt").string();
  graph::write_edge_list_file(g, edge_path);
  mpc::ShardBuildOptions small;
  small.shard_words = 2048;
  const std::string shard_dir = (dir / "shards").string();
  mpc::shard_build(edge_path, shard_dir, small);

  // Transient open-time failures, an injected checksum flip that heals on
  // retry, and persistent verify-time corruption that forces a quarantine
  // re-read — all within the default RecoveryOptions budget.
  mpc::IoFaultPlan transient;
  transient.add({mpc::IoFaultKind::kEio, /*shard=*/0, mpc::kAccessOpen,
                 /*delay=*/1, /*attempts=*/2});
  transient.add({mpc::IoFaultKind::kShortRead, /*shard=*/1, mpc::kAccessOpen,
                 /*delay=*/1, /*attempts=*/1});
  transient.add({mpc::IoFaultKind::kSlow, /*shard=*/0, mpc::kAccessVerify,
                 /*delay=*/3, /*attempts=*/1});
  mpc::IoFaultPlan heal;
  heal.add({mpc::IoFaultKind::kCorrupt, /*shard=*/0, mpc::kAccessVerify,
            /*delay=*/1, /*attempts=*/1});
  mpc::IoFaultPlan quarantine;
  quarantine.add({mpc::IoFaultKind::kCorrupt, /*shard=*/1, mpc::kAccessVerify,
                  /*delay=*/1, /*attempts=*/4});

  const auto clean =
      mpc::MmapShardStorage::open(shard_dir, {}, mpc::VerifyMode::kOpen);
  ASSERT_GT(clean->stats().shards, 1u);
  const auto reference = run_with_io_faults(*clean, /*threads=*/1);

  const struct {
    const char* name;
    const mpc::IoFaultPlan* plan;
  } axes[] = {{"none", nullptr},
              {"transient", &transient},
              {"heal", &heal},
              {"quarantine", &quarantine}};
  const std::uint32_t fault_threads[] = {1, 0};
  for (const auto& axis : axes) {
    for (std::uint32_t threads : fault_threads) {
      // A fresh open per cell: injected faults fire against the open/verify
      // access ordinals, so the recovery ladder runs in every cell.
      const auto storage = mpc::MmapShardStorage::open(
          shard_dir, {}, mpc::VerifyMode::kOpen,
          axis.plan != nullptr ? *axis.plan : mpc::IoFaultPlan{});
      if (axis.plan != nullptr) {
        EXPECT_GT(storage->io_recovery().io_faults_injected, 0u)
            << "io_faults=" << axis.name << " threads=" << threads
            << ": plan did not fire";
      }
      if (axis.plan == &quarantine) {
        EXPECT_EQ(storage->io_recovery().quarantined_shards, 1u);
      }
      const auto run = run_with_io_faults(*storage, threads);
      EXPECT_EQ(run.in_set, reference.in_set)
          << "io_faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.report_json, reference.report_json)
          << "io_faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.trace, reference.trace)
          << "io_faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.registry_json, reference.registry_json)
          << "io_faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.matching, reference.matching)
          << "io_faults=" << axis.name << " threads=" << threads;
    }
  }
  fs::remove_all(dir);
}

// ---- Events axis ----
//
// The progress-event stream (obs/events.hpp) extends the matrix: the model
// projection — model-section events with host timestamps stripped — must be
// byte-identical across thread counts × fault plans × storage backends, and
// attaching a bus must not perturb the solution or the report beyond the
// `events_summary` block (whose recovery/filtered counts are plan-scoped
// and zeroed for comparison, like the recovery ledger).

struct EventsRun {
  std::vector<bool> in_set;
  std::string model_projection;
  std::string report_json;  ///< Recovery ledger + plan-scoped counts zeroed.
  std::uint64_t model_events = 0;
};

EventsRun run_with_events(const Graph& g, std::uint32_t threads,
                          const mpc::FaultPlan& plan,
                          const mpc::Storage* storage = nullptr) {
  obs::CollectorEventSink collector;
  obs::EventBus bus;
  EXPECT_TRUE(bus.subscribe(&collector));
  SolveOptions options;
  options.threads = threads;
  options.faults = plan;
  options.events = &bus;
  const Solver solver(options);
  const auto solution =
      storage != nullptr ? solver.mis(*storage) : solver.mis(g);
  EventsRun out;
  out.in_set = solution.in_set;
  out.model_projection = obs::model_projection(collector.events());
  out.model_events = solution.report.events.model_events;
  auto comparable = solution.report;
  comparable.recovery = mpc::RecoveryStats{};
  comparable.events.recovery_events = 0;
  comparable.events.filtered_events = 0;
  out.report_json = to_json(comparable).dump();
  return out;
}

TEST(DeterminismMatrix, EventsAxisFaults) {
  const Graph g = graph::gnm(400, 3200, 14);
  mpc::FaultPlan crashes;
  crashes.add({mpc::FaultKind::kCrash, /*round=*/2, /*machine=*/0});
  crashes.add({mpc::FaultKind::kCrash, /*round=*/7, /*machine=*/1});
  mpc::FaultPlan drops;
  drops.add({mpc::FaultKind::kDrop, /*round=*/3, /*machine=*/0,
             /*message=*/0});

  const auto reference = run_with_events(g, /*threads=*/1, mpc::FaultPlan{});
  EXPECT_GT(reference.model_events, 0u);
  EXPECT_FALSE(reference.model_projection.empty());
  // Attaching a bus must not perturb the answer.
  const auto unobserved = run_all(g, /*threads=*/1);
  EXPECT_EQ(reference.in_set, unobserved.mis_in_set);

  const struct {
    const char* name;
    const mpc::FaultPlan* plan;
  } axes[] = {{"none", nullptr}, {"crashes", &crashes}, {"drops", &drops}};
  for (const auto& axis : axes) {
    for (std::uint32_t threads : kThreadCounts) {
      const auto run = run_with_events(
          g, threads, axis.plan != nullptr ? *axis.plan : mpc::FaultPlan{});
      EXPECT_EQ(run.in_set, reference.in_set)
          << "faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.model_projection, reference.model_projection)
          << "faults=" << axis.name << " threads=" << threads;
      EXPECT_EQ(run.report_json, reference.report_json)
          << "faults=" << axis.name << " threads=" << threads;
    }
  }
}

TEST(DeterminismMatrix, EventsAxisStorage) {
  namespace fs = std::filesystem;
  const Graph g = graph::gnm(600, 4800, 11);
  const fs::path dir =
      fs::temp_directory_path() / "dmpc_determinism_events_storage";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string edge_path = (dir / "g.txt").string();
  graph::write_edge_list_file(g, edge_path);
  mpc::ShardBuildOptions small;
  small.shard_words = 2048;
  const std::string shard_dir = (dir / "shards").string();
  mpc::shard_build(edge_path, shard_dir, small);

  // An io-fault plan whose events heal within budget: the storage rungs land
  // in the recovery section, so the model projection must not move.
  mpc::IoFaultPlan heal;
  heal.add({mpc::IoFaultKind::kEio, /*shard=*/0, mpc::kAccessOpen,
            /*delay=*/1, /*attempts=*/2});

  mpc::InMemoryStorage memory(graph::read_edge_list_file(edge_path));
  const auto reference = run_with_events(g, /*threads=*/1, mpc::FaultPlan{});
  const struct {
    const char* name;
    bool io_faults;
  } cells[] = {{"memory", false}, {"mmap", false}, {"mmap-io-fault", true}};
  for (const auto& cell : cells) {
    for (std::uint32_t threads : kThreadCounts) {
      std::unique_ptr<const mpc::Storage> owned;
      const mpc::Storage* storage = &memory;
      if (std::string(cell.name) != "memory") {
        owned = mpc::MmapShardStorage::open(
            shard_dir, {}, mpc::VerifyMode::kOpen,
            cell.io_faults ? heal : mpc::IoFaultPlan{});
        storage = owned.get();
      }
      const auto run =
          run_with_events(g, threads, mpc::FaultPlan{}, storage);
      EXPECT_EQ(run.in_set, reference.in_set)
          << cell.name << " threads=" << threads;
      EXPECT_EQ(run.model_projection, reference.model_projection)
          << cell.name << " threads=" << threads;
    }
  }
  fs::remove_all(dir);
}

// ---- Batch-dispatch axis ----
//
// The batched field kernels (field/batch_eval.hpp) promise exact modular
// arithmetic on every lane width, so forcing any supported dispatch path —
// scalar, AVX2, NEON — crossed with any thread count must leave solutions,
// reports, traces, and the golden registry section byte-identical.

TEST(DeterminismMatrix, BatchDispatchAxis) {
  const auto g = graph::gnm(600, 4800, 11);
  field::set_batch_dispatch(field::BatchDispatch::kScalar);
  const auto reference = run_all(g, /*threads=*/1);
  for (const auto dispatch : field::supported_batch_dispatches()) {
    field::set_batch_dispatch(dispatch);
    for (std::uint32_t threads : kThreadCounts) {
      const auto run = run_all(g, threads);
      const char* name = field::batch_dispatch_name(dispatch);
      EXPECT_EQ(run.mis_in_set, reference.mis_in_set)
          << "dispatch=" << name << " threads=" << threads;
      EXPECT_EQ(run.mis_report_json, reference.mis_report_json)
          << "dispatch=" << name << " threads=" << threads;
      EXPECT_EQ(run.mis_trace, reference.mis_trace)
          << "dispatch=" << name << " threads=" << threads;
      EXPECT_EQ(run.mis_registry_json, reference.mis_registry_json)
          << "dispatch=" << name << " threads=" << threads;
      EXPECT_EQ(run.matching, reference.matching)
          << "dispatch=" << name << " threads=" << threads;
      EXPECT_EQ(run.matching_report_json, reference.matching_report_json)
          << "dispatch=" << name << " threads=" << threads;
      EXPECT_EQ(run.matching_trace, reference.matching_trace)
          << "dispatch=" << name << " threads=" << threads;
    }
  }
  field::reset_batch_dispatch();
}

}  // namespace
}  // namespace dmpc
