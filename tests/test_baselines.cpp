// Unit tests for the baseline algorithms (ground truth + randomized Luby).
#include <gtest/gtest.h>

#include "baselines/greedy.hpp"
#include "baselines/israeli_itai.hpp"
#include "baselines/luby_matching.hpp"
#include "baselines/luby_mis.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"

namespace dmpc::baselines {
namespace {

using graph::Graph;

TEST(Greedy, MisIsMaximal) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const Graph g = graph::gnm(200, 800, seed);
    EXPECT_TRUE(graph::is_maximal_independent_set(g, greedy_mis(g)));
  }
}

TEST(Greedy, MisOnEmptyAndComplete) {
  const Graph empty = Graph::from_edges(5, {});
  const auto mis_empty = greedy_mis(empty);
  EXPECT_EQ(std::count(mis_empty.begin(), mis_empty.end(), true), 5);
  const Graph k5 = graph::complete(5);
  const auto mis_k5 = greedy_mis(k5);
  EXPECT_EQ(std::count(mis_k5.begin(), mis_k5.end(), true), 1);
}

TEST(Greedy, MatchingIsMaximal) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const Graph g = graph::gnm(200, 800, seed);
    EXPECT_TRUE(graph::is_maximal_matching(g, greedy_matching(g)));
  }
}

TEST(LubyMis, ValidAndLogarithmicIterations) {
  const Graph g = graph::gnm(500, 3000, 4);
  const auto result = luby_mis(g, 99);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, result.in_set));
  EXPECT_GE(result.iterations, 1u);
  EXPECT_LE(result.iterations, 30u);  // ~log scale for n=500
  // Progress trace is monotone decreasing to zero.
  for (std::size_t i = 1; i < result.edges_after.size(); ++i) {
    EXPECT_LT(result.edges_after[i], result.edges_after[i - 1]);
  }
  EXPECT_EQ(result.edges_after.back(), 0u);
}

TEST(LubyMis, DeterministicGivenSeed) {
  const Graph g = graph::gnm(100, 400, 5);
  const auto a = luby_mis(g, 7);
  const auto b = luby_mis(g, 7);
  EXPECT_EQ(a.in_set, b.in_set);
}

TEST(LubyMisPairwise, ValidOnSeveralFamilies) {
  for (std::uint64_t seed : {1, 2}) {
    const Graph g = graph::power_law(300, 1200, 2.5, seed);
    const auto result = luby_mis_pairwise(g, seed);
    EXPECT_TRUE(graph::is_maximal_independent_set(g, result.in_set));
  }
}

TEST(LubyMatching, ValidAndConverges) {
  const Graph g = graph::gnm(300, 1500, 6);
  const auto result = luby_matching(g, 42);
  EXPECT_TRUE(graph::is_maximal_matching(g, result.matching));
  EXPECT_LE(result.iterations, 30u);
}

TEST(LubyMatching, PathAndStar) {
  const auto p = graph::path(10);
  EXPECT_TRUE(graph::is_maximal_matching(p, luby_matching(p, 1).matching));
  const auto s = graph::star(10);
  const auto result = luby_matching(s, 1);
  EXPECT_EQ(result.matching.size(), 1u);  // star has max matching 1
}

TEST(IsraeliItai, ValidMatching) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const Graph g = graph::gnm(300, 1200, seed + 10);
    const auto result = israeli_itai(g, seed);
    EXPECT_TRUE(graph::is_maximal_matching(g, result.matching));
    EXPECT_LE(result.iterations, 40u);
  }
}

TEST(IsraeliItai, CompleteBipartite) {
  const Graph g = graph::complete_bipartite(20, 20);
  const auto result = israeli_itai(g, 3);
  EXPECT_TRUE(graph::is_maximal_matching(g, result.matching));
  EXPECT_EQ(result.matching.size(), 20u);  // perfect matching forced
}

}  // namespace
}  // namespace dmpc::baselines
