// The storage seam: shard format, streaming builder, and backends.
//
// The contract under test (docs/STORAGE.md): a shard directory written by
// shard_build, opened through MmapShardStorage, exposes *exactly* the graph
// Graph::from_edges builds from the same edge list — identical offsets,
// adjacency rows, incident EdgeIds, canonical edge order, stats, and solve
// results — while the manifest is an untrusted-input boundary rejecting
// every malformed byte with a typed ParseError.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/report_json.hpp"
#include "api/solver.hpp"
#include "exec/parallel.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_stats.hpp"
#include "graph/io.hpp"
#include "mpc/io_faults.hpp"
#include "mpc/shard_format.hpp"
#include "mpc/storage.hpp"
#include "mpc/storage_error.hpp"
#include "support/parse_error.hpp"

namespace dmpc::mpc {
namespace {

namespace fs = std::filesystem;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Fresh scratch directory under the system temp root, removed on scope
/// exit so failed assertions cannot poison later runs.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }
  std::string str(const std::string& child = {}) const {
    return child.empty() ? path_.string() : (path_ / child).string();
  }

 private:
  fs::path path_;
};

/// Every observable CSR byte must agree between the two views.
void expect_identical_graphs(const Graph& expected, const Graph& actual) {
  ASSERT_EQ(expected.num_nodes(), actual.num_nodes());
  ASSERT_EQ(expected.num_edges(), actual.num_edges());
  EXPECT_EQ(expected.max_degree(), actual.max_degree());
  for (NodeId v = 0; v < expected.num_nodes(); ++v) {
    ASSERT_EQ(expected.degree(v), actual.degree(v)) << "node " << v;
    const auto en = expected.neighbors(v);
    const auto an = actual.neighbors(v);
    const auto ei = expected.incident_edges(v);
    const auto ai = actual.incident_edges(v);
    for (std::uint32_t i = 0; i < expected.degree(v); ++i) {
      ASSERT_EQ(en[i], an[i]) << "adjacency of node " << v << " slot " << i;
      ASSERT_EQ(ei[i], ai[i]) << "incident of node " << v << " slot " << i;
    }
  }
  for (EdgeId e = 0; e < expected.num_edges(); ++e) {
    ASSERT_EQ(expected.edge(e).u, actual.edge(e).u) << "edge " << e;
    ASSERT_EQ(expected.edge(e).v, actual.edge(e).v) << "edge " << e;
  }
  EXPECT_TRUE(expected.edges() == actual.edges());
}

void expect_round_trip(const Graph& g, std::uint64_t shard_words,
                       const char* label) {
  TempDir dir(std::string("dmpc_storage_roundtrip_") + label);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  ShardBuildOptions options;
  options.shard_words = shard_words;
  const auto stats = shard_build(dir.str("g.txt"), dir.str("shards"), options);
  EXPECT_EQ(stats.n, g.num_nodes()) << label;
  EXPECT_EQ(stats.m, g.num_edges()) << label;
  const auto storage = MmapShardStorage::open(dir.str("shards"));
  EXPECT_EQ(storage->stats().shards, stats.shards) << label;
  expect_identical_graphs(g, storage->graph());

  // Derived stats and solve artifacts must agree too: the mmap view feeds
  // the same algorithms the heap CSR does.
  const auto ex = exec::Executor::with_threads(1);
  const auto expected_stats = graph::compute_stats(g, ex);
  const auto actual_stats = graph::compute_stats(storage->graph(), ex);
  EXPECT_EQ(expected_stats.triangles, actual_stats.triangles) << label;
  EXPECT_EQ(expected_stats.components, actual_stats.components) << label;
  const Solver solver;
  const auto expected_mis = solver.mis(g);
  const auto actual_mis = solver.mis(*storage);
  EXPECT_EQ(expected_mis.in_set, actual_mis.in_set) << label;
  EXPECT_EQ(to_json(expected_mis.report).dump(),
            to_json(actual_mis.report).dump())
      << label;
}

TEST(ShardRoundTrip, SingleShard) {
  expect_round_trip(graph::gnm(800, 6400, 3), /*shard_words=*/0, "single");
}

TEST(ShardRoundTrip, ManyShards) {
  expect_round_trip(graph::gnm(800, 6400, 3), /*shard_words=*/1024, "many");
}

TEST(ShardRoundTrip, PowerLawSkewedDegrees) {
  expect_round_trip(graph::power_law(500, 3000, 2.2, 9), /*shard_words=*/2048,
                    "power_law");
}

TEST(ShardRoundTrip, StarHighDegreeHub) {
  // One node owns every edge: the greedy packer must handle a single node
  // whose row exceeds the target shard size.
  expect_round_trip(graph::star(300), /*shard_words=*/64, "star");
}

TEST(ShardRoundTrip, EdgelessGraph) {
  TempDir dir("dmpc_storage_edgeless");
  std::ofstream(dir.str("g.txt")) << "5 0\n";
  const auto stats = shard_build(dir.str("g.txt"), dir.str("shards"));
  EXPECT_EQ(stats.n, 5u);
  EXPECT_EQ(stats.m, 0u);
  const auto storage = MmapShardStorage::open(dir.str("shards"));
  EXPECT_EQ(storage->graph().num_nodes(), 5u);
  EXPECT_EQ(storage->graph().num_edges(), 0u);
  EXPECT_EQ(storage->graph().max_degree(), 0u);
}

TEST(ShardBuild, RejectsDuplicateEdges) {
  TempDir dir("dmpc_storage_dup");
  std::ofstream(dir.str("g.txt")) << "4 3\n0 1\n2 3\n1 0\n";
  try {
    shard_build(dir.str("g.txt"), dir.str("shards"));
    FAIL() << "duplicate edge accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kDuplicateEdge);
  }
}

TEST(ShardBuild, RejectsDedupePolicy) {
  TempDir dir("dmpc_storage_policy");
  std::ofstream(dir.str("g.txt")) << "2 1\n0 1\n";
  ShardBuildOptions options;
  options.limits.duplicates = graph::DuplicatePolicy::kDedupe;
  EXPECT_THROW(shard_build(dir.str("g.txt"), dir.str("shards"), options),
               CheckFailure);
}

TEST(ShardBuild, MissingInputIsIoError) {
  TempDir dir("dmpc_storage_noinput");
  try {
    shard_build(dir.str("absent.txt"), dir.str("shards"));
    FAIL() << "missing input accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kIoError);
  }
}

// ---- Manifest codec ----

ShardManifest build_manifest_fixture(const std::string& dir_name,
                                     std::string* shard_dir) {
  static TempDir dir("dmpc_storage_manifest_fixture");
  const std::string out = dir.str(dir_name);
  const Graph g = graph::gnm(200, 1600, 5);
  graph::write_edge_list_file(g, dir.str(dir_name + ".txt"));
  ShardBuildOptions options;
  options.shard_words = 1024;
  shard_build(dir.str(dir_name + ".txt"), out, options);
  std::ifstream in(out + "/" + kManifestFileName, std::ios::binary);
  std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (shard_dir != nullptr) *shard_dir = out;
  return parse_shard_manifest(bytes.data(), bytes.size());
}

TEST(ShardManifestCodec, EncodeParseRoundTrip) {
  const ShardManifest manifest = build_manifest_fixture("codec", nullptr);
  EXPECT_EQ(manifest.n, 200u);
  EXPECT_EQ(manifest.m, 1600u);
  EXPECT_GT(manifest.shards.size(), 1u);
  const auto bytes = encode_shard_manifest(manifest);
  const ShardManifest reparsed =
      parse_shard_manifest(bytes.data(), bytes.size());
  EXPECT_EQ(reparsed.n, manifest.n);
  EXPECT_EQ(reparsed.m, manifest.m);
  EXPECT_EQ(reparsed.max_degree, manifest.max_degree);
  EXPECT_EQ(reparsed.shard_words, manifest.shard_words);
  ASSERT_EQ(reparsed.shards.size(), manifest.shards.size());
  for (std::size_t i = 0; i < manifest.shards.size(); ++i) {
    EXPECT_EQ(reparsed.shards[i].node_begin, manifest.shards[i].node_begin);
    EXPECT_EQ(reparsed.shards[i].node_end, manifest.shards[i].node_end);
    EXPECT_EQ(reparsed.shards[i].edge_begin, manifest.shards[i].edge_begin);
    EXPECT_EQ(reparsed.shards[i].edge_end, manifest.shards[i].edge_end);
    EXPECT_EQ(reparsed.shards[i].slot_begin, manifest.shards[i].slot_begin);
    EXPECT_EQ(reparsed.shards[i].slot_end, manifest.shards[i].slot_end);
    EXPECT_EQ(reparsed.shards[i].file_bytes, manifest.shards[i].file_bytes);
  }
}

ParseErrorCode parse_code(const std::vector<unsigned char>& bytes,
                          const graph::EdgeListLimits& limits = {}) {
  try {
    parse_shard_manifest(bytes.data(), bytes.size(), limits);
  } catch (const ParseError& e) {
    return e.code();
  }
  ADD_FAILURE() << "manifest accepted";
  return ParseErrorCode::kIoError;
}

TEST(ShardManifestCodec, RejectsMalformedBytes) {
  const ShardManifest manifest = build_manifest_fixture("reject", nullptr);
  const auto valid = encode_shard_manifest(manifest);

  auto corrupt = valid;
  corrupt[0] = 'X';  // magic
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kBadHeader);

  corrupt = valid;
  corrupt[8] = 99;  // version
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kBadHeader);

  corrupt = valid;
  corrupt[12] = 1;  // flags must be zero
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kBadHeader);

  corrupt = valid;
  corrupt.resize(corrupt.size() - 1);  // truncated entry table
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kCountMismatch);

  corrupt = valid;
  corrupt.resize(kManifestHeaderBytes - 8);  // shorter than the header
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kBadHeader);

  corrupt = valid;
  corrupt[32] += 1;  // total_slots != 2m
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kCountMismatch);

  // First entry's node_begin bumped: ranges no longer tile [0, n).
  corrupt = valid;
  corrupt[kManifestHeaderBytes] += 1;
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kCountMismatch);

  // Inverted node range in the first entry (node_end < node_begin).
  corrupt = valid;
  std::uint64_t inverted = manifest.shards[0].node_end + 1;
  std::memcpy(corrupt.data() + kManifestHeaderBytes, &inverted, 8);
  EXPECT_NE(parse_code(corrupt), ParseErrorCode::kIoError);
}

TEST(ShardManifestCodec, EnforcesEdgeListLimits) {
  const ShardManifest manifest = build_manifest_fixture("limits", nullptr);
  const auto valid = encode_shard_manifest(manifest);
  graph::EdgeListLimits tight;
  tight.max_nodes = manifest.n - 1;
  EXPECT_EQ(parse_code(valid, tight), ParseErrorCode::kShardLimitExceeded);
  tight = {};
  tight.max_edges = manifest.m - 1;
  EXPECT_EQ(parse_code(valid, tight), ParseErrorCode::kShardLimitExceeded);
  // At exactly the caps the manifest is accepted.
  tight = {};
  tight.max_nodes = manifest.n;
  tight.max_edges = manifest.m;
  EXPECT_NO_THROW(parse_shard_manifest(valid.data(), valid.size(), tight));
}

// ---- MmapShardStorage open-time validation ----

TEST(MmapShardStorage, RejectsTruncatedShardFile) {
  TempDir dir("dmpc_storage_truncated");
  const Graph g = graph::gnm(200, 1600, 6);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  ShardBuildOptions options;
  options.shard_words = 1024;
  shard_build(dir.str("g.txt"), dir.str("shards"), options);
  fs::resize_file(dir.path() / "shards" / shard_file_name(1), 40);
  try {
    MmapShardStorage::open(dir.str("shards"));
    FAIL() << "truncated shard accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kCountMismatch);
  }
}

TEST(MmapShardStorage, RejectsCorruptShardMagic) {
  TempDir dir("dmpc_storage_badmagic");
  const Graph g = graph::gnm(100, 400, 6);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  shard_build(dir.str("g.txt"), dir.str("shards"));
  {
    std::fstream f(dir.path() / "shards" / shard_file_name(0),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.put('Z');
  }
  try {
    MmapShardStorage::open(dir.str("shards"));
    FAIL() << "corrupt shard magic accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kBadHeader);
  }
}

TEST(MmapShardStorage, RejectsCorruptOffsets) {
  TempDir dir("dmpc_storage_badoffsets");
  const Graph g = graph::gnm(100, 400, 6);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  shard_build(dir.str("g.txt"), dir.str("shards"));
  {
    // Scribble over the first offset (bytes 16..24): the slice is no longer
    // anchored at slot_begin.
    std::fstream f(dir.path() / "shards" / shard_file_name(0),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    const std::uint64_t garbage = ~0ull;
    f.write(reinterpret_cast<const char*>(&garbage), 8);
  }
  try {
    MmapShardStorage::open(dir.str("shards"));
    FAIL() << "corrupt offsets accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kCountMismatch);
  }
}

TEST(MmapShardStorage, RejectsMissingDirectory) {
  try {
    MmapShardStorage::open("/nonexistent/dmpc_shards");
    FAIL() << "missing directory accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kIoError);
  }
}

TEST(MmapShardStorage, GraphOutlivesStorage) {
  TempDir dir("dmpc_storage_outlive");
  const Graph g = graph::gnm(100, 400, 6);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  shard_build(dir.str("g.txt"), dir.str("shards"));
  Graph view;
  {
    const auto storage = MmapShardStorage::open(dir.str("shards"));
    view = storage->graph();
  }
  // The residency handle keeps the mappings alive after the Storage dies.
  expect_identical_graphs(g, view);
}

// ---- open_storage dispatch & host stats ----

TEST(OpenStorage, DispatchesOnBackend) {
  TempDir dir("dmpc_storage_dispatch");
  const Graph g = graph::gnm(100, 400, 6);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  shard_build(dir.str("g.txt"), dir.str("shards"));

  StorageOptions memory;
  const auto mem = open_storage(memory, dir.str("g.txt"));
  EXPECT_EQ(mem->backend(), StorageBackend::kMemory);
  EXPECT_EQ(mem->stats().shards, 1u);
  EXPECT_GT(mem->stats().bytes_total, 0u);

  StorageOptions mmap_opts;
  mmap_opts.backend = StorageBackend::kMmap;
  mmap_opts.shard_dir = dir.str("shards");
  const auto mapped = open_storage(mmap_opts, "ignored");
  EXPECT_EQ(mapped->backend(), StorageBackend::kMmap);
  expect_identical_graphs(mem->graph(), mapped->graph());
}

TEST(OpenStorage, BackendNames) {
  EXPECT_STREQ(storage_backend_name(StorageBackend::kMemory), "memory");
  EXPECT_STREQ(storage_backend_name(StorageBackend::kMmap), "mmap");
}

// ---- Solver seam ----

TEST(SolverStorage, OpenStorageHonorsOptions) {
  TempDir dir("dmpc_storage_solver");
  const Graph g = graph::gnm(300, 2400, 6);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  shard_build(dir.str("g.txt"), dir.str("shards"));

  SolveOptions options;
  options.storage.backend = StorageBackend::kMmap;
  options.storage.shard_dir = dir.str("shards");
  const Solver solver(options);
  const auto storage = solver.open_storage("ignored");
  EXPECT_EQ(storage->backend(), StorageBackend::kMmap);

  const auto from_storage = solver.maximal_matching(*storage);
  const auto from_graph = Solver().maximal_matching(g);
  EXPECT_EQ(from_storage.matching, from_graph.matching);
  EXPECT_EQ(to_json(from_storage.report).dump(),
            to_json(from_graph.report).dump());

  // The storage solve's host section carries the residency gauges.
  const auto host = obs::to_json_section(solver.metrics_snapshot(),
                                         obs::MetricSection::kHost,
                                         /*include_zero=*/true)
                        .dump();
  EXPECT_NE(host.find("\"storage/bytes_mapped\""), std::string::npos);
  EXPECT_NE(host.find("\"storage/shards\""), std::string::npos);
}

// ---- Integrity: checksummed shards, fault injection, recovery ladder ----

/// XOR one byte of `path` at `offset` (from the start; negative = from the
/// end). Payload bytes at the file tail are adjacency words — corrupting
/// them never trips the structural offsets validation, so the checksum layer
/// is the only line of defense.
void corrupt_byte(const fs::path& path, std::int64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  if (offset < 0) {
    f.seekg(0, std::ios::end);
    offset += static_cast<std::int64_t>(f.tellg());
  }
  f.seekg(offset);
  char byte = 0;
  f.get(byte);
  f.seekp(offset);
  f.put(static_cast<char>(byte ^ 0x1));
}

/// Build a shard directory for a deterministic reference graph.
Graph build_shards(const TempDir& dir, std::uint64_t shard_words = 1024) {
  const Graph g = graph::gnm(200, 1600, 7);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  ShardBuildOptions options;
  options.shard_words = shard_words;
  shard_build(dir.str("g.txt"), dir.str("shards"), options);
  return g;
}

TEST(StorageIntegrity, BuilderStampsV2ChecksumsThatVerify) {
  TempDir dir("dmpc_integrity_v2");
  build_shards(dir);
  const auto storage =
      MmapShardStorage::open(dir.str("shards"), {}, VerifyMode::kOpen);
  EXPECT_EQ(storage->manifest().version, 2u);
  EXPECT_TRUE(storage->manifest().has_checksums());
  for (const ShardEntry& e : storage->manifest().shards) {
    EXPECT_NE(e.crc64, 0u);
  }
  EXPECT_EQ(storage->io_recovery().shards_verified,
            storage->manifest().shards.size());

  const IntegrityReport report = storage->verify_integrity();
  EXPECT_EQ(report.status, IntegrityReport::Status::kVerified);
  EXPECT_EQ(report.shards_checked, storage->manifest().shards.size());
}

TEST(StorageIntegrity, SingleCorruptByteIsDetectedAtOpen) {
  TempDir dir("dmpc_integrity_corrupt");
  build_shards(dir);
  corrupt_byte(dir.path() / "shards" / shard_file_name(1), -1);
  try {
    MmapShardStorage::open(dir.str("shards"), {}, VerifyMode::kOpen);
    FAIL() << "corrupt shard byte accepted under verify=open";
  } catch (const StorageError& e) {
    // The mapped bytes fail, the quarantine re-read of the same corrupt
    // file fails too: the shard is reported quarantine-exhausted.
    EXPECT_EQ(e.code(), StorageErrorCode::kQuarantined);
    EXPECT_EQ(e.shard(), 1u);
  }
}

TEST(StorageIntegrity, CorruptManifestDigestIsDetected) {
  TempDir dir("dmpc_integrity_manifest");
  build_shards(dir);
  // Flip a byte of the stored digest itself: parsing still succeeds
  // (structure is intact), but verification must fail on the manifest.
  corrupt_byte(dir.path() / "shards" / kManifestFileName, -1);
  try {
    MmapShardStorage::open(dir.str("shards"), {}, VerifyMode::kOpen);
    FAIL() << "corrupt manifest digest accepted under verify=open";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.code(), StorageErrorCode::kChecksumMismatch);
    EXPECT_EQ(e.shard(), kManifestShard);
  }
}

TEST(StorageIntegrity, VerifyOffTrustsBytesButIntegrityPassFails) {
  TempDir dir("dmpc_integrity_offmode");
  build_shards(dir);
  corrupt_byte(dir.path() / "shards" / shard_file_name(0), -1);
  // Legacy behavior: verify=off opens the directory (structure is valid).
  const auto storage = MmapShardStorage::open(dir.str("shards"));
  // But an explicit integrity pass pinpoints the bad shard, never throws.
  const IntegrityReport report = storage->verify_integrity();
  EXPECT_EQ(report.status, IntegrityReport::Status::kFailed);
  EXPECT_EQ(report.bad_shard, 0u);
  EXPECT_FALSE(report.detail.empty());
  EXPECT_GT(storage->io_recovery().checksum_failures, 0u);
}

TEST(StorageIntegrity, V1ManifestOpensAndReportsUnverified) {
  TempDir dir("dmpc_integrity_v1");
  const Graph g = build_shards(dir);
  // Rewrite the manifest as version 1: 56-byte entries, no digest.
  const fs::path manifest_path = dir.path() / "shards" / kManifestFileName;
  std::vector<unsigned char> bytes;
  {
    std::ifstream in(manifest_path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  const ShardManifest manifest =
      parse_shard_manifest(bytes.data(), bytes.size());
  std::vector<unsigned char> v1(bytes.begin(),
                                bytes.begin() + kManifestHeaderBytes);
  const std::uint32_t version = 1;
  std::memcpy(v1.data() + 8, &version, sizeof(version));
  for (std::size_t i = 0; i < manifest.shards.size(); ++i) {
    const unsigned char* entry =
        bytes.data() + kManifestHeaderBytes + i * kManifestEntryBytes;
    v1.insert(v1.end(), entry, entry + kManifestEntryBytesV1);
  }
  {
    std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(v1.data()),
              static_cast<std::streamsize>(v1.size()));
  }
  // verify=open on a v1 directory is a no-op (nothing checksummed), the
  // graph is served as before, and the integrity pass says "unverified".
  const auto storage =
      MmapShardStorage::open(dir.str("shards"), {}, VerifyMode::kOpen);
  EXPECT_FALSE(storage->manifest().has_checksums());
  expect_identical_graphs(g, storage->graph());
  const IntegrityReport report = storage->verify_integrity();
  EXPECT_EQ(report.status, IntegrityReport::Status::kUnverified);
}

TEST(StorageIntegrity, TransientInjectedFaultsRecoverIdentically) {
  TempDir dir("dmpc_integrity_transient");
  build_shards(dir);
  const auto clean = MmapShardStorage::open(dir.str("shards"));

  IoFaultPlan plan;
  plan.add({IoFaultKind::kEio, /*shard=*/0, kAccessOpen, /*delay=*/1,
            /*attempts=*/2});
  plan.add({IoFaultKind::kShortRead, /*shard=*/1, kAccessOpen, /*delay=*/1,
            /*attempts=*/1});
  plan.add({IoFaultKind::kSlow, /*shard=*/2, kAccessOpen, /*delay=*/3,
            /*attempts=*/1});
  plan.add({IoFaultKind::kEio, kManifestShard, kAccessOpen, /*delay=*/1,
            /*attempts=*/1});
  const auto faulted =
      MmapShardStorage::open(dir.str("shards"), {}, VerifyMode::kOff, plan);
  expect_identical_graphs(clean->graph(), faulted->graph());

  const IoRecoveryStats& ledger = faulted->io_recovery();
  EXPECT_EQ(ledger.io_faults_injected, 5u);
  EXPECT_EQ(ledger.retries, 4u);         // 2 eio + 1 short_read + 1 eio
  EXPECT_GE(ledger.backoff_units, 3u);   // slow delay + retry backoff
  EXPECT_EQ(ledger.quarantined_shards, 0u);
  EXPECT_EQ(ledger.degraded, 0u);
}

TEST(StorageIntegrity, InjectedCorruptionHealsOnRetry) {
  TempDir dir("dmpc_integrity_heal");
  build_shards(dir);
  IoFaultPlan plan;
  plan.add({IoFaultKind::kCorrupt, /*shard=*/0, kAccessVerify, /*delay=*/1,
            /*attempts=*/1});
  const auto storage =
      MmapShardStorage::open(dir.str("shards"), {}, VerifyMode::kOpen, plan);
  const IoRecoveryStats& ledger = storage->io_recovery();
  EXPECT_EQ(ledger.checksum_failures, 1u);
  EXPECT_EQ(ledger.retries, 1u);
  EXPECT_EQ(ledger.quarantined_shards, 0u);
  EXPECT_EQ(ledger.shards_verified, storage->manifest().shards.size());
}

TEST(StorageIntegrity, PersistentInjectedCorruptionQuarantines) {
  TempDir dir("dmpc_integrity_quarantine");
  const Graph g = build_shards(dir);
  // The mapped view of shard 0 reads corrupt on every in-budget verify
  // attempt (initial + max_retries retries = 4 with the default budget),
  // but the quarantine re-read (a different access ordinal) is clean: the
  // ladder must fall through to the heap copy and then verify it.
  IoFaultPlan plan;
  plan.add({IoFaultKind::kCorrupt, /*shard=*/0, kAccessVerify, /*delay=*/1,
            /*attempts=*/4});
  const auto storage =
      MmapShardStorage::open(dir.str("shards"), {}, VerifyMode::kOpen, plan);
  const IoRecoveryStats& ledger = storage->io_recovery();
  EXPECT_EQ(ledger.quarantined_shards, 1u);
  EXPECT_GE(ledger.checksum_failures, 4u);
  // The quarantined heap copy serves byte-identical content.
  expect_identical_graphs(g, storage->graph());
  const auto quarantined_mis = Solver().mis(*storage);
  const auto clean_mis = Solver().mis(g);
  EXPECT_EQ(quarantined_mis.in_set, clean_mis.in_set);
  // Residency accounting includes the heap copy.
  EXPECT_GT(storage->stats().resident_bytes, 0u);
}

TEST(StorageIntegrity, FallbackDegradesToMemoryBackend) {
  TempDir dir("dmpc_integrity_fallback");
  const Graph g = build_shards(dir);
  IoFaultPlan plan;
  plan.add({IoFaultKind::kMapFail, /*shard=*/0, kAccessOpen, /*delay=*/1,
            /*attempts=*/mpc::RecoveryOptions::kMaxRetries + 1});

  StorageOptions options;
  options.backend = StorageBackend::kMmap;
  options.shard_dir = dir.str("shards");
  // Without a fallback the exhausted ladder surfaces the typed error.
  try {
    open_storage(options, dir.str("g.txt"), {}, plan);
    FAIL() << "exhausted map failures accepted";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.code(), StorageErrorCode::kMapFailed);
  }
  // With fallback=memory the same failure degrades to the text re-read.
  options.fallback = FallbackMode::kMemory;
  const auto degraded = open_storage(options, dir.str("g.txt"), {}, plan);
  EXPECT_EQ(degraded->backend(), StorageBackend::kMemory);
  EXPECT_EQ(degraded->io_recovery().degraded, 1u);
  expect_identical_graphs(g, degraded->graph());
  const auto fallback_mis = Solver().mis(*degraded);
  EXPECT_EQ(fallback_mis.in_set, Solver().mis(g).in_set);
  EXPECT_EQ(fallback_mis.report.recovery.storage.degraded, 1u);
}

TEST(StorageIntegrity, ParanoidGateCatchesPostOpenCorruption) {
  TempDir dir("dmpc_integrity_paranoid");
  build_shards(dir);
  const auto storage =
      MmapShardStorage::open(dir.str("shards"), {}, VerifyMode::kParanoid);
  // The directory was clean at open; corrupt it afterwards. The shared page
  // cache makes the write visible through the existing mapping.
  corrupt_byte(dir.path() / "shards" / shard_file_name(0), -1);
  EXPECT_THROW(Solver().mis(*storage), StorageError);
}

TEST(StorageIntegrity, CertifyGateFailsStorageIntegrityClaim) {
  TempDir dir("dmpc_integrity_certify");
  build_shards(dir);
  // verify=off: the open trusts the bytes, but checked mode must still
  // refuse to compute from them — the gate runs before the solve.
  corrupt_byte(dir.path() / "shards" / shard_file_name(0), -1);
  const auto storage = MmapShardStorage::open(dir.str("shards"));
  SolveOptions options;
  options.certify = verify::CertifyMode::kAnswer;
  const Solver solver(options);
  try {
    solver.mis(*storage);
    FAIL() << "corrupt backend certified";
  } catch (const verify::CertificationError& e) {
    ASSERT_EQ(e.certificate().claims.size(), 1u);
    EXPECT_EQ(e.certificate().claims[0].claim,
              verify::Claim::kStorageIntegrity);
    EXPECT_EQ(e.certificate().claims[0].verdict, verify::Verdict::kFail);
    EXPECT_TRUE(e.certificate().claims[0].has_witness);
  }
}

TEST(StorageIntegrity, CertifiedCleanStorageSolveCarriesPassClaim) {
  TempDir dir("dmpc_integrity_certify_pass");
  build_shards(dir);
  const auto storage =
      MmapShardStorage::open(dir.str("shards"), {}, VerifyMode::kOpen);
  SolveOptions options;
  options.certify = verify::CertifyMode::kAnswer;
  const Solver solver(options);
  const auto solution = solver.mis(*storage);
  EXPECT_TRUE(solution.report.certificate.ok());
  const auto& claim = solution.report.certificate.claims.back();
  EXPECT_EQ(claim.claim, verify::Claim::kStorageIntegrity);
  EXPECT_EQ(claim.verdict, verify::Verdict::kPass);
  EXPECT_EQ(claim.checked, storage->manifest().shards.size());
}

TEST(StorageIntegrity, CrashedBuilderLeavesNoOpenableDirectory) {
  TempDir dir("dmpc_integrity_crash");
  const Graph g = graph::gnm(200, 1600, 7);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  ShardBuildOptions options;
  options.shard_words = 1024;
  options.abort_before_manifest = [] {
    throw std::runtime_error("simulated builder crash");
  };
  EXPECT_THROW(shard_build(dir.str("g.txt"), dir.str("shards"), options),
               std::runtime_error);
  // Shard files exist, but the manifest-last commit protocol means the
  // partial directory can never be opened (missing manifest = kIoError).
  EXPECT_TRUE(fs::exists(dir.path() / "shards" / shard_file_name(0)));
  try {
    MmapShardStorage::open(dir.str("shards"));
    FAIL() << "partial (crashed) build accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kIoError);
  }
}

TEST(IoFaultPlanText, ParsePrintRoundTrip) {
  const std::string text =
      "# storage chaos schedule\n"
      "eio shard=0 access=0 attempts=2\n"
      "short_read shard=1 access=0\n"
      "slow shard=2 access=1 delay=5\n"
      "corrupt shard=manifest access=1\n"
      "map_fail shard=3 access=0 attempts=4\n";
  const IoFaultPlan plan = IoFaultPlan::parse(text);
  ASSERT_EQ(plan.events().size(), 5u);
  EXPECT_EQ(plan.events()[0].kind, IoFaultKind::kEio);
  EXPECT_EQ(plan.events()[0].attempts, 2u);
  EXPECT_EQ(plan.events()[2].delay, 5u);
  EXPECT_EQ(plan.events()[3].shard, kManifestShard);
  EXPECT_TRUE(plan.check().empty());
  // The printed form re-parses to the same plan.
  const IoFaultPlan reparsed = IoFaultPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
  ASSERT_EQ(reparsed.events().size(), plan.events().size());
}

TEST(IoFaultPlanText, RejectsMalformedLines) {
  const auto code = [](const std::string& text) -> std::string {
    try {
      IoFaultPlan::parse(text);
    } catch (const ParseError& e) {
      return parse_error_code_name(e.code());
    }
    return "";
  };
  EXPECT_EQ(code("explode shard=0 access=0\n"), "bad_token");
  EXPECT_EQ(code("eio shard=0 nonsense\n"), "malformed_line");
  EXPECT_EQ(code("eio shard=0 mode=7\n"), "bad_token");
  EXPECT_EQ(code("eio shard=x access=0\n"), "bad_token");
  EXPECT_EQ(code("eio shard=0 access=0 attempts=0\n"), "out_of_range");
  EXPECT_EQ(code("eio shard=0 access=0 attempts=999\n"), "out_of_range");
  EXPECT_EQ(code("slow shard=0 delay=0\n"), "out_of_range");
  EXPECT_EQ(code("eio access=0\n"), "");  // shard defaults to 0: admissible
}

TEST(StorageIntegrity, NamesAreStable) {
  EXPECT_STREQ(verify_mode_name(VerifyMode::kOff), "off");
  EXPECT_STREQ(verify_mode_name(VerifyMode::kOpen), "open");
  EXPECT_STREQ(verify_mode_name(VerifyMode::kParanoid), "paranoid");
  EXPECT_STREQ(fallback_mode_name(FallbackMode::kNone), "none");
  EXPECT_STREQ(fallback_mode_name(FallbackMode::kMemory), "memory");
  EXPECT_STREQ(storage_error_code_name(StorageErrorCode::kChecksumMismatch),
               "checksum_mismatch");
  EXPECT_STREQ(storage_error_code_name(StorageErrorCode::kShortRead),
               "short_read");
  EXPECT_STREQ(storage_error_code_name(StorageErrorCode::kIoTransient),
               "io_transient");
  EXPECT_STREQ(storage_error_code_name(StorageErrorCode::kMapFailed),
               "map_failed");
  EXPECT_STREQ(storage_error_code_name(StorageErrorCode::kQuarantined),
               "quarantined");
}

}  // namespace
}  // namespace dmpc::mpc
