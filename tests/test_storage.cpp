// The storage seam: shard format, streaming builder, and backends.
//
// The contract under test (docs/STORAGE.md): a shard directory written by
// shard_build, opened through MmapShardStorage, exposes *exactly* the graph
// Graph::from_edges builds from the same edge list — identical offsets,
// adjacency rows, incident EdgeIds, canonical edge order, stats, and solve
// results — while the manifest is an untrusted-input boundary rejecting
// every malformed byte with a typed ParseError.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/report_json.hpp"
#include "api/solver.hpp"
#include "exec/parallel.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_stats.hpp"
#include "graph/io.hpp"
#include "mpc/shard_format.hpp"
#include "mpc/storage.hpp"
#include "support/parse_error.hpp"

namespace dmpc::mpc {
namespace {

namespace fs = std::filesystem;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Fresh scratch directory under the system temp root, removed on scope
/// exit so failed assertions cannot poison later runs.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }
  std::string str(const std::string& child = {}) const {
    return child.empty() ? path_.string() : (path_ / child).string();
  }

 private:
  fs::path path_;
};

/// Every observable CSR byte must agree between the two views.
void expect_identical_graphs(const Graph& expected, const Graph& actual) {
  ASSERT_EQ(expected.num_nodes(), actual.num_nodes());
  ASSERT_EQ(expected.num_edges(), actual.num_edges());
  EXPECT_EQ(expected.max_degree(), actual.max_degree());
  for (NodeId v = 0; v < expected.num_nodes(); ++v) {
    ASSERT_EQ(expected.degree(v), actual.degree(v)) << "node " << v;
    const auto en = expected.neighbors(v);
    const auto an = actual.neighbors(v);
    const auto ei = expected.incident_edges(v);
    const auto ai = actual.incident_edges(v);
    for (std::uint32_t i = 0; i < expected.degree(v); ++i) {
      ASSERT_EQ(en[i], an[i]) << "adjacency of node " << v << " slot " << i;
      ASSERT_EQ(ei[i], ai[i]) << "incident of node " << v << " slot " << i;
    }
  }
  for (EdgeId e = 0; e < expected.num_edges(); ++e) {
    ASSERT_EQ(expected.edge(e).u, actual.edge(e).u) << "edge " << e;
    ASSERT_EQ(expected.edge(e).v, actual.edge(e).v) << "edge " << e;
  }
  EXPECT_TRUE(expected.edges() == actual.edges());
}

void expect_round_trip(const Graph& g, std::uint64_t shard_words,
                       const char* label) {
  TempDir dir(std::string("dmpc_storage_roundtrip_") + label);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  ShardBuildOptions options;
  options.shard_words = shard_words;
  const auto stats = shard_build(dir.str("g.txt"), dir.str("shards"), options);
  EXPECT_EQ(stats.n, g.num_nodes()) << label;
  EXPECT_EQ(stats.m, g.num_edges()) << label;
  const auto storage = MmapShardStorage::open(dir.str("shards"));
  EXPECT_EQ(storage->stats().shards, stats.shards) << label;
  expect_identical_graphs(g, storage->graph());

  // Derived stats and solve artifacts must agree too: the mmap view feeds
  // the same algorithms the heap CSR does.
  const auto ex = exec::Executor::with_threads(1);
  const auto expected_stats = graph::compute_stats(g, ex);
  const auto actual_stats = graph::compute_stats(storage->graph(), ex);
  EXPECT_EQ(expected_stats.triangles, actual_stats.triangles) << label;
  EXPECT_EQ(expected_stats.components, actual_stats.components) << label;
  const Solver solver;
  const auto expected_mis = solver.mis(g);
  const auto actual_mis = solver.mis(*storage);
  EXPECT_EQ(expected_mis.in_set, actual_mis.in_set) << label;
  EXPECT_EQ(to_json(expected_mis.report).dump(),
            to_json(actual_mis.report).dump())
      << label;
}

TEST(ShardRoundTrip, SingleShard) {
  expect_round_trip(graph::gnm(800, 6400, 3), /*shard_words=*/0, "single");
}

TEST(ShardRoundTrip, ManyShards) {
  expect_round_trip(graph::gnm(800, 6400, 3), /*shard_words=*/1024, "many");
}

TEST(ShardRoundTrip, PowerLawSkewedDegrees) {
  expect_round_trip(graph::power_law(500, 3000, 2.2, 9), /*shard_words=*/2048,
                    "power_law");
}

TEST(ShardRoundTrip, StarHighDegreeHub) {
  // One node owns every edge: the greedy packer must handle a single node
  // whose row exceeds the target shard size.
  expect_round_trip(graph::star(300), /*shard_words=*/64, "star");
}

TEST(ShardRoundTrip, EdgelessGraph) {
  TempDir dir("dmpc_storage_edgeless");
  std::ofstream(dir.str("g.txt")) << "5 0\n";
  const auto stats = shard_build(dir.str("g.txt"), dir.str("shards"));
  EXPECT_EQ(stats.n, 5u);
  EXPECT_EQ(stats.m, 0u);
  const auto storage = MmapShardStorage::open(dir.str("shards"));
  EXPECT_EQ(storage->graph().num_nodes(), 5u);
  EXPECT_EQ(storage->graph().num_edges(), 0u);
  EXPECT_EQ(storage->graph().max_degree(), 0u);
}

TEST(ShardBuild, RejectsDuplicateEdges) {
  TempDir dir("dmpc_storage_dup");
  std::ofstream(dir.str("g.txt")) << "4 3\n0 1\n2 3\n1 0\n";
  try {
    shard_build(dir.str("g.txt"), dir.str("shards"));
    FAIL() << "duplicate edge accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kDuplicateEdge);
  }
}

TEST(ShardBuild, RejectsDedupePolicy) {
  TempDir dir("dmpc_storage_policy");
  std::ofstream(dir.str("g.txt")) << "2 1\n0 1\n";
  ShardBuildOptions options;
  options.limits.duplicates = graph::DuplicatePolicy::kDedupe;
  EXPECT_THROW(shard_build(dir.str("g.txt"), dir.str("shards"), options),
               CheckFailure);
}

TEST(ShardBuild, MissingInputIsIoError) {
  TempDir dir("dmpc_storage_noinput");
  try {
    shard_build(dir.str("absent.txt"), dir.str("shards"));
    FAIL() << "missing input accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kIoError);
  }
}

// ---- Manifest codec ----

ShardManifest build_manifest_fixture(const std::string& dir_name,
                                     std::string* shard_dir) {
  static TempDir dir("dmpc_storage_manifest_fixture");
  const std::string out = dir.str(dir_name);
  const Graph g = graph::gnm(200, 1600, 5);
  graph::write_edge_list_file(g, dir.str(dir_name + ".txt"));
  ShardBuildOptions options;
  options.shard_words = 1024;
  shard_build(dir.str(dir_name + ".txt"), out, options);
  std::ifstream in(out + "/" + kManifestFileName, std::ios::binary);
  std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (shard_dir != nullptr) *shard_dir = out;
  return parse_shard_manifest(bytes.data(), bytes.size());
}

TEST(ShardManifestCodec, EncodeParseRoundTrip) {
  const ShardManifest manifest = build_manifest_fixture("codec", nullptr);
  EXPECT_EQ(manifest.n, 200u);
  EXPECT_EQ(manifest.m, 1600u);
  EXPECT_GT(manifest.shards.size(), 1u);
  const auto bytes = encode_shard_manifest(manifest);
  const ShardManifest reparsed =
      parse_shard_manifest(bytes.data(), bytes.size());
  EXPECT_EQ(reparsed.n, manifest.n);
  EXPECT_EQ(reparsed.m, manifest.m);
  EXPECT_EQ(reparsed.max_degree, manifest.max_degree);
  EXPECT_EQ(reparsed.shard_words, manifest.shard_words);
  ASSERT_EQ(reparsed.shards.size(), manifest.shards.size());
  for (std::size_t i = 0; i < manifest.shards.size(); ++i) {
    EXPECT_EQ(reparsed.shards[i].node_begin, manifest.shards[i].node_begin);
    EXPECT_EQ(reparsed.shards[i].node_end, manifest.shards[i].node_end);
    EXPECT_EQ(reparsed.shards[i].edge_begin, manifest.shards[i].edge_begin);
    EXPECT_EQ(reparsed.shards[i].edge_end, manifest.shards[i].edge_end);
    EXPECT_EQ(reparsed.shards[i].slot_begin, manifest.shards[i].slot_begin);
    EXPECT_EQ(reparsed.shards[i].slot_end, manifest.shards[i].slot_end);
    EXPECT_EQ(reparsed.shards[i].file_bytes, manifest.shards[i].file_bytes);
  }
}

ParseErrorCode parse_code(const std::vector<unsigned char>& bytes,
                          const graph::EdgeListLimits& limits = {}) {
  try {
    parse_shard_manifest(bytes.data(), bytes.size(), limits);
  } catch (const ParseError& e) {
    return e.code();
  }
  ADD_FAILURE() << "manifest accepted";
  return ParseErrorCode::kIoError;
}

TEST(ShardManifestCodec, RejectsMalformedBytes) {
  const ShardManifest manifest = build_manifest_fixture("reject", nullptr);
  const auto valid = encode_shard_manifest(manifest);

  auto corrupt = valid;
  corrupt[0] = 'X';  // magic
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kBadHeader);

  corrupt = valid;
  corrupt[8] = 99;  // version
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kBadHeader);

  corrupt = valid;
  corrupt[12] = 1;  // flags must be zero
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kBadHeader);

  corrupt = valid;
  corrupt.resize(corrupt.size() - 1);  // truncated entry table
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kCountMismatch);

  corrupt = valid;
  corrupt.resize(kManifestHeaderBytes - 8);  // shorter than the header
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kBadHeader);

  corrupt = valid;
  corrupt[32] += 1;  // total_slots != 2m
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kCountMismatch);

  // First entry's node_begin bumped: ranges no longer tile [0, n).
  corrupt = valid;
  corrupt[kManifestHeaderBytes] += 1;
  EXPECT_EQ(parse_code(corrupt), ParseErrorCode::kCountMismatch);

  // Inverted node range in the first entry (node_end < node_begin).
  corrupt = valid;
  std::uint64_t inverted = manifest.shards[0].node_end + 1;
  std::memcpy(corrupt.data() + kManifestHeaderBytes, &inverted, 8);
  EXPECT_NE(parse_code(corrupt), ParseErrorCode::kIoError);
}

TEST(ShardManifestCodec, EnforcesEdgeListLimits) {
  const ShardManifest manifest = build_manifest_fixture("limits", nullptr);
  const auto valid = encode_shard_manifest(manifest);
  graph::EdgeListLimits tight;
  tight.max_nodes = manifest.n - 1;
  EXPECT_EQ(parse_code(valid, tight), ParseErrorCode::kShardLimitExceeded);
  tight = {};
  tight.max_edges = manifest.m - 1;
  EXPECT_EQ(parse_code(valid, tight), ParseErrorCode::kShardLimitExceeded);
  // At exactly the caps the manifest is accepted.
  tight = {};
  tight.max_nodes = manifest.n;
  tight.max_edges = manifest.m;
  EXPECT_NO_THROW(parse_shard_manifest(valid.data(), valid.size(), tight));
}

// ---- MmapShardStorage open-time validation ----

TEST(MmapShardStorage, RejectsTruncatedShardFile) {
  TempDir dir("dmpc_storage_truncated");
  const Graph g = graph::gnm(200, 1600, 6);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  ShardBuildOptions options;
  options.shard_words = 1024;
  shard_build(dir.str("g.txt"), dir.str("shards"), options);
  fs::resize_file(dir.path() / "shards" / shard_file_name(1), 40);
  try {
    MmapShardStorage::open(dir.str("shards"));
    FAIL() << "truncated shard accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kCountMismatch);
  }
}

TEST(MmapShardStorage, RejectsCorruptShardMagic) {
  TempDir dir("dmpc_storage_badmagic");
  const Graph g = graph::gnm(100, 400, 6);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  shard_build(dir.str("g.txt"), dir.str("shards"));
  {
    std::fstream f(dir.path() / "shards" / shard_file_name(0),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.put('Z');
  }
  try {
    MmapShardStorage::open(dir.str("shards"));
    FAIL() << "corrupt shard magic accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kBadHeader);
  }
}

TEST(MmapShardStorage, RejectsCorruptOffsets) {
  TempDir dir("dmpc_storage_badoffsets");
  const Graph g = graph::gnm(100, 400, 6);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  shard_build(dir.str("g.txt"), dir.str("shards"));
  {
    // Scribble over the first offset (bytes 16..24): the slice is no longer
    // anchored at slot_begin.
    std::fstream f(dir.path() / "shards" / shard_file_name(0),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    const std::uint64_t garbage = ~0ull;
    f.write(reinterpret_cast<const char*>(&garbage), 8);
  }
  try {
    MmapShardStorage::open(dir.str("shards"));
    FAIL() << "corrupt offsets accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kCountMismatch);
  }
}

TEST(MmapShardStorage, RejectsMissingDirectory) {
  try {
    MmapShardStorage::open("/nonexistent/dmpc_shards");
    FAIL() << "missing directory accepted";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kIoError);
  }
}

TEST(MmapShardStorage, GraphOutlivesStorage) {
  TempDir dir("dmpc_storage_outlive");
  const Graph g = graph::gnm(100, 400, 6);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  shard_build(dir.str("g.txt"), dir.str("shards"));
  Graph view;
  {
    const auto storage = MmapShardStorage::open(dir.str("shards"));
    view = storage->graph();
  }
  // The residency handle keeps the mappings alive after the Storage dies.
  expect_identical_graphs(g, view);
}

// ---- open_storage dispatch & host stats ----

TEST(OpenStorage, DispatchesOnBackend) {
  TempDir dir("dmpc_storage_dispatch");
  const Graph g = graph::gnm(100, 400, 6);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  shard_build(dir.str("g.txt"), dir.str("shards"));

  StorageOptions memory;
  const auto mem = open_storage(memory, dir.str("g.txt"));
  EXPECT_EQ(mem->backend(), StorageBackend::kMemory);
  EXPECT_EQ(mem->stats().shards, 1u);
  EXPECT_GT(mem->stats().bytes_total, 0u);

  StorageOptions mmap_opts;
  mmap_opts.backend = StorageBackend::kMmap;
  mmap_opts.shard_dir = dir.str("shards");
  const auto mapped = open_storage(mmap_opts, "ignored");
  EXPECT_EQ(mapped->backend(), StorageBackend::kMmap);
  expect_identical_graphs(mem->graph(), mapped->graph());
}

TEST(OpenStorage, BackendNames) {
  EXPECT_STREQ(storage_backend_name(StorageBackend::kMemory), "memory");
  EXPECT_STREQ(storage_backend_name(StorageBackend::kMmap), "mmap");
}

// ---- Solver seam ----

TEST(SolverStorage, OpenStorageHonorsOptions) {
  TempDir dir("dmpc_storage_solver");
  const Graph g = graph::gnm(300, 2400, 6);
  graph::write_edge_list_file(g, dir.str("g.txt"));
  shard_build(dir.str("g.txt"), dir.str("shards"));

  SolveOptions options;
  options.storage.backend = StorageBackend::kMmap;
  options.storage.shard_dir = dir.str("shards");
  const Solver solver(options);
  const auto storage = solver.open_storage("ignored");
  EXPECT_EQ(storage->backend(), StorageBackend::kMmap);

  const auto from_storage = solver.maximal_matching(*storage);
  const auto from_graph = Solver().maximal_matching(g);
  EXPECT_EQ(from_storage.matching, from_graph.matching);
  EXPECT_EQ(to_json(from_storage.report).dump(),
            to_json(from_graph.report).dump());

  // The storage solve's host section carries the residency gauges.
  const auto host = obs::to_json_section(solver.metrics_snapshot(),
                                         obs::MetricSection::kHost,
                                         /*include_zero=*/true)
                        .dump();
  EXPECT_NE(host.find("\"storage/bytes_mapped\""), std::string::npos);
  EXPECT_NE(host.find("\"storage/shards\""), std::string::npos);
}

}  // namespace
}  // namespace dmpc::mpc
