// Unit tests for the derandomization engines: threshold seed search and the
// method of conditional expectations (exact-enumeration oracle).
#include <gtest/gtest.h>

#include <cmath>

#include "derand/cond_expect.hpp"
#include "derand/objective.hpp"
#include "derand/seed_search.hpp"
#include "hash/kwise.hpp"
#include "hash/seed.hpp"
#include "mpc/cluster.hpp"
#include "support/check.hpp"

namespace dmpc::derand {
namespace {

mpc::Cluster make_cluster() {
  mpc::ClusterConfig config;
  config.machine_space = 256;
  config.num_machines = 64;
  return mpc::Cluster(config);
}

/// Toy objective: q(seed) = number of 1-bits in the low 8 bits of the seed.
class PopcountObjective final : public Objective {
 public:
  double evaluate(std::uint64_t seed) const override {
    return static_cast<double>(__builtin_popcountll(seed & 0xFF));
  }
  std::uint64_t term_count() const override { return 8; }
};

TEST(SeedSearch, FindsFirstSeedMeetingThreshold) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  SearchOptions options;
  options.threshold = 3.0;
  const auto result = find_seed(cluster, objective, 1 << 8, options);
  EXPECT_EQ(result.seed, 7u);  // first seed with >= 3 bits set
  EXPECT_DOUBLE_EQ(result.value, 3.0);
  EXPECT_EQ(result.trials, 8u);
  EXPECT_GT(cluster.metrics().rounds(), 0u);
}

TEST(SeedSearch, ThresholdZeroCommitsImmediately) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  SearchOptions options;
  options.threshold = 0.0;
  const auto result = find_seed(cluster, objective, 1 << 8, options);
  EXPECT_EQ(result.seed, 0u);
  EXPECT_EQ(result.trials, 1u);
}

TEST(SeedSearch, ExhaustionThrows) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  SearchOptions options;
  options.threshold = 9.0;  // unreachable: popcount of 8 bits <= 8
  EXPECT_THROW(find_seed(cluster, objective, 1 << 8, options), CheckFailure);
}

TEST(SeedSearch, MaxTrialsRespected) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  SearchOptions options;
  options.threshold = 8.0;  // only seed 255 qualifies
  options.max_trials = 10;
  EXPECT_THROW(find_seed(cluster, objective, 1 << 8, options), CheckFailure);
}

TEST(SeedSearch, BatchRoundChargesAreConstantPerBatch) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  SearchOptions options;
  options.threshold = 8.0;
  options.candidates_per_batch = 256;
  const auto result = find_seed(cluster, objective, 1 << 8, options);
  EXPECT_EQ(result.seed, 255u);
  EXPECT_EQ(result.batches, 1u);  // one O(1)-round batch covered all
}

TEST(SeedSearch, FindBestSeed) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  const auto result = find_best_seed(cluster, objective, 1 << 8, 1 << 8);
  EXPECT_EQ(result.value, 8.0);
  EXPECT_EQ(result.seed, 255u);
  EXPECT_EQ(result.trials, 256u);
}

TEST(SeedSearch, FindBestSeedWithinBudget) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  const auto result = find_best_seed(cluster, objective, 1 << 8, 8);
  EXPECT_EQ(result.trials, 8u);
  EXPECT_DOUBLE_EQ(result.value, 3.0);  // best among 0..7 is 7 -> 3 bits
}

// --- Method of conditional expectations on a real hash family. ---
//
// Objective over the pairwise family [p]x[p], p = 13: q(h) = number of
// inputs x in {0..5} with h.raw(x) < 6. E[q] = 6 * 6/13 ~ 2.77, so the
// method must find a seed with q >= ceil(E[q]) ... we use guarantee
// floor(E[q]) to keep it safely below the true expectation.
class HashCountObjective final : public Objective {
 public:
  explicit HashCountObjective(const hash::KWiseFamily& family)
      : family_(&family) {}

  double evaluate(std::uint64_t seed) const override {
    const auto fn = family_->at(seed);
    double q = 0;
    for (std::uint64_t x = 0; x < 6; ++x) {
      if (fn.raw(x) < 6) q += 1.0;
    }
    return q;
  }
  std::uint64_t term_count() const override { return 6; }

 private:
  const hash::KWiseFamily* family_;
};

TEST(CondExpect, ExhaustiveOracleMatchesDirectAverage) {
  hash::KWiseFamily family(13, 13, 2, 13);
  HashCountObjective objective(family);
  const hash::SeedSpace space({13, 13});
  ExhaustiveConditional conditional(objective, space);

  // Prefix {} with candidate digit 4 must equal the average over the 13
  // seeds whose most-significant digit is 4.
  double direct = 0;
  for (std::uint64_t s = 0; s < 13; ++s) {
    direct += objective.evaluate(4 * 13 + s);
  }
  direct /= 13.0;
  EXPECT_NEAR(conditional.conditional_expectation({}, 4), direct, 1e-12);

  // Fully-fixed prefix: conditional expectation equals the point value.
  EXPECT_NEAR(conditional.conditional_expectation({4}, 9),
              objective.evaluate(4 * 13 + 9), 1e-12);
}

TEST(CondExpect, FixSeedAchievesExpectation) {
  auto cluster = make_cluster();
  hash::KWiseFamily family(13, 13, 2, 13);
  HashCountObjective objective(family);
  const hash::SeedSpace space({13, 13});
  ExhaustiveConditional conditional(objective, space);

  // True mean over the family.
  double mean = 0;
  for (std::uint64_t s = 0; s < space.size(); ++s) {
    mean += objective.evaluate(s);
  }
  mean /= static_cast<double>(space.size());

  FixOptions options;
  options.guarantee = mean;  // the method can never do worse than the mean
  const auto result = fix_seed(cluster, conditional, space, options);
  EXPECT_GE(result.value, mean);
  EXPECT_EQ(result.chunks, 2u);
  EXPECT_LT(result.seed, space.size());
  EXPECT_GT(cluster.metrics().rounds(), 0u);
}

TEST(CondExpect, GreedyChunkChoiceIsOptimalPerStep) {
  auto cluster = make_cluster();
  hash::KWiseFamily family(13, 13, 2, 13);
  HashCountObjective objective(family);
  const hash::SeedSpace space({13, 13});
  ExhaustiveConditional conditional(objective, space);
  FixOptions options;
  options.guarantee = 0.0;
  const auto result = fix_seed(cluster, conditional, space, options);
  // The chosen first digit maximizes the conditional expectation.
  const auto digits = space.decompose(result.seed);
  const double chosen = conditional.conditional_expectation({}, digits[0]);
  for (std::uint64_t d = 0; d < 13; ++d) {
    EXPECT_GE(chosen + 1e-12, conditional.conditional_expectation({}, d));
  }
}

TEST(CondExpect, InconsistentGuaranteeThrows) {
  auto cluster = make_cluster();
  hash::KWiseFamily family(13, 13, 2, 13);
  HashCountObjective objective(family);
  const hash::SeedSpace space({13, 13});
  ExhaustiveConditional conditional(objective, space);
  FixOptions options;
  options.guarantee = 100.0;  // impossible: q <= 6
  EXPECT_THROW(fix_seed(cluster, conditional, space, options), CheckFailure);
}

}  // namespace
}  // namespace dmpc::derand
