// Unit tests for the derandomization engines: threshold seed search and the
// method of conditional expectations (exact-enumeration oracle).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "derand/cond_expect.hpp"
#include "derand/objective.hpp"
#include "derand/seed_search.hpp"
#include "hash/kwise.hpp"
#include "hash/seed.hpp"
#include "mpc/cluster.hpp"
#include "support/check.hpp"

namespace dmpc::derand {
namespace {

mpc::Cluster make_cluster() {
  mpc::ClusterConfig config;
  config.machine_space = 256;
  config.num_machines = 64;
  return mpc::Cluster(config);
}

/// Toy objective: q(seed) = number of 1-bits in the low 8 bits of the seed.
class PopcountObjective final : public Objective {
 public:
  double evaluate(std::uint64_t seed) const override {
    return static_cast<double>(__builtin_popcountll(seed & 0xFF));
  }
  std::uint64_t term_count() const override { return 8; }
};

TEST(SeedSearch, FindsFirstSeedMeetingThreshold) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  SearchOptions options;
  options.threshold = 3.0;
  const auto result = find_seed(cluster, objective, 1 << 8, options);
  EXPECT_EQ(result.seed, 7u);  // first seed with >= 3 bits set
  EXPECT_DOUBLE_EQ(result.value, 3.0);
  EXPECT_EQ(result.trials, 8u);
  EXPECT_GT(cluster.metrics().rounds(), 0u);
}

TEST(SeedSearch, ThresholdZeroCommitsImmediately) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  SearchOptions options;
  options.threshold = 0.0;
  const auto result = find_seed(cluster, objective, 1 << 8, options);
  EXPECT_EQ(result.seed, 0u);
  EXPECT_EQ(result.trials, 1u);
}

TEST(SeedSearch, ExhaustionThrows) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  SearchOptions options;
  options.threshold = 9.0;  // unreachable: popcount of 8 bits <= 8
  EXPECT_THROW(find_seed(cluster, objective, 1 << 8, options), CheckFailure);
}

TEST(SeedSearch, MaxTrialsRespected) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  SearchOptions options;
  options.threshold = 8.0;  // only seed 255 qualifies
  options.max_trials = 10;
  EXPECT_THROW(find_seed(cluster, objective, 1 << 8, options), CheckFailure);
}

TEST(SeedSearch, BatchRoundChargesAreConstantPerBatch) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  SearchOptions options;
  options.threshold = 8.0;
  options.candidates_per_batch = 256;
  const auto result = find_seed(cluster, objective, 1 << 8, options);
  EXPECT_EQ(result.seed, 255u);
  EXPECT_EQ(result.batches, 1u);  // one O(1)-round batch covered all
}

TEST(SeedSearch, FindBestSeed) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  const auto result = find_best_seed(cluster, objective, 1 << 8, 1 << 8);
  EXPECT_EQ(result.value, 8.0);
  EXPECT_EQ(result.seed, 255u);
  EXPECT_EQ(result.trials, 256u);
}

TEST(SeedSearch, FindBestSeedWithinBudget) {
  auto cluster = make_cluster();
  PopcountObjective objective;
  const auto result = find_best_seed(cluster, objective, 1 << 8, 8);
  EXPECT_EQ(result.trials, 8u);
  EXPECT_DOUBLE_EQ(result.value, 3.0);  // best among 0..7 is 7 -> 3 bits
}

// --- Stride coverage property. ---

TEST(SeedSearch, EffectiveStrideIsAlwaysCoprime) {
  // Coprime strides pass through unchanged (mod seed_count).
  EXPECT_EQ(effective_stride(1, 256), 1u);
  EXPECT_EQ(effective_stride(3, 256), 3u);
  EXPECT_EQ(effective_stride(7919, 1 << 16), 7919u);
  // A multiple of seed_count degenerates to stride 0; it must become 1,
  // not silently re-evaluate seed `base` forever.
  EXPECT_EQ(effective_stride(256, 256), 1u);
  EXPECT_EQ(effective_stride(512, 256), 1u);
  // Non-coprime (but nonzero mod) strides get bumped to the next coprime
  // value instead of being kept — the old bug class.
  EXPECT_EQ(effective_stride(4, 256), 5u);
  EXPECT_EQ(effective_stride(6, 15), 7u);
  // Degenerate family of one seed.
  EXPECT_EQ(effective_stride(17, 1), 1u);
  // Property check across a grid: the result is always coprime, so the
  // strided walk is a bijection on [0, seed_count).
  for (std::uint64_t count : {2ull, 15ull, 16ull, 97ull, 360ull}) {
    for (std::uint64_t stride = 0; stride <= 2 * count + 1; ++stride) {
      const auto s = effective_stride(stride, count);
      ASSERT_GE(s, 1u);
      ASSERT_LT(s, std::max<std::uint64_t>(count, 2));
      ASSERT_EQ(std::gcd(s, count), 1u)
          << "stride=" << stride << " count=" << count;
    }
  }
}

TEST(SeedSearch, StridedWalkVisitsEveryResidue) {
  // Directly verify the coverage property find_seed's termination guarantee
  // rests on: for any requested stride, seed t -> (base + t*s) mod count
  // visits every residue exactly once over count trials.
  const std::uint64_t count = 360;  // many divisors -> many bad raw strides
  for (std::uint64_t stride : {1ull, 2ull, 90ull, 360ull, 719ull}) {
    const auto s = effective_stride(stride, count);
    std::vector<bool> seen(count, false);
    for (std::uint64_t t = 0; t < count; ++t) {
      const std::uint64_t seed = (11 + t * s) % count;
      ASSERT_FALSE(seen[seed]) << "stride=" << stride;
      seen[seed] = true;
    }
  }
}

TEST(SeedSearch, NonCoprimeStrideStillFindsIsolatedSeed) {
  // Only seed 255 meets the threshold. A raw stride of 4 from base 0 would
  // only ever visit even seeds (gcd(4, 256) = 4) and falsely exhaust; the
  // effective stride must reach it.
  auto cluster = make_cluster();
  PopcountObjective objective;
  SearchOptions options;
  options.threshold = 8.0;
  options.seed_base = 0;
  options.seed_stride = 4;
  const auto result = find_seed(cluster, objective, 1 << 8, options);
  EXPECT_EQ(result.seed, 255u);
  EXPECT_DOUBLE_EQ(result.value, 8.0);
}

TEST(SeedSearch, StrideMultipleOfCountDoesNotSpinOnBase) {
  // stride % seed_count == 0 previously walked seed `base` max_trials times.
  auto cluster = make_cluster();
  PopcountObjective objective;
  SearchOptions options;
  options.threshold = 8.0;
  options.seed_base = 3;
  options.seed_stride = 256;  // == seed_count
  const auto result = find_seed(cluster, objective, 1 << 8, options);
  EXPECT_EQ(result.seed, 255u);
  EXPECT_LE(result.trials, 256u);
}

// --- Method of conditional expectations on a real hash family. ---
//
// Objective over the pairwise family [p]x[p], p = 13: q(h) = number of
// inputs x in {0..5} with h.raw(x) < 6. E[q] = 6 * 6/13 ~ 2.77, so the
// method must find a seed with q >= ceil(E[q]) ... we use guarantee
// floor(E[q]) to keep it safely below the true expectation.
class HashCountObjective final : public Objective {
 public:
  explicit HashCountObjective(const hash::KWiseFamily& family)
      : family_(&family) {}

  double evaluate(std::uint64_t seed) const override {
    const auto fn = family_->at(seed);
    double q = 0;
    for (std::uint64_t x = 0; x < 6; ++x) {
      if (fn.raw(x) < 6) q += 1.0;
    }
    return q;
  }
  std::uint64_t term_count() const override { return 6; }

 private:
  const hash::KWiseFamily* family_;
};

TEST(CondExpect, ExhaustiveOracleMatchesDirectAverage) {
  hash::KWiseFamily family(13, 13, 2, 13);
  HashCountObjective objective(family);
  const hash::SeedSpace space({13, 13});
  ExhaustiveConditional conditional(objective, space);

  // Prefix {} with candidate digit 4 must equal the average over the 13
  // seeds whose most-significant digit is 4.
  double direct = 0;
  for (std::uint64_t s = 0; s < 13; ++s) {
    direct += objective.evaluate(4 * 13 + s);
  }
  direct /= 13.0;
  EXPECT_NEAR(conditional.conditional_expectation({}, 4), direct, 1e-12);

  // Fully-fixed prefix: conditional expectation equals the point value.
  EXPECT_NEAR(conditional.conditional_expectation({4}, 9),
              objective.evaluate(4 * 13 + 9), 1e-12);
}

TEST(CondExpect, FixSeedAchievesExpectation) {
  auto cluster = make_cluster();
  hash::KWiseFamily family(13, 13, 2, 13);
  HashCountObjective objective(family);
  const hash::SeedSpace space({13, 13});
  ExhaustiveConditional conditional(objective, space);

  // True mean over the family.
  double mean = 0;
  for (std::uint64_t s = 0; s < space.size(); ++s) {
    mean += objective.evaluate(s);
  }
  mean /= static_cast<double>(space.size());

  FixOptions options;
  options.guarantee = mean;  // the method can never do worse than the mean
  const auto result = fix_seed(cluster, conditional, space, options);
  EXPECT_GE(result.value, mean);
  EXPECT_EQ(result.chunks, 2u);
  EXPECT_LT(result.seed, space.size());
  EXPECT_GT(cluster.metrics().rounds(), 0u);
}

TEST(CondExpect, GreedyChunkChoiceIsOptimalPerStep) {
  auto cluster = make_cluster();
  hash::KWiseFamily family(13, 13, 2, 13);
  HashCountObjective objective(family);
  const hash::SeedSpace space({13, 13});
  ExhaustiveConditional conditional(objective, space);
  FixOptions options;
  options.guarantee = 0.0;
  const auto result = fix_seed(cluster, conditional, space, options);
  // The chosen first digit maximizes the conditional expectation.
  const auto digits = space.decompose(result.seed);
  const double chosen = conditional.conditional_expectation({}, digits[0]);
  for (std::uint64_t d = 0; d < 13; ++d) {
    EXPECT_GE(chosen + 1e-12, conditional.conditional_expectation({}, d));
  }
}

TEST(CondExpect, InconsistentGuaranteeThrows) {
  auto cluster = make_cluster();
  hash::KWiseFamily family(13, 13, 2, 13);
  HashCountObjective objective(family);
  const hash::SeedSpace space({13, 13});
  ExhaustiveConditional conditional(objective, space);
  FixOptions options;
  options.guarantee = 100.0;  // impossible: q <= 6
  EXPECT_THROW(fix_seed(cluster, conditional, space, options), CheckFailure);
}

// ---- Batched evaluation (range-based Objective API) ----

/// Counts how the engine drives the batch entry points: an objective that
/// does NOT override evaluate_batch exercises the default scalar fallback.
class CountingObjective final : public Objective {
 public:
  double evaluate(std::uint64_t seed) const override {
    ++scalar_calls;
    return static_cast<double>(seed % 17);
  }
  std::uint64_t term_count() const override { return 1; }
  mutable std::uint64_t scalar_calls = 0;
};

TEST(BatchEvaluate, DefaultFallbackMatchesScalarEvaluate) {
  CountingObjective objective;
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 37; ++s) seeds.push_back(s * 3 + 1);
  std::vector<double> batched(seeds.size());
  objective.evaluate_batch(seeds.data(), seeds.size(), batched.data());
  EXPECT_EQ(objective.scalar_calls, seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(batched[i], static_cast<double>(seeds[i] % 17));
  }
}

TEST(BatchEvaluate, ContiguousOverloadMatchesExplicitSeeds) {
  CountingObjective objective;
  std::vector<double> a(25);
  objective.evaluate_batch(/*seed_lo=*/100, a.size(), a.data());
  std::vector<std::uint64_t> seeds(25);
  std::iota(seeds.begin(), seeds.end(), std::uint64_t{100});
  std::vector<double> b(25);
  objective.evaluate_batch(seeds.data(), seeds.size(), b.data());
  EXPECT_EQ(a, b);
}

TEST(BatchEvaluate, ExecutorSweepChunksDeterministically) {
  // batch_evaluate splits into fixed kBatchChunk chunks regardless of the
  // executor, so BatchStats (and therefore the registry counters) are
  // thread-count invariant.
  CountingObjective objective;
  const std::size_t count = 3 * kBatchChunk + 5;
  std::vector<std::uint64_t> seeds(count);
  std::iota(seeds.begin(), seeds.end(), std::uint64_t{7});
  std::vector<double> serial_out(count);
  exec::Executor serial = exec::Executor::serial();
  const auto serial_stats = batch_evaluate(serial, objective, seeds.data(),
                                           count, serial_out.data());
  EXPECT_EQ(serial_stats.calls, (count + kBatchChunk - 1) / kBatchChunk);
  EXPECT_EQ(serial_stats.lanes, count);
  std::vector<double> parallel_out(count);
  exec::Executor parallel = exec::Executor::with_threads(4);
  const auto parallel_stats = batch_evaluate(
      parallel, objective, seeds.data(), count, parallel_out.data());
  EXPECT_EQ(parallel_stats.calls, serial_stats.calls);
  EXPECT_EQ(parallel_stats.lanes, serial_stats.lanes);
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(BatchEvaluate, EngineOptionsShareLabelAndBudgetFields) {
  // SearchOptions and FixOptions consolidate label/batch/trial budgets in
  // derand::EngineOptions; the defaults differ only in the label.
  SearchOptions search;
  FixOptions fix;
  EXPECT_EQ(search.label, "seed_search");
  EXPECT_EQ(fix.label, "cond_expect");
  EXPECT_EQ(search.candidates_per_batch, fix.candidates_per_batch);
  EXPECT_EQ(search.max_trials, fix.max_trials);
  EngineOptions& base = search;
  base.label = "custom";
  EXPECT_EQ(search.label, "custom");
}

}  // namespace
}  // namespace dmpc::derand
