// Tests for the obs tracing subsystem and the per-label metric attribution
// it rides on: span nesting and deterministic ordering, sink output formats,
// golden-trace byte-identity, and the zero-overhead-when-disabled contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "graph/generators.hpp"
#include "mis/det_mis.hpp"
#include "mpc/faults.hpp"
#include "mpc/metrics.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"

namespace dmpc {
namespace {

// --- Minimal JSON well-formedness checker (the repo's Json class is a
// writer; chrome output correctness is asserted by re-parsing it here and
// by `python3 -m json.tool` in CI). ---

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::int64_t find_int_arg(const obs::TraceEvent& event, const std::string& key) {
  for (const auto& a : event.args) {
    if (a.key == key) return std::get<std::int64_t>(a.value);
  }
  ADD_FAILURE() << "missing arg " << key << " on " << event.name;
  return -1;
}

// --- Metrics label attribution (satellite of the span layer). ---

TEST(Metrics, PerLabelAttribution) {
  mpc::Metrics m;
  m.charge_rounds(3, "a");
  m.add_communication(10, "a");
  m.add_communication(5, "b");
  m.add_communication(7);  // unlabeled: totals only
  m.observe_load(100, "a");
  m.observe_load(40, "a");
  m.observe_load(60, "b");
  m.observe_load(200);  // unlabeled: global peak only

  EXPECT_EQ(m.total_communication(), 22u);
  EXPECT_EQ(m.communication_by_label().at("a"), 10u);
  EXPECT_EQ(m.communication_by_label().at("b"), 5u);
  EXPECT_EQ(m.communication_by_label().count(""), 0u);
  EXPECT_EQ(m.peak_machine_load(), 200u);
  EXPECT_EQ(m.peak_load_by_label().at("a"), 100u);
  EXPECT_EQ(m.peak_load_by_label().at("b"), 60u);
}

TEST(Metrics, MergeSumsCommunicationAndMaxesPeaks) {
  mpc::Metrics a;
  a.add_communication(10, "x");
  a.observe_load(100, "x");
  mpc::Metrics b;
  b.add_communication(4, "x");
  b.add_communication(6, "y");
  b.observe_load(70, "x");
  b.observe_load(300, "y");

  a.merge(b);
  EXPECT_EQ(a.total_communication(), 20u);
  EXPECT_EQ(a.communication_by_label().at("x"), 14u);
  EXPECT_EQ(a.communication_by_label().at("y"), 6u);
  EXPECT_EQ(a.peak_load_by_label().at("x"), 100u);
  EXPECT_EQ(a.peak_load_by_label().at("y"), 300u);
  EXPECT_EQ(a.peak_machine_load(), 300u);
}

TEST(Metrics, ResetClearsLabelMaps) {
  mpc::Metrics m;
  m.charge_rounds(1, "a");
  m.add_communication(2, "a");
  m.observe_load(3, "a");
  m.reset();
  EXPECT_EQ(m.rounds(), 0u);
  EXPECT_EQ(m.total_communication(), 0u);
  EXPECT_EQ(m.peak_machine_load(), 0u);
  EXPECT_TRUE(m.rounds_by_label().empty());
  EXPECT_TRUE(m.communication_by_label().empty());
  EXPECT_TRUE(m.peak_load_by_label().empty());
}

// --- Span mechanics. ---

TEST(Trace, NullSessionIsInactiveAndFree) {
  obs::TraceSession session(nullptr);
  EXPECT_FALSE(session.active());
  EXPECT_FALSE(obs::enabled(&session));
  EXPECT_FALSE(obs::enabled(nullptr));
  {
    obs::Span span(&session, "noop");
    EXPECT_FALSE(span.active());
    span.arg("k", std::uint64_t{1});
    session.instant("x");
    obs::trace_primitive(&session, "p", 1, 2);
  }
  obs::Span null_span(nullptr, "noop");
  EXPECT_FALSE(null_span.active());
  session.finish();
  EXPECT_EQ(session.events_emitted(), 0u);
}

TEST(Trace, SpanNestingParentDepthAndOrdering) {
  obs::CollectorSink sink;
  obs::TraceSession session(&sink);
  {
    obs::Span outer(&session, "outer");
    session.instant("tick");
    {
      obs::Span inner(&session, "inner");
      inner.arg("candidates", std::uint64_t{7});
    }
  }
  session.finish();
  EXPECT_EQ(session.open_spans(), 0u);

  const auto& ev = sink.events();
  ASSERT_EQ(ev.size(), 5u);
  // Strictly increasing logical clock starting at 0.
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].seq, i);
  }
  EXPECT_EQ(ev[0].kind, obs::EventKind::kSpanBegin);
  EXPECT_EQ(ev[0].name, "outer");
  EXPECT_EQ(ev[0].parent, 0u);
  EXPECT_EQ(ev[0].depth, 0u);

  EXPECT_EQ(ev[1].kind, obs::EventKind::kInstant);
  EXPECT_EQ(ev[1].name, "tick");
  EXPECT_EQ(ev[1].span, ev[0].span);
  EXPECT_EQ(ev[1].depth, 1u);

  EXPECT_EQ(ev[2].kind, obs::EventKind::kSpanBegin);
  EXPECT_EQ(ev[2].name, "inner");
  EXPECT_EQ(ev[2].parent, ev[0].span);
  EXPECT_EQ(ev[2].depth, 1u);

  EXPECT_EQ(ev[3].kind, obs::EventKind::kSpanEnd);
  EXPECT_EQ(ev[3].name, "inner");
  EXPECT_EQ(find_int_arg(ev[3], "candidates"), 7);

  EXPECT_EQ(ev[4].kind, obs::EventKind::kSpanEnd);
  EXPECT_EQ(ev[4].name, "outer");
}

TEST(Trace, SpanReportsMetricDeltas) {
  mpc::Metrics metrics;
  obs::CollectorSink sink;
  obs::TraceSession session(&sink);
  session.attach_metrics(&metrics);
  metrics.charge_rounds(5, "before");
  metrics.add_communication(11, "before");
  {
    obs::Span span(&session, "work");
    metrics.charge_rounds(3, "work");
    metrics.add_communication(9, "work");
  }
  session.finish();
  ASSERT_EQ(sink.events().size(), 2u);
  const auto& end = sink.events()[1];
  EXPECT_EQ(find_int_arg(end, "rounds"), 3);
  EXPECT_EQ(find_int_arg(end, "communication"), 9);
}

// --- End-to-end: a traced MIS run. ---

TEST(Trace, PipelineSpanDeltaMatchesRunTotals) {
  const auto g = graph::gnm(192, 960, 7);
  obs::CollectorSink sink;
  obs::TraceSession session(&sink);
  mis::DetMisConfig config;
  config.trace = &session;
  const auto result = mis::det_mis(g, config);
  session.finish();

  const obs::TraceEvent* pipeline_end = nullptr;
  for (const auto& event : sink.events()) {
    if (event.kind == obs::EventKind::kSpanEnd &&
        event.name == "mis/pipeline") {
      pipeline_end = &event;
    }
  }
  ASSERT_NE(pipeline_end, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(find_int_arg(*pipeline_end, "rounds")),
            result.metrics.rounds());
  EXPECT_EQ(static_cast<std::uint64_t>(
                find_int_arg(*pipeline_end, "communication")),
            result.metrics.total_communication());

  // The structured progress series replaced the free-form debug line: one
  // event per iteration, with the Lemma-12 good-node mass fraction.
  std::uint64_t progress_events = 0;
  for (const auto& event : sink.events()) {
    if (event.kind != obs::EventKind::kInstant ||
        event.name != "mis/progress") {
      continue;
    }
    ++progress_events;
    EXPECT_GE(find_int_arg(event, "iteration"), 1);
    EXPECT_GE(find_int_arg(event, "edges_remaining"), 0);
    bool has_fraction = false;
    for (const auto& a : event.args) {
      if (a.key == "good_node_fraction") {
        has_fraction = true;
        const double f = std::get<double>(a.value);
        EXPECT_GT(f, 0.0);
        EXPECT_LE(f, 1.0);
      }
    }
    EXPECT_TRUE(has_fraction);
  }
  EXPECT_EQ(progress_events, result.iterations);

  // Span aggregation covers the phase decomposition.
  const auto stats = obs::summarize_spans(sink.events());
  std::uint64_t phase_rounds = 0;
  bool saw_derand = false;
  for (const auto& s : stats) {
    if (s.name == "mis/phase/derand") {
      saw_derand = true;
      EXPECT_EQ(s.count, result.iterations);
    }
    if (s.name.rfind("mis/phase/", 0) == 0) phase_rounds += s.rounds;
  }
  EXPECT_TRUE(saw_derand);
  EXPECT_GT(phase_rounds, 0u);
  EXPECT_LE(phase_rounds, result.metrics.rounds());
}

TEST(Trace, DisabledTracingLeavesMetricsIdentical) {
  const auto g = graph::gnm(160, 640, 9);
  mis::DetMisConfig plain_config;
  const auto plain = mis::det_mis(g, plain_config);

  obs::CollectorSink sink;
  obs::TraceSession session(&sink);
  mis::DetMisConfig traced_config;
  traced_config.trace = &session;
  const auto traced = mis::det_mis(g, traced_config);
  session.finish();

  EXPECT_GT(session.events_emitted(), 0u);
  EXPECT_EQ(plain.metrics.rounds(), traced.metrics.rounds());
  EXPECT_EQ(plain.metrics.total_communication(),
            traced.metrics.total_communication());
  EXPECT_EQ(plain.metrics.peak_machine_load(),
            traced.metrics.peak_machine_load());
  EXPECT_EQ(plain.metrics.rounds_by_label(), traced.metrics.rounds_by_label());
  EXPECT_EQ(plain.metrics.communication_by_label(),
            traced.metrics.communication_by_label());
  EXPECT_EQ(plain.in_set, traced.in_set);
}

// --- Sinks. ---

TEST(Sinks, GoldenJsonlTraceIsByteIdentical) {
  const auto g = graph::gnm(160, 800, 11);
  auto run = [&] {
    std::ostringstream out;
    obs::JsonlTraceSink sink(&out, /*include_wall_time=*/false);
    obs::TraceSession session(&sink);
    mis::DetMisConfig config;
    config.trace = &session;
    mis::det_mis(g, config);
    session.finish();
    return out.str();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Every line is one well-formed JSON object with the fixed field order.
  std::istringstream lines(first);
  std::string line;
  std::uint64_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    EXPECT_EQ(line.rfind("{\"seq\":", 0), 0u) << line;
    EXPECT_EQ(line.find("\"ts_ns\""), std::string::npos) << line;
    ++count;
  }
  EXPECT_GT(count, 4u);
}

TEST(Sinks, JsonlIncludesWallTimeByDefault) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(&out);
  obs::TraceSession session(&sink);
  { obs::Span span(&session, "s"); }
  session.finish();
  EXPECT_NE(out.str().find("\"ts_ns\""), std::string::npos);
}

TEST(Sinks, ChromeTraceIsWellFormedAndBalanced) {
  const auto g = graph::gnm(160, 800, 13);
  std::ostringstream out;
  obs::ChromeTraceSink sink(&out);
  obs::TraceSession session(&sink);
  mis::DetMisConfig config;
  config.trace = &session;
  mis::det_mis(g, config);
  session.finish();

  const std::string text = out.str();
  EXPECT_TRUE(JsonChecker(text).valid());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  // Duration events must balance for chrome://tracing to render them.
  std::size_t begins = 0, ends = 0, pos = 0;
  while ((pos = text.find("\"ph\": \"B\"", pos)) != std::string::npos) {
    ++begins;
    ++pos;
  }
  pos = 0;
  while ((pos = text.find("\"ph\": \"E\"", pos)) != std::string::npos) {
    ++ends;
    ++pos;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
}

TEST(Sinks, CollectorFreezesOnFinishAndClearReopens) {
  obs::CollectorSink sink;
  obs::TraceSession first(&sink);
  { obs::Span span(&first, "kept"); }
  first.finish();
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_TRUE(sink.frozen());

  // A later session attached to the same (finished) sink must not pollute it.
  obs::TraceSession stray(&sink);
  { obs::Span span(&stray, "dropped"); }
  stray.finish();
  EXPECT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].name, "kept");

  sink.clear();
  EXPECT_FALSE(sink.frozen());
  EXPECT_TRUE(sink.events().empty());
  obs::TraceSession reuse(&sink);
  { obs::Span span(&reuse, "fresh"); }
  reuse.finish();
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].name, "fresh");
}

TEST(Sinks, ChromeTraceEmptySessionIsValidAndDoubleFinishSafe) {
  std::ostringstream out;
  obs::ChromeTraceSink sink(&out);
  obs::TraceSession session(&sink);
  session.finish();
  const std::string text = out.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  // finish() is idempotent: a second call must not emit a second document.
  sink.finish();
  EXPECT_EQ(out.str(), text);
}

TEST(Sinks, SummarizeSpansAggregatesByName) {
  obs::CollectorSink sink;
  obs::TraceSession session(&sink);
  mpc::Metrics metrics;
  session.attach_metrics(&metrics);
  for (int i = 0; i < 3; ++i) {
    obs::Span span(&session, "repeat");
    metrics.charge_rounds(2, "repeat");
    metrics.add_communication(5, "repeat");
  }
  session.finish();
  const auto stats = obs::summarize_spans(sink.events());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "repeat");
  EXPECT_EQ(stats[0].count, 3u);
  EXPECT_EQ(stats[0].rounds, 6u);
  EXPECT_EQ(stats[0].communication, 15u);
}

// --- Metrics registry (obs/metrics_registry.hpp). Tests use a local
// registry so they cannot perturb the process-global one other tests'
// Solver runs delta against. ---

TEST(Registry, CounterGaugeHistogramBasics) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("mpc/rounds");
  c.add();
  c.add(4);
  auto& g = reg.gauge("host/pool", obs::MetricSection::kHost);
  g.set(10);
  g.add(-3);
  g.record_max(5);   // below current 7: no-op
  g.record_max(12);  // above: takes over
  auto& h = reg.histogram("derand/batch", {1, 4, 16});
  h.observe(0);
  h.observe(4);
  h.observe(100);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  // Registration order, not name order.
  EXPECT_EQ(snap.entries[0].name, "mpc/rounds");
  EXPECT_EQ(snap.entries[1].name, "host/pool");
  EXPECT_EQ(snap.entries[2].name, "derand/batch");
  EXPECT_EQ(snap.find("mpc/rounds")->value, 5);
  EXPECT_EQ(snap.find("host/pool")->value, 12);
  EXPECT_EQ(snap.find("missing"), nullptr);
  const auto* hist = snap.find("derand/batch");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(hist->value, 3);  // observation count
  EXPECT_EQ(hist->sum, 104);
  EXPECT_EQ(hist->bounds, (std::vector<std::uint64_t>{1, 4, 16}));
  // 0 -> [<=1], 4 -> [<=4], 100 -> overflow bucket.
  EXPECT_EQ(hist->counts, (std::vector<std::uint64_t>{1, 1, 0, 1}));
}

TEST(Registry, ReRegistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  auto& first = reg.counter("exec/tasks", obs::MetricSection::kHost);
  first.add(2);
  auto& again = reg.counter("exec/tasks", obs::MetricSection::kHost);
  EXPECT_EQ(&first, &again);
  again.add(3);
  EXPECT_EQ(reg.snapshot().find("exec/tasks")->value, 5);
  ASSERT_EQ(reg.snapshot().entries.size(), 1u);
}

TEST(Registry, LabeledFamilyMembersGetSlashNames) {
  obs::MetricsRegistry reg;
  reg.counter("mpc/communication", "sparsify", obs::MetricSection::kModel)
      .add(7);
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.find("mpc/communication/sparsify"), nullptr);
  EXPECT_EQ(snap.find("mpc/communication/sparsify")->value, 7);
}

TEST(Registry, DeltaSubtractsCountersAndKeepsGauges) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("mpc/rounds");
  auto& g = reg.gauge("host/wall_ns", obs::MetricSection::kHost);
  auto& h = reg.histogram("derand/batch", {8});
  c.add(10);
  g.set(100);
  h.observe(3);
  const auto before = reg.snapshot();
  c.add(5);
  g.set(250);
  h.observe(20);
  auto& late = reg.counter("derand/sweeps");  // registered mid-solve
  late.add(2);
  const auto delta =
      obs::MetricsSnapshot::delta(reg.snapshot(), before);
  // Counters and histograms subtract; gauges keep the after value; entries
  // unknown to `before` pass through raw.
  EXPECT_EQ(delta.find("mpc/rounds")->value, 5);
  EXPECT_EQ(delta.find("host/wall_ns")->value, 250);
  EXPECT_EQ(delta.find("derand/sweeps")->value, 2);
  const auto* hist = delta.find("derand/batch");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->value, 1);
  EXPECT_EQ(hist->sum, 20);
  EXPECT_EQ(hist->counts, (std::vector<std::uint64_t>{0, 1}));
}

TEST(Registry, SectionsSerializeSeparatelyAndDropZeros) {
  obs::MetricsRegistry reg;
  reg.counter("mpc/rounds", obs::MetricSection::kModel).add(3);
  reg.counter("recovery/retries", obs::MetricSection::kRecovery).add(1);
  reg.gauge("host/wall_ns", obs::MetricSection::kHost).set(9);
  reg.counter("mpc/idle", obs::MetricSection::kModel);  // stays zero
  reg.histogram("mpc/empty_hist", {2}, obs::MetricSection::kModel);

  const auto snap = reg.snapshot();
  const auto model =
      obs::to_json_section(snap, obs::MetricSection::kModel).dump();
  EXPECT_NE(model.find("\"mpc/rounds\":3"), std::string::npos);
  EXPECT_EQ(model.find("recovery/retries"), std::string::npos);
  EXPECT_EQ(model.find("host/wall_ns"), std::string::npos);
  EXPECT_NE(model.find("mpc/idle"), std::string::npos);  // include_zero=true

  const auto lean =
      obs::to_json_section(snap, obs::MetricSection::kModel, false).dump();
  EXPECT_EQ(lean.find("mpc/idle"), std::string::npos);
  EXPECT_EQ(lean.find("mpc/empty_hist"), std::string::npos);
  EXPECT_NE(lean.find("\"mpc/rounds\":3"), std::string::npos);

  const auto grouped = obs::to_json(snap).dump();
  EXPECT_NE(grouped.find("\"model\""), std::string::npos);
  EXPECT_NE(grouped.find("\"recovery\""), std::string::npos);
  EXPECT_NE(grouped.find("\"host\""), std::string::npos);
}

// --- Label attribution end-to-end: per-label charges must account for the
// global totals exactly, and stay byte-stable across thread counts and
// fault plans (labels are charged by the replayed pipeline, not the retry
// engine). ---

void expect_labels_cover_totals(const mpc::Metrics& m, const char* what) {
  const auto sum = [](const std::map<std::string, std::uint64_t>& by_label) {
    return std::accumulate(
        by_label.begin(), by_label.end(), std::uint64_t{0},
        [](std::uint64_t acc, const auto& kv) { return acc + kv.second; });
  };
  EXPECT_FALSE(m.communication_by_label().empty()) << what;
  EXPECT_EQ(sum(m.communication_by_label()), m.total_communication()) << what;
  EXPECT_EQ(sum(m.rounds_by_label()), m.rounds()) << what;
  std::uint64_t peak = 0;
  for (const auto& [label, v] : m.peak_load_by_label()) {
    peak = std::max(peak, v);
  }
  EXPECT_EQ(peak, m.peak_machine_load()) << what;
}

TEST(Metrics, LabelsCoverTotalsAcrossThreadsAndFaults) {
  const auto g = graph::gnm(300, 2400, 21);
  mpc::FaultPlan crashes;
  crashes.add({mpc::FaultKind::kCrash, /*round=*/2, /*machine=*/0});
  crashes.add({mpc::FaultKind::kCrash, /*round=*/6, /*machine=*/1});

  std::string reference;
  for (const std::uint32_t threads : {1u, 2u, 0u}) {
    for (const bool faulty : {false, true}) {
      SolveOptions options;
      options.threads = threads;
      if (faulty) options.faults = crashes;
      const auto solution = Solver(options).mis(g);
      const auto what = std::string("threads=") + std::to_string(threads) +
                        " faults=" + (faulty ? "crashes" : "none");
      expect_labels_cover_totals(solution.report.metrics, what.c_str());
      // The label breakdown itself is part of the golden report surface.
      Json labels = Json::object();
      for (const auto& [label, v] :
           solution.report.metrics.communication_by_label()) {
        labels.set(label, v);
      }
      for (const auto& [label, v] :
           solution.report.metrics.rounds_by_label()) {
        labels.set("rounds/" + label, v);
      }
      if (reference.empty()) {
        reference = labels.dump();
      } else {
        EXPECT_EQ(labels.dump(), reference) << what;
      }
    }
  }
}

}  // namespace
}  // namespace dmpc
