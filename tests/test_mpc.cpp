// Unit tests for the MPC simulator: model semantics, space enforcement,
// primitives, and distribution schemes.
#include <gtest/gtest.h>

#include <numeric>

#include "mpc/cluster.hpp"
#include "mpc/distribution.hpp"
#include "mpc/primitives.hpp"
#include "support/check.hpp"

namespace dmpc::mpc {
namespace {

ClusterConfig small_config(std::uint64_t space, std::uint64_t machines) {
  ClusterConfig config;
  config.machine_space = space;
  config.num_machines = machines;
  return config;
}

TEST(ClusterConfig, ForInputDerivesSpaceAndMachines) {
  const auto config = ClusterConfig::for_input(10000, 0.5, 50000);
  EXPECT_EQ(config.machine_space, 100u);  // 10000^0.5
  EXPECT_EQ(config.num_machines, 501u);
  const auto floored = ClusterConfig::for_input(4, 0.5, 100, 16);
  EXPECT_EQ(floored.machine_space, 16u);  // min_space floor
}

TEST(Cluster, TreeDepthScaling) {
  Cluster c(small_config(16, 10));
  EXPECT_EQ(c.tree_depth(1), 1u);
  EXPECT_EQ(c.tree_depth(16), 1u);
  EXPECT_EQ(c.tree_depth(17), 2u);
  EXPECT_EQ(c.tree_depth(256), 2u);
  EXPECT_EQ(c.tree_depth(257), 3u);
}

TEST(Cluster, SpaceCheckEnforced) {
  Cluster c(small_config(8, 4));
  EXPECT_NO_THROW(c.check_load(8, "fits"));
  EXPECT_THROW(c.check_load(9, "overflow"), CheckFailure);
  EXPECT_EQ(c.metrics().peak_machine_load(), 9u);
}

TEST(Cluster, SpaceCheckDisabledForAblation) {
  auto config = small_config(8, 4);
  config.enforce_space = false;
  Cluster c(config);
  EXPECT_NO_THROW(c.check_load(1000, "ablation"));
  EXPECT_EQ(c.metrics().peak_machine_load(), 1000u);
}

TEST(Cluster, LowLevelStepRoutesMessages) {
  Cluster c(small_config(16, 3));
  c.load({{1, 2}, {3}, {}});
  c.step([](MachineContext& ctx) {
    if (ctx.id() == 0) {
      // Send my words to machine 2 and clear.
      ctx.send(2, {ctx.local().begin(), ctx.local().end()});
      ctx.local().clear();
    }
  });
  EXPECT_TRUE(c.local(0).empty());
  ASSERT_EQ(c.local(2).size(), 2u);
  EXPECT_EQ(c.local(2)[0], 1u);
  EXPECT_EQ(c.local(2)[1], 2u);
  EXPECT_EQ(c.metrics().rounds(), 1u);
  EXPECT_EQ(c.metrics().total_communication(), 2u);
}

TEST(Cluster, LowLevelStepEnforcesReceiveCapacity) {
  Cluster c(small_config(4, 3));
  c.load({{}, {}, {}});
  EXPECT_THROW(c.step([](MachineContext& ctx) {
    if (ctx.id() != 2) ctx.send(2, {1, 2, 3});  // 6 words > S=4 at machine 2
  }),
               CheckFailure);
}

TEST(Cluster, LowLevelStepRejectsBadDestination) {
  Cluster c(small_config(8, 2));
  c.load({{}, {}});
  EXPECT_THROW(
      c.step([](MachineContext& ctx) { ctx.send(5, {1}); }),
      CheckFailure);
}

TEST(Primitives, BlockedLayoutCheck) {
  Cluster c(small_config(10, 4));
  // 20 records arity 1 -> 5 per machine: fits.
  EXPECT_NO_THROW(check_blocked_layout(c, 20, 1, "ok"));
  // 20 records arity 3 -> 15 words per machine: overflows.
  EXPECT_THROW(check_blocked_layout(c, 20, 3, "fail"), CheckFailure);
}

TEST(Primitives, SortCorrectAndCharged) {
  Cluster c(small_config(64, 8));
  std::vector<std::uint64_t> v{5, 3, 9, 1, 1, 8};
  dsort(c, v, std::less<>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_GT(c.metrics().rounds(), 0u);
  EXPECT_GT(c.metrics().total_communication(), 0u);
}

TEST(Primitives, PrefixSumExclusive) {
  Cluster c(small_config(64, 8));
  std::vector<std::uint64_t> v{3, 1, 4, 1, 5};
  const auto out = prefix_sum_exclusive(c, v);
  const std::vector<std::uint64_t> expect{0, 3, 4, 8, 9};
  EXPECT_EQ(out, expect);
}

TEST(Primitives, Reductions) {
  Cluster c(small_config(64, 8));
  std::vector<std::uint64_t> v{3, 1, 4, 1, 5};
  EXPECT_EQ(reduce_sum(c, v), 14u);
  EXPECT_EQ(reduce_max(c, v), 5u);
  std::vector<double> d{0.5, 1.5, 2.0};
  EXPECT_DOUBLE_EQ(reduce_sum_double(c, d), 4.0);
}

TEST(Primitives, GroupSum) {
  Cluster c(small_config(64, 8));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs{
      {2, 5}, {1, 1}, {2, 7}, {3, 2}, {1, 3}};
  const auto out = group_sum(c, std::move(pairs));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (std::pair<std::uint64_t, std::uint64_t>{1, 4}));
  EXPECT_EQ(out[1], (std::pair<std::uint64_t, std::uint64_t>{2, 12}));
  EXPECT_EQ(out[2], (std::pair<std::uint64_t, std::uint64_t>{3, 2}));
}

TEST(Primitives, RoundChargesScaleWithTreeDepth) {
  Cluster small(small_config(4, 1024));
  Cluster big(small_config(1024, 1024));
  std::vector<std::uint64_t> v(1000, 1);
  reduce_sum(small, v);
  reduce_sum(big, v);
  // Fan-in-4 tree is deeper than fan-in-1024 tree.
  EXPECT_GT(small.metrics().rounds(), big.metrics().rounds());
}

TEST(Metrics, MergeAndReset) {
  Metrics a, b;
  a.charge_rounds(3, "x");
  a.observe_load(10);
  b.charge_rounds(2, "x");
  b.charge_rounds(1, "y");
  b.observe_load(20);
  b.add_communication(7);
  a.merge(b);
  EXPECT_EQ(a.rounds(), 6u);
  EXPECT_EQ(a.peak_machine_load(), 20u);
  EXPECT_EQ(a.total_communication(), 7u);
  EXPECT_EQ(a.rounds_by_label().at("x"), 5u);
  EXPECT_EQ(a.rounds_by_label().at("y"), 1u);
  a.reset();
  EXPECT_EQ(a.rounds(), 0u);
  EXPECT_TRUE(a.rounds_by_label().empty());
}

TEST(Distribution, MachineGroupsAllButOneFull) {
  Cluster c(small_config(64, 16));
  const auto groups =
      build_machine_groups(c, {10, 3, 0, 7}, /*group_size=*/4, 1, "t");
  // Owner 0: 4+4+2; owner 1: 3; owner 3: 4+3.
  ASSERT_EQ(groups.size(), 6u);
  EXPECT_EQ(groups[0].owner, 0u);
  EXPECT_EQ(groups[0].size(), 4u);
  EXPECT_EQ(groups[2].size(), 2u);
  EXPECT_EQ(groups[3].owner, 1u);
  EXPECT_EQ(groups[3].size(), 3u);
  EXPECT_EQ(groups[5].size(), 3u);
}

TEST(Distribution, GroupSizeMustFit) {
  Cluster c(small_config(6, 16));
  EXPECT_THROW(build_machine_groups(c, {10}, /*group_size=*/4, /*arity=*/2, "t"),
               CheckFailure);
}

TEST(Distribution, TwoHopGatherChecksEachCenter) {
  Cluster c(small_config(32, 16));
  std::vector<std::uint64_t> words{10, 40, 5};
  std::vector<bool> centers{true, false, true};
  EXPECT_NO_THROW(charge_two_hop_gather(c, words, centers, "t"));
  centers[1] = true;  // 40 > 32 now checked
  EXPECT_THROW(charge_two_hop_gather(c, words, centers, "t"), CheckFailure);
}

}  // namespace
}  // namespace dmpc::mpc
