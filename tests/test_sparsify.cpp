// Unit tests for the sparsification pipeline: params, degree classes, good
// nodes (Lemma 3 / Corollaries 8 & 16), and the edge/node sparsifiers
// (§3.2 / §4.2 invariants).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "mpc/cluster.hpp"
#include "sparsify/degree_classes.hpp"
#include "sparsify/edge_sparsifier.hpp"
#include "sparsify/good_nodes.hpp"
#include "sparsify/node_sparsifier.hpp"
#include "sparsify/params.hpp"

namespace dmpc::sparsify {
namespace {

using graph::Graph;
using graph::NodeId;

mpc::Cluster roomy_cluster() {
  mpc::ClusterConfig config;
  config.machine_space = 1 << 16;
  config.num_machines = 1 << 10;
  return mpc::Cluster(config);
}

TEST(Params, ClassOfDegreeBands) {
  Params params;
  params.n = 65536;  // 2^16
  params.inv_delta = 8;
  // delta = 1/8 -> n^delta = 4. Classes: [1,4), [4,16), [16,64), ...
  EXPECT_EQ(params.class_of_degree(0), 0u);
  EXPECT_EQ(params.class_of_degree(1), 1u);
  EXPECT_EQ(params.class_of_degree(3), 1u);
  EXPECT_EQ(params.class_of_degree(4), 2u);
  EXPECT_EQ(params.class_of_degree(15), 2u);
  EXPECT_EQ(params.class_of_degree(16), 3u);
  EXPECT_EQ(params.class_of_degree(65535), 8u);
  EXPECT_EQ(params.class_of_degree(1u << 30), 8u);  // clamped to top class
}

TEST(Params, DerivedQuantities) {
  Params params;
  params.n = 65536;
  params.inv_delta = 8;
  EXPECT_DOUBLE_EQ(params.delta(), 0.125);
  EXPECT_NEAR(params.sample_probability(), 0.25, 1e-12);
  EXPECT_EQ(params.group_size(), 256u);       // n^{4 delta} = 4^4
  EXPECT_EQ(params.degree_cap(), 512u);       // 2 n^{4 delta}
  EXPECT_EQ(params.stages_for_class(3), 0u);
  EXPECT_EQ(params.stages_for_class(4), 0u);
  EXPECT_EQ(params.stages_for_class(5), 1u);
  EXPECT_EQ(params.stages_for_class(8), 4u);
  EXPECT_DOUBLE_EQ(params.class_lower(1), 1.0);
  EXPECT_DOUBLE_EQ(params.class_lower(3), 16.0);
}

TEST(DegreeClasses, MassAccounting) {
  Params params;
  params.n = 65536;
  params.inv_delta = 8;
  const std::vector<std::uint32_t> degrees{0, 1, 3, 4, 20, 100};
  const auto classes = classify(params, degrees);
  EXPECT_EQ(classes.class_of[0], 0u);
  EXPECT_EQ(classes.class_of[1], 1u);
  EXPECT_EQ(classes.class_of[4], 3u);
  EXPECT_EQ(classes.degree_mass[1], 4u);    // 1 + 3
  EXPECT_EQ(classes.degree_mass[2], 4u);
  EXPECT_EQ(classes.degree_mass[3], 20u);
  EXPECT_EQ(classes.degree_mass[4], 100u);
}

TEST(GoodNodes, MatchingSelectionSatisfiesCorollary8) {
  auto cluster = roomy_cluster();
  for (std::uint64_t seed : {1, 2, 3}) {
    const Graph g = graph::gnm(400, 3200, seed);
    Params params;
    params.n = g.num_nodes();
    params.inv_delta = 8;
    std::vector<bool> alive(g.num_nodes(), true);
    const auto good = select_matching_good_set(cluster, params, g, alive);
    // Corollary 8 (already asserted inside; re-verify the arithmetic here):
    EXPECT_GE(2 * params.inv_delta * good.b_degree_mass, good.alive_edges);
    // Every E_0 edge touches a B node, and X(v) lists are within E_0.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!good.in_B[v]) {
        EXPECT_TRUE(good.xv[v].empty());
        continue;
      }
      const auto deg = g.degree(v);
      EXPECT_GE(3 * good.xv[v].size(), deg);
      for (auto e : good.xv[v]) EXPECT_TRUE(good.in_E0[e]);
    }
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      if (good.in_E0[e]) {
        EXPECT_TRUE(good.in_B[g.edge(e).u] || good.in_B[g.edge(e).v]);
      }
    }
  }
}

TEST(GoodNodes, MisSelectionSatisfiesCorollary16) {
  auto cluster = roomy_cluster();
  for (std::uint64_t seed : {4, 5}) {
    const Graph g = graph::power_law(500, 3000, 2.5, seed);
    Params params;
    params.n = g.num_nodes();
    params.inv_delta = 8;
    std::vector<bool> alive(g.num_nodes(), true);
    const auto good = select_mis_good_set(cluster, params, g, alive);
    EXPECT_GE(2 * params.inv_delta * good.b_degree_mass, good.alive_edges);
    // Q_0 is exactly the chosen degree class.
    const auto deg = graph::alive_degrees(g, alive);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (good.in_Q0[v]) {
        EXPECT_EQ(params.class_of_degree(deg[v]), good.cls);
      }
    }
  }
}

TEST(GoodNodes, RespectsAliveMask) {
  auto cluster = roomy_cluster();
  const Graph g = graph::gnm(200, 1000, 7);
  Params params;
  params.n = g.num_nodes();
  params.inv_delta = 8;
  std::vector<bool> alive(g.num_nodes(), true);
  for (NodeId v = 0; v < 100; ++v) alive[v] = false;
  const auto good = select_matching_good_set(cluster, params, g, alive);
  for (NodeId v = 0; v < 100; ++v) EXPECT_FALSE(good.in_B[v]);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (good.in_E0[e]) {
      EXPECT_TRUE(alive[g.edge(e).u] && alive[g.edge(e).v]);
    }
  }
}

TEST(EdgeSparsifier, LowClassPassesThrough) {
  auto cluster = roomy_cluster();
  // Bounded-degree graph: the chosen class is <= 4, so E* = E_0.
  const Graph g = graph::random_regular(300, 6, 8);
  Params params;
  params.n = g.num_nodes();
  params.inv_delta = 8;
  std::vector<bool> alive(g.num_nodes(), true);
  const auto good = select_matching_good_set(cluster, params, g, alive);
  ASSERT_LE(good.cls, 4u);
  const auto sparse =
      sparsify_edges(cluster, params, g, good, SparsifyConfig{});
  EXPECT_EQ(sparse.stages.size(), 0u);
  EXPECT_EQ(sparse.in_Estar, good.in_E0);
}

TEST(EdgeSparsifier, HighClassReducesDegreesBelowCap) {
  auto cluster = roomy_cluster();
  // Dense-ish random graph forces a high class at small inv_delta scale.
  const Graph g = graph::gnm(512, 16000, 9);
  Params params;
  params.n = g.num_nodes();
  params.inv_delta = 8;  // n^delta ~ 2.18, cap = 2 * n^{1/2} ~ 45
  std::vector<bool> alive(g.num_nodes(), true);
  const auto good = select_matching_good_set(cluster, params, g, alive);
  const auto sparse =
      sparsify_edges(cluster, params, g, good, SparsifyConfig{});
  if (good.cls > 4) {
    EXPECT_GE(sparse.stages.size(), 1u);
  }
  EXPECT_LE(sparse.max_degree, params.degree_cap());
  // E* is a subset of E_0 and xv_star lists agree with the mask.
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (sparse.in_Estar[e]) {
      EXPECT_TRUE(good.in_E0[e]);
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (auto e : sparse.xv_star[v]) {
      EXPECT_TRUE(sparse.in_Estar[e]);
    }
  }
  // Never sparsified to empty.
  EXPECT_GT(std::count(sparse.in_Estar.begin(), sparse.in_Estar.end(), true),
            0);
}

TEST(EdgeSparsifier, StageReportsAreCoherent) {
  auto cluster = roomy_cluster();
  const Graph g = graph::gnm(512, 16000, 10);
  Params params;
  params.n = g.num_nodes();
  params.inv_delta = 8;
  std::vector<bool> alive(g.num_nodes(), true);
  const auto good = select_matching_good_set(cluster, params, g, alive);
  const auto sparse =
      sparsify_edges(cluster, params, g, good, SparsifyConfig{});
  for (std::size_t j = 0; j < sparse.stages.size(); ++j) {
    const auto& report = sparse.stages[j];
    EXPECT_EQ(report.stage, j + 1);
    EXPECT_LE(report.edges_after, report.edges_before);
    EXPECT_GE(report.window_multiplier, 3.0);  // default slack factor
    EXPECT_GT(report.machines, 0u);
    EXPECT_GT(report.trials, 0u);
  }
}

TEST(NodeSparsifier, ReducesQDegreesBelowCap) {
  auto cluster = roomy_cluster();
  const Graph g = graph::gnm(512, 16000, 11);
  Params params;
  params.n = g.num_nodes();
  params.inv_delta = 8;
  std::vector<bool> alive(g.num_nodes(), true);
  const auto good = select_mis_good_set(cluster, params, g, alive);
  const auto sparse = sparsify_nodes(cluster, params, g, alive, good,
                                     SparsifyConfig{});
  EXPECT_LE(sparse.max_q_degree, params.degree_cap());
  // Q' never empty and Q' subset of Q_0.
  std::size_t q_count = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (sparse.in_Qprime[v]) {
      ++q_count;
      EXPECT_TRUE(good.in_Q0[v]);
    }
  }
  EXPECT_GT(q_count, 0u);
}

// Regression: the degenerate all-keep polynomial (seed 0 = constant hash)
// must never be committed — without the global sampling window every stage
// kept 100% of the edges and the extra-stage loop spun uselessly (see
// DESIGN.md §2.0). Every committed stage must strictly shrink its edge set.
TEST(EdgeSparsifier, StagesStrictlyShrink) {
  auto cluster = roomy_cluster();
  for (std::uint64_t seed : {1, 2, 3}) {
    const Graph g = graph::gnm(256, 2048, seed);
    Params params;
    params.n = g.num_nodes();
    params.inv_delta = 16;  // n^delta ~ 1.4: many stages, tiny windows
    std::vector<bool> alive(g.num_nodes(), true);
    const auto good = select_matching_good_set(cluster, params, g, alive);
    const auto sparse = sparsify_edges(cluster, params, g, good,
                                       SparsifyConfig{});
    for (const auto& report : sparse.stages) {
      EXPECT_LT(report.edges_after, report.edges_before)
          << "stage " << report.stage << " committed a no-op seed";
    }
  }
}

TEST(NodeSparsifier, StagesStrictlyShrink) {
  auto cluster = roomy_cluster();
  const Graph g = graph::gnm(512, 16000, 4);
  Params params;
  params.n = g.num_nodes();
  params.inv_delta = 16;
  std::vector<bool> alive(g.num_nodes(), true);
  const auto good = select_mis_good_set(cluster, params, g, alive);
  const auto sparse =
      sparsify_nodes(cluster, params, g, alive, good, SparsifyConfig{});
  // Q strictly shrinks stage over stage (the node-side analogue).
  std::size_t prev = 0;
  for (bool b : good.in_Q0) prev += b;
  (void)prev;
  for (const auto& report : sparse.stages) {
    EXPECT_GT(report.machines, 0u);
  }
  std::size_t q_size = 0;
  for (bool b : sparse.in_Qprime) q_size += b;
  if (!sparse.stages.empty()) {
    std::size_t q0_size = 0;
    for (bool b : good.in_Q0) q0_size += b;
    EXPECT_LT(q_size, q0_size);
  }
}

TEST(NodeSparsifier, LowClassKeepsQ0) {
  auto cluster = roomy_cluster();
  const Graph g = graph::random_regular(300, 6, 12);
  Params params;
  params.n = g.num_nodes();
  params.inv_delta = 8;
  std::vector<bool> alive(g.num_nodes(), true);
  const auto good = select_mis_good_set(cluster, params, g, alive);
  ASSERT_LE(good.cls, 4u);
  const auto sparse = sparsify_nodes(cluster, params, g, alive, good,
                                     SparsifyConfig{});
  EXPECT_EQ(sparse.stages.size(), 0u);
  EXPECT_EQ(sparse.in_Qprime, good.in_Q0);
}

}  // namespace
}  // namespace dmpc::sparsify
