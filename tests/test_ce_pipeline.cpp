// End-to-end tests for the conditional-expectation selection mode: the
// textbook §2.4 machinery running inside the real §3/§4 pipelines.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"
#include "support/check.hpp"

namespace dmpc {
namespace {

using graph::Graph;

TEST(CePipeline, MatchingValidOnSmallGraphs) {
  matching::DetMatchingConfig config;
  config.selection_mode = matching::SelectionMode::kConditionalExpectation;
  for (std::uint64_t seed : {1, 2}) {
    const Graph g = graph::gnm(96, 480, seed);
    const auto result = matching::det_maximal_matching(g, config);
    EXPECT_TRUE(graph::is_maximal_matching(g, result.matching));
  }
}

TEST(CePipeline, MisValidOnSmallGraphs) {
  mis::DetMisConfig config;
  config.selection_mode = matching::SelectionMode::kConditionalExpectation;
  for (std::uint64_t seed : {3, 4}) {
    const Graph g = graph::gnm(96, 480, seed);
    const auto result = mis::det_mis(g, config);
    EXPECT_TRUE(graph::is_maximal_independent_set(g, result.in_set));
  }
}

TEST(CePipeline, DeterministicAndDistinctFromThresholdMode) {
  const Graph g = graph::gnm(80, 400, 5);
  matching::DetMatchingConfig ce;
  ce.selection_mode = matching::SelectionMode::kConditionalExpectation;
  const auto a = matching::det_maximal_matching(g, ce);
  const auto b = matching::det_maximal_matching(g, ce);
  EXPECT_EQ(a.matching, b.matching);
  // Both modes must be valid; they may legitimately differ in output.
  matching::DetMatchingConfig ts;
  const auto c = matching::det_maximal_matching(g, ts);
  EXPECT_TRUE(graph::is_maximal_matching(g, c.matching));
}

TEST(CePipeline, SelectionTrialsReflectFullChunkSweeps) {
  // In CE mode the per-iteration "trials" figure is the whole seed space
  // (every candidate chunk value is examined analytically).
  const Graph g = graph::gnm(64, 256, 6);
  matching::DetMatchingConfig config;
  config.selection_mode = matching::SelectionMode::kConditionalExpectation;
  const auto result = matching::det_maximal_matching(g, config);
  for (const auto& r : result.reports) {
    EXPECT_GT(r.selection_trials, 256u);  // p^2 with p >= m >= 256
  }
}

TEST(CePipeline, StructuredSmallFamilies) {
  matching::DetMatchingConfig mm_config;
  mm_config.selection_mode = matching::SelectionMode::kConditionalExpectation;
  mis::DetMisConfig mis_config;
  mis_config.selection_mode = matching::SelectionMode::kConditionalExpectation;
  for (const Graph& g : {graph::cycle(40), graph::star(25),
                         graph::complete_bipartite(10, 12),
                         graph::grid(6, 6)}) {
    EXPECT_TRUE(graph::is_maximal_matching(
        g, matching::det_maximal_matching(g, mm_config).matching));
    EXPECT_TRUE(graph::is_maximal_independent_set(
        g, mis::det_mis(g, mis_config).in_set));
  }
}

}  // namespace
}  // namespace dmpc
