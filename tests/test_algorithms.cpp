// Tests for graph algorithms (components, BFS, bipartition, Hopcroft–Karp)
// and graph statistics.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "support/check.hpp"

namespace dmpc::graph {
namespace {

TEST(Components, CountsAndLabels) {
  const Graph g = disjoint_union(cycle(5), path(4));
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 2u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(comps.component[v], 0u);
  for (NodeId v = 5; v < 9; ++v) EXPECT_EQ(comps.component[v], 1u);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(cycle(5)));
  EXPECT_TRUE(is_connected(Graph::from_edges(1, {})));
}

TEST(Components, IsolatedNodesAreSingletons) {
  const Graph g = Graph::from_edges(4, {{0, 1}});
  EXPECT_EQ(connected_components(g).count, 3u);
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = path(6);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
  const Graph disconnected = Graph::from_edges(3, {{0, 1}});
  const auto d2 = bfs_distances(disconnected, 0);
  EXPECT_EQ(d2[2], UINT32_MAX);
}

TEST(Bipartition, DetectsOddCycles) {
  std::vector<std::uint8_t> side;
  EXPECT_TRUE(bipartition(cycle(6), &side));
  EXPECT_FALSE(bipartition(cycle(5), nullptr));
  EXPECT_TRUE(bipartition(random_tree(50, 1), &side));
  EXPECT_TRUE(bipartition(complete_bipartite(4, 5), &side));
  // Side assignment is a proper 2-coloring.
  const Graph g = grid(5, 7);
  ASSERT_TRUE(bipartition(g, &side));
  for (const Edge& e : g.edges()) EXPECT_NE(side[e.u], side[e.v]);
}

TEST(HopcroftKarp, PerfectMatchingOnCompleteBipartite) {
  const Graph g = complete_bipartite(8, 8);
  EXPECT_EQ(hopcroft_karp(g).size, 8u);
  const Graph uneven = complete_bipartite(5, 9);
  EXPECT_EQ(hopcroft_karp(uneven).size, 5u);
}

TEST(HopcroftKarp, PathsAndTrees) {
  EXPECT_EQ(hopcroft_karp(path(7)).size, 3u);
  EXPECT_EQ(hopcroft_karp(path(8)).size, 4u);
  EXPECT_EQ(hopcroft_karp(star(9)).size, 1u);
}

TEST(HopcroftKarp, PartnerConsistency) {
  const Graph g = random_bipartite(40, 40, 300, 2);
  const auto mm = hopcroft_karp(g);
  std::uint64_t matched_nodes = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (mm.partner[v] == kNoNode) continue;
    ++matched_nodes;
    EXPECT_EQ(mm.partner[mm.partner[v]], v);
    EXPECT_TRUE(g.has_edge(v, mm.partner[v]));
  }
  EXPECT_EQ(matched_nodes, 2 * mm.size);
}

TEST(HopcroftKarp, RejectsOddCycle) {
  EXPECT_THROW(hopcroft_karp(cycle(5)), CheckFailure);
}

TEST(Stats, CompleteGraph) {
  const auto stats = compute_stats(complete(6));
  EXPECT_EQ(stats.nodes, 6u);
  EXPECT_EQ(stats.edges, 15u);
  EXPECT_DOUBLE_EQ(stats.density, 1.0);
  EXPECT_EQ(stats.triangles, 20u);  // C(6,3)
  EXPECT_DOUBLE_EQ(stats.clustering, 1.0);
  EXPECT_EQ(stats.components, 1u);
}

TEST(Stats, TriangleFreeGraphs) {
  const auto stats = compute_stats(complete_bipartite(5, 5));
  EXPECT_EQ(stats.triangles, 0u);
  EXPECT_DOUBLE_EQ(stats.clustering, 0.0);
  const auto tree_stats = compute_stats(random_tree(100, 3));
  EXPECT_EQ(tree_stats.triangles, 0u);
}

TEST(Stats, TriangleCountExact) {
  // Two triangles sharing an edge: 0-1-2, 1-2-3.
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(compute_stats(g).triangles, 2u);
}

TEST(Stats, DegreeHistogram) {
  const Graph g = star(8);  // hub degree 8, leaves degree 1
  const auto hist = degree_histogram_log2(g);
  ASSERT_EQ(hist.size(), 4u);  // buckets for 1 and [8,16)
  EXPECT_EQ(hist[0], 8u);
  EXPECT_EQ(hist[3], 1u);
}

}  // namespace
}  // namespace dmpc::graph
