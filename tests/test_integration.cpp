// Integration tests: full pipelines cross-checked against each other and
// against the sequential ground truth, across generator families.
#include <gtest/gtest.h>

#include "api/solver.hpp"
#include "baselines/greedy.hpp"
#include "baselines/luby_matching.hpp"
#include "baselines/luby_mis.hpp"
#include "cclique/cc_mis.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "graph/validate.hpp"
#include "lowdeg/lowdeg_solver.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"

namespace dmpc {
namespace {

using graph::Graph;

std::vector<Graph> test_suite() {
  std::vector<Graph> graphs;
  graphs.push_back(graph::gnm(200, 1200, 1));
  graphs.push_back(graph::power_law(250, 1000, 2.5, 2));
  graphs.push_back(graph::random_regular(250, 6, 3));
  graphs.push_back(graph::random_bipartite(100, 120, 900, 4));
  graphs.push_back(graph::grid(14, 14));
  graphs.push_back(graph::random_tree(200, 5));
  graphs.push_back(graph::lopsided(3, 30, 80, 150, 6));
  graphs.push_back(graph::disjoint_union(graph::cycle(31), graph::star(40)));
  return graphs;
}

TEST(Integration, EverySolverValidOnEveryFamily) {
  for (const Graph& g : test_suite()) {
    // Sequential ground truth.
    EXPECT_TRUE(
        graph::is_maximal_independent_set(g, baselines::greedy_mis(g)));
    EXPECT_TRUE(
        graph::is_maximal_matching(g, baselines::greedy_matching(g)));
    // Randomized baselines.
    EXPECT_TRUE(graph::is_maximal_independent_set(
        g, baselines::luby_mis(g, 17).in_set));
    EXPECT_TRUE(graph::is_maximal_matching(
        g, baselines::luby_matching(g, 17).matching));
    // Deterministic MPC pipelines.
    EXPECT_TRUE(graph::is_maximal_independent_set(
        g, mis::det_mis(g, {}).in_set));
    EXPECT_TRUE(graph::is_maximal_matching(
        g, matching::det_maximal_matching(g, {}).matching));
    // Façade (auto dispatch).
    EXPECT_TRUE(graph::is_maximal_independent_set(g, Solver().mis(g).in_set));
    EXPECT_TRUE(
        graph::is_maximal_matching(g, Solver().maximal_matching(g).matching));
  }
}

TEST(Integration, LowDegAndSparsificationAgreeOnValidity) {
  // Both paths must produce valid (not identical) solutions where both
  // apply: bounded-degree inputs.
  const Graph g = graph::random_regular(300, 5, 7);
  const auto a = lowdeg::lowdeg_mis(g, {});
  const auto b = mis::det_mis(g, {});
  EXPECT_TRUE(graph::is_maximal_independent_set(g, a.in_set));
  EXPECT_TRUE(graph::is_maximal_independent_set(g, b.in_set));
}

TEST(Integration, MatchingIsMisOfLineGraph) {
  const Graph g = graph::random_regular(150, 4, 8);
  const auto result = matching::det_maximal_matching(g, {});
  // The matched edge set, viewed as nodes of L(G), is an independent set
  // (maximality in L(G) is exactly maximality of the matching).
  const Graph lg = graph::line_graph(g);
  std::vector<bool> in_set(lg.num_nodes(), false);
  for (auto e : result.matching) in_set[e] = true;
  EXPECT_TRUE(graph::is_maximal_independent_set(lg, in_set));
}

TEST(Integration, DetPipelinesProgressMonotonically) {
  const Graph g = graph::gnm(300, 2400, 9);
  const auto mm = matching::det_maximal_matching(g, {});
  for (std::size_t i = 1; i < mm.reports.size(); ++i) {
    EXPECT_LE(mm.reports[i].edges_before, mm.reports[i - 1].edges_after);
  }
  const auto mis = mis::det_mis(g, {});
  for (std::size_t i = 1; i < mis.reports.size(); ++i) {
    EXPECT_LE(mis.reports[i].edges_before, mis.reports[i - 1].edges_after);
  }
}

TEST(Integration, CongestedCliqueMatchesMpcValidity) {
  const Graph g = graph::random_regular(200, 4, 10);
  const auto cc = cclique::cc_mis(g);
  const auto mpc = Solver().mis(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, cc.in_set));
  EXPECT_TRUE(graph::is_maximal_independent_set(g, mpc.in_set));
}

TEST(Integration, MisSizesAreComparableAcrossSolvers) {
  // All MIS algorithms produce maximal sets; sizes should be within a small
  // factor of each other (sanity against degenerate outputs).
  const Graph g = graph::gnm(400, 2400, 11);
  const auto greedy = baselines::greedy_mis(g);
  const auto det = mis::det_mis(g, {}).in_set;
  const auto g_size = std::count(greedy.begin(), greedy.end(), true);
  const auto d_size = std::count(det.begin(), det.end(), true);
  EXPECT_GT(d_size, g_size / 3);
  EXPECT_LT(d_size, g_size * 3);
}

}  // namespace
}  // namespace dmpc
