// Tests for the JSON writer and run-report serialization.
#include <gtest/gtest.h>

#include "api/report_json.hpp"
#include "graph/generators.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"
#include "support/check.hpp"
#include "support/json.hpp"

namespace dmpc {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectsPreserveOrderAndOverwrite) {
  auto j = Json::object();
  j.set("b", 1).set("a", 2).set("b", 3);
  EXPECT_EQ(j.dump(), "{\"b\":3,\"a\":2}");
}

TEST(Json, ArraysAndNesting) {
  auto arr = Json::array();
  arr.push(1).push("x").push(Json::object().set("k", Json::array()));
  EXPECT_EQ(arr.dump(), "[1,\"x\",{\"k\":[]}]");
}

TEST(Json, PrettyPrint) {
  auto j = Json::object().set("a", 1);
  EXPECT_EQ(j.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, TypeMisuseThrows) {
  auto arr = Json::array();
  EXPECT_THROW(arr.set("k", 1), CheckFailure);
  auto obj = Json::object();
  EXPECT_THROW(obj.push(1), CheckFailure);
}

TEST(ReportJson, MatchingRunSerializes) {
  const auto g = graph::gnm(128, 512, 1);
  const auto result = matching::det_maximal_matching(g, {});
  const auto j = to_json(result);
  const auto text = j.dump(2);
  EXPECT_NE(text.find("\"matching_size\""), std::string::npos);
  EXPECT_NE(text.find("\"rounds_by_label\""), std::string::npos);
  EXPECT_NE(text.find("\"trace\""), std::string::npos);
  EXPECT_NE(text.find("\"progress_fraction\""), std::string::npos);
}

TEST(ReportJson, MisRunSerializes) {
  const auto g = graph::gnm(128, 512, 2);
  const auto result = mis::det_mis(g, {});
  const auto text = to_json(result).dump();
  EXPECT_NE(text.find("\"mis_size\""), std::string::npos);
  EXPECT_NE(text.find("\"qprime_max_degree\""), std::string::npos);
  // Deterministic runs serialize identically.
  const auto again = to_json(mis::det_mis(g, {})).dump();
  EXPECT_EQ(text, again);
}

}  // namespace
}  // namespace dmpc
