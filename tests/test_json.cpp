// Tests for the JSON writer/parser and run-report serialization.
#include <gtest/gtest.h>

#include <string>

#include "api/report_json.hpp"
#include "graph/generators.hpp"
#include "matching/det_matching.hpp"
#include "mis/det_mis.hpp"
#include "support/check.hpp"
#include "support/json.hpp"
#include "support/parse_error.hpp"

namespace dmpc {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json(std::string("\x01")).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectsPreserveOrderAndOverwrite) {
  auto j = Json::object();
  j.set("b", 1).set("a", 2).set("b", 3);
  EXPECT_EQ(j.dump(), "{\"b\":3,\"a\":2}");
}

TEST(Json, ArraysAndNesting) {
  auto arr = Json::array();
  arr.push(1).push("x").push(Json::object().set("k", Json::array()));
  EXPECT_EQ(arr.dump(), "[1,\"x\",{\"k\":[]}]");
}

TEST(Json, PrettyPrint) {
  auto j = Json::object().set("a", 1);
  EXPECT_EQ(j.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, TypeMisuseThrows) {
  auto arr = Json::array();
  EXPECT_THROW(arr.set("k", 1), CheckFailure);
  auto obj = Json::object();
  EXPECT_THROW(obj.push(1), CheckFailure);
}

// --- Parser (the read half of the round trip scaling_check and the bench
// baselines depend on). ---

TEST(JsonParse, RoundTripIsByteIdentical) {
  const auto doc =
      Json::object()
          .set("schema_version", 1)
          .set("points",
               Json::array().push(Json::object().set("axis_value", 256).set(
                   "model", Json::object().set("rounds", 42))))
          .set("title", "e\"1\n")
          .set("ratio", 2.5)
          .set("flag", true)
          .set("nothing", Json());
  const std::string text = doc.dump();
  EXPECT_EQ(Json::parse(text).dump(), text);
  // Pretty-printing is whitespace-only: it collapses back to the same bytes.
  EXPECT_EQ(Json::parse(doc.dump(2)).dump(), text);
}

TEST(JsonParse, IntAndDoubleTokensStayDistinct) {
  // 2^53 + 1 is not representable as a double; the artifact contract
  // (integer-exact model counters) needs the int64 path.
  const Json big = Json::parse("9007199254740993");
  ASSERT_TRUE(big.is_int());
  EXPECT_EQ(big.as_int64(), std::int64_t{9007199254740993});
  EXPECT_EQ(big.dump(), "9007199254740993");
  EXPECT_TRUE(Json::parse("-7").is_int());
  EXPECT_TRUE(Json::parse("2.5").is_double());
  EXPECT_TRUE(Json::parse("1e3").is_double());
  EXPECT_TRUE(Json::parse("[1]").items()[0].is_int());
}

TEST(JsonParse, MalformedInputThrowsTypedErrors) {
  const struct {
    const char* text;
    ParseErrorCode code;
  } cases[] = {
      {"{\"a\":}", ParseErrorCode::kBadToken},     // '}' where a value starts
      {"[1,2,]", ParseErrorCode::kBadToken},       // trailing comma
      {"{\"a\":1", ParseErrorCode::kMalformedLine},  // truncated object
      {"1 2", ParseErrorCode::kMalformedLine},     // trailing data
      {"tru", ParseErrorCode::kBadToken},          // bad literal
  };
  for (const auto& c : cases) {
    try {
      Json::parse(c.text);
      ADD_FAILURE() << "no error for: " << c.text;
    } catch (const ParseError& e) {
      EXPECT_EQ(e.code(), c.code)
          << c.text << " -> " << parse_error_code_name(e.code());
    }
  }
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": ]\n}");
    ADD_FAILURE() << "no error";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.column(), 8u);
    EXPECT_FALSE(e.token().empty());
  }
}

TEST(JsonParse, DepthCapRejectsPathologicalNesting) {
  try {
    Json::parse(std::string(200, '['));
    ADD_FAILURE() << "no error";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kLimitExceeded);
  }
  // Deep-but-bounded nesting still parses.
  const Json ok = Json::parse(std::string(90, '[') + std::string(90, ']'));
  EXPECT_TRUE(ok.is_array());
}

TEST(ReportJson, MatchingRunSerializes) {
  const auto g = graph::gnm(128, 512, 1);
  const auto result = matching::det_maximal_matching(g, {});
  const auto j = to_json(result);
  const auto text = j.dump(2);
  EXPECT_NE(text.find("\"matching_size\""), std::string::npos);
  EXPECT_NE(text.find("\"rounds_by_label\""), std::string::npos);
  EXPECT_NE(text.find("\"trace\""), std::string::npos);
  EXPECT_NE(text.find("\"progress_fraction\""), std::string::npos);
}

TEST(ReportJson, MisRunSerializes) {
  const auto g = graph::gnm(128, 512, 2);
  const auto result = mis::det_mis(g, {});
  const auto text = to_json(result).dump();
  EXPECT_NE(text.find("\"mis_size\""), std::string::npos);
  EXPECT_NE(text.find("\"qprime_max_degree\""), std::string::npos);
  // Deterministic runs serialize identically.
  const auto again = to_json(mis::det_mis(g, {})).dump();
  EXPECT_EQ(text, again);
}

}  // namespace
}  // namespace dmpc
