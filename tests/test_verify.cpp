// The certification subsystem: every checker passes on a valid answer,
// localizes the lowest-index violation on a corrupted one, and produces the
// same verdict + witness for every thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/report_json.hpp"
#include "exec/parallel.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "mpc/metrics.hpp"
#include "verify/certificate.hpp"
#include "verify/certifier.hpp"

namespace dmpc {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;
using verify::Certificate;
using verify::CertificationError;
using verify::Certifier;
using verify::Claim;
using verify::ClaimResult;
using verify::SparsifyAudit;
using verify::Verdict;

Certifier make_certifier(std::uint32_t threads = 1) {
  return Certifier(exec::Executor::with_threads(threads));
}

// A valid MIS on g via greedy, for corrupt-and-check tests.
std::vector<bool> greedy_mis(const Graph& g) {
  std::vector<bool> in_set(g.num_nodes(), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool blocked = false;
    for (NodeId u : g.neighbors(v)) blocked = blocked || in_set[u];
    if (!blocked) in_set[v] = true;
  }
  return in_set;
}

std::vector<EdgeId> greedy_matching(const Graph& g) {
  std::vector<bool> used(g.num_nodes(), false);
  std::vector<EdgeId> matching;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto edge = g.edge(e);
    if (used[edge.u] || used[edge.v]) continue;
    used[edge.u] = used[edge.v] = true;
    matching.push_back(e);
  }
  return matching;
}

TEST(VerifyMis, ValidAnswerPassesBothClaims) {
  const Graph g = graph::gnm(300, 2400, 1);
  const auto in_set = greedy_mis(g);
  const Certifier certifier = make_certifier();
  const ClaimResult indep = certifier.check_mis_independence(g, in_set);
  EXPECT_EQ(indep.verdict, Verdict::kPass);
  EXPECT_EQ(indep.checked, g.num_edges());
  EXPECT_FALSE(indep.has_witness);
  const ClaimResult maximal = certifier.check_mis_maximality(g, in_set);
  EXPECT_EQ(maximal.verdict, Verdict::kPass);
  EXPECT_EQ(maximal.checked, g.num_nodes());
}

TEST(VerifyMis, FlippedBitYieldsEdgeWitness) {
  const Graph g = graph::gnm(300, 2400, 1);
  auto in_set = greedy_mis(g);
  // Flip a non-member adjacent to a member: independence breaks.
  NodeId flipped = graph::kNoNode;
  for (NodeId v = 0; v < g.num_nodes() && flipped == graph::kNoNode; ++v) {
    if (in_set[v]) continue;
    for (NodeId u : g.neighbors(v)) {
      if (in_set[u]) {
        flipped = v;
        break;
      }
    }
  }
  ASSERT_NE(flipped, graph::kNoNode);
  in_set[flipped] = true;
  const ClaimResult r = make_certifier().check_mis_independence(g, in_set);
  ASSERT_EQ(r.verdict, Verdict::kFail);
  ASSERT_TRUE(r.has_witness);
  EXPECT_EQ(r.witness.kind, "edge");
  // The witness names a real violating edge with both endpoints in the set.
  EXPECT_TRUE(in_set[r.witness.u] && in_set[r.witness.v]);
  // It is the lowest violating edge id.
  for (EdgeId e = 0; e < r.witness.index; ++e) {
    const auto edge = g.edge(e);
    EXPECT_FALSE(in_set[edge.u] && in_set[edge.v]);
  }
}

TEST(VerifyMis, ClearedBitYieldsMaximalityWitness) {
  const Graph g = graph::gnm(300, 2400, 2);
  auto in_set = greedy_mis(g);
  // Remove an isolated-in-the-set member whose neighbors are all
  // non-members: maximality breaks at that node.
  NodeId removed = graph::kNoNode;
  for (NodeId v = 0; v < g.num_nodes() && removed == graph::kNoNode; ++v) {
    if (in_set[v] && g.degree(v) > 0) removed = v;
  }
  ASSERT_NE(removed, graph::kNoNode);
  in_set[removed] = false;
  const ClaimResult r = make_certifier().check_mis_maximality(g, in_set);
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_EQ(r.witness.kind, "node");
  EXPECT_FALSE(in_set[r.witness.index]);
}

TEST(VerifyMis, WitnessIsThreadCountInvariant) {
  const Graph g = graph::gnm(500, 6000, 3);
  auto in_set = greedy_mis(g);
  // Corrupt several places; the reported witness must be the lowest.
  in_set[100] = in_set[200] = in_set[400] = true;
  const ClaimResult serial =
      make_certifier(1).check_mis_independence(g, in_set);
  const ClaimResult parallel =
      make_certifier(8).check_mis_independence(g, in_set);
  ASSERT_EQ(serial.verdict, Verdict::kFail);
  EXPECT_EQ(serial.witness.index, parallel.witness.index);
  EXPECT_EQ(serial.witness.u, parallel.witness.u);
  EXPECT_EQ(serial.witness.v, parallel.witness.v);
}

TEST(VerifyMatching, ValidAnswerPasses) {
  const Graph g = graph::gnm(300, 2400, 4);
  const auto matching = greedy_matching(g);
  ASSERT_TRUE(graph::is_maximal_matching(g, matching));
  const Certifier certifier = make_certifier();
  EXPECT_EQ(certifier.check_matching_validity(g, matching).verdict,
            Verdict::kPass);
  EXPECT_EQ(certifier.check_matching_maximality(g, matching).verdict,
            Verdict::kPass);
}

TEST(VerifyMatching, SharedEndpointYieldsSlotWitness) {
  const Graph g = graph::gnm(300, 2400, 4);
  auto matching = greedy_matching(g);
  ASSERT_GE(matching.size(), 2u);
  // Duplicate the first matched edge into the last slot: two slots now
  // share both endpoints.
  matching.back() = matching.front();
  const ClaimResult r = make_certifier().check_matching_validity(g, matching);
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_EQ(r.witness.kind, "matching_slot");
  EXPECT_NE(r.witness.detail.find("both cover node"), std::string::npos)
      << r.witness.detail;
}

TEST(VerifyMatching, BogusEdgeIdYieldsWitness) {
  const Graph g = graph::gnm(100, 500, 5);
  auto matching = greedy_matching(g);
  matching.push_back(g.num_edges() + 17);  // not a real edge
  const ClaimResult r = make_certifier().check_matching_validity(g, matching);
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_EQ(r.witness.index, matching.size() - 1);
}

TEST(VerifyMatching, DroppedEdgeYieldsUncoveredWitness) {
  const Graph g = graph::gnm(300, 2400, 6);
  auto matching = greedy_matching(g);
  ASSERT_FALSE(matching.empty());
  const EdgeId dropped = matching.front();
  matching.erase(matching.begin());
  const ClaimResult r =
      make_certifier().check_matching_maximality(g, matching);
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_EQ(r.witness.kind, "edge");
  // The dropped edge itself is uncovered, so the witness is at most it.
  EXPECT_LE(r.witness.index, dropped);
}

TEST(VerifyColoring, ProperAndDistance2) {
  // A path 0-1-2-3: colors (0,1,0,1) are proper but NOT distance-2 (nodes
  // 0 and 2 share neighbor 1).
  const Graph path = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::vector<std::uint32_t> two_coloring = {0, 1, 0, 1};
  const Certifier certifier = make_certifier();
  EXPECT_EQ(certifier.check_proper_coloring(path, two_coloring).verdict,
            Verdict::kPass);
  const ClaimResult d2 =
      certifier.check_distance2_coloring(path, two_coloring);
  ASSERT_EQ(d2.verdict, Verdict::kFail);
  EXPECT_EQ(d2.witness.kind, "node");

  const std::vector<std::uint32_t> rainbow = {0, 1, 2, 3};
  EXPECT_EQ(certifier.check_distance2_coloring(path, rainbow).verdict,
            Verdict::kPass);

  const std::vector<std::uint32_t> monochrome = {0, 0, 0, 0};
  const ClaimResult improper =
      certifier.check_proper_coloring(path, monochrome);
  ASSERT_EQ(improper.verdict, Verdict::kFail);
  EXPECT_EQ(improper.witness.index, 0u);  // lowest violating edge
}

TEST(VerifyAudit, DegreeCapAndInvariants) {
  const Certifier certifier = make_certifier();
  SparsifyAudit empty;
  EXPECT_EQ(certifier.check_sparsifier_degree_cap(empty).verdict,
            Verdict::kSkipped);
  EXPECT_EQ(certifier.check_sparsifier_invariants(empty).verdict,
            Verdict::kSkipped);

  SparsifyAudit good;
  good.stages = 3;
  good.max_degree = 10;
  good.degree_cap = 16;
  good.worst_degree_ratio = 1.4;
  good.worst_xv_ratio = 0.0;  // measured floor on real workloads
  EXPECT_EQ(certifier.check_sparsifier_degree_cap(good).verdict,
            Verdict::kPass);
  EXPECT_EQ(certifier.check_sparsifier_invariants(good).verdict,
            Verdict::kPass);

  SparsifyAudit blown = good;
  blown.max_degree = 20;
  const ClaimResult cap = certifier.check_sparsifier_degree_cap(blown);
  ASSERT_EQ(cap.verdict, Verdict::kFail);
  EXPECT_DOUBLE_EQ(cap.witness.measured, 20.0);
  EXPECT_DOUBLE_EQ(cap.witness.bound, 16.0);

  SparsifyAudit ratio = good;
  ratio.worst_degree_ratio = 100.0;
  EXPECT_EQ(certifier.check_sparsifier_invariants(ratio).verdict,
            Verdict::kFail);
}

TEST(VerifySpace, AccountingAndConsistency) {
  const Certifier certifier = make_certifier();
  mpc::Metrics metrics;
  metrics.charge_rounds(2, "phase/a");
  metrics.observe_load(100, "phase/a");
  metrics.observe_load(250, "phase/a");
  EXPECT_EQ(certifier.check_space_accounting(metrics, 250).verdict,
            Verdict::kPass);
  const ClaimResult r = certifier.check_space_accounting(metrics, 200);
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_DOUBLE_EQ(r.witness.measured, 250.0);
  EXPECT_DOUBLE_EQ(r.witness.bound, 200.0);
  EXPECT_EQ(certifier.check_metrics_consistency(metrics).verdict,
            Verdict::kPass);
}

TEST(VerifyCertificate, SummaryRequireAndJson) {
  Certificate certificate;
  certificate.mode = verify::CertifyMode::kFull;
  ClaimResult pass;
  pass.claim = Claim::kMisIndependence;
  pass.verdict = Verdict::kPass;
  pass.checked = 42;
  certificate.claims.push_back(pass);
  certificate.claims.push_back(Certifier::skipped(Claim::kReplayIdentity));
  EXPECT_TRUE(certificate.ok());
  EXPECT_EQ(certificate.failures(), 0u);
  EXPECT_EQ(certificate.first_failure(), nullptr);
  EXPECT_NE(certificate.summary().find("certificate ok"), std::string::npos);
  Certifier::require(certificate);  // must not throw

  ClaimResult fail;
  fail.claim = Claim::kMisMaximality;
  fail.verdict = Verdict::kFail;
  fail.checked = 42;
  fail.has_witness = true;
  fail.witness.kind = "node";
  fail.witness.index = 7;
  fail.witness.detail = "node 7 is uncovered";
  certificate.claims.push_back(fail);
  EXPECT_FALSE(certificate.ok());
  EXPECT_EQ(certificate.failures(), 1u);
  ASSERT_NE(certificate.first_failure(), nullptr);
  EXPECT_EQ(certificate.first_failure()->claim, Claim::kMisMaximality);
  EXPECT_NE(certificate.summary().find("FAILED"), std::string::npos);
  EXPECT_NE(certificate.summary().find("node 7 is uncovered"),
            std::string::npos);

  try {
    Certifier::require(certificate);
    FAIL() << "expected CertificationError";
  } catch (const CertificationError& e) {
    EXPECT_EQ(e.certificate().failures(), 1u);
    EXPECT_NE(std::string(e.what()).find("mis_maximality"),
              std::string::npos);
  }
}

TEST(VerifyCertificate, ReplayClaimCarriesDiffIndex) {
  const ClaimResult ok =
      Certifier::replay_claim(true, 1000, 0, "");
  EXPECT_EQ(ok.verdict, Verdict::kPass);
  EXPECT_EQ(ok.checked, 1000u);
  const ClaimResult bad = Certifier::replay_claim(
      false, 1000, 17, "fault-free replay disagrees on node 17");
  ASSERT_EQ(bad.verdict, Verdict::kFail);
  EXPECT_EQ(bad.witness.index, 17u);
}

TEST(VerifyCertificate, FailedClaimSerializesItsWitness) {
  // A corrupted MIS answer must surface a concrete, serialized witness.
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  const std::vector<bool> corrupt = {true, true, false};  // 0-1 both in
  const ClaimResult r = make_certifier().check_mis_independence(g, corrupt);
  ASSERT_EQ(r.verdict, Verdict::kFail);
  Certificate certificate;
  certificate.mode = verify::CertifyMode::kAnswer;
  certificate.claims.push_back(r);
  const std::string json = to_json(certificate).dump();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"witness\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"edge\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"detail\""), std::string::npos) << json;
  // Passing claims carry no witness block.
  const std::vector<bool> valid = {true, false, true};
  Certificate good;
  good.claims.push_back(make_certifier().check_mis_independence(g, valid));
  EXPECT_EQ(to_json(good).dump().find("\"witness\""), std::string::npos);
}

TEST(VerifyCertificate, StableNames) {
  EXPECT_STREQ(verify::claim_name(Claim::kMisIndependence),
               "mis_independence");
  EXPECT_STREQ(verify::claim_name(Claim::kSparsifierDegreeCap),
               "sparsifier_degree_cap");
  EXPECT_STREQ(verify::claim_name(Claim::kReplayIdentity), "replay_identity");
  EXPECT_STREQ(verify::verdict_name(Verdict::kSkipped), "skipped");
  EXPECT_STREQ(verify::certify_mode_name(verify::CertifyMode::kAnswer),
               "answer");
}

}  // namespace
}  // namespace dmpc
