// Fault injection + checkpoint/restart engine (src/mpc/faults.hpp).
//
// Pins the tentpole guarantees: plans are plain round-trippable data, every
// in-range event fires deterministically, crashed/dropped supersteps replay
// from checkpoints to the byte-identical fault-free result, recovery
// overhead lands in the RecoveryStats side ledger (never in Metrics), and
// exhaustion is a typed FaultError — never a hang or a wrong answer.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "api/report_json.hpp"
#include "api/solver.hpp"
#include "graph/generators.hpp"
#include "mpc/cluster.hpp"
#include "mpc/faults.hpp"
#include "mpc/primitives.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"

namespace dmpc {
namespace {

using mpc::CheckpointMode;
using mpc::Cluster;
using mpc::ClusterConfig;
using mpc::FaultError;
using mpc::FaultEvent;
using mpc::FaultKind;
using mpc::FaultPlan;
using mpc::RecoveryOptions;
using mpc::Word;

// ---- FaultPlan: plain data ----

TEST(FaultPlan, ParseRoundTrip) {
  const std::string text =
      "# schedule\n"
      "crash round=4 machine=2\n"
      "drop round=7 machine=1 message=3\n"
      "duplicate round=9 machine=0 message=0\n"
      "straggler round=12 machine=5 delay=4 attempts=2\n";
  std::string error;
  const FaultPlan plan = FaultPlan::parse(text, &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(plan.events().size(), 4u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events()[0].round, 4u);
  EXPECT_EQ(plan.events()[0].machine, 2u);
  EXPECT_EQ(plan.events()[3].delay, 4u);
  EXPECT_EQ(plan.events()[3].attempts, 2u);

  const FaultPlan again = FaultPlan::parse(plan.to_string(), &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(again.to_string(), plan.to_string());
}

TEST(FaultPlan, ParseErrorsCarryLineNumbers) {
  std::string error;
  FaultPlan::parse("crash round=1\nfrobnicate round=2\n", &error);
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  error.clear();
  FaultPlan::parse("crash wat=1\n", &error);
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(FaultPlan, CheckRejectsMalformedEvents) {
  FaultPlan zero_attempts;
  zero_attempts.add({FaultKind::kCrash, 1, 0, 0, 1, /*attempts=*/0});
  EXPECT_FALSE(zero_attempts.check().empty());

  FaultPlan zero_delay;
  FaultEvent straggler;
  straggler.kind = FaultKind::kStraggler;
  straggler.delay = 0;
  zero_delay.add(straggler);
  EXPECT_FALSE(zero_delay.check().empty());

  FaultPlan fine;
  fine.add({FaultKind::kDrop, 3, 1, 0});
  EXPECT_TRUE(fine.check().empty()) << fine.check();
}

TEST(FaultPlan, ActiveFiltersWindowAndAttempt) {
  FaultPlan plan;
  plan.add({FaultKind::kCrash, /*round=*/5, 0});
  FaultEvent persistent{FaultKind::kCrash, /*round=*/6, 0};
  persistent.attempts = 3;
  plan.add(persistent);

  EXPECT_EQ(plan.active(0, 5, 0).size(), 0u);  // window ends before round 5
  EXPECT_EQ(plan.active(5, 6, 0).size(), 1u);
  EXPECT_EQ(plan.active(5, 7, 0).size(), 2u);
  EXPECT_EQ(plan.active(5, 7, 1).size(), 1u);  // only the attempts=3 event
  EXPECT_EQ(plan.active(5, 7, 3).size(), 0u);  // both exhausted
}

// ---- Low-level step: crash / drop / duplicate / straggler recovery ----

Cluster small_cluster() {
  ClusterConfig cc;
  cc.machine_space = 64;
  cc.num_machines = 4;
  return Cluster(cc);
}

/// One deterministic superstep: every machine increments its words and sends
/// their sum to machine 0.
void sum_step(Cluster& cluster) {
  cluster.step(
      [](mpc::MachineContext& ctx) {
        Word sum = 0;
        for (Word& w : ctx.local()) {
          w += 1;
          sum += w;
        }
        ctx.send(0, {sum});
      },
      "test/sum_step");
}

std::vector<std::vector<Word>> run_steps(const FaultPlan& plan,
                                         RecoveryOptions recovery,
                                         int steps = 3) {
  Cluster cluster = small_cluster();
  cluster.load({{1, 2}, {3}, {4, 5}, {}});
  if (!plan.empty()) cluster.set_faults(plan, recovery);
  for (int i = 0; i < steps; ++i) sum_step(cluster);
  std::vector<std::vector<Word>> locals;
  for (std::uint64_t i = 0; i < cluster.low_level_machines(); ++i) {
    locals.push_back(cluster.local(i));
  }
  return locals;
}

TEST(FaultRecovery, CrashedStepReplaysToIdenticalState) {
  const auto clean = run_steps(FaultPlan{}, RecoveryOptions{});

  FaultPlan plan;
  plan.add({FaultKind::kCrash, /*round=*/1, /*machine=*/2});
  const auto faulty = run_steps(plan, RecoveryOptions{});
  EXPECT_EQ(faulty, clean);

  Cluster cluster = small_cluster();
  cluster.load({{1, 2}, {3}, {4, 5}, {}});
  cluster.set_faults(plan, RecoveryOptions{});
  for (int i = 0; i < 3; ++i) sum_step(cluster);
  EXPECT_EQ(cluster.recovery_stats().crashes, 1u);
  EXPECT_EQ(cluster.recovery_stats().retries, 1u);
  EXPECT_GT(cluster.recovery_stats().replayed_rounds, 0u);
  EXPECT_GT(cluster.recovery_stats().checkpoints, 0u);
  EXPECT_EQ(cluster.recovery_stats().retries_by_label.at("test/sum_step"), 1u);
}

TEST(FaultRecovery, DroppedMessageReplaysToIdenticalState) {
  const auto clean = run_steps(FaultPlan{}, RecoveryOptions{});
  FaultPlan plan;
  plan.add({FaultKind::kDrop, /*round=*/0, /*machine=*/1, /*message=*/0});
  EXPECT_EQ(run_steps(plan, RecoveryOptions{}), clean);
}

TEST(FaultRecovery, DuplicateAndStragglerNeverReplay) {
  const auto clean = run_steps(FaultPlan{}, RecoveryOptions{});
  FaultPlan plan;
  plan.add({FaultKind::kDuplicate, /*round=*/1, /*machine=*/0, /*message=*/0});
  FaultEvent straggler;
  straggler.kind = FaultKind::kStraggler;
  straggler.round = 2;
  straggler.machine = 3;
  straggler.delay = 5;
  plan.add(straggler);

  Cluster cluster = small_cluster();
  cluster.load({{1, 2}, {3}, {4, 5}, {}});
  cluster.set_faults(plan, RecoveryOptions{});
  for (int i = 0; i < 3; ++i) sum_step(cluster);
  std::vector<std::vector<Word>> locals;
  for (std::uint64_t i = 0; i < cluster.low_level_machines(); ++i) {
    locals.push_back(cluster.local(i));
  }
  EXPECT_EQ(locals, clean);
  EXPECT_EQ(cluster.recovery_stats().retries, 0u);
  EXPECT_EQ(cluster.recovery_stats().duplicates_suppressed, 1u);
  EXPECT_EQ(cluster.recovery_stats().straggler_rounds, 5u);
}

TEST(FaultRecovery, MetricsAreByteIdenticalUnderFaults) {
  // The core cost model must not see the fault layer at all.
  Cluster clean = small_cluster();
  clean.load({{1, 2}, {3}, {4, 5}, {}});
  for (int i = 0; i < 3; ++i) sum_step(clean);

  FaultPlan plan;
  plan.add({FaultKind::kCrash, /*round=*/0, /*machine=*/0});
  plan.add({FaultKind::kDrop, /*round=*/2, /*machine=*/2, /*message=*/0});
  Cluster faulty = small_cluster();
  faulty.load({{1, 2}, {3}, {4, 5}, {}});
  faulty.set_faults(plan, RecoveryOptions{});
  for (int i = 0; i < 3; ++i) sum_step(faulty);

  EXPECT_EQ(faulty.metrics().rounds(), clean.metrics().rounds());
  EXPECT_EQ(faulty.metrics().total_communication(),
            clean.metrics().total_communication());
  EXPECT_EQ(faulty.metrics().peak_machine_load(),
            clean.metrics().peak_machine_load());
}

// ---- Retry budget, checkpoint modes, typed errors ----

TEST(FaultRecovery, RetryExhaustionThrowsTypedErrorNotHang) {
  FaultPlan plan;
  FaultEvent stubborn{FaultKind::kCrash, /*round=*/0, /*machine=*/0};
  stubborn.attempts = 10;  // outlives any budget below
  plan.add(stubborn);
  RecoveryOptions recovery;
  recovery.max_retries = 2;

  Cluster cluster = small_cluster();
  cluster.load({{1}, {}, {}, {}});
  cluster.set_faults(plan, recovery);
  try {
    sum_step(cluster);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.label(), "test/sum_step");
    EXPECT_EQ(e.round(), 0u);
    EXPECT_EQ(e.attempts(), 3u);  // 1 initial + 2 retries
    EXPECT_NE(std::string(e.what()).find("retry budget exhausted"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultRecovery, CheckpointOffMakesCrashUnrecoverable) {
  FaultPlan plan;
  plan.add({FaultKind::kCrash, /*round=*/0, /*machine=*/0});
  RecoveryOptions recovery;
  recovery.checkpoint = CheckpointMode::kOff;

  Cluster cluster = small_cluster();
  cluster.load({{1}, {}, {}, {}});
  cluster.set_faults(plan, recovery);
  EXPECT_THROW(sum_step(cluster), FaultError);
}

TEST(FaultRecovery, CheckpointRoundTripRestoresLocals) {
  // The crashed attempt mutates machine-local words; the replay must start
  // from the snapshot, not the half-mutated state — otherwise the committed
  // locals would show the extra increments.
  const auto clean = run_steps(FaultPlan{}, RecoveryOptions{}, /*steps=*/1);
  FaultPlan plan;
  // Machine 2 crashes, machines 0/1/3 run their (mutating) compute; the
  // whole superstep replays from the checkpoint.
  plan.add({FaultKind::kCrash, /*round=*/0, /*machine=*/2});
  EXPECT_EQ(run_steps(plan, RecoveryOptions{}, /*steps=*/1), clean);
}

TEST(FaultRecovery, PhaseCheckpointingReplaysFurtherBack) {
  FaultPlan plan;
  plan.add({FaultKind::kCrash, /*round=*/2, /*machine=*/0});

  RecoveryOptions round_ckpt;  // default kRound
  Cluster a = small_cluster();
  a.load({{1}, {}, {}, {}});
  a.set_faults(plan, round_ckpt);
  a.mark_phase("test/phase");
  for (int i = 0; i < 3; ++i) sum_step(a);

  RecoveryOptions phase_ckpt;
  phase_ckpt.checkpoint = CheckpointMode::kPhase;
  Cluster b = small_cluster();
  b.load({{1}, {}, {}, {}});
  b.set_faults(plan, phase_ckpt);
  b.mark_phase("test/phase");
  for (int i = 0; i < 3; ++i) sum_step(b);

  // Same fault, but the phase-granular replay rolls back from round 2 to
  // the mark at round 0, so it re-executes strictly more rounds.
  EXPECT_GT(b.recovery_stats().replayed_rounds,
            a.recovery_stats().replayed_rounds);
  // Phase mode charges the one mark_phase snapshot; round mode charges one
  // snapshot per superstep.
  EXPECT_EQ(b.recovery_stats().checkpoints, 1u);
  EXPECT_EQ(a.recovery_stats().checkpoints, 3u);
}

TEST(FaultRecovery, BackoffGrowsExponentially) {
  FaultPlan plan;
  FaultEvent stubborn{FaultKind::kCrash, /*round=*/0, /*machine=*/0};
  stubborn.attempts = 3;
  plan.add(stubborn);
  RecoveryOptions recovery;
  recovery.max_retries = 4;

  Cluster cluster = small_cluster();
  cluster.load({{1}, {}, {}, {}});
  cluster.set_faults(plan, recovery);
  sum_step(cluster);
  // Three retries of a 1-round superstep at backoff_rounds=1:
  // 1*2^0 + 1*2^1 + 1*2^2 = 7 replayed rounds.
  EXPECT_EQ(cluster.recovery_stats().retries, 3u);
  EXPECT_EQ(cluster.recovery_stats().replayed_rounds, 7u);
}

// ---- Primitive level & central charges ----

TEST(FaultRecovery, PrimitivesReplayToIdenticalResults) {
  std::vector<std::uint64_t> values(100);
  std::iota(values.begin(), values.end(), 1);

  Cluster clean = small_cluster();
  const auto clean_prefix = mpc::prefix_sum_exclusive(clean, values);
  const auto clean_sum = mpc::reduce_sum(clean, values);

  FaultPlan plan;
  plan.add({FaultKind::kCrash, /*round=*/0, /*machine=*/0});
  plan.add({FaultKind::kDrop, /*round=*/clean.metrics().rounds() / 2,
            /*machine=*/1, /*message=*/0});
  Cluster faulty = small_cluster();
  faulty.set_faults(plan, RecoveryOptions{});
  EXPECT_EQ(mpc::prefix_sum_exclusive(faulty, values), clean_prefix);
  EXPECT_EQ(mpc::reduce_sum(faulty, values), clean_sum);
  EXPECT_GT(faulty.recovery_stats().faults_injected, 0u);
  EXPECT_EQ(faulty.metrics().rounds(), clean.metrics().rounds());
}

TEST(FaultRecovery, WindowsTileAcrossCentralCharges) {
  // Rounds charged by a centrally-simulated stage (charge_recoverable with
  // no body) still form fault windows: an event keyed inside such a stage
  // fires at that stage, not never.
  FaultPlan plan;
  plan.add({FaultKind::kCrash, /*round=*/3, /*machine=*/0});

  Cluster cluster = small_cluster();
  cluster.set_faults(plan, RecoveryOptions{});
  cluster.charge_recoverable(2, "test/stage_a");  // rounds [0, 2)
  cluster.charge_recoverable(5, "test/stage_b");  // rounds [2, 7) — fires
  EXPECT_EQ(cluster.recovery_stats().crashes, 1u);
  EXPECT_EQ(cluster.recovery_stats().retries_by_label.count("test/stage_b"),
            1u);
}

// ---- Solver API surface ----

TEST(FaultSolverApi, ValidateRejectsMalformedPlan) {
  SolveOptions options;
  FaultEvent bad{FaultKind::kCrash, 1, 0};
  bad.attempts = 0;
  options.faults.add(bad);
  EXPECT_EQ(Solver(options).validate().code(), StatusCode::kInvalidFaultPlan);
}

TEST(FaultSolverApi, ValidateRejectsBadRetryBudget) {
  SolveOptions options;
  options.faults.add({FaultKind::kCrash, 1, 0});
  options.recovery.backoff_rounds = 0;
  EXPECT_EQ(Solver(options).validate().code(), StatusCode::kInvalidRetryBudget);

  SolveOptions too_many;
  too_many.faults.add({FaultKind::kCrash, 1, 0});
  too_many.recovery.max_retries = RecoveryOptions::kMaxRetries + 1;
  EXPECT_EQ(Solver(too_many).validate().code(), StatusCode::kInvalidRetryBudget);
}

TEST(FaultSolverApi, ValidateRejectsStaticallyUnrecoverablePlans) {
  // Crash with checkpointing off: nothing to roll back to.
  SolveOptions no_ckpt;
  no_ckpt.faults.add({FaultKind::kCrash, 1, 0});
  no_ckpt.recovery.checkpoint = CheckpointMode::kOff;
  EXPECT_EQ(Solver(no_ckpt).validate().code(), StatusCode::kUnrecoverableFault);

  // Persistent crash outliving the retry budget.
  SolveOptions persistent;
  FaultEvent stubborn{FaultKind::kCrash, 1, 0};
  stubborn.attempts = 5;
  persistent.faults.add(stubborn);
  persistent.recovery.max_retries = 4;
  EXPECT_EQ(Solver(persistent).validate().code(),
            StatusCode::kUnrecoverableFault);

  // Stragglers/duplicates need no checkpoint: admissible with kOff.
  SolveOptions benign;
  FaultEvent slow;
  slow.kind = FaultKind::kStraggler;
  slow.round = 1;
  benign.faults.add(slow);
  benign.recovery.checkpoint = CheckpointMode::kOff;
  EXPECT_TRUE(Solver(benign).validate().ok());
}

TEST(FaultSolverApi, ValidateRejectsDegenerateClusterOverrides) {
  SolveOptions options;
  options.cluster.machine_space = 1;  // Cluster requires S >= 2
  EXPECT_EQ(Solver(options).validate().code(),
            StatusCode::kInvalidClusterOverrides);
}

TEST(FaultSolverApi, SolverOwnedClusterCarriesFaultPlan) {
  SolveOptions options;
  options.faults.add({FaultKind::kCrash, 1, 0});
  options.cluster.machine_space = 256;
  options.cluster.num_machines = 32;
  const auto cluster = Solver(options).cluster(100, 400);
  EXPECT_EQ(cluster.space(), 256u);
  EXPECT_EQ(cluster.machines(), 32u);
  EXPECT_EQ(cluster.fault_plan().events().size(), 1u);
}

TEST(FaultSolverApi, EndToEndSolveIsIdenticalAndLedgersOverhead) {
  const auto g = graph::gnm(300, 2400, 7);
  const auto clean = Solver(SolveOptions{}).mis(g);

  SolveOptions options;
  options.faults.add({FaultKind::kCrash, /*round=*/2, /*machine=*/0});
  options.faults.add({FaultKind::kDrop, /*round=*/11, /*machine=*/1,
                      /*message=*/0});
  const auto faulty = Solver(options).mis(g);

  EXPECT_EQ(faulty.in_set, clean.in_set);
  EXPECT_EQ(faulty.report.metrics.rounds(), clean.report.metrics.rounds());
  EXPECT_GT(faulty.report.recovery.faults_injected, 0u);
  EXPECT_GT(faulty.report.recovery.retries, 0u);
  EXPECT_TRUE(clean.report.recovery.clean());
}

TEST(FaultSolverApi, ExhaustionSurfacesAsFaultErrorFromSolve) {
  const auto g = graph::gnm(200, 1600, 8);
  SolveOptions options;
  FaultEvent stubborn{FaultKind::kCrash, /*round=*/1, /*machine=*/0};
  stubborn.attempts = RecoveryOptions{}.max_retries + 1;
  options.faults.add(stubborn);
  // validate() flags this statically, and solve enforces it up front: the
  // caller gets the typed status before any work runs, never a hang.
  EXPECT_EQ(Solver(options).validate().code(), StatusCode::kUnrecoverableFault);
  try {
    Solver(options).mis(g);
    FAIL() << "expected OptionsError";
  } catch (const OptionsError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kUnrecoverableFault);
  }
}

TEST(FaultSolverApi, ReportCarriesSchemaVersionAndRecovery) {
  const auto g = graph::gnm(200, 1600, 9);
  SolveOptions options;
  options.faults.add({FaultKind::kCrash, /*round=*/2, /*machine=*/0});
  const Solver solver(options);
  const auto solution = solver.mis(g);

  const Report typed = solver.report(solution.report);
  EXPECT_EQ(typed.schema_version, kReportSchemaVersion);
  EXPECT_EQ(typed.algorithm, solution.report.algorithm_used);
  EXPECT_EQ(typed.recovery.retries, solution.report.recovery.retries);

  const std::string json = solver.report_json(solution.report);
  EXPECT_NE(json.find("\"schema_version\":6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"recovery\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"retries_by_label\""), std::string::npos) << json;
  // Schema >= 4: the golden model section of the registry delta rides
  // along; schema 6 additionally types the storage recovery sub-block.
  EXPECT_NE(json.find("\"registry\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"mpc/rounds\""), std::string::npos) << json;
}

TEST(FaultSolverApi, TraceRecoveryEventsAreOptIn) {
  // Golden traces stay identical because recovery instants are off by
  // default; turning them on is the observability hook.
  const auto g = graph::gnm(200, 1600, 10);
  SolveOptions options;
  options.faults.add({FaultKind::kCrash, /*round=*/2, /*machine=*/0});

  auto trace_of = [&](bool trace_recovery) {
    std::ostringstream out;
    obs::JsonlTraceSink sink(&out, /*include_wall_time=*/false);
    obs::TraceSession session(&sink);
    auto local = options;
    local.trace = &session;
    local.recovery.trace_recovery = trace_recovery;
    Solver(local).mis(g);
    session.finish();
    return out.str();
  };

  const std::string quiet = trace_of(false);
  const std::string chatty = trace_of(true);
  EXPECT_EQ(quiet.find("recovery/retry"), std::string::npos);
  EXPECT_NE(chatty.find("recovery/retry"), std::string::npos);
  EXPECT_NE(chatty.find("recovery/checkpoint"), std::string::npos);
}

}  // namespace
}  // namespace dmpc
