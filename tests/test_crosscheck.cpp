// Cross-validation suites:
//  - brute force: every graph on 5 nodes (all 1024 edge subsets) plus a
//    random slice of 6-node graphs, through both public solvers;
//  - the §2.1 reduction: direct §3 matching vs MIS-on-line-graph via §4 —
//    independent pipelines, both must be valid on the same inputs;
//  - tabulation hashing sanity (the alternative family).
#include <gtest/gtest.h>

#include <set>

#include "api/solver.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "hash/tabulation.hpp"
#include "matching/det_matching.hpp"
#include "matching/line_graph_matching.hpp"
#include "support/rng.hpp"

namespace dmpc {
namespace {

using graph::Edge;
using graph::Graph;
using graph::NodeId;

std::vector<Edge> all_pairs(NodeId n) {
  std::vector<Edge> pairs;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) pairs.push_back({u, v});
  }
  return pairs;
}

Graph graph_from_mask(NodeId n, const std::vector<Edge>& pairs,
                      std::uint32_t mask) {
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (mask & (1u << i)) edges.push_back(pairs[i]);
  }
  return Graph::from_edges(n, std::move(edges));
}

TEST(BruteForce, EveryFiveNodeGraph) {
  const auto pairs = all_pairs(5);  // 10 pairs -> 1024 graphs
  for (std::uint32_t mask = 0; mask < (1u << pairs.size()); ++mask) {
    const Graph g = graph_from_mask(5, pairs, mask);
    const auto mis = Solver().mis(g);
    ASSERT_TRUE(graph::is_maximal_independent_set(g, mis.in_set))
        << "mask " << mask;
    const auto mm = Solver().maximal_matching(g);
    ASSERT_TRUE(graph::is_maximal_matching(g, mm.matching))
        << "mask " << mask;
  }
}

TEST(BruteForce, SampledSixNodeGraphs) {
  const auto pairs = all_pairs(6);  // 15 pairs -> 32768 graphs; sample 512
  Rng rng(99);
  for (int trial = 0; trial < 512; ++trial) {
    const auto mask = static_cast<std::uint32_t>(
        rng.next_below(1u << pairs.size()));
    const Graph g = graph_from_mask(6, pairs, mask);
    const auto mis = Solver().mis(g);
    ASSERT_TRUE(graph::is_maximal_independent_set(g, mis.in_set))
        << "mask " << mask;
    const auto mm = Solver().maximal_matching(g);
    ASSERT_TRUE(graph::is_maximal_matching(g, mm.matching))
        << "mask " << mask;
  }
}

TEST(LineGraphReduction, MatchesDirectPipelineValidity) {
  for (std::uint64_t seed : {1, 2}) {
    const Graph g = graph::gnm(120, 480, seed);
    const auto direct = matching::det_maximal_matching(g, {});
    const auto reduced = matching::det_matching_via_line_graph(g);
    EXPECT_TRUE(graph::is_maximal_matching(g, direct.matching));
    EXPECT_TRUE(graph::is_maximal_matching(g, reduced.matching));
    // Sizes agree within the 2x factor both inherit from maximality.
    EXPECT_LE(direct.matching.size(), 2 * reduced.matching.size());
    EXPECT_LE(reduced.matching.size(), 2 * direct.matching.size());
  }
}

TEST(LineGraphReduction, StructuredFamilies) {
  for (const Graph& g :
       {graph::cycle(30), graph::star(20), graph::grid(6, 6)}) {
    const auto reduced = matching::det_matching_via_line_graph(g);
    EXPECT_TRUE(graph::is_maximal_matching(g, reduced.matching));
  }
}

TEST(Tabulation, DeterministicAndSeedSensitive) {
  const hash::TabulationFamily family;
  const auto f1 = family.at(7);
  const auto f2 = family.at(7);
  const auto g1 = family.at(8);
  int diff = 0;
  for (std::uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(f1(x), f2(x));
    if (f1(x) != g1(x)) ++diff;
  }
  EXPECT_GT(diff, 90);  // different seeds give essentially different maps
}

TEST(Tabulation, UniformityOverLowBits) {
  // 3-wise independence implies near-uniform low bits: bucket 4096 inputs
  // into 16 buckets, expect no bucket far from 256.
  const auto fn = hash::TabulationFamily().at(12345);
  std::vector<int> buckets(16, 0);
  for (std::uint64_t x = 0; x < 4096; ++x) ++buckets[fn(x) & 15];
  for (const int count : buckets) {
    EXPECT_GT(count, 170);
    EXPECT_LT(count, 350);
  }
}

TEST(Tabulation, XorStructureOverBlocks) {
  // h(x) depends on each byte independently: changing one byte changes the
  // hash by a value that depends only on that byte pair, not on the rest.
  const auto fn = hash::TabulationFamily().at(5);
  const std::uint64_t delta1 = fn(0x00FF) ^ fn(0x0000);
  const std::uint64_t delta2 = fn(0xAB00 | 0xFF) ^ fn(0xAB00);
  EXPECT_EQ(delta1, delta2);
}

}  // namespace
}  // namespace dmpc
