// Tests for the deterministic host-parallel execution engine: the thread
// pool itself, and the Executor helpers' bitwise-identical-across-thread-
// counts contract (static chunking, ordered reduction, lowest-index
// selection).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"

namespace dmpc::exec {
namespace {

// Thread counts exercised by every determinism check. 0 = hardware
// concurrency, whatever that is on the host running the test.
const std::uint32_t kThreadCounts[] = {1, 2, 4, 8, 0};

// Cheap deterministic pseudo-random doubles (no <random> so the values are
// identical across standard libraries).
double noise(std::uint64_t i) {
  std::uint64_t x = i * 0x9E3779B97F4A7C15ull + 1;
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return static_cast<double>(x % 1000003) / 997.0 - 500.0;
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::uint64_t kTasks = 10000;
  std::vector<std::atomic<std::uint32_t>> hits(kTasks);
  pool.run(kTasks, [&](std::uint64_t t) {
    hits[t].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::uint64_t t = 0; t < kTasks; ++t) {
    ASSERT_EQ(hits[t].load(), 1u) << "task " << t;
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 50; ++batch) {
    std::atomic<std::uint64_t> sum{0};
    pool.run(100, [&](std::uint64_t t) {
      sum.fetch_add(t, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, ZeroTasksAndSingleTask) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> count{0};
  pool.run(0, [&](std::uint64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0u);
  pool.run(1, [&](std::uint64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1u);
}

TEST(Executor, SerialHasNoPool) {
  EXPECT_FALSE(Executor().parallel());
  EXPECT_FALSE(Executor::serial().parallel());
  EXPECT_FALSE(Executor::with_threads(1).parallel());
  EXPECT_EQ(Executor::with_threads(1).threads(), 1u);
  EXPECT_TRUE(Executor::with_threads(2).parallel());
  EXPECT_EQ(Executor::with_threads(2).threads(), 2u);
  EXPECT_GE(Executor::with_threads(0).threads(), 1u);
}

TEST(Executor, ForEachCoversRangeOnce) {
  for (std::uint32_t threads : kThreadCounts) {
    const auto ex = Executor::with_threads(threads);
    for (std::uint64_t grain : {1ull, 7ull, 1024ull}) {
      std::vector<std::uint32_t> hits(5000, 0);
      ex.for_each(0, hits.size(), [&](std::uint64_t i) { ++hits[i]; }, grain);
      for (std::uint64_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i], 1u) << "threads=" << threads << " i=" << i;
      }
    }
    // Empty and offset ranges.
    std::uint64_t calls = 0;
    ex.for_each(10, 10, [&](std::uint64_t) { ++calls; });
    EXPECT_EQ(calls, 0u);
  }
}

TEST(Executor, FloatSumIdenticalAcrossThreadCounts) {
  constexpr std::uint64_t kN = 200000;
  // Reference: thread count 1 (serial path runs the same chunked fold).
  const double reference = Executor::with_threads(1).map_reduce(
      0, kN, 0.0, [](std::uint64_t i) { return noise(i); },
      [](double a, double b) { return a + b; });
  for (std::uint32_t threads : kThreadCounts) {
    const double sum = Executor::with_threads(threads).map_reduce(
        0, kN, 0.0, [](std::uint64_t i) { return noise(i); },
        [](double a, double b) { return a + b; });
    // Bitwise equality, not EXPECT_NEAR: the association is fixed.
    ASSERT_EQ(sum, reference) << "threads=" << threads;
  }
}

TEST(Executor, MapReduceMaxAndEmptyRange) {
  const auto ex = Executor::with_threads(4);
  const auto max_val = ex.map_reduce(
      0, 100000, std::uint64_t{0},
      [](std::uint64_t i) { return (i * 2654435761u) % 99991; },
      [](std::uint64_t a, std::uint64_t b) { return a < b ? b : a; });
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    expected = std::max(expected, (i * 2654435761u) % 99991);
  }
  EXPECT_EQ(max_val, expected);
  EXPECT_EQ(ex.map_reduce(5, 5, std::uint64_t{42},
                          [](std::uint64_t) { return std::uint64_t{1}; },
                          [](std::uint64_t a, std::uint64_t b) { return a + b; }),
            42u);
}

TEST(Executor, FindFirstReturnsLowestIndex) {
  constexpr std::uint64_t kN = 100000;
  // Matches at 31337 and everywhere above 90000: the answer must be the
  // lowest, never "whichever thread got there first".
  auto pred = [](std::uint64_t i) { return i == 31337 || i >= 90000; };
  for (std::uint32_t threads : kThreadCounts) {
    const auto ex = Executor::with_threads(threads);
    ASSERT_EQ(ex.find_first(0, kN, pred), 31337u) << "threads=" << threads;
    ASSERT_EQ(ex.find_first(0, kN, pred, /*grain=*/64), 31337u);
    // No match -> end.
    ASSERT_EQ(ex.find_first(0, 1000, [](std::uint64_t) { return false; }),
              1000u);
    // Empty range -> end.
    ASSERT_EQ(ex.find_first(7, 7, [](std::uint64_t) { return true; }), 7u);
  }
}

TEST(Executor, ParallelSortMatchesStdSortOnTotalOrder) {
  constexpr std::uint64_t kN = 150000;  // > kRun so runs + merges engage
  std::vector<std::uint64_t> reference(kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    reference[i] = (i * 0x9E3779B97F4A7C15ull) % 1000;
  }
  auto sorted = reference;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t threads : kThreadCounts) {
    auto v = reference;
    parallel_sort(Executor::with_threads(threads), v);
    ASSERT_EQ(v, sorted) << "threads=" << threads;
  }
}

TEST(Executor, ParallelSortEqualElementOrderIsExecutorIndependent) {
  // Key-only comparator over (key, payload) pairs: equal keys keep distinct
  // payloads, so the output permutation exposes any executor-dependent
  // decomposition. All thread counts must produce the same bytes.
  constexpr std::uint64_t kN = 120000;
  using P = std::pair<std::uint32_t, std::uint32_t>;
  std::vector<P> input(kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    input[i] = {static_cast<std::uint32_t>((i * 2654435761u) % 16),
                static_cast<std::uint32_t>(i)};
  }
  auto key_less = [](const P& a, const P& b) { return a.first < b.first; };
  auto reference = input;
  parallel_sort(Executor::serial(), reference, key_less);
  for (std::uint32_t threads : kThreadCounts) {
    auto v = input;
    parallel_sort(Executor::with_threads(threads), v, key_less);
    ASSERT_EQ(v, reference) << "threads=" << threads;
  }
}

TEST(Executor, LowestIndexExceptionWins) {
  const auto ex = Executor::with_threads(4);
  try {
    ex.for_each(0, 10000, [](std::uint64_t i) {
      if (i == 123 || i == 4567 || i == 9999) {
        throw std::runtime_error("fail at " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail at 123");
  }
}

TEST(Executor, NestedForEachRunsInline) {
  // A parallel loop inside a pool task must not deadlock; nested helpers run
  // inline on the claiming thread and still produce correct results.
  const auto ex = Executor::with_threads(4);
  std::vector<std::uint64_t> sums(64, 0);
  ex.for_each(0, sums.size(), [&](std::uint64_t i) {
    sums[i] = ex.map_reduce(0, 1000, std::uint64_t{0},
                            [&](std::uint64_t j) { return i + j; },
                            [](std::uint64_t a, std::uint64_t b) { return a + b; });
  });
  for (std::uint64_t i = 0; i < sums.size(); ++i) {
    ASSERT_EQ(sums[i], i * 1000 + 499500);
  }
}

}  // namespace
}  // namespace dmpc::exec
