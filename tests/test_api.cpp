// Tests for the public façade (Theorem 1 dispatch).
#include <gtest/gtest.h>

#include "api/solve.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"

namespace dmpc {
namespace {

using graph::Graph;

TEST(Api, RegimeDispatch) {
  SolveOptions options;
  // Degree-3 graph on many nodes: low-degree regime.
  EXPECT_TRUE(low_degree_regime(graph::random_regular(4096, 3, 1), options));
  // Dense graph: high-degree regime.
  EXPECT_FALSE(low_degree_regime(graph::gnm(256, 8000, 2), options));
}

TEST(Api, MisAutoLowDegree) {
  const Graph g = graph::random_regular(500, 4, 3);
  const auto solution = solve_mis(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, solution.in_set));
  EXPECT_EQ(solution.report.algorithm_used, "lowdeg");
  EXPECT_GT(solution.report.metrics.rounds(), 0u);
}

TEST(Api, MisAutoSparsification) {
  const Graph g = graph::gnm(256, 4096, 4);
  const auto solution = solve_mis(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, solution.in_set));
  EXPECT_EQ(solution.report.algorithm_used, "sparsification");
}

TEST(Api, MatchingBothPaths) {
  const Graph sparse = graph::random_regular(300, 4, 5);
  const auto lowdeg = solve_maximal_matching(sparse);
  EXPECT_TRUE(graph::is_maximal_matching(sparse, lowdeg.matching));
  EXPECT_EQ(lowdeg.report.algorithm_used, "lowdeg");

  const Graph dense = graph::gnm(256, 4096, 6);
  const auto sp = solve_maximal_matching(dense);
  EXPECT_TRUE(graph::is_maximal_matching(dense, sp.matching));
  EXPECT_EQ(sp.report.algorithm_used, "sparsification");
}

TEST(Api, ForcedAlgorithmOverridesAuto) {
  const Graph g = graph::gnm(200, 2000, 7);  // dense: auto = sparsification
  SolveOptions options;
  options.algorithm = Algorithm::kSparsification;
  const auto forced = solve_mis(g, options);
  EXPECT_EQ(forced.report.algorithm_used, "sparsification");
  EXPECT_TRUE(graph::is_maximal_independent_set(g, forced.in_set));
}

TEST(Api, Determinism) {
  const Graph g = graph::power_law(300, 1500, 2.5, 8);
  const auto a = solve_mis(g);
  const auto b = solve_mis(g);
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.report.metrics.rounds(), b.report.metrics.rounds());
}

TEST(Api, TrivialInputs) {
  const Graph empty = Graph::from_edges(3, {});
  const auto mis = solve_mis(empty);
  EXPECT_EQ(std::count(mis.in_set.begin(), mis.in_set.end(), true), 3);
  const auto mm = solve_maximal_matching(empty);
  EXPECT_TRUE(mm.matching.empty());
}

}  // namespace
}  // namespace dmpc
