// Tests for the public façade (Theorem 1 dispatch) and the Solver API:
// typed option validation and the determinism-under-parallelism contract.
#include <gtest/gtest.h>

#include <cmath>

#include "api/solver.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"

namespace dmpc {
namespace {

using graph::Graph;

TEST(Api, RegimeDispatch) {
  SolveOptions options;
  // Degree-3 graph on many nodes: low-degree regime.
  EXPECT_TRUE(Solver(options).low_degree_regime(graph::random_regular(4096, 3, 1)));
  // Dense graph: high-degree regime.
  EXPECT_FALSE(Solver(options).low_degree_regime(graph::gnm(256, 8000, 2)));
}

TEST(Api, MisAutoLowDegree) {
  const Graph g = graph::random_regular(500, 4, 3);
  const auto solution = Solver().mis(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, solution.in_set));
  EXPECT_EQ(solution.report.algorithm_used, "lowdeg");
  EXPECT_GT(solution.report.metrics.rounds(), 0u);
}

TEST(Api, MisAutoSparsification) {
  const Graph g = graph::gnm(256, 4096, 4);
  const auto solution = Solver().mis(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, solution.in_set));
  EXPECT_EQ(solution.report.algorithm_used, "sparsification");
}

TEST(Api, MatchingBothPaths) {
  const Graph sparse = graph::random_regular(300, 4, 5);
  const auto lowdeg = Solver().maximal_matching(sparse);
  EXPECT_TRUE(graph::is_maximal_matching(sparse, lowdeg.matching));
  EXPECT_EQ(lowdeg.report.algorithm_used, "lowdeg");

  const Graph dense = graph::gnm(256, 4096, 6);
  const auto sp = Solver().maximal_matching(dense);
  EXPECT_TRUE(graph::is_maximal_matching(dense, sp.matching));
  EXPECT_EQ(sp.report.algorithm_used, "sparsification");
}

TEST(Api, ForcedAlgorithmOverridesAuto) {
  const Graph g = graph::gnm(200, 2000, 7);  // dense: auto = sparsification
  SolveOptions options;
  options.algorithm = Algorithm::kSparsification;
  const auto forced = Solver(options).mis(g);
  EXPECT_EQ(forced.report.algorithm_used, "sparsification");
  EXPECT_TRUE(graph::is_maximal_independent_set(g, forced.in_set));
}

TEST(Api, Determinism) {
  const Graph g = graph::power_law(300, 1500, 2.5, 8);
  const auto a = Solver().mis(g);
  const auto b = Solver().mis(g);
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.report.metrics.rounds(), b.report.metrics.rounds());
}

TEST(Api, TrivialInputs) {
  const Graph empty = Graph::from_edges(3, {});
  const auto mis = Solver().mis(empty);
  EXPECT_EQ(std::count(mis.in_set.begin(), mis.in_set.end(), true), 3);
  const auto mm = Solver().maximal_matching(empty);
  EXPECT_TRUE(mm.matching.empty());
}

TEST(Solver, DefaultOptionsValidate) {
  EXPECT_TRUE(Solver().validate().ok());
  EXPECT_EQ(Solver().validate().code(), StatusCode::kOk);
  EXPECT_EQ(Solver().validate().to_string(), "ok");
}

TEST(Solver, RejectsEpsOutOfRange) {
  for (double eps : {0.0, -0.5, 1.0, 1.5}) {
    SolveOptions options;
    options.eps = eps;
    const auto status = Solver::validate(options);
    EXPECT_FALSE(status.ok()) << "eps=" << eps;
    EXPECT_EQ(status.code(), StatusCode::kInvalidEps);
    EXPECT_NE(status.message().find("eps"), std::string::npos);
  }
  // NaN must also be rejected.
  SolveOptions options;
  options.eps = std::nan("");
  EXPECT_EQ(Solver::validate(options).code(), StatusCode::kInvalidEps);
}

TEST(Solver, RejectsNonPositiveSpaceHeadroom) {
  for (double headroom : {0.0, -1.0}) {
    SolveOptions options;
    options.space_headroom = headroom;
    const auto status = Solver::validate(options);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidSpaceHeadroom);
    EXPECT_NE(status.message().find("space_headroom"), std::string::npos);
  }
}

TEST(Solver, RejectsNonPositiveDispatchSlack) {
  SolveOptions options;
  options.dispatch_slack = 0.0;
  const auto status = Solver::validate(options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidDispatchSlack);
  EXPECT_NE(status.message().find("dispatch_slack"), std::string::npos);
}

TEST(Solver, RejectsAbsurdThreadCount) {
  SolveOptions options;
  options.threads = Solver::kMaxThreads + 1;
  const auto status = Solver::validate(options);
  EXPECT_EQ(status.code(), StatusCode::kInvalidThreads);
  // 0 (hardware concurrency) and the cap itself are fine.
  options.threads = 0;
  EXPECT_TRUE(Solver::validate(options).ok());
  options.threads = Solver::kMaxThreads;
  EXPECT_TRUE(Solver::validate(options).ok());
}

TEST(Solver, SolveEntryPointsThrowTypedErrorOnInvalidOptions) {
  const Graph g = graph::gnm(64, 256, 1);
  SolveOptions options;
  options.eps = 2.0;
  const Solver solver(options);
  try {
    (void)solver.mis(g);
    FAIL() << "expected OptionsError";
  } catch (const OptionsError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidEps);
  }
  EXPECT_THROW((void)solver.maximal_matching(g), OptionsError);
  EXPECT_THROW((void)solver.low_degree_regime(g), OptionsError);
  // OptionsError stays catchable as CheckFailure for pre-Solver call sites.
  EXPECT_THROW((void)solver.mis(g), CheckFailure);
}

TEST(Solver, StatusCodeNamesAreStable) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidEps), "invalid_eps");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidTraceFormat),
               "invalid_trace_format");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidClusterOverrides),
               "invalid_cluster_overrides");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidFaultPlan),
               "invalid_fault_plan");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidRetryBudget),
               "invalid_retry_budget");
  EXPECT_STREQ(status_code_name(StatusCode::kUnrecoverableFault),
               "unrecoverable_fault");
  SolveOptions options;
  options.space_headroom = -1.0;
  const auto status = Solver::validate(options);
  EXPECT_EQ(status.to_string().rfind("invalid_space_headroom:", 0), 0u);
}

TEST(Solver, RejectsInconsistentStorageOptions) {
  // mmap without a shard directory is unprovisionable...
  SolveOptions options;
  options.storage.backend = mpc::StorageBackend::kMmap;
  EXPECT_EQ(Solver::validate(options).code(), StatusCode::kInvalidStorage);
  // ...and a shard directory is meaningless for the memory backend.
  options.storage.backend = mpc::StorageBackend::kMemory;
  options.storage.shard_dir = "/tmp/shards";
  EXPECT_EQ(Solver::validate(options).code(), StatusCode::kInvalidStorage);
  options.storage.shard_dir.clear();
  EXPECT_TRUE(Solver::validate(options).ok());
}

TEST(Solver, DispatchThresholdMovesWithSlack) {
  // A 4-regular graph sits in the low-degree regime at the default slack;
  // shrinking the slack far enough pushes it to the sparsification path.
  const Graph g = graph::random_regular(500, 4, 3);
  SolveOptions options;
  EXPECT_TRUE(Solver(options).low_degree_regime(g));
  options.dispatch_slack = 0.1;
  const Solver tight(options);
  EXPECT_LT(tight.dispatch_degree_bound(g.num_nodes()), 4.0);
  EXPECT_FALSE(tight.low_degree_regime(g));
  const auto solution = tight.mis(g);
  EXPECT_EQ(solution.report.algorithm_used, "sparsification");
  EXPECT_TRUE(graph::is_maximal_independent_set(g, solution.in_set));
}

TEST(Solver, ThreadedSolveMatchesSerial) {
  const Graph g = graph::gnm(256, 4096, 9);
  SolveOptions serial;
  SolveOptions threaded;
  threaded.threads = 4;
  const auto a = Solver(serial).mis(g);
  const auto b = Solver(threaded).mis(g);
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.report.iterations, b.report.iterations);
  EXPECT_EQ(a.report.metrics.rounds(), b.report.metrics.rounds());
}

TEST(SolverCertify, OffLeavesCertificateEmpty) {
  const Graph g = graph::gnm(256, 4096, 11);
  const Solver solver(SolveOptions{});
  const auto solution = solver.mis(g);
  EXPECT_EQ(solution.report.certificate.mode, verify::CertifyMode::kOff);
  EXPECT_TRUE(solution.report.certificate.empty());
  EXPECT_TRUE(solver.certificate().empty());
}

TEST(SolverCertify, AnswerModeCertifiesMisAndMatching) {
  const Graph g = graph::gnm(256, 4096, 11);
  SolveOptions options;
  options.certify = verify::CertifyMode::kAnswer;
  const Solver solver(options);

  const auto mis = solver.mis(g);
  EXPECT_TRUE(mis.report.certificate.ok());
  EXPECT_EQ(mis.report.certificate.mode, verify::CertifyMode::kAnswer);
  // Answer mode: independence + maximality + space accounting + the
  // storage-integrity verdict (skipped for a plain-graph solve).
  EXPECT_EQ(mis.report.certificate.claims.size(), 4u);
  EXPECT_EQ(solver.certificate().claims.size(), 4u);
  EXPECT_EQ(mis.report.certificate.claims.back().claim,
            verify::Claim::kStorageIntegrity);
  EXPECT_EQ(mis.report.certificate.claims.back().verdict,
            verify::Verdict::kSkipped);

  const auto matching = solver.maximal_matching(g);
  EXPECT_TRUE(matching.report.certificate.ok());
  EXPECT_EQ(matching.report.certificate.claims.size(), 4u);
  EXPECT_EQ(matching.report.certificate.claims[0].claim,
            verify::Claim::kMatchingValidity);
}

TEST(SolverCertify, FullModeCertifiesAllClaimsOnBothRegimes) {
  SolveOptions options;
  options.certify = verify::CertifyMode::kFull;
  const Solver solver(options);
  // Sparsification regime: the audit claims are checked, not skipped.
  const auto dense = solver.mis(graph::gnm(256, 4096, 12));
  EXPECT_TRUE(dense.report.certificate.ok());
  EXPECT_EQ(dense.report.certificate.claims.size(), 8u);
  for (const auto& claim : dense.report.certificate.claims) {
    EXPECT_NE(verify::verdict_name(claim.verdict), std::string("fail"));
  }
  // Low-degree regime: no sparsifier ran; audit claims are skipped but the
  // certificate still passes.
  const auto sparse = solver.mis(graph::random_regular(500, 4, 13));
  EXPECT_TRUE(sparse.report.certificate.ok());
  EXPECT_EQ(sparse.report.certificate.claims.size(), 8u);
}

TEST(SolverCertify, FullModeDoesNotPerturbTheSolve) {
  const Graph g = graph::gnm(256, 4096, 14);
  SolveOptions plain;
  SolveOptions certified;
  certified.certify = verify::CertifyMode::kFull;
  const auto a = Solver(plain).mis(g);
  const auto b = Solver(certified).mis(g);
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.report.metrics.rounds(), b.report.metrics.rounds());
  EXPECT_EQ(a.report.metrics.peak_machine_load(),
            b.report.metrics.peak_machine_load());
}

TEST(SolverCertify, CertificateSurvivesJsonRoundTrip) {
  const Graph g = graph::gnm(256, 4096, 15);
  SolveOptions options;
  options.certify = verify::CertifyMode::kFull;
  const Solver solver(options);
  const auto solution = solver.mis(g);
  const std::string json = solver.report_json(solution.report);
  EXPECT_NE(json.find("\"certificate\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"mode\":\"full\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"mis_independence\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"replay_identity\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"sparsify_audit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos) << json;
}

TEST(SolverCertify, CertifyUnderFaultsStillPassesAndMatchesFaultFree) {
  const Graph g = graph::gnm(256, 4096, 16);
  SolveOptions faulted;
  faulted.certify = verify::CertifyMode::kFull;
  faulted.faults.add({mpc::FaultKind::kCrash, /*round=*/2, /*machine=*/0});
  const Solver solver(faulted);
  const auto solution = solver.mis(g);
  EXPECT_TRUE(solution.report.certificate.ok());
  EXPECT_GT(solution.report.recovery.faults_injected, 0u);

  SolveOptions clean;
  clean.certify = verify::CertifyMode::kFull;
  const auto reference = Solver(clean).mis(g);
  EXPECT_EQ(solution.in_set, reference.in_set);
  // The certificate claims themselves are identical: the replay-identity
  // claim runs in both runs precisely so the certified report stays
  // comparable across fault axes.
  ASSERT_EQ(solution.report.certificate.claims.size(),
            reference.report.certificate.claims.size());
  for (std::size_t i = 0; i < reference.report.certificate.claims.size();
       ++i) {
    EXPECT_EQ(solution.report.certificate.claims[i].verdict,
              reference.report.certificate.claims[i].verdict);
  }
}

}  // namespace
}  // namespace dmpc
