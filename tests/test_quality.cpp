// Solution-quality tests: the classic approximation guarantees that
// maximal solutions carry, verified against exact references.
#include <gtest/gtest.h>

#include "api/solver.hpp"
#include "baselines/greedy.hpp"
#include "baselines/luby_colored.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"

namespace dmpc {
namespace {

using graph::Graph;

// Any maximal matching has size >= (1/2) * maximum matching. Verify the
// deterministic solver against Hopcroft-Karp on bipartite instances.
TEST(Quality, MaximalMatchingIsHalfOfMaximumBipartite) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const Graph g = graph::random_bipartite(60, 60, 400, seed);
    const auto maximum = graph::hopcroft_karp(g);
    const auto solution = Solver().maximal_matching(g);
    EXPECT_GE(2 * solution.matching.size(), maximum.size);
    EXPECT_LE(solution.matching.size(), maximum.size);
  }
}

TEST(Quality, MatchingOnStructuredBipartite) {
  // Grid graphs are bipartite with a perfect/near-perfect matching.
  const Graph g = graph::grid(10, 10);
  const auto maximum = graph::hopcroft_karp(g);
  EXPECT_EQ(maximum.size, 50u);
  const auto solution = Solver().maximal_matching(g);
  EXPECT_GE(2 * solution.matching.size(), maximum.size);
}

// MIS size bounds: any MIS has size >= n / (Delta + 1).
TEST(Quality, MisSizeLowerBound) {
  for (std::uint64_t seed : {4, 5}) {
    const Graph g = graph::random_regular(300, 6, seed);
    const auto solution = Solver().mis(g);
    std::size_t size = 0;
    for (bool b : solution.in_set) size += b;
    EXPECT_GE(size * (g.max_degree() + 1), g.num_nodes());
  }
}

// §5.1 randomized baseline: valid, and its seeds really are small.
TEST(Quality, ColoredLubyValidWithSmallSeeds) {
  const Graph g = graph::random_regular(400, 4, 6);
  const auto result = baselines::luby_mis_colored(g, 7);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, result.in_set));
  EXPECT_GT(result.colors, 0u);
  // Palette is min(n, poly(Delta)): at n = 400 the identity palette can be
  // the fixed point; either way the seed stays O(log colors) bits.
  EXPECT_LE(result.colors, 1600u);
  // O(log Delta) bits: palette is poly(Delta), far below poly(n) seeds.
  EXPECT_LE(result.seed_bits_per_phase, 24u);
  EXPECT_LE(result.phases, 40u);
}

TEST(Quality, ColoredLubyMatchesClassicLubyShape) {
  const Graph g = graph::random_regular(500, 5, 8);
  const auto colored = baselines::luby_mis_colored(g, 9);
  // Classic greedy reference: both are maximal, sizes within a small factor.
  const auto greedy = baselines::greedy_mis(g);
  const auto colored_size =
      std::count(colored.in_set.begin(), colored.in_set.end(), true);
  const auto greedy_size = std::count(greedy.begin(), greedy.end(), true);
  EXPECT_GT(colored_size * 2, greedy_size);
  EXPECT_LT(colored_size, greedy_size * 2);
}

}  // namespace
}  // namespace dmpc
