// Tests for the CONGEST extension module (§6 future work).
#include <gtest/gtest.h>

#include "congest/congest_mis.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"

namespace dmpc::congest {
namespace {

using graph::Graph;

TEST(Network, ChargingModel) {
  const Graph g = graph::cycle(10);
  CongestNetwork net(g);
  EXPECT_GE(net.message_bits(), 8u);  // 2 log2(10) rounded up
  net.charge_rounds(3, "x");
  EXPECT_EQ(net.metrics().rounds(), 3u);
  EXPECT_EQ(net.metrics().total_communication(), 3u * 2u * 10u);
  net.charge_tree_aggregation(4, 16, "vote");
  EXPECT_EQ(net.metrics().rounds(), 3u + 2 * (4 + 16));
}

TEST(CongestMis, ValidAndDeterministic) {
  const Graph g = graph::gnm(300, 1500, 1);
  const auto a = congest_mis(g);
  const auto b = congest_mis(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, a.in_set));
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.metrics.rounds(), b.metrics.rounds());
}

TEST(CongestMis, StructuredFamilies) {
  for (const Graph& g : {graph::cycle(64), graph::grid(8, 8),
                         graph::random_tree(100, 2), graph::star(50)}) {
    EXPECT_TRUE(graph::is_maximal_independent_set(g, congest_mis(g).in_set));
  }
}

TEST(CongestMis, DisconnectedGraphs) {
  const Graph g =
      graph::disjoint_union(graph::cycle(11), graph::complete(7));
  const auto result = congest_mis(g);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, result.in_set));
}

TEST(CongestMis, RoundsScaleWithBfsDepth) {
  // Same phase structure, very different diameters: the deterministic
  // coordination pays per unit of depth.
  const Graph shallow = graph::star(256);
  const Graph deep = graph::path(257);
  const auto a = congest_mis(shallow);
  const auto b = congest_mis(deep);
  EXPECT_LT(a.bfs_depth, 3u);
  EXPECT_GT(b.bfs_depth, 100u);
  EXPECT_LT(a.metrics.rounds(), b.metrics.rounds());
}

TEST(CongestMis, RandomizedBaselineCheaperPerPhase) {
  const Graph g = graph::gnm(400, 2000, 3);
  const auto det = congest_mis(g);
  const auto rand = luby_mis_congest(g, 7);
  EXPECT_TRUE(graph::is_maximal_independent_set(g, det.in_set));
  EXPECT_TRUE(graph::is_maximal_independent_set(g, rand.in_set));
  // The deterministic run pays the O(D + K) voting per phase.
  EXPECT_GT(det.metrics.rounds(), rand.metrics.rounds());
}

TEST(CongestMis, EdgelessAndTiny) {
  const Graph g = Graph::from_edges(5, {});
  const auto result = congest_mis(g);
  EXPECT_EQ(std::count(result.in_set.begin(), result.in_set.end(), true), 5);
  EXPECT_EQ(result.phases, 0u);
  const Graph single = Graph::from_edges(2, {{0, 1}});
  EXPECT_TRUE(
      graph::is_maximal_independent_set(single, congest_mis(single).in_set));
}

}  // namespace
}  // namespace dmpc::congest
