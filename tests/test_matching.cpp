// Tests for the deterministic maximal matching pipeline (§3, Theorem 7).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "matching/det_matching.hpp"

namespace dmpc::matching {
namespace {

using graph::Graph;

TEST(DetMatching, ValidOnRandomGraphs) {
  for (std::uint64_t seed : {1, 2}) {
    const Graph g = graph::gnm(256, 2048, seed);
    const auto result = det_maximal_matching(g, DetMatchingConfig{});
    EXPECT_TRUE(graph::is_maximal_matching(g, result.matching));
    EXPECT_GE(result.iterations, 1u);
  }
}

TEST(DetMatching, DeterministicAcrossRuns) {
  const Graph g = graph::gnm(200, 1600, 3);
  const auto a = det_maximal_matching(g, DetMatchingConfig{});
  const auto b = det_maximal_matching(g, DetMatchingConfig{});
  EXPECT_EQ(a.matching, b.matching);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.metrics.rounds(), b.metrics.rounds());
}

TEST(DetMatching, StructuredFamilies) {
  const auto configs = DetMatchingConfig{};
  for (const Graph& g :
       {graph::cycle(64), graph::path(64), graph::star(63),
        graph::complete_bipartite(16, 16), graph::grid(8, 8)}) {
    const auto result = det_maximal_matching(g, configs);
    EXPECT_TRUE(graph::is_maximal_matching(g, result.matching));
  }
}

TEST(DetMatching, PowerLawAndLopsided) {
  const Graph pl = graph::power_law(400, 2400, 2.5, 4);
  EXPECT_TRUE(graph::is_maximal_matching(
      pl, det_maximal_matching(pl, DetMatchingConfig{}).matching));
  const Graph lop = graph::lopsided(4, 40, 100, 200, 5);
  EXPECT_TRUE(graph::is_maximal_matching(
      lop, det_maximal_matching(lop, DetMatchingConfig{}).matching));
}

TEST(DetMatching, IterationReportsShowProgress) {
  const Graph g = graph::gnm(256, 2048, 6);
  const auto result = det_maximal_matching(g, DetMatchingConfig{});
  ASSERT_EQ(result.reports.size(), result.iterations);
  for (std::size_t i = 0; i < result.reports.size(); ++i) {
    const auto& r = result.reports[i];
    EXPECT_EQ(r.iteration, i + 1);
    EXPECT_LT(r.edges_after, r.edges_before);
    EXPECT_GT(r.progress_fraction, 0.0);
    EXPECT_GT(r.matched_pairs, 0u);
    EXPECT_GE(r.cls, 1u);
  }
  EXPECT_EQ(result.reports.back().edges_after, 0u);
}

TEST(DetMatching, IterationsLogarithmic) {
  // O(log n) claim: generous constant for the finite-n check.
  const Graph g = graph::gnm(1024, 8192, 7);
  const auto result = det_maximal_matching(g, DetMatchingConfig{});
  const double log_m =
      std::log2(static_cast<double>(g.num_edges()) + 1.0);
  EXPECT_LE(result.iterations, static_cast<std::uint64_t>(12 * log_m) + 12);
}

TEST(DetMatching, SpaceWithinBudget) {
  const Graph g = graph::gnm(512, 4096, 8);
  DetMatchingConfig config;
  const auto cc = cluster_config_for(config, g.num_nodes(), g.num_edges());
  const auto result = det_maximal_matching(g, config);
  // Simulator enforces this; re-assert from the metrics.
  EXPECT_LE(result.metrics.peak_machine_load(), cc.machine_space);
}

TEST(DetMatching, RoundsAccumulateByLabel) {
  const Graph g = graph::gnm(256, 2048, 9);
  const auto result = det_maximal_matching(g, DetMatchingConfig{});
  const auto& labels = result.metrics.rounds_by_label();
  EXPECT_TRUE(labels.count("good_nodes/matching"));
  EXPECT_TRUE(labels.count("matching/selection"));
  EXPECT_TRUE(labels.count("matching/gather2hop"));
  EXPECT_GT(result.metrics.rounds(), 0u);
  EXPECT_GT(result.metrics.total_communication(), 0u);
}

TEST(DetMatching, TinyGraphs) {
  const Graph single = Graph::from_edges(2, {{0, 1}});
  const auto result = det_maximal_matching(single, DetMatchingConfig{});
  ASSERT_EQ(result.matching.size(), 1u);
  const Graph empty = Graph::from_edges(3, {});
  const auto none = det_maximal_matching(empty, DetMatchingConfig{});
  EXPECT_TRUE(none.matching.empty());
  EXPECT_EQ(none.iterations, 0u);
}

TEST(DetMatching, EpsVariants) {
  const Graph g = graph::gnm(256, 2048, 10);
  for (double eps : {0.3, 0.5, 0.7}) {
    DetMatchingConfig config;
    config.eps = eps;
    const auto result = det_maximal_matching(g, config);
    EXPECT_TRUE(graph::is_maximal_matching(g, result.matching));
  }
}

}  // namespace
}  // namespace dmpc::matching
