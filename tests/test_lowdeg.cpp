// Tests for the §5 low-degree pipeline: coloring, neighborhoods, phase
// compression, and the combined O(log Delta + log log n) solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "lowdeg/coloring.hpp"
#include "lowdeg/lowdeg_solver.hpp"
#include "lowdeg/neighborhoods.hpp"
#include "lowdeg/phase_compression.hpp"
#include "mpc/cluster.hpp"

namespace dmpc::lowdeg {
namespace {

using graph::Graph;
using graph::NodeId;

mpc::Cluster roomy_cluster() {
  mpc::ClusterConfig config;
  config.machine_space = 1 << 16;
  config.num_machines = 1 << 10;
  return mpc::Cluster(config);
}

TEST(Coloring, ProperWithQuadraticPalette) {
  auto cluster = roomy_cluster();
  const Graph g = graph::random_regular(400, 5, 1);
  const auto result = linial_coloring(cluster, g);
  EXPECT_TRUE(graph::is_proper_coloring(g, result.color));
  // O(Delta^2) with modest constants: q <= next prime > k * Delta.
  EXPECT_LE(result.num_colors, 400u);
  EXPECT_GE(result.reduction_steps, 1u);
}

TEST(Coloring, Distance2IsValidAndSmall) {
  auto cluster = roomy_cluster();
  const Graph g = graph::random_regular(300, 4, 2);
  const auto result = distance2_coloring(cluster, g);
  EXPECT_TRUE(graph::is_distance2_coloring(g, result.color));
  // Palette min(n, O(Delta^4)): Delta = 4 -> G^2 degree <= 16, fixed point
  // (2*16+k)^2 ~ 1369; at n = 300 the identity palette is already smaller.
  EXPECT_LE(result.num_colors, 300u);
  const Graph big = graph::random_regular(4000, 4, 3);
  const auto big_result = distance2_coloring(cluster, big);
  EXPECT_TRUE(graph::is_distance2_coloring(big, big_result.color));
  EXPECT_LE(big_result.num_colors, 1600u);  // (2*D+8)^2 for D = Delta^2
}

TEST(Coloring, PathGetsTinyPalette) {
  auto cluster = roomy_cluster();
  const Graph g = graph::path(512);
  const auto result = distance2_coloring(cluster, g);
  EXPECT_TRUE(graph::is_distance2_coloring(g, result.color));
  // G^2 of a path has degree <= 4: fixed point (2*4+3)^2 = 121.
  EXPECT_LE(result.num_colors, 128u);
}

TEST(Coloring, ChargesOLogStarRounds) {
  auto cluster = roomy_cluster();
  const Graph g = graph::random_regular(400, 5, 3);
  const auto result = linial_coloring(cluster, g);
  EXPECT_LE(result.reduction_steps, 8u);  // log* 400 plus slack
  EXPECT_GE(cluster.metrics().rounds(), result.reduction_steps);
}

TEST(Neighborhoods, BallsAreCorrect) {
  auto cluster = roomy_cluster();
  const Graph g = graph::cycle(12);
  std::vector<bool> alive(12, true);
  const auto gather = gather_neighborhoods(cluster, g, alive, 2);
  for (NodeId v = 0; v < 12; ++v) {
    EXPECT_EQ(gather.balls[v].size(), 5u);  // v, two each side
  }
  EXPECT_EQ(gather.max_ball, 5u);
}

TEST(Neighborhoods, RespectsAliveMaskAndRadius) {
  auto cluster = roomy_cluster();
  const Graph g = graph::path(10);
  std::vector<bool> alive(10, true);
  alive[5] = false;  // cuts the path
  const auto gather = gather_neighborhoods(cluster, g, alive, 10);
  // Node 0's ball stops at node 4.
  EXPECT_EQ(gather.balls[0].size(), 5u);
  EXPECT_TRUE(gather.balls[5].empty());
}

TEST(Neighborhoods, ChargesLogRounds) {
  auto cluster = roomy_cluster();
  const Graph g = graph::cycle(32);
  std::vector<bool> alive(32, true);
  const auto g4 = gather_neighborhoods(cluster, g, alive, 4);
  EXPECT_EQ(g4.rounds_charged, 3u);  // ceil(log2 4) + 1
}

TEST(PhaseCompression, StageRemovesEdges) {
  auto cluster = roomy_cluster();
  const Graph g = graph::random_regular(200, 4, 4);
  const auto coloring = distance2_coloring_raw(g);
  hash::SmallFamily family(std::max<std::uint32_t>(coloring.num_colors, 2));
  hash::FunctionSequence sequence(family, 3, 1024);
  std::vector<bool> alive(g.num_nodes(), true);
  const auto outcome = run_stage(cluster, g, alive, coloring.color, sequence,
                                 /*budget=*/32);
  EXPECT_LT(outcome.edges_after, outcome.edges_before);
  EXPECT_FALSE(outcome.independent.empty());
  // The committed set is independent and consistent with `alive`.
  for (NodeId v : outcome.independent) {
    EXPECT_FALSE(alive[v]);
    for (NodeId u : g.neighbors(v)) EXPECT_FALSE(alive[u]);
  }
  std::vector<bool> in_set(g.num_nodes(), false);
  for (NodeId v : outcome.independent) in_set[v] = true;
  EXPECT_TRUE(graph::is_independent_set(g, in_set));
}

TEST(PhaseCompression, SimulationIsPureFunction) {
  const Graph g = graph::random_regular(100, 4, 5);
  const auto coloring = distance2_coloring_raw(g);
  hash::SmallFamily family(std::max<std::uint32_t>(coloring.num_colors, 2));
  hash::FunctionSequence sequence(family, 2, 64);
  std::vector<bool> alive(g.num_nodes(), true);
  const auto a = simulate_stage(g, alive, coloring.color, sequence, 17);
  const auto b = simulate_stage(g, alive, coloring.color, sequence, 17);
  EXPECT_EQ(a, b);
  // alive is untouched.
  EXPECT_TRUE(std::all_of(alive.begin(), alive.end(), [](bool x) { return x; }));
}

TEST(LowDegSolver, PhasesScaleInverselyWithLogDelta) {
  LowDegConfig config;
  const auto l_small = phases_for(config, 1 << 16, 2);
  const auto l_big = phases_for(config, 1 << 16, 64);
  EXPECT_GT(l_small, l_big);
  EXPECT_GE(l_big, 1u);
}

TEST(LowDegSolver, MisValidOnBoundedDegree) {
  for (std::uint64_t seed : {1, 2}) {
    const Graph g = graph::random_regular(400, 6, seed);
    const auto result = lowdeg_mis(g, LowDegConfig{});
    EXPECT_TRUE(graph::is_maximal_independent_set(g, result.in_set));
    EXPECT_GE(result.phases_per_stage, 1u);
    EXPECT_GT(result.colors, 0u);
  }
}

TEST(LowDegSolver, MisDeterministic) {
  const Graph g = graph::random_regular(300, 5, 3);
  const auto a = lowdeg_mis(g, LowDegConfig{});
  const auto b = lowdeg_mis(g, LowDegConfig{});
  EXPECT_EQ(a.in_set, b.in_set);
  EXPECT_EQ(a.metrics.rounds(), b.metrics.rounds());
}

TEST(LowDegSolver, StageCountLogarithmicInDelta) {
  // Theorem 1 shape: stages = O(log Delta) once the O(log log n)
  // preprocessing is done. Generous constant at this scale.
  const Graph g = graph::random_regular(2048, 4, 4);
  const auto result = lowdeg_mis(g, LowDegConfig{});
  EXPECT_LE(result.stages, 40u);
}

TEST(LowDegSolver, StructuredFamilies) {
  for (const Graph& g : {graph::cycle(128), graph::path(128),
                         graph::grid(12, 12), graph::random_tree(128, 5)}) {
    const auto result = lowdeg_mis(g, LowDegConfig{});
    EXPECT_TRUE(graph::is_maximal_independent_set(g, result.in_set));
  }
}

TEST(LowDegSolver, EmptyAndEdgelessGraphs) {
  const Graph edgeless = Graph::from_edges(5, {});
  const auto result = lowdeg_mis(edgeless, LowDegConfig{});
  EXPECT_EQ(std::count(result.in_set.begin(), result.in_set.end(), true), 5);
}

TEST(LowDegSolver, MatchingViaLineGraph) {
  for (std::uint64_t seed : {1, 2}) {
    const Graph g = graph::random_regular(200, 5, seed + 10);
    const auto result = lowdeg_matching(g, LowDegConfig{});
    EXPECT_TRUE(graph::is_maximal_matching(g, result.matching));
  }
}

TEST(LowDegSolver, MatchingOnPath) {
  const Graph g = graph::path(50);
  const auto result = lowdeg_matching(g, LowDegConfig{});
  EXPECT_TRUE(graph::is_maximal_matching(g, result.matching));
  EXPECT_GE(result.matching.size(), 17u);  // maximal matching of P50 >= 17
}

}  // namespace
}  // namespace dmpc::lowdeg
