// Tests for the offline trace analyzer (obs/trace_analysis.hpp): span-tree
// reconstruction from both serialized formats, critical-path extraction
// under rounds and wall weighting, folded flamegraph stacks, the profile
// skew gate, and a byte-exact round trip against the checked-in E17 trace
// fixture (tests/data/e17_trace.jsonl).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/solver.hpp"
#include "graph/generators.hpp"
#include "obs/profiler.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "support/json.hpp"
#include "support/parse_error.hpp"

namespace dmpc {
namespace {

#ifndef DMPC_TEST_DATA_DIR
#define DMPC_TEST_DATA_DIR "tests/data"
#endif

std::string read_fixture(const std::string& name) {
  std::ifstream in(std::string(DMPC_TEST_DATA_DIR) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The fixture's solve, reproduced live: E17's graph (gnm n=512, m=16n,
/// seed 23) through the MIS pipeline with a golden JSONL trace.
std::string live_e17_trace() {
  const auto g = graph::gnm(512, 8192, 23);
  std::ostringstream out;
  obs::JsonlTraceSink sink(&out, /*include_wall_time=*/false);
  obs::TraceSession session(&sink);
  SolveOptions options;
  options.profile = true;
  options.trace = &session;
  Solver(options).mis(g);
  session.finish();
  return out.str();
}

TEST(TraceAnalyze, FixtureIsByteIdenticalToLiveTrace) {
  // The checked-in fixture doubles as a cross-session golden: regenerate it
  // (see tests/data/README.md) whenever the pipeline's trace shape changes.
  EXPECT_EQ(live_e17_trace(), read_fixture("e17_trace.jsonl"));
}

TEST(TraceAnalyze, FixtureCriticalPathIsRoundWeighted) {
  const auto analysis = obs::analyze_trace_text(read_fixture("e17_trace.jsonl"));
  EXPECT_GT(analysis.spans.size(), 10u);
  ASSERT_EQ(analysis.roots.size(), 1u);
  EXPECT_GT(analysis.total_rounds, 0u);
  EXPECT_FALSE(analysis.has_wall);  // golden trace: no timestamps

  const auto path = obs::critical_path(analysis);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(analysis.spans[path.front().span].name, "mis/pipeline");
  EXPECT_EQ(path.front().inclusive, analysis.total_rounds);
  // Inclusive weight is non-increasing down the path.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_LE(path[i].inclusive, path[i - 1].inclusive);
    EXPECT_EQ(analysis.spans[path[i].span].parent, path[i - 1].span);
  }
}

TEST(TraceAnalyze, WallWeightedPathSurfacesDerandSeedSearch) {
  // With wall timestamps on, the host-side critical path must end in the
  // derand CE sweep (mis_sparsify/seed wraps derand::find_best_seed), which
  // charges few model rounds but dominates wall time.
  const auto g = graph::gnm(512, 8192, 23);
  std::ostringstream out;
  obs::JsonlTraceSink sink(&out, /*include_wall_time=*/true);
  obs::TraceSession session(&sink);
  SolveOptions options;
  options.trace = &session;
  Solver(options).mis(g);
  session.finish();

  const auto analysis = obs::analyze_trace_text(out.str());
  EXPECT_TRUE(analysis.has_wall);
  const auto wall_path =
      obs::critical_path(analysis, obs::PathWeight::kWall);
  ASSERT_FALSE(wall_path.empty());
  bool seen_seed = false;
  for (const auto& entry : wall_path) {
    seen_seed = seen_seed ||
                analysis.spans[entry.span].name == "mis_sparsify/seed";
  }
  EXPECT_TRUE(seen_seed) << "CE sweep not on the wall critical path";
}

TEST(TraceAnalyze, HotSpansAggregateByNameDeterministically) {
  const auto analysis = obs::analyze_trace_text(read_fixture("e17_trace.jsonl"));
  const auto hot = obs::hot_spans(analysis);
  ASSERT_FALSE(hot.empty());
  std::uint64_t self_total = 0;
  bool seen_seed = false;
  for (const auto& span : hot) {
    self_total += span.self_rounds;
    seen_seed = seen_seed || span.name == "mis_sparsify/seed";
  }
  EXPECT_TRUE(seen_seed);
  // Self weights partition the total: no double counting across the tree.
  EXPECT_EQ(self_total, analysis.total_rounds);
  for (std::size_t i = 1; i < hot.size(); ++i) {
    EXPECT_GE(hot[i - 1].self_rounds, hot[i].self_rounds);
  }
}

TEST(TraceAnalyze, FoldedStacksPartitionTheTotal) {
  const auto analysis = obs::analyze_trace_text(read_fixture("e17_trace.jsonl"));
  const std::string folded = obs::folded_stacks(analysis);
  ASSERT_FALSE(folded.empty());
  std::uint64_t total = 0;
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    const auto space = line.find_last_of(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.find(' '), space) << "stack frames must use ';': " << line;
    total += std::stoull(line.substr(space + 1));
    EXPECT_EQ(line.rfind("mis/pipeline", 0), 0u)
        << "every stack starts at the root: " << line;
  }
  EXPECT_EQ(total, analysis.total_rounds);
  EXPECT_NE(folded.find(";mis_sparsify/seed "), std::string::npos);
}

TEST(TraceAnalyze, ChromeTraceReconstructsTheSameTree) {
  std::ostringstream jsonl_out;
  std::ostringstream chrome_out;
  {
    obs::JsonlTraceSink jsonl(&jsonl_out, /*include_wall_time=*/false);
    obs::TraceSession session(&jsonl);
    obs::Span outer(&session, "phase/outer");
    { obs::Span inner(&session, "phase/inner"); }
  }
  {
    obs::ChromeTraceSink chrome(&chrome_out);
    obs::TraceSession session(&chrome);
    {
      obs::Span outer(&session, "phase/outer");
      { obs::Span inner(&session, "phase/inner"); }
    }
    session.finish();
  }
  const auto a = obs::analyze_trace_text(jsonl_out.str());
  const auto b = obs::analyze_trace_text(chrome_out.str());
  ASSERT_EQ(a.spans.size(), 2u);
  ASSERT_EQ(b.spans.size(), 2u);
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i].name, b.spans[i].name);
    EXPECT_EQ(a.spans[i].parent, b.spans[i].parent);
    EXPECT_EQ(a.spans[i].depth, b.spans[i].depth);
  }
}

TEST(TraceAnalyze, MalformedAndTruncatedInput) {
  EXPECT_THROW(obs::analyze_trace_text("   \n  \n"), ParseError);
  EXPECT_THROW(obs::analyze_trace_text("not json\n"), ParseError);
  // A truncated stream (begin without end) is tolerated: the open span is
  // closed with zero weight rather than rejected, so post-crash traces
  // still analyze.
  const auto analysis = obs::analyze_trace_text(
      R"({"seq":0,"type":"begin","name":"a","span":1,"parent":0,"depth":0})"
      "\n");
  ASSERT_EQ(analysis.spans.size(), 1u);
  EXPECT_EQ(analysis.spans[0].name, "a");
}

// ---- Profile skew gate ----

Json profiled_block() {
  obs::RoundProfiler profiler;
  profiler.observe_load(10, 0);
  profiler.observe_load(30, 1);
  profiler.commit("mpc/route", 2, 2, 40);
  auto snap = profiler.snapshot();
  snap.enabled = true;
  return to_json(snap);
}

TEST(ProfileGate, PassesUnderGenerousThresholds) {
  const Json profile = profiled_block();
  const Json thresholds = Json::parse(
      R"({"max_gini_ppm": 900000, "max_load_max": 1000})");
  EXPECT_TRUE(obs::check_profile_gate(profile, thresholds, "t").empty());
}

TEST(ProfileGate, NamesOffendingLabelAndRoundRange) {
  const Json profile = profiled_block();
  // gini of {10, 30} = 20e6 / (2 * 40) = 250000 ppm; cap below that.
  const Json thresholds = Json::parse(R"({"max_gini_ppm": 200000})");
  const auto violations = obs::check_profile_gate(profile, thresholds, "ctx");
  // One per-label violation plus one ring-record violation.
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].series, "ctx.mpc/route");
  EXPECT_NE(violations[0].detail.find("250000"), std::string::npos);
  EXPECT_NE(violations[1].series.find("rounds [0, 2)"), std::string::npos);
}

TEST(ProfileGate, LabelOverridesBeatTheGlobalCap) {
  const Json profile = profiled_block();
  const Json thresholds = Json::parse(
      R"({"max_gini_ppm": 200000,
          "labels": {"mpc/route": {"max_gini_ppm": 800000}}})");
  EXPECT_TRUE(obs::check_profile_gate(profile, thresholds, "t").empty());
}

TEST(ProfileGate, AbsentKeysImposeNoLimit) {
  const Json profile = profiled_block();
  EXPECT_TRUE(
      obs::check_profile_gate(profile, Json::object(), "t").empty());
}

}  // namespace
}  // namespace dmpc
