// Unit tests for line graph, square graph, and subgraph transforms.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "graph/validate.hpp"

namespace dmpc::graph {
namespace {

TEST(LineGraph, PathAndTriangle) {
  // P4: edges (0-1),(1-2),(2-3) -> line graph is P3.
  const Graph p = path(4);
  const Graph lp = line_graph(p);
  EXPECT_EQ(lp.num_nodes(), 3u);
  EXPECT_EQ(lp.num_edges(), 2u);
  // Triangle -> line graph is a triangle.
  const Graph t = cycle(3);
  const Graph lt = line_graph(t);
  EXPECT_EQ(lt.num_nodes(), 3u);
  EXPECT_EQ(lt.num_edges(), 3u);
}

TEST(LineGraph, StarBecomesClique) {
  const Graph s = star(5);
  const Graph ls = line_graph(s);
  EXPECT_EQ(ls.num_nodes(), 5u);
  EXPECT_EQ(ls.num_edges(), 10u);  // K5
}

TEST(LineGraph, SizeFormula) {
  const Graph g = gnm(60, 200, 3);
  const Graph lg = line_graph(g);
  std::uint64_t sum_d2 = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    sum_d2 += static_cast<std::uint64_t>(g.degree(v)) * g.degree(v);
  }
  EXPECT_EQ(lg.num_nodes(), g.num_edges());
  EXPECT_EQ(lg.num_edges(), sum_d2 / 2 - g.num_edges());
}

TEST(Square, PathGainsDistance2Edges) {
  const Graph p = path(5);
  const Graph p2 = square(p);
  EXPECT_EQ(p2.num_edges(), 4u + 3u);  // dist-1 + dist-2 pairs
  EXPECT_TRUE(p2.has_edge(0, 2));
  EXPECT_FALSE(p2.has_edge(0, 3));
}

TEST(Square, MaxDegreeBounded) {
  const Graph g = random_regular(200, 4, 5);
  const Graph g2 = square(g);
  EXPECT_LE(g2.max_degree(), 4u + 4u * 3u + 4u);  // <= d + d(d-1) slack
  // A proper coloring of G^2 is a distance-2 coloring of G: check on a
  // trivially correct coloring by identity.
  std::vector<std::uint32_t> ids(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) ids[v] = v;
  EXPECT_TRUE(is_proper_coloring(g2, ids));
  EXPECT_TRUE(is_distance2_coloring(g, ids));
}

TEST(Induced, RemapsAndFilters) {
  const Graph g = cycle(6);
  std::vector<bool> keep{true, true, true, false, true, true};
  const auto sub = induced(g, keep);
  EXPECT_EQ(sub.graph.num_nodes(), 5u);
  // Edges 0-1, 1-2, 4-5 survive; 2-3, 3-4, 5-0 -> 5-0 survives as 4-0.
  EXPECT_EQ(sub.graph.num_edges(), 4u);
  EXPECT_EQ(sub.original.size(), 5u);
  EXPECT_EQ(sub.original[3], 4u);
  EXPECT_EQ(sub.original[4], 5u);
}

TEST(EdgeSubgraph, KeepsNodeSet) {
  const Graph g = cycle(5);
  std::vector<bool> mask(g.num_edges(), false);
  mask[0] = true;
  const Graph sub = edge_subgraph(g, mask);
  EXPECT_EQ(sub.num_nodes(), 5u);
  EXPECT_EQ(sub.num_edges(), 1u);
}

TEST(LineGraph, MisOnLineGraphIsMatching) {
  const Graph g = gnm(40, 120, 12);
  const Graph lg = line_graph(g);
  // Greedy MIS on the line graph, mapped back, must be a maximal matching.
  std::vector<bool> in_set(lg.num_nodes(), false);
  std::vector<bool> blocked(lg.num_nodes(), false);
  for (NodeId v = 0; v < lg.num_nodes(); ++v) {
    if (blocked[v]) continue;
    in_set[v] = true;
    for (NodeId u : lg.neighbors(v)) blocked[u] = true;
  }
  std::vector<EdgeId> matching;
  for (NodeId v = 0; v < lg.num_nodes(); ++v) {
    if (in_set[v]) matching.push_back(v);
  }
  EXPECT_TRUE(is_maximal_matching(g, matching));
}

}  // namespace
}  // namespace dmpc::graph
