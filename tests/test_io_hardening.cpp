// The untrusted-input boundary: every malformed byte stream raises a typed
// ParseError with a code, location, and token — never a raw DMPC_CHECK
// failure, never a silent misread (docs/ROBUSTNESS.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "graph/io.hpp"
#include "support/options.hpp"
#include "support/parse_error.hpp"

namespace dmpc {
namespace {

using graph::DuplicatePolicy;
using graph::EdgeListLimits;
using graph::Graph;

Graph read(const std::string& text, const EdgeListLimits& limits = {}) {
  std::istringstream in(text);
  return graph::read_edge_list(in, limits);
}

ParseError capture(const std::string& text,
                   const EdgeListLimits& limits = {}) {
  try {
    read(text, limits);
  } catch (const ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected ParseError for input: " << text;
  return ParseError(ParseErrorCode::kIoError, "unreachable");
}

TEST(IoHardening, WellFormedInputStillParses) {
  const Graph g = read("3 2\n0 1\n1 2\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IoHardening, CrlfAndCommentsAreAccepted) {
  const Graph g = read("3 2\r\n0 1 # first\r\n# full comment\n1 2\r\n");
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IoHardening, TruncatedLineIsMalformed) {
  const ParseError e = capture("3 2\n0 1\n1\n");
  EXPECT_EQ(e.code(), ParseErrorCode::kMalformedLine);
  EXPECT_EQ(e.line(), 3u);
}

TEST(IoHardening, ThreeTokensIsMalformedAndNamesTheExtraToken) {
  const ParseError e = capture("3 1\n0 1 2\n");
  EXPECT_EQ(e.code(), ParseErrorCode::kMalformedLine);
  EXPECT_EQ(e.line(), 2u);
  EXPECT_EQ(e.token(), "2");
  EXPECT_EQ(e.column(), 5u);
}

TEST(IoHardening, NonNumericTokenIsBadToken) {
  const ParseError e = capture("3 1\nzero 1\n");
  EXPECT_EQ(e.code(), ParseErrorCode::kBadToken);
  EXPECT_EQ(e.line(), 2u);
  EXPECT_EQ(e.token(), "zero");
}

TEST(IoHardening, SixtyFourBitOverflowHeaderIsTyped) {
  // 2^64 = 18446744073709551616 does not fit a u64: overflow, not garbage.
  const ParseError e = capture("18446744073709551616 1\n0 1\n");
  EXPECT_EQ(e.code(), ParseErrorCode::kOverflow);
  EXPECT_EQ(e.line(), 1u);
}

TEST(IoHardening, ZeroNodesIsBadHeader) {
  const ParseError e = capture("0 0\n");
  EXPECT_EQ(e.code(), ParseErrorCode::kBadHeader);
}

TEST(IoHardening, EmptyInputIsBadHeader) {
  EXPECT_EQ(capture("").code(), ParseErrorCode::kBadHeader);
  EXPECT_EQ(capture("# only comments\n\n").code(), ParseErrorCode::kBadHeader);
}

TEST(IoHardening, HugeDeclaredNodeCountHitsTheCap) {
  EdgeListLimits limits;
  limits.max_nodes = 1000;
  const ParseError e = capture("1001 0\n", limits);
  EXPECT_EQ(e.code(), ParseErrorCode::kLimitExceeded);
  // The near-2^32 header passes the format check but hits the default cap
  // (2^28) without attempting a 4-billion-node allocation.
  const ParseError big = capture("4294967294 0\n");
  EXPECT_EQ(big.code(), ParseErrorCode::kLimitExceeded);
}

TEST(IoHardening, DeclaredEdgeCountCapIsEnforcedBeforeReading) {
  EdgeListLimits limits;
  limits.max_edges = 2;
  const ParseError e = capture("4 3\n0 1\n1 2\n2 3\n", limits);
  EXPECT_EQ(e.code(), ParseErrorCode::kLimitExceeded);
  EXPECT_EQ(e.line(), 1u);  // rejected at the header, not at edge 3
}

TEST(IoHardening, UndeclaredExtraEdgesHitTheCapToo) {
  // A lying header (declares few, streams many) is stopped by the data-line
  // cap even with the count check disabled.
  EdgeListLimits limits;
  limits.max_edges = 2;
  limits.check_edge_count = false;
  const ParseError e = capture("5 2\n0 1\n1 2\n2 3\n3 4\n", limits);
  EXPECT_EQ(e.code(), ParseErrorCode::kLimitExceeded);
  EXPECT_EQ(e.line(), 4u);
}

TEST(IoHardening, EdgeCountMismatchIsTyped) {
  EXPECT_EQ(capture("3 2\n0 1\n").code(), ParseErrorCode::kCountMismatch);
  EXPECT_EQ(capture("3 1\n0 1\n1 2\n").code(),
            ParseErrorCode::kCountMismatch);
  EdgeListLimits lenient;
  lenient.check_edge_count = false;
  EXPECT_EQ(read("3 2\n0 1\n", lenient).num_edges(), 1u);
}

TEST(IoHardening, EndpointOutOfDeclaredRangeIsTyped) {
  const ParseError e = capture("3 1\n0 7\n");
  EXPECT_EQ(e.code(), ParseErrorCode::kOutOfRange);
  EXPECT_EQ(e.token(), "7");
}

TEST(IoHardening, SelfLoopRejectedByDefaultSkippedUnderDedupe) {
  const ParseError e = capture("3 1\n1 1\n");
  EXPECT_EQ(e.code(), ParseErrorCode::kSelfLoop);
  EXPECT_EQ(e.line(), 2u);

  EdgeListLimits dedupe;
  dedupe.duplicates = DuplicatePolicy::kDedupe;
  const Graph g = read("3 2\n1 1\n0 2\n", dedupe);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(IoHardening, DuplicateEdgeRejectedByDefaultSkippedUnderDedupe) {
  // Orientation-insensitive: {0,1} and {1,0} are the same edge.
  const ParseError e = capture("3 2\n0 1\n1 0\n");
  EXPECT_EQ(e.code(), ParseErrorCode::kDuplicateEdge);
  EXPECT_EQ(e.line(), 3u);

  EdgeListLimits dedupe;
  dedupe.duplicates = DuplicatePolicy::kDedupe;
  const Graph g = read("3 3\n0 1\n1 0\n1 2\n", dedupe);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IoHardening, OversizedLineIsCappedWithoutReadingIt) {
  EdgeListLimits limits;
  limits.max_line_bytes = 16;
  const std::string long_line(64, '1');
  const ParseError e = capture("3 1\n" + long_line + " 2\n", limits);
  EXPECT_EQ(e.code(), ParseErrorCode::kLimitExceeded);
  EXPECT_EQ(e.line(), 2u);
}

TEST(IoHardening, DiagnosticTokenIsClippedForPathologicalInput) {
  const std::string huge(500, 'x');
  const ParseError e = capture("3 1\n" + huge + " 2\n");
  EXPECT_EQ(e.code(), ParseErrorCode::kBadToken);
  EXPECT_LE(e.token().size(), 67u);  // 64 chars + "..."
}

TEST(IoHardening, FileOpenFailureCarriesErrnoDetail) {
  try {
    graph::read_edge_list_file("/nonexistent/dir/graph.txt");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kIoError);
    EXPECT_NE(std::string(e.what()).find("No such file or directory"),
              std::string::npos)
        << e.what();
  }
  try {
    graph::write_edge_list_file(Graph::from_edges(2, {{0, 1}}),
                                "/nonexistent/dir/graph.txt");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), ParseErrorCode::kIoError);
    EXPECT_NE(std::string(e.what()).find("for writing"), std::string::npos);
  }
}

TEST(IoHardening, ParseErrorFormatsLocationCodeAndToken) {
  const ParseError e = capture("3 1\nzero 1\n");
  const std::string what = e.what();
  EXPECT_NE(what.find("[bad_token]"), std::string::npos) << what;
  EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  EXPECT_NE(what.find("'zero'"), std::string::npos) << what;
}

TEST(IoHardening, ParseErrorIsACheckFailure) {
  // Pre-existing catch sites on CheckFailure keep working.
  EXPECT_THROW(read("0 0\n"), CheckFailure);
}

TEST(IoHardening, StrictArgParserAccessors) {
  const char* argv[] = {"prog", "--threads=12", "--eps=0.25", "--bad=12abc",
                        "--huge=99999999999999999999", "--neg=-5"};
  const ArgParser args(6, argv);
  EXPECT_EQ(args.require_int("threads", 1), 12);
  EXPECT_DOUBLE_EQ(args.require_double("eps", 0.5), 0.25);
  EXPECT_EQ(args.require_int("absent", 7), 7);
  EXPECT_EQ(args.require_int("neg", 0), -5);
  EXPECT_THROW(args.require_int("bad", 0), ParseError);
  EXPECT_THROW(args.require_double("bad", 0.0), ParseError);
  EXPECT_THROW(args.require_int("huge", 0), ParseError);
  // The lenient accessors keep their prefix-parse behavior for bench scripts.
  EXPECT_EQ(args.get_int("bad", 0), 12);
}

TEST(IoHardening, ParseU64EdgeCases) {
  std::uint64_t value = 0;
  bool overflow = false;
  EXPECT_TRUE(parse::parse_u64("18446744073709551615", &value, &overflow));
  EXPECT_EQ(value, UINT64_MAX);
  EXPECT_FALSE(overflow);
  EXPECT_FALSE(parse::parse_u64("18446744073709551616", &value, &overflow));
  EXPECT_TRUE(overflow);
  EXPECT_FALSE(parse::parse_u64("", &value, &overflow));
  EXPECT_FALSE(overflow);
  EXPECT_FALSE(parse::parse_u64("1e3", &value, &overflow));
  EXPECT_FALSE(parse::parse_u64("-1", &value, &overflow));
}

}  // namespace
}  // namespace dmpc
