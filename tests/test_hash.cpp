// Unit tests for src/hash: k-wise independence (verified by exhaustive
// enumeration on small families), seed spaces, and small sequence families.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "field/fastmod.hpp"
#include "field/primes.hpp"
#include "hash/kwise.hpp"
#include "hash/seed.hpp"
#include "hash/small_family.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dmpc::hash {
namespace {

TEST(KWiseFamily, BasicShape) {
  KWiseFamily family(100, 100, 2);
  EXPECT_EQ(family.k(), 2u);
  EXPECT_GE(family.p(), 100u);
  EXPECT_TRUE(field::is_prime(family.p()));
  EXPECT_TRUE(family.enumerable());
  EXPECT_EQ(family.seed_count(), family.p() * family.p());
}

TEST(KWiseFamily, RejectsBadParameters) {
  EXPECT_THROW(KWiseFamily(10, 0, 2), CheckFailure);
  EXPECT_THROW(KWiseFamily(10, 10, 0), CheckFailure);
  EXPECT_THROW(KWiseFamily(10, 10, 2, 4), CheckFailure);   // 4 not prime
  EXPECT_THROW(KWiseFamily(10, 10, 2, 7), CheckFailure);   // 7 < domain
}

TEST(KWiseFamily, SeedZeroIsConstantSeedOneIsIdentity) {
  // Seed indexing puts the linear coefficient in the lowest digit.
  KWiseFamily family(10, 10, 2, 11);
  const auto f0 = family.at(0);
  const auto f1 = family.at(1);
  for (std::uint64_t x = 0; x < 10; ++x) {
    EXPECT_EQ(f0.raw(x), 0u);
    EXPECT_EQ(f1.raw(x), x % 11);
  }
}

TEST(KWiseFamily, SeedWrapsModFamilySize) {
  KWiseFamily family(5, 5, 2, 5);
  EXPECT_EQ(family.seed_count(), 25u);
  for (std::uint64_t x = 0; x < 5; ++x) {
    EXPECT_EQ(family.eval(3, x), family.eval(3 + 25, x));
  }
}

// Exhaustive pairwise-independence check: over the whole family, every pair
// of distinct inputs takes every pair of raw values exactly once.
TEST(KWiseFamily, PairwiseIndependenceExhaustive) {
  const std::uint64_t p = 13;
  KWiseFamily family(p, p, 2, p);
  for (std::uint64_t x1 : {0ULL, 3ULL, 12ULL}) {
    for (std::uint64_t x2 : {1ULL, 7ULL}) {
      ASSERT_NE(x1, x2);
      std::map<std::pair<std::uint64_t, std::uint64_t>, int> counts;
      for (std::uint64_t seed = 0; seed < family.seed_count(); ++seed) {
        const auto fn = family.at(seed);
        ++counts[{fn.raw(x1), fn.raw(x2)}];
      }
      EXPECT_EQ(counts.size(), p * p);
      for (const auto& [pair, count] : counts) EXPECT_EQ(count, 1);
    }
  }
}

// 3-wise: each value triple for 3 distinct inputs appears exactly once.
TEST(KWiseFamily, ThreeWiseIndependenceExhaustive) {
  const std::uint64_t p = 7;
  KWiseFamily family(p, p, 3, p);
  ASSERT_EQ(family.seed_count(), p * p * p);
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>, int>
      counts;
  for (std::uint64_t seed = 0; seed < family.seed_count(); ++seed) {
    const auto fn = family.at(seed);
    ++counts[{fn.raw(0), fn.raw(2), fn.raw(5)}];
  }
  EXPECT_EQ(counts.size(), p * p * p);
  for (const auto& [triple, count] : counts) EXPECT_EQ(count, 1);
}

TEST(KWiseFamily, LargeFamilyNotEnumerable) {
  KWiseFamily family(1ULL << 40, 1ULL << 40, 4);
  EXPECT_FALSE(family.enumerable());
  EXPECT_EQ(family.seed_count(), UINT64_MAX);
  // Evaluation still works.
  const auto fn = family.at(123456789);
  EXPECT_LT(fn(42), 1ULL << 40);
  EXPECT_LT(fn.raw(42), family.p());
}

TEST(KWiseFamily, DeterministicAcrossMaterializations) {
  KWiseFamily family(1000, 1000, 4);
  const auto a = family.at(987654321);
  const auto b = family.at(987654321);
  for (std::uint64_t x = 0; x < 100; ++x) EXPECT_EQ(a.raw(x), b.raw(x));
}

TEST(SeedSpace, ComposeDecomposeRoundTrip) {
  SeedSpace space({5, 7, 3});
  EXPECT_EQ(space.size(), 105u);
  for (std::uint64_t seed = 0; seed < space.size(); ++seed) {
    const auto digits = space.decompose(seed);
    EXPECT_EQ(space.compose(digits), seed);
  }
}

TEST(SeedSpace, SuffixSizes) {
  SeedSpace space({5, 7, 3});
  EXPECT_EQ(space.suffix_size(0), 105u);
  EXPECT_EQ(space.suffix_size(1), 21u);
  EXPECT_EQ(space.suffix_size(2), 3u);
  EXPECT_EQ(space.suffix_size(3), 1u);
}

TEST(SeedSpace, AssembleMatchesCompose) {
  SeedSpace space({4, 5, 6});
  // prefix = {2}, candidate 3 for chunk 1, suffix enumerates chunk 2.
  for (std::uint64_t s = 0; s < 6; ++s) {
    const auto seed = space.assemble({2}, 3, s);
    const auto digits = space.decompose(seed);
    EXPECT_EQ(digits[0], 2u);
    EXPECT_EQ(digits[1], 3u);
    EXPECT_EQ(digits[2], s);
  }
}

TEST(SeedSpace, UniformFactory) {
  const auto space = SeedSpace::uniform(8, 4);
  EXPECT_EQ(space.chunk_count(), 4u);
  EXPECT_EQ(space.size(), 4096u);
}

TEST(SeedSpace, OverflowRejected) {
  EXPECT_THROW(SeedSpace::uniform(1ULL << 32, 3), CheckFailure);
}

TEST(SmallFamily, CoversColorSpace) {
  SmallFamily family(256);
  EXPECT_EQ(family.color_count(), 256u);
  EXPECT_GE(family.p(), 256u);
  const auto fn = family.at(7);
  for (std::uint64_t c = 0; c < 256; ++c) {
    EXPECT_LT(fn(c), 257u);  // range = max(2, colors)
  }
}

TEST(FunctionSequence, PhaseSeedsDecomposeCorrectly) {
  SmallFamily family(16);
  FunctionSequence seq(family, 3, 10);
  EXPECT_EQ(seq.per_phase_seeds(), 10u);
  EXPECT_EQ(seq.sequence_count(), 1000u);
  // Sequence seed 123 = digits (1, 2, 3) in base 10.
  EXPECT_EQ(seq.phase_seed(123, 0), 1u);
  EXPECT_EQ(seq.phase_seed(123, 1), 2u);
  EXPECT_EQ(seq.phase_seed(123, 2), 3u);
}

TEST(FunctionSequence, DiverseVariesAllPhases) {
  SmallFamily family(64);
  FunctionSequence seq(family, 4, 64);
  // Two different t produce different digits in (at least) the first phase.
  const auto s0 = seq.diverse(0);
  const auto s1 = seq.diverse(1);
  EXPECT_NE(seq.phase_seed(s0, 0), seq.phase_seed(s1, 0));
  EXPECT_NE(seq.phase_seed(s0, 3), seq.phase_seed(s1, 3));
  // And within one candidate, phases get distinct seeds (offset mixing).
  EXPECT_NE(seq.phase_seed(s0, 0), seq.phase_seed(s0, 1));
}

TEST(FunctionSequence, CapLimitsPerPhaseSeeds) {
  SmallFamily family(8);
  FunctionSequence seq(family, 2, 1ULL << 40);
  EXPECT_EQ(seq.per_phase_seeds(), family.seed_count());
}

TEST(FastDiv, MatchesModuloForRandomInputsAndDivisors) {
  // HashFn's range reduction precomputes a Lemire magic; it must agree with
  // plain % for every 64-bit input. Stress divisor classes: 1, powers of
  // two, odd, near-2^32, near-2^64.
  Rng rng(0xFA57D1FULL);
  const std::uint64_t divisors[] = {1,
                                    2,
                                    3,
                                    7,
                                    256,
                                    65537,
                                    4294967291ULL,
                                    (1ULL << 32),
                                    (1ULL << 63) - 25,
                                    ~0ULL};
  for (const std::uint64_t d : divisors) {
    const field::FastDiv64 fast(d);
    for (int i = 0; i < 10000; ++i) {
      const std::uint64_t x = rng.next_u64();
      ASSERT_EQ(fast.mod(x), x % d) << "d=" << d << " x=" << x;
    }
    // Boundary inputs.
    const std::uint64_t edges[] = {0, d - 1, d, d + 1, ~0ULL, ~0ULL - 1};
    for (const std::uint64_t x : edges) {
      ASSERT_EQ(fast.mod(x), x % d) << "d=" << d << " x=" << x;
    }
  }
}

TEST(KWiseFamily, HashFnRangeReductionMatchesRawModulo) {
  KWiseFamily family(/*domain=*/5000, /*range=*/37, /*k=*/4);
  const auto fn = family.at(12345 % family.seed_count());
  for (std::uint64_t x = 0; x < 5000; x += 13) {
    EXPECT_EQ(fn(x), fn.raw(x) % 37u);
  }
}

TEST(KWiseFamily, RawManyMatchesRawPointwise) {
  KWiseFamily family(/*domain=*/4096, /*range=*/4096, /*k=*/5);
  const auto fn = family.at(99 % family.seed_count());
  std::vector<std::uint64_t> xs;
  for (std::uint64_t x = 0; x < 300; ++x) xs.push_back((x * 37) % 4096);
  std::vector<std::uint64_t> out(xs.size());
  fn.raw_many(xs.data(), xs.size(), out.data());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(out[i], fn.raw(xs[i])) << "i=" << i;
  }
}

TEST(KWiseFamily, CoefficientsIntoMatchesCoefficients) {
  KWiseFamily family(/*domain=*/1024, /*range=*/1024, /*k=*/4);
  const std::uint64_t seed = 4242 % family.seed_count();
  const auto vec = family.coefficients(seed);
  std::uint64_t buf[16] = {};
  family.coefficients_into(seed, buf);
  ASSERT_EQ(vec.size(), family.k());
  for (std::size_t j = 0; j < vec.size(); ++j) EXPECT_EQ(buf[j], vec[j]);
}

}  // namespace
}  // namespace dmpc::hash
