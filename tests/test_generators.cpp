// Unit tests for the workload generators.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "support/check.hpp"

namespace dmpc::graph {
namespace {

TEST(Gnm, ExactEdgeCount) {
  const Graph g = gnm(100, 500, 1);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
}

TEST(Gnm, DenseRegimeUsesComplement) {
  const Graph g = gnm(20, 180, 2);  // max 190 edges
  EXPECT_EQ(g.num_edges(), 180u);
}

TEST(Gnm, FullCliqueAndDeterminism) {
  const Graph g = gnm(10, 45, 3);
  EXPECT_EQ(g.num_edges(), 45u);
  const Graph a = gnm(50, 200, 7);
  const Graph b = gnm(50, 200, 7);
  EXPECT_EQ(a.edges(), b.edges());
  const Graph c = gnm(50, 200, 8);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Gnm, RejectsTooManyEdges) {
  EXPECT_THROW(gnm(5, 11, 1), CheckFailure);
}

TEST(Gnp, EdgeCountNearExpectation) {
  const Graph g = gnp(400, 0.05, 4);
  const double expect = 0.05 * 400 * 399 / 2;
  EXPECT_GT(static_cast<double>(g.num_edges()), 0.7 * expect);
  EXPECT_LT(static_cast<double>(g.num_edges()), 1.3 * expect);
}

TEST(Gnp, Extremes) {
  EXPECT_EQ(gnp(50, 0.0, 1).num_edges(), 0u);
  EXPECT_EQ(gnp(10, 1.0, 1).num_edges(), 45u);
}

TEST(PowerLaw, TargetsEdgeCountAndSkew) {
  const Graph g = power_law(2000, 8000, 2.5, 5);
  EXPECT_GT(g.num_edges(), 4000u);
  EXPECT_LT(g.num_edges(), 16000u);
  // Head nodes should far out-degree tail nodes.
  std::uint64_t head = 0, tail = 0;
  for (NodeId v = 0; v < 20; ++v) head += g.degree(v);
  for (NodeId v = 1980; v < 2000; ++v) tail += g.degree(v);
  EXPECT_GT(head, 4 * std::max<std::uint64_t>(tail, 1));
}

TEST(RandomRegular, DegreesNearTarget) {
  const Graph g = random_regular(500, 8, 6);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(g.degree(v), 8u);
  }
  // Pairing-model collisions are rare: average degree close to 8.
  EXPECT_GT(2 * g.num_edges(), 500u * 7u);
}

TEST(Deterministic, CompleteAndBipartite) {
  EXPECT_EQ(complete(6).num_edges(), 15u);
  EXPECT_EQ(complete(6).max_degree(), 5u);
  const Graph kb = complete_bipartite(3, 4);
  EXPECT_EQ(kb.num_nodes(), 7u);
  EXPECT_EQ(kb.num_edges(), 12u);
  EXPECT_FALSE(kb.has_edge(0, 1));  // same side
  EXPECT_TRUE(kb.has_edge(0, 3));
}

TEST(Deterministic, CyclePathGridStar) {
  EXPECT_EQ(cycle(8).num_edges(), 8u);
  EXPECT_EQ(cycle(8).max_degree(), 2u);
  EXPECT_EQ(path(8).num_edges(), 7u);
  const Graph gr = grid(3, 4);
  EXPECT_EQ(gr.num_nodes(), 12u);
  EXPECT_EQ(gr.num_edges(), 3 * 3 + 2 * 4);  // 17
  EXPECT_EQ(star(9).num_nodes(), 10u);
  EXPECT_EQ(star(9).max_degree(), 9u);
}

TEST(RandomTree, IsTree) {
  const Graph g = random_tree(200, 9);
  EXPECT_EQ(g.num_edges(), 199u);
  // Connectivity via simple reachability from node 0.
  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::uint32_t count = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    ++count;
    for (NodeId u : g.neighbors(v)) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  EXPECT_EQ(count, 200u);
}

TEST(RandomBipartite, RespectsSides) {
  const Graph g = random_bipartite(30, 40, 200, 10);
  EXPECT_EQ(g.num_edges(), 200u);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, 30u);
    EXPECT_GE(e.v, 30u);
  }
}

TEST(DisjointUnion, ShiftsIds) {
  const Graph a = cycle(3);
  const Graph b = path(2);
  const Graph u = disjoint_union(a, b);
  EXPECT_EQ(u.num_nodes(), 5u);
  EXPECT_EQ(u.num_edges(), 4u);
  EXPECT_TRUE(u.has_edge(3, 4));
  EXPECT_FALSE(u.has_edge(2, 3));
}

TEST(Lopsided, StructureAsSpecified) {
  const Graph g = lopsided(4, 50, 100, 150, 11);
  EXPECT_EQ(g.num_nodes(), 4u + 200u + 100u);
  for (NodeId i = 0; i < 4; ++i) EXPECT_GE(g.degree(i), 50u);
  // Leaves have degree exactly 1.
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_GE(g.num_edges(), 4u * 50u + 140u);
}

}  // namespace
}  // namespace dmpc::graph
