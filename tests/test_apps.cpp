// Tests for the application reductions (vertex cover, dominating set,
// (Delta+1)-coloring).
#include <gtest/gtest.h>

#include "apps/derand_coloring.hpp"
#include "apps/reductions.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"

namespace dmpc::apps {
namespace {

using graph::Graph;
using graph::NodeId;

bool is_vertex_cover(const Graph& g, const std::vector<bool>& cover) {
  for (const auto& e : g.edges()) {
    if (!cover[e.u] && !cover[e.v]) return false;
  }
  return true;
}

bool is_dominating_set(const Graph& g, const std::vector<bool>& set) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (set[v]) continue;
    bool dominated = false;
    for (NodeId u : g.neighbors(v)) {
      if (set[u]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

TEST(VertexCover, ValidAndTwoApprox) {
  for (std::uint64_t seed : {1, 2}) {
    const Graph g = graph::gnm(200, 1200, seed);
    const auto result = vertex_cover_2approx(g);
    EXPECT_TRUE(is_vertex_cover(g, result.in_cover));
    // |cover| = 2 |M| and OPT >= |M| for a maximal matching M.
    EXPECT_EQ(result.cover_size, 2 * result.matching_size);
    EXPECT_GT(result.matching_size, 0u);
  }
}

TEST(VertexCover, StarNeedsOnlyHub) {
  const Graph g = graph::star(30);
  const auto result = vertex_cover_2approx(g);
  EXPECT_TRUE(is_vertex_cover(g, result.in_cover));
  EXPECT_EQ(result.cover_size, 2u);  // one matched edge: hub + one leaf
}

TEST(VertexCover, EmptyGraph) {
  const Graph g = Graph::from_edges(5, {});
  const auto result = vertex_cover_2approx(g);
  EXPECT_EQ(result.cover_size, 0u);
}

TEST(DominatingSet, MisDominates) {
  for (const Graph& g : {graph::gnm(200, 800, 3), graph::grid(10, 10),
                         graph::random_tree(150, 4)}) {
    const auto result = dominating_set(g);
    EXPECT_TRUE(is_dominating_set(g, result.in_set));
    EXPECT_GT(result.set_size, 0u);
  }
}

TEST(Coloring, ProperWithinPalette) {
  for (const Graph& g :
       {graph::random_regular(100, 4, 5), graph::cycle(31), graph::path(40),
        graph::complete(8)}) {
    const auto result = delta_plus_one_coloring(g);
    EXPECT_TRUE(graph::is_proper_coloring(g, result.color));
    EXPECT_LE(result.colors_used, g.max_degree() + 1);
  }
}

TEST(Coloring, CompleteGraphUsesFullPalette) {
  const Graph g = graph::complete(6);
  const auto result = delta_plus_one_coloring(g);
  EXPECT_EQ(result.colors_used, 6u);  // K6 needs exactly Delta+1 = 6
}

TEST(Coloring, Deterministic) {
  const Graph g = graph::random_regular(80, 5, 6);
  const auto a = delta_plus_one_coloring(g);
  const auto b = delta_plus_one_coloring(g);
  EXPECT_EQ(a.color, b.color);
}

TEST(DerandColoring, ProperWithinPaletteAcrossFamilies) {
  for (const Graph& g :
       {graph::random_regular(200, 5, 1), graph::gnm(200, 1200, 2),
        graph::cycle(41), graph::complete(10), graph::star(30),
        graph::grid(9, 9)}) {
    const auto result = derand_coloring(g);
    EXPECT_TRUE(graph::is_proper_coloring(g, result.color));
    EXPECT_LE(result.colors_used, g.max_degree() + 1);
  }
}

TEST(DerandColoring, Deterministic) {
  const Graph g = graph::power_law(300, 1200, 2.5, 3);
  const auto a = derand_coloring(g);
  const auto b = derand_coloring(g);
  EXPECT_EQ(a.color, b.color);
  EXPECT_EQ(a.metrics.rounds(), b.metrics.rounds());
}

TEST(DerandColoring, LogarithmicRounds) {
  const Graph g = graph::gnm(1024, 8192, 4);
  const auto result = derand_coloring(g);
  EXPECT_LE(result.rounds, 40u);  // O(log n) trial rounds
}

TEST(DerandColoring, AgreesWithReductionOnPalette) {
  // Both colorings are proper and fit Delta+1: K6 needs all 6 colors.
  const Graph g = graph::complete(6);
  const auto native = derand_coloring(g);
  const auto reduced = delta_plus_one_coloring(g);
  EXPECT_EQ(native.colors_used, 6u);
  EXPECT_EQ(reduced.colors_used, 6u);
}

TEST(DerandColoring, EdgelessGraph) {
  const Graph g = Graph::from_edges(4, {});
  const auto result = derand_coloring(g);
  EXPECT_EQ(result.colors_used, 1u);
}

}  // namespace
}  // namespace dmpc::apps
