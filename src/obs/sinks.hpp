// Trace exporters: JSONL event stream, Chrome trace-event JSON (loadable in
// chrome://tracing and Perfetto), and an in-memory collector for tests and
// benchmark aggregation. Event schemas are documented in
// docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace dmpc::obs {

/// One JSON object per line, in emission order. Field order is fixed, so
/// with `include_wall_time = false` the output is a deterministic function
/// of the traced computation — two runs of the same graph with the same
/// options produce byte-identical files (the golden-trace property).
class JsonlTraceSink final : public TraceSink {
 public:
  /// The stream must outlive the sink. `include_wall_time` adds a `ts_ns`
  /// field; leave it off for golden traces.
  explicit JsonlTraceSink(std::ostream* out, bool include_wall_time = true)
      : out_(out), include_wall_time_(include_wall_time) {}

  void on_event(const TraceEvent& event) override;
  void finish() override;

 private:
  std::ostream* out_;
  bool include_wall_time_;
};

/// Chrome trace-event format: {"traceEvents": [...]} with B/E duration
/// events for spans, "i" instants, and "C" counters. Buffers events and
/// writes the whole document in finish().
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream* out) : out_(out) {}

  void on_event(const TraceEvent& event) override;
  void finish() override;

 private:
  std::ostream* out_;
  std::vector<TraceEvent> events_;
};

/// Keeps every event in memory; tests assert on the stream directly and
/// repro_report aggregates span statistics from it.
class CollectorSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
};

/// Per-span-name aggregate over a collected event stream.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;          ///< Completed spans with this name.
  std::uint64_t wall_ns = 0;        ///< Summed begin->end wall time.
  std::uint64_t rounds = 0;         ///< Summed round deltas (metric args).
  std::uint64_t communication = 0;  ///< Summed communication deltas.
};

/// Aggregate completed spans by name, in order of first appearance.
std::vector<SpanStats> summarize_spans(const std::vector<TraceEvent>& events);

}  // namespace dmpc::obs
