// Trace exporters: JSONL event stream, Chrome trace-event JSON (loadable in
// chrome://tracing and Perfetto), and an in-memory collector for tests and
// benchmark aggregation. Event schemas are documented in
// docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace dmpc::obs {

/// One JSON object per line, in emission order. Field order is fixed, so
/// with `include_wall_time = false` the output is a deterministic function
/// of the traced computation — two runs of the same graph with the same
/// options produce byte-identical files (the golden-trace property).
class JsonlTraceSink final : public TraceSink {
 public:
  /// The stream must outlive the sink. `include_wall_time` adds a `ts_ns`
  /// field; leave it off for golden traces.
  explicit JsonlTraceSink(std::ostream* out, bool include_wall_time = true)
      : out_(out), include_wall_time_(include_wall_time) {}

  void on_event(const TraceEvent& event) override;
  void finish() override;

 private:
  std::ostream* out_;
  bool include_wall_time_;
};

/// Chrome trace-event format: {"traceEvents": [...]} with B/E duration
/// events for spans, "i" instants, and "C" counters. Buffers events and
/// writes the whole document exactly once, in the first finish() call —
/// repeated finish() is a no-op, so the output cannot be duplicated into
/// an invalid concatenation. A session with zero buffered events still
/// produces the valid document {"traceEvents": []}.
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream* out) : out_(out) {}

  void on_event(const TraceEvent& event) override;
  void finish() override;

 private:
  std::ostream* out_;
  std::vector<TraceEvent> events_;
  bool finished_ = false;
};

/// Keeps every event in memory; tests assert on the stream directly and
/// benches aggregate span statistics from it. finish() freezes the stream
/// (later events are dropped), so a collector attached to a finished
/// session cannot be polluted by stray events from a later run; clear()
/// empties and un-freezes it for reuse.
class CollectorSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override {
    if (!frozen_) events_.push_back(event);
  }
  void finish() override { frozen_ = true; }

  /// Drop all collected events and accept new ones again.
  void clear() {
    events_.clear();
    frozen_ = false;
  }

  bool frozen() const { return frozen_; }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
  bool frozen_ = false;
};

/// Per-span-name aggregate over a collected event stream.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;          ///< Completed spans with this name.
  std::uint64_t wall_ns = 0;        ///< Summed begin->end wall time.
  std::uint64_t rounds = 0;         ///< Summed round deltas (metric args).
  std::uint64_t communication = 0;  ///< Summed communication deltas.
};

/// Aggregate completed spans by name, in order of first appearance.
std::vector<SpanStats> summarize_spans(const std::vector<TraceEvent>& events);

}  // namespace dmpc::obs
