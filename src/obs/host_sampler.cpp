#include "obs/host_sampler.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "obs/metrics_registry.hpp"

namespace dmpc::obs {

std::int64_t current_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size_pages = 0;
  long long resident_pages = 0;
  const int fields = std::fscanf(f, "%lld %lld", &size_pages, &resident_pages);
  std::fclose(f);
  if (fields != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::int64_t>(resident_pages) *
         static_cast<std::int64_t>(page > 0 ? page : 4096);
}

HostSampler::HostSampler() : HostSampler(Options()) {}

HostSampler::HostSampler(Options options) : options_(options) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  if (options_.interval_ms == 0) options_.interval_ms = 1;
  auto& registry = MetricsRegistry::global();
  const auto host = MetricSection::kHost;
  // gauge() is idempotent: these resolve to the live gauges when storage /
  // the executor registered them, and to fresh zero gauges otherwise.
  bytes_mapped_ = &registry.gauge("storage/bytes_mapped", host);
  resident_bytes_ = &registry.gauge("storage/resident_bytes", host);
  queue_depth_ = &registry.gauge("exec/queue_depth", host);
}

HostSampler::~HostSampler() { stop(); }

bool HostSampler::compiled_in() {
#ifdef DMPC_HOST_SAMPLER
  return true;
#else
  return false;
#endif
}

bool HostSampler::start() {
  if (!compiled_in()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return false;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { loop(); });
  return true;
}

void HostSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

void HostSampler::sample_once() {
  HostSample s;
  s.wall_ns = wall_time_ns();
  s.rss_bytes = current_rss_bytes();
  s.bytes_mapped = bytes_mapped_->value();
  s.resident_bytes = resident_bytes_->value();
  s.queue_depth = queue_depth_->value();
  push(s);
}

void HostSampler::push(const HostSample& sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(sample);
  } else {
    ring_[next_ % options_.ring_capacity] = sample;
  }
  ++next_;
  ++taken_;
}

void HostSampler::loop() {
  while (true) {
    sample_once();
    std::unique_lock<std::mutex> lock(mutex_);
    const bool stopping = stop_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.interval_ms),
        [this] { return stop_requested_; });
    if (stopping) return;
  }
}

std::vector<HostSample> HostSampler::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < options_.ring_capacity) return ring_;
  // Ring is full: oldest entry sits at the next write position.
  std::vector<HostSample> out;
  out.reserve(ring_.size());
  const std::size_t start = next_ % options_.ring_capacity;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % options_.ring_capacity]);
  }
  return out;
}

std::uint64_t HostSampler::samples_taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return taken_;
}

std::uint64_t HostSampler::samples_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return taken_ > ring_.size() ? taken_ - ring_.size() : 0;
}

Json HostSampler::to_json() const {
  Json out = Json::object()
                 .set("interval_ms", options_.interval_ms)
                 .set("capacity",
                      static_cast<std::int64_t>(options_.ring_capacity))
                 .set("taken", samples_taken())
                 .set("dropped", samples_dropped());
  Json samples_json = Json::array();
  for (const HostSample& s : samples()) {
    samples_json.push(Json::object()
                          .set("wall_ns", s.wall_ns)
                          .set("rss_bytes", s.rss_bytes)
                          .set("bytes_mapped", s.bytes_mapped)
                          .set("resident_bytes", s.resident_bytes)
                          .set("queue_depth", s.queue_depth));
  }
  out.set("samples", std::move(samples_json));
  return out;
}

}  // namespace dmpc::obs
