#include "obs/scaling.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/check.hpp"
#include "support/stats.hpp"

namespace dmpc::obs {

namespace {

double transform(double x, EnvelopeKind kind) {
  DMPC_CHECK_MSG(x > 1.0, "envelope axis values must exceed 1");
  const double lx = std::log2(x);
  if (kind == EnvelopeKind::kLogX) return lx;
  DMPC_CHECK_MSG(lx > 1.0, "log log envelope needs x > 2");
  return std::log2(lx);
}

std::string format_point(double x, double y) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(x=%.10g, y=%.10g)", x, y);
  return buf;
}

}  // namespace

EnvelopeFit check_envelope(const std::vector<SeriesPoint>& series,
                           EnvelopeKind kind, double slack) {
  EnvelopeFit fit;
  if (series.size() < 2) {
    fit.pass = true;
    fit.detail = "fewer than 2 points; envelope not checkable";
    return fit;
  }
  std::vector<double> xs, ys;
  xs.reserve(series.size());
  ys.reserve(series.size());
  for (const auto& p : series) {
    xs.push_back(transform(p.x, kind));
    ys.push_back(p.y);
  }
  const LinearFit lf = fit_linear(xs, ys);
  fit.intercept = lf.intercept;
  fit.slope = lf.slope;
  fit.r_squared = lf.r_squared;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double predicted = lf.intercept + lf.slope * xs[i];
    const double rel =
        std::fabs(ys[i] - predicted) / std::max(1.0, std::fabs(predicted));
    if (rel > fit.max_rel_residual) {
      fit.max_rel_residual = rel;
      fit.worst_index = i;
    }
  }
  fit.pass = fit.max_rel_residual <= slack;
  if (!fit.pass) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "residual %.4g exceeds slack %.4g at point %zu ",
                  fit.max_rel_residual, slack, fit.worst_index);
    fit.detail = std::string(buf) + format_point(series[fit.worst_index].x,
                                                 series[fit.worst_index].y);
  }
  return fit;
}

EnvelopeFit check_cap(const std::vector<SeriesPoint>& series,
                      const std::vector<double>& caps) {
  DMPC_CHECK_MSG(series.size() == caps.size(),
                 "check_cap series/cap size mismatch");
  EnvelopeFit fit;
  fit.pass = true;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double headroom = caps[i] <= 0 ? 0 : series[i].y / caps[i];
    if (headroom > fit.max_rel_residual) {
      fit.max_rel_residual = headroom;
      fit.worst_index = i;
    }
    if (series[i].y > caps[i]) {
      fit.pass = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), " exceeds cap %.10g", caps[i]);
      fit.detail = "point " + std::to_string(i) + " " +
                   format_point(series[i].x, series[i].y) + buf;
      return fit;
    }
  }
  return fit;
}

}  // namespace dmpc::obs
