// Periodic host-side gauge sampler.
//
// The metrics registry holds *current* values of kHost gauges (RSS, mapped
// storage bytes, executor queue depth); a single end-of-solve snapshot loses
// their trajectory. HostSampler runs a background thread that samples a
// fixed set of host gauges every interval_ms into a fixed-size ring, which
// the CLI exports as the report's "host_samples" block.
//
// Everything here is kHost-classified: wall-clock cadence, RSS, scheduling.
// Nothing it produces is golden, and nothing it touches feeds the model or
// recovery sections — attaching a sampler cannot perturb determinism.
//
// Like obs/alloc_hooks.cpp, the thread is compile-time gated: sanitizer and
// fuzzer builds define no DMPC_HOST_SAMPLER, start() is then a no-op and
// compiled_in() reports false (a background thread touching /proc and
// registry atomics only adds noise under tsan/asan). sample_once() works in
// every build so tests exercise the ring without the thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "support/json.hpp"

namespace dmpc::obs {

class Gauge;

/// One sampled tick. Integer-exact, host section only.
struct HostSample {
  std::uint64_t wall_ns = 0;       ///< obs::wall_time_ns() at the tick
  std::int64_t rss_bytes = 0;      ///< current RSS (/proc/self/statm)
  std::int64_t bytes_mapped = 0;   ///< storage/bytes_mapped gauge
  std::int64_t resident_bytes = 0; ///< storage/resident_bytes gauge
  std::int64_t queue_depth = 0;    ///< exec/queue_depth gauge
};

class HostSampler {
 public:
  struct Options {
    std::uint64_t interval_ms = 100;  ///< tick cadence
    std::size_t ring_capacity = 256;  ///< oldest samples overwritten past this
  };

  HostSampler();  ///< Default Options.
  explicit HostSampler(Options options);
  ~HostSampler();  ///< stops the thread if still running
  HostSampler(const HostSampler&) = delete;
  HostSampler& operator=(const HostSampler&) = delete;

  /// True when this build carries the background thread (plain builds only;
  /// mirrors the alloc_hooks gate).
  static bool compiled_in();

  /// Start the periodic thread. Returns false (and stays idle) when the
  /// thread is compiled out or already running.
  bool start();

  /// Stop and join the thread. Idempotent; safe when never started.
  void stop();
  bool running() const { return running_; }

  /// Take one sample synchronously (works in every build).
  void sample_once();

  /// Ring contents, oldest first.
  std::vector<HostSample> samples() const;
  std::uint64_t samples_taken() const;
  /// Samples that overwrote an older ring slot.
  std::uint64_t samples_dropped() const;

  /// {"interval_ms","capacity","taken","dropped","samples":[...]}. Host
  /// data — never embedded in golden report sections.
  Json to_json() const;

 private:
  void loop();
  void push(const HostSample& sample);

  Options options_;
  Gauge* bytes_mapped_ = nullptr;
  Gauge* resident_bytes_ = nullptr;
  Gauge* queue_depth_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable stop_cv_;
  std::vector<HostSample> ring_;
  std::size_t next_ = 0;        ///< next ring slot to write
  std::uint64_t taken_ = 0;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;
};

/// Current resident set size in bytes via /proc/self/statm; 0 when the
/// proc file is unavailable (non-Linux hosts).
std::int64_t current_rss_bytes();

}  // namespace dmpc::obs
