#include "obs/metrics_registry.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "support/check.hpp"

namespace dmpc::obs {

const char* metric_section_name(MetricSection section) {
  switch (section) {
    case MetricSection::kModel: return "model";
    case MetricSection::kRecovery: return "recovery";
    case MetricSection::kHost: return "host";
  }
  return "unknown";
}

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  DMPC_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                         bounds_.end(),
                 "histogram bounds must be strictly increasing");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow -> size()
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
  for (const auto& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& after,
                                       const MetricsSnapshot& before) {
  std::unordered_map<std::string, const MetricValue*> base;
  base.reserve(before.entries.size());
  for (const auto& entry : before.entries) base.emplace(entry.name, &entry);

  MetricsSnapshot out;
  out.entries.reserve(after.entries.size());
  for (const auto& entry : after.entries) {
    MetricValue d = entry;
    const auto it = base.find(entry.name);
    if (it != base.end() && entry.kind != MetricKind::kGauge) {
      const MetricValue& b = *it->second;
      DMPC_CHECK_MSG(b.kind == entry.kind, "snapshot delta kind mismatch");
      d.value = entry.value - b.value;
      if (entry.kind == MetricKind::kHistogram) {
        DMPC_CHECK_MSG(b.counts.size() == entry.counts.size(),
                       "snapshot delta bucket mismatch");
        for (std::size_t i = 0; i < d.counts.size(); ++i) {
          d.counts[i] = entry.counts[i] - b.counts[i];
        }
        d.sum = entry.sum - b.sum;
      }
    }
    out.entries.push_back(std::move(d));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: static-lifetime thread pools may still bump counters
  // after main() returns; a destroyed registry would be UB.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, MetricSection section, MetricKind kind,
    std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& entry = *entries_[it->second];
    DMPC_CHECK_MSG(entry.kind == kind,
                   "metric re-registered with a different kind: " + name);
    DMPC_CHECK_MSG(entry.section == section,
                   "metric re-registered in a different section: " + name);
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->section = section;
  entry->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  index_.emplace(name, entries_.size());
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  MetricSection section) {
  return *find_or_create(name, section, MetricKind::kCounter, {}).counter;
}

Counter& MetricsRegistry::counter(const std::string& family,
                                  const std::string& label,
                                  MetricSection section) {
  return counter(family + "/" + label, section);
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricSection section) {
  return *find_or_create(name, section, MetricKind::kGauge, {}).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds,
                                      MetricSection section) {
  return *find_or_create(name, section, MetricKind::kHistogram,
                         std::move(bounds))
              .histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.entries.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricValue v;
    v.name = entry->name;
    v.section = entry->section;
    v.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        v.value = static_cast<std::int64_t>(entry->counter->value());
        break;
      case MetricKind::kGauge:
        v.value = entry->gauge->value();
        break;
      case MetricKind::kHistogram:
        v.value = static_cast<std::int64_t>(entry->histogram->total());
        v.bounds = entry->histogram->bounds();
        v.counts = entry->histogram->counts();
        v.sum = static_cast<std::int64_t>(entry->histogram->sum());
        break;
    }
    out.entries.push_back(std::move(v));
  }
  return out;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case MetricKind::kCounter: entry->counter->reset(); break;
      case MetricKind::kGauge: entry->gauge->reset(); break;
      case MetricKind::kHistogram: entry->histogram->reset(); break;
    }
  }
}

std::uint64_t wall_time_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           origin)
          .count());
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

void sample_host(MetricsRegistry& reg) {
  reg.gauge("host/wall_ns", MetricSection::kHost)
      .set(static_cast<std::int64_t>(wall_time_ns()));
  reg.gauge("host/peak_rss_bytes", MetricSection::kHost)
      .set(static_cast<std::int64_t>(peak_rss_bytes()));
}

namespace {

Json metric_value_json(const MetricValue& v) {
  if (v.kind != MetricKind::kHistogram) return Json(v.value);
  Json h = Json::object();
  h.set("total", Json(v.value));
  h.set("sum", Json(v.sum));
  Json bounds = Json::array();
  for (const auto b : v.bounds) bounds.push(Json(b));
  h.set("bounds", std::move(bounds));
  Json counts = Json::array();
  for (const auto c : v.counts) counts.push(Json(c));
  h.set("counts", std::move(counts));
  return h;
}

}  // namespace

Json to_json_section(const MetricsSnapshot& snapshot, MetricSection section,
                     bool include_zero) {
  Json out = Json::object();
  for (const auto& entry : snapshot.entries) {
    if (entry.section != section) continue;
    if (!include_zero && entry.value == 0) continue;
    out.set(entry.name, metric_value_json(entry));
  }
  return out;
}

Json to_json(const MetricsSnapshot& snapshot) {
  Json out = Json::object();
  out.set("model", to_json_section(snapshot, MetricSection::kModel));
  out.set("recovery", to_json_section(snapshot, MetricSection::kRecovery));
  out.set("host", to_json_section(snapshot, MetricSection::kHost));
  return out;
}

}  // namespace dmpc::obs
