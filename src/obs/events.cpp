#include "obs/events.hpp"

#include <chrono>
#include <ostream>

#include "api/status.hpp"
#include "obs/metrics_registry.hpp"
#include "support/json.hpp"

namespace dmpc::obs {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kSolveStarted: return "solve_started";
    case EventType::kSolveFinished: return "solve_finished";
    case EventType::kPhaseStarted: return "phase_started";
    case EventType::kPhaseFinished: return "phase_finished";
    case EventType::kRoundCompleted: return "round_completed";
    case EventType::kCheckpointTaken: return "checkpoint_taken";
    case EventType::kRecoveryAttempt: return "recovery_attempt";
    case EventType::kRecovered: return "recovered";
    case EventType::kStorageDegraded: return "storage_degraded";
    case EventType::kCertificateClaim: return "certificate_claim";
  }
  return "?";
}

const char* event_section_name(EventSection section) {
  return section == EventSection::kModel ? "model" : "recovery";
}

EventSection event_section(EventType type) {
  switch (type) {
    case EventType::kSolveStarted:
    case EventType::kSolveFinished:
    case EventType::kPhaseStarted:
    case EventType::kPhaseFinished:
    case EventType::kRoundCompleted:
    case EventType::kCertificateClaim:
      return EventSection::kModel;
    case EventType::kCheckpointTaken:
    case EventType::kRecoveryAttempt:
    case EventType::kRecovered:
    case EventType::kStorageDegraded:
      return EventSection::kRecovery;
  }
  return EventSection::kModel;
}

namespace {

std::uint32_t category_bit(EventType type) {
  switch (type) {
    case EventType::kSolveStarted:
    case EventType::kSolveFinished:
      return EventFilter::kSolve;
    case EventType::kPhaseStarted:
    case EventType::kPhaseFinished:
      return EventFilter::kPhase;
    case EventType::kRoundCompleted: return EventFilter::kRound;
    case EventType::kCheckpointTaken: return EventFilter::kCheckpoint;
    case EventType::kRecoveryAttempt:
    case EventType::kRecovered:
      return EventFilter::kRecovery;
    case EventType::kStorageDegraded: return EventFilter::kStorage;
    case EventType::kCertificateClaim: return EventFilter::kCertificate;
  }
  return 0;
}

struct CategoryName {
  const char* name;
  std::uint32_t bit;
};

// Declaration order here is the canonical print order for
// event_filter_to_string.
constexpr CategoryName kCategories[] = {
    {"solve", EventFilter::kSolve},
    {"phase", EventFilter::kPhase},
    {"round", EventFilter::kRound},
    {"checkpoint", EventFilter::kCheckpoint},
    {"recovery", EventFilter::kRecovery},
    {"storage", EventFilter::kStorage},
    {"certificate", EventFilter::kCertificate},
};

[[noreturn]] void reject_filter(const std::string& message) {
  throw OptionsError(
      Status::error(StatusCode::kInvalidEventFilter, message));
}

std::int64_t unix_time_ms() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
}

}  // namespace

bool EventFilter::passes(EventType type) const {
  return (mask_ & category_bit(type)) != 0;
}

EventFilter parse_event_filter(const std::string& text) {
  if (text.empty()) reject_filter("event filter must name at least one category");
  std::uint32_t mask = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = text.find(',', begin);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    const std::string token = text.substr(begin, end - begin);
    if (token.empty()) reject_filter("empty category in event filter");
    std::uint32_t bit = 0;
    if (token == "all") {
      bit = EventFilter::kAll;
    } else {
      for (const CategoryName& cat : kCategories) {
        if (token == cat.name) {
          bit = cat.bit;
          break;
        }
      }
    }
    if (bit == 0) reject_filter("unknown event category '" + token + "'");
    if ((mask & bit) == bit) {
      reject_filter("duplicate event category '" + token + "'");
    }
    mask |= bit;
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return EventFilter(mask);
}

std::string event_filter_to_string(const EventFilter& filter) {
  if (filter.passes_all()) return "all";
  std::string out;
  for (const CategoryName& cat : kCategories) {
    if ((filter.mask() & cat.bit) == 0) continue;
    if (!out.empty()) out += ',';
    out += cat.name;
  }
  return out;
}

bool EventBus::subscribe(EventSink* sink) {
  if (sink == nullptr || sinks_.size() >= kMaxSubscribers) return false;
  sinks_.push_back(sink);
  return true;
}

void EventBus::emit(ProgressEvent event) {
  if (finished_) return;
  event.section = event_section(event.type);
  std::uint64_t& seq = event.section == EventSection::kModel
                           ? model_seq_
                           : recovery_seq_;
  event.seq = seq++;
  event.host_wall_ns = wall_time_ns();
  event.host_unix_ms = unix_time_ms();
  if (!filter_.passes(event.type)) {
    ++filtered_;
    return;
  }
  for (EventSink* sink : sinks_) sink->on_event(event);
}

void EventBus::finish() {
  if (finished_) return;
  finished_ = true;
  for (EventSink* sink : sinks_) sink->finish();
}

std::string event_to_jsonl(const ProgressEvent& event, bool include_host) {
  Json line = Json::object()
                  .set("v", static_cast<std::int64_t>(kEventStreamVersion))
                  .set("section", event_section_name(event.section))
                  .set("seq", event.seq)
                  .set("type", event_type_name(event.type))
                  .set("label", event.label)
                  .set("round", event.round)
                  .set("rounds", event.rounds)
                  .set("comm_words", event.comm_words)
                  .set("load_max", event.load_max)
                  .set("gini_ppm", event.gini_ppm)
                  .set("value", event.value)
                  .set("detail", event.detail);
  if (include_host) {
    line.set("host", Json::object()
                         .set("wall_ns", event.host_wall_ns)
                         .set("unix_ms", event.host_unix_ms));
  }
  return line.dump();
}

void JsonlEventSink::on_event(const ProgressEvent& event) {
  *out_ << event_to_jsonl(event, include_host_) << '\n';
}

void JsonlEventSink::finish() { out_->flush(); }

void ProgressLineSink::on_event(const ProgressEvent& event) {
  bool urgent = false;
  switch (event.type) {
    case EventType::kSolveStarted:
    case EventType::kSolveFinished:
    case EventType::kRecoveryAttempt:
    case EventType::kRecovered:
    case EventType::kStorageDegraded:
      urgent = true;
      break;
    case EventType::kCertificateClaim:
      urgent = event.value == 0;  // failed claims always surface
      break;
    default:
      break;
  }
  if (!urgent) {
    if (event.type != EventType::kRoundCompleted) return;
    if (printed_any_ &&
        event.host_wall_ns - last_round_print_ns_ < min_interval_ns_) {
      return;
    }
    last_round_print_ns_ = event.host_wall_ns;
  }
  printed_any_ = true;
  *out_ << "[dmpc] " << event_type_name(event.type);
  if (!event.label.empty()) *out_ << ' ' << event.label;
  if (event.type == EventType::kRoundCompleted ||
      event.type == EventType::kSolveFinished) {
    *out_ << " round=" << event.round << " comm_words=" << event.comm_words;
  }
  if (event.type == EventType::kRecoveryAttempt) {
    *out_ << " attempt=" << event.value << " round=" << event.round;
  }
  if (event.type == EventType::kCertificateClaim && event.value == 0) {
    *out_ << " FAILED " << event.detail;
  }
  *out_ << '\n';
  out_->flush();
}

void ProgressLineSink::finish() { out_->flush(); }

std::string model_projection(const std::vector<ProgressEvent>& events) {
  std::string out;
  for (const ProgressEvent& event : events) {
    if (event.section != EventSection::kModel) continue;
    out += event_to_jsonl(event, /*include_host=*/false);
    out += '\n';
  }
  return out;
}

}  // namespace dmpc::obs
