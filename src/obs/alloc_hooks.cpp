// Replaceable global operator new/delete that tally per-thread allocation
// counts and bytes into obs::detail::g_alloc_tally (profiler.hpp).
//
// This TU is linked only in plain builds: CMake drops it when DMPC_SANITIZE
// is set or DMPC_FUZZ is on, because ASan/TSan and libFuzzer intercept the
// global allocator themselves and a second replacement either conflicts or
// silently disables their bookkeeping. Without this TU the tally stays zero
// and HostScope reports 0 allocs — a documented degradation, not an error.
//
// The tally is a constant-initialized thread_local POD, so bumping it never
// allocates and is safe from the very first allocation in the process.
#include <cstdlib>
#include <new>

#include "obs/profiler.hpp"

namespace {

void* tallied_alloc(std::size_t size) noexcept {
  // malloc(0) may return nullptr legitimately; operator new must return a
  // unique pointer, so round up.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) {
    auto& tally = dmpc::obs::detail::g_alloc_tally;
    tally.allocations += 1;
    tally.bytes += size;
  }
  return p;
}

void* tallied_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) return nullptr;
  auto& tally = dmpc::obs::detail::g_alloc_tally;
  tally.allocations += 1;
  tally.bytes += size;
  return p;
}

void tallied_free(void* p) noexcept {
  if (p == nullptr) return;
  dmpc::obs::detail::g_alloc_tally.frees += 1;
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = tallied_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = tallied_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return tallied_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return tallied_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = tallied_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = tallied_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return tallied_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return tallied_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { tallied_free(p); }
void operator delete[](void* p) noexcept { tallied_free(p); }
void operator delete(void* p, std::size_t) noexcept { tallied_free(p); }
void operator delete[](void* p, std::size_t) noexcept { tallied_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  tallied_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  tallied_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { tallied_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { tallied_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  tallied_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  tallied_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  tallied_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  tallied_free(p);
}
