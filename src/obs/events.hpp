// Typed, versioned progress-event stream for live telemetry.
//
// The trace layer (trace.hpp) records *spans* — nested regions with host
// timestamps — and the metrics registry records *totals*. This layer sits in
// between: a flat, forward-only stream of coarse progress events
// (solve/phase/round/recovery/certificate) that a client can tail while a
// solve is running. It is the substrate the ROADMAP's solver-as-a-service
// item streams over.
//
// Determinism contract (mirrors the trace and metrics contracts):
//  * Every event belongs to a section, kModel or kRecovery.
//      - kModel events are deterministic functions of (graph, options minus
//        threads): byte-identical across thread counts, fault plans, and
//        storage backends. They carry their own dense `seq` numbering.
//      - kRecovery events surface fault/io-fault/storage rungs: deterministic
//        for a fixed plan but plan-dependent. They use a *separate* dense
//        `seq` so interleaved recovery traffic never perturbs the model
//        numbering.
//  * Host-side timestamps (wall clock, unix time) are quarantined in the
//    `host` sub-object of the serialized form and in the host_* fields here;
//    stripping them yields the deterministic projection
//    (see model_projection()).
//  * The stream is versioned: kEventStreamVersion stamps every serialized
//    record as "v". Consumers must ignore unknown fields within a version.
//
// The bus is intentionally not thread-safe: events are emitted from the
// single orchestration thread (Cluster rounds and Solver lifecycle run on
// it); executor workers never emit. This keeps emission free of locks and
// the ordering trivially deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dmpc::obs {

/// Bumped when the serialized record shape changes incompatibly.
inline constexpr std::uint32_t kEventStreamVersion = 1;

enum class EventType : std::uint8_t {
  kSolveStarted = 0,
  kSolveFinished,
  kPhaseStarted,
  kPhaseFinished,
  kRoundCompleted,
  kCheckpointTaken,
  kRecoveryAttempt,
  kRecovered,
  kStorageDegraded,
  kCertificateClaim,
};

/// Stable wire name, e.g. "round_completed".
const char* event_type_name(EventType type);

/// Which determinism class an event belongs to. See file comment.
enum class EventSection : std::uint8_t { kModel = 0, kRecovery = 1 };

/// Stable wire name: "model" or "recovery".
const char* event_section_name(EventSection section);

/// The section an event type always belongs to (fixed per type so the model
/// projection is a pure filter, never a judgement call at the emit site).
EventSection event_section(EventType type);

/// One progress event. Integer-exact like TraceArg/MetricValue; unused
/// fields stay zero/empty but are always serialized so every record of a
/// given version has the same shape.
struct ProgressEvent {
  EventType type = EventType::kSolveStarted;
  EventSection section = EventSection::kModel;  // derived; bus overwrites
  std::uint64_t seq = 0;      // dense per-section, assigned by the bus
  std::string label;          // phase/round label, claim name, algorithm
  std::uint64_t round = 0;    // logical round counter after the event
  std::uint64_t rounds = 0;   // rounds charged by this event
  std::uint64_t comm_words = 0;   // cumulative communication words
  std::uint64_t load_max = 0;     // profiler window max load (0 w/o profiler)
  std::uint64_t gini_ppm = 0;     // profiler window Gini (ppm, 0 w/o profiler)
  std::int64_t value = 0;     // type-specific scalar (n, pass/fail, attempt)
  std::string detail;         // type-specific short string (verdict, backend)
  // Host-side (non-deterministic) fields; serialized under "host".
  std::uint64_t host_wall_ns = 0;  // obs::wall_time_ns() at emit
  std::int64_t host_unix_ms = 0;   // unix epoch milliseconds at emit
};

/// Bitmask over event *categories* (one bit per CLI filter keyword, covering
/// one or two event types each). Default-constructed filter passes everything.
class EventFilter {
 public:
  static constexpr std::uint32_t kSolve = 1u << 0;        // solve_*
  static constexpr std::uint32_t kPhase = 1u << 1;        // phase_*
  static constexpr std::uint32_t kRound = 1u << 2;        // round_completed
  static constexpr std::uint32_t kCheckpoint = 1u << 3;   // checkpoint_taken
  static constexpr std::uint32_t kRecovery = 1u << 4;     // recovery_*
  static constexpr std::uint32_t kStorage = 1u << 5;      // storage_degraded
  static constexpr std::uint32_t kCertificate = 1u << 6;  // certificate_claim
  static constexpr std::uint32_t kAll =
      kSolve | kPhase | kRound | kCheckpoint | kRecovery | kStorage |
      kCertificate;

  EventFilter() = default;
  explicit EventFilter(std::uint32_t mask) : mask_(mask & kAll) {}

  bool passes(EventType type) const;
  std::uint32_t mask() const { return mask_; }
  bool passes_all() const { return mask_ == kAll; }

 private:
  std::uint32_t mask_ = kAll;
};

/// Parse a comma-separated category list ("round,recovery,certificate").
/// Accepted keywords: solve, phase, round, checkpoint, recovery, storage,
/// certificate, all. Throws OptionsError(kInvalidEventFilter) on an empty
/// list, empty element, duplicate, or unknown keyword.
EventFilter parse_event_filter(const std::string& text);

/// Canonical printed form: category keywords in fixed declaration order,
/// comma-separated ("all" when everything passes). parse(to_string(f))
/// reproduces f for every filter — the fuzz driver pins this round trip.
std::string event_filter_to_string(const EventFilter& filter);

/// Consumer interface. on_event observes each event passing the bus filter,
/// in emission order; finish flushes (called exactly once by the bus).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const ProgressEvent& event) = 0;
  virtual void finish() {}
};

/// Bounded fan-out bus. Subscribers are notified in registration order;
/// subscribe() refuses (returns false) past kMaxSubscribers so the emit path
/// never allocates. The bus assigns per-section seq numbers *before*
/// filtering, so the numbering — and hence the deterministic projection —
/// is independent of the active filter.
class EventBus {
 public:
  static constexpr std::size_t kMaxSubscribers = 8;

  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// False when sink is null or the subscriber table is full.
  bool subscribe(EventSink* sink);
  std::size_t subscriber_count() const { return sinks_.size(); }

  void set_filter(EventFilter filter) { filter_ = filter; }
  const EventFilter& filter() const { return filter_; }

  /// Stamp section/seq/host fields and fan out to subscribers (unless the
  /// filter drops the event, which still consumes a seq number). No-op after
  /// finish().
  void emit(ProgressEvent event);

  /// Flush every sink in registration order. Idempotent; emit() after
  /// finish() is ignored, so it is safe to call on unwind paths and again
  /// at normal completion.
  void finish();
  bool finished() const { return finished_; }

  std::uint64_t model_events() const { return model_seq_; }
  std::uint64_t recovery_events() const { return recovery_seq_; }
  /// Events dropped by the filter (they still consumed seq numbers).
  std::uint64_t filtered_events() const { return filtered_; }

 private:
  std::vector<EventSink*> sinks_;
  EventFilter filter_;
  std::uint64_t model_seq_ = 0;
  std::uint64_t recovery_seq_ = 0;
  std::uint64_t filtered_ = 0;
  bool finished_ = false;
};

/// Serialize one event as a single JSON line with a fixed field order:
/// {"v","section","seq","type","label","round","rounds","comm_words",
///  "load_max","gini_ppm","value","detail"} (+ trailing "host" sub-object
/// when include_host). Shared by JsonlEventSink and model_projection().
std::string event_to_jsonl(const ProgressEvent& event, bool include_host);

/// Streams one JSON object per event. With include_host = false the output
/// is the deterministic projection (golden across threads/plans/backends
/// for the model section).
class JsonlEventSink final : public EventSink {
 public:
  explicit JsonlEventSink(std::ostream* out, bool include_host = true)
      : out_(out), include_host_(include_host) {}

  void on_event(const ProgressEvent& event) override;
  void finish() override;

 private:
  std::ostream* out_;
  bool include_host_;
};

/// Throttled single-line human progress for --progress. Round events are
/// rate-limited by host wall clock (min_interval_ms); lifecycle events
/// (solve_*, recovery_*, storage_degraded, failed certificate claims)
/// always print. Host-timing-dependent by design — never golden.
class ProgressLineSink final : public EventSink {
 public:
  explicit ProgressLineSink(std::ostream* out,
                            std::uint64_t min_interval_ms = 250)
      : out_(out), min_interval_ns_(min_interval_ms * 1000000ull) {}

  void on_event(const ProgressEvent& event) override;
  void finish() override;

 private:
  std::ostream* out_;
  std::uint64_t min_interval_ns_;
  std::uint64_t last_round_print_ns_ = 0;
  bool printed_any_ = false;
};

/// Buffers every observed event; tests assert on the vector.
class CollectorEventSink final : public EventSink {
 public:
  void on_event(const ProgressEvent& event) override {
    events_.push_back(event);
  }
  void finish() override { finished_ = true; }

  const std::vector<ProgressEvent>& events() const { return events_; }
  bool finished() const { return finished_; }

 private:
  std::vector<ProgressEvent> events_;
  bool finished_ = false;
};

/// The deterministic projection: model-section events only, host fields
/// stripped, one JSONL record per event. Byte-identical across thread
/// counts, fault plans, and storage backends for a fixed (graph, options).
std::string model_projection(const std::vector<ProgressEvent>& events);

/// Summary block embedded in SolveReport (report schema v8). enabled stays
/// false — and the report stays byte-identical to schema v7 output — unless
/// a bus was attached to the solve.
struct EventsSummary {
  bool enabled = false;
  std::uint32_t stream_version = kEventStreamVersion;
  std::uint64_t model_events = 0;
  std::uint64_t recovery_events = 0;
  std::uint64_t filtered_events = 0;
};

/// True when `bus` is attached and still accepting events.
inline bool events_enabled(const EventBus* bus) {
  return bus != nullptr && !bus->finished();
}

}  // namespace dmpc::obs
