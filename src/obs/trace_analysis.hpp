// Offline trace analysis: span-tree reconstruction, round-DAG critical
// path, hot-span aggregation, folded flamegraph stacks, and the profile
// skew gate. This is the library behind tools/trace_analyze; it lives in
// the obs layer so tests can drive it without shelling out.
//
// Both serialized trace formats are accepted:
//  * JSONL (JsonlTraceSink): one event per line with explicit span/parent
//    ids; golden traces omit ts_ns, so analysis weights default to the
//    model-side `rounds` span args — deterministic on golden fixtures.
//  * Chrome trace-event JSON (ChromeTraceSink): B/E nesting on one thread
//    reconstructs the same tree.
//
// Weighting: a Span's end event reports the rounds/communication delta over
// its whole lifetime, i.e. *inclusive* of nested spans; instants emitted by
// trace_primitive carry their own rounds and become leaf nodes. Self weight
// is inclusive minus the children's inclusive weights. The critical path
// follows the max-inclusive-weight child from the heaviest root; rounds are
// the primary weight and wall time the fallback when the trace has no round
// args at all (a host-only trace).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace dmpc::obs {

constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

struct AnalyzedSpan {
  std::string name;
  std::size_t parent = kNoSpan;       ///< Index into TraceAnalysis::spans.
  std::vector<std::size_t> children;  ///< In emission order.
  std::uint64_t rounds = 0;           ///< Inclusive of children.
  std::uint64_t communication = 0;    ///< Inclusive of children.
  std::uint64_t wall_ns = 0;          ///< Inclusive duration (0 if no ts).
  std::uint64_t self_rounds = 0;
  std::uint64_t self_wall_ns = 0;
  std::uint32_t depth = 0;
  bool from_instant = false;  ///< Leaf synthesized from a primitive instant.
};

struct TraceAnalysis {
  std::vector<AnalyzedSpan> spans;   ///< Emission order; parents precede.
  std::vector<std::size_t> roots;
  std::uint64_t total_rounds = 0;    ///< Sum of root-inclusive rounds.
  std::uint64_t total_wall_ns = 0;
  bool has_wall = false;             ///< Any nonzero timestamps seen.
};

/// Parse a serialized trace, auto-detecting JSONL vs Chrome JSON.
/// Throws ParseError on malformed input.
TraceAnalysis analyze_trace_text(const std::string& text);

struct CriticalPathEntry {
  std::size_t span = kNoSpan;
  std::uint64_t inclusive = 0;  ///< Weight of the subtree rooted here.
  std::uint64_t self = 0;       ///< Weight not covered by children.
};

/// What the critical path follows. kAuto uses rounds when the trace carries
/// round args (the model-side DAG) and wall time otherwise; kWall forces the
/// host-side view, which surfaces wall-dominant spans (e.g. the derand CE
/// sweep) that charge few model rounds.
enum class PathWeight { kAuto, kRounds, kWall };

/// Heaviest root-to-leaf chain by inclusive weight. Ties break toward the
/// earlier child, so the path is deterministic for a deterministic trace.
std::vector<CriticalPathEntry> critical_path(
    const TraceAnalysis& analysis, PathWeight weight = PathWeight::kAuto);

struct HotSpan {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t self_rounds = 0;
  std::uint64_t self_wall_ns = 0;
  std::uint64_t communication = 0;  ///< Inclusive, summed over instances.
};

/// Aggregate spans by name, sorted by self weight descending (name
/// ascending on ties).
std::vector<HotSpan> hot_spans(const TraceAnalysis& analysis);

/// Folded flamegraph stacks ("root;child;leaf <self-weight>" lines, one per
/// distinct stack with nonzero self weight, sorted by stack string).
/// Feed to any FlameGraph-compatible renderer.
std::string folded_stacks(const TraceAnalysis& analysis);

// ---------------------------------------------------------------------------
// Profile skew gate
// ---------------------------------------------------------------------------

struct GateViolation {
  std::string series;  ///< "<context>.<label>" or a round range.
  std::string detail;
};

/// Evaluate a report's `profile` block against a threshold document:
///   { "max_gini_ppm": N,            // per-label Gini cap (ppm)
///     "max_load_max": N,            // optional peak single-window load cap
///     "max_record_comm_words": N,   // optional per-record communication cap
///     "labels": { "<label>": { "max_gini_ppm": N } } }  // overrides
/// Violations name the offending label and — for ring records — the round
/// range [round_begin, round_end). `context` prefixes the series names.
std::vector<GateViolation> check_profile_gate(const Json& profile,
                                              const Json& thresholds,
                                              const std::string& context);

}  // namespace dmpc::obs
