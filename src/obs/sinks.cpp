#include "obs/sinks.hpp"

#include <map>
#include <ostream>

#include "support/json.hpp"

namespace dmpc::obs {

namespace {

Json args_json(const std::vector<TraceArg>& args) {
  Json out = Json::object();
  for (const TraceArg& a : args) {
    if (const auto* i = std::get_if<std::int64_t>(&a.value)) {
      out.set(a.key, *i);
    } else if (const auto* d = std::get_if<double>(&a.value)) {
      out.set(a.key, *d);
    } else {
      out.set(a.key, std::get<std::string>(a.value));
    }
  }
  return out;
}

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSpanBegin: return "begin";
    case EventKind::kSpanEnd: return "end";
    case EventKind::kInstant: return "instant";
    case EventKind::kCounter: return "counter";
  }
  return "?";
}

}  // namespace

void JsonlTraceSink::on_event(const TraceEvent& event) {
  Json line = Json::object()
                  .set("seq", event.seq)
                  .set("type", kind_name(event.kind))
                  .set("name", event.name)
                  .set("span", event.span)
                  .set("parent", event.parent)
                  .set("depth", event.depth);
  if (include_wall_time_) line.set("ts_ns", event.wall_ns);
  if (!event.args.empty()) line.set("args", args_json(event.args));
  *out_ << line.dump() << '\n';
}

void JsonlTraceSink::finish() { out_->flush(); }

void ChromeTraceSink::on_event(const TraceEvent& event) {
  events_.push_back(event);
}

void ChromeTraceSink::finish() {
  if (finished_) return;  // never write the document twice
  finished_ = true;
  if (events_.empty()) {
    // dump(1) would still be valid here, but pin the canonical minimal
    // document so empty traces are byte-stable and trivially greppable.
    *out_ << "{\"traceEvents\": []}\n";
    out_->flush();
    return;
  }
  Json trace_events = Json::array();
  for (const TraceEvent& event : events_) {
    Json e = Json::object().set("name", event.name).set("cat", "dmpc");
    switch (event.kind) {
      case EventKind::kSpanBegin: e.set("ph", "B"); break;
      case EventKind::kSpanEnd: e.set("ph", "E"); break;
      case EventKind::kInstant:
        e.set("ph", "i").set("s", "t");
        break;
      case EventKind::kCounter: e.set("ph", "C"); break;
    }
    e.set("ts", static_cast<double>(event.wall_ns) / 1000.0)
        .set("pid", 0)
        .set("tid", 0);
    if (!event.args.empty()) {
      e.set("args", args_json(event.args));
    } else if (event.kind == EventKind::kCounter) {
      e.set("args", Json::object());  // counters require an args object
    }
    trace_events.push(std::move(e));
  }
  const Json doc = Json::object()
                       .set("traceEvents", std::move(trace_events))
                       .set("displayTimeUnit", "ms");
  *out_ << doc.dump(1) << '\n';
  out_->flush();
}

std::vector<SpanStats> summarize_spans(const std::vector<TraceEvent>& events) {
  struct OpenSpan {
    std::uint64_t begin_wall = 0;
  };
  std::map<std::uint64_t, OpenSpan> open;
  std::vector<SpanStats> stats;
  std::map<std::string, std::size_t> index;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kSpanBegin) {
      open[event.span] = {event.wall_ns};
      continue;
    }
    if (event.kind != EventKind::kSpanEnd) continue;
    const auto it = open.find(event.span);
    if (it == open.end()) continue;  // truncated stream
    auto [pos, inserted] = index.try_emplace(event.name, stats.size());
    if (inserted) {
      stats.push_back({});
      stats.back().name = event.name;
    }
    SpanStats& s = stats[pos->second];
    ++s.count;
    s.wall_ns += event.wall_ns - it->second.begin_wall;
    for (const TraceArg& a : event.args) {
      const auto* v = std::get_if<std::int64_t>(&a.value);
      if (v == nullptr) continue;
      if (a.key == "rounds") s.rounds += static_cast<std::uint64_t>(*v);
      if (a.key == "communication") {
        s.communication += static_cast<std::uint64_t>(*v);
      }
    }
    open.erase(it);
  }
  return stats;
}

}  // namespace dmpc::obs
