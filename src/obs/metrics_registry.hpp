// Process-wide deterministic metrics registry.
//
// The trace layer (trace.hpp) answers "what happened, in order"; this layer
// answers "how much, in total". Producers across the stack register named
// counters, gauges, and fixed-bucket histograms once and bump them on the hot
// path; consumers take an explicit MetricsSnapshot and serialize it.
//
// Determinism contract (mirrors TraceArg):
//  * Values are integer-exact — counters and gauges are 64-bit integers,
//    histograms have fixed integer bucket bounds. No floats anywhere.
//  * Snapshots list metrics in registration order, so serialized output is
//    byte-stable for a fixed program path.
//  * Metrics are segregated into three sections:
//      - kModel:    golden. Deterministic functions of (graph, options minus
//                   threads); byte-identical across runs, thread counts, and
//                   admissible fault plans. Safe to embed in report JSON.
//      - kRecovery: deterministic for a fixed fault plan but varies across
//                   plans (fault ledger exports). Excluded from report JSON,
//                   which already carries a typed "recovery" block.
//      - kHost:     non-golden. Wall time, peak RSS, executor task/steal
//                   counts — anything scheduling- or machine-dependent.
//    to_json() groups by section so goldens can compare the model subtree
//    alone; to_json_section() extracts one section.
//
// Because the registry is process-global and cumulative, per-solve accounting
// uses deltas: snapshot before, snapshot after, MetricsSnapshot::delta().
// Counters and histograms subtract; gauges (point-in-time samples such as
// wall clock or RSS) keep the "after" value.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/json.hpp"

namespace dmpc::obs {

/// Which determinism class a metric belongs to. See file comment.
enum class MetricSection : std::uint8_t { kModel = 0, kRecovery = 1, kHost = 2 };

/// Stable short name: "model", "recovery", "host".
const char* metric_section_name(MetricSection section);

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// Stable short name: "counter", "gauge", "histogram".
const char* metric_kind_name(MetricKind kind);

/// Monotone accumulator. Thread-safe (relaxed atomics): concurrent adds from
/// executor workers are allowed; the *total* must still be deterministic for
/// kModel metrics (producers guarantee that, as for mpc::Metrics).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value (pool size, RSS, wall clock). `record_max`
/// is a monotone-max update for peak-style gauges.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void record_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in strictly
/// increasing order; an implicit overflow bucket catches everything above
/// the last bound. Bucket layout is fixed at registration, so serialized
/// output never depends on the observed values.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value);

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 buckets; last is the overflow bucket.
  std::vector<std::uint64_t> counts() const;
  std::uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One serialized metric value. For histograms `value` is the observation
/// count and the bucket detail lives in `bounds`/`counts`/`sum`.
struct MetricValue {
  std::string name;
  MetricSection section = MetricSection::kModel;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;
  std::vector<std::uint64_t> bounds;  // histogram only
  std::vector<std::uint64_t> counts;  // histogram only (bounds.size() + 1)
  std::int64_t sum = 0;               // histogram only
};

/// An ordered, immutable copy of every registered metric's value at one
/// instant. Entry order is registration order — byte-stable by construction.
struct MetricsSnapshot {
  std::vector<MetricValue> entries;

  /// Lookup by full name; nullptr when absent.
  const MetricValue* find(const std::string& name) const;

  /// Per-solve accounting over the cumulative global registry: counters and
  /// histograms subtract (entries unknown to `before` pass through raw);
  /// gauges keep the `after` value — they are point-in-time samples, not
  /// accumulations. Entry order follows `after`.
  static MetricsSnapshot delta(const MetricsSnapshot& after,
                               const MetricsSnapshot& before);
};

/// Registry of named metrics. Registration is idempotent: the first call
/// creates the metric, later calls with the same name return the same object
/// (and DMPC_CHECK that kind/section match). Handles returned by the
/// accessors are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every production producer writes to. Never
  /// destroyed (intentionally leaked) so worker threads and static-lifetime
  /// pools can bump counters during teardown.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name,
                   MetricSection section = MetricSection::kModel);
  /// Labeled family member, named "<family>/<label>".
  Counter& counter(const std::string& family, const std::string& label,
                   MetricSection section);
  Gauge& gauge(const std::string& name,
               MetricSection section = MetricSection::kModel);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds,
                       MetricSection section = MetricSection::kModel);

  /// Ordered copy of all current values.
  MetricsSnapshot snapshot() const;

  /// Zero every value, keeping registrations (tests only; production code
  /// uses snapshot deltas instead).
  void reset_values();

 private:
  struct Entry {
    std::string name;
    MetricSection section;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(const std::string& name, MetricSection section,
                        MetricKind kind, std::vector<std::uint64_t> bounds);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
  std::unordered_map<std::string, std::size_t> index_;
};

/// Monotonic wall clock in nanoseconds since the first call in this process.
/// Non-golden by definition; host section only.
std::uint64_t wall_time_ns();

/// Peak resident set size of the process in bytes (getrusage), 0 when
/// unavailable. Non-golden.
std::uint64_t peak_rss_bytes();

/// Sample wall clock and peak RSS into `reg` as host-section gauges
/// "host/wall_ns" and "host/peak_rss_bytes".
void sample_host(MetricsRegistry& reg);

/// Serialize one section as a flat name -> value object, in registration
/// order. Histograms serialize as {"total","sum","bounds","counts"}.
/// With include_zero = false, entries whose value (and, for histograms,
/// observation count) is zero are omitted — this makes a *delta* snapshot's
/// serialization independent of which metrics earlier, unrelated solves
/// happened to register in the same process, which is what lets the report
/// "registry" block stay byte-identical across process histories.
Json to_json_section(const MetricsSnapshot& snapshot, MetricSection section,
                     bool include_zero = true);

/// Serialize all sections, grouped: {"model":{...},"recovery":{...},
/// "host":{...}}. The model subtree is golden; the rest is not.
Json to_json(const MetricsSnapshot& snapshot);

}  // namespace dmpc::obs
