// Round-structured tracing for the MPC simulator.
//
// Every bound we reproduce (Theorems 1/7/14, Corollary 2) is a statement
// about rounds, peak per-machine space, and total communication — but the
// totals alone don't say *where* a pipeline spends them. This module adds a
// hierarchical span layer (pipeline -> iteration -> phase -> primitive) over
// the cost model: a TraceSession receives begin/end/instant/counter events,
// each span snapshots the cluster's Metrics on entry and reports the
// round/communication delta it covered on exit, and sinks serialize the
// event stream (JSONL for machine-readable series, Chrome trace-event JSON
// for Perfetto). The per-iteration progress invariants (Lemmas 12/13/19)
// become instant events with structured args instead of free-form log lines.
//
// Design constraints:
//  - Zero cost when disabled: a null session (or a session with a null
//    sink) short-circuits before any string formatting or clock read. Call
//    sites that must *compose* event arguments guard with obs::enabled().
//  - Deterministic event ordering: events carry a logical sequence number
//    and span ids assigned in creation order, so two runs of the same graph
//    with the same options produce identical event streams (wall-clock
//    timestamps are carried separately and can be suppressed by sinks for
//    golden-trace diffs).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace dmpc::mpc {
class Metrics;
}

namespace dmpc::obs {

/// Event argument value: integers stay integers in the serialized output
/// (counts of rounds/edges must not round-trip through double).
using ArgValue = std::variant<std::int64_t, double, std::string>;

struct TraceArg {
  std::string key;
  ArgValue value;
};

/// Convenience constructors so call sites read as {"edges", arg(m)}.
inline TraceArg arg(std::string key, std::uint64_t v) {
  return {std::move(key), static_cast<std::int64_t>(v)};
}
inline TraceArg arg(std::string key, std::int64_t v) {
  return {std::move(key), v};
}
inline TraceArg arg(std::string key, double v) { return {std::move(key), v}; }
inline TraceArg arg(std::string key, std::string v) {
  return {std::move(key), ArgValue(std::move(v))};
}

enum class EventKind { kSpanBegin, kSpanEnd, kInstant, kCounter };

struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  std::string name;
  std::uint64_t seq = 0;     ///< Logical clock; strictly increasing.
  std::uint64_t span = 0;    ///< Span id (begin/end) or enclosing span id.
  std::uint64_t parent = 0;  ///< Parent span id; 0 = top level.
  std::uint32_t depth = 0;   ///< Nesting depth at emission (root span = 0).
  std::uint64_t wall_ns = 0; ///< Wall time since session start (steady clock).
  std::vector<TraceArg> args;
};

/// Destination for trace events. Sinks receive events in emission order.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  /// Called once when the session is finished; sinks that buffer (the
  /// Chrome exporter) write their output here.
  virtual void finish() {}
};

/// The active trace of one run. Holds the span stack and the logical clock;
/// optionally attached to a Metrics object so spans can report the
/// round/communication deltas they cover.
class TraceSession {
 public:
  /// A null sink produces an inactive session: every emit path is a no-op.
  explicit TraceSession(TraceSink* sink);

  bool active() const { return sink_ != nullptr; }

  /// Attach the metrics source spans snapshot. The Cluster does this in
  /// set_trace(); pass nullptr to detach.
  void attach_metrics(const mpc::Metrics* metrics) { metrics_ = metrics; }
  const mpc::Metrics* metrics() const { return metrics_; }

  /// Point event inside the current span (e.g. a per-iteration progress
  /// record with structured args).
  void instant(const std::string& name, std::vector<TraceArg> args = {});

  /// Counter sample (rendered as a counter track by the Chrome exporter).
  void counter(const std::string& name, std::vector<TraceArg> args);

  /// Opt into host-side profiler counter events (HostScope). Off by
  /// default: host counters are wall-clock/allocator noise and would break
  /// the byte-identity of golden traces.
  void enable_host_counters(bool on) { host_counters_ = on; }
  bool host_counters_enabled() const { return active() && host_counters_; }

  /// Flush the sink. Call once after the traced run completes.
  void finish();

  std::uint64_t events_emitted() const { return next_seq_; }
  std::uint32_t open_spans() const {
    return static_cast<std::uint32_t>(stack_.size());
  }

 private:
  friend class Span;

  std::uint64_t begin_span(const std::string& name);
  void end_span(std::uint64_t id, const std::string& name,
                std::vector<TraceArg> args);
  void emit(EventKind kind, const std::string& name, std::uint64_t span,
            std::vector<TraceArg> args);
  std::uint64_t now_ns() const;

  TraceSink* sink_ = nullptr;
  const mpc::Metrics* metrics_ = nullptr;
  bool host_counters_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_span_ = 1;
  std::vector<std::uint64_t> stack_;  ///< Open span ids, outermost first.
  std::chrono::steady_clock::time_point start_;
};

/// True when tracing is on; use to guard argument composition at call sites.
inline bool enabled(const TraceSession* session) {
  return session != nullptr && session->active();
}

/// RAII span: emits a begin event on construction and an end event on
/// destruction. The end event carries the rounds/communication charged and
/// the peak load observed while the span was open (when the session is
/// attached to a Metrics object) plus any args attached via Span::arg().
/// Constructing with a null/inactive session is a no-op.
class Span {
 public:
  Span(TraceSession* session, const std::string& name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return session_ != nullptr; }

  /// Attach an argument to the end event (counters measured inside the
  /// span, e.g. candidate seeds evaluated). No-op when inactive.
  void arg(std::string key, std::uint64_t v);
  void arg(std::string key, std::int64_t v);
  void arg(std::string key, double v);
  void arg(std::string key, std::string v);

 private:
  TraceSession* session_ = nullptr;  ///< Null when inactive.
  std::string name_;
  std::uint64_t id_ = 0;
  std::uint64_t rounds_before_ = 0;
  std::uint64_t comm_before_ = 0;
  std::vector<TraceArg> end_args_;
};

/// Primitive-level instant event: one Lemma-4 primitive invocation charging
/// `rounds` rounds and `communication` words under `label`. No-op (single
/// pointer check, no formatting) when tracing is off.
void trace_primitive(TraceSession* session, const std::string& label,
                     std::uint64_t rounds, std::uint64_t communication);

}  // namespace dmpc::obs
