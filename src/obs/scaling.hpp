// Theorem-envelope fits for measured scaling series.
//
// Every headline bound reproduced here is a scaling law — Theorem 1 rounds
// are O(log n), the low-degree regime (Theorem 7) is O(log Δ + log log n),
// and peak machine load is capped by S = n^eps. This module turns a measured
// (x, y) series into a pass/fail verdict against such an envelope, shared by
// `tools/scaling_check` (the CI regression gate over BENCH_*.json artifacts)
// and `bench/repro_report` (the E1/E2 fit columns), so both judge the data
// with the same arithmetic.
//
// Method: least-squares fit y = intercept + slope * f(x) with f = log2 or
// log2∘log2, then require every point to sit within a relative residual
// `slack` of the fitted line. A series growing polynomially in x bends away
// from any logarithmic fit, so its worst residual blows past the slack on a
// doubling sweep; a conforming series fits with small residuals. The fit
// parameters are reported so regressions can also be judged against a
// baseline's slope.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dmpc::obs {

/// One measured point of a scaling series.
struct SeriesPoint {
  double x = 0;  ///< sweep axis value (n, Delta, ...)
  double y = 0;  ///< measured quantity (rounds, iterations, ...)
};

/// Shape of the theorem envelope being checked.
enum class EnvelopeKind {
  kLogX,     ///< y <= a * log2(x) + b          (Theorem 1 / Corollary 2)
  kLogLogX,  ///< y <= a * log2(log2(x)) + b    (log log n term, Theorem 7)
};

/// Verdict + fitted parameters for one series.
struct EnvelopeFit {
  bool pass = false;
  double intercept = 0;
  double slope = 0;
  double r_squared = 0;
  /// max over points of |y - fit(x)| / max(1, |fit(x)|).
  double max_rel_residual = 0;
  /// Index of the worst point (into the input series).
  std::size_t worst_index = 0;
  /// Human-readable explanation when pass == false, empty otherwise.
  std::string detail;
};

/// Fit the series against `kind` and require every residual within `slack`
/// (relative). Needs >= 2 points with distinct transformed x; fewer points
/// pass trivially with a note in `detail`.
EnvelopeFit check_envelope(const std::vector<SeriesPoint>& series,
                           EnvelopeKind kind, double slack);

/// Per-point hard cap (peak load <= machine space): fails on the first
/// index with y > cap. `series[i].x` is echoed in the failure detail.
EnvelopeFit check_cap(const std::vector<SeriesPoint>& series,
                      const std::vector<double>& caps);

}  // namespace dmpc::obs
