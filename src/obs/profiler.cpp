#include "obs/profiler.hpp"

#include <time.h>

#include <algorithm>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace dmpc::obs {

namespace {

/// Sentinel the Cluster uses for unattributed (central-primitive) checks.
constexpr std::uint64_t kAnyMachine = ~0ull;

/// Sort key for top-k ties: attributed machines first, by index.
std::uint64_t machine_rank(std::int64_t machine) {
  return machine < 0 ? ~0ull : static_cast<std::uint64_t>(machine);
}

}  // namespace

std::uint64_t gini_ppm(std::vector<std::uint64_t> samples) {
  const std::size_t n = samples.size();
  if (n < 2) return 0;
  std::sort(samples.begin(), samples.end());
  // sum_{i<j} |x_i - x_j| = sum_i (2i + 1 - n) * x_(i)  over sorted x.
  __int128 pair_sum = 0;
  __int128 total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    pair_sum += static_cast<__int128>(2 * static_cast<std::int64_t>(i) + 1 -
                                      static_cast<std::int64_t>(n)) *
                static_cast<__int128>(samples[i]);
    total += samples[i];
  }
  if (total == 0) return 0;
  const __int128 denom = static_cast<__int128>(n) * total;
  return static_cast<std::uint64_t>(pair_sum * 1000000 / denom);
}

RoundProfiler::RoundProfiler(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity) {
  DMPC_CHECK_MSG(ring_capacity_ > 0, "profiler ring capacity must be > 0");
}

void RoundProfiler::observe_load(std::uint64_t words, std::uint64_t machine) {
  window_count_ += 1;
  window_sum_ += words;
  window_max_ = std::max(window_max_, words);
  const bool attributed = machine != kAnyMachine;
  if (attributed) window_attributed_ += 1;
  if (samples_.size() < kSampleCap) {
    samples_.push_back(words);
  } else {
    samples_dropped_ += 1;
  }
  // Streaming top-k: exact over all observations regardless of sample cap.
  ProfileTopEntry entry;
  entry.machine = attributed ? static_cast<std::int64_t>(machine) : -1;
  entry.words = words;
  top_.push_back(entry);
  std::stable_sort(top_.begin(), top_.end(),
                   [](const ProfileTopEntry& a, const ProfileTopEntry& b) {
                     if (a.words != b.words) return a.words > b.words;
                     return machine_rank(a.machine) < machine_rank(b.machine);
                   });
  if (top_.size() > kTopK) top_.resize(kTopK);
}

void RoundProfiler::commit(const std::string& label, std::uint64_t round_end,
                           std::uint64_t rounds,
                           std::uint64_t total_communication) {
  ProfileRecord record;
  record.label = label;
  record.round_begin = last_round_;
  record.round_end = round_end;
  record.rounds = rounds;
  record.comm_words = total_communication - last_comm_;
  record.load_count = window_count_;
  record.load_sum = window_sum_;
  record.load_max = window_max_;
  record.mean_load = window_count_ == 0 ? 0 : window_sum_ / window_count_;
  record.gini_ppm = gini_ppm(std::move(samples_));
  record.attributed = window_attributed_;
  record.top = std::move(top_);

  auto& summary = by_label_[label];
  summary.records += 1;
  summary.rounds += rounds;
  summary.comm_words += record.comm_words;
  summary.load_count += record.load_count;
  summary.load_sum += record.load_sum;
  summary.load_max = std::max(summary.load_max, record.load_max);
  summary.gini_max_ppm = std::max(summary.gini_max_ppm, record.gini_ppm);

  load_max_ = std::max(load_max_, record.load_max);
  gini_max_ppm_ = std::max(gini_max_ppm_, record.gini_ppm);
  records_committed_ += 1;

  ring_.push_back(std::move(record));
  if (ring_.size() > ring_capacity_) ring_.pop_front();

  // Open the next window.
  window_count_ = 0;
  window_sum_ = 0;
  window_max_ = 0;
  window_attributed_ = 0;
  samples_.clear();
  top_.clear();
  last_round_ = round_end;
  last_comm_ = total_communication;
}

ProfileSnapshot RoundProfiler::snapshot() const {
  ProfileSnapshot out;
  out.enabled = true;
  out.ring_capacity = ring_capacity_;
  out.top_k = kTopK;
  out.sample_cap = kSampleCap;
  out.records_committed = records_committed_;
  out.records_dropped = records_committed_ - ring_.size();
  out.samples_dropped = samples_dropped_;
  out.load_max = load_max_;
  out.gini_max_ppm = gini_max_ppm_;
  out.by_label = by_label_;
  out.ring.assign(ring_.begin(), ring_.end());
  return out;
}

void RoundProfiler::reset() {
  window_count_ = 0;
  window_sum_ = 0;
  window_max_ = 0;
  window_attributed_ = 0;
  last_round_ = 0;
  last_comm_ = 0;
  samples_.clear();
  top_.clear();
  ring_.clear();
  by_label_.clear();
  records_committed_ = 0;
  samples_dropped_ = 0;
  load_max_ = 0;
  gini_max_ppm_ = 0;
}

void ProfileSnapshot::export_to(MetricsRegistry& registry) const {
  if (!enabled) return;
  const auto section = MetricSection::kModel;
  registry.counter("profile/records", section).add(records_committed);
  registry.counter("profile/load_max", section).add(load_max);
  registry.counter("profile/gini_max_ppm", section).add(gini_max_ppm);
  std::uint64_t rounds = 0;
  std::uint64_t comm = 0;
  std::uint64_t observations = 0;
  auto& gini_hist = registry.histogram(
      "profile/record_gini_ppm",
      {10000, 50000, 100000, 250000, 500000, 750000, 900000}, section);
  for (const auto& [label, s] : by_label) {
    rounds += s.rounds;
    comm += s.comm_words;
    observations += s.load_count;
    registry.counter("profile/gini_max_ppm", label, section)
        .add(s.gini_max_ppm);
  }
  registry.counter("profile/rounds", section).add(rounds);
  registry.counter("profile/comm_words", section).add(comm);
  registry.counter("profile/load_observations", section).add(observations);
  // The histogram covers the retained ring (the snapshot's own scope); the
  // evicted prefix is still counted in records_committed and by_label.
  for (const ProfileRecord& r : ring) gini_hist.observe(r.gini_ppm);
}

Json to_json(const ProfileTopEntry& entry) {
  return Json::object()
      .set("machine", static_cast<std::int64_t>(entry.machine))
      .set("words", entry.words);
}

Json to_json(const ProfileSnapshot& profile) {
  Json labels = Json::object();
  for (const auto& [label, s] : profile.by_label) {
    labels.set(label, Json::object()
                          .set("records", s.records)
                          .set("rounds", s.rounds)
                          .set("comm_words", s.comm_words)
                          .set("load_count", s.load_count)
                          .set("load_sum", s.load_sum)
                          .set("load_max", s.load_max)
                          .set("gini_max_ppm", s.gini_max_ppm));
  }
  Json ring = Json::array();
  for (const ProfileRecord& r : profile.ring) {
    Json top = Json::array();
    for (const ProfileTopEntry& entry : r.top) top.push(to_json(entry));
    ring.push(Json::object()
                  .set("label", r.label)
                  .set("round_begin", r.round_begin)
                  .set("round_end", r.round_end)
                  .set("rounds", r.rounds)
                  .set("comm_words", r.comm_words)
                  .set("load_count", r.load_count)
                  .set("load_sum", r.load_sum)
                  .set("load_max", r.load_max)
                  .set("mean_load", r.mean_load)
                  .set("gini_ppm", r.gini_ppm)
                  .set("attributed", r.attributed)
                  .set("top", std::move(top)));
  }
  return Json::object()
      .set("ring_capacity", profile.ring_capacity)
      .set("top_k", profile.top_k)
      .set("sample_cap", profile.sample_cap)
      .set("records_committed", profile.records_committed)
      .set("records_dropped", profile.records_dropped)
      .set("samples_dropped", profile.samples_dropped)
      .set("load_max", profile.load_max)
      .set("gini_max_ppm", profile.gini_max_ppm)
      .set("by_label", std::move(labels))
      .set("ring", std::move(ring));
}

// ---------------------------------------------------------------------------
// Host-side scope profiler
// ---------------------------------------------------------------------------

namespace detail {
thread_local AllocTally g_alloc_tally{0, 0, 0};
}  // namespace detail

AllocCounters thread_alloc_counters() {
  AllocCounters out;
  out.allocations = detail::g_alloc_tally.allocations;
  out.bytes = detail::g_alloc_tally.bytes;
  out.frees = detail::g_alloc_tally.frees;
  return out;
}

std::uint64_t thread_cpu_time_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

HostScope::HostScope(std::string name, TraceSession* session)
    : name_(std::move(name)),
      session_(session),
      wall_begin_(wall_time_ns()),
      cpu_begin_(thread_cpu_time_ns()),
      alloc_begin_(thread_alloc_counters()) {}

HostScope::~HostScope() {
  const std::uint64_t wall = wall_time_ns() - wall_begin_;
  const std::uint64_t cpu = thread_cpu_time_ns() - cpu_begin_;
  const AllocCounters now = thread_alloc_counters();
  const std::uint64_t allocs = now.allocations - alloc_begin_.allocations;
  const std::uint64_t bytes = now.bytes - alloc_begin_.bytes;

  auto& registry = MetricsRegistry::global();
  const auto section = MetricSection::kHost;
  registry.counter("host/" + name_ + "/calls", section).add(1);
  registry.counter("host/" + name_ + "/wall_ns", section).add(wall);
  registry.counter("host/" + name_ + "/cpu_ns", section).add(cpu);
  registry.counter("host/" + name_ + "/allocs", section).add(allocs);
  registry.counter("host/" + name_ + "/alloc_bytes", section).add(bytes);

  if (session_ != nullptr && session_->host_counters_enabled()) {
    session_->counter("hostprof/" + name_,
                      {arg("wall_ns", wall), arg("cpu_ns", cpu),
                       arg("allocs", allocs), arg("alloc_bytes", bytes)});
  }
}

}  // namespace dmpc::obs
