// OpenMetrics v1.0 text exposition over a MetricsSnapshot.
//
// Serves the future daemon's scrape endpoint for free: the same snapshot
// that backs the report "registry" block renders as a standards-compliant
// exposition (`# TYPE`/`# HELP` metadata, `_total` counter suffixes,
// cumulative histogram buckets with an explicit `le="+Inf"`, a terminating
// `# EOF`). Exemplar-free by design — everything the registry holds is
// integer-exact, so no sample carries a timestamp or exemplar.
//
// Mapping from the registry's flat namespace:
//  * Each registry entry becomes its own metric family. Names are prefixed
//    "dmpc_" and sanitized to the OpenMetrics charset ('/' and any other
//    invalid byte become '_'); sanitization collisions get a numeric suffix
//    so every entry appears exactly once.
//  * The registry section travels as a `section="model|recovery|host"`
//    label, preserving the determinism classes through a scrape.
//
// Output order is snapshot order (= registration order), so the exposition
// is byte-stable for a fixed program path, like every other serializer in
// the repo.
#pragma once

#include <string>

#include "obs/metrics_registry.hpp"

namespace dmpc::obs {

/// Render the full snapshot as an OpenMetrics v1.0 text exposition,
/// terminated by "# EOF\n".
std::string to_openmetrics(const MetricsSnapshot& snapshot);

/// "dmpc_" + name with every byte outside [a-zA-Z0-9_:] replaced by '_'.
/// A leading digit after the prefix is impossible (the prefix ends in '_'),
/// so the result always matches the OpenMetrics name grammar.
std::string openmetrics_metric_name(const std::string& name);

/// Escape a label value for `label="..."`: backslash, double quote, and
/// newline become \\, \", and \n. Other bytes (including UTF-8 sequences)
/// pass through verbatim, as the spec requires.
std::string openmetrics_escape_label(const std::string& value);

/// Escape HELP text: backslash and newline (the only escapes HELP admits).
std::string openmetrics_escape_help(const std::string& value);

}  // namespace dmpc::obs
