#include "obs/trace.hpp"

#include "mpc/metrics.hpp"
#include "support/check.hpp"

namespace dmpc::obs {

TraceSession::TraceSession(TraceSink* sink)
    : sink_(sink), start_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceSession::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void TraceSession::emit(EventKind kind, const std::string& name,
                        std::uint64_t span, std::vector<TraceArg> args) {
  TraceEvent event;
  event.kind = kind;
  event.name = name;
  event.seq = next_seq_++;
  event.span = span;
  event.parent = stack_.empty() ? 0 : stack_.back();
  event.depth = static_cast<std::uint32_t>(stack_.size());
  event.wall_ns = now_ns();
  event.args = std::move(args);
  sink_->on_event(event);
}

std::uint64_t TraceSession::begin_span(const std::string& name) {
  const std::uint64_t id = next_span_++;
  emit(EventKind::kSpanBegin, name, id, {});
  stack_.push_back(id);
  return id;
}

void TraceSession::end_span(std::uint64_t id, const std::string& name,
                            std::vector<TraceArg> args) {
  DMPC_CHECK_MSG(!stack_.empty() && stack_.back() == id,
                 "trace span end out of order: " << name);
  stack_.pop_back();
  // The end event reports at the *parent's* depth so begin/end pairs match.
  emit(EventKind::kSpanEnd, name, id, std::move(args));
}

void TraceSession::instant(const std::string& name,
                           std::vector<TraceArg> args) {
  if (!active()) return;
  emit(EventKind::kInstant, name, stack_.empty() ? 0 : stack_.back(),
       std::move(args));
}

void TraceSession::counter(const std::string& name,
                           std::vector<TraceArg> args) {
  if (!active()) return;
  emit(EventKind::kCounter, name, stack_.empty() ? 0 : stack_.back(),
       std::move(args));
}

void TraceSession::finish() {
  if (!active()) return;
  DMPC_CHECK_MSG(stack_.empty(),
                 "trace session finished with " << stack_.size()
                                                << " open spans");
  sink_->finish();
}

Span::Span(TraceSession* session, const std::string& name) {
  if (!enabled(session)) return;
  session_ = session;
  name_ = name;
  if (const mpc::Metrics* m = session_->metrics()) {
    rounds_before_ = m->rounds();
    comm_before_ = m->total_communication();
  }
  id_ = session_->begin_span(name_);
}

Span::~Span() {
  if (!active()) return;
  if (const mpc::Metrics* m = session_->metrics()) {
    end_args_.push_back(obs::arg("rounds", m->rounds() - rounds_before_));
    end_args_.push_back(
        obs::arg("communication", m->total_communication() - comm_before_));
    end_args_.push_back(obs::arg("peak_load", m->peak_machine_load()));
  }
  session_->end_span(id_, name_, std::move(end_args_));
}

void Span::arg(std::string key, std::uint64_t v) {
  if (active()) end_args_.push_back(obs::arg(std::move(key), v));
}
void Span::arg(std::string key, std::int64_t v) {
  if (active()) end_args_.push_back(obs::arg(std::move(key), v));
}
void Span::arg(std::string key, double v) {
  if (active()) end_args_.push_back(obs::arg(std::move(key), v));
}
void Span::arg(std::string key, std::string v) {
  if (active()) end_args_.push_back(obs::arg(std::move(key), std::move(v)));
}

void trace_primitive(TraceSession* session, const std::string& label,
                     std::uint64_t rounds, std::uint64_t communication) {
  if (!enabled(session)) return;
  session->instant(label,
                   {arg("rounds", rounds), arg("communication", communication)});
}

}  // namespace dmpc::obs
