// Round profiler: per-round load-skew timelines plus host-side scope costs.
//
// The metrics layer (mpc/metrics.hpp) keeps aggregate totals — peak load,
// total communication — which is exactly what Theorems 1/7/14 bound, but it
// erases *skew*: how unevenly a round's load is spread across machines, and
// which rounds concentrate it. This module adds two independent profilers:
//
//  * RoundProfiler (model side, golden): the Cluster forwards every
//    check_load() observation and every round charge to an attached
//    profiler. Observations between two charges form one *window*; a commit
//    folds the window into a fixed-capacity ring of per-round records
//    (count/sum/max/mean load, an integer Gini coefficient in ppm, top-k
//    loaded machines, communication delta). Everything is integer-exact and
//    driven solely by the orchestrating thread, so the resulting snapshot is
//    byte-identical across thread counts and admissible fault plans — it
//    exports into the registry kModel section and the report JSON `profile`
//    block (schema_version 5) behind SolveOptions::profile.
//
//  * HostScope (host side, non-golden): RAII scope measuring wall time,
//    thread-CPU time (CLOCK_THREAD_CPUTIME_ID), and allocation counts/bytes
//    (via the replaceable operator new/delete hooks in alloc_hooks.cpp,
//    compiled out under sanitizers/fuzzing where interception conflicts).
//    Deltas land in kHost registry counters and — when the trace session
//    opts in via enable_host_counters() — as Chrome-trace counter events.
//    Golden traces keep host counters off, so byte-identity is preserved.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace dmpc::obs {

class MetricsRegistry;
class TraceSession;

// ---------------------------------------------------------------------------
// Model-side skew timeline
// ---------------------------------------------------------------------------

/// One of the top-k most loaded slots in a record's window. `machine` is the
/// simulated machine index for attributed observations (route/load paths);
/// -1 for central Lemma-4 primitive checks, which model a representative
/// machine rather than a specific index.
struct ProfileTopEntry {
  std::int64_t machine = -1;
  std::uint64_t words = 0;
};

/// One committed window: every load observation between two round charges,
/// folded into fixed summary statistics. All fields are integers.
struct ProfileRecord {
  std::string label;            ///< Label of the charge that closed the window.
  std::uint64_t round_begin = 0;  ///< Logical round when the window opened.
  std::uint64_t round_end = 0;    ///< Logical round after the charge.
  std::uint64_t rounds = 0;       ///< Rounds charged by the closing commit.
  std::uint64_t comm_words = 0;   ///< Communication delta over the window.
  std::uint64_t load_count = 0;   ///< Load observations in the window.
  std::uint64_t load_sum = 0;
  std::uint64_t load_max = 0;
  std::uint64_t mean_load = 0;    ///< floor(load_sum / load_count).
  std::uint64_t gini_ppm = 0;     ///< Gini over retained samples, in ppm.
  std::uint64_t attributed = 0;   ///< Observations with a real machine index.
  std::vector<ProfileTopEntry> top;  ///< Top-k by words desc, machine asc.
};

/// Run-wide totals per charge label (mirrors Metrics::by_label granularity).
struct ProfileLabelSummary {
  std::uint64_t records = 0;
  std::uint64_t rounds = 0;
  std::uint64_t comm_words = 0;
  std::uint64_t load_count = 0;
  std::uint64_t load_sum = 0;
  std::uint64_t load_max = 0;
  std::uint64_t gini_max_ppm = 0;
};

/// Immutable copy of a RoundProfiler's state. `ring` holds the *last*
/// `ring_capacity` records (oldest first); `by_label` and the totals cover
/// every committed record, including evicted ones.
struct ProfileSnapshot {
  bool enabled = false;
  std::uint64_t ring_capacity = 0;
  std::uint64_t top_k = 0;
  std::uint64_t sample_cap = 0;
  std::uint64_t records_committed = 0;
  std::uint64_t records_dropped = 0;  ///< Evicted from the ring.
  std::uint64_t samples_dropped = 0;  ///< Observations beyond sample_cap.
  std::uint64_t load_max = 0;
  std::uint64_t gini_max_ppm = 0;
  std::map<std::string, ProfileLabelSummary> by_label;
  std::vector<ProfileRecord> ring;

  /// Add the snapshot's totals to the registry kModel section
  /// (profile/records, profile/rounds, profile/comm_words,
  /// profile/load_observations, profile/load_max, profile/gini_max_ppm and
  /// the profile/record_gini_ppm histogram). No-op when !enabled.
  void export_to(MetricsRegistry& registry) const;
};

/// Gini coefficient of `samples` in parts-per-million, integer-exact:
/// sum_{i<j} |x_i - x_j| * 1e6 / (n * sum x). 0 for empty/zero-sum input.
/// Sorts its argument; exposed for tests.
std::uint64_t gini_ppm(std::vector<std::uint64_t> samples);

/// Collects the skew timeline. Attach to a Cluster via set_profiler(); the
/// cluster calls observe_load() from check_load() and commit() after every
/// round charge (charge_recoverable and route_and_deliver), so windows tile
/// the round axis exactly like fault windows. Not thread-safe by design:
/// both hooks run on the orchestrating thread only.
class RoundProfiler {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 128;
  static constexpr std::size_t kTopK = 4;
  /// Retained-sample cap per window: the Gini is computed over at most this
  /// many observations (count/sum/max/top-k remain exact over all of them).
  static constexpr std::size_t kSampleCap = 1024;

  explicit RoundProfiler(std::size_t ring_capacity = kDefaultRingCapacity);

  /// One load observation; `machine` is the simulated machine index or
  /// mpc::Cluster::kAnyMachine for central primitive checks.
  void observe_load(std::uint64_t words, std::uint64_t machine);

  /// Close the current window: `round_end` is the logical round after the
  /// charge, `rounds` the amount charged, `total_communication` the
  /// cluster's cumulative communication (the commit stores the delta).
  void commit(const std::string& label, std::uint64_t round_end,
              std::uint64_t rounds, std::uint64_t total_communication);

  std::uint64_t records_committed() const { return records_committed_; }

  /// The most recently committed window, or nullptr before the first
  /// commit. Model-deterministic like the rest of the ring; the cluster
  /// reads it to attach per-window skew to round_completed events.
  const ProfileRecord* last_record() const {
    return ring_.empty() ? nullptr : &ring_.back();
  }

  ProfileSnapshot snapshot() const;
  void reset();

 private:
  std::size_t ring_capacity_;
  // Open-window state.
  std::uint64_t window_count_ = 0;
  std::uint64_t window_sum_ = 0;
  std::uint64_t window_max_ = 0;
  std::uint64_t window_attributed_ = 0;
  std::uint64_t last_round_ = 0;
  std::uint64_t last_comm_ = 0;
  std::vector<std::uint64_t> samples_;      // capped at kSampleCap
  std::vector<ProfileTopEntry> top_;        // kept sorted, capped at kTopK
  // Committed state.
  std::deque<ProfileRecord> ring_;
  std::map<std::string, ProfileLabelSummary> by_label_;
  std::uint64_t records_committed_ = 0;
  std::uint64_t samples_dropped_ = 0;
  std::uint64_t load_max_ = 0;
  std::uint64_t gini_max_ppm_ = 0;
};

/// The report JSON `profile` block: integer-only, model-deterministic.
Json to_json(const ProfileSnapshot& profile);

// ---------------------------------------------------------------------------
// Host-side scope profiler
// ---------------------------------------------------------------------------

/// Cumulative allocation tally of the calling thread. All-zero when the
/// operator new/delete hooks are compiled out (sanitizer/fuzzer builds).
struct AllocCounters {
  std::uint64_t allocations = 0;
  std::uint64_t bytes = 0;
  std::uint64_t frees = 0;
};

/// Snapshot of this thread's allocation counters.
AllocCounters thread_alloc_counters();

/// CPU time consumed by the calling thread, in nanoseconds.
std::uint64_t thread_cpu_time_ns();

namespace detail {
/// POD so the thread_local is constant-initialized — operator new may run
/// before any dynamic initializer and must never allocate recursively.
struct AllocTally {
  std::uint64_t allocations;
  std::uint64_t bytes;
  std::uint64_t frees;
};
extern thread_local AllocTally g_alloc_tally;
}  // namespace detail

/// RAII host-cost scope. On destruction adds wall/cpu/alloc deltas to the
/// kHost counters host/<name>/{calls,wall_ns,cpu_ns,allocs,alloc_bytes} and,
/// when `session` has host counters enabled, emits a Chrome-trace counter
/// event "hostprof/<name>". Host section only — never part of golden output.
class HostScope {
 public:
  explicit HostScope(std::string name, TraceSession* session = nullptr);
  ~HostScope();
  HostScope(const HostScope&) = delete;
  HostScope& operator=(const HostScope&) = delete;

 private:
  std::string name_;
  TraceSession* session_ = nullptr;
  std::uint64_t wall_begin_ = 0;
  std::uint64_t cpu_begin_ = 0;
  AllocCounters alloc_begin_;
};

}  // namespace dmpc::obs
