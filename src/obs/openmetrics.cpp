#include "obs/openmetrics.hpp"

#include <string>
#include <unordered_map>

namespace dmpc::obs {

namespace {

bool valid_name_byte(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_i64(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

}  // namespace

std::string openmetrics_metric_name(const std::string& name) {
  std::string out = "dmpc_";
  out.reserve(out.size() + name.size());
  for (char c : name) out += valid_name_byte(c) ? c : '_';
  return out;
}

std::string openmetrics_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string openmetrics_escape_help(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string to_openmetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  // Disambiguate sanitization collisions ("a/b" vs "a_b") with a numeric
  // suffix so every registry entry renders as exactly one family.
  std::unordered_map<std::string, std::size_t> seen;
  for (const MetricValue& m : snapshot.entries) {
    std::string family = openmetrics_metric_name(m.name);
    if (m.kind == MetricKind::kCounter && family.size() > 6 &&
        family.compare(family.size() - 6, 6, "_total") == 0) {
      // The family name must not carry the sample suffix itself.
      family.resize(family.size() - 6);
    }
    const auto [it, inserted] = seen.try_emplace(family, 0);
    if (!inserted) {
      ++it->second;
      family += '_';
      append_u64(family, it->second + 1);
    }
    const std::string section = metric_section_name(m.section);
    const std::string labels = "{section=\"" + section + "\"}";

    out += "# TYPE " + family + ' ';
    switch (m.kind) {
      case MetricKind::kCounter: out += "counter"; break;
      case MetricKind::kGauge: out += "gauge"; break;
      case MetricKind::kHistogram: out += "histogram"; break;
    }
    out += '\n';
    out += "# HELP " + family + ' ' +
           openmetrics_escape_help("dmpc registry metric " + m.name) + '\n';

    switch (m.kind) {
      case MetricKind::kCounter:
        out += family + "_total" + labels + ' ';
        append_i64(out, m.value);
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += family + labels + ' ';
        append_i64(out, m.value);
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < m.counts.size(); ++i) {
          cumulative += m.counts[i];
          out += family + "_bucket{section=\"" + section + "\",le=\"";
          if (i < m.bounds.size()) {
            append_u64(out, m.bounds[i]);
          } else {
            out += "+Inf";
          }
          out += "\"} ";
          append_u64(out, cumulative);
          out += '\n';
        }
        if (m.counts.empty()) {
          // A histogram always exposes at least the +Inf bucket.
          out += family + "_bucket{section=\"" + section + "\",le=\"+Inf\"} 0\n";
        }
        out += family + "_count" + labels + ' ';
        append_i64(out, m.value);
        out += '\n';
        out += family + "_sum" + labels + ' ';
        append_i64(out, m.sum);
        out += '\n';
        break;
      }
    }
  }
  out += "# EOF\n";
  return out;
}

}  // namespace dmpc::obs
