#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <map>

#include "support/parse_error.hpp"

namespace dmpc::obs {

namespace {

std::uint64_t arg_u64(const Json& args, const char* key) {
  const Json* v = args.find(key);
  if (v == nullptr || !v->is_number()) return 0;
  return v->is_int() ? static_cast<std::uint64_t>(v->as_int64())
                     : static_cast<std::uint64_t>(v->as_double());
}

struct Builder {
  TraceAnalysis out;
  std::vector<std::size_t> stack;

  std::size_t open(std::string name, std::uint64_t begin_wall) {
    AnalyzedSpan span;
    span.name = std::move(name);
    span.parent = stack.empty() ? kNoSpan : stack.back();
    span.depth = static_cast<std::uint32_t>(stack.size());
    span.wall_ns = begin_wall;  // holds the begin timestamp until close()
    const std::size_t index = out.spans.size();
    if (span.parent == kNoSpan) {
      out.roots.push_back(index);
    } else {
      out.spans[span.parent].children.push_back(index);
    }
    out.spans.push_back(std::move(span));
    stack.push_back(index);
    return index;
  }

  void close(std::uint64_t end_wall, const Json* args) {
    if (stack.empty()) return;  // truncated stream: ignore stray ends
    AnalyzedSpan& span = out.spans[stack.back()];
    stack.pop_back();
    span.wall_ns = end_wall >= span.wall_ns ? end_wall - span.wall_ns : 0;
    if (args != nullptr) {
      span.rounds = arg_u64(*args, "rounds");
      span.communication = arg_u64(*args, "communication");
    }
  }

  /// Primitive instants (trace_primitive) carry their own round charge;
  /// model them as zero-duration leaves so they can sit on the critical
  /// path. Instants without a rounds arg are progress markers — skipped.
  void leaf(std::string name, const Json* args) {
    if (args == nullptr || arg_u64(*args, "rounds") == 0) return;
    const std::size_t index = open(std::move(name), 0);
    out.spans[index].from_instant = true;
    AnalyzedSpan& span = out.spans[index];
    span.rounds = arg_u64(*args, "rounds");
    span.communication = arg_u64(*args, "communication");
    span.wall_ns = 0;
    stack.pop_back();
  }

  TraceAnalysis finish() {
    while (!stack.empty()) close(0, nullptr);  // tolerate truncated traces
    for (AnalyzedSpan& span : out.spans) {
      std::uint64_t child_rounds = 0;
      std::uint64_t child_wall = 0;
      for (std::size_t c : span.children) {
        child_rounds += out.spans[c].rounds;
        child_wall += out.spans[c].wall_ns;
      }
      span.self_rounds = span.rounds >= child_rounds
                             ? span.rounds - child_rounds
                             : 0;
      span.self_wall_ns = span.wall_ns >= child_wall
                              ? span.wall_ns - child_wall
                              : 0;
      if (span.wall_ns > 0) out.has_wall = true;
    }
    for (std::size_t r : out.roots) {
      out.total_rounds += out.spans[r].rounds;
      out.total_wall_ns += out.spans[r].wall_ns;
    }
    return std::move(out);
  }
};

TraceAnalysis analyze_jsonl(const std::string& text) {
  Builder builder;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const Json event = Json::parse(line);
    const std::string type = event.at("type").as_string();
    const std::uint64_t ts = arg_u64(event, "ts_ns");
    const Json* args = event.find("args");
    if (type == "begin") {
      builder.open(event.at("name").as_string(), ts);
    } else if (type == "end") {
      builder.close(ts, args);
    } else if (type == "instant") {
      builder.leaf(event.at("name").as_string(), args);
    }  // counters carry no tree structure
  }
  return builder.finish();
}

TraceAnalysis analyze_chrome(const Json& doc) {
  Builder builder;
  for (const Json& event : doc.at("traceEvents").items()) {
    const std::string ph = event.at("ph").as_string();
    const Json* ts_field = event.find("ts");
    const std::uint64_t ts =
        ts_field != nullptr && ts_field->is_number()
            ? static_cast<std::uint64_t>(ts_field->as_double() * 1000.0)
            : 0;
    const Json* args = event.find("args");
    if (ph == "B") {
      builder.open(event.at("name").as_string(), ts);
    } else if (ph == "E") {
      builder.close(ts, args);
    } else if (ph == "i") {
      builder.leaf(event.at("name").as_string(), args);
    }  // "C" counter samples carry no tree structure
  }
  return builder.finish();
}

}  // namespace

TraceAnalysis analyze_trace_text(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    throw ParseError(ParseErrorCode::kMalformedLine, "empty trace");
  }
  // A Chrome trace is one JSON document with a traceEvents array; JSONL
  // lines are objects too, so sniff the key rather than the first byte.
  if (text.compare(first, 1, "{") == 0 &&
      text.find("\"traceEvents\"") != std::string::npos) {
    return analyze_chrome(Json::parse(text));
  }
  return analyze_jsonl(text);
}

namespace {

bool use_rounds_weight(const TraceAnalysis& analysis, PathWeight weight) {
  if (weight == PathWeight::kRounds) return true;
  if (weight == PathWeight::kWall) return false;
  return analysis.total_rounds > 0;
}

std::uint64_t weight_of(const AnalyzedSpan& span, bool use_rounds, bool self) {
  if (use_rounds) return self ? span.self_rounds : span.rounds;
  return self ? span.self_wall_ns : span.wall_ns;
}

std::uint64_t weight_of(const TraceAnalysis& analysis, const AnalyzedSpan& span,
                        bool self) {
  return weight_of(span, use_rounds_weight(analysis, PathWeight::kAuto), self);
}

}  // namespace

std::vector<CriticalPathEntry> critical_path(const TraceAnalysis& analysis,
                                             PathWeight weight) {
  std::vector<CriticalPathEntry> path;
  if (analysis.spans.empty()) return path;
  const bool use_rounds = use_rounds_weight(analysis, weight);
  std::size_t current = kNoSpan;
  std::uint64_t best = 0;
  for (std::size_t r : analysis.roots) {
    const std::uint64_t w = weight_of(analysis.spans[r], use_rounds, false);
    if (current == kNoSpan || w > best) {
      current = r;
      best = w;
    }
  }
  while (current != kNoSpan) {
    const AnalyzedSpan& span = analysis.spans[current];
    path.push_back({current, weight_of(span, use_rounds, false),
                    weight_of(span, use_rounds, true)});
    std::size_t next = kNoSpan;
    std::uint64_t next_weight = 0;
    for (std::size_t c : span.children) {
      const std::uint64_t w = weight_of(analysis.spans[c], use_rounds, false);
      if (next == kNoSpan || w > next_weight) {
        next = c;
        next_weight = w;
      }
    }
    // Stop when the remaining weight is in this span's own work rather
    // than any child: the path ends at the heaviest contributor.
    if (next == kNoSpan || next_weight == 0) break;
    current = next;
  }
  return path;
}

std::vector<HotSpan> hot_spans(const TraceAnalysis& analysis) {
  std::map<std::string, HotSpan> by_name;
  for (const AnalyzedSpan& span : analysis.spans) {
    HotSpan& hot = by_name[span.name];
    hot.name = span.name;
    hot.count += 1;
    hot.self_rounds += span.self_rounds;
    hot.self_wall_ns += span.self_wall_ns;
    hot.communication += span.communication;
  }
  std::vector<HotSpan> out;
  out.reserve(by_name.size());
  for (auto& [name, hot] : by_name) out.push_back(std::move(hot));
  const bool use_rounds = analysis.total_rounds > 0;
  std::sort(out.begin(), out.end(),
            [use_rounds](const HotSpan& a, const HotSpan& b) {
              const std::uint64_t wa = use_rounds ? a.self_rounds : a.self_wall_ns;
              const std::uint64_t wb = use_rounds ? b.self_rounds : b.self_wall_ns;
              if (wa != wb) return wa > wb;
              return a.name < b.name;
            });
  return out;
}

std::string folded_stacks(const TraceAnalysis& analysis) {
  std::map<std::string, std::uint64_t> folded;
  std::vector<std::string> names(analysis.spans.size());
  for (std::size_t i = 0; i < analysis.spans.size(); ++i) {
    const AnalyzedSpan& span = analysis.spans[i];
    names[i] = span.parent == kNoSpan ? span.name
                                      : names[span.parent] + ";" + span.name;
    const std::uint64_t self = weight_of(analysis, span, true);
    if (self > 0) folded[names[i]] += self;
  }
  std::string out;
  for (const auto& [stack, weight] : folded) {
    out += stack;
    out += ' ';
    out += std::to_string(weight);
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Profile skew gate
// ---------------------------------------------------------------------------

namespace {

std::uint64_t gate_limit(const Json& thresholds, const std::string& label,
                         const char* key, std::uint64_t fallback) {
  std::uint64_t limit = fallback;
  if (const Json* v = thresholds.find(key); v != nullptr && v->is_number()) {
    limit = static_cast<std::uint64_t>(v->as_int64());
  }
  const Json* labels = thresholds.find("labels");
  if (labels != nullptr && !label.empty()) {
    if (const Json* entry = labels->find(label); entry != nullptr) {
      if (const Json* v = entry->find(key); v != nullptr && v->is_number()) {
        limit = static_cast<std::uint64_t>(v->as_int64());
      }
    }
  }
  return limit;
}

constexpr std::uint64_t kNoLimit = ~0ull;

}  // namespace

std::vector<GateViolation> check_profile_gate(const Json& profile,
                                              const Json& thresholds,
                                              const std::string& context) {
  std::vector<GateViolation> violations;
  const std::string prefix = context.empty() ? "" : context + ".";
  if (const Json* labels = profile.find("by_label"); labels != nullptr) {
    for (const auto& [label, summary] : labels->fields()) {
      const std::uint64_t cap =
          gate_limit(thresholds, label, "max_gini_ppm", kNoLimit);
      const std::uint64_t gini = arg_u64(summary, "gini_max_ppm");
      if (gini > cap) {
        violations.push_back(
            {prefix + label, "gini_max_ppm " + std::to_string(gini) +
                                 " > limit " + std::to_string(cap)});
      }
    }
  }
  if (const Json* ring = profile.find("ring"); ring != nullptr) {
    for (const Json& record : ring->items()) {
      const std::string label =
          record.find("label") != nullptr ? record.at("label").as_string() : "";
      const std::string rounds = "rounds [" +
                                 std::to_string(arg_u64(record, "round_begin")) +
                                 ", " +
                                 std::to_string(arg_u64(record, "round_end")) +
                                 ")";
      const std::uint64_t gini_cap =
          gate_limit(thresholds, label, "max_gini_ppm", kNoLimit);
      if (const std::uint64_t gini = arg_u64(record, "gini_ppm");
          gini > gini_cap) {
        violations.push_back({prefix + label + " " + rounds,
                              "gini_ppm " + std::to_string(gini) + " > limit " +
                                  std::to_string(gini_cap)});
      }
      const std::uint64_t load_cap =
          gate_limit(thresholds, label, "max_load_max", kNoLimit);
      if (const std::uint64_t load = arg_u64(record, "load_max");
          load > load_cap) {
        violations.push_back({prefix + label + " " + rounds,
                              "load_max " + std::to_string(load) + " > limit " +
                                  std::to_string(load_cap)});
      }
      const std::uint64_t comm_cap =
          gate_limit(thresholds, label, "max_record_comm_words", kNoLimit);
      if (const std::uint64_t comm = arg_u64(record, "comm_words");
          comm > comm_cap) {
        violations.push_back({prefix + label + " " + rounds,
                              "comm_words " + std::to_string(comm) +
                                  " > limit " + std::to_string(comm_cap)});
      }
    }
  }
  return violations;
}

}  // namespace dmpc::obs
