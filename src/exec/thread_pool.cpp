#include "exec/thread_pool.hpp"

#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"

namespace dmpc::exec {

namespace {
thread_local bool t_in_worker = false;

/// RAII flag so nested run() calls (and user callables that ask) can detect
/// they are already inside a pool task.
struct WorkerScope {
  bool previous;
  WorkerScope() : previous(t_in_worker) { t_in_worker = true; }
  ~WorkerScope() { t_in_worker = previous; }
};
}  // namespace

bool ThreadPool::in_worker() { return t_in_worker; }

ThreadPool::ThreadPool(std::uint32_t threads) {
  auto& registry = obs::MetricsRegistry::global();
  const auto host = obs::MetricSection::kHost;
  tasks_metric_ = &registry.counter("exec/pool_tasks", host);
  steals_metric_ = &registry.counter("exec/steals", host);
  imbalance_metric_ = &registry.gauge("exec/imbalance_max_tasks", host);
  cpu_metric_ = &registry.counter("exec/task_cpu_ns", host);
  allocs_metric_ = &registry.counter("exec/task_allocs", host);
  alloc_bytes_metric_ = &registry.counter("exec/task_alloc_bytes", host);
  queue_metric_ = &registry.gauge("exec/queue_depth", host);
  registry.gauge("exec/pool_threads", host)
      .record_max(static_cast<std::int64_t>(threads));
  const std::uint32_t workers = threads <= 1 ? 0 : threads - 1;
  workers_.reserve(workers);
  for (std::uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::claim_tasks(const std::function<void(std::uint64_t)>& task,
                             std::uint64_t tasks, bool is_worker) {
  WorkerScope scope;
  // Per-batch host profiling at the task boundary: thread-CPU time and
  // allocation deltas for the claim loop land in kHost counters (one clock
  // read + tally snapshot per batch per thread, not per task).
  const std::uint64_t cpu_begin = obs::thread_cpu_time_ns();
  const obs::AllocCounters alloc_begin = obs::thread_alloc_counters();
  std::uint64_t claimed = 0;
  while (true) {
    const std::uint64_t t = next_.fetch_add(1, std::memory_order_relaxed);
    if (t >= tasks) break;
    task(t);
    ++claimed;
    std::lock_guard<std::mutex> lock(mutex_);
    if (++completed_ == job_tasks_) done_cv_.notify_all();
  }
  if (claimed == 0) return;
  tasks_metric_->add(claimed);
  if (is_worker) steals_metric_->add(claimed);
  imbalance_metric_->record_max(static_cast<std::int64_t>(claimed));
  const obs::AllocCounters alloc_end = obs::thread_alloc_counters();
  cpu_metric_->add(obs::thread_cpu_time_ns() - cpu_begin);
  allocs_metric_->add(alloc_end.allocations - alloc_begin.allocations);
  alloc_bytes_metric_->add(alloc_end.bytes - alloc_begin.bytes);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(std::uint64_t)>* job = nullptr;
    std::uint64_t tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      // Adopt the current batch while holding the lock: run() cannot retire
      // the batch (and reuse next_ for a later one) until active_claimers_
      // drops back to zero, so the copied job pointer stays valid for the
      // whole claim loop.
      seen_generation = generation_;
      job = job_;
      tasks = job_tasks_;
      ++active_claimers_;
    }
    claim_tasks(*job, tasks, /*is_worker=*/true);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_claimers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(std::uint64_t tasks,
                     const std::function<void(std::uint64_t)>& task) {
  if (tasks == 0) return;
  if (workers_.empty() || in_worker()) {
    // No workers, or already inside a pool task: execute inline, in order.
    WorkerScope scope;
    for (std::uint64_t t = 0; t < tasks; ++t) task(t);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &task;
    job_tasks_ = tasks;
    completed_ = 0;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  // Live queue depth for the host sampler: the batch size while claiming
  // is in flight, back to zero once the batch retires.
  queue_metric_->set(static_cast<std::int64_t>(tasks));
  work_cv_.notify_all();
  claim_tasks(task, tasks, /*is_worker=*/false);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock,
                  [&] { return completed_ == job_tasks_ && active_claimers_ == 0; });
    job_ = nullptr;
  }
  queue_metric_->set(0);
}

}  // namespace dmpc::exec
