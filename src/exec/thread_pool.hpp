// Reusable host thread pool for per-machine local computation.
//
// The MPC model charges nothing for work a machine does on its own words —
// but this simulator runs on one host, so "free" local computation is the
// wall-time bottleneck (seed evaluation over O(Delta^4)-sized families
// dominates every pipeline). The pool parallelizes exactly those loops.
//
// Design:
//  - One pool, many batches: `run(tasks, fn)` executes fn(0..tasks-1) and
//    blocks until all complete. Workers persist across batches.
//  - The calling thread participates, so a pool built for T threads uses
//    T OS threads total (T-1 workers + the caller).
//  - Tasks are claimed dynamically (atomic counter) for load balance; this
//    is safe for determinism because callers (exec/parallel.hpp) make the
//    *work decomposition* fixed — which thread runs a chunk never affects
//    what the chunk computes or where it writes.
//  - Tasks must not throw: exec::Executor wraps user callables and captures
//    exceptions before they reach the pool (rethrowing the lowest-index one
//    so failures are deterministic too).
//  - Nested run() from inside a task executes inline on the claiming thread
//    (see in_worker()); parallel helpers use this to make nesting safe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dmpc::obs {
class Counter;
class Gauge;
}

namespace dmpc::exec {

class ThreadPool {
 public:
  /// A pool that uses `threads` OS threads in total (>= 1; spawns
  /// threads - 1 workers, the caller contributes the last).
  explicit ThreadPool(std::uint32_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads participating in a batch (workers + caller).
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(workers_.size()) + 1;
  }

  /// Execute task(0), ..., task(tasks - 1), in any order, possibly
  /// concurrently; returns when all have completed. `task` must not throw.
  /// Calling run() from inside a task executes the nested batch inline.
  /// One orchestrating thread per pool: run() must not be invoked from two
  /// threads concurrently (the Executor wrappers honor this).
  void run(std::uint64_t tasks, const std::function<void(std::uint64_t)>& task);

  /// True when the current thread is executing a pool task (any pool).
  static bool in_worker();

 private:
  void worker_loop();
  void claim_tasks(const std::function<void(std::uint64_t)>& task,
                   std::uint64_t tasks, bool is_worker);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Batch state, guarded by mutex_ (next_ is additionally atomic so claiming
  // does not serialize on the mutex).
  const std::function<void(std::uint64_t)>* job_ = nullptr;
  std::uint64_t job_tasks_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t generation_ = 0;
  std::uint32_t active_claimers_ = 0;  ///< Workers inside the claim loop.
  bool stop_ = false;
  std::atomic<std::uint64_t> next_{0};
  std::vector<std::thread> workers_;

  // Host-section observability (obs::MetricsRegistry::global()): dynamic
  // task claiming makes these scheduling-dependent, so they are non-golden
  // by construction and never enter report JSON. Handles are resolved once
  // here so the claim loop pays one relaxed add per batch per thread.
  obs::Counter* tasks_metric_ = nullptr;    ///< exec/pool_tasks
  obs::Counter* steals_metric_ = nullptr;   ///< exec/steals (worker-claimed)
  obs::Gauge* imbalance_metric_ = nullptr;  ///< exec/imbalance_max_tasks
  obs::Counter* cpu_metric_ = nullptr;      ///< exec/task_cpu_ns
  obs::Counter* allocs_metric_ = nullptr;   ///< exec/task_allocs
  obs::Counter* alloc_bytes_metric_ = nullptr;  ///< exec/task_alloc_bytes
  obs::Gauge* queue_metric_ = nullptr;      ///< exec/queue_depth
};

}  // namespace dmpc::exec
