#include "exec/parallel.hpp"

#include <exception>
#include <mutex>
#include <thread>

namespace dmpc::exec {

Executor Executor::with_threads(std::uint32_t threads) {
  std::uint32_t resolved = threads;
  if (resolved == 0) {
    resolved = std::max(1u, std::thread::hardware_concurrency());
  }
  Executor ex;
  if (resolved > 1) ex.pool_ = std::make_shared<ThreadPool>(resolved);
  return ex;
}

void Executor::run_chunks_pooled(
    std::uint64_t chunks,
    const std::function<void(std::uint64_t)>& chunk_fn) const {
  // Capture at most one exception per batch — the lowest-index chunk's — so
  // error paths are as deterministic as success paths.
  std::mutex error_mutex;
  std::exception_ptr error;
  std::uint64_t error_chunk = 0;
  pool_->run(chunks, [&](std::uint64_t c) {
    try {
      chunk_fn(c);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (error == nullptr || c < error_chunk) {
        error = std::current_exception();
        error_chunk = c;
      }
    }
  });
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace dmpc::exec
