#include "exec/parallel.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics_registry.hpp"

namespace dmpc::exec {

namespace {

struct DispatchMetrics {
  obs::Counter* inline_dispatches;
  obs::Counter* inline_chunks;
  obs::Counter* pool_dispatches;
  obs::Counter* pool_chunks;
};

DispatchMetrics& dispatch_metrics() {
  static DispatchMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::global();
    const auto host = obs::MetricSection::kHost;
    return DispatchMetrics{
        &registry.counter("exec/inline_dispatches", host),
        &registry.counter("exec/inline_chunks", host),
        &registry.counter("exec/pool_dispatches", host),
        &registry.counter("exec/pool_chunks", host),
    };
  }();
  return metrics;
}

}  // namespace

void note_inline_dispatch(std::uint64_t chunks) {
  DispatchMetrics& metrics = dispatch_metrics();
  metrics.inline_dispatches->add(1);
  metrics.inline_chunks->add(chunks);
}

void note_pool_dispatch(std::uint64_t chunks) {
  DispatchMetrics& metrics = dispatch_metrics();
  metrics.pool_dispatches->add(1);
  metrics.pool_chunks->add(chunks);
}

Executor Executor::with_threads(std::uint32_t threads) {
  std::uint32_t resolved = threads;
  if (resolved == 0) {
    resolved = std::max(1u, std::thread::hardware_concurrency());
  }
  Executor ex;
  if (resolved > 1) ex.pool_ = std::make_shared<ThreadPool>(resolved);
  return ex;
}

void Executor::run_chunks_pooled(
    std::uint64_t chunks,
    const std::function<void(std::uint64_t)>& chunk_fn) const {
  // Capture at most one exception per batch — the lowest-index chunk's — so
  // error paths are as deterministic as success paths.
  note_pool_dispatch(chunks);
  std::mutex error_mutex;
  std::exception_ptr error;
  std::uint64_t error_chunk = 0;
  pool_->run(chunks, [&](std::uint64_t c) {
    try {
      chunk_fn(c);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (error == nullptr || c < error_chunk) {
        error = std::current_exception();
        error_chunk = c;
      }
    }
  });
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace dmpc::exec
