// Deterministic host-parallel loops.
//
// Every helper here guarantees *bitwise-identical results regardless of
// thread count* (including 1). The mechanism is always the same three rules:
//
//  1. Static chunking: the decomposition of [begin, end) into chunks depends
//     only on the range size and the `grain` argument — never on how many
//     threads execute them. Which thread runs a chunk is dynamic (for load
//     balance) but cannot affect what the chunk computes.
//  2. Ordered reduction: map_reduce folds within each chunk left-to-right
//     and then folds the chunk partials left-to-right — a fixed association,
//     so even non-associative combines (floating-point sums) are
//     reproducible across thread counts.
//  3. Lowest-index selection: find_first returns the smallest qualifying
//     index of the whole range, not "whichever thread got there first";
//     exceptions thrown by callables are rethrown for the lowest failing
//     chunk.
//
// The serial path (no pool, or nested inside a pool task) runs the *same*
// chunked algorithm, which is what makes 1-thread and N-thread runs agree
// even for floating-point reductions.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"

namespace dmpc::exec {

/// Host-section observability hooks (obs::MetricsRegistry::global()); see
/// parallel.cpp. Out-of-line so this header stays registry-free.
void note_inline_dispatch(std::uint64_t chunks);
void note_pool_dispatch(std::uint64_t chunks);

/// A copyable handle on an optional shared thread pool. Default-constructed
/// (or with_threads(1)) it is serial: every helper runs inline with zero
/// threading overhead. Cheap to copy; copies share the pool.
class Executor {
 public:
  Executor() = default;

  /// Serial executor (no pool).
  static Executor serial() { return Executor(); }

  /// An executor using `threads` OS threads; 0 = hardware concurrency,
  /// 1 = serial. The pool is created eagerly and shared by copies.
  static Executor with_threads(std::uint32_t threads);

  /// Threads a helper may use (1 when serial).
  std::uint32_t threads() const { return pool_ ? pool_->size() : 1; }

  bool parallel() const { return pool_ != nullptr; }

  /// fn(i) for every i in [begin, end). fn must be safe to call concurrently
  /// for distinct i (writes to disjoint state only). `grain` = indices per
  /// chunk; results never depend on it, only scheduling overhead does.
  template <typename Fn>
  void for_each(std::uint64_t begin, std::uint64_t end, Fn&& fn,
                std::uint64_t grain = 1) const {
    if (end <= begin) return;
    const std::uint64_t g = grain == 0 ? 1 : grain;
    const std::uint64_t chunks = (end - begin + g - 1) / g;
    run_chunks(chunks, [&](std::uint64_t c) {
      const std::uint64_t lo = begin + c * g;
      const std::uint64_t hi = std::min(end, lo + g);
      for (std::uint64_t i = lo; i < hi; ++i) fn(i);
    });
  }

  /// Ordered reduction: returns
  ///   combine(...combine(init, P_0)..., P_{k-1})
  /// where chunk partial P_c = map(lo_c) folded left-to-right with combine
  /// over the chunk's indices. The association is fixed by `grain`, so the
  /// result is identical for every thread count (floating-point included).
  template <typename T, typename Map, typename Combine>
  T map_reduce(std::uint64_t begin, std::uint64_t end, T init, Map&& map,
               Combine&& combine, std::uint64_t grain = 1024) const {
    if (end <= begin) return init;
    const std::uint64_t g = grain == 0 ? 1 : grain;
    const std::uint64_t chunks = (end - begin + g - 1) / g;
    std::vector<T> partials(chunks);
    run_chunks(chunks, [&](std::uint64_t c) {
      const std::uint64_t lo = begin + c * g;
      const std::uint64_t hi = std::min(end, lo + g);
      T acc = map(lo);
      for (std::uint64_t i = lo + 1; i < hi; ++i) acc = combine(acc, map(i));
      partials[c] = std::move(acc);
    });
    T result = std::move(init);
    for (T& p : partials) result = combine(std::move(result), std::move(p));
    return result;
  }

  /// Smallest i in [begin, end) with pred(i), or `end` if none. pred must be
  /// pure (it may be skipped for indices above an already-found match and
  /// may run more than the serial short-circuit count).
  template <typename Pred>
  std::uint64_t find_first(std::uint64_t begin, std::uint64_t end, Pred&& pred,
                           std::uint64_t grain = 1) const {
    if (end <= begin) return end;
    const std::uint64_t g = grain == 0 ? 1 : grain;
    const std::uint64_t chunks = (end - begin + g - 1) / g;
    std::atomic<std::uint64_t> best{end};
    run_chunks(chunks, [&](std::uint64_t c) {
      const std::uint64_t lo = begin + c * g;
      // A chunk strictly above the current best cannot improve it.
      if (lo >= best.load(std::memory_order_relaxed)) return;
      const std::uint64_t hi = std::min(end, lo + g);
      for (std::uint64_t i = lo; i < hi; ++i) {
        if (pred(i)) {
          std::uint64_t cur = best.load(std::memory_order_relaxed);
          while (i < cur && !best.compare_exchange_weak(
                                cur, i, std::memory_order_relaxed)) {
          }
          return;
        }
      }
    });
    return best.load(std::memory_order_relaxed);
  }

 private:
  /// Dispatch `chunks` chunk bodies over the pool (or inline, in order, when
  /// serial). Exceptions from chunk bodies are captured and the one from the
  /// lowest-index chunk is rethrown after all chunks finish.
  template <typename ChunkFn>
  void run_chunks(std::uint64_t chunks, ChunkFn&& chunk_fn) const {
    if (pool_ == nullptr || chunks == 1 || ThreadPool::in_worker()) {
      note_inline_dispatch(chunks);
      for (std::uint64_t c = 0; c < chunks; ++c) chunk_fn(c);
      return;
    }
    run_chunks_pooled(chunks, chunk_fn);
  }

  void run_chunks_pooled(std::uint64_t chunks,
                         const std::function<void(std::uint64_t)>& chunk_fn) const;

  std::shared_ptr<ThreadPool> pool_;
};

/// Sort `values` with a deterministic parallel merge sort: fixed-size sorted
/// runs merged pairwise in index order. The decomposition depends only on
/// `n` — never on the executor — so the exact output permutation (including
/// the order of equal elements, which may differ from std::sort's) is
/// byte-identical for every thread count; a serial executor runs the same
/// runs and merges inline, in order.
template <typename T, typename Less>
void parallel_sort(const Executor& ex, std::vector<T>& values, Less less) {
  constexpr std::uint64_t kRun = 1 << 15;
  const std::uint64_t n = values.size();
  if (n <= kRun) {
    std::sort(values.begin(), values.end(), less);
    return;
  }
  const std::uint64_t runs = (n + kRun - 1) / kRun;
  ex.for_each(0, runs, [&](std::uint64_t r) {
    const std::uint64_t lo = r * kRun;
    const std::uint64_t hi = std::min(n, lo + kRun);
    std::sort(values.begin() + lo, values.begin() + hi, less);
  });
  for (std::uint64_t width = kRun; width < n; width *= 2) {
    const std::uint64_t pairs = (n + 2 * width - 1) / (2 * width);
    ex.for_each(0, pairs, [&](std::uint64_t p) {
      const std::uint64_t lo = p * 2 * width;
      const std::uint64_t mid = std::min(n, lo + width);
      const std::uint64_t hi = std::min(n, lo + 2 * width);
      if (mid < hi) {
        std::inplace_merge(values.begin() + lo, values.begin() + mid,
                           values.begin() + hi, less);
      }
    });
  }
}

template <typename T>
void parallel_sort(const Executor& ex, std::vector<T>& values) {
  parallel_sort(ex, values, std::less<T>());
}

}  // namespace dmpc::exec
