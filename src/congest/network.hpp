// The CONGEST model — the paper's §6 names it as the next target for this
// derandomization method ("low space or limited bandwidth models (e.g., the
// CONGEST model)"), so the library ships it as an extension module.
//
// Nodes of the input graph compute in synchronous rounds; per round, each
// node may send one B = O(log n)-bit message over each incident edge.
// As with the other model adapters, algorithms execute centrally while
// rounds and message volume are charged faithfully. Global coordination
// (leader election, seed voting) happens over a BFS spanning tree whose
// depth D enters the round bill — the quantity that distinguishes CONGEST
// bounds from CONGESTED CLIQUE ones.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "mpc/metrics.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace dmpc::congest {

class CongestNetwork {
 public:
  explicit CongestNetwork(const graph::Graph& g, std::uint32_t message_bits = 0)
      : g_(&g),
        message_bits_(message_bits != 0
                          ? message_bits
                          : 2 * static_cast<std::uint32_t>(ceil_log2(
                                    std::max<std::uint64_t>(g.num_nodes(), 2)))) {
    DMPC_CHECK(message_bits_ >= 1);
  }

  const graph::Graph& graph() const { return *g_; }
  std::uint32_t message_bits() const { return message_bits_; }

  mpc::Metrics& metrics() { return metrics_; }
  const mpc::Metrics& metrics() const { return metrics_; }

  /// Charge r synchronous rounds (communication: every edge may carry one
  /// message each way per round).
  void charge_rounds(std::uint64_t r, const std::string& label) {
    metrics_.charge_rounds(r, label);
    metrics_.add_communication(r * 2 * g_->num_edges(), label);
  }

  /// Charge a converge-cast + broadcast over a BFS tree of depth `depth`,
  /// carrying `values` B-bit values (pipelined: depth + values rounds up,
  /// the same coming down).
  void charge_tree_aggregation(std::uint64_t depth, std::uint64_t values,
                               const std::string& label) {
    charge_rounds(2 * (depth + values), label);
  }

 private:
  const graph::Graph* g_;
  std::uint32_t message_bits_;
  mpc::Metrics metrics_;
};

}  // namespace dmpc::congest
