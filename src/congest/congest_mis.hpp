// Deterministic MIS in the CONGEST model — the §6 extension.
//
// One Luby phase at a time: priorities come from the pairwise family over
// node ids (O(log n)-bit seed). The seed is committed by a best-of-K search
// coordinated over a BFS spanning tree: every node evaluates its local term
// for all K candidates, a pipelined converge-cast aggregates the K objective
// values (depth + K rounds up, the same down), and the root broadcasts the
// winner. Each phase therefore costs O(D + K) rounds, for D = BFS depth —
// the CONGEST analogue of the paper's O(1)-round MPC steps, with the tree
// depth playing the role the fan-in-S aggregation plays in MPC.
//
// The randomized baseline (luby_mis_congest) spends O(1) rounds per phase;
// the deterministic overhead is exactly the O(D + K) coordination — which
// experiment E15 measures.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "mpc/metrics.hpp"

namespace dmpc::congest {

struct CongestMisConfig {
  std::uint64_t candidates_per_phase = 16;  ///< K.
  std::uint64_t max_phases = 100000;
};

struct CongestMisResult {
  std::vector<bool> in_set;
  std::uint64_t phases = 0;
  std::uint32_t bfs_depth = 0;
  mpc::Metrics metrics;
};

/// Deterministic CONGEST MIS (per-phase derandomized Luby).
CongestMisResult congest_mis(const graph::Graph& g,
                             const CongestMisConfig& config = {});

/// Randomized baseline: classic Luby, one O(1)-round phase each.
CongestMisResult luby_mis_congest(const graph::Graph& g, std::uint64_t seed);

}  // namespace dmpc::congest
