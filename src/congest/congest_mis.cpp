#include "congest/congest_mis.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "hash/kwise.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dmpc::congest {

using graph::Graph;
using graph::NodeId;

namespace {

/// BFS depth from node 0 within each component (max over components; a
/// disconnected graph runs the protocol per component in parallel).
std::uint32_t bfs_depth(const Graph& g) {
  std::uint32_t depth = 0;
  std::vector<bool> seen(g.num_nodes(), false);
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (seen[start]) continue;
    const auto dist = graph::bfs_distances(g, start);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] != UINT32_MAX) {
        seen[v] = true;
        depth = std::max(depth, dist[v]);
      }
    }
  }
  return depth;
}

/// One Luby phase under hash fn: winners = alive local minima with a live
/// neighbor. Returns winners; does not modify alive.
std::vector<NodeId> phase_winners(const Graph& g,
                                  const std::vector<bool>& alive,
                                  const hash::HashFn& fn) {
  std::vector<NodeId> winners;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!alive[v]) continue;
    const std::uint64_t zv = fn.raw(v);
    bool is_min = true;
    bool has_live_neighbor = false;
    for (NodeId u : g.neighbors(v)) {
      if (!alive[u]) continue;
      has_live_neighbor = true;
      const std::uint64_t zu = fn.raw(u);
      if (zu < zv || (zu == zv && u < v)) {
        is_min = false;
        break;
      }
    }
    if (is_min && has_live_neighbor) winners.push_back(v);
  }
  return winners;
}

/// Edges removed if `winners` and their neighborhoods leave the graph.
std::uint64_t removed_edges(const Graph& g, const std::vector<bool>& alive,
                            const std::vector<NodeId>& winners) {
  std::vector<bool> live = alive;
  for (NodeId v : winners) {
    live[v] = false;
    for (NodeId u : g.neighbors(v)) live[u] = false;
  }
  return graph::alive_edge_count(g, alive) - graph::alive_edge_count(g, live);
}

}  // namespace

CongestMisResult congest_mis(const Graph& g, const CongestMisConfig& config) {
  CongestNetwork net(g);
  CongestMisResult result;
  result.in_set.assign(g.num_nodes(), false);
  if (g.num_nodes() == 0) return result;
  std::vector<bool> alive(g.num_nodes(), true);
  result.bfs_depth = bfs_depth(g);
  // Building the BFS coordination tree: D rounds, once.
  net.charge_rounds(std::max<std::uint32_t>(result.bfs_depth, 1),
                    "congest/bfs_tree");

  const std::uint64_t domain = std::max<std::uint64_t>(2, g.num_nodes());
  hash::KWiseFamily family(domain, domain, /*k=*/2);

  while (graph::alive_edge_count(g, alive) > 0) {
    DMPC_CHECK_MSG(result.phases < config.max_phases, "phase cap exceeded");
    ++result.phases;
    // Deterministic best-of-K: stride-scrambled candidates (see
    // derand::SearchOptions), objective = edges removed.
    std::vector<NodeId> best;
    std::uint64_t best_removed = 0;
    bool have = false;
    for (std::uint64_t t = 0; t < config.candidates_per_phase; ++t) {
      const auto seed = static_cast<std::uint64_t>(
          (static_cast<__uint128_t>(t) * 0xBF58476D1CE4E5B9ULL +
           result.phases * 0x9E3779B97F4A7C15ULL) %
          family.seed_count());
      const auto winners = phase_winners(g, alive, family.at(seed));
      const auto removed = removed_edges(g, alive, winners);
      if (!have || removed > best_removed) {
        have = true;
        best_removed = removed;
        best = winners;
      }
    }
    DMPC_CHECK_MSG(have && !best.empty(), "CONGEST phase made no progress");
    // Round bill: 2 local rounds (neighbors exchange priorities; winners
    // announce) + the tree aggregation of K objective values + broadcast.
    net.charge_rounds(2, "congest/phase_local");
    net.charge_tree_aggregation(result.bfs_depth,
                                config.candidates_per_phase,
                                "congest/phase_vote");
    for (NodeId v : best) {
      result.in_set[v] = true;
      alive[v] = false;
      for (NodeId u : g.neighbors(v)) alive[u] = false;
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive[v]) result.in_set[v] = true;
  }
  result.metrics = net.metrics();
  return result;
}

CongestMisResult luby_mis_congest(const Graph& g, std::uint64_t seed) {
  CongestNetwork net(g);
  CongestMisResult result;
  result.in_set.assign(g.num_nodes(), false);
  if (g.num_nodes() == 0) return result;
  std::vector<bool> alive(g.num_nodes(), true);

  Rng rng(seed);
  const std::uint64_t domain = std::max<std::uint64_t>(2, g.num_nodes());
  hash::KWiseFamily family(domain, domain, /*k=*/2);
  while (graph::alive_edge_count(g, alive) > 0) {
    ++result.phases;
    const auto winners = phase_winners(
        g, alive, family.at(rng.next_below(family.seed_count())));
    // Retry on a fruitless draw (possible but rare with random seeds).
    if (winners.empty()) continue;
    net.charge_rounds(2, "congest/phase_local");
    for (NodeId v : winners) {
      result.in_set[v] = true;
      alive[v] = false;
      for (NodeId u : g.neighbors(v)) alive[u] = false;
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive[v]) result.in_set[v] = true;
  }
  result.metrics = net.metrics();
  return result;
}

}  // namespace dmpc::congest
