// The method of conditional expectations (paper §2.4), verbatim.
//
// The seed is fixed chunk by chunk (most significant first). For each chunk
// and each candidate digit i, machines compute E[q_x(h) | Xi_i] for their
// local terms; one Lemma-4 aggregation sums them, and the maximizing digit
// is fixed. Since E[q] >= Q, some candidate always has conditional
// expectation >= the running bound, so the final fully-fixed seed satisfies
// q(h*) >= Q — which fix_seed verifies with a real evaluation before
// returning.
//
// ExhaustiveConditional upgrades any Objective to a ConditionalObjective by
// computing conditional expectations exactly — averaging the true objective
// over every suffix completion. That is only feasible for small seed spaces
// (tests, §5's O(log Delta)-bit families); the large-family production path
// is derand::find_seed (see seed_search.hpp for the guarantee argument).
#pragma once

#include <cstdint>
#include <string>

#include "derand/engine_options.hpp"
#include "derand/objective.hpp"
#include "hash/seed.hpp"
#include "mpc/cluster.hpp"

namespace dmpc::derand {

struct FixResult {
  std::uint64_t seed = 0;
  double value = 0.0;          ///< Exact objective at the committed seed.
  std::uint64_t chunks = 0;    ///< Chunks fixed (== space.chunk_count()).
};

/// CE-sweep knobs on top of the shared engine surface: label names the
/// round charges, candidates_per_batch bounds the digits dispatched per
/// oracle call, and max_trials caps the total candidates swept across
/// chunks (a violated cap is a CheckFailure — the chunked radix total is
/// known up front, so hitting it means a misconfigured space).
struct FixOptions : EngineOptions {
  FixOptions() { label = "cond_expect"; }

  /// The proved lower bound Q on E[q]; the committed seed must achieve it
  /// (CheckFailure otherwise — that would falsify the conditional oracle).
  double guarantee = 0.0;
};

/// Run the method of conditional expectations over the chunked seed space.
FixResult fix_seed(mpc::Cluster& cluster, const ConditionalObjective& objective,
                   const hash::SeedSpace& space, const FixOptions& options);

/// Exact conditional expectations by suffix enumeration (small spaces only).
class ExhaustiveConditional final : public ConditionalObjective {
 public:
  ExhaustiveConditional(const Objective& base, const hash::SeedSpace& space)
      : base_(&base), space_(&space) {}

  double evaluate(std::uint64_t seed) const override {
    return base_->evaluate(seed);
  }
  std::uint64_t term_count() const override { return base_->term_count(); }

  double conditional_expectation(const std::vector<std::uint64_t>& prefix,
                                 std::uint64_t candidate) const override;

  /// Routes the suffix enumeration through base->evaluate_batch (ascending
  /// suffix order, so the floating-point sum matches the scalar oracle
  /// bit-for-bit).
  void conditional_expectation_batch(const std::vector<std::uint64_t>& prefix,
                                     std::uint64_t digit_lo,
                                     std::uint64_t count,
                                     double* out) const override;

 private:
  const Objective* base_;
  const hash::SeedSpace* space_;
};

}  // namespace dmpc::derand
