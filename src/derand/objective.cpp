#include "derand/objective.hpp"

#include <algorithm>

#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "support/check.hpp"

namespace dmpc::derand {

namespace {

/// Per-thread scratch for the RangeObjective sweep: the raw-value array and
/// the contiguous-seed staging buffer. Capacity persists across seeds and
/// objectives, so the steady-state sweep allocates nothing.
struct SweepScratch {
  std::vector<std::uint64_t> values;
  std::vector<std::uint64_t> seeds;
};

SweepScratch& sweep_scratch() {
  thread_local SweepScratch scratch;
  return scratch;
}

}  // namespace

void Objective::evaluate_batch(std::uint64_t seed_lo, std::uint64_t count,
                               double* out) const {
  SweepScratch& scratch = sweep_scratch();
  scratch.seeds.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) scratch.seeds[i] = seed_lo + i;
  evaluate_batch(scratch.seeds.data(), count, out);
}

void RangeObjective::bind_points(const hash::KWiseFamily& family,
                                 const std::uint64_t* points,
                                 std::size_t count) {
  family_ = &family;
  table_.build(family.modulus(), points, count, family.k());
}

const hash::KWiseFamily& RangeObjective::family() const {
  DMPC_CHECK_MSG(family_ != nullptr, "RangeObjective points not bound");
  return *family_;
}

double RangeObjective::evaluate(std::uint64_t seed) const {
  DMPC_CHECK_MSG(family_ != nullptr, "RangeObjective points not bound");
  SweepScratch& scratch = sweep_scratch();
  scratch.values.resize(table_.count());
  std::uint64_t coeffs[16];
  family_->coefficients_into(seed, coeffs);
  table_.eval(coeffs, scratch.values.data());
  prepare_seed(seed, scratch.values.data());
  return accumulate_terms(0, range_count(), seed, scratch.values.data());
}

void RangeObjective::evaluate_batch(const std::uint64_t* seeds,
                                    std::size_t count, double* out) const {
  for (std::size_t i = 0; i < count; ++i) out[i] = evaluate(seeds[i]);
}

BatchStats batch_evaluate(const exec::Executor& executor,
                          const Objective& objective,
                          const std::uint64_t* seeds, std::size_t count,
                          double* out) {
  BatchStats stats;
  if (count == 0) return stats;
  const std::size_t chunks = (count + kBatchChunk - 1) / kBatchChunk;
  stats.calls = chunks;
  stats.lanes = count;
  // One worker item per fixed-width chunk: the decomposition depends only on
  // `count`, so results and dispatch counts are thread-count invariant.
  obs::HostScope host_scope("derand/batch_eval");
  executor.for_each(0, chunks, [&](std::uint64_t c) {
    const std::size_t lo = static_cast<std::size_t>(c) * kBatchChunk;
    const std::size_t hi = std::min(count, lo + kBatchChunk);
    objective.evaluate_batch(seeds + lo, hi - lo, out + lo);
  });
  return stats;
}

void record_batch_stats(const BatchStats& stats) {
  // Model-section registry counters (see SearchMetrics in seed_search.cpp
  // for the charging discipline): once per completed engine run, from the
  // orchestrating thread, never inside a recoverable body.
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter* calls = &registry.counter("derand/batch_calls");
  static obs::Counter* lanes = &registry.counter("derand/lanes_used");
  calls->add(stats.calls);
  lanes->add(stats.lanes);
}

}  // namespace dmpc::derand
