#include "derand/cond_expect.hpp"

#include <algorithm>

#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace dmpc::derand {

FixResult fix_seed(mpc::Cluster& cluster, const ConditionalObjective& objective,
                   const hash::SeedSpace& space, const FixOptions& options) {
  std::vector<std::uint64_t> prefix;
  prefix.reserve(space.chunk_count());
  FixResult result;
  // The CE sweep dominates host cost (ROADMAP item 3): scope it so kHost
  // counters (wall/cpu/alloc) and opted-in trace counter events record it.
  obs::HostScope host_scope("derand/ce_sweep", cluster.trace());
  obs::Span span(cluster.trace(), options.label);
  std::uint64_t candidates_swept = 0;
  BatchStats batch_stats;
  // Digits dispatched per oracle call: the shared engine knob, additionally
  // clamped to the fixed kernel chunk so the decomposition never depends on
  // the executor.
  const std::uint64_t digit_chunk = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(options.candidates_per_batch, kBatchChunk));
  for (unsigned chunk = 0; chunk < space.chunk_count(); ++chunk) {
    const std::uint64_t radix = space.radix(chunk);
    // Each chunk is one conditional-expectation sweep: every machine
    // evaluates its terms for all `radix` candidate digits.
    obs::Span chunk_span(cluster.trace(),
                         options.label + "/chunk" + std::to_string(chunk));
    chunk_span.arg("candidate_seeds", radix);
    candidates_swept += radix;
    // One chunk: every machine evaluates its conditional term for all
    // candidates; candidates aggregate in tree passes of width <= S (the
    // paper chunks the seed so radix = Theta(S); when a chunk's radix
    // exceeds S, the candidate table is swept in ceil(radix/S) waves), then
    // the winner is broadcast.
    const std::uint64_t waves =
        std::max<std::uint64_t>(1, (radix + cluster.space() - 1) / cluster.space());
    const std::uint64_t depth =
        cluster.tree_depth(std::max<std::uint64_t>(objective.term_count(), 2));
    cluster.charge_recoverable(waves * 2 * depth + 1, options.label);
    cluster.metrics().add_communication(radix * cluster.machines(),
                                        options.label);
    cluster.check_load(std::min(radix, cluster.space()),
                       options.label + ": candidate table", options.label);

    // Host-parallel sweep through the batched conditional oracle: the
    // digit range is cut into fixed-width chunks (executor-invariant), each
    // chunk one oracle dispatch. The oracle is const/pure, so chunks run
    // concurrently; the argmax scan stays serial with a strict improvement
    // test, committing the lowest digit on ties — identical to the serial
    // sweep for every thread count and dispatch path.
    std::vector<double> values(radix, 0.0);
    const std::uint64_t digit_chunks = (radix + digit_chunk - 1) / digit_chunk;
    batch_stats += BatchStats{digit_chunks, radix};
    cluster.executor().for_each(0, digit_chunks, [&](std::uint64_t c) {
      const std::uint64_t lo = c * digit_chunk;
      const std::uint64_t hi = std::min(radix, lo + digit_chunk);
      objective.conditional_expectation_batch(prefix, lo, hi - lo,
                                              values.data() + lo);
    });
    double best_value = 0.0;
    std::uint64_t best_digit = 0;
    bool have = false;
    for (std::uint64_t digit = 0; digit < radix; ++digit) {
      const double value = values[digit];
      if (!have || value > best_value) {
        have = true;
        best_value = value;
        best_digit = digit;
      }
    }
    prefix.push_back(best_digit);
    chunk_span.arg("fixed_digit", best_digit);
    ++result.chunks;
  }
  DMPC_CHECK_MSG(candidates_swept <= options.max_trials,
                 options.label << ": swept " << candidates_swept
                               << " candidates, over the max_trials budget "
                               << options.max_trials
                               << " — seed space misconfigured");
  result.seed = space.compose(prefix);
  result.value = objective.evaluate(result.seed);
  // Model-section sweep counters; charged once per fix from the
  // orchestrating thread, mirroring the golden span args below.
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("derand/ce_fixes").add(1);
  registry.counter("derand/ce_sweeps").add(result.chunks);
  registry.counter("derand/ce_candidates").add(candidates_swept);
  record_batch_stats(batch_stats);
  span.arg("candidate_seeds", candidates_swept);
  span.arg("chunks", result.chunks);
  span.arg("committed_seed", result.seed);
  span.arg("committed_value", result.value);
  DMPC_CHECK_MSG(
      result.value >= options.guarantee,
      options.label << ": committed seed achieves " << result.value
                    << " < guarantee " << options.guarantee
                    << " — conditional oracle inconsistent with objective");
  return result;
}

double ExhaustiveConditional::conditional_expectation(
    const std::vector<std::uint64_t>& prefix, std::uint64_t candidate) const {
  double value = 0.0;
  conditional_expectation_batch(prefix, candidate, 1, &value);
  return value;
}

void ExhaustiveConditional::conditional_expectation_batch(
    const std::vector<std::uint64_t>& prefix, std::uint64_t digit_lo,
    std::uint64_t count, double* out) const {
  const auto fixed = static_cast<unsigned>(prefix.size());
  DMPC_CHECK(fixed < space_->chunk_count());
  const std::uint64_t suffixes = space_->suffix_size(fixed + 1);
  // Per-thread staging for the assembled seeds and their values; capacity
  // persists across digits, so the sweep allocates nothing in steady state.
  thread_local std::vector<std::uint64_t> seeds;
  thread_local std::vector<double> values;
  seeds.resize(suffixes);
  values.resize(suffixes);
  for (std::uint64_t d = 0; d < count; ++d) {
    const std::uint64_t candidate = digit_lo + d;
    for (std::uint64_t s = 0; s < suffixes; ++s) {
      seeds[s] = space_->assemble(prefix, candidate, s);
    }
    base_->evaluate_batch(seeds.data(), suffixes, values.data());
    // Ascending-suffix summation — the exact floating-point order of the
    // scalar oracle.
    double total = 0.0;
    for (std::uint64_t s = 0; s < suffixes; ++s) total += values[s];
    out[d] = total / static_cast<double>(suffixes);
  }
}

}  // namespace dmpc::derand
