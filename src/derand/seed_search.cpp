#include "derand/seed_search.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace dmpc::derand {

namespace {

/// Model-section registry counters for seed searches. Charged once per
/// completed search from the orchestrating thread (never inside a
/// recoverable body and never from executor workers), so the totals are
/// deterministic across thread counts and fault plans — golden by the same
/// argument as the trace args they mirror. The trials histogram has fixed
/// power-of-four bounds so its serialization is value-independent.
struct SearchMetrics {
  obs::Counter* searches;
  obs::Counter* candidates;
  obs::Counter* batches;
  obs::Histogram* trials;
};

SearchMetrics& search_metrics() {
  static SearchMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::global();
    return SearchMetrics{
        &registry.counter("derand/searches"),
        &registry.counter("derand/candidate_seeds"),
        &registry.counter("derand/batches"),
        &registry.histogram("derand/trials_per_search",
                            {1, 4, 16, 64, 256, 1024, 4096, 16384}),
    };
  }();
  return metrics;
}

void record_search(const SearchResult& result) {
  SearchMetrics& metrics = search_metrics();
  metrics.searches->add(1);
  metrics.candidates->add(result.trials);
  metrics.batches->add(result.batches);
  metrics.trials->observe(result.trials);
}
/// Charge one evaluation batch of `k` candidates over `terms` local terms:
/// local evaluation is free; aggregating k partial sums up a fan-in-S tree
/// and broadcasting the verdict back is 2 * tree_depth rounds.
void charge_batch(mpc::Cluster& cluster, std::uint64_t terms, std::uint64_t k,
                  const std::string& label) {
  const std::uint64_t depth =
      cluster.tree_depth(std::max<std::uint64_t>(terms, 2));
  cluster.charge_recoverable(2 * depth, label);
  cluster.metrics().add_communication(k * cluster.machines(), label);
}
}  // namespace

std::uint64_t effective_stride(std::uint64_t stride, std::uint64_t seed_count) {
  DMPC_CHECK(seed_count >= 1);
  if (seed_count == 1) return 1;
  std::uint64_t s = stride % seed_count;
  if (s == 0) s = 1;
  // Walk forward (wrapping, skipping 0) to the nearest stride coprime to the
  // family size. Strides that are already coprime — every caller passing a
  // large odd stride against a power-of-two family — are returned unchanged.
  while (std::gcd(s, seed_count) != 1) {
    ++s;
    if (s == seed_count) s = 1;
  }
  return s;
}

SearchResult find_seed(mpc::Cluster& cluster, const Objective& objective,
                       std::uint64_t seed_count, const SearchOptions& options) {
  DMPC_CHECK(seed_count >= 1);
  obs::HostScope host_scope("derand/seed_search", cluster.trace());
  obs::Span span(cluster.trace(), options.label);
  const std::uint64_t k = std::max<std::uint64_t>(
      1, std::min(options.candidates_per_batch, cluster.space()));
  SearchResult result;
  std::uint64_t next = 0;
  const std::uint64_t limit = std::min(seed_count, options.max_trials);
  const std::uint64_t stride = effective_stride(options.seed_stride, seed_count);
  auto seed_at = [&](std::uint64_t t) {
    const __uint128_t pos = static_cast<__uint128_t>(t) * stride +
                            options.seed_base % seed_count;
    return static_cast<std::uint64_t>(pos % seed_count);
  };
  std::vector<std::uint64_t> seeds;
  std::vector<double> values;
  BatchStats batch_stats;
  while (next < limit) {
    const std::uint64_t batch_end = std::min(limit, next + k);
    charge_batch(cluster, objective.term_count(), batch_end - next,
                 options.label);
    ++result.batches;
    // Evaluate the whole batch through the range oracle (host-parallel in
    // fixed-width chunks; the objective is pure), then commit the first
    // qualifying trial in enumeration order — identical to the serial
    // search for every thread count and dispatch path. `trials` counts
    // evaluations up to and including the committed one, matching the
    // serial short-circuit count even though later candidates were also
    // evaluated.
    const std::uint64_t width = batch_end - next;
    seeds.resize(width);
    for (std::uint64_t i = 0; i < width; ++i) seeds[i] = seed_at(next + i);
    values.assign(width, 0.0);
    batch_stats += batch_evaluate(cluster.executor(), objective, seeds.data(),
                                  width, values.data());
    for (std::uint64_t t = next; t < batch_end; ++t) {
      const double value = values[t - next];
      if (value >= options.threshold) {
        result.trials = t + 1;
        result.seed = seed_at(t);
        result.value = value;
        span.arg("candidate_seeds", result.trials);
        span.arg("batches", result.batches);
        span.arg("committed_seed", result.seed);
        record_search(result);
        record_batch_stats(batch_stats);
        return result;
      }
    }
    result.trials = batch_end;
    next = batch_end;
  }
  DMPC_CHECK_MSG(false, options.label
                            << ": no seed met threshold " << options.threshold
                            << " within " << limit
                            << " candidates — guarantee violated");
  return result;  // unreachable
}

SearchResult find_best_seed(mpc::Cluster& cluster, const Objective& objective,
                            std::uint64_t seed_count, std::uint64_t budget,
                            const std::string& label) {
  DMPC_CHECK(seed_count >= 1 && budget >= 1);
  obs::HostScope host_scope("derand/seed_search", cluster.trace());
  obs::Span span(cluster.trace(), label);
  const std::uint64_t limit = std::min(seed_count, budget);
  const std::uint64_t k =
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(limit, cluster.space()));
  SearchResult result;
  bool have = false;
  std::uint64_t next = 0;
  std::vector<std::uint64_t> seeds;
  std::vector<double> values;
  BatchStats batch_stats;
  while (next < limit) {
    const std::uint64_t batch_end = std::min(limit, next + k);
    charge_batch(cluster, objective.term_count(), batch_end - next, label);
    ++result.batches;
    // Host-parallel evaluation through the range oracle, then a serial
    // lowest-seed-first scan with a strict improvement test: ties commit
    // the lowest seed, exactly like the serial search.
    const std::uint64_t width = batch_end - next;
    seeds.resize(width);
    for (std::uint64_t i = 0; i < width; ++i) seeds[i] = next + i;
    values.assign(width, 0.0);
    batch_stats += batch_evaluate(cluster.executor(), objective, seeds.data(),
                                  width, values.data());
    for (std::uint64_t seed = next; seed < batch_end; ++seed) {
      ++result.trials;
      const double value = values[seed - next];
      if (!have || value > result.value) {
        have = true;
        result.seed = seed;
        result.value = value;
      }
    }
    next = batch_end;
  }
  span.arg("candidate_seeds", result.trials);
  span.arg("batches", result.batches);
  span.arg("committed_seed", result.seed);
  record_search(result);
  record_batch_stats(batch_stats);
  return result;
}

}  // namespace dmpc::derand
