// Guaranteed deterministic seed search.
//
// The proofs establish E_h[q(h)] >= Q over the hash family H. By the
// probabilistic method some h* in H has q(h*) >= Q; moreover, whenever q is
// bounded above by q_max, reverse Markov gives
//
//     Pr_h[q(h) >= t] >= (Q - t) / (q_max - t)   for any t < Q,
//
// i.e. a *constant fraction* of seeds meets a constant-factor-weaker
// threshold. The search enumerates seeds in the family's fixed deterministic
// order, evaluating K candidates per batch — one batch is O(1) MPC rounds,
// since each machine evaluates its local term for all K candidates and a
// single fan-in-S tree aggregates the K sums (K <= S) — and commits to the
// first candidate reaching the threshold. Termination before the family is
// exhausted is unconditional when threshold <= Q.
//
// This engine is the production path; the textbook prefix-fixing engine
// (cond_expect.hpp) is the faithful §2.4 implementation used where the
// conditional expectations are exactly computable.
#pragma once

#include <cstdint>
#include <string>

#include "derand/engine_options.hpp"
#include "derand/objective.hpp"
#include "mpc/cluster.hpp"

namespace dmpc::derand {

/// Threshold-search knobs on top of the shared engine surface
/// (label / candidates_per_batch / max_trials live in EngineOptions).
struct SearchOptions : EngineOptions {
  SearchOptions() { label = "seed_search"; }

  /// Commit to the first seed with objective >= threshold.
  double threshold = 0.0;
  /// Trial t evaluates seed (base + t * stride) mod seed_count. Plain
  /// counting order (base 0, stride 1) walks polynomials in increasing
  /// coefficient order, so consecutive derandomization steps that each
  /// commit "the first good seed" pick highly correlated functions (e.g.
  /// h(x) = a*x for small a, which all favour small inputs). Callers that
  /// run many steps (the sparsifier stages) pass a step-dependent base and
  /// a large odd stride to decorrelate; with stride coprime to the family
  /// size the enumeration is still a bijection, preserving the exhaustive
  /// coverage guarantee.
  std::uint64_t seed_base = 0;
  std::uint64_t seed_stride = 1;
};

struct SearchResult {
  std::uint64_t seed = 0;
  double value = 0.0;
  std::uint64_t trials = 0;   ///< Seeds evaluated (including the committed one).
  std::uint64_t batches = 0;  ///< O(1)-round batches used.
};

/// The stride actually used for a requested (stride, seed_count): the
/// smallest s >= stride mod seed_count (wrapping, never 0) with
/// gcd(s, seed_count) = 1. Coprimality makes t -> (base + t*s) mod seed_count
/// a bijection on [0, seed_count), so a strided walk visits every residue
/// exactly once before repeating — the exhaustive-coverage property the
/// termination guarantee rests on. (A non-coprime stride s visits only
/// seed_count / gcd(s, seed_count) residues; an earlier version reduced a
/// stride that was a multiple of seed_count to 1 but silently kept other
/// non-coprime strides, losing coverage.) Exposed for tests.
std::uint64_t effective_stride(std::uint64_t stride, std::uint64_t seed_count);

/// Find the first seed (in enumeration order) meeting the threshold.
/// Batches are evaluated on the cluster's host executor; the committed seed
/// is the first qualifying one in enumeration order regardless of thread
/// count (the whole batch is evaluated, then scanned lowest-trial-first).
SearchResult find_seed(mpc::Cluster& cluster, const Objective& objective,
                       std::uint64_t seed_count, const SearchOptions& options);

/// Evaluate the first `budget` seeds and return the best — used when a
/// threshold is not known a priori (e.g. §5 phase compression picks the
/// sequence minimizing the residual edge count).
SearchResult find_best_seed(mpc::Cluster& cluster, const Objective& objective,
                            std::uint64_t seed_count, std::uint64_t budget,
                            const std::string& label = "seed_search");

}  // namespace dmpc::derand
