// Shared configuration surface for the derandomization engines.
//
// Both engines — the threshold seed search (seed_search.hpp) and the method
// of conditional expectations (cond_expect.hpp) — used to duplicate their
// label and budget knobs; new workloads (coloring, ruling sets) configure
// one base instead. SearchOptions / FixOptions extend this with their
// engine-specific fields and override the default label.
#pragma once

#include <cstdint>
#include <string>

namespace dmpc::derand {

struct EngineOptions {
  /// Round-charge label (also the trace span name).
  std::string label = "derand";

  /// Candidate seeds (or CE digits) evaluated per O(1)-round batch — must
  /// be <= S for the fan-in-S aggregation argument; engines clamp.
  std::uint64_t candidates_per_batch = 64;

  /// Hard cap on oracle evaluations; CheckFailure beyond it (a true
  /// guarantee violation — the family provably contains a good seed, and a
  /// CE sweep provably commits within the chunked radix total).
  std::uint64_t max_trials = 1 << 20;
};

}  // namespace dmpc::derand
