// Objective functions for derandomization.
//
// Every derandomized step in the paper proves E_h[q(h)] >= Q for an
// objective q that decomposes into machine-local terms (§2.4: "a sum of
// functions calculable by individual machines"). The engines in this module
// find a concrete seed h* with q(h*) meeting a target, charging MPC rounds
// per the paper's cost model.
//
// The oracle API is range-based: engines hand the objective a contiguous
// batch of candidate seeds (evaluate_batch), and objectives that decompose
// over a point universe derive from RangeObjective, which precomputes all
// raw hash values per seed through the lane-parallel field kernel
// (field::PowerTable) and hands term accumulation a flat value array. Both
// layers have exact scalar fallbacks, so third-party objectives that only
// implement evaluate() keep working unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/parallel.hpp"
#include "field/batch_eval.hpp"
#include "hash/kwise.hpp"

namespace dmpc::derand {

/// A derandomization objective over a seed-indexed family.
class Objective {
 public:
  virtual ~Objective() = default;

  /// Exact value q(h_seed). In the model this is a sum over machine-local
  /// terms followed by one aggregation; implementations must be pure.
  virtual double evaluate(std::uint64_t seed) const = 0;

  /// Number of machine-local terms (aggregation size for round charging).
  virtual std::uint64_t term_count() const = 0;

  /// Batch oracle: out[i] = evaluate(seeds[i]). The default is the exact
  /// scalar loop; RangeObjective and other hot objectives override it to
  /// amortize per-seed setup. Must be bit-identical to per-seed evaluate().
  virtual void evaluate_batch(const std::uint64_t* seeds, std::size_t count,
                              double* out) const {
    for (std::size_t i = 0; i < count; ++i) out[i] = evaluate(seeds[i]);
  }

  /// Contiguous convenience: out[i] = evaluate(seed_lo + i).
  void evaluate_batch(std::uint64_t seed_lo, std::uint64_t count,
                      double* out) const;
};

/// An objective that can additionally report conditional expectations given
/// a fixed prefix of seed chunks — what the method of conditional
/// expectations consumes.
class ConditionalObjective : public Objective {
 public:
  /// E[q(h) | first prefix.size() chunks fixed to `prefix`, next chunk fixed
  /// to `candidate`], expectation over the remaining chunks uniform.
  virtual double conditional_expectation(
      const std::vector<std::uint64_t>& prefix,
      std::uint64_t candidate) const = 0;

  /// Batch form of the conditional oracle over a contiguous digit range:
  /// out[i] = conditional_expectation(prefix, digit_lo + i). The default is
  /// the exact scalar loop; ExhaustiveConditional overrides it to route the
  /// suffix enumeration through the base objective's batch oracle. Must be
  /// bit-identical to per-digit conditional_expectation().
  virtual void conditional_expectation_batch(
      const std::vector<std::uint64_t>& prefix, std::uint64_t digit_lo,
      std::uint64_t count, double* out) const {
    for (std::uint64_t i = 0; i < count; ++i) {
      out[i] = conditional_expectation(prefix, digit_lo + i);
    }
  }
};

/// An objective whose terms read the hash of points from a fixed universe.
//
// Derived classes bind the universe once (bind_points); evaluate() then
// computes ALL raw hash values for a seed in one lane-parallel PowerTable
// sweep and calls the term interface with the flat array:
//
//   prepare_seed(seed, values)                       — optional prepass
//   accumulate_terms(range_begin, range_end, ...)    — sum terms over ranges
//
// Terms index `values` by point position in the bound array, so nothing
// re-evaluates the polynomial — the former per-term HashFn::raw calls (the
// derand inner loop's dominant cost) collapse into the batched kernel.
// Scratch is thread-local and reused across seeds: the steady-state sweep
// performs no allocation.
class RangeObjective : public Objective {
 public:
  /// Number of accumulable term ranges. Distinct from term_count(): the
  /// latter is the MODEL aggregation size (round charging) and keeps its
  /// semantics; range_count() partitions the host-side term sum.
  virtual std::uint64_t range_count() const = 0;

  /// Sum of the terms for ranges [range_begin, range_end) under `seed`.
  /// `values[i]` is the raw hash (in [0, p)) of the i-th bound point.
  /// Implementations must accumulate in ascending range order so the
  /// floating-point sum is identical to the scalar path.
  virtual double accumulate_terms(std::uint64_t range_begin,
                                  std::uint64_t range_end, std::uint64_t seed,
                                  const std::uint64_t* values) const = 0;

  /// Optional per-seed prepass over the full value array (e.g. a local-min
  /// bitmap), run once before any accumulate_terms call for that seed. May
  /// write thread-local scratch only (evaluate() stays const/pure).
  virtual void prepare_seed(std::uint64_t seed,
                            const std::uint64_t* values) const {
    (void)seed;
    (void)values;
  }

  /// One PowerTable sweep + prepare + full-range accumulation.
  double evaluate(std::uint64_t seed) const override;

  void evaluate_batch(const std::uint64_t* seeds, std::size_t count,
                      double* out) const override;

  std::size_t point_count() const { return table_.count(); }

 protected:
  /// Bind the point universe (hash-function inputs, in term index order) and
  /// the family evaluated over it. Rebinding reuses the table allocation.
  void bind_points(const hash::KWiseFamily& family, const std::uint64_t* points,
                   std::size_t count);

  const hash::KWiseFamily& family() const;

 private:
  const hash::KWiseFamily* family_ = nullptr;
  field::PowerTable table_;
};

/// Dispatch accounting for one engine run: chunk dispatches into
/// evaluate_batch and candidate-seed lanes shipped through them. Both are
/// pure functions of the candidate count, so the totals are deterministic
/// across thread counts and dispatch paths.
struct BatchStats {
  std::uint64_t calls = 0;
  std::uint64_t lanes = 0;

  BatchStats& operator+=(const BatchStats& other) {
    calls += other.calls;
    lanes += other.lanes;
    return *this;
  }
};

/// Seeds per evaluate_batch chunk in batch_evaluate — fixed (never derived
/// from the thread count) so chunk boundaries, results, and BatchStats are
/// invariant across executors.
inline constexpr std::size_t kBatchChunk = 16;

/// Evaluate seeds[0..count) with out[i] = evaluate(seeds[i]), dispatching
/// kBatchChunk-wide evaluate_batch calls across the executor. Returns the
/// dispatch stats; the caller records them once per completed engine run
/// (record_batch_stats) so registry totals stay deterministic.
BatchStats batch_evaluate(const exec::Executor& executor,
                          const Objective& objective,
                          const std::uint64_t* seeds, std::size_t count,
                          double* out);

/// Charge the kModel counters `derand/batch_calls` / `derand/lanes_used`.
/// Call once per completed engine run from the orchestrating thread.
void record_batch_stats(const BatchStats& stats);

}  // namespace dmpc::derand
