// Objective functions for derandomization.
//
// Every derandomized step in the paper proves E_h[q(h)] >= Q for an
// objective q that decomposes into machine-local terms (§2.4: "a sum of
// functions calculable by individual machines"). The engines in this module
// find a concrete seed h* with q(h*) meeting a target, charging MPC rounds
// per the paper's cost model.
#pragma once

#include <cstdint>
#include <vector>

namespace dmpc::derand {

/// A derandomization objective over a seed-indexed family.
class Objective {
 public:
  virtual ~Objective() = default;

  /// Exact value q(h_seed). In the model this is a sum over machine-local
  /// terms followed by one aggregation; implementations must be pure.
  virtual double evaluate(std::uint64_t seed) const = 0;

  /// Number of machine-local terms (aggregation size for round charging).
  virtual std::uint64_t term_count() const = 0;
};

/// An objective that can additionally report conditional expectations given
/// a fixed prefix of seed chunks — what the method of conditional
/// expectations consumes.
class ConditionalObjective : public Objective {
 public:
  /// E[q(h) | first prefix.size() chunks fixed to `prefix`, next chunk fixed
  /// to `candidate`], expectation over the remaining chunks uniform.
  virtual double conditional_expectation(
      const std::vector<std::uint64_t>& prefix,
      std::uint64_t candidate) const = 0;
};

}  // namespace dmpc::derand
