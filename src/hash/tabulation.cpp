#include "hash/tabulation.hpp"

#include "support/rng.hpp"

namespace dmpc::hash {

TabulationFn::TabulationFn(std::uint64_t seed) : seed_(seed) {
  for (unsigned b = 0; b < kBlocks; ++b) {
    // One deterministic splitmix stream per (seed, block).
    std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (b + 1));
    for (unsigned c = 0; c < kTableSize; ++c) {
      tables_[b][c] = splitmix64(state);
    }
  }
}

}  // namespace dmpc::hash
