// Simple tabulation hashing — an alternative seed-indexed family.
//
// Keys are split into kBlocks 8-bit characters; each character indexes a
// table of random words and the results are XORed. Simple tabulation is
// 3-wise independent (Patrascu–Thorup) and behaves far better than its
// independence degree suggests (Chernoff-style concentration for many
// applications), making it a natural ablation partner for the polynomial
// families: same seed-indexed interface, constant-time evaluation.
//
// The "seed" selects the tables: table entries are filled by splitmix64
// streams keyed on (seed, block, character), so the family is deterministic
// in the seed and enumerable in the same stride-scrambled way as the
// polynomial families.
#pragma once

#include <array>
#include <cstdint>

namespace dmpc::hash {

class TabulationFn {
 public:
  static constexpr unsigned kBlocks = 8;  // 8 x 8-bit characters
  static constexpr unsigned kTableSize = 256;

  explicit TabulationFn(std::uint64_t seed);

  std::uint64_t operator()(std::uint64_t x) const {
    std::uint64_t h = 0;
    for (unsigned b = 0; b < kBlocks; ++b) {
      h ^= tables_[b][(x >> (8 * b)) & 0xFF];
    }
    return h;
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::array<std::array<std::uint64_t, kTableSize>, kBlocks> tables_;
};

/// Family adaptor mirroring KWiseFamily's shape (3-wise independent).
class TabulationFamily {
 public:
  TabulationFamily() = default;

  /// Effectively unbounded seed space.
  std::uint64_t seed_count() const { return UINT64_MAX; }

  TabulationFn at(std::uint64_t seed) const { return TabulationFn(seed); }
};

}  // namespace dmpc::hash
