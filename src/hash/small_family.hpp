// Small pairwise-independent families H* : [C] -> [C] with O(log C)-bit
// seeds (paper §5.1), and enumerable *sequences* of such functions for the
// phase-compression step (§5.2.2).
//
// After the O(Delta^4)-coloring of G^2, Luby's algorithm only needs hash
// values per color class, so C = O(Delta^4) and one function costs
// O(log Delta) seed bits. A stage derandomizes l phases at once by searching
// over all sequences (h_1, ..., h_l) in H*^l — the sequence space is the
// SeedSpace with l chunks of radix |H*|.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/kwise.hpp"
#include "hash/seed.hpp"

namespace dmpc::hash {

/// Pairwise-independent family over a small color space [C] -> [C].
/// Backed by KWiseFamily with k = 2 and the smallest prime p >= C, so the
/// seed is one index in [0, p^2) ~ 2*log2(C) + O(1) bits.
class SmallFamily {
 public:
  explicit SmallFamily(std::uint64_t color_count);

  std::uint64_t color_count() const { return colors_; }
  std::uint64_t p() const { return family_.p(); }
  std::uint64_t seed_count() const { return family_.seed_count(); }

  HashFn at(std::uint64_t seed) const { return family_.at(seed); }
  std::uint64_t eval(std::uint64_t seed, std::uint64_t color) const {
    return family_.eval(seed, color);
  }

  const KWiseFamily& family() const { return family_; }

 private:
  std::uint64_t colors_;
  KWiseFamily family_;
};

/// A sequence (h_1, ..., h_length) from a SmallFamily, indexed by a single
/// sequence seed. `candidate_cap` bounds how many per-phase seeds are
/// enumerated when the full family is too large to sweep — the enumeration
/// order is the family's deterministic seed order, so a search over the
/// capped space is a search over a prefix of the true family.
class FunctionSequence {
 public:
  FunctionSequence(const SmallFamily& family, unsigned length,
                   std::uint64_t candidate_cap);

  unsigned length() const { return length_; }
  std::uint64_t per_phase_seeds() const { return per_phase_; }
  std::uint64_t sequence_count() const { return space_.size(); }
  const SeedSpace& space() const { return space_; }

  /// The per-phase seed for phase i (0-based) under sequence seed `seq`.
  std::uint64_t phase_seed(std::uint64_t seq, unsigned phase) const;

  /// Materialize function for a phase.
  HashFn phase_fn(std::uint64_t seq, unsigned phase) const;

  /// A deterministic low-discrepancy enumeration of the sequence space: the
  /// t-th candidate varies every phase's seed (plain counting order would
  /// only sweep the last phase for small t). Injective is not required —
  /// this feeds a best-of search with an explicit progress check.
  std::uint64_t diverse(std::uint64_t t) const;

 private:
  const SmallFamily* family_;
  unsigned length_;
  std::uint64_t per_phase_;
  SeedSpace space_;
};

}  // namespace dmpc::hash
