#include "hash/seed.hpp"

namespace dmpc::hash {

SeedSpace::SeedSpace(std::vector<std::uint64_t> radices)
    : radices_(std::move(radices)) {
  DMPC_CHECK_MSG(!radices_.empty(), "seed space needs at least one chunk");
  strides_.assign(radices_.size(), 1);
  for (int i = static_cast<int>(radices_.size()) - 2; i >= 0; --i) {
    DMPC_CHECK(radices_[i + 1] >= 1);
    DMPC_CHECK_MSG(strides_[i + 1] <= UINT64_MAX / radices_[i + 1],
                   "seed space exceeds 64 bits");
    strides_[i] = strides_[i + 1] * radices_[i + 1];
  }
  DMPC_CHECK(radices_[0] >= 1);
  DMPC_CHECK_MSG(strides_[0] <= UINT64_MAX / radices_[0],
                 "seed space exceeds 64 bits");
  size_ = strides_[0] * radices_[0];
}

SeedSpace SeedSpace::uniform(std::uint64_t radix, unsigned chunks) {
  return SeedSpace(std::vector<std::uint64_t>(chunks, radix));
}

std::uint64_t SeedSpace::suffix_size(unsigned fixed_chunks) const {
  DMPC_CHECK(fixed_chunks <= chunk_count());
  if (fixed_chunks == chunk_count()) return 1;
  // Remaining chunks are fixed_chunks..end; their joint cardinality is
  // radices_[fixed_chunks] * (product of radices after fixed_chunks).
  return radices_[fixed_chunks] * strides_[fixed_chunks];
}

std::uint64_t SeedSpace::compose(
    const std::vector<std::uint64_t>& digits) const {
  DMPC_CHECK(digits.size() == radices_.size());
  std::uint64_t seed = 0;
  for (unsigned i = 0; i < digits.size(); ++i) {
    DMPC_CHECK(digits[i] < radices_[i]);
    seed += digits[i] * strides_[i];
  }
  return seed;
}

std::vector<std::uint64_t> SeedSpace::decompose(std::uint64_t seed) const {
  DMPC_CHECK(seed < size_);
  std::vector<std::uint64_t> digits(radices_.size());
  for (unsigned i = 0; i < radices_.size(); ++i) {
    digits[i] = seed / strides_[i];
    seed %= strides_[i];
  }
  return digits;
}

std::uint64_t SeedSpace::assemble(
    const std::vector<std::uint64_t>& prefix_digits, std::uint64_t candidate,
    std::uint64_t suffix_index) const {
  const auto fixed = static_cast<unsigned>(prefix_digits.size());
  DMPC_CHECK(fixed < chunk_count());
  std::uint64_t seed = 0;
  for (unsigned i = 0; i < fixed; ++i) {
    DMPC_CHECK(prefix_digits[i] < radices_[i]);
    seed += prefix_digits[i] * strides_[i];
  }
  DMPC_CHECK(candidate < radices_[fixed]);
  seed += candidate * strides_[fixed];
  DMPC_CHECK(suffix_index < strides_[fixed]);
  return seed + suffix_index;
}

}  // namespace dmpc::hash
