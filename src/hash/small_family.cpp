#include "hash/small_family.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dmpc::hash {

SmallFamily::SmallFamily(std::uint64_t color_count)
    : colors_(color_count),
      family_(/*domain=*/color_count, /*range=*/std::max<std::uint64_t>(
                  2, color_count),
              /*k=*/2) {
  DMPC_CHECK_MSG(color_count >= 1, "empty color space");
}

FunctionSequence::FunctionSequence(const SmallFamily& family, unsigned length,
                                   std::uint64_t candidate_cap)
    : family_(&family),
      length_(length),
      per_phase_(std::min(family.seed_count(), candidate_cap)),
      space_(SeedSpace::uniform(per_phase_, length)) {
  DMPC_CHECK(length >= 1);
  DMPC_CHECK(candidate_cap >= 1);
}

std::uint64_t FunctionSequence::phase_seed(std::uint64_t seq,
                                           unsigned phase) const {
  DMPC_CHECK(phase < length_);
  return space_.decompose(seq)[phase];
}

HashFn FunctionSequence::phase_fn(std::uint64_t seq, unsigned phase) const {
  return family_->at(phase_seed(seq, phase));
}

std::uint64_t FunctionSequence::diverse(std::uint64_t t) const {
  std::vector<std::uint64_t> digits(length_);
  for (unsigned i = 0; i < length_; ++i) {
    digits[i] = (t + static_cast<std::uint64_t>(i) * 0x9E3779B1ULL) % per_phase_;
  }
  return space_.compose(digits);
}

}  // namespace dmpc::hash
