#include "hash/kwise.hpp"

#include <algorithm>

#include "field/primes.hpp"
#include "support/check.hpp"

namespace dmpc::hash {

namespace {
std::uint64_t pick_prime(std::uint64_t domain, std::uint64_t range) {
  return field::next_prime_at_least(std::max<std::uint64_t>(
      2, std::max(domain, range)));
}

/// min(p^k, UINT64_MAX), with exactness flag.
std::uint64_t capped_pow(std::uint64_t p, unsigned k, bool* exact) {
  std::uint64_t r = 1;
  *exact = true;
  for (unsigned i = 0; i < k; ++i) {
    if (r > UINT64_MAX / p) {
      *exact = false;
      return UINT64_MAX;
    }
    r *= p;
  }
  return r;
}
}  // namespace

KWiseFamily::KWiseFamily(std::uint64_t domain, std::uint64_t range, unsigned k)
    : KWiseFamily(domain, range, k, pick_prime(domain, range)) {}

KWiseFamily::KWiseFamily(std::uint64_t domain, std::uint64_t range, unsigned k,
                         std::uint64_t p)
    : domain_(domain), range_(range), k_(k), mod_(p) {
  DMPC_CHECK_MSG(k >= 1 && k <= 16, "independence degree out of range");
  DMPC_CHECK_MSG(range >= 1, "empty hash range");
  DMPC_CHECK_MSG(p >= domain, "prime must cover the domain");
  DMPC_CHECK_MSG(p >= range, "prime must cover the range");
  DMPC_CHECK_MSG(field::is_prime(p), "modulus must be prime");
  seed_count_ = capped_pow(p, k, &enumerable_);
}

std::vector<std::uint64_t> KWiseFamily::coefficients(std::uint64_t seed) const {
  std::vector<std::uint64_t> coeffs(k_, 0);
  coefficients_into(seed, coeffs.data());
  return coeffs;
}

void KWiseFamily::coefficients_into(std::uint64_t seed,
                                    std::uint64_t* out) const {
  const std::uint64_t p = mod_.value();
  // Base-p digits of the seed; digit j drives coefficient (j+1) mod k so the
  // linear term varies fastest (see header comment).
  for (unsigned j = 0; j < k_; ++j) {
    const std::uint64_t digit = seed % p;
    seed /= p;
    out[(j + 1) % k_] = digit;
  }
}

HashFn KWiseFamily::at(std::uint64_t seed) const {
  return HashFn(mod_, coefficients(seed), range_);
}

}  // namespace dmpc::hash
