// Chunked seed spaces for the method of conditional expectations (§2.4).
//
// The paper fixes an O(log n)-bit seed by agreeing on Theta(log S)-bit
// chunks, one chunk per O(1) MPC rounds. We model the seed space as a
// mixed-radix integer: chunk i ranges over [0, radix_i), and a full seed is
// the usual positional encoding. For polynomial hash families the natural
// chunking is one coefficient per chunk (radix p), which matches the paper's
// chunk size Theta(log S) when p = Theta(S).
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace dmpc::hash {

/// A mixed-radix seed space; chunk 0 is the most significant (fixed first).
class SeedSpace {
 public:
  explicit SeedSpace(std::vector<std::uint64_t> radices);

  /// Uniform chunking: `chunks` chunks of cardinality `radix` each.
  static SeedSpace uniform(std::uint64_t radix, unsigned chunks);

  unsigned chunk_count() const { return static_cast<unsigned>(radices_.size()); }
  std::uint64_t radix(unsigned chunk) const { return radices_.at(chunk); }

  /// Total number of seeds (asserts no 64-bit overflow).
  std::uint64_t size() const { return size_; }

  /// Number of seeds consistent with the first `fixed_chunks` chunks fixed,
  /// i.e. the size of the suffix space.
  std::uint64_t suffix_size(unsigned fixed_chunks) const;

  /// Compose a full seed from chunk digits (digits.size() == chunk_count()).
  std::uint64_t compose(const std::vector<std::uint64_t>& digits) const;

  /// Decompose a seed into chunk digits.
  std::vector<std::uint64_t> decompose(std::uint64_t seed) const;

  /// The seed obtained from a fixed prefix of digits, a candidate digit for
  /// the next chunk, and a suffix index enumerating the remaining chunks.
  std::uint64_t assemble(const std::vector<std::uint64_t>& prefix_digits,
                         std::uint64_t candidate,
                         std::uint64_t suffix_index) const;

 private:
  std::vector<std::uint64_t> radices_;
  std::vector<std::uint64_t> strides_;  // strides_[i] = prod of radices after i
  std::uint64_t size_;
};

}  // namespace dmpc::hash
