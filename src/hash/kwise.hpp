// k-wise independent hash families (paper §2.3, Lemma 6).
//
// A family member is a degree-(k-1) polynomial over Z_p evaluated at the
// input and reduced into the range:
//
//     h_s(x) = poly_s(x mod p) mod range,   poly_s has k coefficients in [p).
//
// For distinct inputs x_1..x_k (< p), the raw values poly_s(x_i) are fully
// independent and uniform in [p) when the coefficients are uniform — the
// classic construction. Reducing mod `range` introduces a bias of at most
// range/p per value, which is the 1/n^3-type slack the paper's lemmas absorb
// (they always use the threshold form "h(e) <= n^{3-delta}" with p >= n^3).
//
// Seed indexing: a seed is a single integer in [0, p^k) interpreted in base
// p; digit j is assigned to coefficient a_{(j+1) mod k}, i.e. the LINEAR
// coefficient varies fastest and the constant term last. This makes the
// deterministic seed-enumeration order (0, 1, 2, ...) immediately produce
// non-degenerate polynomials — seed 1 is h(x) = x — while still enumerating
// the whole family exhaustively, which is what the probabilistic-method
// guarantee in derand::SeedSearch relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "field/batch_eval.hpp"
#include "field/fastmod.hpp"
#include "field/modulus.hpp"

namespace dmpc::hash {

/// A single bound hash function (coefficients fixed). Cheap to copy.
class HashFn {
 public:
  HashFn(field::Modulus mod, std::vector<std::uint64_t> coeffs,
         std::uint64_t range)
      : mod_(mod),
        coeffs_(std::move(coeffs)),
        range_(range),
        fast_range_(range) {}

  /// Value in [0, range). The range reduction is a precomputed Lemire
  /// remainder — bit-identical to raw(x) % range().
  std::uint64_t operator()(std::uint64_t x) const {
    return fast_range_.mod(raw(x));
  }

  /// Raw polynomial value in [0, p) — use with threshold tests for the
  /// least bias.
  std::uint64_t raw(std::uint64_t x) const {
    return mod_.poly_eval(coeffs_, mod_.reduce(x));
  }

  /// out[i] = raw(xs[i]) for a contiguous point range, through the
  /// lane-parallel kernel (bit-identical to per-point raw()).
  void raw_many(const std::uint64_t* xs, std::size_t count,
                std::uint64_t* out) const {
    field::poly_eval_many(mod_, coeffs_.data(), coeffs_.size(), xs, count,
                          out);
  }

  std::uint64_t range() const { return range_; }
  std::uint64_t p() const { return mod_.value(); }
  const field::Modulus& modulus() const { return mod_; }
  const std::vector<std::uint64_t>& coefficients() const { return coeffs_; }

 private:
  field::Modulus mod_;
  std::vector<std::uint64_t> coeffs_;
  std::uint64_t range_;
  field::FastDiv64 fast_range_;
};

/// The family H = {h : [domain) -> [range)} of k-wise independent functions.
class KWiseFamily {
 public:
  /// Picks the smallest prime p >= max(domain, range).
  KWiseFamily(std::uint64_t domain, std::uint64_t range, unsigned k);

  /// Explicit prime (must be >= max(domain, range)).
  KWiseFamily(std::uint64_t domain, std::uint64_t range, unsigned k,
              std::uint64_t p);

  unsigned k() const { return k_; }
  std::uint64_t p() const { return mod_.value(); }
  std::uint64_t domain() const { return domain_; }
  std::uint64_t range() const { return range_; }

  /// Number of distinct seeds, i.e. min(p^k, 2^64-1). Seeds beyond the true
  /// family size wrap around (seed indexing is mod p^k).
  std::uint64_t seed_count() const { return seed_count_; }

  /// Whether p^k fits in 64 bits (so seed_count() is exact and the family
  /// can be exhaustively enumerated).
  bool enumerable() const { return enumerable_; }

  /// Materialize the function for a seed index.
  HashFn at(std::uint64_t seed) const;

  /// Convenience: evaluate without materializing (still O(k)).
  std::uint64_t eval(std::uint64_t seed, std::uint64_t x) const {
    return at(seed)(x);
  }

  /// Coefficients for a seed (base-p digits, linear coefficient first).
  std::vector<std::uint64_t> coefficients(std::uint64_t seed) const;

  /// Allocation-free variant: writes exactly k() coefficients to `out`.
  /// Sweep loops call this per candidate seed with a reused buffer.
  void coefficients_into(std::uint64_t seed, std::uint64_t* out) const;

  const field::Modulus& modulus() const { return mod_; }

 private:
  std::uint64_t domain_;
  std::uint64_t range_;
  unsigned k_;
  field::Modulus mod_;
  std::uint64_t seed_count_;
  bool enumerable_;
};

}  // namespace dmpc::hash
