// Genuine message-passing implementations of the Lemma-4 primitives.
//
// The primitive layer (mpc/primitives.hpp) executes centrally and charges
// the model cost; this module implements prefix sums and sorting as real
// distributed algorithms over Cluster's low-level step() interface — every
// word moves through the router, which enforces the per-machine send,
// receive, and storage capacities. Tests cross-check the two layers: the
// low-level round counts realize the tree-depth charges the primitive layer
// claims (Goodrich–Sitchinava–Zhang, paper Lemma 4).
//
// Layout convention: items are distributed in consecutive blocks of
// `block_size = S/4` words (leaving room for in-flight messages within the
// S budget).
#pragma once

#include <cstdint>
#include <vector>

#include "mpc/cluster.hpp"

namespace dmpc::mpc::lowlevel {

/// Machines needed to hold `items` words in S/4-blocks.
std::uint64_t machines_for(const Cluster& cluster, std::uint64_t items);

/// Distribute items into blocks: machine i holds items [i*b, (i+1)*b).
/// Resets the cluster's low-level storage.
void load_blocks(Cluster& cluster, const std::vector<Word>& items);

/// Collect the blocks back into one vector (orchestrator-side; free).
std::vector<Word> collect_blocks(const Cluster& cluster, std::uint64_t items);

/// Exclusive prefix sums via a fan-in-f aggregation tree (up-sweep +
/// down-sweep), f = max(2, S/4). Returns the result; every cross-machine
/// word goes through step().
std::vector<Word> prefix_sum(Cluster& cluster, const std::vector<Word>& items);

/// Distributed sample sort: local sort, splitter selection on a coordinator,
/// splitter broadcast via relay, one all-to-all routing round with
/// round-robin balancing inside each bucket, then recursion within buckets.
/// Requires machines_for(items) <= S (single-level splitter gather).
std::vector<Word> sort(Cluster& cluster, std::vector<Word> items);

}  // namespace dmpc::mpc::lowlevel
