// The storage seam: who owns graph residency.
//
// Algorithms above this interface (sparsifiers, derand objectives, MIS /
// matching solvers, Certifier claims) pull neighbor ranges through
// graph::Graph accessors; a Graph is a view over `GraphExtent`s whose
// backing memory a Storage owns. Two backends:
//
//  - InMemoryStorage: today's behavior byte-for-byte — a heap CSR built by
//    Graph::from_edges (one extent).
//  - MmapShardStorage: the out-of-core path — a shard directory written by
//    shard_build (mpc/shard_format.hpp) is mapped read-only, one extent per
//    shard, and pages fault in on first touch. Peak RSS tracks the working
//    set, not the graph.
//
// The backend choice is host-side residency only: every kModel metric,
// report byte, and trace byte is identical across backends (proven by the
// storage axis of test_determinism_matrix). Backend observability (bytes
// mapped, shards, resident sample) is exported as kHost registry gauges.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "mpc/faults.hpp"
#include "mpc/io_faults.hpp"
#include "mpc/shard_format.hpp"
#include "mpc/storage_error.hpp"

namespace dmpc::mpc {

enum class StorageBackend : std::uint8_t {
  kMemory,  ///< Heap CSR (Graph::from_edges / read_edge_list).
  kMmap,    ///< Mapped shard directory (shard_build output).
};

/// Stable name ("memory", "mmap") for logs and CLI parsing.
const char* storage_backend_name(StorageBackend backend);

/// When shard checksums are re-computed against the manifest's CRC64s.
enum class VerifyMode : std::uint8_t {
  kOff,       ///< Trust the filesystem (legacy behavior, byte-identical).
  kOpen,      ///< Verify every shard eagerly at open, before the first solve.
  kParanoid,  ///< kOpen plus a re-verification when a solve attaches.
};

/// Stable name ("off", "open", "paranoid") for logs and CLI parsing.
const char* verify_mode_name(VerifyMode mode);

/// What open_storage does when the mmap backend fails with a StorageError.
enum class FallbackMode : std::uint8_t {
  kNone,    ///< Propagate the error (legacy behavior).
  kMemory,  ///< Degrade: re-read the text edge list into InMemoryStorage.
};

/// Stable name ("none", "memory") for logs and CLI parsing.
const char* fallback_mode_name(FallbackMode mode);

/// User-facing storage selection, carried by SolveOptions and the CLI
/// (--storage=memory|mmap --shard-dir=... --storage-verify=...
/// --storage-fallback=...).
struct StorageOptions {
  StorageBackend backend = StorageBackend::kMemory;
  /// Shard directory; required iff backend == kMmap.
  std::string shard_dir;
  /// Checksum policy for the mmap backend; ignored (no-op) for kMemory.
  VerifyMode verify = VerifyMode::kOff;
  /// Degradation policy when the mmap backend raises StorageError.
  FallbackMode fallback = FallbackMode::kNone;

  bool is_default() const {
    return backend == StorageBackend::kMemory && shard_dir.empty();
  }
};

/// Outcome of a whole-backend integrity pass (Storage::verify_integrity).
/// Feeds the Certifier's storage_integrity claim: kVerified -> pass,
/// kUnverified -> skipped (no checksums to check: in-memory backend or a v1
/// manifest), kFailed -> fail with the first bad shard as witness.
struct IntegrityReport {
  enum class Status : std::uint8_t { kVerified, kUnverified, kFailed };
  Status status = Status::kUnverified;
  std::uint64_t shards_checked = 0;  ///< Shards whose CRC64 matched.
  /// First failing shard (kManifestShard when the manifest digest failed or
  /// no shard is implicated).
  std::uint64_t bad_shard = kManifestShard;
  std::string detail;
};

/// Host-side residency snapshot. Never part of the model.
struct StorageStats {
  std::uint64_t bytes_total = 0;     ///< CSR bytes owned (heap or files).
  std::uint64_t shards = 0;          ///< Extent count (1 for in-memory).
  std::uint64_t resident_bytes = 0;  ///< Sampled residency (mincore / heap).
};

/// Owns graph residency and exposes the storage-agnostic Graph view.
class Storage {
 public:
  virtual ~Storage() = default;
  Storage() = default;
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  /// The graph view. Valid for the Storage's lifetime; the view (and its
  /// copies) also keeps the backing memory alive via its residency handle,
  /// so a Graph may safely outlive the Storage that produced it.
  virtual const graph::Graph& graph() const = 0;
  virtual StorageBackend backend() const = 0;
  /// Residency sampled at call time (kHost observability only).
  virtual StorageStats stats() const = 0;

  /// Re-verify the backend's checksums (with the recovery ladder engaged:
  /// retries, quarantine). Logically const — the graph content is unchanged
  /// even when a shard is quarantined into a heap copy — and default-
  /// kUnverified for backends without checksums. Never throws: persistent
  /// failures are reported as IntegrityReport::Status::kFailed.
  virtual IntegrityReport verify_integrity() const {
    IntegrityReport report;
    report.detail = "backend holds no checksummed shards";
    return report;
  }

  /// Verify mode this backend was opened with (kOff for backends that do
  /// not verify). The Solver re-verifies kParanoid backends at solve attach.
  virtual VerifyMode verify_mode() const { return VerifyMode::kOff; }

  /// Cumulative recovery ledger of this backend: everything the retry /
  /// quarantine / degrade ladder did since open. Serialized as the solve
  /// report's recovery.storage sub-block.
  const IoRecoveryStats& io_recovery() const { return io_ledger_; }
  /// Fold external recovery work (e.g. the failed open that degraded into
  /// this backend) into the ledger.
  void merge_io_recovery(const IoRecoveryStats& stats) const {
    io_ledger_.merge(stats);
  }

 protected:
  /// Mutable: recovery bookkeeping happens on logically-const paths
  /// (verify_integrity during a solve attach).
  mutable IoRecoveryStats io_ledger_;
};

/// Heap-resident backend wrapping an already-built Graph (cheap: a Graph is
/// a view sharing residency with its source).
class InMemoryStorage final : public Storage {
 public:
  explicit InMemoryStorage(graph::Graph g) : graph_(std::move(g)) {}

  const graph::Graph& graph() const override { return graph_; }
  StorageBackend backend() const override { return StorageBackend::kMemory; }
  StorageStats stats() const override;

 private:
  graph::Graph graph_;
};

/// Out-of-core backend over a shard directory. open() parses and fully
/// validates the manifest (typed ParseError on any defect; EdgeListLimits
/// caps via kShardLimitExceeded), maps every shard read-only, verifies each
/// shard's header, size, and offsets slice (anchored, monotone, max_degree
/// cross-check), and assembles the extent view.
///
/// Content integrity is policy: with `verify` kOpen/kParanoid the v2
/// manifest's CRC64s are re-computed per shard (plus the whole-manifest
/// digest) behind the recovery ladder — bounded exponential-backoff retries
/// for transient failures, then a per-shard quarantine (heap re-read served
/// as the extent), then a typed StorageError that open_storage can turn
/// into a whole-backend degradation. With kOff (the default) payloads are
/// trusted after structural validation, exactly as before — full content
/// verification on demand is what --certify's storage_integrity claim is
/// for. An `io_faults` plan deterministically injects host-I/O failures
/// into every access (mpc/io_faults.hpp).
class MmapShardStorage final : public Storage {
 public:
  static std::unique_ptr<MmapShardStorage> open(
      const std::string& dir, const graph::EdgeListLimits& limits = {},
      VerifyMode verify = VerifyMode::kOff, const IoFaultPlan& io_faults = {},
      const RecoveryOptions& recovery = {});

  const graph::Graph& graph() const override { return graph_; }
  StorageBackend backend() const override { return StorageBackend::kMmap; }
  StorageStats stats() const override;
  IntegrityReport verify_integrity() const override;
  VerifyMode verify_mode() const override { return verify_; }

  /// The parsed manifest ("unverified" v1 manifests report
  /// has_checksums() == false).
  const ShardManifest& manifest() const { return manifest_; }

 private:
  struct Mappings;
  MmapShardStorage() = default;

  /// The shard's bytes as currently served: quarantined heap copy if one
  /// exists, else the read-only mapping.
  const unsigned char* shard_bytes(std::uint64_t index) const;
  /// Fire scheduled io-fault events for attempt N of (shard, access);
  /// `corrupt` is set when a corruption event wants the caller to observe
  /// checksum-corrupted bytes.
  void fault_point(std::uint64_t shard, std::uint64_t access,
                   bool* corrupt) const;
  void verify_manifest_or_throw() const;
  void verify_shard_or_throw(std::uint64_t index) const;
  void quarantine_shard(std::uint64_t index) const;
  void rebuild_graph() const;

  mutable graph::Graph graph_;
  mutable std::shared_ptr<Mappings> mappings_;
  ShardManifest manifest_;
  std::vector<unsigned char> manifest_bytes_;
  std::string dir_;
  VerifyMode verify_ = VerifyMode::kOff;
  IoFaultPlan io_faults_;
  RecoveryOptions recovery_;
  /// Cumulative attempt counter per (shard, access): every retry of an
  /// access advances it, so plan events key deterministic schedules off it.
  mutable std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t>
      attempts_;
};

/// Open the backend selected by `options`: kMemory reads `input_path` as a
/// text edge list (read_edge_list_file), kMmap opens options.shard_dir
/// under options.verify with `io_faults`/`recovery` driving the injection
/// and retry ladder. When the mmap backend fails with a StorageError and
/// options.fallback is kMemory, degrades to an InMemoryStorage re-read of
/// `input_path` (ledgered as storage/degraded). Shared by the CLI and
/// benches.
std::unique_ptr<Storage> open_storage(const StorageOptions& options,
                                      const std::string& input_path,
                                      const graph::EdgeListLimits& limits = {},
                                      const IoFaultPlan& io_faults = {},
                                      const RecoveryOptions& recovery = {});

/// Export a storage's host-side residency into the global registry's kHost
/// section (gauges storage/bytes_mapped, storage/shards,
/// storage/resident_bytes, storage/backend).
void export_storage_host_stats(const Storage& storage);

}  // namespace dmpc::mpc
