// The storage seam: who owns graph residency.
//
// Algorithms above this interface (sparsifiers, derand objectives, MIS /
// matching solvers, Certifier claims) pull neighbor ranges through
// graph::Graph accessors; a Graph is a view over `GraphExtent`s whose
// backing memory a Storage owns. Two backends:
//
//  - InMemoryStorage: today's behavior byte-for-byte — a heap CSR built by
//    Graph::from_edges (one extent).
//  - MmapShardStorage: the out-of-core path — a shard directory written by
//    shard_build (mpc/shard_format.hpp) is mapped read-only, one extent per
//    shard, and pages fault in on first touch. Peak RSS tracks the working
//    set, not the graph.
//
// The backend choice is host-side residency only: every kModel metric,
// report byte, and trace byte is identical across backends (proven by the
// storage axis of test_determinism_matrix). Backend observability (bytes
// mapped, shards, resident sample) is exported as kHost registry gauges.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace dmpc::mpc {

enum class StorageBackend : std::uint8_t {
  kMemory,  ///< Heap CSR (Graph::from_edges / read_edge_list).
  kMmap,    ///< Mapped shard directory (shard_build output).
};

/// Stable name ("memory", "mmap") for logs and CLI parsing.
const char* storage_backend_name(StorageBackend backend);

/// User-facing storage selection, carried by SolveOptions and the CLI
/// (--storage=memory|mmap --shard-dir=...).
struct StorageOptions {
  StorageBackend backend = StorageBackend::kMemory;
  /// Shard directory; required iff backend == kMmap.
  std::string shard_dir;

  bool is_default() const {
    return backend == StorageBackend::kMemory && shard_dir.empty();
  }
};

/// Host-side residency snapshot. Never part of the model.
struct StorageStats {
  std::uint64_t bytes_total = 0;     ///< CSR bytes owned (heap or files).
  std::uint64_t shards = 0;          ///< Extent count (1 for in-memory).
  std::uint64_t resident_bytes = 0;  ///< Sampled residency (mincore / heap).
};

/// Owns graph residency and exposes the storage-agnostic Graph view.
class Storage {
 public:
  virtual ~Storage() = default;
  Storage() = default;
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  /// The graph view. Valid for the Storage's lifetime; the view (and its
  /// copies) also keeps the backing memory alive via its residency handle,
  /// so a Graph may safely outlive the Storage that produced it.
  virtual const graph::Graph& graph() const = 0;
  virtual StorageBackend backend() const = 0;
  /// Residency sampled at call time (kHost observability only).
  virtual StorageStats stats() const = 0;
};

/// Heap-resident backend wrapping an already-built Graph (cheap: a Graph is
/// a view sharing residency with its source).
class InMemoryStorage final : public Storage {
 public:
  explicit InMemoryStorage(graph::Graph g) : graph_(std::move(g)) {}

  const graph::Graph& graph() const override { return graph_; }
  StorageBackend backend() const override { return StorageBackend::kMemory; }
  StorageStats stats() const override;

 private:
  graph::Graph graph_;
};

/// Out-of-core backend over a shard directory. open() parses and fully
/// validates the manifest (typed ParseError on any defect; EdgeListLimits
/// caps via kShardLimitExceeded), maps every shard read-only, verifies each
/// shard's header, size, and offsets slice (anchored, monotone, max_degree
/// cross-check), and assembles the extent view. Adjacency/incident/edge
/// payloads are trusted after structural validation — full content
/// verification is what --certify is for.
class MmapShardStorage final : public Storage {
 public:
  static std::unique_ptr<MmapShardStorage> open(
      const std::string& dir, const graph::EdgeListLimits& limits = {});

  const graph::Graph& graph() const override { return graph_; }
  StorageBackend backend() const override { return StorageBackend::kMmap; }
  StorageStats stats() const override;

 private:
  struct Mappings;
  MmapShardStorage() = default;

  graph::Graph graph_;
  std::shared_ptr<Mappings> mappings_;
};

/// Open the backend selected by `options`: kMemory reads `input_path` as a
/// text edge list (read_edge_list_file), kMmap opens options.shard_dir and
/// ignores `input_path`. Shared by the CLI and benches.
std::unique_ptr<Storage> open_storage(const StorageOptions& options,
                                      const std::string& input_path,
                                      const graph::EdgeListLimits& limits = {});

/// Export a storage's host-side residency into the global registry's kHost
/// section (gauges storage/bytes_mapped, storage/shards,
/// storage/resident_bytes, storage/backend).
void export_storage_host_stats(const Storage& storage);

}  // namespace dmpc::mpc
