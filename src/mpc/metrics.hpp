// Execution metrics for the MPC cost model.
//
// The theorems under reproduction bound exactly three quantities: the number
// of synchronous rounds, the peak per-machine space (S words), and the total
// space/communication. Every simulator primitive charges these here, and the
// benchmarks report them — this is the measured side of EXPERIMENTS.md.
//
// All three quantities are attributed per label (the primitive/phase names
// the call sites pass), so a run can be audited stage by stage: the
// sparsify -> gather -> derand -> commit decomposition in a report sums back
// to the global totals. An empty label charges the totals only.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dmpc::obs {
class MetricsRegistry;
}

namespace dmpc::mpc {

class Metrics {
 public:
  /// Charge `r` synchronous rounds attributed to `label`.
  void charge_rounds(std::uint64_t r, const std::string& label);

  /// Record that some machine held `words` words at some instant; a
  /// non-empty `label` also tracks the per-label peak.
  void observe_load(std::uint64_t words, const std::string& label = "");

  /// Record `words` words of cross-machine traffic attributed to `label`.
  void add_communication(std::uint64_t words, const std::string& label = "");

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t peak_machine_load() const { return peak_load_; }
  std::uint64_t total_communication() const { return communication_; }
  const std::map<std::string, std::uint64_t>& rounds_by_label() const {
    return by_label_;
  }
  const std::map<std::string, std::uint64_t>& communication_by_label() const {
    return communication_by_label_;
  }
  const std::map<std::string, std::uint64_t>& peak_load_by_label() const {
    return peak_load_by_label_;
  }

  void reset();

  /// Merge another metrics object into this one (for sub-phases): sums
  /// rounds and communication (globally and per label), maxes peak loads.
  void merge(const Metrics& other);

  /// Export this run's totals into the model section of `registry` as
  /// counters "mpc/rounds", "mpc/communication", "mpc/peak_load" plus the
  /// per-label families "mpc/<quantity>/<label>". Each call *adds* this
  /// object's values (peaks included — a cumulative registry is read back
  /// per solve via snapshot deltas, so a peak exported as an addend
  /// delta-reads as exactly this run's peak).
  void export_to(obs::MetricsRegistry& registry) const;

 private:
  std::uint64_t rounds_ = 0;
  std::uint64_t peak_load_ = 0;
  std::uint64_t communication_ = 0;
  std::map<std::string, std::uint64_t> by_label_;
  std::map<std::string, std::uint64_t> communication_by_label_;
  std::map<std::string, std::uint64_t> peak_load_by_label_;
};

}  // namespace dmpc::mpc
