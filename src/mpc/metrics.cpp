#include "mpc/metrics.hpp"

#include <algorithm>

#include "obs/metrics_registry.hpp"

namespace dmpc::mpc {

void Metrics::charge_rounds(std::uint64_t r, const std::string& label) {
  rounds_ += r;
  by_label_[label] += r;
}

void Metrics::observe_load(std::uint64_t words, const std::string& label) {
  peak_load_ = std::max(peak_load_, words);
  if (!label.empty()) {
    auto& peak = peak_load_by_label_[label];
    peak = std::max(peak, words);
  }
}

void Metrics::add_communication(std::uint64_t words, const std::string& label) {
  communication_ += words;
  if (!label.empty()) communication_by_label_[label] += words;
}

void Metrics::reset() {
  rounds_ = 0;
  peak_load_ = 0;
  communication_ = 0;
  by_label_.clear();
  communication_by_label_.clear();
  peak_load_by_label_.clear();
}

void Metrics::merge(const Metrics& other) {
  rounds_ += other.rounds_;
  peak_load_ = std::max(peak_load_, other.peak_load_);
  communication_ += other.communication_;
  for (const auto& [label, r] : other.by_label_) by_label_[label] += r;
  for (const auto& [label, w] : other.communication_by_label_) {
    communication_by_label_[label] += w;
  }
  for (const auto& [label, w] : other.peak_load_by_label_) {
    auto& peak = peak_load_by_label_[label];
    peak = std::max(peak, w);
  }
}

void Metrics::export_to(obs::MetricsRegistry& registry) const {
  const auto section = obs::MetricSection::kModel;
  registry.counter("mpc/rounds", section).add(rounds_);
  registry.counter("mpc/communication", section).add(communication_);
  registry.counter("mpc/peak_load", section).add(peak_load_);
  for (const auto& [label, r] : by_label_) {
    if (label.empty()) continue;
    registry.counter("mpc/rounds", label, section).add(r);
  }
  for (const auto& [label, w] : communication_by_label_) {
    registry.counter("mpc/communication", label, section).add(w);
  }
  for (const auto& [label, w] : peak_load_by_label_) {
    registry.counter("mpc/peak_load", label, section).add(w);
  }
}

}  // namespace dmpc::mpc
