#include "mpc/metrics.hpp"

#include <algorithm>

namespace dmpc::mpc {

void Metrics::charge_rounds(std::uint64_t r, const std::string& label) {
  rounds_ += r;
  by_label_[label] += r;
}

void Metrics::observe_load(std::uint64_t words) {
  peak_load_ = std::max(peak_load_, words);
}

void Metrics::add_communication(std::uint64_t words) {
  communication_ += words;
}

void Metrics::reset() {
  rounds_ = 0;
  peak_load_ = 0;
  communication_ = 0;
  by_label_.clear();
}

void Metrics::merge(const Metrics& other) {
  rounds_ += other.rounds_;
  peak_load_ = std::max(peak_load_, other.peak_load_);
  communication_ += other.communication_;
  for (const auto& [label, r] : other.by_label_) by_label_[label] += r;
}

}  // namespace dmpc::mpc
