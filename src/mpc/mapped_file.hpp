// Move-only RAII wrapper over an mmap'd file (POSIX). Used by the shard
// builder (read-write scatter target) and MmapShardStorage (read-only
// views). Open/map failures throw dmpc::ParseError with kIoError and
// strerror detail, matching the text-IO boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace dmpc::mpc {

/// pread(2) the full `bytes` at `offset`, retrying EINTR and partial reads.
/// Returns the byte count actually read (< bytes only at EOF) or -1 with
/// errno set on a real I/O failure. Shared by the quarantine re-read path in
/// storage.cpp.
std::int64_t pread_retry_eintr(int fd, void* buf, std::size_t bytes,
                               std::int64_t offset);

class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  ~MappedFile();

  /// Map an existing file read-only. `expected_bytes` != 0 additionally
  /// requires the file size to match exactly (ParseError kCountMismatch —
  /// a truncated or padded shard).
  static MappedFile open_readonly(const std::string& path,
                                  std::uint64_t expected_bytes = 0);

  /// Create (or truncate) a file of exactly `bytes` and map it read-write
  /// (MAP_SHARED, so dropped pages persist to disk).
  static MappedFile create_readwrite(const std::string& path,
                                     std::uint64_t bytes);

  const unsigned char* data() const { return data_; }
  unsigned char* mutable_data() { return data_; }
  std::uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Flush dirty pages to disk (MS_SYNC) and drop the page-cache residency
  /// of this mapping (MADV_DONTNEED) — the RSS valve for bounded-memory
  /// builds. No-op on an empty mapping.
  void sync_and_drop();

  /// Bytes of this mapping currently resident in memory (mincore sample);
  /// host-only observability, never part of the model.
  std::uint64_t resident_bytes() const;

 private:
  unsigned char* data_ = nullptr;
  std::uint64_t size_ = 0;
  int fd_ = -1;
  bool writable_ = false;
  std::string path_;
};

}  // namespace dmpc::mpc
