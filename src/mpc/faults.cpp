#include "mpc/faults.hpp"

#include <sstream>

namespace dmpc::mpc {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kStraggler:
      return "straggler";
  }
  return "unknown";
}

const char* checkpoint_mode_name(CheckpointMode mode) {
  switch (mode) {
    case CheckpointMode::kOff:
      return "off";
    case CheckpointMode::kRound:
      return "round";
    case CheckpointMode::kPhase:
      return "phase";
  }
  return "unknown";
}

std::vector<const FaultEvent*> FaultPlan::active(std::uint64_t begin,
                                                 std::uint64_t end,
                                                 std::uint32_t attempt) const {
  std::vector<const FaultEvent*> out;
  for (const FaultEvent& event : events_) {
    if (event.round >= begin && event.round < end && attempt < event.attempts) {
      out.push_back(&event);
    }
  }
  return out;
}

std::string FaultPlan::check() const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& event = events_[i];
    if (event.attempts == 0) {
      return "fault event #" + std::to_string(i) +
             " has attempts=0 (an event must fire on at least one attempt)";
    }
    if (event.kind == FaultKind::kStraggler && event.delay == 0) {
      return "fault event #" + std::to_string(i) +
             " is a straggler with delay=0 (must delay by >= 1 round)";
    }
  }
  return "";
}

namespace {

bool parse_kind(const std::string& token, FaultKind* kind) {
  if (token == "crash") {
    *kind = FaultKind::kCrash;
  } else if (token == "drop") {
    *kind = FaultKind::kDrop;
  } else if (token == "duplicate") {
    *kind = FaultKind::kDuplicate;
  } else if (token == "straggler") {
    *kind = FaultKind::kStraggler;
  } else {
    return false;
  }
  return true;
}

bool parse_u64(const std::string& text, std::uint64_t* value) {
  if (text.empty()) return false;
  std::uint64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *value = out;
  return true;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text, std::string* error) {
  FaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  std::uint64_t line_no = 0;
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + what;
    }
    return FaultPlan{};
  };
  while (std::getline(lines, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream tokens(line);
    std::string kind_token;
    if (!(tokens >> kind_token)) continue;  // blank / comment-only line
    FaultEvent event;
    if (!parse_kind(kind_token, &event.kind)) {
      return fail("unknown fault kind '" + kind_token +
                  "' (expected crash|drop|duplicate|straggler)");
    }
    std::string pair;
    while (tokens >> pair) {
      const auto eq = pair.find('=');
      if (eq == std::string::npos) {
        return fail("expected key=value, got '" + pair + "'");
      }
      const std::string key = pair.substr(0, eq);
      std::uint64_t value = 0;
      if (!parse_u64(pair.substr(eq + 1), &value)) {
        return fail("non-numeric value in '" + pair + "'");
      }
      if (key == "round") {
        event.round = value;
      } else if (key == "machine") {
        event.machine = value;
      } else if (key == "message") {
        event.message = value;
      } else if (key == "delay") {
        event.delay = value;
      } else if (key == "attempts") {
        event.attempts = static_cast<std::uint32_t>(value);
      } else {
        return fail("unknown key '" + key +
                    "' (expected round|machine|message|delay|attempts)");
      }
    }
    plan.add(event);
  }
  if (const std::string problem = plan.check(); !problem.empty()) {
    if (error != nullptr) *error = problem;
    return FaultPlan{};
  }
  if (error != nullptr) error->clear();
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  for (const FaultEvent& event : events_) {
    out << fault_kind_name(event.kind) << " round=" << event.round
        << " machine=" << event.machine;
    if (event.kind == FaultKind::kDrop || event.kind == FaultKind::kDuplicate) {
      out << " message=" << event.message;
    }
    if (event.kind == FaultKind::kStraggler) out << " delay=" << event.delay;
    if (event.attempts != 1) out << " attempts=" << event.attempts;
    out << "\n";
  }
  return out.str();
}

void RecoveryStats::merge(const RecoveryStats& other) {
  faults_injected += other.faults_injected;
  crashes += other.crashes;
  messages_dropped += other.messages_dropped;
  duplicates_suppressed += other.duplicates_suppressed;
  straggler_rounds += other.straggler_rounds;
  retries += other.retries;
  replayed_rounds += other.replayed_rounds;
  checkpoints += other.checkpoints;
  checkpoint_words += other.checkpoint_words;
  for (const auto& [label, count] : other.retries_by_label) {
    retries_by_label[label] += count;
  }
}

}  // namespace dmpc::mpc
