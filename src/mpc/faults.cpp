#include "mpc/faults.hpp"

#include <sstream>

#include "obs/metrics_registry.hpp"
#include "support/parse_error.hpp"

namespace dmpc::mpc {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kStraggler:
      return "straggler";
  }
  return "unknown";
}

const char* checkpoint_mode_name(CheckpointMode mode) {
  switch (mode) {
    case CheckpointMode::kOff:
      return "off";
    case CheckpointMode::kRound:
      return "round";
    case CheckpointMode::kPhase:
      return "phase";
  }
  return "unknown";
}

std::vector<const FaultEvent*> FaultPlan::active(std::uint64_t begin,
                                                 std::uint64_t end,
                                                 std::uint32_t attempt) const {
  std::vector<const FaultEvent*> out;
  for (const FaultEvent& event : events_) {
    if (event.round >= begin && event.round < end && attempt < event.attempts) {
      out.push_back(&event);
    }
  }
  return out;
}

std::string FaultPlan::check() const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& event = events_[i];
    if (event.attempts == 0) {
      return "fault event #" + std::to_string(i) +
             " has attempts=0 (an event must fire on at least one attempt)";
    }
    if (event.kind == FaultKind::kStraggler && event.delay == 0) {
      return "fault event #" + std::to_string(i) +
             " is a straggler with delay=0 (must delay by >= 1 round)";
    }
  }
  return "";
}

namespace {

bool parse_kind(const std::string& token, FaultKind* kind) {
  if (token == "crash") {
    *kind = FaultKind::kCrash;
  } else if (token == "drop") {
    *kind = FaultKind::kDrop;
  } else if (token == "duplicate") {
    *kind = FaultKind::kDuplicate;
  } else if (token == "straggler") {
    *kind = FaultKind::kStraggler;
  } else {
    return false;
  }
  return true;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.size() > kMaxLineBytes) {
      throw ParseError(ParseErrorCode::kLimitExceeded,
                       "line exceeds " + std::to_string(kMaxLineBytes) +
                           " byte limit",
                       line_no);
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const std::vector<parse::Token> toks = parse::tokenize(line);
    if (toks.empty()) continue;  // blank / comment-only line
    FaultEvent event;
    if (!parse_kind(toks[0].text, &event.kind)) {
      throw ParseError(ParseErrorCode::kBadToken,
                       "unknown fault kind "
                       "(expected crash|drop|duplicate|straggler)",
                       line_no, toks[0].column, parse::clip(toks[0].text));
    }
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const parse::Token& tok = toks[i];
      const auto eq = tok.text.find('=');
      if (eq == std::string::npos) {
        throw ParseError(ParseErrorCode::kMalformedLine,
                         "expected key=value", line_no, tok.column,
                         parse::clip(tok.text));
      }
      const std::string key = tok.text.substr(0, eq);
      // Locate the value token precisely: its column is just past the '='.
      const parse::Token value_tok{tok.text.substr(eq + 1),
                                   tok.column + eq + 1};
      const std::uint64_t value = parse::require_u64(value_tok, line_no);
      if (key == "round") {
        event.round = value;
      } else if (key == "machine") {
        event.machine = value;
      } else if (key == "message") {
        event.message = value;
      } else if (key == "delay") {
        event.delay = value;
      } else if (key == "attempts") {
        if (value > RecoveryOptions::kMaxRetries + 1ull) {
          throw ParseError(ParseErrorCode::kOutOfRange,
                           "attempts exceeds retry cap of " +
                               std::to_string(RecoveryOptions::kMaxRetries),
                           line_no, value_tok.column,
                           parse::clip(value_tok.text));
        }
        event.attempts = static_cast<std::uint32_t>(value);
      } else {
        throw ParseError(ParseErrorCode::kBadToken,
                         "unknown key "
                         "(expected round|machine|message|delay|attempts)",
                         line_no, tok.column, parse::clip(key));
      }
    }
    if (plan.events().size() >= kMaxEvents) {
      throw ParseError(ParseErrorCode::kLimitExceeded,
                       "plan exceeds " + std::to_string(kMaxEvents) +
                           " event limit",
                       line_no);
    }
    plan.add(event);
  }
  if (const std::string problem = plan.check(); !problem.empty()) {
    throw ParseError(ParseErrorCode::kOutOfRange, problem);
  }
  return plan;
}

FaultPlan FaultPlan::parse(const std::string& text, std::string* error) {
  try {
    const FaultPlan plan = parse(text);
    if (error != nullptr) error->clear();
    return plan;
  } catch (const ParseError& e) {
    if (error != nullptr) *error = e.what();
    return FaultPlan{};
  }
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  for (const FaultEvent& event : events_) {
    out << fault_kind_name(event.kind) << " round=" << event.round
        << " machine=" << event.machine;
    if (event.kind == FaultKind::kDrop || event.kind == FaultKind::kDuplicate) {
      out << " message=" << event.message;
    }
    if (event.kind == FaultKind::kStraggler) out << " delay=" << event.delay;
    if (event.attempts != 1) out << " attempts=" << event.attempts;
    out << "\n";
  }
  return out.str();
}

void RecoveryStats::merge(const RecoveryStats& other) {
  faults_injected += other.faults_injected;
  crashes += other.crashes;
  messages_dropped += other.messages_dropped;
  duplicates_suppressed += other.duplicates_suppressed;
  straggler_rounds += other.straggler_rounds;
  retries += other.retries;
  replayed_rounds += other.replayed_rounds;
  checkpoints += other.checkpoints;
  checkpoint_words += other.checkpoint_words;
  for (const auto& [label, count] : other.retries_by_label) {
    retries_by_label[label] += count;
  }
  storage.merge(other.storage);
}

void RecoveryStats::export_to(obs::MetricsRegistry& registry) const {
  const auto section = obs::MetricSection::kRecovery;
  registry.counter("recovery/faults_injected", section).add(faults_injected);
  registry.counter("recovery/crashes", section).add(crashes);
  registry.counter("recovery/messages_dropped", section).add(messages_dropped);
  registry.counter("recovery/duplicates_suppressed", section)
      .add(duplicates_suppressed);
  registry.counter("recovery/straggler_rounds", section).add(straggler_rounds);
  registry.counter("recovery/retries", section).add(retries);
  registry.counter("recovery/replayed_rounds", section).add(replayed_rounds);
  registry.counter("recovery/checkpoints", section).add(checkpoints);
  registry.counter("recovery/checkpoint_words", section).add(checkpoint_words);
  for (const auto& [label, count] : retries_by_label) {
    registry.counter("recovery/retries", label, section).add(count);
  }
  storage.export_to(registry);
}

}  // namespace dmpc::mpc
