// Typed errors for the host storage layer (mpc/storage.hpp).
//
// ParseError covers malformed *bytes* (an adversary wrote the file wrong);
// StorageError covers a filesystem that *misbehaves* while the bytes were
// supposed to be fine: checksum mismatches against the manifest's CRC64,
// short reads, transient EIO, mmap failures, and shards that exhausted their
// quarantine budget. The distinction matters to callers: a ParseError will
// never succeed on retry, a StorageError might (and the recovery ladder in
// storage.cpp retries/quarantines/degrades before letting one escape).
//
// StorageError derives from CheckFailure so pre-existing catch sites keep
// working; new code should catch StorageError first and inspect code().
#pragma once

#include <cstdint>
#include <string>

#include "support/check.hpp"

namespace dmpc::mpc {

/// Stable identifier for each class of storage failure.
enum class StorageErrorCode : std::uint8_t {
  kChecksumMismatch = 1,  ///< Shard/manifest bytes disagree with their CRC64.
  kShortRead,             ///< Fewer bytes arrived than the entry promises.
  kIoTransient,           ///< A read failed with a retryable errno (EIO...).
  kMapFailed,             ///< mmap/ftruncate refused the mapping.
  kQuarantined,           ///< A shard kept failing after quarantine re-reads.
};

/// Short stable name for a code ("checksum_mismatch", ...), for logs/tests.
inline const char* storage_error_code_name(StorageErrorCode code) {
  switch (code) {
    case StorageErrorCode::kChecksumMismatch:
      return "checksum_mismatch";
    case StorageErrorCode::kShortRead:
      return "short_read";
    case StorageErrorCode::kIoTransient:
      return "io_transient";
    case StorageErrorCode::kMapFailed:
      return "map_failed";
    case StorageErrorCode::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

/// Sentinel `shard()` value for failures on the manifest (or not tied to any
/// one shard at all).
inline constexpr std::uint64_t kManifestShard =
    ~static_cast<std::uint64_t>(0);

/// Thrown by the storage layer when the filesystem misbehaves. Recoverable
/// by construction: the throw site leaves no partial mapping behind, so
/// callers can retry, quarantine, or degrade to another backend.
class StorageError : public CheckFailure {
 public:
  StorageError(StorageErrorCode code, std::string detail,
               std::uint64_t shard = kManifestShard)
      : CheckFailure(format(code, detail, shard)),
        code_(code),
        shard_(shard),
        detail_(std::move(detail)) {}

  StorageErrorCode code() const { return code_; }
  /// Shard index the failure is attributed to; kManifestShard for the
  /// manifest or backend-wide failures.
  std::uint64_t shard() const { return shard_; }
  const std::string& detail() const { return detail_; }

 private:
  static std::string format(StorageErrorCode code, const std::string& detail,
                            std::uint64_t shard) {
    std::string out = "storage error [";
    out += storage_error_code_name(code);
    out += "]";
    if (shard != kManifestShard) {
      out += " shard " + std::to_string(shard);
    }
    out += ": ";
    out += detail;
    return out;
  }

  StorageErrorCode code_;
  std::uint64_t shard_;
  std::string detail_;
};

}  // namespace dmpc::mpc
