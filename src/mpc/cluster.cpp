#include "mpc/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "obs/events.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "support/math.hpp"

namespace dmpc::mpc {

ClusterConfig ClusterConfig::for_input(std::uint64_t n, double eps,
                                       std::uint64_t total_words,
                                       std::uint64_t min_space) {
  DMPC_CHECK(eps > 0.0 && eps <= 1.0);
  ClusterConfig config;
  config.machine_space = std::max(min_space, ipow_real(std::max<std::uint64_t>(n, 2), eps));
  config.num_machines =
      ceil_div(std::max<std::uint64_t>(total_words, 1), config.machine_space) + 1;
  return config;
}

ClusterConfig apply_overrides(ClusterConfig base,
                              const ClusterOverrides& overrides) {
  if (overrides.machine_space != 0) {
    base.machine_space = overrides.machine_space;
  }
  if (overrides.num_machines != 0) {
    base.num_machines = overrides.num_machines;
  }
  base.enforce_space = overrides.enforce_space;
  return base;
}

Cluster::Cluster(ClusterConfig config) : config_(config) {
  DMPC_CHECK_MSG(config_.machine_space >= 2, "machine space must be >= 2");
  if (config_.num_machines == 0) config_.num_machines = 1;
}

Cluster::~Cluster() { close_open_phase(); }

Cluster::Cluster(Cluster&& other) noexcept
    : config_(other.config_),
      metrics_(std::move(other.metrics_)),
      trace_(other.trace_),
      profiler_(other.profiler_),
      events_(other.events_),
      open_phase_(std::move(other.open_phase_)),
      phase_open_(other.phase_open_),
      storage_(other.storage_),
      executor_(std::move(other.executor_)),
      locals_(std::move(other.locals_)),
      fault_plan_(std::move(other.fault_plan_)),
      recovery_(other.recovery_),
      recovery_stats_(other.recovery_stats_),
      phase_round_(other.phase_round_),
      fault_covered_round_(other.fault_covered_round_) {
  other.phase_open_ = false;
  other.events_ = nullptr;
}

void Cluster::close_open_phase() {
  if (!phase_open_) return;
  phase_open_ = false;
  if (!obs::events_enabled(events_)) return;
  obs::ProgressEvent e;
  e.type = obs::EventType::kPhaseFinished;
  e.label = open_phase_;
  e.round = metrics_.rounds();
  e.comm_words = metrics_.total_communication();
  events_->emit(std::move(e));
}

void Cluster::emit_round_completed(const std::string& label,
                                   std::uint64_t rounds) {
  if (!obs::events_enabled(events_)) return;
  obs::ProgressEvent e;
  e.type = obs::EventType::kRoundCompleted;
  e.label = label;
  e.round = metrics_.rounds();
  e.rounds = rounds;
  e.comm_words = metrics_.total_communication();
  if (profiler_ != nullptr) {
    if (const obs::ProfileRecord* rec = profiler_->last_record()) {
      e.load_max = rec->load_max;
      e.gini_ppm = rec->gini_ppm;
    }
  }
  events_->emit(std::move(e));
}

void Cluster::emit_recovery_event(obs::EventType type, const std::string& label,
                                  std::uint64_t round, std::int64_t value,
                                  const std::string& detail) {
  if (!obs::events_enabled(events_)) return;
  obs::ProgressEvent e;
  e.type = type;
  e.label = label;
  e.round = round;
  e.comm_words = metrics_.total_communication();
  e.value = value;
  e.detail = detail;
  events_->emit(std::move(e));
}

void Cluster::set_faults(FaultPlan plan, RecoveryOptions recovery) {
  const std::string problem = plan.check();
  DMPC_CHECK_MSG(problem.empty(), "inadmissible fault plan: " << problem);
  DMPC_CHECK_MSG(recovery.backoff_rounds >= 1, "backoff_rounds must be >= 1");
  DMPC_CHECK_MSG(recovery.max_retries <= RecoveryOptions::kMaxRetries,
                 "max_retries " << recovery.max_retries << " exceeds cap "
                                << RecoveryOptions::kMaxRetries);
  fault_plan_ = std::move(plan);
  recovery_ = recovery;
  recovery_stats_.reset();
  phase_round_ = metrics_.rounds();
  fault_covered_round_ = metrics_.rounds();
}

std::uint64_t Cluster::tree_depth(std::uint64_t items) const {
  if (items <= 1) return 1;
  const double depth = std::log(static_cast<double>(items)) /
                       std::log(static_cast<double>(config_.machine_space));
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(depth)));
}

void Cluster::set_trace(obs::TraceSession* trace) {
  trace_ = trace;
  if (trace_ != nullptr) trace_->attach_metrics(&metrics_);
}

namespace {

std::string machine_tag(std::uint64_t machine) {
  return machine == Cluster::kAnyMachine ? std::string("any")
                                         : std::to_string(machine);
}

}  // namespace

void Cluster::check_load(std::uint64_t words, const std::string& what,
                         const std::string& label, std::uint64_t machine) {
  metrics_.observe_load(words, label);
  if (profiler_ != nullptr) profiler_->observe_load(words, machine);
  if (config_.enforce_space) {
    DMPC_CHECK_MSG(words <= config_.machine_space,
                   what << ": machine load exceeds S [machine="
                        << machine_tag(machine) << " measured=" << words
                        << " limit=" << config_.machine_space << "]");
  }
}

void Cluster::load(std::vector<std::vector<Word>> inputs) {
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    check_load(inputs[i].size(), "load: machine " + std::to_string(i), "", i);
  }
  locals_ = std::move(inputs);
}

const std::vector<Word>& Cluster::local(std::uint64_t machine) const {
  DMPC_CHECK(machine < locals_.size());
  return locals_[machine];
}

void Cluster::route_and_deliver(std::vector<std::vector<Message>>& outboxes,
                                const std::string& label) {
  const std::uint64_t m = locals_.size();
  // Route with capacity accounting.
  std::vector<std::uint64_t> recv_volume(m, 0);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t sent = 0;
    for (const Message& msg : outboxes[i]) {
      DMPC_CHECK_MSG(msg.to < m, "message to nonexistent machine");
      sent += msg.payload.size();
      recv_volume[msg.to] += msg.payload.size();
    }
    check_load(sent, label + ": send volume of machine " + std::to_string(i),
               label, i);
    metrics_.add_communication(sent, label);
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    check_load(recv_volume[i],
               label + ": receive volume of machine " + std::to_string(i),
               label, i);
  }
  // Deliver: received words are appended to local storage in sender order.
  for (std::uint64_t i = 0; i < m; ++i) {
    for (Message& msg : outboxes[i]) {
      auto& dst = locals_[msg.to];
      dst.insert(dst.end(), msg.payload.begin(), msg.payload.end());
    }
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    check_load(locals_[i].size(),
               label + ": local storage of machine " + std::to_string(i),
               label, i);
  }
  metrics_.charge_rounds(1, label);
  if (profiler_ != nullptr) {
    profiler_->commit(label, metrics_.rounds(), 1,
                      metrics_.total_communication());
  }
  emit_round_completed(label, 1);
}

void Cluster::note_checkpoint(const std::string& label, std::uint64_t words) {
  recovery_stats_.checkpoints += 1;
  recovery_stats_.checkpoint_words += words;
  if (recovery_.trace_recovery && obs::enabled(trace_)) {
    trace_->instant("recovery/checkpoint",
                    {obs::arg("label", label), obs::arg("words", words),
                     obs::arg("round", metrics_.rounds())});
  }
  emit_recovery_event(obs::EventType::kCheckpointTaken, label,
                      metrics_.rounds(), static_cast<std::int64_t>(words), "");
}

void Cluster::register_retry(const std::string& label, std::uint64_t round,
                             std::uint64_t cost, std::uint32_t attempt) {
  const std::uint32_t spent = attempt + 1;  // attempts consumed so far
  // Emitted before the budget checks so a terminal FaultError still leaves
  // the failing attempt visible in the event stream.
  emit_recovery_event(obs::EventType::kRecoveryAttempt, label, round,
                      static_cast<std::int64_t>(spent), "");
  if (recovery_.checkpoint == CheckpointMode::kOff) {
    throw FaultError(label, round, spent,
                     "checkpointing is off (checkpoint=off), no snapshot to "
                     "restore");
  }
  if (spent > recovery_.max_retries) {
    throw FaultError(label, round, spent,
                     "retry budget exhausted (max_retries=" +
                         std::to_string(recovery_.max_retries) + ")");
  }
  recovery_stats_.retries += 1;
  recovery_stats_.retries_by_label[label] += 1;
  // kPhase restores the last phase mark, so the replay re-executes every
  // round since that mark; kRound restores the snapshot taken at the top of
  // this superstep. Retry k of a c-round superstep consumes
  // backoff_rounds * (c + rollback) * 2^{k-1} rounds of the recovery budget.
  std::uint64_t rollback = 0;
  if (recovery_.checkpoint == CheckpointMode::kPhase && round > phase_round_) {
    rollback = round - phase_round_;
  }
  const std::uint64_t backoff = recovery_.backoff_rounds
                                << std::min<std::uint32_t>(attempt, 32);
  recovery_stats_.replayed_rounds += (cost + rollback) * backoff;
  if (recovery_.trace_recovery && obs::enabled(trace_)) {
    trace_->instant("recovery/retry",
                    {obs::arg("label", label), obs::arg("round", round),
                     obs::arg("attempt", static_cast<std::uint64_t>(spent))});
  }
}

void Cluster::mark_phase(const std::string& label, std::uint64_t state_words) {
  // Phase events are model-section: they must flow on every plan, so they
  // are emitted before the empty-plan early return below. The round/comm
  // fields are fault-free by the Metrics contract.
  close_open_phase();
  if (obs::events_enabled(events_)) {
    obs::ProgressEvent e;
    e.type = obs::EventType::kPhaseStarted;
    e.label = label;
    e.round = metrics_.rounds();
    e.comm_words = metrics_.total_communication();
    e.value = static_cast<std::int64_t>(state_words);
    events_->emit(std::move(e));
  }
  open_phase_ = label;
  phase_open_ = true;
  if (fault_plan_.empty()) return;
  phase_round_ = metrics_.rounds();
  if (recovery_.checkpoint == CheckpointMode::kPhase) {
    note_checkpoint(label, state_words);
  }
}

void Cluster::run_with_recovery(const std::string& label,
                                std::uint64_t round_cost,
                                std::uint64_t state_words,
                                const std::function<void()>& body) {
  if (fault_plan_.empty()) {
    body();
    return;
  }
  const std::uint64_t round = metrics_.rounds();
  const std::uint64_t cost = std::max<std::uint64_t>(round_cost, 1);
  // Extend the window back over any rounds charged since the last
  // recoverable superstep (central simulation charges have no recovery
  // boundary of their own), so windows tile the round axis and every
  // in-range event fires exactly once.
  const std::uint64_t begin = std::min(fault_covered_round_, round);
  const std::uint64_t end = round + cost;
  fault_covered_round_ = end;
  if (recovery_.checkpoint == CheckpointMode::kRound) {
    note_checkpoint(label, state_words);
  }
  std::uint32_t attempt = 0;
  while (true) {
    bool failed = false;
    for (const FaultEvent* event : fault_plan_.active(begin, end, attempt)) {
      recovery_stats_.faults_injected += 1;
      switch (event->kind) {
        case FaultKind::kCrash:
          recovery_stats_.crashes += 1;
          failed = true;
          break;
        case FaultKind::kDrop:
          recovery_stats_.messages_dropped += 1;
          failed = true;
          break;
        case FaultKind::kDuplicate:
          // The aggregation-tree router tags fragments with (round, source),
          // so a redelivery is recognized and discarded centrally.
          recovery_stats_.duplicates_suppressed += 1;
          break;
        case FaultKind::kStraggler:
          // Lemma-4 primitives synchronize at every tree level; a straggler
          // stretches the barrier but changes no data.
          recovery_stats_.straggler_rounds += event->delay;
          break;
      }
    }
    // The body is deterministic and overwrites its outputs, so re-running it
    // after a failed attempt models the lost work while producing the exact
    // fault-free result.
    body();
    if (!failed) {
      if (attempt > 0) {
        emit_recovery_event(obs::EventType::kRecovered, label, round,
                            static_cast<std::int64_t>(attempt), "");
      }
      return;
    }
    register_retry(label, round, cost, attempt);
    attempt += 1;
  }
}

void Cluster::charge_recoverable(std::uint64_t rounds, const std::string& label,
                                 std::uint64_t state_words) {
  run_with_recovery(label, rounds, state_words, [] {});
  metrics_.charge_rounds(rounds, label);
  if (profiler_ != nullptr) {
    profiler_->commit(label, metrics_.rounds(), rounds,
                      metrics_.total_communication());
  }
  emit_round_completed(label, rounds);
}

void Cluster::step(const std::function<void(MachineContext&)>& compute,
                   const std::string& label) {
  obs::Span span(trace_, label);
  const std::uint64_t m = locals_.size();
  if (fault_plan_.empty()) {
    std::vector<std::vector<Message>> outboxes(m);
    // Machines are independent within a round: each compute touches only its
    // own locals_[i] / outboxes[i], so host-parallel execution is safe and
    // (machine i's work being fixed) deterministic.
    executor_.for_each(0, m, [&](std::uint64_t i) {
      MachineContext ctx(i, &locals_[i], &outboxes[i]);
      compute(ctx);
    });
    route_and_deliver(outboxes, label);
    return;
  }

  // Faulty path: snapshot, attempt, and replay until the superstep commits.
  // All routing/metrics accounting happens only on the committing attempt,
  // so Metrics (rounds, peak load, communication) stays byte-identical to
  // the fault-free run; every fault and replay lands in RecoveryStats.
  const std::uint64_t round = metrics_.rounds();
  const std::uint64_t begin = std::min(fault_covered_round_, round);
  const std::uint64_t end = round + 1;
  fault_covered_round_ = end;
  std::vector<std::vector<Word>> checkpoint;
  if (recovery_.checkpoint != CheckpointMode::kOff) {
    // The snapshot itself is needed to restore state whichever granularity
    // is charged; under kPhase its *cost* was accounted at the last
    // mark_phase, so only kRound records it here.
    checkpoint = locals_;
    if (recovery_.checkpoint == CheckpointMode::kRound) {
      std::uint64_t words = 0;
      for (const auto& local : checkpoint) words += local.size();
      note_checkpoint(label, words);
    }
  }
  std::uint32_t attempt = 0;
  while (true) {
    const auto active = fault_plan_.active(begin, end, attempt);
    bool failed = false;
    std::vector<char> crashed(m, 0);
    for (const FaultEvent* event : active) {
      if (event->kind == FaultKind::kCrash && event->machine < m) {
        recovery_stats_.faults_injected += 1;
        recovery_stats_.crashes += 1;
        crashed[event->machine] = 1;
        failed = true;
      } else if (event->kind == FaultKind::kStraggler && event->machine < m) {
        recovery_stats_.faults_injected += 1;
        recovery_stats_.straggler_rounds += event->delay;
      }
    }
    std::vector<std::vector<Message>> outboxes(m);
    executor_.for_each(0, m, [&](std::uint64_t i) {
      if (crashed[i]) return;  // lost worker: compute + sends discarded
      MachineContext ctx(i, &locals_[i], &outboxes[i]);
      compute(ctx);
    });
    for (const FaultEvent* event : active) {
      if (event->machine >= m) continue;
      if (event->kind == FaultKind::kDrop &&
          event->message < outboxes[event->machine].size()) {
        recovery_stats_.faults_injected += 1;
        recovery_stats_.messages_dropped += 1;
        failed = true;
      } else if (event->kind == FaultKind::kDuplicate &&
                 event->message < outboxes[event->machine].size()) {
        // The router deduplicates the second copy on (sender, ordinal), so
        // delivery is unchanged; only the ledger notices.
        recovery_stats_.faults_injected += 1;
        recovery_stats_.duplicates_suppressed += 1;
      }
    }
    if (!failed) {
      route_and_deliver(outboxes, label);
      if (attempt > 0) {
        emit_recovery_event(obs::EventType::kRecovered, label, round,
                            static_cast<std::int64_t>(attempt), "");
      }
      return;
    }
    register_retry(label, round, 1, attempt);
    locals_ = checkpoint;
    attempt += 1;
  }
}

}  // namespace dmpc::mpc
