#include "mpc/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "support/math.hpp"

namespace dmpc::mpc {

ClusterConfig ClusterConfig::for_input(std::uint64_t n, double eps,
                                       std::uint64_t total_words,
                                       std::uint64_t min_space) {
  DMPC_CHECK(eps > 0.0 && eps <= 1.0);
  ClusterConfig config;
  config.machine_space = std::max(min_space, ipow_real(std::max<std::uint64_t>(n, 2), eps));
  config.num_machines =
      ceil_div(std::max<std::uint64_t>(total_words, 1), config.machine_space) + 1;
  return config;
}

Cluster::Cluster(ClusterConfig config) : config_(config) {
  DMPC_CHECK_MSG(config_.machine_space >= 2, "machine space must be >= 2");
  if (config_.num_machines == 0) config_.num_machines = 1;
}

std::uint64_t Cluster::tree_depth(std::uint64_t items) const {
  if (items <= 1) return 1;
  const double depth = std::log(static_cast<double>(items)) /
                       std::log(static_cast<double>(config_.machine_space));
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(depth)));
}

void Cluster::set_trace(obs::TraceSession* trace) {
  trace_ = trace;
  if (trace_ != nullptr) trace_->attach_metrics(&metrics_);
}

void Cluster::check_load(std::uint64_t words, const std::string& what,
                         const std::string& label) {
  metrics_.observe_load(words, label);
  if (config_.enforce_space) {
    DMPC_CHECK_MSG(words <= config_.machine_space,
                   what << ": machine load " << words << " exceeds S="
                        << config_.machine_space);
  }
}

void Cluster::load(std::vector<std::vector<Word>> inputs) {
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    check_load(inputs[i].size(), "load: machine " + std::to_string(i));
  }
  locals_ = std::move(inputs);
}

const std::vector<Word>& Cluster::local(std::uint64_t machine) const {
  DMPC_CHECK(machine < locals_.size());
  return locals_[machine];
}

void Cluster::step(const std::function<void(MachineContext&)>& compute,
                   const std::string& label) {
  obs::Span span(trace_, label);
  const std::uint64_t m = locals_.size();
  std::vector<std::vector<Message>> outboxes(m);
  // Machines are independent within a round: each compute touches only its
  // own locals_[i] / outboxes[i], so host-parallel execution is safe and
  // (machine i's work being fixed) deterministic.
  executor_.for_each(0, m, [&](std::uint64_t i) {
    MachineContext ctx(i, &locals_[i], &outboxes[i]);
    compute(ctx);
  });
  // Route with capacity accounting.
  std::vector<std::uint64_t> recv_volume(m, 0);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t sent = 0;
    for (const Message& msg : outboxes[i]) {
      DMPC_CHECK_MSG(msg.to < m, "message to nonexistent machine");
      sent += msg.payload.size();
      recv_volume[msg.to] += msg.payload.size();
    }
    check_load(sent, label + ": send volume of machine " + std::to_string(i),
               label);
    metrics_.add_communication(sent, label);
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    check_load(recv_volume[i],
               label + ": receive volume of machine " + std::to_string(i),
               label);
  }
  // Deliver: received words are appended to local storage in sender order.
  for (std::uint64_t i = 0; i < m; ++i) {
    for (Message& msg : outboxes[i]) {
      auto& dst = locals_[msg.to];
      dst.insert(dst.end(), msg.payload.begin(), msg.payload.end());
    }
  }
  for (std::uint64_t i = 0; i < m; ++i) {
    check_load(locals_[i].size(),
               label + ": local storage of machine " + std::to_string(i),
               label);
  }
  metrics_.charge_rounds(1, label);
}

}  // namespace dmpc::mpc
