#include "mpc/lowlevel.hpp"

#include <algorithm>
#include <numeric>

#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace dmpc::mpc::lowlevel {

namespace {

std::uint64_t block_size(const Cluster& cluster) {
  // Even so that two-word records (the sort's tagged keys) never straddle a
  // block boundary.
  return std::max<std::uint64_t>(2, (cluster.space() / 4) & ~std::uint64_t{1});
}

}  // namespace

std::uint64_t machines_for(const Cluster& cluster, std::uint64_t items) {
  return std::max<std::uint64_t>(1, ceil_div(items, block_size(cluster)));
}

void load_blocks(Cluster& cluster, const std::vector<Word>& items) {
  const std::uint64_t b = block_size(cluster);
  const std::uint64_t m = machines_for(cluster, items.size());
  std::vector<std::vector<Word>> blocks(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t begin = i * b;
    const std::uint64_t end = std::min<std::uint64_t>(items.size(), begin + b);
    if (begin < end) {
      blocks[i].assign(items.begin() + begin, items.begin() + end);
    }
  }
  cluster.load(std::move(blocks));
}

std::vector<Word> collect_blocks(const Cluster& cluster, std::uint64_t items) {
  std::vector<Word> out;
  out.reserve(items);
  for (std::uint64_t i = 0; i < cluster.low_level_machines(); ++i) {
    const auto& local = cluster.local(i);
    out.insert(out.end(), local.begin(), local.end());
  }
  DMPC_CHECK(out.size() == items);
  return out;
}

std::vector<Word> prefix_sum(Cluster& cluster,
                             const std::vector<Word>& items) {
  if (items.empty()) return {};
  obs::Span span(cluster.trace(), "lowlevel/prefix_sum");
  span.arg("items", static_cast<std::uint64_t>(items.size()));
  load_blocks(cluster, items);
  const std::uint64_t m = cluster.low_level_machines();
  const std::uint64_t f = std::max<std::uint64_t>(2, cluster.space() / 4);

  // Level sizes of the aggregation tree.
  std::vector<std::uint64_t> level_size{m};
  while (level_size.back() > 1) {
    level_size.push_back(ceil_div(level_size.back(), f));
  }
  const auto levels = static_cast<std::uint64_t>(level_size.size());

  // Storage discipline: a machine permanently keeps its block plus ONE word
  // per level it participates in (its own subtree sum); the f child sums a
  // parent aggregates are scratch, dropped in the same step. During the
  // down-sweep children re-send their sums, so peak storage is
  // block + levels + f + 1 = O(S) regardless of tree depth. All positions
  // below are orchestrator bookkeeping; the values only move via step().
  std::vector<std::uint64_t> block_len(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    block_len[i] = cluster.local(i).size();
  }
  // own_pos[l][id]: position of machine id's level-l subtree sum.
  // recv_pos[id]: position where the child sums id received in the most
  // recent up-sweep delivery start.
  std::vector<std::vector<std::uint64_t>> own_pos(
      levels, std::vector<std::uint64_t>(m, 0));
  std::vector<std::uint64_t> recv_pos(m, 0);

  // --- Up-sweep. ---
  for (std::uint64_t l = 0; l + 1 < levels; ++l) {
    // Post-compute size of this round's parents (every parent is also a
    // sender this round, so it sheds last round's scratch and appends its
    // own level-l sum): that is where the new child sums will land.
    std::vector<std::uint64_t> landing(level_size[l + 1]);
    for (std::uint64_t p = 0; p < level_size[l + 1]; ++p) {
      landing[p] = (l == 0 ? block_len[p] : recv_pos[p]) + 1;
    }
    cluster.step(
        [&](MachineContext& ctx) {
          const std::uint64_t id = ctx.id();
          if (id >= level_size[l]) return;
          Word sum = 0;
          if (l == 0) {
            for (std::uint64_t i = 0; i < block_len[id]; ++i) {
              sum += ctx.local()[i];
            }
          } else {
            // Child sums received last round: aggregate, then drop.
            for (std::uint64_t i = recv_pos[id]; i < ctx.local().size();
                 ++i) {
              sum += ctx.local()[i];
            }
            ctx.local().resize(recv_pos[id]);
          }
          own_pos[l][id] = ctx.local().size();
          ctx.local().push_back(sum);
          ctx.send(id / f, {sum});
        },
        "lowlevel/prefix_up");
    for (std::uint64_t p = 0; p < level_size[l + 1]; ++p) {
      recv_pos[p] = landing[p];
    }
  }

  // --- Down-sweep: two steps per level (children re-send their sums, the
  // parent replies with exclusive bases). base_pos = where a machine's
  // received base sits.
  std::vector<std::uint64_t> base_pos(m, static_cast<std::uint64_t>(-1));
  for (std::uint64_t l = levels; l-- > 1;) {
    // Step A: level l-1 machines re-send their own level-(l-1) sums.
    std::vector<std::uint64_t> resend_pos(level_size[l], 0);
    for (std::uint64_t p = 0; p < level_size[l]; ++p) {
      resend_pos[p] = cluster.local(p).size();
    }
    cluster.step(
        [&](MachineContext& ctx) {
          const std::uint64_t id = ctx.id();
          if (id >= level_size[l - 1]) return;
          ctx.send(id / f, {ctx.local()[own_pos[l - 1][id]]});
        },
        "lowlevel/prefix_down_gather");
    // Step B: parents compute and send each child its exclusive base, then
    // drop the scratch.
    std::vector<std::uint64_t> landing(level_size[l - 1]);
    for (std::uint64_t c = 0; c < level_size[l - 1]; ++c) {
      // Parents shed their resend scratch in this step before delivery.
      landing[c] =
          c < level_size[l] ? resend_pos[c] : cluster.local(c).size();
    }
    cluster.step(
        [&](MachineContext& ctx) {
          const std::uint64_t id = ctx.id();
          if (id >= level_size[l]) return;
          Word base = 0;
          if (base_pos[id] != static_cast<std::uint64_t>(-1)) {
            base = ctx.local()[base_pos[id]];
          }
          const std::uint64_t off = resend_pos[id];
          std::vector<Word> sums(ctx.local().begin() + off,
                                 ctx.local().end());
          ctx.local().resize(off);
          for (std::uint64_t i = 0; i < sums.size(); ++i) {
            ctx.send(id * f + i, {base});
            base += sums[i];
          }
        },
        "lowlevel/prefix_down_scatter");
    for (std::uint64_t c = 0; c < level_size[l - 1]; ++c) {
      base_pos[c] = landing[c];
    }
  }

  // --- Local pass: rewrite blocks to exclusive prefixes. ---
  cluster.step(
      [&](MachineContext& ctx) {
        const std::uint64_t id = ctx.id();
        Word acc = 0;
        if (m > 1) {
          DMPC_CHECK(base_pos[id] != static_cast<std::uint64_t>(-1));
          acc = ctx.local()[base_pos[id]];
        }
        for (std::uint64_t i = 0; i < block_len[id]; ++i) {
          const Word value = ctx.local()[i];
          ctx.local()[i] = acc;
          acc += value;
        }
        ctx.local().resize(block_len[id]);  // drop scratch
      },
      "lowlevel/prefix_local");

  return collect_blocks(cluster, items.size());
}

namespace {

struct Range {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t size() const { return hi - lo; }
};

// Sort keys are (value, tag) pairs, encoded as two consecutive words in
// machine storage and in messages. The tag (original position) makes every
// key distinct, so splitters partition duplicate-heavy inputs into balanced
// buckets — the classic sample-sort fix.
struct Key {
  Word value = 0;
  Word tag = 0;
  friend bool operator<(const Key& a, const Key& b) {
    return a.value != b.value ? a.value < b.value : a.tag < b.tag;
  }
};

std::vector<Key> decode_keys(const std::vector<Word>& words) {
  DMPC_CHECK(words.size() % 2 == 0);
  std::vector<Key> keys(words.size() / 2);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = {words[2 * i], words[2 * i + 1]};
  }
  return keys;
}

std::vector<Word> encode_keys(const std::vector<Key>& keys) {
  std::vector<Word> words;
  words.reserve(2 * keys.size());
  for (const Key& k : keys) {
    words.push_back(k.value);
    words.push_back(k.tag);
  }
  return words;
}

}  // namespace

std::vector<Word> sort(Cluster& cluster, std::vector<Word> items) {
  if (items.empty()) return {};
  obs::Span span(cluster.trace(), "lowlevel/sort");
  span.arg("items", static_cast<std::uint64_t>(items.size()));
  // Load tagged pairs: two words per item.
  {
    std::vector<Key> keys(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      keys[i] = {items[i], static_cast<Word>(i)};
    }
    load_blocks(cluster, encode_keys(keys));
  }
  const std::uint64_t m = cluster.low_level_machines();
  const std::uint64_t s = cluster.space();
  // Single-level splitter gather: the coordinator holds its own block
  // (S/4 words) plus one two-word sample from every machine.
  DMPC_CHECK_MSG(block_size(cluster) + 2 * m <= s,
                 "lowlevel sort needs block + 2M <= S (single-level "
                 "splitter gather); fewer items or a larger S required");
  const std::uint64_t f = std::max<std::uint64_t>(2, isqrt(s) / 2);

  // Initial local sort (compute-only round).
  cluster.step(
      [](MachineContext& ctx) {
        auto keys = decode_keys(ctx.local());
        std::sort(keys.begin(), keys.end());
        ctx.local() = encode_keys(keys);
      },
      "lowlevel/sort_local");

  std::vector<Range> ranges{{0, m}};
  while (std::any_of(ranges.begin(), ranges.end(),
                     [](const Range& r) { return r.size() > 1; })) {
    std::vector<const Range*> range_of(m, nullptr);
    for (const Range& r : ranges) {
      for (std::uint64_t i = r.lo; i < r.hi; ++i) range_of[i] = &r;
    }
    auto samples_for = [&](const Range& r) {
      // Budget: the coordinator's own (possibly skew-inflated) data plus
      // all samples must stay within S, so cap sample volume at S/4.
      return std::max<std::uint64_t>(
          1, std::min<std::uint64_t>(f, s / (8 * r.size())));
    };
    auto buckets_of = [&](const Range& r) {
      // Bucket count is limited by the splitter sample size: with t total
      // samples, only ~t/8 quantiles are estimated well enough to keep the
      // routing balanced within the receive budget (skew showed up as
      // router capacity violations otherwise).
      const std::uint64_t total_samples = samples_for(r) * r.size();
      const std::uint64_t b = std::min<std::uint64_t>(
          std::min<std::uint64_t>(f, r.size()),
          std::max<std::uint64_t>(2, total_samples / 8));
      std::vector<Range> subs;
      const std::uint64_t base = r.size() / b, extra = r.size() % b;
      std::uint64_t lo = r.lo;
      for (std::uint64_t i = 0; i < b; ++i) {
        const std::uint64_t width = base + (i < extra ? 1 : 0);
        subs.push_back({lo, lo + width});
        lo += width;
      }
      return subs;
    };

    // --- Step 1: machines send evenly spaced key samples to their range
    // coordinator (2 words per sample). ---
    std::vector<std::uint64_t> coord_base(m, 0);
    for (const Range& r : ranges) coord_base[r.lo] = cluster.local(r.lo).size();
    cluster.step(
        [&](MachineContext& ctx) {
          const Range& r = *range_of[ctx.id()];
          if (r.size() <= 1) return;
          const auto keys = decode_keys(ctx.local());
          const std::uint64_t k = samples_for(r);
          const std::uint64_t b = std::min<std::uint64_t>(f, r.size());
          // Stripe the sampled quantiles across machines: with few samples
          // per machine, sampling everyone's *median* concentrates (block
          // medians of iid data cluster at the global median, so the
          // extreme buckets would absorb most of the data); machine id
          // instead contributes its ((id + j) mod b)-th b-quantile, so the
          // gathered set approximates all global quantiles.
          std::vector<Key> sample;
          for (std::uint64_t j = 0; j < k && !keys.empty(); ++j) {
            const std::uint64_t stripe =
                (ctx.id() + j * std::max<std::uint64_t>(1, b / k)) % b;
            const std::uint64_t pos =
                (stripe * keys.size() + keys.size() / 2) / b;
            sample.push_back(keys[std::min<std::uint64_t>(pos, keys.size() - 1)]);
          }
          if (!sample.empty()) ctx.send(r.lo, encode_keys(sample));
        },
        "lowlevel/sort_sample");

    // --- Step 2: coordinators pick b-1 splitters, send to bucket leaders.
    std::vector<std::uint64_t> splitter_base(m, 0);
    for (const Range& r : ranges) {
      if (r.size() <= 1) continue;
      for (const Range& sub : buckets_of(r)) {
        splitter_base[sub.lo] = cluster.local(sub.lo).size();
      }
    }
    cluster.step(
        [&](MachineContext& ctx) {
          const Range& r = *range_of[ctx.id()];
          if (r.size() <= 1 || ctx.id() != r.lo) return;
          auto& local = ctx.local();
          auto sample = decode_keys(std::vector<Word>(
              local.begin() + coord_base[ctx.id()], local.end()));
          local.resize(coord_base[ctx.id()]);
          std::sort(sample.begin(), sample.end());
          const auto subs = buckets_of(r);
          std::vector<Key> splitters;
          for (std::uint64_t i = 1; i < subs.size(); ++i) {
            splitters.push_back(
                sample.empty() ? Key{}
                               : sample[(i * sample.size()) / subs.size()]);
          }
          for (const Range& sub : subs) {
            ctx.send(sub.lo, encode_keys(splitters));
          }
        },
        "lowlevel/sort_splitters");
    // Coordinators dropped their sample scratch inside the step, so their
    // splitters landed at coord_base, not at the pre-step length.
    for (const Range& r : ranges) {
      if (r.size() > 1) splitter_base[r.lo] = coord_base[r.lo];
    }

    // --- Step 3: bucket leaders relay splitters to bucket members. ---
    std::vector<std::uint64_t> member_base(m, 0);
    for (const Range& r : ranges) {
      if (r.size() <= 1) continue;
      for (const Range& sub : buckets_of(r)) {
        for (std::uint64_t i = sub.lo + 1; i < sub.hi; ++i) {
          member_base[i] = cluster.local(i).size();
        }
      }
    }
    cluster.step(
        [&](MachineContext& ctx) {
          const Range& r = *range_of[ctx.id()];
          if (r.size() <= 1) return;
          for (const Range& sub : buckets_of(r)) {
            if (ctx.id() != sub.lo) continue;
            const std::vector<Word> splitters(
                ctx.local().begin() + splitter_base[ctx.id()],
                ctx.local().end());
            for (std::uint64_t i = sub.lo + 1; i < sub.hi; ++i) {
              ctx.send(i, splitters);
            }
          }
        },
        "lowlevel/sort_relay");
    for (const Range& r : ranges) {
      if (r.size() <= 1) continue;
      for (const Range& sub : buckets_of(r)) {
        member_base[sub.lo] = splitter_base[sub.lo];
      }
    }

    // --- Step 4: route keys to buckets, round-robin within each bucket. ---
    cluster.step(
        [&](MachineContext& ctx) {
          const Range& r = *range_of[ctx.id()];
          if (r.size() <= 1) return;
          auto& local = ctx.local();
          const auto splitters = decode_keys(std::vector<Word>(
              local.begin() + member_base[ctx.id()], local.end()));
          const auto keys = decode_keys(std::vector<Word>(
              local.begin(), local.begin() + member_base[ctx.id()]));
          local.clear();
          const auto subs = buckets_of(r);
          std::vector<std::vector<Key>> bucket_keys(subs.size());
          for (const Key& key : keys) {
            const auto it =
                std::upper_bound(splitters.begin(), splitters.end(), key);
            bucket_keys[static_cast<std::size_t>(it - splitters.begin())]
                .push_back(key);
          }
          for (std::size_t bi = 0; bi < subs.size(); ++bi) {
            const Range& sub = subs[bi];
            auto& bucket = bucket_keys[bi];
            const std::uint64_t width = sub.size();
            for (std::uint64_t j = 0; j < width; ++j) {
              const std::uint64_t begin = j * bucket.size() / width;
              const std::uint64_t end = (j + 1) * bucket.size() / width;
              if (begin == end) continue;
              ctx.send(sub.lo + (ctx.id() + j) % width,
                       encode_keys({bucket.begin() + begin,
                                    bucket.begin() + end}));
            }
          }
        },
        "lowlevel/sort_route");
    // Re-sort received keys (compute-only round).
    cluster.step(
        [&](MachineContext& ctx) {
          const Range& r = *range_of[ctx.id()];
          if (r.size() <= 1) return;
          auto keys = decode_keys(ctx.local());
          std::sort(keys.begin(), keys.end());
          ctx.local() = encode_keys(keys);
        },
        "lowlevel/sort_resort");

    std::vector<Range> next;
    for (const Range& r : ranges) {
      if (r.size() <= 1) {
        next.push_back(r);
      } else {
        for (const Range& sub : buckets_of(r)) next.push_back(sub);
      }
    }
    ranges = std::move(next);
  }

  const auto words = collect_blocks(cluster, 2 * items.size());
  const auto keys = decode_keys(words);
  std::vector<Word> out;
  out.reserve(items.size());
  for (const Key& k : keys) out.push_back(k.value);
  DMPC_CHECK(std::is_sorted(out.begin(), out.end()));
  return out;
}

}  // namespace dmpc::mpc::lowlevel
