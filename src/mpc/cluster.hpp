// The MPC cluster model (paper §1, "The MPC model").
//
// M machines with S words of local space run in synchronous rounds. The
// simulator has two levels:
//
//  1. A *message-passing* level (`step`): user code runs per machine against
//     its local words and posts messages; the router enforces that every
//     machine's sent and received volume fits in S. This level is used by
//     the CONGESTED CLIQUE adapter and by tests that pin down the model
//     semantics.
//
//  2. A *primitive* level (mpc/primitives.hpp): sorting, prefix sums, and
//     segmented aggregation over distributed arrays, the Lemma-4 toolbox the
//     paper builds everything from. Primitives execute centrally (we are one
//     process) but lay data out in machine-sized blocks, verify every block
//     fits in S, and charge the honest round cost: a fan-in-S aggregation
//     tree has depth ceil(log N / log S), which is the O(1/eps) "constant"
//     of the fully scalable model — and exactly the source of the
//     O(log log n) additive term in Theorem 1, so we model it faithfully
//     rather than hard-coding 1.
//
// A Cluster is configured with (n, eps) like the paper: S = ceil(n^eps),
// M = ceil(total_input / S) * c. Space checks throw CheckFailure.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/parallel.hpp"
#include "mpc/metrics.hpp"
#include "support/check.hpp"

namespace dmpc::obs {
class TraceSession;
}

namespace dmpc::mpc {

using Word = std::uint64_t;

struct ClusterConfig {
  std::uint64_t machine_space = 0;  ///< S in words; must be >= 2.
  std::uint64_t num_machines = 0;   ///< M; 0 = derive from first use.
  bool enforce_space = true;        ///< Disable only for ablation (E11).

  /// Convenience: S = max(floor(n^eps), floor_min), M = ceil(total/S)+slack.
  static ClusterConfig for_input(std::uint64_t n, double eps,
                                 std::uint64_t total_words,
                                 std::uint64_t min_space = 16);
};

/// A message in the low-level interface.
struct Message {
  std::uint64_t to = 0;
  std::vector<Word> payload;
};

/// Per-machine view during a low-level step.
class MachineContext {
 public:
  MachineContext(std::uint64_t id, std::vector<Word>* local,
                 std::vector<Message>* outbox)
      : id_(id), local_(local), outbox_(outbox) {}

  std::uint64_t id() const { return id_; }
  std::vector<Word>& local() { return *local_; }
  void send(std::uint64_t to, std::vector<Word> payload) {
    outbox_->push_back({to, std::move(payload)});
  }

 private:
  std::uint64_t id_;
  std::vector<Word>* local_;
  std::vector<Message>* outbox_;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  std::uint64_t space() const { return config_.machine_space; }
  std::uint64_t machines() const { return config_.num_machines; }
  bool enforce_space() const { return config_.enforce_space; }

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// Attach a trace session (non-owning; null detaches). The session is
  /// wired to this cluster's metrics so spans report round/communication
  /// deltas; every instrumented call site reaches the session through here.
  void set_trace(obs::TraceSession* trace);
  obs::TraceSession* trace() const { return trace_; }

  /// Host executor for per-machine local computation (default: serial). The
  /// model is unchanged — the simulated machines are independent within a
  /// round, so the host may run their local compute concurrently. Every loop
  /// dispatched through this executor uses the deterministic helpers in
  /// exec/parallel.hpp, so results are identical for any executor.
  void set_executor(exec::Executor executor) { executor_ = std::move(executor); }
  const exec::Executor& executor() const { return executor_; }

  /// Depth of a fan-in-S aggregation tree over `items` leaves; >= 1.
  /// This is the round cost of prefix sums / broadcast / reduction over a
  /// distributed array of `items` records (Lemma 4 with S = n^eps gives a
  /// constant depth of ceil(1/eps)).
  std::uint64_t tree_depth(std::uint64_t items) const;

  /// Assert a hypothetical machine load fits in S (counts toward peak load).
  /// A non-empty `label` attributes the load to that label's peak-load
  /// metric (`what` stays free-form for the failure message).
  void check_load(std::uint64_t words, const std::string& what,
                  const std::string& label = "");

  // ---- Low-level message-passing interface ----

  /// Number of machines with materialized local storage.
  std::uint64_t low_level_machines() const { return locals_.size(); }

  /// (Re)initialize local storage: machine i receives inputs[i].
  void load(std::vector<std::vector<Word>> inputs);

  /// Access machine-local words (test/debug).
  const std::vector<Word>& local(std::uint64_t machine) const;

  /// Run one synchronous round: `compute` runs on every machine, messages
  /// are routed, and capacity constraints (send volume <= S, receive volume
  /// <= S, local words <= S) are enforced. Charges exactly 1 round.
  /// Under a parallel executor, `compute` may run concurrently for distinct
  /// machines and must touch only its MachineContext (machine-local state).
  void step(const std::function<void(MachineContext&)>& compute,
            const std::string& label = "step");

 private:
  ClusterConfig config_;
  Metrics metrics_;
  obs::TraceSession* trace_ = nullptr;
  exec::Executor executor_;
  std::vector<std::vector<Word>> locals_;
};

}  // namespace dmpc::mpc
