// The MPC cluster model (paper §1, "The MPC model").
//
// M machines with S words of local space run in synchronous rounds. The
// simulator has two levels:
//
//  1. A *message-passing* level (`step`): user code runs per machine against
//     its local words and posts messages; the router enforces that every
//     machine's sent and received volume fits in S. This level is used by
//     the CONGESTED CLIQUE adapter and by tests that pin down the model
//     semantics.
//
//  2. A *primitive* level (mpc/primitives.hpp): sorting, prefix sums, and
//     segmented aggregation over distributed arrays, the Lemma-4 toolbox the
//     paper builds everything from. Primitives execute centrally (we are one
//     process) but lay data out in machine-sized blocks, verify every block
//     fits in S, and charge the honest round cost: a fan-in-S aggregation
//     tree has depth ceil(log N / log S), which is the O(1/eps) "constant"
//     of the fully scalable model — and exactly the source of the
//     O(log log n) additive term in Theorem 1, so we model it faithfully
//     rather than hard-coding 1.
//
// A Cluster is configured with (n, eps) like the paper: S = ceil(n^eps),
// M = ceil(total_input / S) * c. Space checks throw CheckFailure.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/parallel.hpp"
#include "mpc/faults.hpp"
#include "mpc/metrics.hpp"
#include "support/check.hpp"

namespace dmpc::obs {
class EventBus;
enum class EventType : std::uint8_t;
class RoundProfiler;
class TraceSession;
}

namespace dmpc::mpc {

class Storage;

using Word = std::uint64_t;

struct ClusterConfig {
  std::uint64_t machine_space = 0;  ///< S in words; must be >= 2.
  std::uint64_t num_machines = 0;   ///< M; 0 = derive from first use.
  bool enforce_space = true;        ///< Disable only for ablation (E11).

  /// Convenience: S = max(floor(n^eps), floor_min), M = ceil(total/S)+slack.
  static ClusterConfig for_input(std::uint64_t n, double eps,
                                 std::uint64_t total_words,
                                 std::uint64_t min_space = 16);
};

/// User-facing knobs over the auto-derived provisioning. `dmpc::Solver` owns
/// the derivation (S and M from n, eps, space_headroom); overrides let
/// benches/tests pin an exact geometry without hand-building a ClusterConfig.
/// A zero field means "keep the derived value".
struct ClusterOverrides {
  std::uint64_t machine_space = 0;  ///< Words per machine; 0 = auto.
  std::uint64_t num_machines = 0;   ///< Machine count; 0 = auto.
  bool enforce_space = true;        ///< Disable only for ablation (E11).

  bool is_default() const {
    return machine_space == 0 && num_machines == 0 && enforce_space;
  }
};

/// Apply non-zero override fields on top of a derived base config.
ClusterConfig apply_overrides(ClusterConfig base,
                              const ClusterOverrides& overrides);

/// A message in the low-level interface.
struct Message {
  std::uint64_t to = 0;
  std::vector<Word> payload;
};

/// Per-machine view during a low-level step.
class MachineContext {
 public:
  MachineContext(std::uint64_t id, std::vector<Word>* local,
                 std::vector<Message>* outbox)
      : id_(id), local_(local), outbox_(outbox) {}

  std::uint64_t id() const { return id_; }
  std::vector<Word>& local() { return *local_; }
  void send(std::uint64_t to, std::vector<Word> payload) {
    outbox_->push_back({to, std::move(payload)});
  }

 private:
  std::uint64_t id_;
  std::vector<Word>* local_;
  std::vector<Message>* outbox_;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  /// Closes a still-open phase (emits its phase_finished) on teardown.
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  /// Move disarms the source's phase/event state so only the destination's
  /// destructor closes an open phase (Solver::cluster returns by value).
  Cluster(Cluster&& other) noexcept;
  Cluster& operator=(Cluster&&) = delete;

  std::uint64_t space() const { return config_.machine_space; }
  std::uint64_t machines() const { return config_.num_machines; }
  bool enforce_space() const { return config_.enforce_space; }

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// Attach a trace session (non-owning; null detaches). The session is
  /// wired to this cluster's metrics so spans report round/communication
  /// deltas; every instrumented call site reaches the session through here.
  void set_trace(obs::TraceSession* trace);
  obs::TraceSession* trace() const { return trace_; }

  /// Attach a round profiler (non-owning; null detaches). check_load()
  /// forwards every observation and each round charge commits a window, so
  /// the profiler sees the skew timeline the aggregate Metrics erases. All
  /// hooks run on the orchestrating thread, and faulted attempts never
  /// charge Metrics, so the profile is byte-identical across thread counts
  /// and admissible fault plans (same contract as kModel metrics).
  void set_profiler(obs::RoundProfiler* profiler) { profiler_ = profiler; }
  obs::RoundProfiler* profiler() const { return profiler_; }

  /// Attach a progress-event bus (non-owning; null detaches). Every round
  /// charge emits a model-section round_completed event (with per-window
  /// load max / Gini when a profiler is also attached); phase marks emit
  /// phase_started/phase_finished pairs; the recovery engine emits
  /// checkpoint/retry/recovered events into the recovery section. All
  /// emission happens on the orchestrating thread, after the corresponding
  /// Metrics charge, so the model event stream inherits the kModel
  /// determinism contract (byte-identical across thread counts, admissible
  /// fault plans, and storage backends).
  void set_events(obs::EventBus* events) { events_ = events; }
  obs::EventBus* events() const { return events_; }

  /// Host executor for per-machine local computation (default: serial). The
  /// model is unchanged — the simulated machines are independent within a
  /// round, so the host may run their local compute concurrently. Every loop
  /// dispatched through this executor uses the deterministic helpers in
  /// exec/parallel.hpp, so results are identical for any executor.
  void set_executor(exec::Executor executor) { executor_ = std::move(executor); }
  const exec::Executor& executor() const { return executor_; }

  /// Attach the storage backend whose residency this cluster's input graph
  /// lives in (non-owning; null = unattached). The seam carries no model
  /// semantics — rounds, loads, and traces are byte-identical with and
  /// without it — but it is where host-side residency is observable from
  /// pipeline code (Solver exports its stats to the kHost registry section),
  /// and where a future multi-process backend will hand machines their
  /// per-shard slices instead of a shared address space.
  void set_storage(const Storage* storage) { storage_ = storage; }
  const Storage* storage() const { return storage_; }

  // ---- Fault injection & recovery ----

  /// Install a deterministic fault schedule plus the recovery policy that
  /// tolerates it. An empty plan (the default) disables every fault/recovery
  /// code path: no checkpoints are taken and the run is bit-for-bit the
  /// fault-free execution with an all-zero RecoveryStats ledger.
  void set_faults(FaultPlan plan, RecoveryOptions recovery = {});
  const FaultPlan& fault_plan() const { return fault_plan_; }
  const RecoveryOptions& recovery_options() const { return recovery_; }

  RecoveryStats& recovery_stats() { return recovery_stats_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// The logical round clock faults are keyed on: the number of rounds the
  /// fault-free run has charged so far (recovery overhead is accounted in
  /// RecoveryStats, never here, so this clock is identical with and without
  /// faults).
  std::uint64_t logical_round() const { return metrics_.rounds(); }

  /// Declare a pipeline phase boundary. Under CheckpointMode::kPhase this is
  /// where snapshots are charged; a replay rolls back to the latest mark.
  /// `state_words` is the distributed state a phase snapshot would persist.
  /// No-op while the fault plan is empty.
  void mark_phase(const std::string& label, std::uint64_t state_words = 0);

  /// Run a centrally-executed primitive (Lemma-4 level) under the fault +
  /// recovery engine. `round_cost` is the rounds the primitive will charge.
  /// Its fault window ends at logical_round() + round_cost and starts at the
  /// end of the previous recoverable superstep's window, so windows tile the
  /// whole round axis: an event keyed on a round charged outside any
  /// recoverable superstep (a centrally-simulated selection or gather, say)
  /// fires at the first recoverable superstep at or after it.
  /// `state_words` sizes the checkpoint taken before the attempt. `body`
  /// must be deterministic and idempotent under re-execution (all repo
  /// primitives are: they overwrite their outputs). Faults scheduled in the
  /// window abort the attempt, charge retry backoff to RecoveryStats, and
  /// re-run `body`; exhaustion throws FaultError.
  void run_with_recovery(const std::string& label, std::uint64_t round_cost,
                         std::uint64_t state_words,
                         const std::function<void()>& body);

  /// Charge `rounds` centrally-simulated rounds as a *recoverable*
  /// superstep: the charge opens a fault window, takes a checkpoint of
  /// `state_words` words under CheckpointMode::kRound, and goes through the
  /// retry engine when a crash/drop lands in the window. The replay has no
  /// body to re-run — a centrally-simulated superstep is deterministic by
  /// construction, so re-executing it is pure accounting (backoff rounds in
  /// RecoveryStats). Pipelines must use this instead of
  /// metrics().charge_rounds() for any charge that represents machine work,
  /// otherwise faults keyed on those rounds can never fire.
  void charge_recoverable(std::uint64_t rounds, const std::string& label,
                          std::uint64_t state_words = 0);

  /// Depth of a fan-in-S aggregation tree over `items` leaves; >= 1.
  /// This is the round cost of prefix sums / broadcast / reduction over a
  /// distributed array of `items` records (Lemma 4 with S = n^eps gives a
  /// constant depth of ceil(1/eps)).
  std::uint64_t tree_depth(std::uint64_t items) const;

  /// Sentinel for check_load's machine argument when the load is aggregate
  /// (not attributable to one machine).
  static constexpr std::uint64_t kAnyMachine = ~0ull;

  /// Assert a hypothetical machine load fits in S (counts toward peak load).
  /// A non-empty `label` attributes the load to that label's peak-load
  /// metric (`what` stays free-form for the failure message). The failure
  /// message always carries the machine index, the measured load, and the
  /// limit S in a stable `[machine=... measured=... limit=...]` suffix.
  void check_load(std::uint64_t words, const std::string& what,
                  const std::string& label = "",
                  std::uint64_t machine = kAnyMachine);

  // ---- Low-level message-passing interface ----

  /// Number of machines with materialized local storage.
  std::uint64_t low_level_machines() const { return locals_.size(); }

  /// (Re)initialize local storage: machine i receives inputs[i].
  void load(std::vector<std::vector<Word>> inputs);

  /// Access machine-local words (test/debug).
  const std::vector<Word>& local(std::uint64_t machine) const;

  /// Run one synchronous round: `compute` runs on every machine, messages
  /// are routed, and capacity constraints (send volume <= S, receive volume
  /// <= S, local words <= S) are enforced. Charges exactly 1 round.
  /// Under a parallel executor, `compute` may run concurrently for distinct
  /// machines and must touch only its MachineContext (machine-local state).
  void step(const std::function<void(MachineContext&)>& compute,
            const std::string& label = "step");

 private:
  /// Route messages, enforce capacities, deliver, and charge 1 round — the
  /// commit half of a (successful) step attempt.
  void route_and_deliver(std::vector<std::vector<Message>>& outboxes,
                         const std::string& label);

  /// Account one retry of `label` covering `cost` rounds at logical round
  /// `round` after 0-based `attempt` failed. Throws FaultError when
  /// checkpointing is off or the retry budget is exhausted.
  void register_retry(const std::string& label, std::uint64_t round,
                      std::uint64_t cost, std::uint32_t attempt);

  /// Account one checkpoint of `words` words (optionally traced).
  void note_checkpoint(const std::string& label, std::uint64_t words);

  /// Emit a round_completed event for the charge just committed (`rounds`
  /// rounds under `label`), carrying the profiler's last window skew when
  /// one is attached. No-op without an active bus.
  void emit_round_completed(const std::string& label, std::uint64_t rounds);

  /// Emit phase_finished for the currently open phase, if any.
  void close_open_phase();

  /// Emit a recovery-section event with the standard round/comm fields.
  void emit_recovery_event(obs::EventType type, const std::string& label,
                           std::uint64_t round, std::int64_t value,
                           const std::string& detail);

  ClusterConfig config_;
  Metrics metrics_;
  obs::TraceSession* trace_ = nullptr;
  obs::RoundProfiler* profiler_ = nullptr;
  obs::EventBus* events_ = nullptr;
  std::string open_phase_;  ///< Label of the phase awaiting phase_finished.
  bool phase_open_ = false;
  const Storage* storage_ = nullptr;
  exec::Executor executor_;
  std::vector<std::vector<Word>> locals_;
  FaultPlan fault_plan_;
  RecoveryOptions recovery_;
  RecoveryStats recovery_stats_;
  std::uint64_t phase_round_ = 0;  ///< Logical round of the last phase mark.
  /// End of the last fault window. Successive windows tile [0, rounds), so
  /// events keyed on rounds charged outside any recoverable superstep still
  /// fire (at the first recoverable superstep after them).
  std::uint64_t fault_covered_round_ = 0;
};

}  // namespace dmpc::mpc
