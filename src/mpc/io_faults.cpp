#include "mpc/io_faults.hpp"

#include <sstream>

#include "mpc/faults.hpp"
#include "obs/metrics_registry.hpp"
#include "support/parse_error.hpp"

namespace dmpc::mpc {

const char* io_fault_kind_name(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kShortRead:
      return "short_read";
    case IoFaultKind::kEio:
      return "eio";
    case IoFaultKind::kCorrupt:
      return "corrupt";
    case IoFaultKind::kMapFail:
      return "map_fail";
    case IoFaultKind::kSlow:
      return "slow";
  }
  return "unknown";
}

std::vector<const IoFaultEvent*> IoFaultPlan::active(
    std::uint64_t shard, std::uint64_t access, std::uint32_t attempt) const {
  std::vector<const IoFaultEvent*> out;
  for (const IoFaultEvent& event : events_) {
    if (event.shard == shard && event.access == access &&
        attempt < event.attempts) {
      out.push_back(&event);
    }
  }
  return out;
}

std::string IoFaultPlan::check() const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const IoFaultEvent& event = events_[i];
    if (event.attempts == 0) {
      return "io fault event #" + std::to_string(i) +
             " has attempts=0 (an event must fire on at least one attempt)";
    }
    if (event.kind == IoFaultKind::kSlow && event.delay == 0) {
      return "io fault event #" + std::to_string(i) +
             " is a slow fault with delay=0 (must delay by >= 1 unit)";
    }
  }
  return "";
}

namespace {

bool parse_io_kind(const std::string& token, IoFaultKind* kind) {
  if (token == "short_read") {
    *kind = IoFaultKind::kShortRead;
  } else if (token == "eio") {
    *kind = IoFaultKind::kEio;
  } else if (token == "corrupt") {
    *kind = IoFaultKind::kCorrupt;
  } else if (token == "map_fail") {
    *kind = IoFaultKind::kMapFail;
  } else if (token == "slow") {
    *kind = IoFaultKind::kSlow;
  } else {
    return false;
  }
  return true;
}

}  // namespace

IoFaultPlan IoFaultPlan::parse(const std::string& text) {
  IoFaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.size() > kMaxLineBytes) {
      throw ParseError(ParseErrorCode::kLimitExceeded,
                       "line exceeds " + std::to_string(kMaxLineBytes) +
                           " byte limit",
                       line_no);
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const std::vector<parse::Token> toks = parse::tokenize(line);
    if (toks.empty()) continue;  // blank / comment-only line
    IoFaultEvent event;
    if (!parse_io_kind(toks[0].text, &event.kind)) {
      throw ParseError(ParseErrorCode::kBadToken,
                       "unknown io fault kind "
                       "(expected short_read|eio|corrupt|map_fail|slow)",
                       line_no, toks[0].column, parse::clip(toks[0].text));
    }
    for (std::size_t i = 1; i < toks.size(); ++i) {
      const parse::Token& tok = toks[i];
      const auto eq = tok.text.find('=');
      if (eq == std::string::npos) {
        throw ParseError(ParseErrorCode::kMalformedLine,
                         "expected key=value", line_no, tok.column,
                         parse::clip(tok.text));
      }
      const std::string key = tok.text.substr(0, eq);
      // Locate the value token precisely: its column is just past the '='.
      const parse::Token value_tok{tok.text.substr(eq + 1),
                                   tok.column + eq + 1};
      if (key == "shard" && value_tok.text == "manifest") {
        event.shard = kManifestShard;
        continue;
      }
      const std::uint64_t value = parse::require_u64(value_tok, line_no);
      if (key == "shard") {
        event.shard = value;
      } else if (key == "access") {
        event.access = value;
      } else if (key == "delay") {
        event.delay = value;
      } else if (key == "attempts") {
        if (value > RecoveryOptions::kMaxRetries + 1ull) {
          throw ParseError(ParseErrorCode::kOutOfRange,
                           "attempts exceeds retry cap of " +
                               std::to_string(RecoveryOptions::kMaxRetries),
                           line_no, value_tok.column,
                           parse::clip(value_tok.text));
        }
        event.attempts = static_cast<std::uint32_t>(value);
      } else {
        throw ParseError(ParseErrorCode::kBadToken,
                         "unknown key "
                         "(expected shard|access|delay|attempts)",
                         line_no, tok.column, parse::clip(key));
      }
    }
    if (plan.events().size() >= kMaxEvents) {
      throw ParseError(ParseErrorCode::kLimitExceeded,
                       "plan exceeds " + std::to_string(kMaxEvents) +
                           " event limit",
                       line_no);
    }
    plan.add(event);
  }
  if (const std::string problem = plan.check(); !problem.empty()) {
    throw ParseError(ParseErrorCode::kOutOfRange, problem);
  }
  return plan;
}

IoFaultPlan IoFaultPlan::parse(const std::string& text, std::string* error) {
  try {
    const IoFaultPlan plan = parse(text);
    if (error != nullptr) error->clear();
    return plan;
  } catch (const ParseError& e) {
    if (error != nullptr) *error = e.what();
    return IoFaultPlan{};
  }
}

std::string IoFaultPlan::to_string() const {
  std::ostringstream out;
  for (const IoFaultEvent& event : events_) {
    out << io_fault_kind_name(event.kind);
    if (event.shard == kManifestShard) {
      out << " shard=manifest";
    } else {
      out << " shard=" << event.shard;
    }
    out << " access=" << event.access;
    if (event.kind == IoFaultKind::kSlow) out << " delay=" << event.delay;
    if (event.attempts != 1) out << " attempts=" << event.attempts;
    out << "\n";
  }
  return out.str();
}

void IoRecoveryStats::merge(const IoRecoveryStats& other) {
  io_faults_injected += other.io_faults_injected;
  retries += other.retries;
  backoff_units += other.backoff_units;
  checksum_failures += other.checksum_failures;
  quarantined_shards += other.quarantined_shards;
  degraded += other.degraded;
  shards_verified += other.shards_verified;
}

void IoRecoveryStats::export_to(obs::MetricsRegistry& registry) const {
  const auto section = obs::MetricSection::kRecovery;
  registry.counter("storage/io_faults_injected", section)
      .add(io_faults_injected);
  registry.counter("storage/retries", section).add(retries);
  registry.counter("storage/backoff_units", section).add(backoff_units);
  registry.counter("storage/checksum_failures", section)
      .add(checksum_failures);
  registry.counter("storage/quarantined_shards", section)
      .add(quarantined_shards);
  registry.counter("storage/degraded", section).add(degraded);
  registry.counter("storage/shards_verified", section).add(shards_verified);
}

}  // namespace dmpc::mpc
