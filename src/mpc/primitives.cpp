#include "mpc/primitives.hpp"

#include "support/math.hpp"

namespace dmpc::mpc {

void check_blocked_layout(Cluster& cluster, std::uint64_t records,
                          std::uint64_t arity, const std::string& what) {
  if (records == 0) return;
  const std::uint64_t per_machine =
      ceil_div(records, cluster.machines()) * arity;
  cluster.check_load(per_machine, what + ": block layout", what);
}

std::uint64_t sort_round_cost(const Cluster& cluster, std::uint64_t records) {
  // Goodrich's BSP sorting simulated in MapReduce: O(log_S N) communication
  // rounds; we charge two tree traversals (sample/split + route).
  return 2 * cluster.tree_depth(std::max<std::uint64_t>(records, 2));
}

std::uint64_t scan_round_cost(const Cluster& cluster, std::uint64_t records) {
  // Up-sweep + down-sweep of the fan-in-S tree.
  return 2 * cluster.tree_depth(std::max<std::uint64_t>(records, 2));
}

std::vector<std::uint64_t> prefix_sum_exclusive(
    Cluster& cluster, std::span<const std::uint64_t> values,
    const std::string& label) {
  check_blocked_layout(cluster, values.size(), 1, label);
  std::vector<std::uint64_t> out(values.size(), 0);
  // Two-pass chunked scan: per-chunk sums in parallel, serial exclusive scan
  // over the (few) chunk sums, then per-chunk writes in parallel. Word sums
  // are exact, so this agrees with the plain serial scan for any chunking.
  // The body overwrites `out` in full, so a recovery replay is idempotent.
  cluster.run_with_recovery(
      label, scan_round_cost(cluster, values.size()), values.size(), [&] {
        constexpr std::uint64_t kGrain = 4096;
        const std::uint64_t n = values.size();
        const exec::Executor& ex = cluster.executor();
        if (!ex.parallel() || n <= kGrain) {
          std::uint64_t acc = 0;
          for (std::uint64_t i = 0; i < n; ++i) {
            out[i] = acc;
            acc += values[i];
          }
          return;
        }
        const std::uint64_t chunks = (n + kGrain - 1) / kGrain;
        std::vector<std::uint64_t> chunk_offset(chunks, 0);
        ex.for_each(0, chunks, [&](std::uint64_t c) {
          const std::uint64_t lo = c * kGrain;
          const std::uint64_t hi = std::min(n, lo + kGrain);
          std::uint64_t sum = 0;
          for (std::uint64_t i = lo; i < hi; ++i) sum += values[i];
          chunk_offset[c] = sum;
        });
        std::uint64_t acc = 0;
        for (std::uint64_t c = 0; c < chunks; ++c) {
          const std::uint64_t sum = chunk_offset[c];
          chunk_offset[c] = acc;
          acc += sum;
        }
        ex.for_each(0, chunks, [&](std::uint64_t c) {
          const std::uint64_t lo = c * kGrain;
          const std::uint64_t hi = std::min(n, lo + kGrain);
          std::uint64_t local = chunk_offset[c];
          for (std::uint64_t i = lo; i < hi; ++i) {
            out[i] = local;
            local += values[i];
          }
        });
      });
  const std::uint64_t rounds = scan_round_cost(cluster, values.size());
  const std::uint64_t words =
      cluster.tree_depth(values.size()) * cluster.machines();
  cluster.metrics().charge_rounds(rounds, label);
  cluster.metrics().add_communication(words, label);
  obs::trace_primitive(cluster.trace(), label, rounds, words);
  return out;
}

std::uint64_t reduce_sum(Cluster& cluster,
                         std::span<const std::uint64_t> values,
                         const std::string& label) {
  check_blocked_layout(cluster, values.size(), 1, label);
  const std::uint64_t rounds =
      cluster.tree_depth(std::max<std::uint64_t>(values.size(), 2));
  // Exact word arithmetic: any reduction order gives the same sum.
  std::uint64_t result = 0;
  cluster.run_with_recovery(label, rounds, values.size(), [&] {
    result = cluster.executor().map_reduce(
        0, values.size(), std::uint64_t{0},
        [&](std::uint64_t i) { return values[i]; },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
  });
  cluster.metrics().charge_rounds(rounds, label);
  cluster.metrics().add_communication(rounds * cluster.machines(), label);
  obs::trace_primitive(cluster.trace(), label, rounds,
                       rounds * cluster.machines());
  return result;
}

std::uint64_t reduce_max(Cluster& cluster,
                         std::span<const std::uint64_t> values,
                         const std::string& label) {
  check_blocked_layout(cluster, values.size(), 1, label);
  const std::uint64_t rounds =
      cluster.tree_depth(std::max<std::uint64_t>(values.size(), 2));
  std::uint64_t result = 0;
  cluster.run_with_recovery(label, rounds, values.size(), [&] {
    result = cluster.executor().map_reduce(
        0, values.size(), std::uint64_t{0},
        [&](std::uint64_t i) { return values[i]; },
        [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
  });
  cluster.metrics().charge_rounds(rounds, label);
  cluster.metrics().add_communication(rounds * cluster.machines(), label);
  obs::trace_primitive(cluster.trace(), label, rounds,
                       rounds * cluster.machines());
  return result;
}

double reduce_sum_double(Cluster& cluster, std::span<const double> values,
                         const std::string& label) {
  check_blocked_layout(cluster, values.size(), 1, label);
  const std::uint64_t rounds =
      cluster.tree_depth(std::max<std::uint64_t>(values.size(), 2));
  // map_reduce's fixed-association chunked fold makes this floating-point
  // sum bitwise identical for every thread count (the serial executor runs
  // the same chunked algorithm).
  double result = 0.0;
  cluster.run_with_recovery(label, rounds, values.size(), [&] {
    result = cluster.executor().map_reduce(
        0, values.size(), 0.0, [&](std::uint64_t i) { return values[i]; },
        [](double a, double b) { return a + b; });
  });
  cluster.metrics().charge_rounds(rounds, label);
  cluster.metrics().add_communication(rounds * cluster.machines(), label);
  obs::trace_primitive(cluster.trace(), label, rounds,
                       rounds * cluster.machines());
  return result;
}

void broadcast(Cluster& cluster, std::uint64_t words,
               const std::string& label) {
  cluster.check_load(words, label, label);
  const std::uint64_t rounds = cluster.tree_depth(cluster.machines());
  // No central compute: the body is empty, but the fan-out tree still loses
  // work to scheduled faults, so the recovery engine accounts its retries.
  cluster.run_with_recovery(label, rounds, words, [] {});
  cluster.metrics().charge_rounds(rounds, label);
  cluster.metrics().add_communication(words * cluster.machines(), label);
  obs::trace_primitive(cluster.trace(), label, rounds,
                       words * cluster.machines());
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> group_sum(
    Cluster& cluster,
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs,
    const std::string& label) {
  dsort(cluster, pairs,
        [](const auto& a, const auto& b) { return a.first < b.first; }, label);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  cluster.run_with_recovery(
      label, scan_round_cost(cluster, pairs.size()), 2 * pairs.size(), [&] {
        out.clear();
        for (const auto& [key, value] : pairs) {
          if (!out.empty() && out.back().first == key) {
            out.back().second += value;
          } else {
            out.emplace_back(key, value);
          }
        }
      });
  const std::uint64_t rounds = scan_round_cost(cluster, pairs.size());
  cluster.metrics().charge_rounds(rounds, label);
  obs::trace_primitive(cluster.trace(), label, rounds, 0);
  return out;
}

}  // namespace dmpc::mpc
