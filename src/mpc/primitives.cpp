#include "mpc/primitives.hpp"

#include "support/math.hpp"

namespace dmpc::mpc {

void check_blocked_layout(Cluster& cluster, std::uint64_t records,
                          std::uint64_t arity, const std::string& what) {
  if (records == 0) return;
  const std::uint64_t per_machine =
      ceil_div(records, cluster.machines()) * arity;
  cluster.check_load(per_machine, what + ": block layout", what);
}

std::uint64_t sort_round_cost(const Cluster& cluster, std::uint64_t records) {
  // Goodrich's BSP sorting simulated in MapReduce: O(log_S N) communication
  // rounds; we charge two tree traversals (sample/split + route).
  return 2 * cluster.tree_depth(std::max<std::uint64_t>(records, 2));
}

std::uint64_t scan_round_cost(const Cluster& cluster, std::uint64_t records) {
  // Up-sweep + down-sweep of the fan-in-S tree.
  return 2 * cluster.tree_depth(std::max<std::uint64_t>(records, 2));
}

std::vector<std::uint64_t> prefix_sum_exclusive(
    Cluster& cluster, std::span<const std::uint64_t> values,
    const std::string& label) {
  check_blocked_layout(cluster, values.size(), 1, label);
  std::vector<std::uint64_t> out(values.size(), 0);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = acc;
    acc += values[i];
  }
  const std::uint64_t rounds = scan_round_cost(cluster, values.size());
  const std::uint64_t words =
      cluster.tree_depth(values.size()) * cluster.machines();
  cluster.metrics().charge_rounds(rounds, label);
  cluster.metrics().add_communication(words, label);
  obs::trace_primitive(cluster.trace(), label, rounds, words);
  return out;
}

std::uint64_t reduce_sum(Cluster& cluster,
                         std::span<const std::uint64_t> values,
                         const std::string& label) {
  check_blocked_layout(cluster, values.size(), 1, label);
  const std::uint64_t rounds =
      cluster.tree_depth(std::max<std::uint64_t>(values.size(), 2));
  cluster.metrics().charge_rounds(rounds, label);
  cluster.metrics().add_communication(rounds * cluster.machines(), label);
  obs::trace_primitive(cluster.trace(), label, rounds,
                       rounds * cluster.machines());
  return std::accumulate(values.begin(), values.end(), std::uint64_t{0});
}

std::uint64_t reduce_max(Cluster& cluster,
                         std::span<const std::uint64_t> values,
                         const std::string& label) {
  check_blocked_layout(cluster, values.size(), 1, label);
  const std::uint64_t rounds =
      cluster.tree_depth(std::max<std::uint64_t>(values.size(), 2));
  cluster.metrics().charge_rounds(rounds, label);
  cluster.metrics().add_communication(rounds * cluster.machines(), label);
  obs::trace_primitive(cluster.trace(), label, rounds,
                       rounds * cluster.machines());
  std::uint64_t best = 0;
  for (std::uint64_t v : values) best = std::max(best, v);
  return best;
}

double reduce_sum_double(Cluster& cluster, std::span<const double> values,
                         const std::string& label) {
  check_blocked_layout(cluster, values.size(), 1, label);
  const std::uint64_t rounds =
      cluster.tree_depth(std::max<std::uint64_t>(values.size(), 2));
  cluster.metrics().charge_rounds(rounds, label);
  cluster.metrics().add_communication(rounds * cluster.machines(), label);
  obs::trace_primitive(cluster.trace(), label, rounds,
                       rounds * cluster.machines());
  double sum = 0;
  for (double v : values) sum += v;
  return sum;
}

void broadcast(Cluster& cluster, std::uint64_t words,
               const std::string& label) {
  cluster.check_load(words, label, label);
  const std::uint64_t rounds = cluster.tree_depth(cluster.machines());
  cluster.metrics().charge_rounds(rounds, label);
  cluster.metrics().add_communication(words * cluster.machines(), label);
  obs::trace_primitive(cluster.trace(), label, rounds,
                       words * cluster.machines());
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> group_sum(
    Cluster& cluster,
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs,
    const std::string& label) {
  dsort(cluster, pairs,
        [](const auto& a, const auto& b) { return a.first < b.first; }, label);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const auto& [key, value] : pairs) {
    if (!out.empty() && out.back().first == key) {
      out.back().second += value;
    } else {
      out.emplace_back(key, value);
    }
  }
  const std::uint64_t rounds = scan_round_cost(cluster, pairs.size());
  cluster.metrics().charge_rounds(rounds, label);
  obs::trace_primitive(cluster.trace(), label, rounds, 0);
  return out;
}

}  // namespace dmpc::mpc
