// Partition-aware binary CSR shard format ("dshard") and its streaming
// builder.
//
// A shard directory holds one `manifest.dshard` plus `shard-NNNNNN.dshard`
// files. Each shard is a contiguous CSR slice — a node range with its
// offsets/adjacency/incident rows and the canonical edges whose lower
// endpoint falls in the range — cut so a shard's word count matches the
// simulator's per-machine space S (the same ClusterConfig::for_input formula
// the Solver provisions with), i.e. shards are keyed by the machine
// assignment of the MPC model. `MmapShardStorage` (mpc/storage.hpp) maps the
// shards read-only and exposes them to algorithms as `graph::GraphExtent`s,
// so solving out of core never materializes the full CSR in RAM.
//
// Every field is little-endian (the only supported host order; enforced at
// compile time). The manifest is an untrusted-input boundary with the same
// contract as the text reader: malformed bytes of any kind — bad magic,
// unknown version, inconsistent ranges, truncated files — raise a typed
// dmpc::ParseError, and `graph::EdgeListLimits` caps are enforced on the
// declared n/m via ParseErrorCode::kShardLimitExceeded so both ingest paths
// reject oversized inputs identically.
//
// On-disk layout (all offsets in bytes):
//
//   manifest.dshard
//     0   8  magic "DSHARDm1"
//     8   4  version (= 1)
//     12  4  flags (= 0)
//     16  8  n (node count; 1 <= n <= 2^32 - 2)
//     24  8  m (canonical edge count)
//     32  8  total_slots (= 2m)
//     40  4  max_degree
//     44  4  reserved (= 0)
//     48  8  shard_count (>= 1, <= n)
//     56  8  shard_words (target words per shard the build used)
//     64  shard_count x 56-byte entries:
//           node_begin, node_end, edge_begin, edge_end,
//           slot_begin, slot_end, file_bytes   (all u64)
//
//   shard-NNNNNN.dshard
//     0   8  magic "DSHARDs1"
//     8   8  shard index
//     16      offsets   (node_count + 1) x u64   -- global slot values
//             incident  slot_count x u64         -- EdgeIds, row-aligned
//             edges     edge_count x {u32 u, u32 v}  -- canonical order
//             adjacency slot_count x u32         -- sorted per row
//
// The 8-byte arrays precede the 4-byte ones so every array is naturally
// aligned at its mapped address (the 16-byte header keeps 8-alignment).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/io.hpp"

namespace dmpc::mpc {

inline constexpr char kManifestMagic[8] = {'D', 'S', 'H', 'A',
                                           'R', 'D', 'm', '1'};
inline constexpr char kShardMagic[8] = {'D', 'S', 'H', 'A', 'R', 'D', 's', '1'};
inline constexpr std::uint32_t kShardFormatVersion = 1;
inline constexpr std::size_t kManifestHeaderBytes = 64;
inline constexpr std::size_t kManifestEntryBytes = 56;
inline constexpr std::size_t kShardHeaderBytes = 16;
inline constexpr char kManifestFileName[] = "manifest.dshard";

/// One shard's ranges, as recorded in the manifest. Ranges are half-open and
/// must tile [0, n) / [0, m) / [0, 2m) contiguously across entries.
struct ShardEntry {
  std::uint64_t node_begin = 0;
  std::uint64_t node_end = 0;
  std::uint64_t edge_begin = 0;
  std::uint64_t edge_end = 0;
  std::uint64_t slot_begin = 0;
  std::uint64_t slot_end = 0;
  std::uint64_t file_bytes = 0;  ///< Exact size of the shard's file.
};

struct ShardManifest {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint32_t max_degree = 0;
  std::uint64_t shard_words = 0;
  std::vector<ShardEntry> shards;
};

/// The exact file size a shard with these ranges must have.
std::uint64_t shard_file_bytes(const ShardEntry& entry);

/// Name of shard i's file within the directory ("shard-000042.dshard").
std::string shard_file_name(std::uint64_t index);

/// Parse and fully validate manifest bytes. Throws ParseError on any defect:
/// kBadHeader (magic/version/field ranges), kShardLimitExceeded (n/m exceed
/// `limits`), kCountMismatch (ranges do not tile, totals disagree, size
/// wrong), kOutOfRange (inverted ranges). Allocation is bounded by `size`.
ShardManifest parse_shard_manifest(const unsigned char* data, std::size_t size,
                                   const graph::EdgeListLimits& limits = {});

/// Serialize a manifest (inverse of parse for valid manifests).
std::vector<unsigned char> encode_shard_manifest(const ShardManifest& manifest);

/// Streaming shard-build options.
struct ShardBuildOptions {
  /// Caps applied to the text input. `duplicates` must be kReject: dedupe
  /// would shift offsets computed in pass 1, so the builder rejects
  /// duplicate edges (at shard finalization) instead of dropping them.
  graph::EdgeListLimits limits;
  /// Target words per shard; 0 derives S from (eps, space_headroom) exactly
  /// like Solver provisioning: S = ClusterConfig::for_input with
  /// total = space_headroom * (n + 2m).
  std::uint64_t shard_words = 0;
  double eps = 0.5;
  double space_headroom = 8.0;
  /// Approximate dirty-page budget for pass 2: mapped shard writes are
  /// msync'd and dropped (madvise DONTNEED) whenever the estimate crosses
  /// this, bounding peak RSS at O(n) + this budget regardless of m.
  std::uint64_t rss_budget_bytes = 256ull << 20;
};

struct ShardBuildStats {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t shards = 0;
  std::uint64_t total_bytes = 0;  ///< Manifest + shard files.
};

/// Build a shard directory from a text edge list in two streaming passes
/// (count/provision, then scatter/finalize). Peak host memory is O(n) words
/// plus the rss_budget — never O(m); edges live only in the mapped files.
/// The resulting shards reproduce Graph::from_edges byte-for-byte: same
/// offsets, sorted adjacency rows, canonical edge order, and incident
/// EdgeIds. Throws ParseError for malformed input (including duplicate
/// edges) and filesystem failures (kIoError).
ShardBuildStats shard_build(const std::string& input_path,
                            const std::string& out_dir,
                            const ShardBuildOptions& options = {});

}  // namespace dmpc::mpc
