// Partition-aware binary CSR shard format ("dshard") and its streaming
// builder.
//
// A shard directory holds one `manifest.dshard` plus `shard-NNNNNN.dshard`
// files. Each shard is a contiguous CSR slice — a node range with its
// offsets/adjacency/incident rows and the canonical edges whose lower
// endpoint falls in the range — cut so a shard's word count matches the
// simulator's per-machine space S (the same ClusterConfig::for_input formula
// the Solver provisions with), i.e. shards are keyed by the machine
// assignment of the MPC model. `MmapShardStorage` (mpc/storage.hpp) maps the
// shards read-only and exposes them to algorithms as `graph::GraphExtent`s,
// so solving out of core never materializes the full CSR in RAM.
//
// Every field is little-endian (the only supported host order; enforced at
// compile time). The manifest is an untrusted-input boundary with the same
// contract as the text reader: malformed bytes of any kind — bad magic,
// unknown version, inconsistent ranges, truncated files — raise a typed
// dmpc::ParseError, and `graph::EdgeListLimits` caps are enforced on the
// declared n/m via ParseErrorCode::kShardLimitExceeded so both ingest paths
// reject oversized inputs identically.
//
// On-disk layout (all offsets in bytes):
//
//   manifest.dshard (version 2; version-1 files remain readable)
//     0   8  magic "DSHARDm1"
//     8   4  version (= 2; 1 accepted, reported unverified)
//     12  4  flags (= 0)
//     16  8  n (node count; 1 <= n <= 2^32 - 2)
//     24  8  m (canonical edge count)
//     32  8  total_slots (= 2m)
//     40  4  max_degree
//     44  4  reserved (= 0)
//     48  8  shard_count (>= 1, <= n)
//     56  8  shard_words (target words per shard the build used)
//     64  shard_count x entries (64 bytes in v2, 56 in v1):
//           node_begin, node_end, edge_begin, edge_end,
//           slot_begin, slot_end, file_bytes   (all u64)
//           crc64 of the shard's whole file    (u64, v2 only)
//     then (v2 only) 8 bytes: CRC64 of every preceding manifest byte.
//
//   shard-NNNNNN.dshard
//     0   8  magic "DSHARDs1"
//     8   8  shard index
//     16      offsets   (node_count + 1) x u64   -- global slot values
//             incident  slot_count x u64         -- EdgeIds, row-aligned
//             edges     edge_count x {u32 u, u32 v}  -- canonical order
//             adjacency slot_count x u32         -- sorted per row
//
// The 8-byte arrays precede the 4-byte ones so every array is naturally
// aligned at its mapped address (the 16-byte header keeps 8-alignment).
//
// The checksums are CRC-64/XZ (ECMA-182 polynomial, reflected). Parsing
// validates *structure* only — checksum enforcement is the storage layer's
// job (StorageOptions::verify, docs/STORAGE.md "Integrity & degraded
// mode"), so `parse_shard_manifest` stays a pure ParseError surface that
// fuzzers can hammer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/io.hpp"

namespace dmpc::mpc {

inline constexpr char kManifestMagic[8] = {'D', 'S', 'H', 'A',
                                           'R', 'D', 'm', '1'};
inline constexpr char kShardMagic[8] = {'D', 'S', 'H', 'A', 'R', 'D', 's', '1'};
inline constexpr std::uint32_t kShardFormatVersion = 2;
inline constexpr std::size_t kManifestHeaderBytes = 64;
inline constexpr std::size_t kManifestEntryBytesV1 = 56;
inline constexpr std::size_t kManifestEntryBytes = 64;
inline constexpr std::size_t kManifestDigestBytes = 8;
inline constexpr std::size_t kShardHeaderBytes = 16;
inline constexpr char kManifestFileName[] = "manifest.dshard";

/// CRC-64/XZ (ECMA-182, reflected) over `size` bytes. The shard builder
/// stamps one per shard file plus a whole-manifest digest; the storage layer
/// re-computes them under verify=open|paranoid.
std::uint64_t crc64(const unsigned char* data, std::size_t size);

/// Streaming form: feed chunks with `crc` carried between calls (start at 0).
std::uint64_t crc64_update(std::uint64_t crc, const unsigned char* data,
                           std::size_t size);

/// One shard's ranges, as recorded in the manifest. Ranges are half-open and
/// must tile [0, n) / [0, m) / [0, 2m) contiguously across entries.
struct ShardEntry {
  std::uint64_t node_begin = 0;
  std::uint64_t node_end = 0;
  std::uint64_t edge_begin = 0;
  std::uint64_t edge_end = 0;
  std::uint64_t slot_begin = 0;
  std::uint64_t slot_end = 0;
  std::uint64_t file_bytes = 0;  ///< Exact size of the shard's file.
  std::uint64_t crc64 = 0;       ///< CRC-64/XZ of the whole file; 0 in v1.
};

struct ShardManifest {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint32_t max_degree = 0;
  std::uint64_t shard_words = 0;
  /// Format version the bytes carried (1 or 2). v1 manifests have no
  /// checksums: integrity verification reports them as `unverified` instead
  /// of failing (docs/STORAGE.md trust model).
  std::uint32_t version = kShardFormatVersion;
  /// Stored whole-manifest digest (v2; 0 for v1). Parsing records it
  /// without enforcing it — compare against `manifest_digest` of the raw
  /// bytes to verify.
  std::uint64_t digest = 0;
  std::vector<ShardEntry> shards;

  bool has_checksums() const { return version >= 2; }
};

/// The digest a well-formed manifest buffer of `size` bytes must trail with:
/// CRC64 over its first `size - kManifestDigestBytes` bytes. Call only on
/// buffers that already parsed as v2.
std::uint64_t manifest_digest(const unsigned char* data, std::size_t size);

/// The exact file size a shard with these ranges must have.
std::uint64_t shard_file_bytes(const ShardEntry& entry);

/// Name of shard i's file within the directory ("shard-000042.dshard").
std::string shard_file_name(std::uint64_t index);

/// Parse and fully validate manifest bytes. Throws ParseError on any defect:
/// kBadHeader (magic/version/field ranges), kShardLimitExceeded (n/m exceed
/// `limits`), kCountMismatch (ranges do not tile, totals disagree, size
/// wrong), kOutOfRange (inverted ranges). Allocation is bounded by `size`.
ShardManifest parse_shard_manifest(const unsigned char* data, std::size_t size,
                                   const graph::EdgeListLimits& limits = {});

/// Serialize a manifest (inverse of parse for valid manifests).
std::vector<unsigned char> encode_shard_manifest(const ShardManifest& manifest);

/// Streaming shard-build options.
struct ShardBuildOptions {
  /// Caps applied to the text input. `duplicates` must be kReject: dedupe
  /// would shift offsets computed in pass 1, so the builder rejects
  /// duplicate edges (at shard finalization) instead of dropping them.
  graph::EdgeListLimits limits;
  /// Target words per shard; 0 derives S from (eps, space_headroom) exactly
  /// like Solver provisioning: S = ClusterConfig::for_input with
  /// total = space_headroom * (n + 2m).
  std::uint64_t shard_words = 0;
  double eps = 0.5;
  double space_headroom = 8.0;
  /// Approximate dirty-page budget for pass 2: mapped shard writes are
  /// msync'd and dropped (madvise DONTNEED) whenever the estimate crosses
  /// this, bounding peak RSS at O(n) + this budget regardless of m.
  std::uint64_t rss_budget_bytes = 256ull << 20;
  /// Test-only crash hook, invoked after every shard file is written and
  /// synced but *before* the manifest commits the build. A hook that throws
  /// simulates the builder dying mid-way; the manifest-last design
  /// guarantees the partial directory is never openable.
  std::function<void()> abort_before_manifest;
};

struct ShardBuildStats {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t shards = 0;
  std::uint64_t total_bytes = 0;  ///< Manifest + shard files.
};

/// Build a shard directory from a text edge list in two streaming passes
/// (count/provision, then scatter/finalize). Peak host memory is O(n) words
/// plus the rss_budget — never O(m); edges live only in the mapped files.
/// The resulting shards reproduce Graph::from_edges byte-for-byte: same
/// offsets, sorted adjacency rows, canonical edge order, and incident
/// EdgeIds. Throws ParseError for malformed input (including duplicate
/// edges) and filesystem failures (kIoError).
ShardBuildStats shard_build(const std::string& input_path,
                            const std::string& out_dir,
                            const ShardBuildOptions& options = {});

}  // namespace dmpc::mpc
