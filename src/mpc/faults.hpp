// Deterministic fault injection and checkpoint/restart for the simulated
// cluster.
//
// The paper's model assumes fail-free machines, but the MapReduce/Spark
// deployments that motivate MPC recover from worker loss by re-executing the
// failed superstep from the last consistent snapshot. This module adds that
// layer to the simulator without giving up the repo's determinism contract:
//
//  - A FaultPlan is a seed-free schedule of machine crashes, message drops,
//    message duplications, and straggler delays, keyed on the *logical*
//    round index (the fault-free round clock, Metrics::rounds()) and the
//    machine index. Replays are reproducible: no wall clock, no RNG.
//  - RecoveryOptions bound the retry engine: a superstep that loses a
//    machine or a message is rolled back to the last checkpoint and
//    replayed, up to max_retries times, each retry consuming an
//    exponentially growing round budget (recorded in RecoveryStats, never
//    in the core Metrics).
//  - The hard guarantee (docs/FAULTS.md): a solve under any admissible
//    FaultPlan produces byte-identical solutions, report JSON (modulo the
//    "recovery" counter block), and golden traces to the fault-free run.
//    Retry exhaustion surfaces as a typed FaultError, never a hang.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mpc/io_faults.hpp"
#include "support/check.hpp"

namespace dmpc::obs {
class MetricsRegistry;
}

namespace dmpc::mpc {

enum class FaultKind : std::uint8_t {
  kCrash,      ///< A machine loses the superstep (compute + sends discarded).
  kDrop,       ///< One message of a sender's outbox is lost in transit.
  kDuplicate,  ///< One message is delivered twice; the router deduplicates.
  kStraggler,  ///< A machine finishes late; the barrier absorbs the delay.
};

const char* fault_kind_name(FaultKind kind);

/// One scheduled fault. `round` is a logical round index; the event fires
/// during the first recoverable superstep (message-passing step or Lemma-4
/// primitive invocation) whose fault window covers that round — windows tile
/// the round axis, so any event with round < total fault-free rounds fires
/// exactly once. An event fires on attempts 0 .. attempts-1 of that
/// superstep, so a crash with attempts=k is recoverable iff
/// k <= RecoveryOptions::max_retries.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  std::uint64_t round = 0;    ///< Logical (fault-free) round index.
  std::uint64_t machine = 0;  ///< Crashed/straggling machine, or the sender.
  std::uint64_t message = 0;  ///< Outbox ordinal for kDrop / kDuplicate.
  std::uint64_t delay = 1;    ///< Straggler delay in rounds (>= 1).
  std::uint32_t attempts = 1; ///< Consecutive attempts the fault fires on.
};

/// A deterministic schedule of faults. Plans are plain data: copyable,
/// comparable by their event list, and round-trippable through a text format
/// (one event per line) for the CLI's --fault-plan flag.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEvent> events)
      : events_(std::move(events)) {}

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }
  void add(FaultEvent event) { events_.push_back(event); }

  /// Events scheduled in the logical round window [begin, end) that still
  /// fire on `attempt` (0-based attempt counter of the covering superstep).
  std::vector<const FaultEvent*> active(std::uint64_t begin, std::uint64_t end,
                                        std::uint32_t attempt) const;

  /// Structural admissibility: empty string when every event is well formed,
  /// else a description of the first problem (for StatusCode
  /// kInvalidFaultPlan).
  std::string check() const;

  /// Hard caps on untrusted plan text (ParseErrorCode::kLimitExceeded).
  static constexpr std::uint64_t kMaxEvents = 1ull << 20;
  static constexpr std::uint64_t kMaxLineBytes = 1ull << 16;

  /// Parse the text format. Lines are
  ///   <crash|drop|duplicate|straggler> key=value ...
  /// with keys round, machine, message, delay, attempts; '#' starts a
  /// comment. Throws dmpc::ParseError (typed code + line/column + offending
  /// token) on malformed or oversized input.
  static FaultPlan parse(const std::string& text);

  /// Legacy non-throwing wrapper: on failure returns an empty plan and sets
  /// *error to the ParseError message.
  static FaultPlan parse(const std::string& text, std::string* error);

  /// Inverse of parse (stable one-line-per-event encoding).
  std::string to_string() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Where recovery snapshots are taken.
enum class CheckpointMode : std::uint8_t {
  kOff,    ///< No snapshots: any crash/drop is immediately unrecoverable.
  kRound,  ///< Snapshot at every superstep / primitive invocation boundary.
  kPhase,  ///< Snapshot at pipeline phase marks; replay rolls back further.
};

const char* checkpoint_mode_name(CheckpointMode mode);

/// Bounds on the retry engine. Validated by dmpc::Solver (StatusCode
/// kInvalidRetryBudget).
struct RecoveryOptions {
  /// Hard cap on max_retries — a guard against garbage input.
  static constexpr std::uint32_t kMaxRetries = 64;

  /// Replay attempts per superstep before FaultError is thrown.
  std::uint32_t max_retries = 3;
  /// Base of the exponential per-retry round budget: retry k of a superstep
  /// spanning c rounds consumes backoff_rounds * c * 2^{k-1} rounds of the
  /// recovery budget (RecoveryStats::replayed_rounds). Must be >= 1.
  std::uint64_t backoff_rounds = 1;
  CheckpointMode checkpoint = CheckpointMode::kRound;
  /// Emit recovery/retry and recovery/checkpoint instant events into the
  /// attached trace session. Off by default so golden traces stay
  /// byte-identical to the fault-free run.
  bool trace_recovery = false;
};

/// Side ledger of everything the fault/recovery layer did. Deliberately
/// separate from Metrics: the core cost model (rounds, peak load,
/// communication) must stay byte-identical to the fault-free run, so all
/// recovery overhead is accounted here and serialized under the report's
/// "recovery" key.
struct RecoveryStats {
  std::uint64_t faults_injected = 0;        ///< Events that actually fired.
  std::uint64_t crashes = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t duplicates_suppressed = 0;  ///< Redeliveries deduplicated.
  std::uint64_t straggler_rounds = 0;       ///< Barrier delay absorbed.
  std::uint64_t retries = 0;                ///< Supersteps replayed.
  std::uint64_t replayed_rounds = 0;        ///< Backoff round budget consumed.
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_words = 0;       ///< Words snapshotted.
  std::map<std::string, std::uint64_t> retries_by_label;
  /// Host storage-layer recovery (mpc/io_faults.hpp): retries, checksum
  /// failures, quarantines, and backend degradation, serialized as the
  /// report's recovery.storage sub-block (schema 6).
  IoRecoveryStats storage;

  /// True when no fault fired and no recovery work happened.
  bool clean() const {
    return faults_injected == 0 && retries == 0 && checkpoints == 0 &&
           straggler_rounds == 0 && storage.clean();
  }

  void reset() { *this = RecoveryStats{}; }
  void merge(const RecoveryStats& other);

  /// Export this ledger into the *recovery* section of `registry` (counters
  /// "recovery/<field>" plus the "recovery/retries/<label>" family). Like
  /// Metrics::export_to this adds, so per-solve values are read back via
  /// snapshot deltas. The recovery section is excluded from report JSON —
  /// reports stay byte-identical across fault plans modulo their typed
  /// "recovery" block.
  void export_to(obs::MetricsRegistry& registry) const;
};

/// Thrown when a superstep cannot be recovered: the retry budget is
/// exhausted, or a crash/drop fires with checkpointing off. Maps to
/// StatusCode::kUnrecoverableFault at the API layer (CLI exit 2). Derives
/// from CheckFailure so existing catch sites keep working.
class FaultError : public CheckFailure {
 public:
  FaultError(std::string label, std::uint64_t round, std::uint32_t attempts,
             const std::string& detail)
      : CheckFailure("unrecoverable fault in '" + label + "' at round " +
                     std::to_string(round) + " after " +
                     std::to_string(attempts) + " attempt(s): " + detail),
        label_(std::move(label)),
        round_(round),
        attempts_(attempts) {}

  const std::string& label() const { return label_; }
  std::uint64_t round() const { return round_; }
  std::uint32_t attempts() const { return attempts_; }

 private:
  std::string label_;
  std::uint64_t round_;
  std::uint32_t attempts_;
};

}  // namespace dmpc::mpc
