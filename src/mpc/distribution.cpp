#include "mpc/distribution.hpp"

#include "mpc/primitives.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace dmpc::mpc {

std::vector<GroupMachine> build_machine_groups(
    Cluster& cluster, const std::vector<std::uint64_t>& counts_per_owner,
    std::uint64_t group_size, std::uint64_t arity, const std::string& label) {
  DMPC_CHECK(group_size >= 1);
  cluster.check_load(group_size * arity, label + ": group machine", label);
  std::vector<GroupMachine> machines;
  std::uint64_t total_items = 0;
  for (std::uint64_t owner = 0; owner < counts_per_owner.size(); ++owner) {
    const std::uint64_t count = counts_per_owner[owner];
    total_items += count;
    std::uint64_t begin = 0;
    // Full machines first, then one remainder machine (possibly empty ->
    // omitted), matching the paper's "all but at most one" phrasing.
    while (begin + group_size <= count) {
      machines.push_back({owner, begin, begin + group_size});
      begin += group_size;
    }
    if (begin < count) machines.push_back({owner, begin, count});
  }
  // Distributing items to their group machines is one sort by
  // (owner, position) over the item records.
  const std::uint64_t rounds = sort_round_cost(cluster, total_items);
  cluster.charge_recoverable(rounds, label);
  cluster.metrics().add_communication(total_items * arity, label);
  obs::trace_primitive(cluster.trace(), label, rounds, total_items * arity);
  return machines;
}

void charge_two_hop_gather(Cluster& cluster,
                           const std::vector<std::uint64_t>& two_hop_words,
                           const std::vector<bool>& centers,
                           const std::string& label) {
  DMPC_CHECK(two_hop_words.size() == centers.size());
  std::uint64_t total = 0;
  for (std::size_t v = 0; v < centers.size(); ++v) {
    if (!centers[v]) continue;
    cluster.check_load(
        two_hop_words[v],
        label + ": 2-hop neighborhood of node " + std::to_string(v), label);
    total += two_hop_words[v];
  }
  // Sort edges to collect 1-hop lists, then one request + one response
  // exchange for the second hop (§2.2).
  const std::uint64_t rounds = sort_round_cost(cluster, std::max<std::uint64_t>(total, 2)) + 2;
  cluster.charge_recoverable(rounds, label);
  cluster.metrics().add_communication(total, label);
  obs::trace_primitive(cluster.trace(), label, rounds, total);
}

}  // namespace dmpc::mpc
