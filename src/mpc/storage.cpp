#include "mpc/storage.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "mpc/mapped_file.hpp"
#include "obs/metrics_registry.hpp"
#include "support/parse_error.hpp"

namespace dmpc::mpc {

namespace fs = std::filesystem;

const char* storage_backend_name(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kMemory:
      return "memory";
    case StorageBackend::kMmap:
      return "mmap";
  }
  return "unknown";
}

const char* verify_mode_name(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kOff:
      return "off";
    case VerifyMode::kOpen:
      return "open";
    case VerifyMode::kParanoid:
      return "paranoid";
  }
  return "unknown";
}

const char* fallback_mode_name(FallbackMode mode) {
  switch (mode) {
    case FallbackMode::kNone:
      return "none";
    case FallbackMode::kMemory:
      return "memory";
  }
  return "unknown";
}

StorageStats InMemoryStorage::stats() const {
  StorageStats s;
  const graph::Graph& g = graph_;
  // Exact heap CSR footprint: offsets + adjacency + incident + edges.
  s.bytes_total = (static_cast<std::uint64_t>(g.num_nodes()) + 1) * 8 +
                  2 * g.num_edges() * (8 + 4) + g.num_edges() * 8;
  s.shards = g.extents().size();
  s.resident_bytes = s.bytes_total;  // heap memory is always resident
  return s;
}

struct MmapShardStorage::Mappings {
  std::vector<MappedFile> files;
  /// Quarantined shards: heap re-read copies served instead of the mapping.
  /// The mapping itself is kept alive (never unmapped mid-lifetime) so
  /// Graph views handed out before the quarantine stay valid.
  std::vector<std::unique_ptr<std::vector<unsigned char>>> heap;
};

namespace {

/// The retry ladder: run `body` (one access attempt), retrying transient
/// StorageErrors up to `recovery.max_retries` times with exponential
/// backoff units charged to the ledger. kQuarantined never retries — the
/// same bytes would fail the same way.
template <typename Body>
void with_retries(const RecoveryOptions& recovery, IoRecoveryStats& ledger,
                  Body&& body) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      body();
      return;
    } catch (const StorageError& e) {
      if (e.code() == StorageErrorCode::kQuarantined ||
          attempt >= recovery.max_retries) {
        throw;
      }
      ++ledger.retries;
      ledger.backoff_units += recovery.backoff_rounds << attempt;
    }
  }
}

}  // namespace

const unsigned char* MmapShardStorage::shard_bytes(std::uint64_t index) const {
  const auto& heap = mappings_->heap;
  if (index < heap.size() && heap[index] != nullptr) {
    return heap[index]->data();
  }
  return mappings_->files[index].data();
}

void MmapShardStorage::fault_point(std::uint64_t shard, std::uint64_t access,
                                   bool* corrupt) const {
  const std::uint32_t attempt = attempts_[{shard, access}]++;
  for (const IoFaultEvent* event : io_faults_.active(shard, access, attempt)) {
    ++io_ledger_.io_faults_injected;
    switch (event->kind) {
      case IoFaultKind::kSlow:
        // A straggling disk: the barrier absorbs the delay; only the ledger
        // sees it. No throw.
        io_ledger_.backoff_units += event->delay;
        break;
      case IoFaultKind::kCorrupt:
        // The caller observes checksum-corrupted bytes on this attempt.
        if (corrupt != nullptr) *corrupt = true;
        break;
      case IoFaultKind::kEio:
        throw StorageError(StorageErrorCode::kIoTransient,
                           "injected EIO (attempt " + std::to_string(attempt) +
                               ")",
                           shard);
      case IoFaultKind::kShortRead:
        throw StorageError(StorageErrorCode::kShortRead,
                           "injected short read (attempt " +
                               std::to_string(attempt) + ")",
                           shard);
      case IoFaultKind::kMapFail:
        throw StorageError(StorageErrorCode::kMapFailed,
                           "injected mmap failure (attempt " +
                               std::to_string(attempt) + ")",
                           shard);
    }
  }
}

void MmapShardStorage::verify_manifest_or_throw() const {
  with_retries(recovery_, io_ledger_, [&] {
    bool corrupt = false;
    fault_point(kManifestShard, kAccessVerify, &corrupt);
    std::uint64_t digest =
        manifest_digest(manifest_bytes_.data(), manifest_bytes_.size());
    if (corrupt) digest ^= 1;
    if (digest != manifest_.digest) {
      ++io_ledger_.checksum_failures;
      throw StorageError(StorageErrorCode::kChecksumMismatch,
                         "manifest digest " + std::to_string(digest) +
                             " != stored " + std::to_string(manifest_.digest));
    }
  });
}

void MmapShardStorage::verify_shard_or_throw(std::uint64_t index) const {
  const ShardEntry& entry = manifest_.shards[index];
  const auto verify_once = [&](std::uint64_t access) {
    bool corrupt = false;
    fault_point(index, access, &corrupt);
    std::uint64_t crc = crc64(shard_bytes(index),
                              static_cast<std::size_t>(entry.file_bytes));
    if (corrupt) crc ^= 1;
    if (crc != entry.crc64) {
      ++io_ledger_.checksum_failures;
      throw StorageError(StorageErrorCode::kChecksumMismatch,
                         "shard crc64 " + std::to_string(crc) +
                             " != manifest " + std::to_string(entry.crc64),
                         index);
    }
  };
  try {
    with_retries(recovery_, io_ledger_,
                 [&] { verify_once(kAccessVerify); });
    ++io_ledger_.shards_verified;
    return;
  } catch (const StorageError&) {
    // Retries exhausted on the mapped bytes: escalate to quarantine — drop
    // the mapping from service and re-read the file into a heap copy.
  }
  quarantine_shard(index);
  // The quarantined copy must itself verify before it is trusted.
  with_retries(recovery_, io_ledger_,
               [&] { verify_once(kAccessVerify); });
  ++io_ledger_.shards_verified;
}

void MmapShardStorage::quarantine_shard(std::uint64_t index) const {
  const ShardEntry& entry = manifest_.shards[index];
  const std::string path =
      (fs::path(dir_) / shard_file_name(index)).string();
  try {
    with_retries(recovery_, io_ledger_, [&] {
      bool corrupt = false;
      fault_point(index, kAccessQuarantine, &corrupt);
      auto buffer = std::make_unique<std::vector<unsigned char>>(
          static_cast<std::size_t>(entry.file_bytes));
      errno = 0;
      const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd < 0) {
        throw StorageError(StorageErrorCode::kIoTransient,
                           "quarantine re-open of '" + path +
                               "' failed: " + std::strerror(errno),
                           index);
      }
      const std::int64_t got =
          pread_retry_eintr(fd, buffer->data(), buffer->size(), 0);
      ::close(fd);
      if (got < 0) {
        throw StorageError(StorageErrorCode::kIoTransient,
                           "quarantine re-read of '" + path +
                               "' failed: " + std::strerror(errno),
                           index);
      }
      if (static_cast<std::uint64_t>(got) != entry.file_bytes) {
        throw StorageError(StorageErrorCode::kShortRead,
                           "quarantine re-read of '" + path + "' returned " +
                               std::to_string(got) + " of " +
                               std::to_string(entry.file_bytes) + " bytes",
                           index);
      }
      std::uint64_t crc = crc64(buffer->data(), buffer->size());
      if (corrupt) crc ^= 1;
      if (crc != entry.crc64) {
        ++io_ledger_.checksum_failures;
        throw StorageError(StorageErrorCode::kChecksumMismatch,
                           "quarantine re-read crc64 " + std::to_string(crc) +
                               " != manifest " + std::to_string(entry.crc64),
                           index);
      }
      if (mappings_->heap.size() < mappings_->files.size()) {
        mappings_->heap.resize(mappings_->files.size());
      }
      mappings_->heap[index] = std::move(buffer);
    });
  } catch (const StorageError& e) {
    throw StorageError(StorageErrorCode::kQuarantined,
                       "shard exhausted its quarantine budget: " + e.detail(),
                       index);
  }
  ++io_ledger_.quarantined_shards;
  // The extent view must serve the quarantined copy from now on.
  rebuild_graph();
}

void MmapShardStorage::rebuild_graph() const {
  std::vector<graph::GraphExtent> parts;
  parts.reserve(manifest_.shards.size());
  for (std::uint64_t i = 0; i < manifest_.shards.size(); ++i) {
    const ShardEntry& e = manifest_.shards[i];
    const std::uint64_t nodes = e.node_end - e.node_begin;
    const std::uint64_t slots = e.slot_end - e.slot_begin;
    const std::uint64_t edges = e.edge_end - e.edge_begin;
    const unsigned char* base = shard_bytes(i);
    graph::GraphExtent part;
    part.node_begin = static_cast<graph::NodeId>(e.node_begin);
    part.node_end = static_cast<graph::NodeId>(e.node_end);
    part.edge_begin = e.edge_begin;
    part.edge_end = e.edge_end;
    part.slot_begin = e.slot_begin;
    part.slot_end = e.slot_end;
    part.offsets =
        reinterpret_cast<const std::uint64_t*>(base + kShardHeaderBytes);
    part.incident = part.offsets + nodes + 1;
    part.edges = reinterpret_cast<const graph::Edge*>(part.incident + slots);
    part.adjacency =
        reinterpret_cast<const graph::NodeId*>(part.edges + edges);
    parts.push_back(part);
  }
  graph_ = graph::Graph::from_extents(
      static_cast<graph::NodeId>(manifest_.n), manifest_.m,
      manifest_.max_degree, std::move(parts), mappings_);
}

IntegrityReport MmapShardStorage::verify_integrity() const {
  IntegrityReport report;
  if (!manifest_.has_checksums()) {
    report.status = IntegrityReport::Status::kUnverified;
    report.detail = "v1 manifest carries no checksums";
    return report;
  }
  try {
    verify_manifest_or_throw();
    for (std::uint64_t i = 0; i < manifest_.shards.size(); ++i) {
      verify_shard_or_throw(i);
      ++report.shards_checked;
    }
  } catch (const StorageError& e) {
    report.status = IntegrityReport::Status::kFailed;
    report.bad_shard = e.shard();
    report.detail = e.what();
    return report;
  }
  report.status = IntegrityReport::Status::kVerified;
  return report;
}

std::unique_ptr<MmapShardStorage> MmapShardStorage::open(
    const std::string& dir, const graph::EdgeListLimits& limits,
    VerifyMode verify, const IoFaultPlan& io_faults,
    const RecoveryOptions& recovery) {
  auto storage = std::unique_ptr<MmapShardStorage>(new MmapShardStorage());
  storage->dir_ = dir;
  storage->verify_ = verify;
  storage->io_faults_ = io_faults;
  storage->recovery_ = recovery;

  const std::string manifest_path =
      (fs::path(dir) / kManifestFileName).string();
  std::vector<unsigned char>& bytes = storage->manifest_bytes_;
  with_retries(recovery, storage->io_ledger_, [&] {
    storage->fault_point(kManifestShard, kAccessOpen, nullptr);
    errno = 0;
    std::ifstream in(manifest_path, std::ios::binary);
    if (!in.good()) {
      throw ParseError(ParseErrorCode::kIoError,
                       "cannot open '" + manifest_path + "' for reading: " +
                           std::strerror(errno ? errno : EINVAL));
    }
    // Bound the read before trusting any header field: a valid manifest for
    // a graph within the caps cannot exceed this many bytes.
    const std::uint64_t cap = kManifestHeaderBytes +
                              limits.max_nodes * kManifestEntryBytes +
                              kManifestDigestBytes;
    in.seekg(0, std::ios::end);
    const auto size = static_cast<std::uint64_t>(in.tellg());
    if (size > cap) {
      throw ParseError(ParseErrorCode::kShardLimitExceeded,
                       "shard manifest: file size " + std::to_string(size) +
                           " exceeds the cap implied by max_nodes");
    }
    in.seekg(0, std::ios::beg);
    bytes.resize(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!in.good() && !in.eof()) {
      throw ParseError(ParseErrorCode::kIoError,
                       "read failure on '" + manifest_path + "'");
    }
  });
  storage->manifest_ = parse_shard_manifest(bytes.data(), bytes.size(), limits);
  const ShardManifest& manifest = storage->manifest_;

  storage->mappings_ = std::make_shared<Mappings>();
  Mappings& mappings = *storage->mappings_;
  mappings.heap.resize(manifest.shards.size());
  std::uint32_t seen_max_degree = 0;
  for (std::uint64_t i = 0; i < manifest.shards.size(); ++i) {
    const ShardEntry& e = manifest.shards[i];
    MappedFile map;
    with_retries(recovery, storage->io_ledger_, [&] {
      storage->fault_point(i, kAccessOpen, nullptr);
      map = MappedFile::open_readonly(
          (fs::path(dir) / shard_file_name(i)).string(), e.file_bytes);
    });
    const unsigned char* base = map.data();
    if (std::memcmp(base, kShardMagic, sizeof(kShardMagic)) != 0) {
      throw ParseError(ParseErrorCode::kBadHeader,
                       "shard " + std::to_string(i) + ": bad magic");
    }
    std::uint64_t index = 0;
    std::memcpy(&index, base + 8, sizeof(index));
    if (index != i) {
      throw ParseError(ParseErrorCode::kBadHeader,
                       "shard " + std::to_string(i) + ": header names shard " +
                           std::to_string(index));
    }
    const std::uint64_t nodes = e.node_end - e.node_begin;
    const auto* offsets =
        reinterpret_cast<const std::uint64_t*>(base + kShardHeaderBytes);
    // Structural validation of the offsets slice: anchored at the manifest
    // ranges, monotone, rows within degree bounds. O(nodes) — the payload
    // arrays stay untouched so no page beyond the offsets faults in here.
    if (offsets[0] != e.slot_begin || offsets[nodes] != e.slot_end) {
      throw ParseError(ParseErrorCode::kCountMismatch,
                       "shard " + std::to_string(i) +
                           ": offsets slice is not anchored at the "
                           "manifest's slot range");
    }
    for (std::uint64_t v = 0; v < nodes; ++v) {
      if (offsets[v + 1] < offsets[v] ||
          offsets[v + 1] - offsets[v] > manifest.n - 1) {
        throw ParseError(ParseErrorCode::kOutOfRange,
                         "shard " + std::to_string(i) + ": corrupt offsets");
      }
      seen_max_degree = std::max(
          seen_max_degree, static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]));
    }
    mappings.files.push_back(std::move(map));
  }
  if (seen_max_degree != manifest.max_degree) {
    throw ParseError(ParseErrorCode::kCountMismatch,
                     "manifest max_degree " +
                         std::to_string(manifest.max_degree) +
                         " disagrees with offsets (" +
                         std::to_string(seen_max_degree) + ")");
  }

  // Eager integrity pass (kOpen and kParanoid). Unrecoverable failures —
  // the ladder already retried and quarantined — surface as StorageError so
  // open_storage can degrade per StorageOptions::fallback.
  if (verify != VerifyMode::kOff && manifest.has_checksums()) {
    storage->verify_manifest_or_throw();
    for (std::uint64_t i = 0; i < manifest.shards.size(); ++i) {
      storage->verify_shard_or_throw(i);
    }
  }

  storage->rebuild_graph();
  return storage;
}

StorageStats MmapShardStorage::stats() const {
  StorageStats s;
  s.shards = mappings_->files.size();
  for (const MappedFile& f : mappings_->files) {
    s.bytes_total += f.size();
    s.resident_bytes += f.resident_bytes();
  }
  for (const auto& buffer : mappings_->heap) {
    if (buffer != nullptr) s.resident_bytes += buffer->size();
  }
  return s;
}

std::unique_ptr<Storage> open_storage(const StorageOptions& options,
                                      const std::string& input_path,
                                      const graph::EdgeListLimits& limits,
                                      const IoFaultPlan& io_faults,
                                      const RecoveryOptions& recovery) {
  switch (options.backend) {
    case StorageBackend::kMemory:
      // An io-fault plan against the heap backend is a valid no-op: there
      // is no host I/O to perturb.
      return std::make_unique<InMemoryStorage>(
          graph::read_edge_list_file(input_path, limits));
    case StorageBackend::kMmap:
      try {
        return MmapShardStorage::open(options.shard_dir, limits,
                                      options.verify, io_faults, recovery);
      } catch (const StorageError& e) {
        if (options.fallback != FallbackMode::kMemory || input_path.empty()) {
          throw;
        }
        // Whole-backend degradation: the mmap path is unrecoverable, the
        // text input is not. The approximate failure ledger (the failed
        // backend died with its exact counters) records the degradation and
        // the class of failure that caused it.
        auto memory = std::make_unique<InMemoryStorage>(
            graph::read_edge_list_file(input_path, limits));
        IoRecoveryStats ledger;
        ledger.degraded = 1;
        if (e.code() == StorageErrorCode::kChecksumMismatch ||
            e.code() == StorageErrorCode::kQuarantined) {
          ledger.checksum_failures = 1;
        }
        memory->merge_io_recovery(ledger);
        return memory;
      }
  }
  return nullptr;
}

void export_storage_host_stats(const Storage& storage) {
  auto& registry = obs::MetricsRegistry::global();
  const StorageStats s = storage.stats();
  registry.gauge("storage/bytes_mapped", obs::MetricSection::kHost)
      .set(static_cast<std::int64_t>(s.bytes_total));
  registry.gauge("storage/shards", obs::MetricSection::kHost)
      .set(static_cast<std::int64_t>(s.shards));
  registry.gauge("storage/resident_bytes", obs::MetricSection::kHost)
      .set(static_cast<std::int64_t>(s.resident_bytes));
  registry.gauge("storage/backend", obs::MetricSection::kHost)
      .set(static_cast<std::int64_t>(storage.backend()));
}

}  // namespace dmpc::mpc
