#include "mpc/storage.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "mpc/mapped_file.hpp"
#include "mpc/shard_format.hpp"
#include "obs/metrics_registry.hpp"
#include "support/parse_error.hpp"

namespace dmpc::mpc {

namespace fs = std::filesystem;

const char* storage_backend_name(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kMemory:
      return "memory";
    case StorageBackend::kMmap:
      return "mmap";
  }
  return "unknown";
}

StorageStats InMemoryStorage::stats() const {
  StorageStats s;
  const graph::Graph& g = graph_;
  // Exact heap CSR footprint: offsets + adjacency + incident + edges.
  s.bytes_total = (static_cast<std::uint64_t>(g.num_nodes()) + 1) * 8 +
                  2 * g.num_edges() * (8 + 4) + g.num_edges() * 8;
  s.shards = g.extents().size();
  s.resident_bytes = s.bytes_total;  // heap memory is always resident
  return s;
}

struct MmapShardStorage::Mappings {
  std::vector<MappedFile> files;
};

std::unique_ptr<MmapShardStorage> MmapShardStorage::open(
    const std::string& dir, const graph::EdgeListLimits& limits) {
  const std::string manifest_path =
      (fs::path(dir) / kManifestFileName).string();
  std::vector<unsigned char> bytes;
  {
    errno = 0;
    std::ifstream in(manifest_path, std::ios::binary);
    if (!in.good()) {
      throw ParseError(ParseErrorCode::kIoError,
                       "cannot open '" + manifest_path + "' for reading: " +
                           std::strerror(errno ? errno : EINVAL));
    }
    // Bound the read before trusting any header field: a valid manifest for
    // a graph within the caps cannot exceed this many bytes.
    const std::uint64_t cap =
        kManifestHeaderBytes + limits.max_nodes * kManifestEntryBytes;
    in.seekg(0, std::ios::end);
    const auto size = static_cast<std::uint64_t>(in.tellg());
    if (size > cap) {
      throw ParseError(ParseErrorCode::kShardLimitExceeded,
                       "shard manifest: file size " + std::to_string(size) +
                           " exceeds the cap implied by max_nodes");
    }
    in.seekg(0, std::ios::beg);
    bytes.resize(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!in.good() && !in.eof()) {
      throw ParseError(ParseErrorCode::kIoError,
                       "read failure on '" + manifest_path + "'");
    }
  }
  const ShardManifest manifest =
      parse_shard_manifest(bytes.data(), bytes.size(), limits);

  auto mappings = std::make_shared<Mappings>();
  std::vector<graph::GraphExtent> parts;
  parts.reserve(manifest.shards.size());
  std::uint32_t seen_max_degree = 0;
  for (std::uint64_t i = 0; i < manifest.shards.size(); ++i) {
    const ShardEntry& e = manifest.shards[i];
    MappedFile map = MappedFile::open_readonly(
        (fs::path(dir) / shard_file_name(i)).string(), e.file_bytes);
    const unsigned char* base = map.data();
    if (std::memcmp(base, kShardMagic, sizeof(kShardMagic)) != 0) {
      throw ParseError(ParseErrorCode::kBadHeader,
                       "shard " + std::to_string(i) + ": bad magic");
    }
    std::uint64_t index = 0;
    std::memcpy(&index, base + 8, sizeof(index));
    if (index != i) {
      throw ParseError(ParseErrorCode::kBadHeader,
                       "shard " + std::to_string(i) + ": header names shard " +
                           std::to_string(index));
    }
    const std::uint64_t nodes = e.node_end - e.node_begin;
    const std::uint64_t slots = e.slot_end - e.slot_begin;
    const std::uint64_t edges = e.edge_end - e.edge_begin;
    const auto* offsets =
        reinterpret_cast<const std::uint64_t*>(base + kShardHeaderBytes);
    // Structural validation of the offsets slice: anchored at the manifest
    // ranges, monotone, rows within degree bounds. O(nodes) — the payload
    // arrays stay untouched so no page beyond the offsets faults in here.
    if (offsets[0] != e.slot_begin || offsets[nodes] != e.slot_end) {
      throw ParseError(ParseErrorCode::kCountMismatch,
                       "shard " + std::to_string(i) +
                           ": offsets slice is not anchored at the "
                           "manifest's slot range");
    }
    for (std::uint64_t v = 0; v < nodes; ++v) {
      if (offsets[v + 1] < offsets[v] ||
          offsets[v + 1] - offsets[v] > manifest.n - 1) {
        throw ParseError(ParseErrorCode::kOutOfRange,
                         "shard " + std::to_string(i) + ": corrupt offsets");
      }
      seen_max_degree = std::max(
          seen_max_degree, static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]));
    }
    graph::GraphExtent part;
    part.node_begin = static_cast<graph::NodeId>(e.node_begin);
    part.node_end = static_cast<graph::NodeId>(e.node_end);
    part.edge_begin = e.edge_begin;
    part.edge_end = e.edge_end;
    part.slot_begin = e.slot_begin;
    part.slot_end = e.slot_end;
    part.offsets = offsets;
    part.incident = offsets + nodes + 1;
    part.edges = reinterpret_cast<const graph::Edge*>(part.incident + slots);
    part.adjacency =
        reinterpret_cast<const graph::NodeId*>(part.edges + edges);
    parts.push_back(part);
    mappings->files.push_back(std::move(map));
  }
  if (seen_max_degree != manifest.max_degree) {
    throw ParseError(ParseErrorCode::kCountMismatch,
                     "manifest max_degree " +
                         std::to_string(manifest.max_degree) +
                         " disagrees with offsets (" +
                         std::to_string(seen_max_degree) + ")");
  }

  auto storage = std::unique_ptr<MmapShardStorage>(new MmapShardStorage());
  storage->graph_ = graph::Graph::from_extents(
      static_cast<graph::NodeId>(manifest.n), manifest.m, manifest.max_degree,
      std::move(parts), mappings);
  storage->mappings_ = std::move(mappings);
  return storage;
}

StorageStats MmapShardStorage::stats() const {
  StorageStats s;
  s.shards = mappings_->files.size();
  for (const MappedFile& f : mappings_->files) {
    s.bytes_total += f.size();
    s.resident_bytes += f.resident_bytes();
  }
  return s;
}

std::unique_ptr<Storage> open_storage(const StorageOptions& options,
                                      const std::string& input_path,
                                      const graph::EdgeListLimits& limits) {
  switch (options.backend) {
    case StorageBackend::kMemory:
      return std::make_unique<InMemoryStorage>(
          graph::read_edge_list_file(input_path, limits));
    case StorageBackend::kMmap:
      return MmapShardStorage::open(options.shard_dir, limits);
  }
  return nullptr;
}

void export_storage_host_stats(const Storage& storage) {
  auto& registry = obs::MetricsRegistry::global();
  const StorageStats s = storage.stats();
  registry.gauge("storage/bytes_mapped", obs::MetricSection::kHost)
      .set(static_cast<std::int64_t>(s.bytes_total));
  registry.gauge("storage/shards", obs::MetricSection::kHost)
      .set(static_cast<std::int64_t>(s.shards));
  registry.gauge("storage/resident_bytes", obs::MetricSection::kHost)
      .set(static_cast<std::int64_t>(s.resident_bytes));
  registry.gauge("storage/backend", obs::MetricSection::kHost)
      .set(static_cast<std::int64_t>(storage.backend()));
}

}  // namespace dmpc::mpc
