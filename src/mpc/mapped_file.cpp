#include "mpc/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "mpc/storage_error.hpp"
#include "support/parse_error.hpp"

namespace dmpc::mpc {

namespace {

std::string errno_detail() {
  const int err = errno;
  return err != 0 ? std::strerror(err) : "unknown error";
}

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw ParseError(ParseErrorCode::kIoError,
                   what + " '" + path + "': " + errno_detail());
}

/// mmap/ftruncate refusals are StorageError, not ParseError: the bytes may
/// be fine, the *mapping* failed, and the recovery ladder can degrade to
/// another backend (docs/STORAGE.md "Integrity & degraded mode").
[[noreturn]] void throw_map(const std::string& what, const std::string& path) {
  throw StorageError(StorageErrorCode::kMapFailed,
                     what + " '" + path + "': " + errno_detail());
}

/// A signal between the call and the kernel's return must not surface as a
/// storage failure: retry EINTR like every hardened POSIX loop.
int open_retry_eintr(const char* path, int flags, mode_t mode = 0) {
  for (;;) {
    errno = 0;
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

int fstat_retry_eintr(int fd, struct stat* st) {
  for (;;) {
    errno = 0;
    const int rc = ::fstat(fd, st);
    if (rc == 0 || errno != EINTR) return rc;
  }
}

}  // namespace

std::int64_t pread_retry_eintr(int fd, void* buf, std::size_t bytes,
                               std::int64_t offset) {
  std::size_t done = 0;
  while (done < bytes) {
    errno = 0;
    const ::ssize_t got =
        ::pread(fd, static_cast<unsigned char*>(buf) + done, bytes - done,
                static_cast<off_t>(offset + static_cast<std::int64_t>(done)));
    if (got < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (got == 0) break;  // EOF short of the request
    done += static_cast<std::size_t>(got);
  }
  return static_cast<std::int64_t>(done);
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    if (fd_ >= 0) ::close(fd_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    fd_ = std::exchange(other.fd_, -1);
    writable_ = std::exchange(other.writable_, false);
    path_ = std::move(other.path_);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
  if (fd_ >= 0) ::close(fd_);
}

MappedFile MappedFile::open_readonly(const std::string& path,
                                     std::uint64_t expected_bytes) {
  const int fd = open_retry_eintr(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_io("cannot open", path);
  MappedFile mf;
  mf.fd_ = fd;
  mf.path_ = path;
  struct stat st = {};
  if (fstat_retry_eintr(fd, &st) != 0) throw_io("cannot stat", path);
  mf.size_ = static_cast<std::uint64_t>(st.st_size);
  if (expected_bytes != 0 && mf.size_ != expected_bytes) {
    throw ParseError(ParseErrorCode::kCountMismatch,
                     "shard file '" + path + "' is " +
                         std::to_string(mf.size_) + " bytes, expected " +
                         std::to_string(expected_bytes) +
                         " (truncated or corrupt)");
  }
  if (mf.size_ == 0) return mf;
  void* p = ::mmap(nullptr, mf.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (p == MAP_FAILED) throw_map("cannot map", path);
  mf.data_ = static_cast<unsigned char*>(p);
  return mf;
}

MappedFile MappedFile::create_readwrite(const std::string& path,
                                        std::uint64_t bytes) {
  const int fd = open_retry_eintr(path.c_str(),
                                  O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                                  0644);
  if (fd < 0) throw_io("cannot create", path);
  MappedFile mf;
  mf.fd_ = fd;
  mf.path_ = path;
  mf.writable_ = true;
  mf.size_ = bytes;
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    throw_map("cannot size", path);
  }
  if (bytes == 0) return mf;
  void* p =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (p == MAP_FAILED) throw_map("cannot map", path);
  mf.data_ = static_cast<unsigned char*>(p);
  return mf;
}

void MappedFile::sync_and_drop() {
  if (data_ == nullptr) return;
  if (writable_) {
    errno = 0;
    if (::msync(data_, size_, MS_SYNC) != 0) throw_io("cannot sync", path_);
  }
  // Best-effort residency drop; failure only costs memory, not correctness.
  ::madvise(data_, size_, MADV_DONTNEED);
}

std::uint64_t MappedFile::resident_bytes() const {
  if (data_ == nullptr) return 0;
  const std::uint64_t page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t pages = (size_ + page - 1) / page;
  std::vector<unsigned char> vec(static_cast<std::size_t>(pages));
  if (::mincore(data_, size_, vec.data()) != 0) return 0;
  std::uint64_t resident = 0;
  for (unsigned char b : vec) {
    if (b & 1) ++resident;
  }
  return resident * page;
}

}  // namespace dmpc::mpc
