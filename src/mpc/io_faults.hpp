// Deterministic host-I/O fault injection for the storage layer.
//
// The cluster-level FaultPlan (mpc/faults.hpp) schedules *model* faults —
// machine crashes, message drops — on the logical round clock. IoFaultPlan
// is its host-side sibling: a seed-free schedule of filesystem misbehavior
// (short reads, EIO, checksum corruption, mmap refusals, slow-I/O
// stragglers) keyed on (shard index, access ordinal) instead of (round,
// machine). The storage layer assigns access ordinals deterministically
// (0 = open/map, 1 = checksum verify, 2 = quarantine re-read), and an event
// fires on attempts 0 .. attempts-1 of its access, so a transient fault
// with attempts=k is survivable iff k <= RecoveryOptions::max_retries.
//
// The hard guarantee mirrors docs/FAULTS.md: a solve under any admissible
// IoFaultPlan within the retry budget produces byte-identical solutions,
// report JSON (modulo the "recovery" block), and golden traces to the
// fault-free run — injected I/O failures are absorbed by the recovery
// ladder in storage.cpp (retry -> quarantine -> degrade) and ledgered in
// IoRecoveryStats, never in the model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpc/storage_error.hpp"

namespace dmpc::obs {
class MetricsRegistry;
}

namespace dmpc::mpc {

enum class IoFaultKind : std::uint8_t {
  kShortRead,  ///< The access sees fewer bytes than the manifest promises.
  kEio,        ///< The access fails with a transient I/O error.
  kCorrupt,    ///< The access observes checksum-corrupted bytes.
  kMapFail,    ///< mmap refuses the mapping for this access.
  kSlow,       ///< The access completes late; backoff units are recorded.
};

const char* io_fault_kind_name(IoFaultKind kind);

/// Access ordinals the storage layer charges against a shard. Every retry of
/// an access reuses its ordinal with an incremented attempt counter.
inline constexpr std::uint64_t kAccessOpen = 0;
inline constexpr std::uint64_t kAccessVerify = 1;
inline constexpr std::uint64_t kAccessQuarantine = 2;

/// One scheduled I/O fault. `shard` is the shard index (kManifestShard for
/// the manifest read); `access` the deterministic access ordinal above.
struct IoFaultEvent {
  IoFaultKind kind = IoFaultKind::kEio;
  std::uint64_t shard = 0;
  std::uint64_t access = kAccessOpen;
  std::uint64_t delay = 1;     ///< Slow-I/O delay in backoff units (>= 1).
  std::uint32_t attempts = 1;  ///< Consecutive attempts the fault fires on.
};

/// A deterministic schedule of I/O faults. Plans are plain data: copyable,
/// comparable by their event list, and round-trippable through a text
/// format (one event per line) for the CLI's --io-fault-plan flag. A plan
/// attached to the in-memory backend is a valid no-op: there is no host
/// I/O to perturb.
class IoFaultPlan {
 public:
  IoFaultPlan() = default;
  explicit IoFaultPlan(std::vector<IoFaultEvent> events)
      : events_(std::move(events)) {}

  bool empty() const { return events_.empty(); }
  const std::vector<IoFaultEvent>& events() const { return events_; }
  void add(IoFaultEvent event) { events_.push_back(event); }

  /// Events scheduled on (shard, access) that still fire on `attempt`
  /// (0-based attempt counter of that access).
  std::vector<const IoFaultEvent*> active(std::uint64_t shard,
                                          std::uint64_t access,
                                          std::uint32_t attempt) const;

  /// Structural admissibility: empty string when every event is well
  /// formed, else a description of the first problem (for StatusCode
  /// kInvalidIoFaultPlan).
  std::string check() const;

  /// Hard caps on untrusted plan text (ParseErrorCode::kLimitExceeded).
  static constexpr std::uint64_t kMaxEvents = 1ull << 20;
  static constexpr std::uint64_t kMaxLineBytes = 1ull << 16;

  /// Parse the text format. Lines are
  ///   <short_read|eio|corrupt|map_fail|slow> key=value ...
  /// with keys shard (a u64 or the word "manifest"), access, delay,
  /// attempts; '#' starts a comment. Throws dmpc::ParseError (typed code +
  /// line/column + offending token) on malformed or oversized input.
  static IoFaultPlan parse(const std::string& text);

  /// Legacy non-throwing wrapper: on failure returns an empty plan and sets
  /// *error to the ParseError message.
  static IoFaultPlan parse(const std::string& text, std::string* error);

  /// Inverse of parse (stable one-line-per-event encoding).
  std::string to_string() const;

 private:
  std::vector<IoFaultEvent> events_;
};

/// Side ledger of everything the storage recovery ladder did, embedded in
/// RecoveryStats as its `storage` sub-block (report schema 6) and exported
/// into the kRecovery registry section as storage/<field> counters. Like
/// the cluster ledger, it is excluded from byte-identity comparisons: the
/// model never sees host I/O.
struct IoRecoveryStats {
  std::uint64_t io_faults_injected = 0;  ///< Injected events that fired.
  std::uint64_t retries = 0;             ///< Accesses retried after a fault.
  std::uint64_t backoff_units = 0;       ///< Exponential backoff consumed.
  std::uint64_t checksum_failures = 0;   ///< CRC64 mismatches observed.
  std::uint64_t quarantined_shards = 0;  ///< Shards served from heap copies.
  std::uint64_t degraded = 0;            ///< Whole-backend mmap->memory falls.
  std::uint64_t shards_verified = 0;     ///< Shard checksums that matched.

  /// True when no I/O fault fired and no recovery work happened
  /// (successful verification alone keeps a run clean).
  bool clean() const {
    return io_faults_injected == 0 && retries == 0 && checksum_failures == 0 &&
           quarantined_shards == 0 && degraded == 0;
  }

  void reset() { *this = IoRecoveryStats{}; }
  void merge(const IoRecoveryStats& other);

  /// Export into the kRecovery registry section ("storage/<field>"
  /// counters). Adds, like every export; read back via snapshot deltas.
  void export_to(obs::MetricsRegistry& registry) const;
};

}  // namespace dmpc::mpc
