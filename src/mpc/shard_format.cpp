#include "mpc/shard_format.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "mpc/cluster.hpp"
#include "mpc/mapped_file.hpp"
#include "support/check.hpp"
#include "support/parse_error.hpp"

namespace dmpc::mpc {

static_assert(std::endian::native == std::endian::little,
              "dshard files are little-endian; big-endian hosts need a "
              "byte-swapping reader");
static_assert(sizeof(graph::Edge) == 8 && alignof(graph::Edge) == 4,
              "Edge must be two packed u32 for the on-disk edges array");

namespace {

std::uint64_t read_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t read_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void append_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  unsigned char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.insert(out.end(), buf, buf + 8);
}

void append_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  unsigned char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out.insert(out.end(), buf, buf + 4);
}

[[noreturn]] void bad_manifest(ParseErrorCode code, const std::string& what) {
  throw ParseError(code, "shard manifest: " + what);
}

/// Words shard-packing charges node v: 1 offset word, deg incident words,
/// cdeg edge words, and deg adjacency half-words rounded up.
std::uint64_t node_words(std::uint64_t deg, std::uint64_t cdeg) {
  return 1 + deg + cdeg + (deg + 1) / 2;
}

/// CRC-64/XZ lookup table (ECMA-182 polynomial 0x42F0E1EBA9EA3693,
/// reflected form 0xC96C5795D7870F42), built once at first use.
const std::uint64_t* crc64_table() {
  static const auto table = [] {
    std::array<std::uint64_t, 256> t{};
    constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ull;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint64_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

std::uint64_t crc64_update(std::uint64_t crc, const unsigned char* data,
                           std::size_t size) {
  const std::uint64_t* table = crc64_table();
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint64_t crc64(const unsigned char* data, std::size_t size) {
  return crc64_update(0, data, size);
}

std::uint64_t manifest_digest(const unsigned char* data, std::size_t size) {
  DMPC_CHECK(size >= kManifestDigestBytes);
  return crc64(data, size - kManifestDigestBytes);
}

std::uint64_t shard_file_bytes(const ShardEntry& entry) {
  const std::uint64_t nodes = entry.node_end - entry.node_begin;
  const std::uint64_t slots = entry.slot_end - entry.slot_begin;
  const std::uint64_t edges = entry.edge_end - entry.edge_begin;
  return kShardHeaderBytes + (nodes + 1) * 8 + slots * 8 + edges * 8 +
         slots * 4;
}

std::string shard_file_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%06llu.dshard",
                static_cast<unsigned long long>(index));
  return buf;
}

ShardManifest parse_shard_manifest(const unsigned char* data, std::size_t size,
                                   const graph::EdgeListLimits& limits) {
  if (size < kManifestHeaderBytes) {
    bad_manifest(ParseErrorCode::kBadHeader,
                 "too short (" + std::to_string(size) + " bytes, header is " +
                     std::to_string(kManifestHeaderBytes) + ")");
  }
  if (std::memcmp(data, kManifestMagic, sizeof(kManifestMagic)) != 0) {
    bad_manifest(ParseErrorCode::kBadHeader, "bad magic");
  }
  const std::uint32_t version = read_u32(data + 8);
  if (version != 1 && version != kShardFormatVersion) {
    bad_manifest(ParseErrorCode::kBadHeader,
                 "unsupported version " + std::to_string(version));
  }
  const std::uint32_t flags = read_u32(data + 12);
  if (flags != 0) {
    bad_manifest(ParseErrorCode::kBadHeader,
                 "unknown flags " + std::to_string(flags));
  }
  ShardManifest manifest;
  manifest.version = version;
  manifest.n = read_u64(data + 16);
  manifest.m = read_u64(data + 24);
  const std::uint64_t total_slots = read_u64(data + 32);
  manifest.max_degree = read_u32(data + 40);
  const std::uint32_t reserved = read_u32(data + 44);
  const std::uint64_t shard_count = read_u64(data + 48);
  manifest.shard_words = read_u64(data + 56);
  if (manifest.n == 0 || manifest.n >= graph::kNoNode) {
    bad_manifest(ParseErrorCode::kBadHeader,
                 "node count must be in [1, 2^32 - 2]");
  }
  if (reserved != 0) {
    bad_manifest(ParseErrorCode::kBadHeader, "nonzero reserved field");
  }
  // Same caps as the text parser, under the shard-specific code so callers
  // can tell which ingest path rejected the input.
  if (manifest.n > limits.max_nodes) {
    bad_manifest(ParseErrorCode::kShardLimitExceeded,
                 "declared node count " + std::to_string(manifest.n) +
                     " exceeds cap of " + std::to_string(limits.max_nodes));
  }
  if (manifest.m > limits.max_edges) {
    bad_manifest(ParseErrorCode::kShardLimitExceeded,
                 "declared edge count " + std::to_string(manifest.m) +
                     " exceeds cap of " + std::to_string(limits.max_edges));
  }
  if (total_slots != 2 * manifest.m) {
    bad_manifest(ParseErrorCode::kCountMismatch,
                 "total_slots " + std::to_string(total_slots) +
                     " != 2m = " + std::to_string(2 * manifest.m));
  }
  if (shard_count == 0 || shard_count > manifest.n) {
    bad_manifest(ParseErrorCode::kCountMismatch,
                 "shard count " + std::to_string(shard_count) +
                     " not in [1, n]");
  }
  const std::size_t entry_bytes =
      version >= 2 ? kManifestEntryBytes : kManifestEntryBytesV1;
  const std::size_t trailer_bytes = version >= 2 ? kManifestDigestBytes : 0;
  const std::uint64_t expected_size =
      kManifestHeaderBytes + shard_count * entry_bytes + trailer_bytes;
  if (size != expected_size) {
    bad_manifest(ParseErrorCode::kCountMismatch,
                 "file is " + std::to_string(size) + " bytes, expected " +
                     std::to_string(expected_size) + " for " +
                     std::to_string(shard_count) + " v" +
                     std::to_string(version) + " shards");
  }
  manifest.shards.reserve(static_cast<std::size_t>(shard_count));
  std::uint64_t node_cursor = 0, edge_cursor = 0, slot_cursor = 0;
  for (std::uint64_t i = 0; i < shard_count; ++i) {
    const unsigned char* p = data + kManifestHeaderBytes + i * entry_bytes;
    ShardEntry e;
    e.node_begin = read_u64(p);
    e.node_end = read_u64(p + 8);
    e.edge_begin = read_u64(p + 16);
    e.edge_end = read_u64(p + 24);
    e.slot_begin = read_u64(p + 32);
    e.slot_end = read_u64(p + 40);
    e.file_bytes = read_u64(p + 48);
    if (version >= 2) e.crc64 = read_u64(p + 56);
    const std::string at = "shard " + std::to_string(i) + ": ";
    if (e.node_end < e.node_begin || e.edge_end < e.edge_begin ||
        e.slot_end < e.slot_begin) {
      bad_manifest(ParseErrorCode::kOutOfRange, at + "inverted range");
    }
    if (e.node_begin != node_cursor || e.edge_begin != edge_cursor ||
        e.slot_begin != slot_cursor) {
      bad_manifest(ParseErrorCode::kCountMismatch,
                   at + "ranges do not tile the previous shard's end");
    }
    if (e.node_end == e.node_begin) {
      bad_manifest(ParseErrorCode::kCountMismatch, at + "empty node range");
    }
    if (e.file_bytes != shard_file_bytes(e)) {
      bad_manifest(ParseErrorCode::kCountMismatch,
                   at + "file_bytes " + std::to_string(e.file_bytes) +
                       " does not match ranges (" +
                       std::to_string(shard_file_bytes(e)) + ")");
    }
    node_cursor = e.node_end;
    edge_cursor = e.edge_end;
    slot_cursor = e.slot_end;
    manifest.shards.push_back(e);
  }
  if (node_cursor != manifest.n || edge_cursor != manifest.m ||
      slot_cursor != total_slots) {
    bad_manifest(ParseErrorCode::kCountMismatch,
                 "shards cover (" + std::to_string(node_cursor) + ", " +
                     std::to_string(edge_cursor) + ", " +
                     std::to_string(slot_cursor) + ") of (n, m, 2m) = (" +
                     std::to_string(manifest.n) + ", " +
                     std::to_string(manifest.m) + ", " +
                     std::to_string(total_slots) + ")");
  }
  if (manifest.max_degree > manifest.n - 1) {
    bad_manifest(ParseErrorCode::kOutOfRange,
                 "max_degree " + std::to_string(manifest.max_degree) +
                     " exceeds n - 1");
  }
  // The stored digest is recorded, not enforced: checksum verification is a
  // storage-layer policy (StorageOptions::verify), not a parse defect.
  if (version >= 2) manifest.digest = read_u64(data + size - 8);
  return manifest;
}

std::vector<unsigned char> encode_shard_manifest(
    const ShardManifest& manifest) {
  std::vector<unsigned char> out;
  out.reserve(kManifestHeaderBytes +
              manifest.shards.size() * kManifestEntryBytes);
  out.insert(out.end(), kManifestMagic, kManifestMagic + 8);
  append_u32(out, kShardFormatVersion);
  append_u32(out, 0);  // flags
  append_u64(out, manifest.n);
  append_u64(out, manifest.m);
  append_u64(out, 2 * manifest.m);
  append_u32(out, manifest.max_degree);
  append_u32(out, 0);  // reserved
  append_u64(out, manifest.shards.size());
  append_u64(out, manifest.shard_words);
  for (const ShardEntry& e : manifest.shards) {
    append_u64(out, e.node_begin);
    append_u64(out, e.node_end);
    append_u64(out, e.edge_begin);
    append_u64(out, e.edge_end);
    append_u64(out, e.slot_begin);
    append_u64(out, e.slot_end);
    append_u64(out, e.file_bytes);
    append_u64(out, e.crc64);
  }
  append_u64(out, crc64(out.data(), out.size()));
  return out;
}

namespace {

/// Writable views into one mapped shard during the build.
struct ShardTarget {
  ShardEntry entry;
  MappedFile map;

  std::uint64_t* offsets() {
    return reinterpret_cast<std::uint64_t*>(map.mutable_data() +
                                            kShardHeaderBytes);
  }
  std::uint64_t* incident() {
    return offsets() + (entry.node_end - entry.node_begin + 1);
  }
  graph::Edge* edges() {
    return reinterpret_cast<graph::Edge*>(
        incident() + (entry.slot_end - entry.slot_begin));
  }
  graph::NodeId* adjacency() {
    return reinterpret_cast<graph::NodeId*>(edges() +
                                            (entry.edge_end - entry.edge_begin));
  }
};

}  // namespace

ShardBuildStats shard_build(const std::string& input_path,
                            const std::string& out_dir,
                            const ShardBuildOptions& options) {
  DMPC_CHECK_MSG(options.limits.duplicates == graph::DuplicatePolicy::kReject,
                 "shard_build requires DuplicatePolicy::kReject (dedupe "
                 "would shift pass-1 offsets)");
  namespace fs = std::filesystem;
  {
    std::error_code ec;
    fs::create_directories(out_dir, ec);
    if (ec) {
      throw ParseError(ParseErrorCode::kIoError,
                       "cannot create shard directory '" + out_dir +
                           "': " + ec.message());
    }
  }

  // ---- Pass 1: stream the input, counting degrees. O(n) memory. ----
  graph::NodeId n = 0;
  std::uint64_t declared_m = 0;
  std::uint64_t m = 0;
  std::vector<std::uint32_t> deg;   // symmetric degree
  std::vector<std::uint32_t> cdeg;  // canonical (lower-endpoint) degree
  {
    errno = 0;
    std::ifstream in(input_path);
    if (!in.good()) {
      throw ParseError(ParseErrorCode::kIoError,
                       "cannot open '" + input_path + "' for reading: " +
                           std::strerror(errno ? errno : EINVAL));
    }
    // Duplicate edges are still counted here — they are detected (and
    // rejected) at finalization, where rows are sorted.
    graph::scan_edge_list(
        in, options.limits,
        [&](const graph::EdgeListHeader& header) {
          n = header.n;
          declared_m = header.declared_m;
          deg.assign(n, 0);
          cdeg.assign(n, 0);
        },
        [&](graph::NodeId a, graph::NodeId b, std::uint64_t, std::uint64_t) {
          ++deg[a];
          ++deg[b];
          ++cdeg[std::min(a, b)];
          ++m;
        });
  }

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::uint64_t> coffsets(static_cast<std::size_t>(n) + 1, 0);
  std::uint32_t max_degree = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + deg[v];
    coffsets[v + 1] = coffsets[v] + cdeg[v];
    max_degree = std::max(max_degree, deg[v]);
  }
  deg.clear();
  deg.shrink_to_fit();

  // ---- Provision shards along the simulator's machine-space formula. ----
  std::uint64_t target_words = options.shard_words;
  if (target_words == 0) {
    const std::uint64_t total_words = offsets[n] + coffsets[n] + n;
    const ClusterConfig cc =
        ClusterConfig::for_input(n, options.eps, total_words);
    const double s =
        options.space_headroom * static_cast<double>(cc.machine_space);
    // Shards hold whole machine slices; floor the capacity so a tiny S
    // (small n or eps) cannot explode the file/mapping count.
    constexpr std::uint64_t kMinShardWords = 1ull << 20;
    target_words = std::max<std::uint64_t>(
        kMinShardWords, static_cast<std::uint64_t>(s));
  }

  ShardManifest manifest;
  manifest.n = n;
  manifest.m = m;
  manifest.max_degree = max_degree;
  manifest.shard_words = target_words;
  {
    ShardEntry cur;
    std::uint64_t cur_words = 0;
    for (graph::NodeId v = 0; v < n; ++v) {
      const std::uint64_t w =
          node_words(offsets[v + 1] - offsets[v], coffsets[v + 1] - coffsets[v]);
      if (cur_words > 0 && cur_words + w > target_words) {
        cur.node_end = v;
        cur.edge_end = coffsets[v];
        cur.slot_end = offsets[v];
        cur.file_bytes = shard_file_bytes(cur);
        manifest.shards.push_back(cur);
        cur = ShardEntry{v, 0, coffsets[v], 0, offsets[v], 0, 0};
        cur_words = 0;
      }
      cur_words += w;
    }
    cur.node_end = n;
    cur.edge_end = coffsets[n];
    cur.slot_end = offsets[n];
    cur.file_bytes = shard_file_bytes(cur);
    manifest.shards.push_back(cur);
  }

  // Create, map, and pre-fill every shard (header + offsets slice).
  std::vector<ShardTarget> shards;
  shards.reserve(manifest.shards.size());
  for (std::uint64_t i = 0; i < manifest.shards.size(); ++i) {
    const ShardEntry& e = manifest.shards[i];
    ShardTarget t;
    t.entry = e;
    t.map = MappedFile::create_readwrite(
        (fs::path(out_dir) / shard_file_name(i)).string(), e.file_bytes);
    std::memcpy(t.map.mutable_data(), kShardMagic, sizeof(kShardMagic));
    std::memcpy(t.map.mutable_data() + 8, &i, sizeof(i));
    std::memcpy(t.offsets(), offsets.data() + e.node_begin,
                (e.node_end - e.node_begin + 1) * sizeof(std::uint64_t));
    shards.push_back(std::move(t));
  }

  // shard index owning a node; shards tile [0, n) so a last-hit memo makes
  // the common (locally clustered) case O(1).
  std::uint64_t memo = 0;
  const auto shard_of_node = [&](graph::NodeId v) -> ShardTarget& {
    if (!(shards[memo].entry.node_begin <= v && v < shards[memo].entry.node_end)) {
      std::uint64_t lo = 0, hi = shards.size() - 1;
      while (lo < hi) {
        const std::uint64_t mid = (lo + hi) / 2;
        if (shards[mid].entry.node_end <= v) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      memo = lo;
    }
    return shards[memo];
  };

  const auto flush_all = [&] {
    for (ShardTarget& t : shards) t.map.sync_and_drop();
  };

  // ---- Pass 2: re-stream the input, scatter-writing adjacency slots. ----
  {
    std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    std::uint64_t dirty_bytes = 0;
    errno = 0;
    std::ifstream in(input_path);
    if (!in.good()) {
      throw ParseError(ParseErrorCode::kIoError,
                       "cannot reopen '" + input_path + "' for pass 2: " +
                           std::strerror(errno ? errno : EINVAL));
    }
    graph::scan_edge_list(
        in, options.limits,
        [&](const graph::EdgeListHeader& header) {
          if (header.n != n || header.declared_m != declared_m) {
            throw ParseError(ParseErrorCode::kCountMismatch,
                             "input changed between passes");
          }
        },
        [&](graph::NodeId a, graph::NodeId b, std::uint64_t line_no,
            std::uint64_t) {
          const auto scatter = [&](graph::NodeId from, graph::NodeId to) {
            if (cursor[from] >= offsets[from + 1]) {
              throw ParseError(ParseErrorCode::kCountMismatch,
                               "input changed between passes", line_no);
            }
            ShardTarget& t = shard_of_node(from);
            t.adjacency()[cursor[from]++ - t.entry.slot_begin] = to;
          };
          scatter(a, b);
          scatter(b, a);
          dirty_bytes += 2 * sizeof(graph::NodeId);
          if (dirty_bytes >= options.rss_budget_bytes) {
            flush_all();
            dirty_bytes = 0;
          }
        });
    for (graph::NodeId v = 0; v < n; ++v) {
      if (cursor[v] != offsets[v + 1]) {
        throw ParseError(ParseErrorCode::kCountMismatch,
                         "input changed between passes");
      }
    }
  }

  // ---- Finalize: sort rows, reject duplicates, derive EdgeIds. ----
  //
  // Nodes are processed in ascending order, so when node v resolves a lower
  // neighbor w < v, w's row is already sorted and the EdgeId of {w, v} is
  // coffsets[w] + (rank of v among w's higher neighbors) — a binary search
  // in w's (possibly already flushed; pages fault back in) mapped row.
  {
    std::uint64_t dirty_bytes = 0;
    for (graph::NodeId v = 0; v < n; ++v) {
      ShardTarget& t = shard_of_node(v);
      graph::NodeId* row = t.adjacency() + (offsets[v] - t.entry.slot_begin);
      const std::uint64_t d = offsets[v + 1] - offsets[v];
      std::sort(row, row + d);
      for (std::uint64_t i = 1; i < d; ++i) {
        if (row[i - 1] == row[i]) {
          throw ParseError(ParseErrorCode::kDuplicateEdge,
                           "duplicate edge {" +
                               std::to_string(std::min(v, row[i])) + ", " +
                               std::to_string(std::max(v, row[i])) + "}");
        }
      }
      std::uint64_t* inc = t.incident() + (offsets[v] - t.entry.slot_begin);
      const std::uint64_t first_higher =
          std::upper_bound(row, row + d, v) - row;
      for (std::uint64_t i = first_higher; i < d; ++i) {
        const std::uint64_t eid = coffsets[v] + (i - first_higher);
        t.edges()[eid - t.entry.edge_begin] = {v, row[i]};
        inc[i] = eid;
      }
      for (std::uint64_t i = 0; i < first_higher; ++i) {
        const graph::NodeId w = row[i];
        ShardTarget& tw = shard_of_node(w);
        const graph::NodeId* wrow =
            tw.adjacency() + (offsets[w] - tw.entry.slot_begin);
        const std::uint64_t wd = offsets[w + 1] - offsets[w];
        const graph::NodeId* wh = std::upper_bound(wrow, wrow + wd, w);
        const graph::NodeId* pos = std::lower_bound(wh, wrow + wd, v);
        inc[i] = coffsets[w] + static_cast<std::uint64_t>(pos - wh);
      }
      dirty_bytes += d * (sizeof(std::uint64_t) + sizeof(graph::NodeId));
      if (dirty_bytes >= options.rss_budget_bytes) {
        flush_all();
        dirty_bytes = 0;
      }
    }
  }

  // Stamp each shard's CRC64 into its manifest entry. Synced shards are
  // streamed back through the CRC and dropped one at a time, so peak RSS
  // stays bounded by a single shard, not the whole directory.
  std::uint64_t total_bytes = 0;
  for (std::uint64_t i = 0; i < shards.size(); ++i) {
    ShardTarget& t = shards[i];
    t.map.sync_and_drop();
    manifest.shards[i].crc64 = crc64(
        reinterpret_cast<const unsigned char*>(t.map.data()),
        static_cast<std::size_t>(t.entry.file_bytes));
    t.map.sync_and_drop();
    total_bytes += t.entry.file_bytes;
  }
  shards.clear();  // unmap + close before the manifest commits the build

  // Crash-simulation point: every shard is on disk, the manifest is not.
  if (options.abort_before_manifest) options.abort_before_manifest();

  const std::vector<unsigned char> bytes = encode_shard_manifest(manifest);
  const std::string manifest_path =
      (fs::path(out_dir) / kManifestFileName).string();
  {
    errno = 0;
    std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw ParseError(ParseErrorCode::kIoError,
                       "cannot open '" + manifest_path + "' for writing: " +
                           std::strerror(errno ? errno : EINVAL));
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      throw ParseError(ParseErrorCode::kIoError,
                       "write failure on '" + manifest_path + "'");
    }
  }
  total_bytes += bytes.size();

  ShardBuildStats stats;
  stats.n = n;
  stats.m = m;
  stats.shards = manifest.shards.size();
  stats.total_bytes = total_bytes;
  return stats;
}

}  // namespace dmpc::mpc
