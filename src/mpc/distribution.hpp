// Paper-specific data distribution schemes.
//
// §3.2 / §4.2 distribute each node's incident edge list across a *group* of
// machines holding `group_size` items each ("type A" / "type B" machines);
// §3.3 / §4.3 assign each good node a machine x_v that gathers its 2-hop
// neighborhood in the sparsified graph. These helpers build the layouts,
// space-check them against the cluster, and charge the O(1) distribution
// rounds (a constant number of sort/scan invocations, per §2.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/cluster.hpp"

namespace dmpc::mpc {

/// One machine of a type-A/type-B group: it holds items
/// [begin, end) of its owner's item list.
struct GroupMachine {
  std::uint64_t owner = 0;  ///< Node (or other entity) the group belongs to.
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t size() const { return end - begin; }
};

/// Split each owner's `count` items into machines of `group_size` items, all
/// but at most one full (paper: "n^{4 delta} edges on all but at most one
/// machine"). Space-checks group_size*arity against the cluster and charges
/// one distribution step (a sort).
std::vector<GroupMachine> build_machine_groups(
    Cluster& cluster, const std::vector<std::uint64_t>& counts_per_owner,
    std::uint64_t group_size, std::uint64_t arity, const std::string& label);

/// Space accounting for the §3.3 gather: for each center v (mask true), the
/// machine x_v stores every incident item plus the neighborhoods of the
/// other endpoints — `two_hop_words(v)` words. Checks each against S and
/// charges the O(1) gather rounds (sort to collect 1-hop lists + one
/// request/response exchange, per §2.2).
void charge_two_hop_gather(Cluster& cluster,
                           const std::vector<std::uint64_t>& two_hop_words,
                           const std::vector<bool>& centers,
                           const std::string& label);

}  // namespace dmpc::mpc
