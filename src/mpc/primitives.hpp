// Lemma-4 primitives: sorting, prefix sums, reductions, broadcast.
//
// "For any positive constant eps, sorting and computing prefix sums of n
// numbers can be performed deterministically in MPC in a constant number of
// rounds using S = n^eps space per machine and O(n) total space."
// [Goodrich–Sitchinava–Zhang, via paper Lemma 4]
//
// The primitives below execute centrally but model the distributed layout:
// data lives in machine blocks, the block layout is space-checked, the round
// charge is the fan-in-S tree depth (the Lemma-4 "constant", which equals
// ceil(1/eps) when N = poly(n) and S = n^eps), and communication volume is
// accumulated. All higher-level algorithms do their cross-machine work
// exclusively through these, so their measured round/space/communication
// totals follow the paper's cost model.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "mpc/cluster.hpp"
#include "obs/trace.hpp"

namespace dmpc::mpc {

/// Verify that `records` records of `arity` words each fit in the cluster's
/// blocked layout (every machine's block <= S); records/machine is
/// ceil(records/M). Observes the per-machine load.
void check_blocked_layout(Cluster& cluster, std::uint64_t records,
                          std::uint64_t arity, const std::string& what);

/// Round/communication charges for one primitive invocation over `records`
/// records of `arity` words. Exposed for tests.
std::uint64_t sort_round_cost(const Cluster& cluster, std::uint64_t records);
std::uint64_t scan_round_cost(const Cluster& cluster, std::uint64_t records);

/// Deterministic distributed sort (Lemma 4). Sorts in place. Runs on the
/// cluster's host executor; the output permutation depends only on the data
/// (see exec::parallel_sort), never on the thread count.
template <typename T, typename Less>
void dsort(Cluster& cluster, std::vector<T>& v, Less less,
           const std::string& label = "sort") {
  const std::uint64_t arity = (sizeof(T) + 7) / 8;
  check_blocked_layout(cluster, v.size(), arity, label);
  // Re-sorting after a replayed attempt is idempotent, so the recovery
  // engine may run the body any number of times.
  cluster.run_with_recovery(
      label, sort_round_cost(cluster, v.size()), v.size() * arity,
      [&] { exec::parallel_sort(cluster.executor(), v, less); });
  const std::uint64_t rounds = sort_round_cost(cluster, v.size());
  cluster.metrics().charge_rounds(rounds, label);
  cluster.metrics().add_communication(v.size() * arity * rounds, label);
  obs::trace_primitive(cluster.trace(), label, rounds,
                       v.size() * arity * rounds);
}

/// Exclusive prefix sums of a distributed array (Lemma 4).
std::vector<std::uint64_t> prefix_sum_exclusive(
    Cluster& cluster, std::span<const std::uint64_t> values,
    const std::string& label = "prefix_sum");

/// Global sum via a fan-in-S tree.
std::uint64_t reduce_sum(Cluster& cluster, std::span<const std::uint64_t> values,
                         const std::string& label = "reduce");

/// Global max via a fan-in-S tree.
std::uint64_t reduce_max(Cluster& cluster, std::span<const std::uint64_t> values,
                         const std::string& label = "reduce");

/// Global sum of doubles (objective aggregation in conditional expectations).
double reduce_sum_double(Cluster& cluster, std::span<const double> values,
                         const std::string& label = "reduce");

/// Broadcast `words` words from one machine to all (fan-out-S tree).
void broadcast(Cluster& cluster, std::uint64_t words,
               const std::string& label = "broadcast");

/// Group-by-key sums: input (key, value) pairs in any order; output is one
/// (key, sum) per distinct key, sorted by key. Costs a sort plus a scan.
std::vector<std::pair<std::uint64_t, std::uint64_t>> group_sum(
    Cluster& cluster,
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pairs,
    const std::string& label = "group_sum");

}  // namespace dmpc::mpc
