// Deterministic MIS in O(log n) MPC rounds (§4, Theorem 14).
//
// Per iteration (Algorithm 3):
//   1. isolated alive nodes join the MIS and leave the graph;
//   2. select good nodes B and class set Q_0 (Corollary 16);
//   3. sparsify Q_0 to Q' so degrees inside Q' are O(n^{4 delta})
//      (node_sparsifier.hpp, Lemmas 17/18);
//   4. every B-node's machine gathers N_v (up to n^{4 delta} Q'-neighbors)
//      plus their Q'-neighborhoods (space O(n^{8 delta}), Lemma 20);
//   5. derandomize the Lemma-21 candidate independent set: pairwise hash h
//      gives each Q'-node priority z_v; I_h = local minima within Q';
//      objective q(h) = sum of d(v) over B-nodes with N_v ∩ I_h nonempty,
//      E[q] >= 0.01 delta sum_{v in B} d(v) >= delta^2 |E| / 200;
//   6. commit a seed meeting the threshold, add I_h to the MIS, delete
//      I_h ∪ N(I_h) — removing >= delta^2 |E| / 400 edges.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "matching/det_matching.hpp"  // DetMatchingConfig shape is shared
#include "mpc/cluster.hpp"
#include "mpc/metrics.hpp"
#include "sparsify/params.hpp"

namespace dmpc::obs {
class EventBus;
class RoundProfiler;
class TraceSession;
}

namespace dmpc::mis {

struct DetMisConfig {
  double eps = 0.5;
  std::uint32_t inv_delta = 0;  ///< 0 = paper default 8/eps.
  double space_headroom = 8.0;
  double total_space_factor = 8.0;
  sparsify::SparsifyConfig sparsify;
  /// Lemma 21 constant: q >= threshold_factor * delta * sum_{v in B} d(v).
  double threshold_factor = 0.01;
  std::uint64_t selection_batch = 16;
  std::uint64_t trials_per_threshold = 256;
  std::uint64_t max_iterations = 100000;
  matching::SelectionMode selection_mode =
      matching::SelectionMode::kThresholdSearch;
  /// Host threads for per-machine local computation (0 = hardware
  /// concurrency, 1 = serial). Results are identical for every value; only
  /// the cluster-creating overload applies this.
  std::uint32_t threads = 1;
  /// Provisioning overrides on the auto-derived cluster geometry (only the
  /// cluster-creating overload applies them).
  mpc::ClusterOverrides cluster;
  /// Deterministic fault schedule + recovery policy (only the
  /// cluster-creating overload installs them; empty plan = fault-free).
  mpc::FaultPlan faults;
  mpc::RecoveryOptions recovery;
  /// Optional trace session (non-owning); null = tracing off.
  obs::TraceSession* trace = nullptr;
  /// Optional round profiler (non-owning; null = off); attached to the
  /// cluster alongside `trace`.
  obs::RoundProfiler* profiler = nullptr;

  /// Optional progress-event bus (non-owning); forwarded to every cluster
  /// this pipeline creates.
  obs::EventBus* events = nullptr;
  /// Storage backend the input graph resides on (non-owning; null for plain
  /// in-memory graphs). Only the cluster-creating overload attaches it; the
  /// seam carries no model semantics (see mpc/storage.hpp).
  const mpc::Storage* storage = nullptr;
};

struct MisIterationReport {
  std::uint64_t iteration = 0;
  std::uint32_t cls = 0;
  graph::EdgeId edges_before = 0;
  graph::EdgeId edges_after = 0;
  std::uint64_t independent_added = 0;  ///< |I_h| this iteration.
  std::uint64_t isolated_added = 0;
  double progress_fraction = 0.0;
  std::uint64_t selection_trials = 0;
  std::uint64_t sparsify_stages = 0;
  std::uint32_t qprime_max_degree = 0;
  /// Worst measured §4.2 invariant ratios across this iteration's stages
  /// (see matching::IterationReport for the conventions).
  double invariant_degree_ratio = 0.0;
  double invariant_xv_ratio = 2.0;
  double window_multiplier = 0.0;
};

struct DetMisResult {
  std::vector<bool> in_set;
  std::uint64_t iterations = 0;
  std::vector<MisIterationReport> reports;
  mpc::Metrics metrics;
  mpc::RecoveryStats recovery;  ///< All-zero for a fault-free run.
};

DetMisResult det_mis(const graph::Graph& g, const DetMisConfig& config);
DetMisResult det_mis(mpc::Cluster& cluster, const graph::Graph& g,
                     const DetMisConfig& config);

mpc::ClusterConfig cluster_config_for(const DetMisConfig& config,
                                      std::uint64_t n, std::uint64_t m);
sparsify::Params params_for(const DetMisConfig& config, std::uint64_t n);

}  // namespace dmpc::mis
