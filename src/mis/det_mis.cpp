#include "mis/det_mis.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "derand/cond_expect.hpp"
#include "derand/seed_search.hpp"
#include "graph/validate.hpp"
#include "hash/kwise.hpp"
#include "mpc/distribution.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sparsify/good_nodes.hpp"
#include "sparsify/node_sparsifier.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace dmpc::mis {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

namespace {

/// Lemma-21 selection objective. For seed s: z_v = h_s(v) for v in Q';
/// I_h = local minima within the induced subgraph on Q' (ties by id).
/// Value = sum of alive-degrees of B-nodes whose N_v window meets I_h.
//
// Range form: the Q' node list (widened to the 64-bit hash domain) is the
// bound point universe, so every priority z_v is computed once per seed by
// the lane-parallel kernel; the local-min test reads neighbors' priorities
// by Q' position instead of re-evaluating the polynomial per adjacency (the
// selection hotspot). The I_h bitmap is a per-seed prepass into thread-local
// scratch.
class MisSelectionObjective final : public derand::RangeObjective {
 public:
  MisSelectionObjective(const Graph& g, const hash::KWiseFamily& family,
                        const std::vector<NodeId>& q_nodes,
                        const std::vector<std::vector<NodeId>>& q_adj,
                        const std::vector<std::vector<NodeId>>& nv,
                        const std::vector<NodeId>& b_nodes,
                        const std::vector<std::uint32_t>& alive_degree)
      : g_(&g),
        q_nodes_(&q_nodes),
        q_adj_(&q_adj),
        nv_(&nv),
        b_nodes_(&b_nodes),
        alive_degree_(&alive_degree),
        points_(q_nodes.begin(), q_nodes.end()),
        node_pos_(g.num_nodes(), 0) {
    for (std::size_t i = 0; i < q_nodes.size(); ++i) {
      node_pos_[q_nodes[i]] = i;
    }
    bind_points(family, points_.data(), points_.size());
  }

  std::vector<NodeId> independent_set_for(std::uint64_t seed) const {
    const auto fn = family().at(seed);
    std::vector<std::uint64_t> values(points_.size());
    fn.raw_many(points_.data(), points_.size(), values.data());
    std::vector<NodeId> set;
    for (std::size_t i = 0; i < q_nodes_->size(); ++i) {
      if (is_local_min(i, values.data())) set.push_back((*q_nodes_)[i]);
    }
    return set;
  }

  void prepare_seed(std::uint64_t /*seed*/,
                    const std::uint64_t* values) const override {
    std::vector<std::uint8_t>& in_ih = in_ih_scratch();
    in_ih.assign(g_->num_nodes(), 0);
    for (std::size_t i = 0; i < q_nodes_->size(); ++i) {
      if (is_local_min(i, values)) in_ih[(*q_nodes_)[i]] = 1;
    }
  }

  double accumulate_terms(std::uint64_t range_begin, std::uint64_t range_end,
                          std::uint64_t /*seed*/,
                          const std::uint64_t* /*values*/) const override {
    const std::vector<std::uint8_t>& in_ih = in_ih_scratch();
    double q = 0.0;
    for (std::uint64_t idx = range_begin; idx < range_end; ++idx) {
      const NodeId v = (*b_nodes_)[idx];
      for (NodeId u : (*nv_)[v]) {
        if (in_ih[u] != 0) {
          q += static_cast<double>((*alive_degree_)[v]);
          break;
        }
      }
    }
    return q;
  }

  std::uint64_t range_count() const override { return b_nodes_->size(); }
  std::uint64_t term_count() const override { return b_nodes_->size(); }

 private:
  static std::vector<std::uint8_t>& in_ih_scratch() {
    thread_local std::vector<std::uint8_t> in_ih;
    return in_ih;
  }

  /// Local-min test over precomputed priorities; `i` is the Q' position of
  /// the node (identical comparisons to the former per-node raw()).
  bool is_local_min(std::size_t i, const std::uint64_t* values) const {
    const NodeId v = (*q_nodes_)[i];
    const std::uint64_t zv = values[i];
    for (NodeId u : (*q_adj_)[v]) {
      const std::uint64_t zu = values[node_pos_[u]];
      if (zu < zv || (zu == zv && u < v)) return false;
    }
    return true;
  }

  const Graph* g_;
  const std::vector<NodeId>* q_nodes_;
  const std::vector<std::vector<NodeId>>* q_adj_;
  const std::vector<std::vector<NodeId>>* nv_;
  const std::vector<NodeId>* b_nodes_;
  const std::vector<std::uint32_t>* alive_degree_;
  std::vector<std::uint64_t> points_;  ///< q_nodes widened to the hash domain
  std::vector<std::size_t> node_pos_;  ///< NodeId -> position in q_nodes
};

derand::SearchResult select_with_threshold(
    mpc::Cluster& cluster, const MisSelectionObjective& objective,
    std::uint64_t seed_count, double threshold, std::uint64_t salt,
    const DetMisConfig& config) {
  derand::SearchResult best;
  obs::HostScope host_scope("derand/selection", cluster.trace());
  obs::Span span(cluster.trace(), "mis/selection");
  bool have = false;
  std::uint64_t evaluated = 0;
  double t = threshold;
  derand::BatchStats batch_stats;
  // Stride-scrambled deterministic enumeration; see the matching pipeline.
  auto seed_at = [&](std::uint64_t k) {
    const __uint128_t pos =
        static_cast<__uint128_t>(k) * 0xBF58476D1CE4E5B9ULL +
        salt * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::uint64_t>(pos % seed_count);
  };
  while (true) {
    const std::uint64_t budget =
        std::min<std::uint64_t>(config.selection_batch, seed_count - evaluated);
    DMPC_CHECK_MSG(budget > 0,
                   "MIS selection seed space exhausted — guarantee violated");
    const std::uint64_t depth = cluster.tree_depth(
        std::max<std::uint64_t>(objective.term_count(), 2));
    cluster.charge_recoverable(2 * depth, "mis/selection");
    cluster.metrics().add_communication(budget * cluster.machines(),
                                        "mis/selection");
    // Host-parallel batch evaluation through the range oracle (the
    // objective is pure), then a serial lowest-trial-first scan — the
    // committed seed is identical for every thread count and dispatch path.
    std::vector<std::uint64_t> seeds(budget);
    for (std::uint64_t i = 0; i < budget; ++i) {
      seeds[i] = seed_at(evaluated + i);
    }
    std::vector<double> values(budget, 0.0);
    batch_stats += derand::batch_evaluate(cluster.executor(), objective,
                                          seeds.data(), budget, values.data());
    for (std::uint64_t k = evaluated; k < evaluated + budget; ++k) {
      const double value = values[k - evaluated];
      if (!have || value > best.value) {
        have = true;
        best.seed = seed_at(k);
        best.value = value;
      }
    }
    evaluated += budget;
    best.trials = evaluated;
    if (have && best.value >= t && best.value > 0) {
      span.arg("candidate_seeds", best.trials);
      span.arg("committed_seed", best.seed);
      derand::record_batch_stats(batch_stats);
      return best;
    }
    if (evaluated % config.trials_per_threshold == 0) t /= 2.0;
  }
}

}  // namespace

sparsify::Params params_for(const DetMisConfig& config, std::uint64_t n) {
  sparsify::Params params;
  params.n = std::max<std::uint64_t>(n, 2);
  params.inv_delta =
      config.inv_delta != 0
          ? config.inv_delta
          : std::max<std::uint32_t>(
                1, static_cast<std::uint32_t>(std::lround(8.0 / config.eps)));
  return params;
}

mpc::ClusterConfig cluster_config_for(const DetMisConfig& config,
                                      std::uint64_t n, std::uint64_t m) {
  mpc::ClusterConfig cc;
  cc.machine_space = std::max<std::uint64_t>(
      64, static_cast<std::uint64_t>(
              config.space_headroom *
              std::pow(static_cast<double>(std::max<std::uint64_t>(n, 2)),
                       config.eps)));
  const auto total = static_cast<std::uint64_t>(
      config.total_space_factor * static_cast<double>(m + n + 2));
  cc.num_machines = ceil_div(total, cc.machine_space) + 1;
  return cc;
}

DetMisResult det_mis(const Graph& g, const DetMisConfig& config) {
  mpc::Cluster cluster(mpc::apply_overrides(
      cluster_config_for(config, g.num_nodes(), g.num_edges()),
      config.cluster));
  if (config.trace != nullptr) cluster.set_trace(config.trace);
  if (config.profiler != nullptr) cluster.set_profiler(config.profiler);
  if (config.events != nullptr) cluster.set_events(config.events);
  cluster.set_executor(exec::Executor::with_threads(config.threads));
  if (!config.faults.empty()) cluster.set_faults(config.faults, config.recovery);
  if (config.storage != nullptr) cluster.set_storage(config.storage);
  return det_mis(cluster, g, config);
}

DetMisResult det_mis(mpc::Cluster& cluster, const Graph& g,
                     const DetMisConfig& config) {
  if (config.trace != nullptr) cluster.set_trace(config.trace);
  if (config.profiler != nullptr) cluster.set_profiler(config.profiler);
  if (config.events != nullptr) cluster.set_events(config.events);
  obs::Span pipeline_span(cluster.trace(), "mis/pipeline");
  const sparsify::Params params = params_for(config, g.num_nodes());
  DetMisResult result;
  result.in_set.assign(g.num_nodes(), false);
  std::vector<bool> alive(g.num_nodes(), true);
  // Distributed state a phase checkpoint persists: the edge list plus the
  // per-node alive/in-set flags.
  const std::uint64_t phase_words = 2 * g.num_edges() + 2 * g.num_nodes();

  auto absorb_isolated = [&]() {
    const auto deg = graph::alive_degrees(g, alive, cluster.executor());
    std::uint64_t added = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (alive[v] && deg[v] == 0) {
        result.in_set[v] = true;
        alive[v] = false;
        ++added;
      }
    }
    return added;
  };

  while (graph::alive_edge_count(g, alive, cluster.executor()) > 0) {
    DMPC_CHECK_MSG(result.iterations < config.max_iterations,
                   "MIS iteration cap exceeded");
    ++result.iterations;
    obs::Span iter_span(cluster.trace(), "mis/iteration");
    iter_span.arg("iteration", result.iterations);
    MisIterationReport report;
    report.iteration = result.iterations;
    report.isolated_added = absorb_isolated();

    // 2. Good nodes (Corollary 16).
    cluster.mark_phase("mis/phase/good_nodes", phase_words);
    const auto good = [&] {
      obs::Span span(cluster.trace(), "mis/phase/good_nodes");
      return sparsify::select_mis_good_set(cluster, params, g, alive);
    }();
    report.cls = good.cls;
    report.edges_before = good.alive_edges;

    // 3. Sparsify Q_0 -> Q' (§4.2).
    cluster.mark_phase("mis/phase/sparsify", phase_words);
    const auto sparse = [&] {
      obs::Span span(cluster.trace(), "mis/phase/sparsify");
      return sparsify::sparsify_nodes(cluster, params, g, alive, good,
                                      config.sparsify);
    }();
    report.sparsify_stages = sparse.stages.size();
    report.qprime_max_degree = sparse.max_q_degree;
    for (const sparsify::StageReport& s : sparse.stages) {
      report.invariant_degree_ratio =
          std::max(report.invariant_degree_ratio, s.invariant_degree_ratio);
      report.invariant_xv_ratio =
          std::min(report.invariant_xv_ratio, s.invariant_xv_ratio);
      report.window_multiplier =
          std::max(report.window_multiplier, s.window_multiplier);
    }

    // 4. Build Q' structures and the N_v windows; charge the gather.
    // (optional so the span can close before the derand phase opens while
    // the gathered structures stay in scope)
    cluster.mark_phase("mis/phase/gather", phase_words);
    std::optional<obs::Span> gather_span;
    gather_span.emplace(cluster.trace(), "mis/phase/gather");
    std::vector<NodeId> q_nodes;
    std::vector<std::vector<NodeId>> q_adj(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!alive[v] || !sparse.in_Qprime[v]) continue;
      q_nodes.push_back(v);
      for (NodeId u : g.neighbors(v)) {
        if (alive[u] && sparse.in_Qprime[u]) q_adj[v].push_back(u);
      }
    }
    const auto alive_degree = graph::alive_degrees(g, alive, cluster.executor());
    std::vector<NodeId> b_nodes;
    std::vector<std::vector<NodeId>> nv(g.num_nodes());
    {
      const std::uint64_t window = params.group_size();
      std::vector<std::uint64_t> two_hop(g.num_nodes(), 0);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!alive[v] || !good.in_B[v]) continue;
        b_nodes.push_back(v);
        for (NodeId u : g.neighbors(v)) {
          if (!alive[u] || !sparse.in_Qprime[u]) continue;
          nv[v].push_back(u);
          if (nv[v].size() >= window) break;  // arbitrary n^{4 delta} subset
        }
        std::uint64_t words = nv[v].size();
        for (NodeId u : nv[v]) words += q_adj[u].size();
        two_hop[v] = words;
      }
      mpc::charge_two_hop_gather(cluster, two_hop, good.in_B, "mis/gather");
    }
    gather_span.reset();

    // 5-6. Derandomized Lemma-21 selection.
    cluster.mark_phase("mis/phase/derand", phase_words);
    std::optional<obs::Span> derand_span;
    derand_span.emplace(cluster.trace(), "mis/phase/derand");
    const std::uint64_t domain = std::max<std::uint64_t>(2, g.num_nodes());
    hash::KWiseFamily family(domain, domain, /*k=*/2);
    MisSelectionObjective objective(g, family, q_nodes, q_adj, nv, b_nodes,
                                    alive_degree);
    const double threshold = config.threshold_factor * params.delta() *
                             static_cast<double>(good.b_degree_mass);
    derand::SearchResult committed;
    if (config.selection_mode ==
        matching::SelectionMode::kConditionalExpectation) {
      // Textbook §2.4 path — see matching/det_matching.cpp.
      DMPC_CHECK_MSG(family.seed_count() <= (1ULL << 22),
                     "conditional-expectation selection needs a small "
                     "instance (family of <= 2^22 seeds)");
      const hash::SeedSpace space({family.p(), family.p()});
      derand::ExhaustiveConditional conditional(objective, space);
      derand::FixOptions fix_options;
      fix_options.guarantee = 0.0;
      fix_options.label = "mis/selection_ce";
      const auto fixed =
          derand::fix_seed(cluster, conditional, space, fix_options);
      committed.seed = fixed.seed;
      committed.value = fixed.value;
      committed.trials = space.size();
    } else {
      committed = select_with_threshold(cluster, objective,
                                        family.seed_count(), threshold,
                                        result.iterations, config);
    }
    report.selection_trials = committed.trials;
    if (derand_span->active()) {
      derand_span->arg("candidate_seeds", committed.trials);
      derand_span->arg("committed_seed", committed.seed);
    }
    derand_span.reset();

    cluster.mark_phase("mis/phase/commit", phase_words);
    obs::Span commit_span(cluster.trace(), "mis/phase/commit");
    const auto independent = objective.independent_set_for(committed.seed);
    DMPC_CHECK_MSG(!independent.empty(), "empty committed independent set");
    report.independent_added = independent.size();
    for (NodeId v : independent) {
      DMPC_CHECK(alive[v]);
      result.in_set[v] = true;
      alive[v] = false;
      for (NodeId u : g.neighbors(v)) alive[u] = false;
    }

    report.edges_after = graph::alive_edge_count(g, alive, cluster.executor());
    report.progress_fraction =
        static_cast<double>(report.edges_before - report.edges_after) /
        static_cast<double>(report.edges_before);
    // Lemma-12 progress series: one structured event per iteration (the
    // machine-readable successor of the old free-form debug line).
    if (auto* trace = cluster.trace(); obs::enabled(trace)) {
      trace->instant(
          "mis/progress",
          {obs::arg("iteration", report.iteration),
           obs::arg("edges_remaining",
                    static_cast<std::uint64_t>(report.edges_after)),
           obs::arg("good_node_fraction",
                    static_cast<double>(good.b_degree_mass) /
                        static_cast<double>(2 * good.alive_edges)),
           obs::arg("independent_added", report.independent_added),
           obs::arg("progress_fraction", report.progress_fraction)});
    }
    if (iter_span.active()) {
      iter_span.arg("edges_before", static_cast<std::uint64_t>(report.edges_before));
      iter_span.arg("edges_after", static_cast<std::uint64_t>(report.edges_after));
      iter_span.arg("class", static_cast<std::uint64_t>(report.cls));
    }
    result.reports.push_back(report);
  }
  absorb_isolated();

  DMPC_CHECK_MSG(graph::is_maximal_independent_set(g, result.in_set),
                 "det_mis produced a non-maximal independent set");
  result.metrics = cluster.metrics();
  result.recovery = cluster.recovery_stats();
  return result;
}

}  // namespace dmpc::mis
