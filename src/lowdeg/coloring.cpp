#include "lowdeg/coloring.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "field/batch_eval.hpp"
#include "field/primes.hpp"
#include "graph/transforms.hpp"
#include "graph/validate.hpp"
#include "support/check.hpp"

namespace dmpc::lowdeg {

using graph::Graph;
using graph::NodeId;

namespace {

/// Base-q digit expansion of `color`: digit i is the coefficient of x^i.
/// k <= 8 (see reduction_step), so k + 1 digits always fit the buffer.
void color_digits(std::uint32_t color, unsigned k, std::uint64_t q,
                  std::uint64_t* digits) {
  std::uint64_t c = color;
  for (unsigned i = 0; i <= k; ++i) {
    digits[i] = c % q;
    c /= q;
  }
}

/// Evaluate the degree-k polynomial encoding of `color` (base-q digits) at x.
std::uint64_t poly_of_color(std::uint32_t color, unsigned k, std::uint64_t q,
                            std::uint64_t x) {
  std::uint64_t digits[9];
  color_digits(color, k, q, digits);
  std::uint64_t acc = 0;
  for (unsigned i = k + 1; i-- > 0;) {
    acc = (acc * x + digits[i]) % q;
  }
  return acc;
}

/// Per-color evaluation rows: row(c)[x] = f_c(x) for every x in [0, q),
/// computed with the batched field kernel so a reduction step does one
/// column sweep per distinct color instead of a digit expansion per
/// (node, neighbor, x) probe. `(acc * x + digit) % q` in poly_of_color and
/// `mod.add(mod.mul(acc, x), digit)` agree exactly (digits < q), so the
/// table is bit-identical to the scalar probes it replaces.
class ColorTable {
 public:
  /// Builds rows for every color present in `color`. Returns false (leaving
  /// the table unusable) when the table would exceed the memory cap; callers
  /// then keep the probe path.
  bool build(const std::vector<std::uint32_t>& color, std::uint32_t num_colors,
             unsigned k, std::uint64_t q) {
    constexpr std::size_t kMaxEntries = std::size_t{1} << 27;  // 1 GiB of u64
    q_ = q;
    row_.assign(num_colors, kNoRow);
    std::vector<std::uint32_t> distinct;
    for (const std::uint32_t c : color) {
      if (row_[c] == kNoRow) {
        row_[c] = static_cast<std::uint32_t>(distinct.size());
        distinct.push_back(c);
      }
    }
    if (distinct.size() * q > kMaxEntries) return false;
    std::vector<std::uint64_t> xs(q);
    std::iota(xs.begin(), xs.end(), std::uint64_t{0});
    const field::Modulus mod(q);
    values_.resize(distinct.size() * q);
    std::uint64_t digits[9];
    for (std::size_t r = 0; r < distinct.size(); ++r) {
      color_digits(distinct[r], k, q, digits);
      field::poly_eval_many(mod, digits, k + 1, xs.data(), q,
                            values_.data() + r * q);
    }
    return true;
  }

  std::uint64_t at(std::uint32_t color, std::uint64_t x) const {
    return values_[static_cast<std::size_t>(row_[color]) * q_ + x];
  }

 private:
  static constexpr std::uint32_t kNoRow = 0xFFFFFFFFu;
  std::uint64_t q_ = 0;
  std::vector<std::uint32_t> row_;
  std::vector<std::uint64_t> values_;
};

/// One Linial reduction step: C colors -> q^2 colors. Returns the new color
/// count, or 0 when the step would not shrink the space (fixed point).
///
/// The polynomial degree k trades palette for encoding room: a degree-k
/// encoding needs q^{k+1} >= C and q > k*d, and yields q^2 new colors, so
/// we pick the k in [2, 8] minimizing q^2 (k = 1 forces q >= sqrt(C) and
/// can never shrink). The fixed point is q ~ 2d+1, i.e. O(d^2) colors up to
/// the prime gap — applied to G^2 this is the paper's O(Delta^4).
std::uint32_t reduction_step(const Graph& g, std::vector<std::uint32_t>& color,
                             std::uint32_t num_colors) {
  const std::uint64_t d = std::max<std::uint32_t>(g.max_degree(), 1);
  unsigned k = 0;
  std::uint64_t q = 0;
  for (unsigned kc = 2; kc <= 8; ++kc) {
    std::uint64_t qc = field::next_prime_at_least(kc * d + 1);
    while (std::pow(static_cast<double>(qc), static_cast<double>(kc + 1)) <
           static_cast<double>(num_colors)) {
      qc = field::next_prime_at_least(qc + 1);
    }
    if (k == 0 || qc * qc < q * q) {
      k = kc;
      q = qc;
    }
  }
  if (q * q >= num_colors) return 0;  // would not shrink — fixed point

  ColorTable table;
  const bool tabulated = table.build(color, num_colors, k, q);
  std::vector<std::uint32_t> next(color.size());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Forbidden x values: those where f_v agrees with some neighbor's f_u.
    // At most k*d < q of them, so a free x always exists.
    bool placed = false;
    for (std::uint64_t x = 0; x < q && !placed; ++x) {
      const std::uint64_t fv = tabulated ? table.at(color[v], x)
                                         : poly_of_color(color[v], k, q, x);
      bool ok = true;
      for (NodeId u : g.neighbors(v)) {
        if (color[u] == color[v]) continue;  // cannot happen (proper input)
        const std::uint64_t fu = tabulated ? table.at(color[u], x)
                                           : poly_of_color(color[u], k, q, x);
        if (fu == fv) {
          ok = false;
          break;
        }
      }
      if (ok) {
        next[v] = static_cast<std::uint32_t>(x * q + fv);
        placed = true;
      }
    }
    DMPC_CHECK_MSG(placed, "Linial step found no free evaluation point");
  }
  color = std::move(next);
  const auto new_colors = static_cast<std::uint32_t>(q * q);
  return new_colors;
}

}  // namespace

ColoringResult linial_coloring_raw(const Graph& g) {
  ColoringResult result;
  result.color.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) result.color[v] = v;
  result.num_colors = std::max<std::uint32_t>(g.num_nodes(), 1);

  // Iterate while the step shrinks the color space; O(log* n) steps since
  // C -> O((D log_D C)^2).
  while (true) {
    const std::uint32_t next =
        reduction_step(g, result.color, result.num_colors);
    if (next == 0) break;  // fixed point reached
    ++result.reduction_steps;
    result.num_colors = next;
  }
  DMPC_CHECK(graph::is_proper_coloring(g, result.color));
  return result;
}

ColoringResult distance2_coloring_raw(const Graph& g) {
  const Graph g2 = graph::square(g);
  ColoringResult result = linial_coloring_raw(g2);
  DMPC_CHECK(graph::is_distance2_coloring(g, result.color));
  return result;
}

ColoringResult linial_coloring(mpc::Cluster& cluster, const Graph& g) {
  ColoringResult result = linial_coloring_raw(g);
  // Each reduction step is O(1) MPC rounds: nodes need only neighbor colors.
  cluster.charge_recoverable(std::max<std::uint32_t>(
                                      result.reduction_steps, 1),
                                  "coloring/linial");
  cluster.metrics().add_communication(
      static_cast<std::uint64_t>(result.reduction_steps + 1) * 2 *
          g.num_edges(),
      "coloring/linial");
  return result;
}

ColoringResult distance2_coloring(mpc::Cluster& cluster, const Graph& g) {
  // Building G^2 locally needs the 2-hop neighborhood on the node's machine:
  // Delta^2 words, within S for the Delta <= n^{delta} regime (§5).
  cluster.check_load(static_cast<std::uint64_t>(g.max_degree()) *
                         std::max<std::uint32_t>(g.max_degree(), 1),
                     "coloring/2hop", "coloring/2hop");
  cluster.charge_recoverable(2, "coloring/2hop");
  ColoringResult result = distance2_coloring_raw(g);
  cluster.charge_recoverable(std::max<std::uint32_t>(
                                      result.reduction_steps, 1),
                                  "coloring/linial");
  cluster.metrics().add_communication(
      static_cast<std::uint64_t>(result.reduction_steps + 1) * 2 *
          g.num_edges(),
      "coloring/linial");
  return result;
}

}  // namespace dmpc::lowdeg
