// Phase compression (§5.2.2): derandomize l = Theta(delta log_Delta n) Luby
// phases in one O(1)-round stage.
//
// Given a distance-2 coloring chi with C = O(Delta^4) colors, a Luby phase
// only needs pairwise independence between 2-hop-distinct nodes, so phase i
// draws priorities z_v = h_i(chi(v)) from the small family H* : [C] -> [C]
// (O(log Delta)-bit seed). A whole stage is a *sequence* (h_1, ..., h_l);
// each node can simulate the full stage from its (2l)-hop ball, so all
// candidate sequences are evaluated in parallel and one Lemma-4 aggregation
// picks the sequence minimizing the residual edge count. The committed
// sequence is applied; every phase removes at least the global (z, id)
// minimum of the residual graph, so a stage always makes progress.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "hash/small_family.hpp"
#include "mpc/cluster.hpp"

namespace dmpc::lowdeg {

struct StageOutcome {
  std::vector<graph::NodeId> independent;  ///< Union of the l phase sets.
  std::uint64_t sequence_seed = 0;
  std::uint64_t sequences_tried = 0;
  graph::EdgeId edges_before = 0;
  graph::EdgeId edges_after = 0;
};

/// Simulate one stage of `phases` Luby phases under sequence seed `seq`,
/// returning the joined independent set (does not modify `alive`).
std::vector<graph::NodeId> simulate_stage(
    const graph::Graph& g, const std::vector<bool>& alive,
    const std::vector<std::uint32_t>& color,
    const hash::FunctionSequence& sequence, std::uint64_t seq);

/// Derandomize one stage: evaluate up to `budget` candidate sequences in
/// O(1) charged rounds, commit the best, update `alive`, return the outcome.
StageOutcome run_stage(mpc::Cluster& cluster, const graph::Graph& g,
                       std::vector<bool>& alive,
                       const std::vector<std::uint32_t>& color,
                       const hash::FunctionSequence& sequence,
                       std::uint64_t budget);

}  // namespace dmpc::lowdeg
