#include "lowdeg/lowdeg_solver.hpp"

#include <algorithm>
#include <cmath>

#include "graph/transforms.hpp"
#include "graph/validate.hpp"
#include "lowdeg/neighborhoods.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace dmpc::lowdeg {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

std::uint32_t phases_for(const LowDegConfig& config, std::uint64_t space,
                         std::uint32_t max_degree) {
  // Largest l with 4 * Delta^{2l+1} <= space.
  const double log_d =
      std::log(static_cast<double>(std::max<std::uint32_t>(max_degree, 2)));
  const double budget =
      std::log(std::max<double>(static_cast<double>(space) / 4.0, 4.0));
  const auto l =
      static_cast<std::uint32_t>(std::floor((budget - log_d) / (2.0 * log_d)));
  return std::clamp<std::uint32_t>(l, 1, config.max_phases);
}

mpc::ClusterConfig cluster_config_for(const LowDegConfig& config,
                                      std::uint64_t n, std::uint64_t m,
                                      std::uint32_t max_degree) {
  mpc::ClusterConfig cc;
  const auto d = static_cast<std::uint64_t>(std::max<std::uint32_t>(max_degree, 1));
  cc.machine_space = std::max<std::uint64_t>(
      std::max<std::uint64_t>(64, 4 * d * d * d),
      static_cast<std::uint64_t>(
          config.space_headroom *
          std::pow(static_cast<double>(std::max<std::uint64_t>(n, 2)),
                   config.eps)));
  const auto total = static_cast<std::uint64_t>(
      config.total_space_factor * static_cast<double>(m + n + 2));
  cc.num_machines = ceil_div(total, cc.machine_space) + 1;
  return cc;
}

LowDegMisResult lowdeg_mis(const Graph& g, const LowDegConfig& config) {
  mpc::Cluster cluster(mpc::apply_overrides(
      cluster_config_for(config, g.num_nodes(), g.num_edges(), g.max_degree()),
      config.cluster));
  if (config.trace != nullptr) cluster.set_trace(config.trace);
  if (config.profiler != nullptr) cluster.set_profiler(config.profiler);
  if (config.events != nullptr) cluster.set_events(config.events);
  cluster.set_executor(exec::Executor::with_threads(config.threads));
  if (!config.faults.empty()) cluster.set_faults(config.faults, config.recovery);
  if (config.storage != nullptr) cluster.set_storage(config.storage);
  return lowdeg_mis(cluster, g, config);
}

LowDegMisResult lowdeg_mis(mpc::Cluster& cluster, const Graph& g,
                           const LowDegConfig& config) {
  if (config.trace != nullptr) cluster.set_trace(config.trace);
  if (config.profiler != nullptr) cluster.set_profiler(config.profiler);
  if (config.events != nullptr) cluster.set_events(config.events);
  LowDegMisResult result;
  result.in_set.assign(g.num_nodes(), false);
  if (g.num_nodes() == 0) return result;
  std::vector<bool> alive(g.num_nodes(), true);

  if (g.num_edges() == 0) {
    result.in_set.assign(g.num_nodes(), true);
    result.metrics = cluster.metrics();
    return result;
  }

  obs::Span pipeline_span(cluster.trace(), "lowdeg/pipeline");
  // Distributed state a phase checkpoint persists: the edge list plus the
  // per-node alive/in-set flags.
  const std::uint64_t phase_words = 2 * g.num_edges() + 2 * g.num_nodes();

  // --- Preprocessing (§5.2.2): coloring + family + ball gathering. ---
  cluster.mark_phase("lowdeg/phase/coloring", phase_words);
  const auto coloring = [&] {
    obs::Span phase_span(cluster.trace(), "lowdeg/phase/coloring");
    return distance2_coloring(cluster, g);
  }();
  result.colors = coloring.num_colors;
  hash::SmallFamily family(std::max<std::uint32_t>(coloring.num_colors, 2));

  const std::uint32_t l = phases_for(config, cluster.space(), g.max_degree());
  result.phases_per_stage = l;
  hash::FunctionSequence sequence(family, l, config.per_phase_cap);

  {
    cluster.mark_phase("lowdeg/phase/gather", phase_words);
    obs::Span phase_span(cluster.trace(), "lowdeg/phase/gather");
    gather_neighborhoods(cluster, g, alive, /*radius=*/2 * l);
  }

  // --- Stages. ---
  while (graph::alive_edge_count(g, alive, cluster.executor()) > 0) {
    DMPC_CHECK_MSG(result.stages < config.max_stages, "stage cap exceeded");
    cluster.mark_phase("lowdeg/stage", phase_words);
    obs::Span stage_span(cluster.trace(), "lowdeg/stage");
    stage_span.arg("stage", static_cast<std::uint64_t>(result.stages + 1));
    const auto outcome = run_stage(cluster, g, alive, coloring.color, sequence,
                                   config.sequence_budget);
    for (NodeId v : outcome.independent) result.in_set[v] = true;
    ++result.stages;
    // Stage progress series: one structured event per stage (the
    // machine-readable successor of the old free-form debug line).
    if (auto* trace = cluster.trace(); obs::enabled(trace)) {
      trace->instant(
          "lowdeg/progress",
          {obs::arg("iteration", static_cast<std::uint64_t>(result.stages)),
           obs::arg("edges_remaining",
                    static_cast<std::uint64_t>(outcome.edges_after)),
           obs::arg("good_node_fraction",
                    outcome.edges_before == 0
                        ? 0.0
                        : static_cast<double>(outcome.edges_before -
                                              outcome.edges_after) /
                              static_cast<double>(outcome.edges_before)),
           obs::arg("independent_added",
                    static_cast<std::uint64_t>(outcome.independent.size()))});
    }
    if (stage_span.active()) {
      stage_span.arg("edges_before",
                     static_cast<std::uint64_t>(outcome.edges_before));
      stage_span.arg("edges_after",
                     static_cast<std::uint64_t>(outcome.edges_after));
    }
    result.outcomes.push_back(outcome);
  }
  // Alive survivors are isolated; they join the MIS.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive[v]) result.in_set[v] = true;
  }

  DMPC_CHECK_MSG(graph::is_maximal_independent_set(g, result.in_set),
                 "lowdeg_mis produced a non-maximal independent set");
  result.metrics = cluster.metrics();
  result.recovery = cluster.recovery_stats();
  return result;
}

LowDegMatchingResult lowdeg_matching(const Graph& g,
                                     const LowDegConfig& config) {
  LowDegMatchingResult result;
  if (g.num_edges() == 0) return result;
  const Graph lg = graph::line_graph(g);
  // Line-graph construction is local to 1-hop neighborhoods: one exchange.
  mpc::Cluster cluster(mpc::apply_overrides(
      cluster_config_for(config, lg.num_nodes(), lg.num_edges(),
                         lg.max_degree()),
      config.cluster));
  if (config.trace != nullptr) cluster.set_trace(config.trace);
  if (config.profiler != nullptr) cluster.set_profiler(config.profiler);
  if (config.events != nullptr) cluster.set_events(config.events);
  cluster.set_executor(exec::Executor::with_threads(config.threads));
  if (!config.faults.empty()) cluster.set_faults(config.faults, config.recovery);
  if (config.storage != nullptr) cluster.set_storage(config.storage);
  cluster.charge_recoverable(1, "lowdeg/line_graph");
  result.line_mis = lowdeg_mis(cluster, lg, config);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (result.line_mis.in_set[e]) result.matching.push_back(e);
  }
  DMPC_CHECK_MSG(graph::is_maximal_matching(g, result.matching),
                 "lowdeg_matching produced a non-maximal matching");
  return result;
}

}  // namespace dmpc::lowdeg
