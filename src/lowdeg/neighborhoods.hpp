// r-hop neighborhood gathering (§5.2.1).
//
// With Delta <= n^{delta} and r = O(delta log_Delta n), each node's r-hop
// ball has at most Delta^r = n^{O(delta)} nodes and fits on one machine.
// Graph-exponentiation doubling collects the balls in O(log r) MPC rounds —
// this is the source of Theorem 1's additive O(log log n) term, so the
// charge is log-accurate rather than folded into a constant.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/cluster.hpp"

namespace dmpc::lowdeg {

struct NeighborhoodGather {
  /// balls[v] = nodes within distance <= r of v (including v), sorted.
  std::vector<std::vector<graph::NodeId>> balls;
  std::uint32_t radius = 0;
  std::uint64_t max_ball = 0;   ///< Largest ball size (space proxy).
  std::uint64_t rounds_charged = 0;
};

/// Collect r-hop balls restricted to alive nodes; space-checks every ball
/// against the cluster and charges ceil(log2(r)) + 1 doubling rounds.
NeighborhoodGather gather_neighborhoods(mpc::Cluster& cluster,
                                        const graph::Graph& g,
                                        const std::vector<bool>& alive,
                                        std::uint32_t radius);

}  // namespace dmpc::lowdeg
