// Deterministic O(Delta^4) coloring of G^2 in O(log* n) rounds (§5.1).
//
// The §5 algorithm replaces node ids by 2-hop-distinct names from a space of
// size O(Delta^4), so that a Luby phase needs only an O(log Delta)-bit seed.
// We implement Linial's classic color reduction with polynomials over a
// prime field: a node with color c (encoded as a degree-k polynomial f_c
// over F_q, q > k * D for max degree D) picks the smallest x in F_q with
// f_c(x) != f_u(x) for every neighbor u — at most k*D < q values are
// forbidden — and adopts color (x, f_c(x)) in [q^2]. One such step shrinks C
// colors to q^2 = O((D log_D C)^2) and O(log* n) steps reach the fixed point
// q^2 = O(D^2). Applied to G^2 (max degree D <= Delta^2) this yields the
// O(Delta^4) coloring the paper needs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/cluster.hpp"

namespace dmpc::lowdeg {

struct ColoringResult {
  std::vector<std::uint32_t> color;   ///< Per node, in [0, num_colors).
  std::uint32_t num_colors = 0;
  std::uint32_t reduction_steps = 0;  ///< Linial iterations (O(log* n)).
};

/// Pure computation: proper coloring of `g` with O(max_degree^2) colors.
ColoringResult linial_coloring_raw(const graph::Graph& g);

/// Pure computation: distance-2 coloring of `g` with O(Delta^4) colors.
ColoringResult distance2_coloring_raw(const graph::Graph& g);

/// Proper coloring of `g` with O(max_degree^2) colors, with MPC round
/// charging (one round per reduction step).
ColoringResult linial_coloring(mpc::Cluster& cluster, const graph::Graph& g);

/// Distance-2 coloring of `g` with O(Delta^4) colors (Linial on G^2),
/// with MPC round charging and the 2-hop space check.
ColoringResult distance2_coloring(mpc::Cluster& cluster,
                                  const graph::Graph& g);

}  // namespace dmpc::lowdeg
