#include "lowdeg/phase_compression.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dmpc::lowdeg {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

std::vector<NodeId> simulate_stage(const Graph& g,
                                   const std::vector<bool>& alive,
                                   const std::vector<std::uint32_t>& color,
                                   const hash::FunctionSequence& sequence,
                                   std::uint64_t seq) {
  std::vector<bool> live = alive;
  std::vector<NodeId> joined;
  std::vector<std::uint64_t> z(g.num_nodes());
  for (unsigned phase = 0; phase < sequence.length(); ++phase) {
    const auto fn = sequence.phase_fn(seq, phase);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (live[v]) z[v] = fn.raw(color[v]);
    }
    // Local minima join; ties broken by id (colors are 2-hop distinct, so
    // adjacent nodes have distinct colors but hashes may still collide).
    std::vector<NodeId> winners;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!live[v]) continue;
      bool is_min = true;
      bool has_live_neighbor = false;
      for (NodeId u : g.neighbors(v)) {
        if (!live[u]) continue;
        has_live_neighbor = true;
        if (z[u] < z[v] || (z[u] == z[v] && u < v)) {
          is_min = false;
          break;
        }
      }
      if (is_min && has_live_neighbor) winners.push_back(v);
    }
    if (winners.empty()) break;  // residual graph has no edges
    for (NodeId v : winners) {
      joined.push_back(v);
      live[v] = false;
      for (NodeId u : g.neighbors(v)) live[u] = false;
    }
  }
  return joined;
}

StageOutcome run_stage(mpc::Cluster& cluster, const Graph& g,
                       std::vector<bool>& alive,
                       const std::vector<std::uint32_t>& color,
                       const hash::FunctionSequence& sequence,
                       std::uint64_t budget) {
  StageOutcome outcome;
  outcome.edges_before = graph::alive_edge_count(g, alive, cluster.executor());
  DMPC_CHECK(outcome.edges_before > 0);

  const std::uint64_t limit =
      std::min<std::uint64_t>(budget, sequence.sequence_count());
  // All candidate sequences are simulated locally from the gathered balls;
  // one aggregation (fan-in-S tree, width = limit) picks the minimizer and
  // one broadcast announces it — O(1) charged rounds per stage.
  const std::uint64_t depth =
      cluster.tree_depth(std::max<std::uint64_t>(g.num_nodes(), 2));
  cluster.charge_recoverable(2 * depth + 1, "lowdeg/stage");
  cluster.metrics().add_communication(limit * cluster.machines(),
                                      "lowdeg/stage");
  cluster.check_load(limit, "lowdeg/stage: sequence table", "lowdeg/stage");

  // Candidate simulations are independent and pure — run them host-parallel,
  // then pick the minimizer with a serial strict-< scan (ties commit the
  // lowest t, exactly like the serial loop, for every thread count).
  struct Candidate {
    std::uint64_t seq = 0;
    EdgeId after = 0;
    std::vector<NodeId> joined;
  };
  std::vector<Candidate> candidates(limit);
  cluster.executor().for_each(0, limit, [&](std::uint64_t t) {
    Candidate& cand = candidates[t];
    cand.seq = sequence.diverse(t);
    cand.joined = simulate_stage(g, alive, color, sequence, cand.seq);
    // Residual edges under this sequence.
    std::vector<bool> live = alive;
    for (NodeId v : cand.joined) {
      live[v] = false;
      for (NodeId u : g.neighbors(v)) live[u] = false;
    }
    cand.after = graph::alive_edge_count(g, live);
  });
  EdgeId best_after = 0;
  std::vector<NodeId> best_set;
  bool have = false;
  for (std::uint64_t t = 0; t < limit; ++t) {
    if (!have || candidates[t].after < best_after) {
      have = true;
      best_after = candidates[t].after;
      best_set = std::move(candidates[t].joined);
      outcome.sequence_seed = candidates[t].seq;
    }
  }
  outcome.sequences_tried = limit;
  DMPC_CHECK_MSG(have && !best_set.empty(),
                 "phase compression stage made no progress");

  for (NodeId v : best_set) {
    DMPC_CHECK(alive[v]);
    alive[v] = false;
    for (NodeId u : g.neighbors(v)) alive[u] = false;
  }
  // One more round: winners notify their r-hop balls (§5.2.2, "maintaining
  // the r-th hop neighborhood").
  cluster.charge_recoverable(1, "lowdeg/ball_update");
  outcome.independent = std::move(best_set);
  outcome.edges_after = graph::alive_edge_count(g, alive, cluster.executor());
  DMPC_CHECK(outcome.edges_after < outcome.edges_before);
  return outcome;
}

}  // namespace dmpc::lowdeg
