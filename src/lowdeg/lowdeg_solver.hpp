// The §5 solvers: MIS and maximal matching in O(log Delta + log log n) MPC
// rounds for Delta <= n^{delta}.
//
// Pipeline (Lemma 22): preprocessing = distance-2 coloring (O(log* n)
// rounds) + r-hop ball gathering (O(log log n) rounds); then stages of
// l = Theta(delta log_Delta n) compressed Luby phases, each stage O(1)
// rounds, O(log Delta) stages total. Matching reduces to MIS on the line
// graph (§5, "Extension to maximal matching").
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "lowdeg/coloring.hpp"
#include "lowdeg/phase_compression.hpp"
#include "mpc/cluster.hpp"
#include "mpc/metrics.hpp"

namespace dmpc::obs {
class EventBus;
class RoundProfiler;
class TraceSession;
}

namespace dmpc::lowdeg {

struct LowDegConfig {
  double eps = 0.5;              ///< S = space_headroom * n^eps.
  double space_headroom = 8.0;
  double total_space_factor = 8.0;
  std::uint64_t sequence_budget = 64;   ///< Candidate sequences per stage.
  std::uint64_t per_phase_cap = 1024;   ///< Per-phase seeds enumerable.
  std::uint32_t max_phases = 8;         ///< Upper clamp on l (sim cost).
  std::uint64_t max_stages = 100000;
  /// Host threads for per-machine local computation (0 = hardware
  /// concurrency, 1 = serial). Results are identical for every value; only
  /// the cluster-creating overloads apply this.
  std::uint32_t threads = 1;
  /// Provisioning overrides on the auto-derived cluster geometry (only the
  /// cluster-creating overloads apply them).
  mpc::ClusterOverrides cluster;
  /// Deterministic fault schedule + recovery policy (only the
  /// cluster-creating overloads install them; empty plan = fault-free).
  mpc::FaultPlan faults;
  mpc::RecoveryOptions recovery;
  /// Optional trace session (non-owning); null = tracing off.
  obs::TraceSession* trace = nullptr;
  /// Optional round profiler (non-owning; null = off); attached to the
  /// cluster alongside `trace`.
  obs::RoundProfiler* profiler = nullptr;

  /// Optional progress-event bus (non-owning); forwarded to every cluster
  /// this pipeline creates.
  obs::EventBus* events = nullptr;
  /// Storage backend the input graph resides on (non-owning; null for plain
  /// in-memory graphs). Only the cluster-creating overloads attach it; the
  /// seam carries no model semantics (see mpc/storage.hpp).
  const mpc::Storage* storage = nullptr;
};

struct LowDegMisResult {
  std::vector<bool> in_set;
  std::uint64_t stages = 0;
  std::uint32_t phases_per_stage = 0;  ///< l.
  std::uint32_t colors = 0;            ///< Distance-2 palette size.
  std::vector<StageOutcome> outcomes;
  mpc::Metrics metrics;
  mpc::RecoveryStats recovery;  ///< All-zero for a fault-free run.
};

/// Phases per stage: the largest l with 4 * Delta^{2l+1} <= S (the radius-2l
/// ball with its incident edges must fit on one machine), at least 1,
/// clamped to max_phases.
std::uint32_t phases_for(const LowDegConfig& config, std::uint64_t space,
                         std::uint32_t max_degree);

LowDegMisResult lowdeg_mis(const graph::Graph& g, const LowDegConfig& config);
LowDegMisResult lowdeg_mis(mpc::Cluster& cluster, const graph::Graph& g,
                           const LowDegConfig& config);

struct LowDegMatchingResult {
  std::vector<graph::EdgeId> matching;
  LowDegMisResult line_mis;  ///< The underlying line-graph MIS run.
};

/// Maximal matching = MIS on the line graph (L(G) ids are EdgeIds of g).
LowDegMatchingResult lowdeg_matching(const graph::Graph& g,
                                     const LowDegConfig& config);

/// S = max(headroom * n^eps, 4 * Delta^3): the pipeline needs one radius-2
/// ball (Delta^2 nodes x Delta incident edges) per machine even at l = 1;
/// for Delta <= n^{eps/3} — the regime §5 targets — the second term is
/// within O(n^eps).
mpc::ClusterConfig cluster_config_for(const LowDegConfig& config,
                                      std::uint64_t n, std::uint64_t m,
                                      std::uint32_t max_degree);

}  // namespace dmpc::lowdeg
