#include "lowdeg/neighborhoods.hpp"

#include <algorithm>
#include <queue>

#include "support/check.hpp"
#include "support/math.hpp"

namespace dmpc::lowdeg {

using graph::Graph;
using graph::NodeId;

NeighborhoodGather gather_neighborhoods(mpc::Cluster& cluster, const Graph& g,
                                        const std::vector<bool>& alive,
                                        std::uint32_t radius) {
  DMPC_CHECK(radius >= 1);
  NeighborhoodGather out;
  out.radius = radius;
  out.balls.resize(g.num_nodes());

  // Central truncated BFS per node; the model cost is the doubling scheme.
  std::vector<std::uint32_t> dist(g.num_nodes(), UINT32_MAX);
  std::vector<NodeId> touched;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!alive[v]) continue;
    touched.clear();
    std::queue<NodeId> frontier;
    dist[v] = 0;
    frontier.push(v);
    touched.push_back(v);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      if (dist[u] == radius) continue;
      for (NodeId w : g.neighbors(u)) {
        if (!alive[w] || dist[w] != UINT32_MAX) continue;
        dist[w] = dist[u] + 1;
        frontier.push(w);
        touched.push_back(w);
      }
    }
    out.balls[v].assign(touched.begin(), touched.end());
    std::sort(out.balls[v].begin(), out.balls[v].end());
    out.max_ball = std::max<std::uint64_t>(out.max_ball, touched.size());
    for (NodeId w : touched) dist[w] = UINT32_MAX;
  }

  // Space: a ball of b nodes with degree <= Delta needs O(b * Delta) words
  // to hold the induced edges.
  const std::uint64_t words =
      out.max_ball * std::max<std::uint32_t>(g.max_degree(), 1);
  cluster.check_load(words, "gather_neighborhoods", "lowdeg/gather");
  out.rounds_charged = static_cast<std::uint64_t>(ceil_log2(
                           std::max<std::uint64_t>(radius, 2))) +
                       1;
  cluster.charge_recoverable(out.rounds_charged, "lowdeg/gather");
  cluster.metrics().add_communication(words * cluster.machines(),
                                      "lowdeg/gather");
  return out;
}

}  // namespace dmpc::lowdeg
