// Maximal matching as MIS on the line graph (paper §2.1: "a maximal
// matching in G is an MIS in the line graph of G").
//
// This is the cross-validation path for the general pipeline: it runs the
// §4 deterministic MIS machinery on L(G) and maps the independent set back
// to edges. The direct §3 pipeline is the primary implementation (it avoids
// materializing L(G), whose size is sum_v d(v)^2 / 2); this path exists to
// check the two against each other and to mirror the reduction §5 uses.
#pragma once

#include "graph/graph.hpp"
#include "mis/det_mis.hpp"

namespace dmpc::matching {

struct LineGraphMatchingResult {
  std::vector<graph::EdgeId> matching;
  mis::DetMisResult line_mis;  ///< The underlying run on L(G).
};

LineGraphMatchingResult det_matching_via_line_graph(
    const graph::Graph& g, const mis::DetMisConfig& config = {});

}  // namespace dmpc::matching
