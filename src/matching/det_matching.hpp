// Deterministic maximal matching in O(log n) MPC rounds (§3, Theorem 7).
//
// Per iteration (Algorithm 2):
//   1. select good nodes B and edge set E_0 (good_nodes.hpp, Corollary 8);
//   2. sparsify E_0 to E* so every degree is O(n^{4 delta})
//      (edge_sparsifier.hpp, Invariants (i)/(ii));
//   3. gather 2-hop neighborhoods of B-nodes in E* onto machines
//      (space O(n^{8 delta}) = O(n^eps) per machine, §3.3);
//   4. derandomize the Lemma-13 candidate matching: a pairwise hash h gives
//      each E* edge a priority z_e; E_h = local minima (a matching);
//      objective q(h) = sum of d(v) over matched B-nodes, with
//      E[q] >= (1/109) sum_{v in B} d(v) >= delta |E| / 218;
//   5. commit a seed meeting the threshold, add E_h to the output, delete
//      matched nodes — removing >= delta |E| / 536 edges.
//
// Loop until no edges remain: O(log n) iterations, O(1) charged MPC rounds
// each (all communication flows through Lemma-4 primitives).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/cluster.hpp"
#include "mpc/metrics.hpp"
#include "sparsify/edge_sparsifier.hpp"
#include "sparsify/params.hpp"

namespace dmpc::obs {
class EventBus;
class RoundProfiler;
class TraceSession;
}

namespace dmpc::matching {

/// How the per-iteration selection seed is committed.
enum class SelectionMode {
  /// Batched threshold search over the family (production path; see
  /// derand/seed_search.hpp for the guarantee argument).
  kThresholdSearch,
  /// The textbook §2.4 method of conditional expectations with the
  /// exact-enumeration oracle. Exponential in the seed length, so only
  /// valid for small instances (the family size is checked); used to
  /// demonstrate the paper's §2.4 machinery end-to-end in the real
  /// pipeline.
  kConditionalExpectation,
};

struct DetMatchingConfig {
  /// Space exponent: S = space_headroom * n^eps words per machine.
  double eps = 0.5;
  /// 1/delta; 0 derives the paper's delta = eps/8 (inv_delta = 8/eps).
  std::uint32_t inv_delta = 0;
  /// Constant-factor headroom on S (the paper's O(n^{8 delta}) constants).
  double space_headroom = 8.0;
  /// Total-space constant: M = total_space_factor * (m + n) / S machines.
  double total_space_factor = 8.0;
  sparsify::SparsifyConfig sparsify;
  /// Selection threshold: q >= threshold_factor * sum_{v in B} d(v);
  /// the paper's Lemma 13 constant is 1/109.
  double threshold_factor = 1.0 / 109.0;
  /// Candidates per selection batch; the best candidate meeting the
  /// threshold is committed (better practical progress at the same cost).
  std::uint64_t selection_batch = 16;
  /// Seeds per threshold level before the threshold is halved (finite-n
  /// escape hatch; q >= 1 always holds so this terminates — see DESIGN.md).
  std::uint64_t trials_per_threshold = 256;
  std::uint64_t max_iterations = 100000;
  SelectionMode selection_mode = SelectionMode::kThresholdSearch;
  /// Host threads for per-machine local computation (0 = hardware
  /// concurrency, 1 = serial). Results are identical for every value; only
  /// the cluster-creating overload applies this (the cluster-taking overload
  /// uses the caller's executor).
  std::uint32_t threads = 1;
  /// Provisioning overrides on the auto-derived cluster geometry (only the
  /// cluster-creating overload applies them).
  mpc::ClusterOverrides cluster;
  /// Deterministic fault schedule + recovery policy (only the
  /// cluster-creating overload installs them; empty plan = fault-free).
  mpc::FaultPlan faults;
  mpc::RecoveryOptions recovery;
  /// Optional trace session (non-owning); spans and progress events are
  /// emitted when set. Null = tracing off (zero cost).
  obs::TraceSession* trace = nullptr;
  /// Optional round profiler (non-owning; null = off); attached to the
  /// cluster alongside `trace`.
  obs::RoundProfiler* profiler = nullptr;

  /// Optional progress-event bus (non-owning); forwarded to every cluster
  /// this pipeline creates.
  obs::EventBus* events = nullptr;
  /// Storage backend the input graph resides on (non-owning; null for plain
  /// in-memory graphs). Only the cluster-creating overload attaches it; the
  /// seam carries no model semantics (see mpc/storage.hpp).
  const mpc::Storage* storage = nullptr;
};

struct IterationReport {
  std::uint64_t iteration = 0;
  std::uint32_t cls = 0;                ///< Class i chosen by Corollary 8.
  graph::EdgeId edges_before = 0;
  graph::EdgeId edges_after = 0;
  std::uint64_t matched_pairs = 0;      ///< |E_h| committed this iteration.
  double progress_fraction = 0.0;       ///< Removed / edges_before.
  std::uint64_t selection_trials = 0;
  std::uint64_t sparsify_stages = 0;
  std::uint32_t estar_max_degree = 0;
  /// Worst measured §3.2 invariant (i) ratio across this iteration's stages
  /// (max of StageReport::invariant_degree_ratio; 0 when no stages ran).
  double invariant_degree_ratio = 0.0;
  /// Worst measured invariant (ii) ratio (min of
  /// StageReport::invariant_xv_ratio; 2.0 sentinel when unmeasured).
  double invariant_xv_ratio = 2.0;
  /// Largest window escalation any stage needed (0 when no stages ran).
  double window_multiplier = 0.0;
};

struct DetMatchingResult {
  std::vector<graph::EdgeId> matching;
  std::uint64_t iterations = 0;
  std::vector<IterationReport> reports;
  mpc::Metrics metrics;
  mpc::RecoveryStats recovery;  ///< All-zero for a fault-free run.
};

/// Creates the cluster per the config and runs the full loop.
DetMatchingResult det_maximal_matching(const graph::Graph& g,
                                       const DetMatchingConfig& config);

/// As above, against a caller-provided cluster (metrics accumulate there).
DetMatchingResult det_maximal_matching(mpc::Cluster& cluster,
                                       const graph::Graph& g,
                                       const DetMatchingConfig& config);

/// The cluster the config would build for graph size (n, m).
mpc::ClusterConfig cluster_config_for(const DetMatchingConfig& config,
                                      std::uint64_t n, std::uint64_t m);

/// Effective sparsification parameters for the config on an n-node graph.
sparsify::Params params_for(const DetMatchingConfig& config, std::uint64_t n);

}  // namespace dmpc::matching
