#include "matching/det_matching.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "derand/cond_expect.hpp"
#include "derand/seed_search.hpp"
#include "graph/validate.hpp"
#include "hash/kwise.hpp"
#include "mpc/distribution.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sparsify/good_nodes.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace dmpc::matching {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

namespace {

/// The Lemma-13 selection objective. For hash seed s, every E* edge gets
/// priority z_e = h_s(e); E_h = edges that are local minima among their E*
/// neighbors (ties by id) — always a matching. Value = sum of alive-degrees
/// of B-nodes covered by E_h.
//
// Range form: the E* edge list is the bound point universe, so every
// priority z_e is computed once per seed by the lane-parallel kernel; the
// local-min test then reads competitors' priorities by edge position instead
// of re-evaluating the polynomial per incidence (previously O(sum deg^2)
// hash evaluations per seed — the selection hotspot). The covered bitmap is
// a per-seed prepass into thread-local scratch.
class SelectionObjective final : public derand::RangeObjective {
 public:
  SelectionObjective(const Graph& g, const hash::KWiseFamily& family,
                     const std::vector<EdgeId>& estar_edges,
                     const std::vector<std::vector<EdgeId>>& estar_incident,
                     const std::vector<bool>& in_B,
                     const std::vector<std::uint32_t>& alive_degree)
      : g_(&g),
        estar_edges_(&estar_edges),
        estar_incident_(&estar_incident),
        in_B_(&in_B),
        alive_degree_(&alive_degree),
        edge_pos_(g.num_edges(), 0) {
    for (std::size_t i = 0; i < estar_edges.size(); ++i) {
      edge_pos_[estar_edges[i]] = i;
    }
    bind_points(family, estar_edges.data(), estar_edges.size());
  }

  /// The committed matching for a seed (used after the search picks one).
  std::vector<EdgeId> matching_for(std::uint64_t seed) const {
    const auto fn = family().at(seed);
    std::vector<std::uint64_t> values(estar_edges_->size());
    fn.raw_many(estar_edges_->data(), estar_edges_->size(), values.data());
    std::vector<EdgeId> matched;
    for (std::size_t i = 0; i < estar_edges_->size(); ++i) {
      if (is_local_min(i, values.data())) matched.push_back((*estar_edges_)[i]);
    }
    return matched;
  }

  void prepare_seed(std::uint64_t /*seed*/,
                    const std::uint64_t* values) const override {
    std::vector<std::uint8_t>& covered = covered_scratch();
    covered.assign(g_->num_nodes(), 0);
    for (std::size_t i = 0; i < estar_edges_->size(); ++i) {
      if (!is_local_min(i, values)) continue;
      const EdgeId e = (*estar_edges_)[i];
      covered[g_->edge(e).u] = 1;
      covered[g_->edge(e).v] = 1;
    }
  }

  double accumulate_terms(std::uint64_t range_begin, std::uint64_t range_end,
                          std::uint64_t /*seed*/,
                          const std::uint64_t* /*values*/) const override {
    const std::vector<std::uint8_t>& covered = covered_scratch();
    double q = 0.0;
    for (std::uint64_t v = range_begin; v < range_end; ++v) {
      if ((*in_B_)[v] && covered[v] != 0) {
        q += static_cast<double>((*alive_degree_)[v]);
      }
    }
    return q;
  }

  /// Accumulable ranges partition the node set; term_count() stays the E*
  /// edge count — the model aggregation size the round charges depend on.
  std::uint64_t range_count() const override { return g_->num_nodes(); }
  std::uint64_t term_count() const override { return estar_edges_->size(); }

 private:
  static std::vector<std::uint8_t>& covered_scratch() {
    thread_local std::vector<std::uint8_t> covered;
    return covered;
  }

  /// Local-min test over precomputed priorities; values is indexed by E*
  /// edge position (identical comparisons to the former per-edge raw()).
  bool is_local_min(std::size_t i, const std::uint64_t* values) const {
    const EdgeId e = (*estar_edges_)[i];
    const std::uint64_t ze = values[i];
    const auto beats = [&](EdgeId f) {
      const std::uint64_t zf = values[edge_pos_[f]];
      return zf < ze || (zf == ze && f < e);
    };
    for (NodeId endpoint : {g_->edge(e).u, g_->edge(e).v}) {
      for (EdgeId f : (*estar_incident_)[endpoint]) {
        if (f != e && beats(f)) return false;
      }
    }
    return true;
  }

  const Graph* g_;
  const std::vector<EdgeId>* estar_edges_;
  const std::vector<std::vector<EdgeId>>* estar_incident_;
  const std::vector<bool>* in_B_;
  const std::vector<std::uint32_t>* alive_degree_;
  std::vector<std::size_t> edge_pos_;  ///< EdgeId -> position in estar_edges
};

/// Batched best-of search with threshold halving (header comment in
/// det_matching.hpp explains the finite-n rationale).
derand::SearchResult select_with_threshold(mpc::Cluster& cluster,
                                           const SelectionObjective& objective,
                                           std::uint64_t seed_count,
                                           double threshold, std::uint64_t salt,
                                           const DetMatchingConfig& config) {
  derand::SearchResult best;
  obs::HostScope host_scope("derand/selection", cluster.trace());
  obs::Span span(cluster.trace(), "matching/selection");
  bool have = false;
  std::uint64_t evaluated = 0;
  double t = threshold;
  derand::BatchStats batch_stats;
  // Decorrelate committed priority functions across iterations: trial k of
  // iteration `salt` evaluates a stride-scrambled walk over the family
  // (same rationale as derand::SearchOptions::seed_stride).
  auto seed_at = [&](std::uint64_t k) {
    const __uint128_t pos =
        static_cast<__uint128_t>(k) * 0xBF58476D1CE4E5B9ULL +
        salt * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::uint64_t>(pos % seed_count);
  };
  while (true) {
    const std::uint64_t budget =
        std::min<std::uint64_t>(config.selection_batch, seed_count - evaluated);
    DMPC_CHECK_MSG(budget > 0, "selection seed space exhausted");
    const std::uint64_t depth = cluster.tree_depth(
        std::max<std::uint64_t>(objective.term_count(), 2));
    cluster.charge_recoverable(2 * depth, "matching/selection");
    cluster.metrics().add_communication(budget * cluster.machines(),
                                        "matching/selection");
    // Host-parallel batch evaluation through the range oracle (the
    // objective is pure), then a serial lowest-trial-first scan with a
    // strict improvement test — the committed seed is identical for every
    // thread count and dispatch path.
    std::vector<std::uint64_t> seeds(budget);
    for (std::uint64_t i = 0; i < budget; ++i) {
      seeds[i] = seed_at(evaluated + i);
    }
    std::vector<double> values(budget, 0.0);
    batch_stats += derand::batch_evaluate(cluster.executor(), objective,
                                          seeds.data(), budget, values.data());
    for (std::uint64_t k = evaluated; k < evaluated + budget; ++k) {
      const double value = values[k - evaluated];
      if (!have || value > best.value) {
        have = true;
        best.seed = seed_at(k);
        best.value = value;
      }
    }
    evaluated += budget;
    best.trials = evaluated;
    if (have && best.value >= t) {
      span.arg("candidate_seeds", best.trials);
      span.arg("committed_seed", best.seed);
      derand::record_batch_stats(batch_stats);
      return best;
    }
    if (evaluated % config.trials_per_threshold == 0) t /= 2.0;
  }
}

}  // namespace

sparsify::Params params_for(const DetMatchingConfig& config, std::uint64_t n) {
  sparsify::Params params;
  params.n = std::max<std::uint64_t>(n, 2);
  params.inv_delta =
      config.inv_delta != 0
          ? config.inv_delta
          : std::max<std::uint32_t>(
                1, static_cast<std::uint32_t>(std::lround(8.0 / config.eps)));
  return params;
}

mpc::ClusterConfig cluster_config_for(const DetMatchingConfig& config,
                                      std::uint64_t n, std::uint64_t m) {
  mpc::ClusterConfig cc;
  cc.machine_space = std::max<std::uint64_t>(
      64, static_cast<std::uint64_t>(
              config.space_headroom *
              std::pow(static_cast<double>(std::max<std::uint64_t>(n, 2)),
                       config.eps)));
  const auto total = static_cast<std::uint64_t>(
      config.total_space_factor * static_cast<double>(m + n + 2));
  cc.num_machines = ceil_div(total, cc.machine_space) + 1;
  return cc;
}

DetMatchingResult det_maximal_matching(const Graph& g,
                                       const DetMatchingConfig& config) {
  mpc::Cluster cluster(mpc::apply_overrides(
      cluster_config_for(config, g.num_nodes(), g.num_edges()),
      config.cluster));
  if (config.trace != nullptr) cluster.set_trace(config.trace);
  if (config.profiler != nullptr) cluster.set_profiler(config.profiler);
  if (config.events != nullptr) cluster.set_events(config.events);
  cluster.set_executor(exec::Executor::with_threads(config.threads));
  if (!config.faults.empty()) cluster.set_faults(config.faults, config.recovery);
  if (config.storage != nullptr) cluster.set_storage(config.storage);
  return det_maximal_matching(cluster, g, config);
}

DetMatchingResult det_maximal_matching(mpc::Cluster& cluster, const Graph& g,
                                       const DetMatchingConfig& config) {
  if (config.trace != nullptr) cluster.set_trace(config.trace);
  if (config.profiler != nullptr) cluster.set_profiler(config.profiler);
  if (config.events != nullptr) cluster.set_events(config.events);
  const sparsify::Params params = params_for(config, g.num_nodes());
  DetMatchingResult result;
  std::vector<bool> alive(g.num_nodes(), true);
  obs::Span pipeline_span(cluster.trace(), "matching/pipeline");
  // Distributed state a phase checkpoint persists: the edge list plus the
  // per-node alive/matched flags.
  const std::uint64_t phase_words = 2 * g.num_edges() + g.num_nodes();

  while (graph::alive_edge_count(g, alive, cluster.executor()) > 0) {
    DMPC_CHECK_MSG(result.iterations < config.max_iterations,
                   "matching iteration cap exceeded");
    ++result.iterations;
    IterationReport report;
    report.iteration = result.iterations;
    obs::Span iter_span(cluster.trace(), "matching/iteration");
    iter_span.arg("iteration", report.iteration);

    // 1. Good nodes (Corollary 8).
    cluster.mark_phase("matching/phase/good_nodes", phase_words);
    const auto good = [&] {
      obs::Span phase_span(cluster.trace(), "matching/phase/good_nodes");
      return sparsify::select_matching_good_set(cluster, params, g, alive);
    }();
    report.cls = good.cls;
    report.edges_before = good.alive_edges;

    // 2. Sparsify E_0 -> E* (§3.2).
    cluster.mark_phase("matching/phase/sparsify", phase_words);
    const auto sparse = [&] {
      obs::Span phase_span(cluster.trace(), "matching/phase/sparsify");
      return sparsify::sparsify_edges(cluster, params, g, good,
                                      config.sparsify);
    }();
    report.sparsify_stages = sparse.stages.size();
    report.estar_max_degree = sparse.max_degree;
    for (const sparsify::StageReport& s : sparse.stages) {
      report.invariant_degree_ratio =
          std::max(report.invariant_degree_ratio, s.invariant_degree_ratio);
      report.invariant_xv_ratio =
          std::min(report.invariant_xv_ratio, s.invariant_xv_ratio);
      report.window_multiplier =
          std::max(report.window_multiplier, s.window_multiplier);
    }

    // 3. Gather 2-hop neighborhoods of B-nodes in E* (space check, §3.3).
    cluster.mark_phase("matching/phase/gather", phase_words);
    std::optional<obs::Span> gather_span;
    gather_span.emplace(cluster.trace(), "matching/phase/gather");
    std::vector<EdgeId> estar_edges;
    std::vector<std::vector<EdgeId>> estar_incident(g.num_nodes());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!sparse.in_Estar[e]) continue;
      estar_edges.push_back(e);
      estar_incident[g.edge(e).u].push_back(e);
      estar_incident[g.edge(e).v].push_back(e);
    }
    {
      std::vector<std::uint64_t> two_hop(g.num_nodes(), 0);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (!good.in_B[v]) continue;
        std::uint64_t words = estar_incident[v].size();
        for (EdgeId e : estar_incident[v]) {
          words += estar_incident[g.other_endpoint(e, v)].size();
        }
        two_hop[v] = 2 * words;  // 2 words per edge record
      }
      mpc::charge_two_hop_gather(cluster, two_hop, good.in_B,
                                 "matching/gather2hop");
    }
    gather_span.reset();

    // 4-5. Derandomized Lemma-13 selection.
    cluster.mark_phase("matching/phase/derand", phase_words);
    std::optional<obs::Span> derand_span;
    derand_span.emplace(cluster.trace(), "matching/phase/derand");
    const auto alive_degree = graph::alive_degrees(g, alive, cluster.executor());
    const std::uint64_t domain = std::max<std::uint64_t>(2, g.num_edges());
    hash::KWiseFamily family(domain, domain, /*k=*/2);
    SelectionObjective objective(g, family, estar_edges, estar_incident,
                                 good.in_B, alive_degree);
    const double threshold =
        config.threshold_factor * static_cast<double>(good.b_degree_mass);
    derand::SearchResult committed;
    if (config.selection_mode == SelectionMode::kConditionalExpectation) {
      // The textbook §2.4 path: fix the two coefficients of the pairwise
      // seed chunk by chunk with exact conditional expectations. The oracle
      // enumerates suffixes, so keep the family small.
      DMPC_CHECK_MSG(family.seed_count() <= (1ULL << 22),
                     "conditional-expectation selection needs a small "
                     "instance (family of <= 2^22 seeds)");
      const hash::SeedSpace space({family.p(), family.p()});
      derand::ExhaustiveConditional conditional(objective, space);
      derand::FixOptions fix_options;
      fix_options.guarantee = 0.0;
      fix_options.label = "matching/selection_ce";
      const auto fixed =
          derand::fix_seed(cluster, conditional, space, fix_options);
      committed.seed = fixed.seed;
      committed.value = fixed.value;
      committed.trials = space.size();
    } else {
      committed = select_with_threshold(cluster, objective,
                                        family.seed_count(), threshold,
                                        result.iterations, config);
    }
    report.selection_trials = committed.trials;
    if (derand_span->active()) {
      derand_span->arg("candidate_seeds", committed.trials);
      derand_span->arg("committed_seed", committed.seed);
    }
    derand_span.reset();

    cluster.mark_phase("matching/phase/commit", phase_words);
    obs::Span commit_span(cluster.trace(), "matching/phase/commit");
    const auto matched = objective.matching_for(committed.seed);
    DMPC_CHECK_MSG(!matched.empty(), "empty committed matching");
    report.matched_pairs = matched.size();
    for (EdgeId e : matched) {
      result.matching.push_back(e);
      alive[g.edge(e).u] = false;
      alive[g.edge(e).v] = false;
    }

    report.edges_after = graph::alive_edge_count(g, alive, cluster.executor());
    report.progress_fraction =
        static_cast<double>(report.edges_before - report.edges_after) /
        static_cast<double>(report.edges_before);
    // Lemma-13 progress series: one structured event per iteration (the
    // machine-readable successor of the old free-form debug line).
    if (auto* trace = cluster.trace(); obs::enabled(trace)) {
      trace->instant(
          "matching/progress",
          {obs::arg("iteration", report.iteration),
           obs::arg("edges_remaining",
                    static_cast<std::uint64_t>(report.edges_after)),
           obs::arg("good_node_fraction",
                    static_cast<double>(good.b_degree_mass) /
                        static_cast<double>(2 * good.alive_edges)),
           obs::arg("matched_pairs",
                    static_cast<std::uint64_t>(report.matched_pairs)),
           obs::arg("progress_fraction", report.progress_fraction)});
    }
    if (iter_span.active()) {
      iter_span.arg("edges_before",
                    static_cast<std::uint64_t>(report.edges_before));
      iter_span.arg("edges_after",
                    static_cast<std::uint64_t>(report.edges_after));
      iter_span.arg("class", static_cast<std::uint64_t>(report.cls));
    }
    result.reports.push_back(report);
  }

  DMPC_CHECK_MSG(graph::is_maximal_matching(g, result.matching),
                 "det_maximal_matching produced a non-maximal matching");
  result.metrics = cluster.metrics();
  result.recovery = cluster.recovery_stats();
  return result;
}

}  // namespace dmpc::matching
