#include "matching/line_graph_matching.hpp"

#include "graph/transforms.hpp"
#include "graph/validate.hpp"
#include "support/check.hpp"

namespace dmpc::matching {

using graph::EdgeId;
using graph::Graph;

LineGraphMatchingResult det_matching_via_line_graph(
    const Graph& g, const mis::DetMisConfig& config) {
  LineGraphMatchingResult result;
  if (g.num_edges() == 0) return result;
  const Graph lg = graph::line_graph(g);
  result.line_mis = mis::det_mis(lg, config);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (result.line_mis.in_set[e]) result.matching.push_back(e);
  }
  DMPC_CHECK_MSG(graph::is_maximal_matching(g, result.matching),
                 "line-graph MIS did not map to a maximal matching");
  return result;
}

}  // namespace dmpc::matching
