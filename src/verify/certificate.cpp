#include "verify/certificate.hpp"

#include <algorithm>

namespace dmpc::verify {

const char* certify_mode_name(CertifyMode mode) {
  switch (mode) {
    case CertifyMode::kOff:
      return "off";
    case CertifyMode::kAnswer:
      return "answer";
    case CertifyMode::kFull:
      return "full";
  }
  return "unknown";
}

const char* claim_name(Claim claim) {
  switch (claim) {
    case Claim::kMisIndependence:
      return "mis_independence";
    case Claim::kMisMaximality:
      return "mis_maximality";
    case Claim::kMatchingValidity:
      return "matching_validity";
    case Claim::kMatchingMaximality:
      return "matching_maximality";
    case Claim::kProperColoring:
      return "proper_coloring";
    case Claim::kDistance2Coloring:
      return "distance2_coloring";
    case Claim::kSparsifierDegreeCap:
      return "sparsifier_degree_cap";
    case Claim::kSparsifierInvariants:
      return "sparsifier_invariants";
    case Claim::kSpaceAccounting:
      return "space_accounting";
    case Claim::kMetricsConsistency:
      return "metrics_consistency";
    case Claim::kReplayIdentity:
      return "replay_identity";
    case Claim::kStorageIntegrity:
      return "storage_integrity";
  }
  return "unknown";
}

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kPass:
      return "pass";
    case Verdict::kFail:
      return "fail";
    case Verdict::kSkipped:
      return "skipped";
  }
  return "unknown";
}

bool Certificate::ok() const { return failures() == 0; }

std::uint64_t Certificate::failures() const {
  return static_cast<std::uint64_t>(
      std::count_if(claims.begin(), claims.end(), [](const ClaimResult& c) {
        return c.verdict == Verdict::kFail;
      }));
}

const ClaimResult* Certificate::first_failure() const {
  for (const ClaimResult& c : claims) {
    if (c.verdict == Verdict::kFail) return &c;
  }
  return nullptr;
}

std::string Certificate::summary() const {
  if (const ClaimResult* failure = first_failure(); failure != nullptr) {
    std::string out = "certificate FAILED (";
    out += std::to_string(failures());
    out += " of ";
    out += std::to_string(claims.size());
    out += " claims): ";
    out += claim_name(failure->claim);
    if (failure->has_witness && !failure->witness.detail.empty()) {
      out += ": " + failure->witness.detail;
    }
    return out;
  }
  std::uint64_t passed = 0, skipped = 0;
  for (const ClaimResult& c : claims) {
    if (c.verdict == Verdict::kPass) ++passed;
    if (c.verdict == Verdict::kSkipped) ++skipped;
  }
  std::string out = "certificate ok: ";
  out += std::to_string(claims.size());
  out += " claims (";
  out += std::to_string(passed);
  out += " passed, ";
  out += std::to_string(skipped);
  out += " skipped)";
  return out;
}

void SparsifyAudit::absorb_stage(double degree_ratio, double xv_ratio,
                                 double window_multiplier,
                                 std::uint32_t stage_max_degree) {
  ++stages;
  worst_degree_ratio = std::max(worst_degree_ratio, degree_ratio);
  worst_xv_ratio = std::min(worst_xv_ratio, xv_ratio);
  max_window_multiplier = std::max(max_window_multiplier, window_multiplier);
  max_degree = std::max(max_degree, stage_max_degree);
}

}  // namespace dmpc::verify
