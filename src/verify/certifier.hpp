// Executor-parallel certification checkers.
//
// The Certifier promotes the ground-truth predicates of graph/validate.hpp
// (boolean: valid or not) into structured checkers that also *localize*
// failures: every checker returns a ClaimResult whose witness names the
// lowest-index violating object (node, edge, iteration, label), found with
// exec::Executor::find_first so the verdict and the witness are
// byte-identical for every thread count. Checking an answer is O(n + m)
// host work — asymptotically free next to the solve that produced it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/parallel.hpp"
#include "graph/graph.hpp"
#include "mpc/metrics.hpp"
#include "verify/certificate.hpp"

namespace dmpc::mpc {
struct IntegrityReport;
}

namespace dmpc::verify {

/// Finite-n acceptance bounds for the measured §3.2/§4.2 invariant ratios.
/// The paper's lemmas give O(1) ratios asymptotically; these constants are
/// the certified envelope at benchmark sizes (see docs/ROBUSTNESS.md for the
/// calibration protocol). Tighten per-workload via Certifier::set_bounds.
struct InvariantBounds {
  /// Upper bound on invariant (i): max_v d_Ej(v) / (n^{-j delta} d_E0(v) +
  /// n^{3 delta}). Lemma 10 gives a constant; window escalation at small n
  /// widens it.
  double max_degree_ratio = 16.0;
  /// Lower bound on invariant (ii): min_v |X(v) ∩ E_j| / (n^{-j delta}
  /// |X(v)|), ignoring the 2.0 "nothing measurable" sentinel. The paper
  /// enforces (ii) in aggregate through the window-based goodness test, so
  /// an individual node can legitimately lose its whole X(v) sample at a
  /// coarse shrink factor: the measured worst over the E1/E2 reference
  /// workloads is exactly 0. The default therefore only rejects corrupted
  /// (negative) values; raise it for workloads where per-node sample mass
  /// is known to persist.
  double min_xv_ratio = 0.0;
};

class Certifier {
 public:
  Certifier() = default;
  explicit Certifier(exec::Executor executor)
      : executor_(std::move(executor)) {}

  void set_bounds(const InvariantBounds& bounds) { bounds_ = bounds; }
  const InvariantBounds& bounds() const { return bounds_; }

  // ---- Answer claims (promote graph/validate.hpp) ----

  /// kMisIndependence: no two set members adjacent; witness = lowest
  /// violating EdgeId.
  ClaimResult check_mis_independence(const graph::Graph& g,
                                     const std::vector<bool>& in_set) const;

  /// kMisMaximality: every non-member has a member neighbor; witness =
  /// lowest violating node.
  ClaimResult check_mis_maximality(const graph::Graph& g,
                                   const std::vector<bool>& in_set) const;

  /// kMatchingValidity: every id is a real edge and no two matching edges
  /// share an endpoint; witness = lowest offending matching slot.
  ClaimResult check_matching_validity(
      const graph::Graph& g, const std::vector<graph::EdgeId>& matching) const;

  /// kMatchingMaximality: every edge has a matched endpoint; witness =
  /// lowest uncovered EdgeId.
  ClaimResult check_matching_maximality(
      const graph::Graph& g, const std::vector<graph::EdgeId>& matching) const;

  /// kProperColoring: adjacent nodes differ; witness = lowest violating
  /// EdgeId.
  ClaimResult check_proper_coloring(
      const graph::Graph& g, const std::vector<std::uint32_t>& color) const;

  /// kDistance2Coloring: nodes at distance <= 2 differ; witness = the two
  /// colliding nodes (u, v) around the lowest-index center.
  ClaimResult check_distance2_coloring(
      const graph::Graph& g, const std::vector<std::uint32_t>& color) const;

  // ---- Pipeline claims ----

  /// kSparsifierDegreeCap: max degree inside any sparsified E*/Q' is within
  /// the 2 n^{4 delta} cap. Skipped when the audit ran no stages.
  ClaimResult check_sparsifier_degree_cap(const SparsifyAudit& audit) const;

  /// kSparsifierInvariants: the measured §3.2/§4.2 ratios stay inside
  /// bounds(). Skipped when the audit ran no stages.
  ClaimResult check_sparsifier_invariants(const SparsifyAudit& audit) const;

  /// kSpaceAccounting: peak load (global and per label) <= machine_space.
  ClaimResult check_space_accounting(const mpc::Metrics& metrics,
                                     std::uint64_t machine_space) const;

  /// kMetricsConsistency: per-label rounds/communication sums are bounded by
  /// the totals and no label peak exceeds the global peak.
  ClaimResult check_metrics_consistency(const mpc::Metrics& metrics) const;

  /// kReplayIdentity result from a comparison the caller performed (the
  /// Solver replays the solve fault-free and diffs solutions bytewise).
  /// `diff_index` is the first differing position when !identical.
  static ClaimResult replay_claim(bool identical, std::uint64_t compared,
                                  std::uint64_t diff_index,
                                  const std::string& detail);

  /// kStorageIntegrity result from a backend integrity pass the Solver ran
  /// before attaching (mpc::Storage::verify_integrity): kVerified -> pass,
  /// kUnverified -> skipped (nothing checksummed to check), kFailed -> fail
  /// with the first bad shard as witness.
  static ClaimResult check_storage_integrity(
      const mpc::IntegrityReport& report);

  /// A kSkipped result (claim recorded but not applicable to this run).
  static ClaimResult skipped(Claim claim);

  /// Throw CertificationError if any claim in the certificate failed.
  static void require(const Certificate& certificate);

 private:
  exec::Executor executor_;
  InvariantBounds bounds_;
};

}  // namespace dmpc::verify
