#include "verify/certifier.hpp"

#include <algorithm>
#include <limits>

#include "mpc/storage.hpp"
#include "support/check.hpp"

namespace dmpc::verify {
namespace {

using graph::Edge;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

constexpr std::uint64_t kNone = std::numeric_limits<std::uint64_t>::max();

ClaimResult pass(Claim claim, std::uint64_t checked) {
  ClaimResult result;
  result.claim = claim;
  result.verdict = Verdict::kPass;
  result.checked = checked;
  return result;
}

ClaimResult fail(Claim claim, std::uint64_t checked, Witness witness) {
  ClaimResult result;
  result.claim = claim;
  result.verdict = Verdict::kFail;
  result.checked = checked;
  result.has_witness = true;
  result.witness = std::move(witness);
  return result;
}

Witness edge_witness(const Graph& g, EdgeId e, std::string detail) {
  Witness w;
  w.kind = "edge";
  w.index = e;
  w.u = g.edge(e).u;
  w.v = g.edge(e).v;
  w.detail = std::move(detail);
  return w;
}

}  // namespace

ClaimResult Certifier::check_mis_independence(
    const Graph& g, const std::vector<bool>& in_set) const {
  const EdgeId m = g.num_edges();
  if (in_set.size() != g.num_nodes()) {
    Witness w;
    w.kind = "node";
    w.measured = static_cast<double>(in_set.size());
    w.bound = static_cast<double>(g.num_nodes());
    w.detail = "in_set size " + std::to_string(in_set.size()) +
               " != node count " + std::to_string(g.num_nodes());
    return fail(Claim::kMisIndependence, 0, std::move(w));
  }
  const std::uint64_t bad = executor_.find_first(0, m, [&](std::uint64_t e) {
    const Edge& edge = g.edge(e);
    return in_set[edge.u] && in_set[edge.v];
  });
  if (bad == m) return pass(Claim::kMisIndependence, m);
  return fail(Claim::kMisIndependence, m,
              edge_witness(g, bad,
                           "both endpoints of edge " + std::to_string(bad) +
                               " = {" + std::to_string(g.edge(bad).u) + ", " +
                               std::to_string(g.edge(bad).v) +
                               "} are in the set"));
}

ClaimResult Certifier::check_mis_maximality(
    const Graph& g, const std::vector<bool>& in_set) const {
  const NodeId n = g.num_nodes();
  if (in_set.size() != n) {
    Witness w;
    w.kind = "node";
    w.detail = "in_set size mismatch";
    return fail(Claim::kMisMaximality, 0, std::move(w));
  }
  const std::uint64_t bad = executor_.find_first(
      0, n,
      [&](std::uint64_t v) {
        if (in_set[v]) return false;
        for (NodeId u : g.neighbors(static_cast<NodeId>(v))) {
          if (in_set[u]) return false;
        }
        return true;  // non-member with no member neighbor
      },
      /*grain=*/64);
  if (bad == n) return pass(Claim::kMisMaximality, n);
  Witness w;
  w.kind = "node";
  w.index = bad;
  w.u = bad;
  w.detail = "node " + std::to_string(bad) +
             " is outside the set and has no neighbor in it";
  return fail(Claim::kMisMaximality, n, std::move(w));
}

ClaimResult Certifier::check_matching_validity(
    const Graph& g, const std::vector<EdgeId>& matching) const {
  const std::uint64_t k = matching.size();
  const std::uint64_t bad_id =
      executor_.find_first(0, k, [&](std::uint64_t i) {
        return matching[i] >= g.num_edges();
      });
  if (bad_id != k) {
    Witness w;
    w.kind = "matching_slot";
    w.index = bad_id;
    w.measured = static_cast<double>(matching[bad_id]);
    w.bound = static_cast<double>(g.num_edges());
    w.detail = "matching slot " + std::to_string(bad_id) + " holds edge id " +
               std::to_string(matching[bad_id]) + " but the graph has only " +
               std::to_string(g.num_edges()) + " edges";
    return fail(Claim::kMatchingValidity, k, std::move(w));
  }
  // owner[v] = lowest matching slot claiming endpoint v. The serial fill is
  // O(k) and order-deterministic; the conflict scan below is parallel.
  std::vector<std::uint64_t> owner(g.num_nodes(), kNone);
  for (std::uint64_t i = 0; i < k; ++i) {
    const Edge& e = g.edge(matching[i]);
    owner[e.u] = std::min(owner[e.u], i);
    owner[e.v] = std::min(owner[e.v], i);
  }
  const std::uint64_t bad = executor_.find_first(0, k, [&](std::uint64_t i) {
    const Edge& e = g.edge(matching[i]);
    return owner[e.u] < i || owner[e.v] < i;
  });
  if (bad == k) return pass(Claim::kMatchingValidity, k);
  const Edge& e = g.edge(matching[bad]);
  const NodeId shared = owner[e.u] < bad ? e.u : e.v;
  Witness w;
  w.kind = "matching_slot";
  w.index = bad;
  w.u = e.u;
  w.v = e.v;
  w.detail = "matching slots " + std::to_string(owner[shared]) + " and " +
             std::to_string(bad) + " both cover node " +
             std::to_string(shared);
  return fail(Claim::kMatchingValidity, k, std::move(w));
}

ClaimResult Certifier::check_matching_maximality(
    const Graph& g, const std::vector<EdgeId>& matching) const {
  std::vector<bool> matched(g.num_nodes(), false);
  for (EdgeId id : matching) {
    if (id >= g.num_edges()) continue;  // validity claim reports this
    matched[g.edge(id).u] = true;
    matched[g.edge(id).v] = true;
  }
  const EdgeId m = g.num_edges();
  const std::uint64_t bad = executor_.find_first(0, m, [&](std::uint64_t e) {
    const Edge& edge = g.edge(e);
    return !matched[edge.u] && !matched[edge.v];
  });
  if (bad == m) return pass(Claim::kMatchingMaximality, m);
  return fail(Claim::kMatchingMaximality, m,
              edge_witness(g, bad,
                           "edge " + std::to_string(bad) + " = {" +
                               std::to_string(g.edge(bad).u) + ", " +
                               std::to_string(g.edge(bad).v) +
                               "} has no matched endpoint"));
}

ClaimResult Certifier::check_proper_coloring(
    const Graph& g, const std::vector<std::uint32_t>& color) const {
  if (color.size() != g.num_nodes()) {
    Witness w;
    w.kind = "node";
    w.detail = "color array size " + std::to_string(color.size()) +
               " != node count " + std::to_string(g.num_nodes());
    return fail(Claim::kProperColoring, 0, std::move(w));
  }
  const EdgeId m = g.num_edges();
  const std::uint64_t bad = executor_.find_first(0, m, [&](std::uint64_t e) {
    const Edge& edge = g.edge(e);
    return color[edge.u] == color[edge.v];
  });
  if (bad == m) return pass(Claim::kProperColoring, m);
  Witness w = edge_witness(
      g, bad,
      "adjacent nodes " + std::to_string(g.edge(bad).u) + " and " +
          std::to_string(g.edge(bad).v) + " share color " +
          std::to_string(color[g.edge(bad).u]));
  w.measured = static_cast<double>(color[g.edge(bad).u]);
  return fail(Claim::kProperColoring, m, std::move(w));
}

ClaimResult Certifier::check_distance2_coloring(
    const Graph& g, const std::vector<std::uint32_t>& color) const {
  // Distance-1 collisions are distance-2 violations too; report them via the
  // same claim so one check covers the §5.1 requirement.
  if (color.size() != g.num_nodes()) {
    Witness w;
    w.kind = "node";
    w.detail = "color array size mismatch";
    return fail(Claim::kDistance2Coloring, 0, std::move(w));
  }
  const NodeId n = g.num_nodes();
  // Center scan: a violation at distance <= 2 is an edge collision or two
  // neighbors of some center sharing a color.
  const auto center_violation = [&](NodeId c, NodeId* out_u, NodeId* out_v) {
    std::vector<std::pair<std::uint32_t, NodeId>> palette;
    palette.reserve(g.degree(c) + 1);
    palette.emplace_back(color[c], c);
    for (NodeId u : g.neighbors(c)) palette.emplace_back(color[u], u);
    std::sort(palette.begin(), palette.end());
    for (std::size_t i = 1; i < palette.size(); ++i) {
      if (palette[i].first == palette[i - 1].first) {
        *out_u = std::min(palette[i - 1].second, palette[i].second);
        *out_v = std::max(palette[i - 1].second, palette[i].second);
        return true;
      }
    }
    return false;
  };
  const std::uint64_t bad = executor_.find_first(
      0, n,
      [&](std::uint64_t c) {
        NodeId u = 0, v = 0;
        return center_violation(static_cast<NodeId>(c), &u, &v);
      },
      /*grain=*/16);
  if (bad == n) return pass(Claim::kDistance2Coloring, n);
  NodeId u = 0, v = 0;
  center_violation(static_cast<NodeId>(bad), &u, &v);
  Witness w;
  w.kind = "node";
  w.index = bad;
  w.u = u;
  w.v = v;
  w.measured = static_cast<double>(color[u]);
  w.detail = "nodes " + std::to_string(u) + " and " + std::to_string(v) +
             " are within distance 2 (via center " + std::to_string(bad) +
             ") and share color " + std::to_string(color[u]);
  return fail(Claim::kDistance2Coloring, n, std::move(w));
}

ClaimResult Certifier::check_sparsifier_degree_cap(
    const SparsifyAudit& audit) const {
  if (audit.stages == 0 || audit.degree_cap == 0) {
    return skipped(Claim::kSparsifierDegreeCap);
  }
  if (audit.max_degree <= audit.degree_cap) {
    return pass(Claim::kSparsifierDegreeCap, audit.stages);
  }
  Witness w;
  w.kind = "iteration";
  w.measured = static_cast<double>(audit.max_degree);
  w.bound = static_cast<double>(audit.degree_cap);
  w.detail = "sparsified max degree " + std::to_string(audit.max_degree) +
             " exceeds the 2 n^{4 delta} cap " +
             std::to_string(audit.degree_cap);
  return fail(Claim::kSparsifierDegreeCap, audit.stages, std::move(w));
}

ClaimResult Certifier::check_sparsifier_invariants(
    const SparsifyAudit& audit) const {
  if (audit.stages == 0) return skipped(Claim::kSparsifierInvariants);
  if (audit.worst_degree_ratio > bounds_.max_degree_ratio) {
    Witness w;
    w.kind = "iteration";
    w.measured = audit.worst_degree_ratio;
    w.bound = bounds_.max_degree_ratio;
    w.detail = "invariant (i) degree ratio " +
               std::to_string(audit.worst_degree_ratio) +
               " exceeds certified bound " +
               std::to_string(bounds_.max_degree_ratio);
    return fail(Claim::kSparsifierInvariants, audit.stages, std::move(w));
  }
  // 2.0 is the "no measurable X(v)" sentinel — nothing to bound then.
  if (audit.worst_xv_ratio < bounds_.min_xv_ratio &&
      audit.worst_xv_ratio < 2.0) {
    Witness w;
    w.kind = "iteration";
    w.measured = audit.worst_xv_ratio;
    w.bound = bounds_.min_xv_ratio;
    w.detail = "invariant (ii) X(v) ratio " +
               std::to_string(audit.worst_xv_ratio) +
               " fell below certified bound " +
               std::to_string(bounds_.min_xv_ratio);
    return fail(Claim::kSparsifierInvariants, audit.stages, std::move(w));
  }
  return pass(Claim::kSparsifierInvariants, audit.stages);
}

ClaimResult Certifier::check_space_accounting(
    const mpc::Metrics& metrics, std::uint64_t machine_space) const {
  std::uint64_t checked = 1;
  if (metrics.peak_machine_load() > machine_space) {
    Witness w;
    w.kind = "machine";
    w.measured = static_cast<double>(metrics.peak_machine_load());
    w.bound = static_cast<double>(machine_space);
    w.detail = "peak machine load " +
               std::to_string(metrics.peak_machine_load()) +
               " exceeds machine space " + std::to_string(machine_space);
    return fail(Claim::kSpaceAccounting, checked, std::move(w));
  }
  std::uint64_t label_index = 0;
  for (const auto& [label, peak] : metrics.peak_load_by_label()) {
    ++checked;
    if (peak > machine_space) {
      Witness w;
      w.kind = "label";
      w.index = label_index;
      w.measured = static_cast<double>(peak);
      w.bound = static_cast<double>(machine_space);
      w.detail = "peak load of phase '" + label + "' (" +
                 std::to_string(peak) + ") exceeds machine space " +
                 std::to_string(machine_space);
      return fail(Claim::kSpaceAccounting, checked, std::move(w));
    }
    ++label_index;
  }
  return pass(Claim::kSpaceAccounting, checked);
}

ClaimResult Certifier::check_metrics_consistency(
    const mpc::Metrics& metrics) const {
  std::uint64_t checked = 0;
  std::uint64_t label_rounds = 0;
  for (const auto& [label, rounds] : metrics.rounds_by_label()) {
    label_rounds += rounds;
    ++checked;
  }
  if (label_rounds > metrics.rounds()) {
    Witness w;
    w.kind = "label";
    w.measured = static_cast<double>(label_rounds);
    w.bound = static_cast<double>(metrics.rounds());
    w.detail = "per-label round charges sum to " +
               std::to_string(label_rounds) + " > total rounds " +
               std::to_string(metrics.rounds());
    return fail(Claim::kMetricsConsistency, checked, std::move(w));
  }
  std::uint64_t label_comm = 0;
  for (const auto& [label, words] : metrics.communication_by_label()) {
    label_comm += words;
    ++checked;
  }
  if (label_comm > metrics.total_communication()) {
    Witness w;
    w.kind = "label";
    w.measured = static_cast<double>(label_comm);
    w.bound = static_cast<double>(metrics.total_communication());
    w.detail = "per-label communication sums to " +
               std::to_string(label_comm) + " > total communication " +
               std::to_string(metrics.total_communication());
    return fail(Claim::kMetricsConsistency, checked, std::move(w));
  }
  std::uint64_t label_index = 0;
  for (const auto& [label, peak] : metrics.peak_load_by_label()) {
    ++checked;
    if (peak > metrics.peak_machine_load()) {
      Witness w;
      w.kind = "label";
      w.index = label_index;
      w.measured = static_cast<double>(peak);
      w.bound = static_cast<double>(metrics.peak_machine_load());
      w.detail = "peak load of phase '" + label +
                 "' exceeds the global peak load";
      return fail(Claim::kMetricsConsistency, checked, std::move(w));
    }
    ++label_index;
  }
  return pass(Claim::kMetricsConsistency, checked);
}

ClaimResult Certifier::replay_claim(bool identical, std::uint64_t compared,
                                    std::uint64_t diff_index,
                                    const std::string& detail) {
  if (identical) return pass(Claim::kReplayIdentity, compared);
  Witness w;
  w.kind = "position";
  w.index = diff_index;
  w.detail = detail;
  return fail(Claim::kReplayIdentity, compared, std::move(w));
}

ClaimResult Certifier::check_storage_integrity(
    const mpc::IntegrityReport& report) {
  switch (report.status) {
    case mpc::IntegrityReport::Status::kVerified:
      return pass(Claim::kStorageIntegrity, report.shards_checked);
    case mpc::IntegrityReport::Status::kUnverified:
      return skipped(Claim::kStorageIntegrity);
    case mpc::IntegrityReport::Status::kFailed:
      break;
  }
  Witness w;
  w.kind = report.bad_shard == mpc::kManifestShard ? "manifest" : "shard";
  w.index = report.bad_shard == mpc::kManifestShard ? 0 : report.bad_shard;
  w.detail = report.detail;
  return fail(Claim::kStorageIntegrity, report.shards_checked, std::move(w));
}

ClaimResult Certifier::skipped(Claim claim) {
  ClaimResult result;
  result.claim = claim;
  result.verdict = Verdict::kSkipped;
  return result;
}

void Certifier::require(const Certificate& certificate) {
  if (!certificate.ok()) throw CertificationError(certificate);
}

}  // namespace dmpc::verify
