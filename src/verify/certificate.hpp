// Typed certificates for solver answers.
//
// The theorems under reproduction (Theorems 7/14, Corollaries 8/15/16, the
// §3.2/§4.2 sparsification invariants) are proved properties, but a
// production solve should not ask the caller to trust the proof transcript:
// in checked mode every answer carries a machine-checkable Certificate — a
// list of per-claim verdicts, each backed by a concrete witness when it
// fails (the violating node/edge/iteration and the measured-vs-bound
// values). A failed certificate surfaces as a typed CertificationError,
// never a silent bad answer.
//
// This layer depends only on graph/exec/mpc-metrics/support; the api layer
// consumes it (SolveOptions::certify, report JSON schema v3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace dmpc::verify {

/// How much certification a solve runs (SolveOptions::certify).
enum class CertifyMode : std::uint8_t {
  kOff,     ///< No certification (zero cost).
  kAnswer,  ///< Certify the answer itself + space accounting.
  kFull,    ///< kAnswer + sparsifier invariants, metrics consistency, and
            ///< replay identity under an active fault plan.
};

const char* certify_mode_name(CertifyMode mode);

/// Every property a Certificate can speak to. Stable names via claim_name().
enum class Claim : std::uint8_t {
  kMisIndependence = 1,   ///< No two set members adjacent.
  kMisMaximality,         ///< Every non-member has a member neighbor.
  kMatchingValidity,      ///< No two matching edges share an endpoint.
  kMatchingMaximality,    ///< Every edge has a matched endpoint.
  kProperColoring,        ///< Adjacent nodes differ.
  kDistance2Coloring,     ///< Nodes at distance <= 2 differ (§5.1).
  kSparsifierDegreeCap,   ///< Max sparsified degree <= 2 n^{4 delta}.
  kSparsifierInvariants,  ///< §3.2/§4.2 measured ratios within bounds.
  kSpaceAccounting,       ///< peak_load <= machine_space.
  kMetricsConsistency,    ///< Per-label charges consistent with totals.
  kReplayIdentity,        ///< Faulted run == fault-free replay, bytewise.
  kStorageIntegrity,      ///< Backend shard checksums match the manifest.
};

const char* claim_name(Claim claim);

enum class Verdict : std::uint8_t {
  kPass,
  kFail,
  kSkipped,  ///< Claim not applicable to this run (recorded, not checked).
};

const char* verdict_name(Verdict verdict);

/// The concrete counterexample behind a kFail verdict: which object violates
/// the claim and the measured-vs-bound values, so a failure is actionable
/// without re-running anything.
struct Witness {
  /// What `index` refers to: "node", "edge", "iteration", "label", "round".
  std::string kind;
  std::uint64_t index = 0;
  /// Endpoints when the witness is an edge (canonical u < v); for a node
  /// witness, u is the node and v its offending neighbor.
  std::uint64_t u = 0;
  std::uint64_t v = 0;
  double measured = 0.0;  ///< The violating quantity.
  double bound = 0.0;     ///< The bound it violates.
  std::string detail;     ///< One-line human description.
};

struct ClaimResult {
  Claim claim = Claim::kMisIndependence;
  Verdict verdict = Verdict::kSkipped;
  std::uint64_t checked = 0;  ///< Objects examined (0 when skipped).
  bool has_witness = false;   ///< True iff verdict == kFail.
  Witness witness;
};

/// Version of the serialized certificate block inside report JSON.
inline constexpr std::uint32_t kCertificateSchemaVersion = 1;

/// The outcome of certifying one solve: per-claim verdicts in a fixed
/// claim-enum order (deterministic across runs and thread counts).
struct Certificate {
  CertifyMode mode = CertifyMode::kOff;
  std::vector<ClaimResult> claims;

  bool empty() const { return claims.empty(); }

  /// True when no claim failed (skipped claims do not fail a certificate).
  bool ok() const;

  std::uint64_t failures() const;

  /// The first failing claim, or nullptr when ok().
  const ClaimResult* first_failure() const;

  /// One line: "certificate ok: 5 claims (4 passed, 1 skipped)" or
  /// "certificate FAILED: <claim>: <witness detail>".
  std::string summary() const;
};

/// Aggregated sparsification evidence for one solve: worst-case stage
/// measurements across all outer iterations, checked by the Certifier
/// against the §3.2/§4.2 bounds in full mode.
struct SparsifyAudit {
  std::uint64_t iterations = 0;  ///< Outer iterations aggregated.
  std::uint64_t stages = 0;      ///< Total sparsifier stages run.
  std::uint32_t max_degree = 0;  ///< Max degree inside any E*/Q'.
  std::uint64_t degree_cap = 0;  ///< The 2 n^{4 delta} cap (0 = not set).
  /// Max over stages of invariant (i): d_Ej(v) / (n^{-j delta} d_E0(v) +
  /// n^{3 delta}).
  double worst_degree_ratio = 0.0;
  /// Min over stages of invariant (ii): |X(v) ∩ E_j| / (n^{-j delta}
  /// |X(v)|). 2.0 is the "nothing measurable" sentinel.
  double worst_xv_ratio = 2.0;
  double max_window_multiplier = 0.0;

  /// Fold one iteration's stage measurements into the aggregate.
  void absorb_stage(double degree_ratio, double xv_ratio,
                    double window_multiplier, std::uint32_t stage_max_degree);
};

/// A certificate with at least one failing claim, thrown by checked-mode
/// solves (and Certifier::require). Derives from CheckFailure so existing
/// catch sites keep working; the full certificate rides along so callers
/// can serialize the witness.
class CertificationError : public CheckFailure {
 public:
  explicit CertificationError(Certificate certificate)
      : CheckFailure(certificate.summary()),
        certificate_(std::move(certificate)) {}

  const Certificate& certificate() const { return certificate_; }

 private:
  Certificate certificate_;
};

}  // namespace dmpc::verify
