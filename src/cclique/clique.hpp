// The CONGESTED CLIQUE model (paper §1.1.2).
//
// n nodes on a complete communication graph; per round every node may send
// a distinct O(log n)-bit message to every other node. Lenzen's routing
// theorem lets any instance where each node sends and receives at most n
// messages be delivered in O(1) rounds; we expose it as a charged primitive.
// As with the MPC simulator, algorithms execute centrally while rounds and
// message volumes are charged faithfully — those are the quantities
// Corollary 2 bounds.
#pragma once

#include <cstdint>
#include <string>

#include "mpc/metrics.hpp"
#include "support/check.hpp"

namespace dmpc::cclique {

class CongestedClique {
 public:
  explicit CongestedClique(std::uint64_t n) : n_(n) {
    DMPC_CHECK(n >= 1);
  }

  std::uint64_t nodes() const { return n_; }

  mpc::Metrics& metrics() { return metrics_; }
  const mpc::Metrics& metrics() const { return metrics_; }

  /// Charge r synchronous all-to-all rounds.
  void charge_rounds(std::uint64_t r, const std::string& label) {
    metrics_.charge_rounds(r, label);
    metrics_.add_communication(r * n_ * n_, label);
  }

  /// Lenzen routing: any send/receive-balanced instance of `messages`
  /// messages in O(1) rounds. Each node's share must be <= n.
  void charge_lenzen_routing(std::uint64_t messages, const std::string& label) {
    DMPC_CHECK_MSG(messages <= n_ * n_,
                   label << ": routing instance exceeds clique bandwidth");
    metrics_.charge_rounds(2, label);
    metrics_.add_communication(messages, label);
  }

  /// Per-node memory check: in CONGESTED CLIQUE a node may hold O(n) words
  /// (the model's implicit bound used by [15]-style algorithms).
  void check_node_memory(std::uint64_t words, const std::string& label) const {
    DMPC_CHECK_MSG(words <= 4 * n_,
                   label << ": node memory " << words << " exceeds O(n)");
  }

 private:
  std::uint64_t n_;
  mpc::Metrics metrics_;
};

}  // namespace dmpc::cclique
