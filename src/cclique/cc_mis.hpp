// Deterministic MIS and maximal matching in CONGESTED CLIQUE (Corollary 2).
//
// cc_mis: O(log Delta) rounds. Every node holds O(n) words, so with
// Delta <= n^{1/3} a node collects its 2-hop neighborhood in O(1) rounds
// (Lenzen routing) and the §5 phase-compression machinery applies with
// l = Theta(log_Delta n) phases per O(1)-round stage -> O(log Delta) stages.
// For larger Delta, l degrades gracefully to 1 and the bound becomes
// O(log n) = O(log Delta) (Delta = n^{Omega(1)}).
//
// cc_mis_censor_hillel: the prior state of the art [15]-style baseline —
// one Luby phase derandomized per step, the O(log n)-bit seed agreed
// bit-by-bit by voting (O(1) rounds per bit), i.e. Theta(log n) rounds per
// phase and O(log Delta * log n) rounds total. Reproduced for E7.
#pragma once

#include <cstdint>
#include <vector>

#include "cclique/clique.hpp"
#include "graph/graph.hpp"
#include "mpc/metrics.hpp"

namespace dmpc::cclique {

struct CcMisConfig {
  std::uint64_t sequence_budget = 64;
  std::uint64_t per_phase_cap = 1024;
  std::uint32_t max_phases = 8;
  std::uint64_t max_stages = 100000;
};

struct CcMisResult {
  std::vector<bool> in_set;
  std::uint64_t stages = 0;
  std::uint32_t phases_per_stage = 0;
  mpc::Metrics metrics;
};

/// Our O(log Delta)-round deterministic MIS.
CcMisResult cc_mis(const graph::Graph& g, const CcMisConfig& config = {});

/// Baseline: [15]-style O(log Delta log n)-round deterministic MIS.
CcMisResult cc_mis_censor_hillel(const graph::Graph& g,
                                 const CcMisConfig& config = {});

/// Maximal matching via MIS on the line graph (valid when the line graph's
/// degree O(Delta) admits the 2-hop collection, i.e. Delta = O(n^{1/3})).
struct CcMatchingResult {
  std::vector<graph::EdgeId> matching;
  CcMisResult mis;
};
CcMatchingResult cc_matching(const graph::Graph& g,
                             const CcMisConfig& config = {});

}  // namespace dmpc::cclique
