#include "cclique/cc_mis.hpp"

#include <algorithm>
#include <cmath>

#include "graph/transforms.hpp"
#include "graph/validate.hpp"
#include "hash/small_family.hpp"
#include "lowdeg/coloring.hpp"
#include "lowdeg/phase_compression.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace dmpc::cclique {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

namespace {

std::uint32_t cc_phases(const CcMisConfig& config, std::uint64_t n,
                        std::uint32_t max_degree) {
  // Per-node memory is O(n): l = floor(log n / (2 log Delta)), clamped.
  const double log_n = std::log(static_cast<double>(std::max<std::uint64_t>(n, 4)));
  const double log_d =
      std::log(static_cast<double>(std::max<std::uint32_t>(max_degree, 2)));
  const auto l = static_cast<std::uint32_t>(std::floor(log_n / (2.0 * log_d)));
  return std::clamp<std::uint32_t>(l, 1, config.max_phases);
}

/// Shared stage loop; `rounds_per_stage` distinguishes ours (O(1)) from the
/// [15]-style baseline (Theta(log n) per Luby phase, i.e. per stage of 1).
CcMisResult run_cc_mis(const Graph& g, const CcMisConfig& config,
                       std::uint32_t phases, std::uint64_t rounds_per_stage,
                       const std::string& label) {
  CongestedClique cc(std::max<std::uint64_t>(g.num_nodes(), 1));
  CcMisResult result;
  result.in_set.assign(g.num_nodes(), false);
  result.phases_per_stage = phases;
  if (g.num_nodes() == 0) return result;
  std::vector<bool> alive(g.num_nodes(), true);

  if (g.num_edges() > 0) {
    // Preprocessing. With Delta^2 = O(n), a node collects its 2-hop
    // neighborhood in O(1) rounds (Lenzen) and a distance-2 coloring gives
    // O(log Delta)-bit per-phase seeds with l > 1 compressed phases. For
    // larger Delta (the Delta = omega(n^{1/3}) regime of Corollary 2) the
    // 2-hop ball exceeds node memory; there log Delta = Theta(log n), so
    // phases use node ids directly as "colors" (O(log n)-bit seeds) with
    // l = 1, and the O(log n) = O(log Delta) stage bound still holds.
    const std::uint64_t two_hop =
        static_cast<std::uint64_t>(g.max_degree()) *
        std::max<std::uint32_t>(g.max_degree(), 1);
    const bool can_gather_two_hop = two_hop <= 4 * cc.nodes();
    std::vector<std::uint32_t> color(g.num_nodes());
    std::uint32_t num_colors;
    if (can_gather_two_hop) {
      cc.check_node_memory(two_hop, label + "/2hop");
      cc.charge_lenzen_routing(std::min<std::uint64_t>(
                                   2 * g.num_edges() * g.max_degree(),
                                   cc.nodes() * cc.nodes()),
                               label + "/2hop");
      const auto coloring = lowdeg::distance2_coloring_raw(g);
      cc.charge_rounds(std::max<std::uint32_t>(coloring.reduction_steps, 1),
                       label + "/coloring");
      color = coloring.color;
      num_colors = coloring.num_colors;
    } else {
      phases = 1;
      result.phases_per_stage = 1;
      for (NodeId v = 0; v < g.num_nodes(); ++v) color[v] = v;
      num_colors = std::max<NodeId>(g.num_nodes(), 1);
    }

    hash::SmallFamily family(std::max<std::uint32_t>(num_colors, 2));
    hash::FunctionSequence sequence(family, phases, config.per_phase_cap);

    while (graph::alive_edge_count(g, alive) > 0) {
      DMPC_CHECK_MSG(result.stages < config.max_stages, "stage cap exceeded");
      // Stage body reuses the §5 machinery; only the round charge differs
      // between the two algorithms, so charge on the clique directly.
      EdgeId best_after = 0;
      std::vector<NodeId> best_set;
      bool have = false;
      const std::uint64_t limit =
          std::min<std::uint64_t>(config.sequence_budget,
                                  sequence.sequence_count());
      for (std::uint64_t t = 0; t < limit; ++t) {
        const auto joined = lowdeg::simulate_stage(
            g, alive, color, sequence, sequence.diverse(t));
        std::vector<bool> live = alive;
        for (NodeId v : joined) {
          live[v] = false;
          for (NodeId u : g.neighbors(v)) live[u] = false;
        }
        const EdgeId after = graph::alive_edge_count(g, live);
        if (!have || after < best_after) {
          have = true;
          best_after = after;
          best_set = joined;
        }
      }
      DMPC_CHECK_MSG(have && !best_set.empty(), "CC stage made no progress");
      for (NodeId v : best_set) {
        result.in_set[v] = true;
        alive[v] = false;
        for (NodeId u : g.neighbors(v)) alive[u] = false;
      }
      cc.charge_rounds(rounds_per_stage, label + "/stage");
      ++result.stages;
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive[v]) result.in_set[v] = true;
  }
  DMPC_CHECK(graph::is_maximal_independent_set(g, result.in_set));
  result.metrics = cc.metrics();
  return result;
}

}  // namespace

CcMisResult cc_mis(const Graph& g, const CcMisConfig& config) {
  const std::uint32_t phases = cc_phases(config, g.num_nodes(), g.max_degree());
  // One stage = one candidate-evaluation + aggregation + ball update: O(1).
  return run_cc_mis(g, config, phases, /*rounds_per_stage=*/3, "cc_mis");
}

CcMisResult cc_mis_censor_hillel(const Graph& g, const CcMisConfig& config) {
  // Baseline: one Luby phase per derandomization step, seed fixed by
  // bit-by-bit voting over its Theta(log n) bits — Theta(log n) rounds per
  // phase (paper §1.1.2 / [15]).
  const auto seed_bits = static_cast<std::uint64_t>(
      2 * ceil_log2(std::max<std::uint64_t>(g.num_nodes(), 4)));
  return run_cc_mis(g, config, /*phases=*/1,
                    /*rounds_per_stage=*/seed_bits, "cc_baseline");
}

CcMatchingResult cc_matching(const Graph& g, const CcMisConfig& config) {
  CcMatchingResult result;
  if (g.num_edges() == 0) return result;
  const Graph lg = graph::line_graph(g);
  result.mis = cc_mis(lg, config);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (result.mis.in_set[e]) result.matching.push_back(e);
  }
  DMPC_CHECK(graph::is_maximal_matching(g, result.matching));
  return result;
}

}  // namespace dmpc::cclique
