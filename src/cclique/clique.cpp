#include "cclique/clique.hpp"

// Header-only model; this translation unit anchors the module.
