#include "sparsify/degree_classes.hpp"

namespace dmpc::sparsify {

DegreeClasses classify(const Params& params,
                       const std::vector<std::uint32_t>& degrees) {
  DegreeClasses out;
  out.class_of.resize(degrees.size());
  out.degree_mass.assign(params.inv_delta + 1, 0);
  for (std::size_t v = 0; v < degrees.size(); ++v) {
    const std::uint32_t i = params.class_of_degree(degrees[v]);
    out.class_of[v] = i;
    if (i > 0) out.degree_mass[i] += degrees[v];
  }
  return out;
}

}  // namespace dmpc::sparsify
