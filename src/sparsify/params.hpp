// Parameters shared by the sparsification pipeline (§3, §4).
//
// The paper fixes a constant delta with 1/delta integral (delta = eps/8 in
// the final theorems) and measures everything in powers n^{delta}:
// degree classes C_i = [n^{(i-1)delta}, n^{i delta}), per-stage sampling
// probability n^{-delta}, machine-group size n^{4 delta}, and the final
// degree cap O(n^{4 delta}). `n` is the node count of the ORIGINAL input
// graph and stays fixed across iterations (S is provisioned against it).
#pragma once

#include <cmath>
#include <cstdint>

#include "support/check.hpp"

namespace dmpc::sparsify {

struct Params {
  std::uint64_t n = 0;       ///< Original node count.
  std::uint32_t inv_delta = 8;  ///< 1/delta (integer per the paper).

  double delta() const { return 1.0 / static_cast<double>(inv_delta); }

  /// n^{x * delta} as a real.
  double pow_nd(double x) const {
    return std::pow(static_cast<double>(n), x * delta());
  }

  /// Per-stage sampling probability n^{-delta}.
  double sample_probability() const { return 1.0 / pow_nd(1.0); }

  /// Machine-group size n^{4 delta}, at least 1.
  std::uint64_t group_size() const {
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(pow_nd(4.0)));
  }

  /// Degree cap for the sparsified subgraph, 2 n^{4 delta} (§3.3 / §4.3).
  std::uint64_t degree_cap() const {
    return std::max<std::uint64_t>(2, static_cast<std::uint64_t>(2.0 * pow_nd(4.0)));
  }

  /// Degree class of a positive degree: the i in [1, 1/delta] with
  /// n^{(i-1)delta} <= d < n^{i delta}; degrees >= n are clamped to the top
  /// class. Degree 0 returns 0 (no class).
  std::uint32_t class_of_degree(std::uint64_t d) const {
    if (d == 0) return 0;
    DMPC_CHECK(n >= 2);
    const double log_ratio =
        std::log(static_cast<double>(d)) / std::log(static_cast<double>(n));
    auto i = static_cast<std::uint32_t>(std::floor(log_ratio / delta())) + 1;
    return std::min(i, inv_delta);
  }

  /// Lower degree bound of class i: n^{(i-1) delta}.
  double class_lower(std::uint32_t i) const {
    DMPC_CHECK(i >= 1 && i <= inv_delta);
    return pow_nd(static_cast<double>(i - 1));
  }

  /// Number of sparsification stages for class i: max(0, i - 4) (§3.2).
  std::uint32_t stages_for_class(std::uint32_t i) const {
    return i <= 4 ? 0 : i - 4;
  }
};

}  // namespace dmpc::sparsify
