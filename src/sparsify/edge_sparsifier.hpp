// Deterministic edge sparsification (§3.2): from E_0 to E* in O(1) stages.
//
// Stage j sub-samples E_{j-1} at rate n^{-delta} using a c-wise independent
// hash on edge ids, derandomized so that every "machine" (a chunk of one
// node's incident edge list, group size n^{4 delta}) is *good*: its kept
// count lands within a concentration window around the expectation
// (paper: e_x n^{-delta} ± n^{0.1 delta} sqrt(e_x)). Type-A machines
// (all incident edges) make the degree upper bound (Invariant (i),
// Lemma 10); type-B machines (the X(v) lists of good nodes) make the
// lower bound (Invariant (ii), Lemma 11). After max(0, i-4) stages every
// degree in E* is O(n^{4 delta}) and 2-hop neighborhoods fit on a machine.
//
// Finite-n adaptation (documented in DESIGN.md §2.3): the paper's window is
// sized for asymptotic union bounds. We start from the paper's formula
// scaled by `slack_factor` and, if no seed in the search budget makes all
// machines good (possible only at small n where the window is narrower than
// the binomial spread), deterministically double the window and retry. The
// committed seed always makes every machine good *for the window actually
// used*, which is what the Lemma 10/11 algebra consumes; the per-stage
// report records the window so experiments (E4) can compare measured
// degrees against the paper-form bound.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/cluster.hpp"
#include "sparsify/good_nodes.hpp"
#include "sparsify/params.hpp"

namespace dmpc::sparsify {

struct SparsifyConfig {
  double slack_factor = 3.0;          ///< Multiplier on the paper's window.
  std::uint32_t max_escalations = 16; ///< Window doublings before giving up.
  std::uint64_t trials_per_window = 64;  ///< Seeds tried per window size.
  unsigned hash_k = 4;                ///< Independence degree c.
  std::uint32_t extra_stage_cap = 16; ///< Extra stages if degrees above cap.
};

struct StageReport {
  std::uint32_t stage = 0;           ///< 1-based stage index j.
  std::uint64_t seed = 0;
  std::uint64_t trials = 0;          ///< Seeds evaluated in this stage.
  double window_multiplier = 1.0;    ///< Final slack multiplier used.
  std::uint64_t machines = 0;        ///< Chunks checked for goodness.
  graph::EdgeId edges_before = 0;
  graph::EdgeId edges_after = 0;
  std::uint32_t max_degree_after = 0;
  /// Measured invariant (i) head-room: max_v d_{E_j}(v) /
  /// (n^{-j delta} d_{E_0}(v) + n^{3 delta}).
  double invariant_degree_ratio = 0.0;
  /// Measured invariant (ii): min_{v in B, X(v) nonempty}
  /// |X(v) ∩ E_j| / (n^{-j delta} |X(v)|).
  double invariant_xv_ratio = 0.0;
};

struct EdgeSparsifyResult {
  std::vector<bool> in_Estar;        ///< Edge mask of E* over g.num_edges().
  std::vector<StageReport> stages;
  std::uint32_t max_degree = 0;      ///< Max degree within E*.
  /// X(v) ∩ E* lists for v in B (aligned with the good set's xv).
  std::vector<std::vector<graph::EdgeId>> xv_star;
};

/// Run §3.2 on the chosen good set. `good.in_E0`/`good.xv` define E_0; the
/// result's mask is a subset of it.
EdgeSparsifyResult sparsify_edges(mpc::Cluster& cluster, const Params& params,
                                  const graph::Graph& g,
                                  const MatchingGoodSet& good,
                                  const SparsifyConfig& config);

}  // namespace dmpc::sparsify
