// Degree classes C_i (§3, §4): nodes bucketed by degree into 1/delta
// geometric bands so that nodes within one band behave alike under
// n^{-delta}-rate sub-sampling.
#pragma once

#include <cstdint>
#include <vector>

#include "sparsify/params.hpp"

namespace dmpc::sparsify {

struct DegreeClasses {
  /// Per-node class index in [1, 1/delta]; 0 for degree-0 nodes.
  std::vector<std::uint32_t> class_of;
  /// Per-class total degree mass sum_{v in C_i} d(v) (index 0 unused).
  std::vector<std::uint64_t> degree_mass;
};

DegreeClasses classify(const Params& params,
                       const std::vector<std::uint32_t>& degrees);

}  // namespace dmpc::sparsify
