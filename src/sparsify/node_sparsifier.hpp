// Deterministic node sparsification (§4.2): from Q_0 to Q' in O(1) stages.
//
// Stage j sub-samples Q_{j-1} at rate n^{-delta} by hashing *node* ids.
// Type-Q machines (chunks of each Q-node's Q-neighbor list) enforce the
// degree upper bound (Invariant (i), Lemma 17); type-B machines (chunks of
// each B-node's Q-neighbor list, weighted by 1/d(u)) enforce the harmonic
// lower bound sum_{u in Q_j ~ v} 1/d(u) >= (delta - o(1)) / (3 n^{delta j})
// (Invariant (ii), Lemma 18). Same finite-n window adaptation as the edge
// sparsifier (see edge_sparsifier.hpp / DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/cluster.hpp"
#include "sparsify/edge_sparsifier.hpp"  // SparsifyConfig, StageReport
#include "sparsify/good_nodes.hpp"
#include "sparsify/params.hpp"

namespace dmpc::sparsify {

struct NodeSparsifyResult {
  std::vector<bool> in_Qprime;        ///< Node mask of Q'.
  std::vector<StageReport> stages;
  std::uint32_t max_q_degree = 0;     ///< Max degree inside Q'.
};

/// Run §4.2 on the chosen good set; `alive` masks the current graph.
NodeSparsifyResult sparsify_nodes(mpc::Cluster& cluster, const Params& params,
                                  const graph::Graph& g,
                                  const std::vector<bool>& alive,
                                  const MisGoodSet& good,
                                  const SparsifyConfig& config);

}  // namespace dmpc::sparsify
