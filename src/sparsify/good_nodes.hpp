// Good-node selection (§3.1 for matching, §4.1 for MIS).
//
// Matching: X = {v : at least d(v)/3 neighbors u have d(u) <= d(v)}
// (Lemma 3 gives sum_{v in X} d(v) >= |E|/2). B = C_i ∩ X for the class i
// maximizing the degree mass (Corollary 8: >= (delta/2)|E|). E_0 is the
// union of the X(v) = {{u,v} : d(u) <= d(v)} over v in B.
//
// MIS: A = {v : sum_{u~v} 1/d(u) >= 1/3} (Corollary 15); B_i = {v :
// sum_{u in C_i ~ v} 1/d(u) >= delta/3}; i maximizes sum_{v in B_i} d(v)
// (Corollary 16: >= (delta/2)|E|); Q_0 = C_i.
//
// All selections run on the *alive* subgraph of the current iteration; the
// MPC cost is a constant number of Lemma-4 sorts/scans (§3.1), charged here.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/cluster.hpp"
#include "sparsify/params.hpp"

namespace dmpc::sparsify {

/// Result of the matching-side selection.
struct MatchingGoodSet {
  std::uint32_t cls = 0;          ///< Chosen class i.
  std::vector<bool> in_B;         ///< v in B = C_i ∩ X.
  std::vector<bool> in_E0;        ///< Edge mask of E_0 (over g.num_edges()).
  /// X(v) edge lists for v in B (empty vectors elsewhere).
  std::vector<std::vector<graph::EdgeId>> xv;
  std::uint64_t b_degree_mass = 0;  ///< sum_{v in B} d(v).
  graph::EdgeId alive_edges = 0;    ///< |E| of the alive subgraph.
};

MatchingGoodSet select_matching_good_set(mpc::Cluster& cluster,
                                         const Params& params,
                                         const graph::Graph& g,
                                         const std::vector<bool>& alive);

/// Result of the MIS-side selection.
struct MisGoodSet {
  std::uint32_t cls = 0;        ///< Chosen class i.
  std::vector<bool> in_B;       ///< v in B_i.
  std::vector<bool> in_Q0;      ///< v in Q_0 = C_i.
  std::uint64_t b_degree_mass = 0;
  graph::EdgeId alive_edges = 0;
};

MisGoodSet select_mis_good_set(mpc::Cluster& cluster, const Params& params,
                               const graph::Graph& g,
                               const std::vector<bool>& alive);

}  // namespace dmpc::sparsify
