#include "sparsify/edge_sparsifier.hpp"

#include <algorithm>
#include <cmath>

#include "derand/seed_search.hpp"
#include "hash/kwise.hpp"
#include "mpc/distribution.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/logging.hpp"

namespace dmpc::sparsify {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

namespace {

// A per-owner goodness window over the flat item array. Type-A owners
// (every node's incident list) carry an upper bound on the kept count —
// that is the quantity Lemma 10 sums into Invariant (i). Type-B owners
// (X(v) lists of good nodes) carry a lower bound — Lemma 11 / Invariant
// (ii). The owner total is the sum over the owner's group machines, one
// Lemma-4 aggregation away, so evaluating per owner costs the same O(1)
// rounds as per machine.
enum class Side { kUpper, kLower, kBoth };

struct OwnerWindow {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  Side side = Side::kUpper;
  std::uint64_t count() const { return end - begin; }
};

struct WindowSet {
  std::vector<EdgeId> items;
  std::vector<OwnerWindow> owners;
};

// Window half-width for a list of `count` items kept independently with
// probability q: mult * (binomial sigma + 1). The paper's asymptotic form
// n^{0.1 delta} sqrt(e_x) is strictly wider for large n (it absorbs the
// weaker tails of c-wise independence); the binomial form is the right
// scale at finite n and makes the window actually bite — see DESIGN.md.
double half_width(double q, double mult, std::uint64_t count) {
  const double sigma =
      std::sqrt(static_cast<double>(count) * q * (1.0 - q));
  return mult * (sigma + 1.0);
}

void set_window(OwnerWindow& w, double q, double mult) {
  const double mean = q * static_cast<double>(w.count());
  const double slack = half_width(q, mult, w.count());
  if (w.side == Side::kLower) {
    w.lo = 0;
    w.hi = w.count();
  } else {
    w.hi = static_cast<std::uint64_t>(std::min<double>(
        static_cast<double>(w.count()), std::ceil(mean + slack)));
  }
  if (w.side == Side::kUpper) {
    w.lo = 0;
  } else {
    const double lo_real = mean - slack;
    w.lo = lo_real <= 0 ? 0 : static_cast<std::uint64_t>(std::floor(lo_real));
  }
}

/// Objective: number of good owners under the hash seed (threshold = all).
//
// Range form: the flat item array is the bound point universe (EdgeId is
// already 64-bit), so each candidate seed costs one lane-parallel PowerTable
// sweep and a branchy-but-hash-free window scan over the precomputed raw
// values. Windows are read by pointer: the escalation loop rewrites lo/hi in
// place without rebuilding the table (the item universe never changes within
// a stage).
class StageObjective final : public derand::RangeObjective {
 public:
  StageObjective(const hash::KWiseFamily& family, std::uint64_t cutoff,
                 const WindowSet& windows)
      : cutoff_(cutoff), windows_(&windows) {
    bind_points(family, windows.items.data(), windows.items.size());
  }

  double accumulate_terms(std::uint64_t range_begin, std::uint64_t range_end,
                          std::uint64_t /*seed*/,
                          const std::uint64_t* values) const override {
    std::uint64_t good = 0;
    for (std::uint64_t o = range_begin; o < range_end; ++o) {
      const OwnerWindow& w = windows_->owners[o];
      std::uint64_t kept = 0;
      for (std::uint64_t idx = w.begin; idx < w.end; ++idx) {
        if (values[idx] < cutoff_) ++kept;
      }
      if (kept >= w.lo && kept <= w.hi) ++good;
    }
    return static_cast<double>(good);
  }

  std::uint64_t range_count() const override { return windows_->owners.size(); }
  std::uint64_t term_count() const override { return windows_->owners.size(); }

 private:
  std::uint64_t cutoff_;
  const WindowSet* windows_;
};

void append_owner(WindowSet& set, const std::vector<EdgeId>& owner_items,
                  double q, double mult, Side side) {
  if (owner_items.empty()) return;
  OwnerWindow w;
  w.begin = set.items.size();
  set.items.insert(set.items.end(), owner_items.begin(), owner_items.end());
  w.end = set.items.size();
  w.side = side;
  set_window(w, q, mult);
  set.owners.push_back(w);
}

}  // namespace

EdgeSparsifyResult sparsify_edges(mpc::Cluster& cluster, const Params& params,
                                  const Graph& g, const MatchingGoodSet& good,
                                  const SparsifyConfig& config) {
  EdgeSparsifyResult result;
  result.in_Estar = good.in_E0;
  result.xv_star = good.xv;

  const std::uint32_t planned = params.stages_for_class(good.cls);
  const std::uint64_t group = params.group_size();
  const double q = params.sample_probability();
  const double nd3 = params.pow_nd(3.0);

  // Baselines for the invariant measurements.
  const auto deg_e0 = graph::masked_degrees(g, good.in_E0, cluster.executor());
  std::vector<std::uint64_t> xv0_size(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) xv0_size[v] = good.xv[v].size();

  const std::uint64_t domain = std::max<std::uint64_t>(2, g.num_edges());
  hash::KWiseFamily family(domain, domain, config.hash_k);
  const auto cutoff = static_cast<std::uint64_t>(
      q * static_cast<double>(family.p()));

  std::uint32_t stage = 0;
  std::uint32_t extra_used = 0;
  while (true) {
    const bool planned_stage = stage < planned;
    if (!planned_stage) {
      // §3.3 requires degrees <= 2 n^{4 delta} in E*; at finite n the
      // window slack can leave an overshoot, fixed by extra stages.
      const auto deg_now = graph::masked_degrees(g, result.in_Estar, cluster.executor());
      const std::uint32_t max_deg =
          *std::max_element(deg_now.begin(), deg_now.end());
      if (max_deg <= params.degree_cap() ||
          extra_used >= config.extra_stage_cap) {
        break;
      }
      ++extra_used;
    }
    ++stage;
    // Each stage rewrites the survivor set from the previous one, so it is a
    // recovery-safe boundary for phase-granularity checkpoints.
    cluster.mark_phase("sparsify/stage", g.num_edges());
    obs::Span stage_span(cluster.trace(), "sparsify/stage");
    stage_span.arg("stage", static_cast<std::uint64_t>(stage));

    // --- Distribute: type-A machine groups (every node's incident E_{j-1}
    // list, upper windows) and type-B groups (X(v) ∩ E_{j-1} for v in B,
    // lower windows). ---
    WindowSet windows;
    std::vector<std::uint64_t> counts(g.num_nodes(), 0);
    double mult = config.slack_factor;
    {
      std::vector<std::vector<EdgeId>> incident(g.num_nodes());
      std::vector<EdgeId> all_edges;
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (!result.in_Estar[e]) continue;
        incident[g.edge(e).u].push_back(e);
        incident[g.edge(e).v].push_back(e);
        all_edges.push_back(e);
      }
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        counts[v] = incident[v].size();
        append_owner(windows, incident[v], q, mult, Side::kUpper);
      }
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (good.in_B[v]) {
          append_owner(windows, result.xv_star[v], q, mult, Side::kLower);
        }
      }
      // Global window (one Lemma-4 aggregation): the total kept count must
      // track q * |E_{j-1}|. At finite n the per-owner windows can all be
      // trivially wide (counts of a few dozen admit no non-trivial
      // satisfiable window), and without this constraint the degenerate
      // all-keep / all-drop polynomials would count as good; the global
      // window rejects them and guarantees per-stage progress.
      append_owner(windows, all_edges, q, mult, Side::kBoth);
    }
    mpc::build_machine_groups(cluster, counts, group, /*arity=*/2,
                              "sparsify/distribute");

    // --- Derandomize the stage with adaptive window escalation. ---
    derand::SearchResult committed;
    std::uint64_t total_trials = 0;
    // One objective (and one PowerTable build) per stage: escalation only
    // widens lo/hi, which the objective reads through the WindowSet pointer.
    StageObjective objective(family, cutoff, windows);
    for (std::uint32_t attempt = 0;; ++attempt) {
      DMPC_CHECK_MSG(attempt <= config.max_escalations,
                     "edge sparsifier: window escalation cap reached");
      if (attempt > 0) {
        mult *= 2.0;
        for (OwnerWindow& w : windows.owners) set_window(w, q, mult);
      }
      derand::SearchOptions opts;
      opts.threshold = static_cast<double>(windows.owners.size());
      opts.max_trials = config.trials_per_window;
      opts.label = "sparsify/seed";
      // Decorrelate committed functions across stages (see SearchOptions).
      opts.seed_base = 0x9E3779B97F4A7C15ULL * (stage + 1);
      opts.seed_stride = 0xBF58476D1CE4E5B9ULL;
      bool found = true;
      try {
        committed = derand::find_seed(cluster, objective,
                                      family.seed_count(), opts);
      } catch (const CheckFailure&) {
        found = false;
      }
      total_trials += found ? committed.trials : config.trials_per_window;
      if (found) break;
      if (auto* trace = cluster.trace(); obs::enabled(trace)) {
        trace->instant("sparsify/escalate",
                       {obs::arg("stage", static_cast<std::uint64_t>(stage)),
                        obs::arg("window_multiplier", mult * 2.0)});
      }
      DMPC_DEBUG("sparsify stage " << stage << ": escalating window to x"
                                   << mult * 2.0);
    }

    // --- Apply the committed hash: E_j = {e in E_{j-1} : h(e) < cutoff}. ---
    const auto fn = family.at(committed.seed);
    StageReport report;
    report.stage = stage;
    report.seed = committed.seed;
    report.trials = total_trials;
    report.window_multiplier = mult;
    report.machines = windows.owners.size();
    report.edges_before = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (result.in_Estar[e]) ++report.edges_before;
    }
    std::vector<bool> next = result.in_Estar;
    EdgeId kept = 0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!next[e]) continue;
      if (fn.raw(e) >= cutoff) {
        next[e] = false;
      } else {
        ++kept;
      }
    }
    if (kept == 0) {
      // Finite-n guard: never sparsify to the empty set — keep E_{j-1} and
      // stop; the selection step's space check remains the arbiter.
      DMPC_WARN("edge sparsify stage " << stage
                                       << " would empty E; stopping early");
      break;
    }
    result.in_Estar = std::move(next);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!good.in_B[v]) continue;
      auto& list = result.xv_star[v];
      std::erase_if(list, [&](EdgeId e) { return !result.in_Estar[e]; });
    }

    // --- Measure the paper-form invariants (Lemmas 10 & 11). ---
    const auto deg_now = graph::masked_degrees(g, result.in_Estar, cluster.executor());
    const double shrink = std::pow(q, static_cast<double>(stage));
    report.edges_after = kept;
    report.max_degree_after =
        *std::max_element(deg_now.begin(), deg_now.end());
    double worst_deg_ratio = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (deg_e0[v] == 0) continue;
      const double bound = shrink * static_cast<double>(deg_e0[v]) + nd3;
      worst_deg_ratio = std::max(
          worst_deg_ratio, static_cast<double>(deg_now[v]) / bound);
    }
    report.invariant_degree_ratio = worst_deg_ratio;
    double worst_xv_ratio = 2.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!good.in_B[v] || xv0_size[v] == 0) continue;
      const double expect = shrink * static_cast<double>(xv0_size[v]);
      if (expect < 1.0) continue;  // below resolution — nothing to measure
      worst_xv_ratio = std::min(
          worst_xv_ratio,
          static_cast<double>(result.xv_star[v].size()) / expect);
    }
    report.invariant_xv_ratio = worst_xv_ratio;
    if (stage_span.active()) {
      stage_span.arg("candidate_seeds", report.trials);
      stage_span.arg("committed_seed", report.seed);
      stage_span.arg("edges_before",
                     static_cast<std::uint64_t>(report.edges_before));
      stage_span.arg("edges_after",
                     static_cast<std::uint64_t>(report.edges_after));
      stage_span.arg("window_multiplier", report.window_multiplier);
    }
    result.stages.push_back(report);
  }
  {
    const auto deg_final = graph::masked_degrees(g, result.in_Estar, cluster.executor());
    result.max_degree = *std::max_element(deg_final.begin(), deg_final.end());
  }
  return result;
}

}  // namespace dmpc::sparsify
