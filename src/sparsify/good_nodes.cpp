#include "sparsify/good_nodes.hpp"

#include "mpc/primitives.hpp"
#include "sparsify/degree_classes.hpp"
#include "support/check.hpp"

namespace dmpc::sparsify {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

namespace {
// FP slack for the >= 1/3 and >= delta/3 tests: the underlying quantities
// are rationals; equality cases must pass.
constexpr double kTol = 1e-9;

/// Charge the constant number of Lemma-4 passes the selection uses (§3.1:
/// degrees, X membership, and the per-class mass aggregation).
void charge_selection(mpc::Cluster& cluster, EdgeId alive_edges,
                      const std::string& label) {
  const std::uint64_t records = std::max<EdgeId>(2 * alive_edges, 2);
  const std::uint64_t rounds = 3 * mpc::sort_round_cost(cluster, records);
  cluster.charge_recoverable(rounds, label);
  cluster.metrics().add_communication(2 * records, label);
  mpc::check_blocked_layout(cluster, records, 2, label);
}
}  // namespace

MatchingGoodSet select_matching_good_set(mpc::Cluster& cluster,
                                         const Params& params,
                                         const Graph& g,
                                         const std::vector<bool>& alive) {
  MatchingGoodSet out;
  const auto deg = graph::alive_degrees(g, alive, cluster.executor());
  out.alive_edges = graph::alive_edge_count(g, alive, cluster.executor());
  DMPC_CHECK_MSG(out.alive_edges > 0, "good-node selection on empty graph");
  charge_selection(cluster, out.alive_edges, "good_nodes/matching");

  // X membership: v in X iff 3 * |{u ~ v alive : d(u) <= d(v)}| >= d(v).
  const NodeId n = g.num_nodes();
  std::vector<bool> in_X(n, false);
  std::uint64_t x_mass = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!alive[v] || deg[v] == 0) continue;
    std::uint64_t low = 0;
    for (NodeId u : g.neighbors(v)) {
      if (alive[u] && deg[u] <= deg[v]) ++low;
    }
    if (3 * low >= deg[v]) {
      in_X[v] = true;
      x_mass += deg[v];
    }
  }
  // Lemma 3: sum_{v in X} d(v) >= |E| / 2.
  DMPC_CHECK_MSG(2 * x_mass >= out.alive_edges,
                 "Lemma 3 violated: X mass " << x_mass << " vs |E| "
                                             << out.alive_edges);

  // Class masses over B_i = C_i ∩ X; pick the heaviest class.
  const DegreeClasses classes = classify(params, deg);
  std::vector<std::uint64_t> b_mass(params.inv_delta + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (in_X[v]) b_mass[classes.class_of[v]] += deg[v];
  }
  std::uint32_t best = 1;
  for (std::uint32_t i = 2; i <= params.inv_delta; ++i) {
    if (b_mass[i] > b_mass[best]) best = i;
  }
  // Corollary 8: the best class carries >= (delta/2)|E| degree mass.
  DMPC_CHECK_MSG(
      2 * params.inv_delta * b_mass[best] >= out.alive_edges,
      "Corollary 8 violated: best class mass " << b_mass[best]);
  out.cls = best;
  out.b_degree_mass = b_mass[best];

  // B, X(v), and E_0.
  out.in_B.assign(n, false);
  out.in_E0.assign(g.num_edges(), false);
  out.xv.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    if (!in_X[v] || classes.class_of[v] != best) continue;
    out.in_B[v] = true;
    auto nb = g.neighbors(v);
    auto inc = g.incident_edges(v);
    for (std::size_t idx = 0; idx < nb.size(); ++idx) {
      const NodeId u = nb[idx];
      if (alive[u] && deg[u] <= deg[v]) {
        out.xv[v].push_back(inc[idx]);
        out.in_E0[inc[idx]] = true;
      }
    }
    // Definition of X guarantees |X(v)| >= d(v)/3.
    DMPC_CHECK(3 * out.xv[v].size() >= deg[v]);
  }
  return out;
}

MisGoodSet select_mis_good_set(mpc::Cluster& cluster, const Params& params,
                               const Graph& g, const std::vector<bool>& alive) {
  MisGoodSet out;
  const auto deg = graph::alive_degrees(g, alive, cluster.executor());
  out.alive_edges = graph::alive_edge_count(g, alive, cluster.executor());
  DMPC_CHECK_MSG(out.alive_edges > 0, "good-node selection on empty graph");
  charge_selection(cluster, out.alive_edges, "good_nodes/mis");

  const NodeId n = g.num_nodes();
  const DegreeClasses classes = classify(params, deg);
  const double delta = params.delta();

  // B_i membership: sum over class-i alive neighbors of 1/d(u) >= delta/3.
  // Track per-class sums per node in one pass over adjacencies.
  std::vector<std::uint64_t> b_mass(params.inv_delta + 1, 0);
  std::vector<std::vector<bool>> in_Bi(
      params.inv_delta + 1, std::vector<bool>(n, false));
  for (NodeId v = 0; v < n; ++v) {
    if (!alive[v] || deg[v] == 0) continue;
    std::vector<double> class_sum(params.inv_delta + 1, 0.0);
    for (NodeId u : g.neighbors(v)) {
      if (!alive[u] || deg[u] == 0) continue;
      class_sum[classes.class_of[u]] += 1.0 / static_cast<double>(deg[u]);
    }
    for (std::uint32_t i = 1; i <= params.inv_delta; ++i) {
      if (class_sum[i] >= delta / 3.0 - kTol) {
        in_Bi[i][v] = true;
        b_mass[i] += deg[v];
      }
    }
  }
  std::uint32_t best = 1;
  for (std::uint32_t i = 2; i <= params.inv_delta; ++i) {
    if (b_mass[i] > b_mass[best]) best = i;
  }
  // Corollary 16: the best B_i carries >= (delta/2)|E| degree mass.
  DMPC_CHECK_MSG(
      2 * params.inv_delta * b_mass[best] >= out.alive_edges,
      "Corollary 16 violated: best class mass " << b_mass[best]);
  out.cls = best;
  out.b_degree_mass = b_mass[best];
  out.in_B = in_Bi[best];

  out.in_Q0.assign(n, false);
  for (NodeId v = 0; v < n; ++v) {
    if (alive[v] && classes.class_of[v] == best) out.in_Q0[v] = true;
  }
  return out;
}

}  // namespace dmpc::sparsify
