#include "sparsify/node_sparsifier.hpp"

#include <algorithm>
#include <cmath>

#include "derand/seed_search.hpp"
#include "hash/kwise.hpp"
#include "mpc/distribution.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/logging.hpp"

namespace dmpc::sparsify {

using graph::Graph;
using graph::NodeId;

namespace {

// Per-owner goodness windows, mirroring the edge sparsifier (see its header
// comment for why windows are per owner and binomial-sigma sized):
//  - type-Q owners (each Q-node's Q-neighbor list) bound the kept COUNT from
//    above (Lemma 17 / Invariant (i));
//  - type-B owners (each B-node's Q-neighbor list) bound the kept 1/d(u)
//    MASS from below (Lemma 18 / Invariant (ii));
//  - one global two-sided COUNT window over all of Q_{j-1} rejects the
//    degenerate all-keep / all-drop seeds at finite n.
struct NodeWindow {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  bool weighted = false;
  std::uint64_t lo = 0;       ///< Count lower bound (global window).
  std::uint64_t hi = 0;       ///< Count upper bound.
  double w_lo = 0.0;          ///< Weighted lower bound (type B).
  std::uint64_t count() const { return end - begin; }
};

struct NodeWindowSet {
  std::vector<NodeId> items;
  std::vector<double> weights;  ///< Aligned 1/d(u); 0 for count windows.
  std::vector<NodeWindow> owners;
};

double count_half_width(double q, double mult, std::uint64_t count) {
  return mult *
         (std::sqrt(static_cast<double>(count) * q * (1.0 - q)) + 1.0);
}

void set_count_window(NodeWindow& w, double q, double mult, bool two_sided) {
  const double mean = q * static_cast<double>(w.count());
  const double slack = count_half_width(q, mult, w.count());
  w.hi = static_cast<std::uint64_t>(std::min<double>(
      static_cast<double>(w.count()), std::ceil(mean + slack)));
  if (two_sided) {
    const double lo_real = mean - slack;
    w.lo = lo_real <= 0 ? 0 : static_cast<std::uint64_t>(std::floor(lo_real));
  } else {
    w.lo = 0;
  }
}

void set_weight_window(NodeWindow& w, const NodeWindowSet& set, double q,
                       double mult) {
  // Weighted Hoeffding scale: sigma^2 = q(1-q) * sum w_i^2; slack adds one
  // max-weight term for the +1 discretization.
  double mass = 0.0, sq = 0.0, wmax = 0.0;
  for (std::uint64_t i = w.begin; i < w.end; ++i) {
    mass += set.weights[i];
    sq += set.weights[i] * set.weights[i];
    wmax = std::max(wmax, set.weights[i]);
  }
  const double slack = mult * (std::sqrt(q * (1.0 - q) * sq) + wmax);
  w.w_lo = std::max(0.0, q * mass - slack);
}

// Range form of the stage objective: the flat item array (widened to the
// 64-bit hash domain) is the bound point universe, so each candidate seed is
// one lane-parallel PowerTable sweep plus a hash-free window scan. Weighted
// masses accumulate in ascending item order — the exact floating-point order
// of the scalar path. Windows are read by pointer so the escalation loop can
// rewrite the bounds without rebuilding the table.
class NodeStageObjective final : public derand::RangeObjective {
 public:
  NodeStageObjective(const hash::KWiseFamily& family, std::uint64_t cutoff,
                     const NodeWindowSet& windows)
      : cutoff_(cutoff),
        windows_(&windows),
        points_(windows.items.begin(), windows.items.end()) {
    bind_points(family, points_.data(), points_.size());
  }

  double accumulate_terms(std::uint64_t range_begin, std::uint64_t range_end,
                          std::uint64_t /*seed*/,
                          const std::uint64_t* values) const override {
    std::uint64_t good = 0;
    for (std::uint64_t o = range_begin; o < range_end; ++o) {
      const NodeWindow& w = windows_->owners[o];
      if (!w.weighted) {
        std::uint64_t kept = 0;
        for (std::uint64_t i = w.begin; i < w.end; ++i) {
          if (values[i] < cutoff_) ++kept;
        }
        if (kept >= w.lo && kept <= w.hi) ++good;
      } else {
        double mass = 0.0;
        for (std::uint64_t i = w.begin; i < w.end; ++i) {
          if (values[i] < cutoff_) {
            mass += windows_->weights[i];
          }
        }
        if (mass >= w.w_lo) ++good;
      }
    }
    return static_cast<double>(good);
  }

  std::uint64_t range_count() const override { return windows_->owners.size(); }
  std::uint64_t term_count() const override { return windows_->owners.size(); }

 private:
  std::uint64_t cutoff_;
  const NodeWindowSet* windows_;
  std::vector<std::uint64_t> points_;  ///< items widened to the hash domain
};

}  // namespace

NodeSparsifyResult sparsify_nodes(mpc::Cluster& cluster, const Params& params,
                                  const Graph& g,
                                  const std::vector<bool>& alive,
                                  const MisGoodSet& good,
                                  const SparsifyConfig& config) {
  NodeSparsifyResult result;
  result.in_Qprime = good.in_Q0;

  const std::uint32_t planned = params.stages_for_class(good.cls);
  const std::uint64_t group = params.group_size();
  const double q = params.sample_probability();
  const auto deg = graph::alive_degrees(g, alive, cluster.executor());

  const std::uint64_t domain = std::max<std::uint64_t>(2, g.num_nodes());
  hash::KWiseFamily family(domain, domain, config.hash_k);
  const auto cutoff =
      static_cast<std::uint64_t>(q * static_cast<double>(family.p()));

  auto q_degree = [&](NodeId v) {
    std::uint32_t d = 0;
    for (NodeId u : g.neighbors(v)) {
      if (alive[u] && result.in_Qprime[u]) ++d;
    }
    return d;
  };
  auto max_q_degree = [&]() {
    std::uint32_t best = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (alive[v] && result.in_Qprime[v]) best = std::max(best, q_degree(v));
    }
    return best;
  };

  // Baselines for the invariant measurements.
  std::vector<std::uint32_t> deg_q0(g.num_nodes(), 0);
  std::vector<double> hmass_q0(g.num_nodes(), 0.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!alive[v]) continue;
    for (NodeId u : g.neighbors(v)) {
      if (alive[u] && good.in_Q0[u]) {
        ++deg_q0[v];
        hmass_q0[v] += 1.0 / static_cast<double>(deg[u]);
      }
    }
  }

  std::uint32_t stage = 0;
  std::uint32_t extra_used = 0;
  while (true) {
    const bool planned_stage = stage < planned;
    if (!planned_stage) {
      if (max_q_degree() <= params.degree_cap() ||
          extra_used >= config.extra_stage_cap) {
        break;
      }
      ++extra_used;
    }
    ++stage;
    // Each stage rewrites the survivor set from the previous one, so it is a
    // recovery-safe boundary for phase-granularity checkpoints.
    cluster.mark_phase("mis_sparsify/stage", g.num_nodes());
    obs::Span stage_span(cluster.trace(), "mis_sparsify/stage");
    stage_span.arg("stage", static_cast<std::uint64_t>(stage));

    // --- Distribute neighbor lists into per-owner windows. ---
    NodeWindowSet windows;
    std::vector<std::uint64_t> counts(g.num_nodes(), 0);
    double mult = config.slack_factor;
    auto append = [&](NodeId owner, bool weighted) {
      NodeWindow w;
      w.begin = windows.items.size();
      for (NodeId u : g.neighbors(owner)) {
        if (alive[u] && result.in_Qprime[u]) {
          windows.items.push_back(u);
          windows.weights.push_back(1.0 / static_cast<double>(deg[u]));
        }
      }
      w.end = windows.items.size();
      if (w.count() == 0) return;
      if (!weighted) counts[owner] = w.count();
      w.weighted = weighted;
      if (weighted) {
        set_weight_window(w, windows, q, mult);
      } else {
        set_count_window(w, q, mult, /*two_sided=*/false);
      }
      windows.owners.push_back(w);
    };
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (alive[v] && result.in_Qprime[v]) append(v, /*weighted=*/false);
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (alive[v] && good.in_B[v]) append(v, /*weighted=*/true);
    }
    {
      // Global two-sided window over Q_{j-1} itself.
      NodeWindow w;
      w.begin = windows.items.size();
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (alive[v] && result.in_Qprime[v]) {
          windows.items.push_back(v);
          windows.weights.push_back(0.0);
        }
      }
      w.end = windows.items.size();
      if (w.count() > 0) {
        set_count_window(w, q, mult, /*two_sided=*/true);
        windows.owners.push_back(w);
      }
    }
    mpc::build_machine_groups(cluster, counts, group, /*arity=*/1,
                              "mis_sparsify/distribute");

    // --- Derandomize with adaptive window escalation. ---
    derand::SearchResult committed;
    std::uint64_t total_trials = 0;
    // One objective (and one PowerTable build) per stage: escalation only
    // rewrites the window bounds, read through the NodeWindowSet pointer.
    NodeStageObjective objective(family, cutoff, windows);
    for (std::uint32_t attempt = 0;; ++attempt) {
      DMPC_CHECK_MSG(attempt <= config.max_escalations,
                     "node sparsifier: window escalation cap reached");
      if (attempt > 0) {
        mult *= 2.0;
        const auto last = windows.owners.size() - 1;
        for (std::size_t i = 0; i < windows.owners.size(); ++i) {
          NodeWindow& w = windows.owners[i];
          if (w.weighted) {
            set_weight_window(w, windows, q, mult);
          } else {
            set_count_window(w, q, mult, /*two_sided=*/i == last);
          }
        }
      }
      derand::SearchOptions opts;
      opts.threshold = static_cast<double>(windows.owners.size());
      opts.max_trials = config.trials_per_window;
      opts.label = "mis_sparsify/seed";
      // Decorrelate committed functions across stages (see SearchOptions).
      opts.seed_base = 0x9E3779B97F4A7C15ULL * (stage + 1);
      opts.seed_stride = 0xBF58476D1CE4E5B9ULL;
      bool found = true;
      try {
        committed =
            derand::find_seed(cluster, objective, family.seed_count(), opts);
      } catch (const CheckFailure&) {
        found = false;
      }
      total_trials += found ? committed.trials : config.trials_per_window;
      if (found) break;
      if (auto* trace = cluster.trace(); obs::enabled(trace)) {
        trace->instant("mis_sparsify/escalate",
                       {obs::arg("stage", static_cast<std::uint64_t>(stage)),
                        obs::arg("window_multiplier", mult * 2.0)});
      }
      DMPC_DEBUG("node sparsify stage " << stage << ": escalating window to x"
                                        << mult * 2.0);
    }

    // --- Apply: Q_j = {v in Q_{j-1} : h(v) < cutoff}. ---
    const auto fn = family.at(committed.seed);
    std::vector<bool> next = result.in_Qprime;
    std::uint64_t kept_nodes = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!next[v]) continue;
      if (fn.raw(v) >= cutoff) {
        next[v] = false;
      } else {
        ++kept_nodes;
      }
    }
    if (kept_nodes == 0) {
      // Finite-n guard: never sparsify to the empty set — keep Q_{j-1} and
      // stop; the selection step's space check remains the arbiter.
      DMPC_WARN("node sparsify stage " << stage
                                       << " would empty Q; stopping early");
      break;
    }
    result.in_Qprime = std::move(next);

    // --- Measure the paper-form invariants (Lemmas 17 & 18). ---
    StageReport report;
    report.stage = stage;
    report.seed = committed.seed;
    report.trials = total_trials;
    report.window_multiplier = mult;
    report.machines = windows.owners.size();
    const double shrink = std::pow(q, static_cast<double>(stage));
    const double cls_lower = params.class_lower(good.cls);
    double worst_deg_ratio = 0.0;
    double worst_h_ratio = 2.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!alive[v]) continue;
      if (result.in_Qprime[v] && deg_q0[v] > 0) {
        const double bound =
            shrink * static_cast<double>(deg_q0[v]) + params.pow_nd(3.0);
        worst_deg_ratio =
            std::max(worst_deg_ratio,
                     static_cast<double>(q_degree(v)) / bound);
      }
      if (good.in_B[v] && hmass_q0[v] > 0) {
        double mass = 0.0;
        for (NodeId u : g.neighbors(v)) {
          if (alive[u] && result.in_Qprime[u]) {
            mass += 1.0 / static_cast<double>(deg[u]);
          }
        }
        const double expect = shrink * hmass_q0[v];
        if (expect * cls_lower >= 1.0) {  // above measurement resolution
          worst_h_ratio = std::min(worst_h_ratio, mass / expect);
        }
      }
    }
    report.invariant_degree_ratio = worst_deg_ratio;
    report.invariant_xv_ratio = worst_h_ratio;
    report.max_degree_after = max_q_degree();
    if (stage_span.active()) {
      stage_span.arg("candidate_seeds", report.trials);
      stage_span.arg("committed_seed", report.seed);
      stage_span.arg("kept_nodes", kept_nodes);
      stage_span.arg("window_multiplier", report.window_multiplier);
    }
    result.stages.push_back(report);
  }
  result.max_q_degree = max_q_degree();
  return result;
}

}  // namespace dmpc::sparsify
