// Precomputed 64-bit remainder (Lemire, Kaser, Kurz: "Faster Remainder by
// Direct Computation"). For a fixed divisor d, x % d becomes two widening
// multiplies instead of a hardware divide — the hash range reduction in
// hash::HashFn::operator() runs once per evaluated point, so the divide was
// on the derand hot path.
//
// Exactness: with M = floor((2^128-1)/d) + 1, the identity
// x % d == ((M * x mod 2^128) * d) >> 128 holds for ALL 64-bit x and d >= 1
// (F = 128 fraction bits >= log2(d) + log2(x) always). d == 1 wraps M to 0
// and yields 0, which is x % 1. Unit-tested against the modulo path in
// tests/test_hash.cpp.
#pragma once

#include <cstdint>

#include "support/check.hpp"

namespace dmpc::field {

class FastDiv64 {
 public:
  /// Divisor 1 (every remainder is 0) until bound to a real divisor.
  FastDiv64() = default;

  explicit FastDiv64(std::uint64_t d)
      : d_(d), m_(~__uint128_t{0} / d + 1) {
    DMPC_CHECK_MSG(d >= 1, "divisor must be >= 1");
  }

  std::uint64_t divisor() const { return d_; }

  /// x % divisor(), bit-identical to the hardware remainder.
  std::uint64_t mod(std::uint64_t x) const {
    const __uint128_t lowbits = m_ * x;
    const std::uint64_t hi = static_cast<std::uint64_t>(lowbits >> 64);
    const std::uint64_t lo = static_cast<std::uint64_t>(lowbits);
    const __uint128_t top = static_cast<__uint128_t>(hi) * d_;
    const __uint128_t bot = static_cast<__uint128_t>(lo) * d_;
    return static_cast<std::uint64_t>((top + (bot >> 64)) >> 64);
  }

 private:
  std::uint64_t d_ = 1;
  __uint128_t m_ = 0;
};

}  // namespace dmpc::field
