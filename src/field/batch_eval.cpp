#include "field/batch_eval.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/check.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define DMPC_BATCH_EVAL_HAVE_AVX2 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define DMPC_BATCH_EVAL_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace dmpc::field {

namespace {

// ------------------------------------------------------------------ scalar
//
// The scalar kernels are the reference: they are Modulus::poly_eval (and the
// canonical-residue algebra behind it) verbatim, so every other path is
// checked against them and against poly_eval itself.

void horner_scalar(const Modulus& mod, const std::uint64_t* coeffs,
                   std::size_t k, const std::uint64_t* xs, std::size_t count,
                   std::uint64_t* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t x = mod.reduce(xs[i]);
    std::uint64_t acc = 0;
    for (std::size_t j = k; j-- > 0;) {
      acc = mod.add(mod.mul(acc, x), coeffs[j]);
    }
    out[i] = acc;
  }
}

// -------------------------------------------------------------------- Shoup
//
// Shoup multiplication: for a fixed multiplicand b < p < 2^63 precompute
// bp = floor(b * 2^64 / p); then for any a < 2^64,
//
//   q = floor(a * bp / 2^64) is floor(a*b/p) or one less, so
//   r = a*b - q*p (computed mod 2^64) lies in [0, 2p)
//
// and one conditional subtract yields the exact canonical residue — the same
// value Modulus::mul computes via __uint128_t division, at the cost of two
// 64-bit multiplies and one high-half multiply. Division happens once per
// fixed operand instead of once per product.

inline std::uint64_t shoup_precompute(std::uint64_t b, std::uint64_t p) {
  return static_cast<std::uint64_t>((static_cast<__uint128_t>(b) << 64) / p);
}

inline std::uint64_t mulmod_shoup(std::uint64_t a, std::uint64_t b,
                                  std::uint64_t bp, std::uint64_t p) {
  const std::uint64_t q =
      static_cast<std::uint64_t>((static_cast<__uint128_t>(a) * bp) >> 64);
  std::uint64_t r = a * b - q * p;
  if (r >= p) r -= p;
  return r;
}

inline std::uint64_t addmod_lt(std::uint64_t a, std::uint64_t b,
                               std::uint64_t p) {
  std::uint64_t s = a + b;  // a, b < p < 2^63: no overflow
  if (s >= p) s -= p;
  return s;
}

/// Horner with a per-point Shoup multiplier: one division per point instead
/// of one per Horner step. Exact for p < 2^63; identical to horner_scalar.
void horner_shoup(const Modulus& mod, const std::uint64_t* coeffs,
                  std::size_t k, const std::uint64_t* xs, std::size_t count,
                  std::uint64_t* out) {
  const std::uint64_t p = mod.value();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t x = mod.reduce(xs[i]);
    const std::uint64_t xp = shoup_precompute(x, p);
    std::uint64_t acc = coeffs[k - 1];
    for (std::size_t j = k - 1; j-- > 0;) {
      acc = addmod_lt(mulmod_shoup(acc, x, xp, p), coeffs[j], p);
    }
    out[i] = acc;
  }
}

/// Column sweep over a power table with per-column Shoup multipliers.
/// Exact for p < 2^63.
void table_eval_shoup(const std::uint64_t* powers, std::size_t stride,
                      std::size_t count, const std::uint64_t* coeffs,
                      unsigned k, std::uint64_t p, std::uint64_t* out) {
  std::uint64_t cp[16];
  for (unsigned j = 1; j < k; ++j) cp[j] = shoup_precompute(coeffs[j], p);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t acc = coeffs[0];
    for (unsigned j = 1; j < k; ++j) {
      acc = addmod_lt(
          acc, mulmod_shoup(powers[(j - 1) * stride + i], coeffs[j], cp[j], p),
          p);
    }
    out[i] = acc;
  }
}

// --------------------------------------------------------------------- AVX2
//
// Mersenne-61 lanes, 4 x u64. Products avoid the 128-bit intermediate via a
// 31/30-bit limb split: for a, b < 2^61,
//
//   a*b = p11*2^62 + m*2^31 + p00     (p11 = a1*b1, m = a0*b1 + a1*b0)
//       = 2*p11 + (m>>30) + (m&(2^30-1))*2^31 + p00   (mod 2^61-1),
//
// every addend < 2^62, the sum < 2^63 + 2^32 (no u64 overflow), and one
// fold + one conditional subtract lands in the canonical range — the same
// residue Modulus::mul computes through __uint128_t.

#if DMPC_BATCH_EVAL_HAVE_AVX2

__attribute__((target("avx2"))) inline __m256i mul61_avx2(__m256i a,
                                                          __m256i b) {
  const __m256i low31 = _mm256_set1_epi64x(0x7FFFFFFFLL);
  const __m256i low30 = _mm256_set1_epi64x(0x3FFFFFFFLL);
  const __m256i m61 = _mm256_set1_epi64x(static_cast<long long>(kMersenne61));
  const __m256i a0 = _mm256_and_si256(a, low31);
  const __m256i a1 = _mm256_srli_epi64(a, 31);
  const __m256i b0 = _mm256_and_si256(b, low31);
  const __m256i b1 = _mm256_srli_epi64(b, 31);
  const __m256i p11 = _mm256_mul_epu32(a1, b1);
  const __m256i m =
      _mm256_add_epi64(_mm256_mul_epu32(a0, b1), _mm256_mul_epu32(a1, b0));
  const __m256i p00 = _mm256_mul_epu32(a0, b0);
  const __m256i r = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_slli_epi64(p11, 1), _mm256_srli_epi64(m, 30)),
      _mm256_add_epi64(_mm256_slli_epi64(_mm256_and_si256(m, low30), 31),
                       p00));
  __m256i s =
      _mm256_add_epi64(_mm256_and_si256(r, m61), _mm256_srli_epi64(r, 61));
  // s <= M + 4 fits signed 64, so the signed compare is exact: s >= M.
  const __m256i ge = _mm256_cmpgt_epi64(
      s, _mm256_set1_epi64x(static_cast<long long>(kMersenne61 - 1)));
  return _mm256_sub_epi64(s, _mm256_and_si256(ge, m61));
}

__attribute__((target("avx2"))) inline __m256i add61_avx2(__m256i a,
                                                          __m256i b) {
  const __m256i m61 = _mm256_set1_epi64x(static_cast<long long>(kMersenne61));
  const __m256i s = _mm256_add_epi64(a, b);
  const __m256i ge = _mm256_cmpgt_epi64(
      s, _mm256_set1_epi64x(static_cast<long long>(kMersenne61 - 1)));
  return _mm256_sub_epi64(s, _mm256_and_si256(ge, m61));
}

__attribute__((target("avx2"))) void horner_avx2_m61(
    const std::uint64_t* coeffs, std::size_t k, const std::uint64_t* xs,
    std::size_t count, std::uint64_t* out) {
  const std::size_t main = count & ~std::size_t{3};
  alignas(32) std::uint64_t xr[4];
  for (std::size_t i = 0; i < main; i += 4) {
    for (int l = 0; l < 4; ++l) xr[l] = xs[i + l] % kMersenne61;
    const __m256i x = _mm256_load_si256(reinterpret_cast<const __m256i*>(xr));
    __m256i acc = _mm256_set1_epi64x(static_cast<long long>(coeffs[k - 1]));
    for (std::size_t j = k - 1; j-- > 0;) {
      acc = add61_avx2(mul61_avx2(acc, x),
                       _mm256_set1_epi64x(static_cast<long long>(coeffs[j])));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), acc);
  }
  if (main < count) {
    horner_scalar(Modulus(kMersenne61), coeffs, k, xs + main, count - main,
                  out + main);
  }
}

__attribute__((target("avx2"))) void table_eval_avx2_m61(
    const std::uint64_t* powers, std::size_t stride, std::size_t count,
    const std::uint64_t* coeffs, unsigned k, std::uint64_t* out) {
  const std::size_t main = count & ~std::size_t{3};
  for (std::size_t i = 0; i < main; i += 4) {
    __m256i acc = _mm256_set1_epi64x(static_cast<long long>(coeffs[0]));
    for (unsigned j = 1; j < k; ++j) {
      const __m256i col = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          powers + (j - 1) * stride + i));
      acc = add61_avx2(
          acc, mul61_avx2(col, _mm256_set1_epi64x(
                                   static_cast<long long>(coeffs[j]))));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), acc);
  }
  if (main < count) {
    const Modulus mod(kMersenne61);
    for (std::size_t i = main; i < count; ++i) {
      std::uint64_t acc = coeffs[0];
      for (unsigned j = 1; j < k; ++j) {
        acc = mod.add(acc, mod.mul(powers[(j - 1) * stride + i], coeffs[j]));
      }
      out[i] = acc;
    }
  }
}

// Small-prime lanes (p <= 2^32 - 1), 4 x u64 holding 32-bit residues. Same
// Shoup scheme as the scalar helper but with beta = 2^32 so every product is
// a single 32x32->64 _mm256_mul_epu32: for fixed c < p precompute
// cp = floor(c * 2^32 / p); then q = (x * cp) >> 32 is floor(x*c/p) or one
// less (x < 2^32), r = x*c - q*p < 2p < 2^33, and one conditional subtract
// lands in [0, p). q < p < 2^32 so q*p is again a single widening multiply.
__attribute__((target("avx2"))) void table_eval_avx2_smallp(
    const std::uint64_t* powers, std::size_t stride, std::size_t count,
    const std::uint64_t* coeffs, unsigned k, std::uint64_t p,
    std::uint64_t* out) {
  std::uint64_t cp[16];
  for (unsigned j = 1; j < k; ++j) {
    cp[j] = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(coeffs[j]) << 32) / p);
  }
  const __m256i pv = _mm256_set1_epi64x(static_cast<long long>(p));
  const __m256i pm1 = _mm256_set1_epi64x(static_cast<long long>(p - 1));
  const std::size_t main = count & ~std::size_t{3};
  for (std::size_t i = 0; i < main; i += 4) {
    __m256i acc = _mm256_set1_epi64x(static_cast<long long>(coeffs[0]));
    for (unsigned j = 1; j < k; ++j) {
      const __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(powers + (j - 1) * stride + i));
      const __m256i t = _mm256_mul_epu32(
          x, _mm256_set1_epi64x(static_cast<long long>(coeffs[j])));
      const __m256i q = _mm256_srli_epi64(
          _mm256_mul_epu32(x,
                           _mm256_set1_epi64x(static_cast<long long>(cp[j]))),
          32);
      __m256i r = _mm256_sub_epi64(t, _mm256_mul_epu32(q, pv));
      // r < 2p < 2^33 and acc + r < 2p: signed compares are exact.
      r = _mm256_sub_epi64(r, _mm256_and_si256(_mm256_cmpgt_epi64(r, pm1), pv));
      acc = _mm256_add_epi64(acc, r);
      acc = _mm256_sub_epi64(
          acc, _mm256_and_si256(_mm256_cmpgt_epi64(acc, pm1), pv));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), acc);
  }
  if (main < count) {
    table_eval_shoup(powers + main, stride, count - main, coeffs, k, p,
                     out + main);
  }
}

bool avx2_supported() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // DMPC_BATCH_EVAL_HAVE_AVX2

// --------------------------------------------------------------------- NEON
//
// Mersenne-61 lanes, 2 x u64, same limb-split algebra as the AVX2 path
// (vmull_u32 widens the 32-bit limb products).

#if DMPC_BATCH_EVAL_HAVE_NEON

inline uint64x2_t mul61_neon(uint64x2_t a, uint64x2_t b) {
  const uint64x2_t low31 = vdupq_n_u64(0x7FFFFFFFULL);
  const uint64x2_t low30 = vdupq_n_u64(0x3FFFFFFFULL);
  const uint64x2_t m61 = vdupq_n_u64(kMersenne61);
  const uint32x2_t a0 = vmovn_u64(vandq_u64(a, low31));
  const uint32x2_t a1 = vmovn_u64(vshrq_n_u64(a, 31));
  const uint32x2_t b0 = vmovn_u64(vandq_u64(b, low31));
  const uint32x2_t b1 = vmovn_u64(vshrq_n_u64(b, 31));
  const uint64x2_t p11 = vmull_u32(a1, b1);
  const uint64x2_t m = vaddq_u64(vmull_u32(a0, b1), vmull_u32(a1, b0));
  const uint64x2_t p00 = vmull_u32(a0, b0);
  const uint64x2_t r =
      vaddq_u64(vaddq_u64(vshlq_n_u64(p11, 1), vshrq_n_u64(m, 30)),
                vaddq_u64(vshlq_n_u64(vandq_u64(m, low30), 31), p00));
  const uint64x2_t s = vaddq_u64(vandq_u64(r, m61), vshrq_n_u64(r, 61));
  const uint64x2_t ge = vcgeq_u64(s, m61);
  return vsubq_u64(s, vandq_u64(ge, m61));
}

inline uint64x2_t add61_neon(uint64x2_t a, uint64x2_t b) {
  const uint64x2_t m61 = vdupq_n_u64(kMersenne61);
  const uint64x2_t s = vaddq_u64(a, b);
  const uint64x2_t ge = vcgeq_u64(s, m61);
  return vsubq_u64(s, vandq_u64(ge, m61));
}

void horner_neon_m61(const std::uint64_t* coeffs, std::size_t k,
                     const std::uint64_t* xs, std::size_t count,
                     std::uint64_t* out) {
  const std::size_t main = count & ~std::size_t{1};
  std::uint64_t xr[2];
  for (std::size_t i = 0; i < main; i += 2) {
    xr[0] = xs[i] % kMersenne61;
    xr[1] = xs[i + 1] % kMersenne61;
    const uint64x2_t x = vld1q_u64(xr);
    uint64x2_t acc = vdupq_n_u64(coeffs[k - 1]);
    for (std::size_t j = k - 1; j-- > 0;) {
      acc = add61_neon(mul61_neon(acc, x), vdupq_n_u64(coeffs[j]));
    }
    vst1q_u64(out + i, acc);
  }
  if (main < count) {
    horner_scalar(Modulus(kMersenne61), coeffs, k, xs + main, count - main,
                  out + main);
  }
}

void table_eval_neon_m61(const std::uint64_t* powers, std::size_t stride,
                         std::size_t count, const std::uint64_t* coeffs,
                         unsigned k, std::uint64_t* out) {
  const std::size_t main = count & ~std::size_t{1};
  for (std::size_t i = 0; i < main; i += 2) {
    uint64x2_t acc = vdupq_n_u64(coeffs[0]);
    for (unsigned j = 1; j < k; ++j) {
      const uint64x2_t col = vld1q_u64(powers + (j - 1) * stride + i);
      acc = add61_neon(acc, mul61_neon(col, vdupq_n_u64(coeffs[j])));
    }
    vst1q_u64(out + i, acc);
  }
  if (main < count) {
    const Modulus mod(kMersenne61);
    for (std::size_t i = main; i < count; ++i) {
      std::uint64_t acc = coeffs[0];
      for (unsigned j = 1; j < k; ++j) {
        acc = mod.add(acc, mod.mul(powers[(j - 1) * stride + i], coeffs[j]));
      }
      out[i] = acc;
    }
  }
}

// Small-prime lanes: the same beta = 2^32 Shoup scheme as the AVX2 kernel,
// with vmull_u32 as the widening multiply.
void table_eval_neon_smallp(const std::uint64_t* powers, std::size_t stride,
                            std::size_t count, const std::uint64_t* coeffs,
                            unsigned k, std::uint64_t p, std::uint64_t* out) {
  std::uint64_t cp[16];
  for (unsigned j = 1; j < k; ++j) {
    cp[j] = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(coeffs[j]) << 32) / p);
  }
  const uint64x2_t pv = vdupq_n_u64(p);
  const uint32x2_t p32 = vdup_n_u32(static_cast<std::uint32_t>(p));
  const std::size_t main = count & ~std::size_t{1};
  for (std::size_t i = 0; i < main; i += 2) {
    uint64x2_t acc = vdupq_n_u64(coeffs[0]);
    for (unsigned j = 1; j < k; ++j) {
      const uint64x2_t xw = vld1q_u64(powers + (j - 1) * stride + i);
      const uint32x2_t x = vmovn_u64(xw);
      const uint64x2_t t =
          vmull_u32(x, vdup_n_u32(static_cast<std::uint32_t>(coeffs[j])));
      const uint64x2_t qw = vshrq_n_u64(
          vmull_u32(x, vdup_n_u32(static_cast<std::uint32_t>(cp[j]))), 32);
      const uint32x2_t q = vmovn_u64(qw);
      uint64x2_t r = vsubq_u64(t, vmull_u32(q, p32));
      r = vsubq_u64(r, vandq_u64(vcgeq_u64(r, pv), pv));
      acc = vaddq_u64(acc, r);
      acc = vsubq_u64(acc, vandq_u64(vcgeq_u64(acc, pv), pv));
    }
    vst1q_u64(out + i, acc);
  }
  if (main < count) {
    table_eval_shoup(powers + main, stride, count - main, coeffs, k, p,
                     out + main);
  }
}

#endif  // DMPC_BATCH_EVAL_HAVE_NEON

// ----------------------------------------------------------------- dispatch

bool dispatch_supported(BatchDispatch dispatch) {
  switch (dispatch) {
    case BatchDispatch::kScalar:
      return true;
    case BatchDispatch::kAvx2:
#if DMPC_BATCH_EVAL_HAVE_AVX2
      return avx2_supported();
#else
      return false;
#endif
    case BatchDispatch::kNeon:
#if DMPC_BATCH_EVAL_HAVE_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

BatchDispatch widest_supported() {
  if (dispatch_supported(BatchDispatch::kAvx2)) return BatchDispatch::kAvx2;
  if (dispatch_supported(BatchDispatch::kNeon)) return BatchDispatch::kNeon;
  return BatchDispatch::kScalar;
}

/// DMPC_BATCH_EVAL resolution, computed once. Unknown or unsupported values
/// warn (once) and fall back to host detection rather than aborting, so a
/// pinned CI environment variable is safe on every runner.
BatchDispatch env_dispatch() {
  static const BatchDispatch choice = [] {
    const char* env = std::getenv("DMPC_BATCH_EVAL");
    if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
      return widest_supported();
    }
    BatchDispatch requested = BatchDispatch::kScalar;
    bool known = true;
    if (std::strcmp(env, "scalar") == 0) {
      requested = BatchDispatch::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = BatchDispatch::kAvx2;
    } else if (std::strcmp(env, "neon") == 0) {
      requested = BatchDispatch::kNeon;
    } else {
      known = false;
    }
    if (!known) {
      std::fprintf(stderr,
                   "dmpc: unknown DMPC_BATCH_EVAL value '%s' "
                   "(want scalar|avx2|neon|auto); using auto\n",
                   env);
      return widest_supported();
    }
    if (!dispatch_supported(requested)) {
      std::fprintf(stderr,
                   "dmpc: DMPC_BATCH_EVAL=%s unsupported on this host; "
                   "using %s\n",
                   env, batch_dispatch_name(widest_supported()));
      return widest_supported();
    }
    return requested;
  }();
  return choice;
}

std::atomic<int> g_forced{-1};

}  // namespace

const char* batch_dispatch_name(BatchDispatch dispatch) {
  switch (dispatch) {
    case BatchDispatch::kScalar:
      return "scalar";
    case BatchDispatch::kAvx2:
      return "avx2";
    case BatchDispatch::kNeon:
      return "neon";
  }
  return "unknown";
}

BatchDispatch batch_dispatch() {
  const int forced = g_forced.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<BatchDispatch>(forced);
  return env_dispatch();
}

std::vector<BatchDispatch> supported_batch_dispatches() {
  std::vector<BatchDispatch> paths{BatchDispatch::kScalar};
  if (dispatch_supported(BatchDispatch::kAvx2)) {
    paths.push_back(BatchDispatch::kAvx2);
  }
  if (dispatch_supported(BatchDispatch::kNeon)) {
    paths.push_back(BatchDispatch::kNeon);
  }
  return paths;
}

void set_batch_dispatch(BatchDispatch dispatch) {
  DMPC_CHECK_MSG(dispatch_supported(dispatch),
                 "batch dispatch " << batch_dispatch_name(dispatch)
                                   << " unsupported on this host");
  g_forced.store(static_cast<int>(dispatch), std::memory_order_release);
}

void reset_batch_dispatch() {
  g_forced.store(-1, std::memory_order_release);
}

void poly_eval_many(const Modulus& mod, const std::uint64_t* coeffs,
                    std::size_t k, const std::uint64_t* xs, std::size_t count,
                    std::uint64_t* out) {
  DMPC_CHECK_MSG(k >= 1 && k <= 16, "coefficient count out of range");
  if (count == 0) return;
  // Reduce coefficients once (Modulus::poly_eval reduces per Horner step;
  // same residues, hoisted out of the point loop).
  std::uint64_t c[16];
  for (std::size_t j = 0; j < k; ++j) c[j] = mod.reduce(coeffs[j]);
  if (mod.value() == kMersenne61) {
    switch (batch_dispatch()) {
#if DMPC_BATCH_EVAL_HAVE_AVX2
      case BatchDispatch::kAvx2:
        horner_avx2_m61(c, k, xs, count, out);
        return;
#endif
#if DMPC_BATCH_EVAL_HAVE_NEON
      case BatchDispatch::kNeon:
        horner_neon_m61(c, k, xs, count, out);
        return;
#endif
      default:
        break;
    }
    horner_scalar(mod, c, k, xs, count, out);
    return;
  }
  if (mod.value() < (std::uint64_t{1} << 63)) {
    // Exact for every p < 2^63 and dispatch-independent, so it serves the
    // scalar-forced path too.
    horner_shoup(mod, c, k, xs, count, out);
    return;
  }
  horner_scalar(mod, c, k, xs, count, out);
}

void PowerTable::build(const Modulus& mod, const std::uint64_t* xs,
                       std::size_t count, unsigned k) {
  DMPC_CHECK_MSG(k >= 1 && k <= 16, "power table degree out of range");
  p_ = mod.value();
  k_ = k;
  count_ = count;
  stride_ = (count + 3) & ~std::size_t{3};  // widest lane count (AVX2: 4)
  const std::size_t columns = k > 1 ? k - 1 : 0;
  powers_.resize(columns * stride_);
  if (columns == 0 || count == 0) return;
  std::uint64_t* x1 = powers_.data();
  for (std::size_t i = 0; i < count; ++i) x1[i] = mod.reduce(xs[i]);
  for (std::size_t i = count; i < stride_; ++i) x1[i] = 0;  // padded lanes
  for (unsigned j = 2; j <= columns; ++j) {
    const std::uint64_t* prev = powers_.data() + (j - 2) * stride_;
    std::uint64_t* cur = powers_.data() + (j - 1) * stride_;
    for (std::size_t i = 0; i < stride_; ++i) cur[i] = mod.mul(prev[i], x1[i]);
  }
}

void PowerTable::eval(const std::uint64_t* coeffs, std::uint64_t* out) const {
  DMPC_CHECK_MSG(k_ >= 1, "power table not built");
  if (count_ == 0) return;
  const Modulus mod(p_);
  std::uint64_t c[16];
  for (unsigned j = 0; j < k_; ++j) c[j] = mod.reduce(coeffs[j]);
  if (p_ == kMersenne61) {
    switch (batch_dispatch()) {
#if DMPC_BATCH_EVAL_HAVE_AVX2
      case BatchDispatch::kAvx2:
        table_eval_avx2_m61(powers_.data(), stride_, count_, c, k_, out);
        return;
#endif
#if DMPC_BATCH_EVAL_HAVE_NEON
      case BatchDispatch::kNeon:
        table_eval_neon_m61(powers_.data(), stride_, count_, c, k_, out);
        return;
#endif
      default:
        break;
    }
  } else if (p_ <= 0xFFFFFFFFULL) {
    // Hash families size their prime to the point domain, so small moduli
    // are the common case; 32-bit residues get single-multiply lanes.
    switch (batch_dispatch()) {
#if DMPC_BATCH_EVAL_HAVE_AVX2
      case BatchDispatch::kAvx2:
        table_eval_avx2_smallp(powers_.data(), stride_, count_, c, k_, p_,
                               out);
        return;
#endif
#if DMPC_BATCH_EVAL_HAVE_NEON
      case BatchDispatch::kNeon:
        table_eval_neon_smallp(powers_.data(), stride_, count_, c, k_, p_,
                               out);
        return;
#endif
      default:
        break;
    }
  }
  if (p_ != kMersenne61 && p_ < (std::uint64_t{1} << 63)) {
    table_eval_shoup(powers_.data(), stride_, count_, c, k_, p_, out);
    return;
  }
  for (std::size_t i = 0; i < count_; ++i) {
    std::uint64_t acc = c[0];
    for (unsigned j = 1; j < k_; ++j) {
      acc = mod.add(acc, mod.mul(powers_[(j - 1) * stride_ + i], c[j]));
    }
    out[i] = acc;
  }
}

}  // namespace dmpc::field
