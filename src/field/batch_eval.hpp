// Lane-parallel polynomial evaluation over Z_p (ROADMAP item 3).
//
// The derandomization inner loop evaluates one degree-(k-1) polynomial at
// many points (every node/edge a machine owns) for many candidate seeds —
// §2.3's h_s(x) = poly_s(x mod p), with p the Mersenne prime 2^61-1 for the
// large families. This kernel batches the point dimension:
//
//   poly_eval_many : one coefficient vector, a contiguous array of points.
//   PowerTable     : a fixed point set evaluated against MANY coefficient
//                    vectors (one per candidate seed). build() reduces the
//                    points and stores x^j column-major once; eval() is then
//                    a dependency-free multiply-accumulate per column, which
//                    vectorizes and pipelines where Horner's chain cannot.
//
// Three dispatch paths — AVX2 (x86-64), NEON (aarch64), portable scalar —
// are selected at runtime and are BIT-IDENTICAL: every path returns the
// canonical residue in [0, p), so results match Modulus::poly_eval exactly
// (property-tested in tests/test_batch_eval.cpp). The SIMD paths apply only
// to p = 2^61-1, whose branch-light split reduction (31/30-bit limbs, fold,
// one conditional subtract) needs no 128-bit product; other moduli take the
// scalar path under every dispatch, which keeps the identity trivial.
//
// Dispatch resolution order: the test override (set_batch_dispatch), then
// the DMPC_BATCH_EVAL environment variable ("scalar" | "avx2" | "neon" |
// "auto"), then the widest path the host supports. Unsupported requests
// fall back to scalar with a one-time warning — never an abort, so a CI job
// can pin DMPC_BATCH_EVAL=scalar on any host.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "field/modulus.hpp"

namespace dmpc::field {

enum class BatchDispatch : std::uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Stable lowercase name ("scalar" / "avx2" / "neon").
const char* batch_dispatch_name(BatchDispatch dispatch);

/// The path poly_eval_many / PowerTable::eval currently use for the
/// Mersenne-61 fast lane (scalar for every other modulus).
BatchDispatch batch_dispatch();

/// Every dispatch the host can actually run (always includes kScalar) —
/// tests iterate this to property-check bit-identity across paths.
std::vector<BatchDispatch> supported_batch_dispatches();

/// Force a dispatch path (tests / harnesses). Requesting an unsupported
/// path is a CheckFailure; call reset_batch_dispatch() to return to the
/// DMPC_BATCH_EVAL / host-detection resolution. Not thread-safe against
/// concurrent kernel calls — flip it only between evaluations.
void set_batch_dispatch(BatchDispatch dispatch);
void reset_batch_dispatch();

/// out[i] = poly(xs[i] mod p) for the k-coefficient polynomial
/// sum_j coeffs[j] * x^j (coeffs[0] constant). Coefficients are reduced mod
/// p on entry, points on load — exactly Modulus::poly_eval composed with
/// Modulus::reduce, bit-for-bit, on every dispatch path. count may be 0.
void poly_eval_many(const Modulus& mod, const std::uint64_t* coeffs,
                    std::size_t k, const std::uint64_t* xs, std::size_t count,
                    std::uint64_t* out);

/// Precomputed powers x^j (j in [1, k)) of a fixed point set, column-major
/// and padded to the widest lane count. Amortizes the point reduction and
/// the power chain across every seed evaluated against the set; eval() per
/// seed is then k-1 independent multiply-accumulate sweeps. build() reuses
/// the existing allocation when called again (arena idiom — a per-stage
/// objective rebuilds in place, and the steady-state sweep allocates
/// nothing).
class PowerTable {
 public:
  PowerTable() = default;

  /// Bind the table to `count` points under `mod`, storing powers up to
  /// x^(k-1). k >= 1, k <= 16 (hash family bound).
  void build(const Modulus& mod, const std::uint64_t* xs, std::size_t count,
             unsigned k);

  std::size_t count() const { return count_; }
  unsigned k() const { return k_; }
  std::uint64_t p() const { return p_; }

  /// out[i] = sum_j coeffs[j] * x_i^j mod p for all bound points.
  /// Requires exactly k() coefficients (reduced mod p on entry). Results are
  /// the canonical residues — bit-identical to Modulus::poly_eval.
  void eval(const std::uint64_t* coeffs, std::uint64_t* out) const;

 private:
  std::uint64_t p_ = 0;
  unsigned k_ = 0;
  std::size_t count_ = 0;
  std::size_t stride_ = 0;                // count padded to the lane width
  std::vector<std::uint64_t> powers_;     // powers_[(j-1)*stride_ + i] = x_i^j
};

}  // namespace dmpc::field
