#include "field/primes.hpp"

#include "field/modulus.hpp"
#include "support/check.hpp"

namespace dmpc::field {

namespace {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(static_cast<__uint128_t>(a) * b % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

bool miller_rabin(std::uint64_t n, std::uint64_t a) {
  if (a % n == 0) return true;
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  std::uint64_t x = powmod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 1; i < r; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (!miller_rabin(n, a)) return false;
  }
  return true;
}

std::uint64_t next_prime_at_least(std::uint64_t n) {
  if (n <= 2) return 2;
  std::uint64_t candidate = n | 1;  // first odd >= n
  while (!is_prime(candidate)) {
    DMPC_CHECK_MSG(candidate < (1ULL << 62) - 2, "prime search out of range");
    candidate += 2;
  }
  return candidate;
}

}  // namespace dmpc::field
