// Arithmetic modulo a (prime) 64-bit modulus.
//
// The k-wise independent hash families (src/hash, paper §2.3 / Lemma 6) are
// degree-(k-1) polynomials over Z_p for a prime p at least as large as the
// hash domain. All products go through 128-bit intermediates; the Mersenne
// prime 2^61-1 gets a branch-light reduction fast path since it is the
// default modulus for the large families H : [n^3] -> [n^3].
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace dmpc::field {

/// The Mersenne prime 2^61 - 1, the default modulus for large hash families.
inline constexpr std::uint64_t kMersenne61 = (1ULL << 61) - 1;

/// Immutable modulus; all operations are total on inputs already reduced
/// into [0, p).
class Modulus {
 public:
  explicit Modulus(std::uint64_t p) : p_(p) {
    DMPC_CHECK_MSG(p >= 2, "modulus must be >= 2");
    DMPC_CHECK_MSG(p < (1ULL << 62), "modulus must fit 62 bits");
  }

  std::uint64_t value() const { return p_; }

  std::uint64_t reduce(std::uint64_t x) const { return x % p_; }

  std::uint64_t add(std::uint64_t a, std::uint64_t b) const {
    std::uint64_t s = a + b;
    if (s >= p_) s -= p_;
    return s;
  }

  std::uint64_t sub(std::uint64_t a, std::uint64_t b) const {
    return a >= b ? a - b : a + p_ - b;
  }

  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const {
    const __uint128_t prod = static_cast<__uint128_t>(a) * b;
    if (p_ == kMersenne61) {
      // x mod (2^61-1): fold high bits onto low bits twice.
      std::uint64_t lo = static_cast<std::uint64_t>(prod) & kMersenne61;
      std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
      std::uint64_t s = lo + hi;
      if (s >= kMersenne61) s -= kMersenne61;
      return s;
    }
    return static_cast<std::uint64_t>(prod % p_);
  }

  std::uint64_t pow(std::uint64_t base, std::uint64_t exp) const;

  /// Multiplicative inverse (p must be prime; a != 0).
  std::uint64_t inv(std::uint64_t a) const;

  /// Horner evaluation of sum_i coeffs[i] * x^i (coeffs[0] is the constant).
  std::uint64_t poly_eval(const std::vector<std::uint64_t>& coeffs,
                          std::uint64_t x) const;

 private:
  std::uint64_t p_;
};

}  // namespace dmpc::field
