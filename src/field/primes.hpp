// Deterministic 64-bit primality testing and prime search.
//
// Hash families need a prime modulus at least as large as their domain;
// next_prime_at_least supplies it. Miller–Rabin with the fixed witness set
// {2,3,5,7,11,13,17,19,23,29,31,37} is deterministic for all 64-bit inputs.
#pragma once

#include <cstdint>

namespace dmpc::field {

bool is_prime(std::uint64_t n);

/// Smallest prime >= n (n <= 2^62 so the result fits a Modulus).
std::uint64_t next_prime_at_least(std::uint64_t n);

}  // namespace dmpc::field
