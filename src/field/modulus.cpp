#include "field/modulus.hpp"

namespace dmpc::field {

std::uint64_t Modulus::pow(std::uint64_t base, std::uint64_t exp) const {
  std::uint64_t result = 1 % p_;
  base %= p_;
  while (exp > 0) {
    if (exp & 1) result = mul(result, base);
    base = mul(base, base);
    exp >>= 1;
  }
  return result;
}

std::uint64_t Modulus::inv(std::uint64_t a) const {
  DMPC_CHECK_MSG(a % p_ != 0, "zero has no inverse");
  // Fermat: a^(p-2) mod p, valid because all moduli we construct are prime.
  return pow(a, p_ - 2);
}

std::uint64_t Modulus::poly_eval(const std::vector<std::uint64_t>& coeffs,
                                 std::uint64_t x) const {
  std::uint64_t acc = 0;
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) {
    acc = add(mul(acc, x), *it % p_);
  }
  return acc;
}

}  // namespace dmpc::field
