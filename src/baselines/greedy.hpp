// Sequential greedy MIS and maximal matching — correctness references.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dmpc::baselines {

/// Greedy MIS in node-id order.
std::vector<bool> greedy_mis(const graph::Graph& g);

/// Greedy maximal matching in edge-id order.
std::vector<graph::EdgeId> greedy_matching(const graph::Graph& g);

}  // namespace dmpc::baselines
