#include "baselines/israeli_itai.hpp"

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dmpc::baselines {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

IsraeliItaiResult israeli_itai(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  IsraeliItaiResult result;
  std::vector<bool> alive(g.num_nodes(), true);

  while (graph::alive_edge_count(g, alive) > 0) {
    ++result.iterations;
    // Phase 1: every alive non-isolated node proposes to a uniformly random
    // alive neighbor.
    std::vector<NodeId> proposal(g.num_nodes(), graph::kNoNode);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!alive[v]) continue;
      std::vector<NodeId> alive_nb;
      for (NodeId u : g.neighbors(v)) {
        if (alive[u]) alive_nb.push_back(u);
      }
      if (alive_nb.empty()) continue;
      proposal[v] = alive_nb[rng.next_below(alive_nb.size())];
    }
    // Phase 2: a node with incoming proposals accepts one at random; the
    // accepted proposal edge joins a candidate set, which is then thinned to
    // a matching by random coin flips on conflicts (we keep it simple and
    // accept greedily in random order — still a valid matching step with
    // constant expected progress).
    auto order = rng.permutation(g.num_nodes());
    std::vector<bool> used(g.num_nodes(), false);
    bool progressed = false;
    for (NodeId v : order) {
      const NodeId u = proposal[v];
      if (u == graph::kNoNode || used[v] || used[u]) continue;
      const EdgeId e = g.find_edge(v, u);
      DMPC_CHECK(e != graph::kNoEdge);
      result.matching.push_back(e);
      used[v] = used[u] = true;
      alive[v] = alive[u] = false;
      progressed = true;
    }
    DMPC_CHECK_MSG(progressed, "Israeli-Itai round made no progress");
  }
  return result;
}

}  // namespace dmpc::baselines
