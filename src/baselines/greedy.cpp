#include "baselines/greedy.hpp"

namespace dmpc::baselines {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

std::vector<bool> greedy_mis(const Graph& g) {
  std::vector<bool> in_set(g.num_nodes(), false);
  std::vector<bool> blocked(g.num_nodes(), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (blocked[v]) continue;
    in_set[v] = true;
    for (NodeId u : g.neighbors(v)) blocked[u] = true;
  }
  return in_set;
}

std::vector<EdgeId> greedy_matching(const Graph& g) {
  std::vector<EdgeId> matching;
  std::vector<bool> used(g.num_nodes(), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    if (!used[ed.u] && !used[ed.v]) {
      matching.push_back(e);
      used[ed.u] = used[ed.v] = true;
    }
  }
  return matching;
}

}  // namespace dmpc::baselines
