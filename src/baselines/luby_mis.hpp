// Luby's randomized MIS (paper §2.1, Algorithm 1).
//
// Each round every alive node draws a random priority; a node joins the
// independent set iff its priority beats all alive neighbors; the set and
// its neighborhood are removed. O(log n) rounds w.h.p. This is the
// algorithm our deterministic pipeline derandomizes, and the E10 baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dmpc::baselines {

struct LubyMisResult {
  std::vector<bool> in_set;
  std::uint64_t iterations = 0;
  /// |E| remaining after each iteration (progress trace for E10).
  std::vector<graph::EdgeId> edges_after;
};

/// Full-independence variant: fresh 64-bit priorities each round.
LubyMisResult luby_mis(const graph::Graph& g, std::uint64_t seed);

/// Pairwise-independence variant: priorities come from a pairwise family,
/// one fresh seed per round — the version Luby showed suffices (and the
/// randomness budget our derandomization assumes).
LubyMisResult luby_mis_pairwise(const graph::Graph& g, std::uint64_t seed);

}  // namespace dmpc::baselines
