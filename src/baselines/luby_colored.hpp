// The §5.1 randomized algorithm: Luby phases whose priorities are drawn
// from the small pairwise family H* over a distance-2 coloring, so each
// phase consumes an O(log Delta)-bit seed instead of O(log n) bits.
//
// This is the randomized algorithm the §5 pipeline derandomizes; it serves
// as the bridge baseline between classic Luby (full randomness) and the
// deterministic phase compression.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dmpc::baselines {

struct ColoredLubyResult {
  std::vector<bool> in_set;
  std::uint64_t phases = 0;
  std::uint32_t colors = 0;         ///< Distance-2 palette size used.
  std::uint64_t seed_bits_per_phase = 0;
};

/// Randomized MIS with per-phase O(log Delta)-bit seeds (§5.1).
ColoredLubyResult luby_mis_colored(const graph::Graph& g, std::uint64_t seed);

}  // namespace dmpc::baselines
