// Israeli–Itai randomized maximal matching [IPL'86] — the classic two-phase
// proposal algorithm, included as an independent randomized baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dmpc::baselines {

struct IsraeliItaiResult {
  std::vector<graph::EdgeId> matching;
  std::uint64_t iterations = 0;
};

IsraeliItaiResult israeli_itai(const graph::Graph& g, std::uint64_t seed);

}  // namespace dmpc::baselines
