#include "baselines/luby_mis.hpp"

#include <functional>

#include "hash/kwise.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dmpc::baselines {

using graph::Graph;
using graph::NodeId;

namespace {

/// One Luby round given per-node priorities: local minima join, winners and
/// their neighbors die. Returns whether anything changed.
bool luby_round(const Graph& g, std::vector<bool>& alive,
                std::vector<bool>& in_set,
                const std::vector<std::uint64_t>& priority) {
  std::vector<bool> joins(g.num_nodes(), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!alive[v]) continue;
    bool is_min = true;
    for (NodeId u : g.neighbors(v)) {
      if (!alive[u]) continue;
      // Ties broken by id so the round is well-defined for any priorities.
      if (priority[u] < priority[v] ||
          (priority[u] == priority[v] && u < v)) {
        is_min = false;
        break;
      }
    }
    if (is_min) joins[v] = true;
  }
  bool changed = false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!joins[v]) continue;
    changed = true;
    in_set[v] = true;
    alive[v] = false;
    for (NodeId u : g.neighbors(v)) alive[u] = false;
  }
  return changed;
}

LubyMisResult run(const Graph& g,
                  const std::function<void(std::vector<std::uint64_t>&)>&
                      draw_priorities) {
  LubyMisResult result;
  result.in_set.assign(g.num_nodes(), false);
  std::vector<bool> alive(g.num_nodes(), true);
  std::vector<std::uint64_t> priority(g.num_nodes());
  while (graph::alive_edge_count(g, alive) > 0) {
    draw_priorities(priority);
    const bool changed = luby_round(g, alive, result.in_set, priority);
    DMPC_CHECK_MSG(changed, "Luby round made no progress");
    ++result.iterations;
    result.edges_after.push_back(graph::alive_edge_count(g, alive));
  }
  // Isolated survivors join the set.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive[v]) result.in_set[v] = true;
  }
  return result;
}

}  // namespace

LubyMisResult luby_mis(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  return run(g, [&rng](std::vector<std::uint64_t>& priority) {
    for (auto& p : priority) p = rng.next_u64();
  });
}

LubyMisResult luby_mis_pairwise(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t domain =
      std::max<std::uint64_t>(2, g.num_nodes());
  // Domain/range n^3 per the paper's convention (§2.3), capped for safety.
  const std::uint64_t cube =
      domain < (1u << 21) ? domain * domain * domain : domain;
  hash::KWiseFamily family(cube, cube, /*k=*/2);
  return run(g, [&](std::vector<std::uint64_t>& priority) {
    const auto fn = family.at(rng.next_u64() % family.seed_count());
    for (NodeId v = 0; v < priority.size(); ++v) priority[v] = fn.raw(v);
  });
}

}  // namespace dmpc::baselines
