#include "baselines/luby_matching.hpp"

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dmpc::baselines {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

LubyMatchingResult luby_matching(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  LubyMatchingResult result;
  std::vector<bool> alive(g.num_nodes(), true);
  std::vector<std::uint64_t> priority(g.num_edges());

  auto edge_alive = [&](EdgeId e) {
    return alive[g.edge(e).u] && alive[g.edge(e).v];
  };

  while (graph::alive_edge_count(g, alive) > 0) {
    for (auto& p : priority) p = rng.next_u64();
    // An edge joins iff it is a local minimum among alive adjacent edges.
    std::vector<EdgeId> joiners;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!edge_alive(e)) continue;
      bool is_min = true;
      for (NodeId endpoint : {g.edge(e).u, g.edge(e).v}) {
        for (EdgeId f : g.incident_edges(endpoint)) {
          if (f == e || !edge_alive(f)) continue;
          if (priority[f] < priority[e] ||
              (priority[f] == priority[e] && f < e)) {
            is_min = false;
            break;
          }
        }
        if (!is_min) break;
      }
      if (is_min) joiners.push_back(e);
    }
    DMPC_CHECK_MSG(!joiners.empty(), "Luby matching round made no progress");
    for (EdgeId e : joiners) {
      result.matching.push_back(e);
      alive[g.edge(e).u] = false;
      alive[g.edge(e).v] = false;
    }
    ++result.iterations;
    result.edges_after.push_back(graph::alive_edge_count(g, alive));
  }
  return result;
}

}  // namespace dmpc::baselines
