// Luby-style randomized maximal matching: MIS on the line graph, executed
// directly on G (each edge draws a priority; local-minimum edges join the
// matching; matched nodes are removed).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dmpc::baselines {

struct LubyMatchingResult {
  std::vector<graph::EdgeId> matching;
  std::uint64_t iterations = 0;
  std::vector<graph::EdgeId> edges_after;
};

LubyMatchingResult luby_matching(const graph::Graph& g, std::uint64_t seed);

}  // namespace dmpc::baselines
