#include "baselines/luby_colored.hpp"

#include "hash/small_family.hpp"
#include "lowdeg/coloring.hpp"
#include "support/check.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace dmpc::baselines {

using graph::Graph;
using graph::NodeId;

ColoredLubyResult luby_mis_colored(const Graph& g, std::uint64_t seed) {
  ColoredLubyResult result;
  result.in_set.assign(g.num_nodes(), false);
  if (g.num_nodes() == 0) return result;
  std::vector<bool> alive(g.num_nodes(), true);
  if (g.num_edges() == 0) {
    result.in_set.assign(g.num_nodes(), true);
    return result;
  }

  const auto coloring = lowdeg::distance2_coloring_raw(g);
  result.colors = coloring.num_colors;
  hash::SmallFamily family(std::max<std::uint32_t>(coloring.num_colors, 2));
  result.seed_bits_per_phase =
      2 * ceil_log2(std::max<std::uint64_t>(family.p(), 2));

  Rng rng(seed);
  while (graph::alive_edge_count(g, alive) > 0) {
    ++result.phases;
    const auto fn = family.at(rng.next_below(family.seed_count()));
    // Priorities per color class; distance-2 distinct colors make adjacent
    // (and 2-hop) nodes' priorities pairwise independent.
    std::vector<NodeId> winners;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!alive[v]) continue;
      const std::uint64_t zv = fn.raw(coloring.color[v]);
      bool is_min = true;
      bool has_live_neighbor = false;
      for (NodeId u : g.neighbors(v)) {
        if (!alive[u]) continue;
        has_live_neighbor = true;
        const std::uint64_t zu = fn.raw(coloring.color[u]);
        if (zu < zv || (zu == zv && u < v)) {
          is_min = false;
          break;
        }
      }
      if (is_min && has_live_neighbor) winners.push_back(v);
    }
    DMPC_CHECK_MSG(!winners.empty(), "colored Luby phase made no progress");
    for (NodeId v : winners) {
      result.in_set[v] = true;
      alive[v] = false;
      for (NodeId u : g.neighbors(v)) alive[u] = false;
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (alive[v]) result.in_set[v] = true;
  }
  return result;
}

}  // namespace dmpc::baselines
