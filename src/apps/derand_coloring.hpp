// Native derandomized (Delta+1)-coloring — the framework applied to a third
// problem (§6: "our method ... will prove useful for derandomizing many
// more problems").
//
// The randomized template is the classic one-round trial coloring: every
// uncolored node proposes the color h(v) mod |palette_v| from its remaining
// palette; a proposal sticks if no uncolored neighbor proposed the same
// color and no colored neighbor owns it. With pairwise independence a
// constant fraction of nodes sticks in expectation, so O(log n) rounds
// finish. Derandomization is exactly the paper's recipe: the per-round seed
// is committed by the deterministic batched search with the objective
// "number of nodes that stick" — O(1) MPC rounds per trial round.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/metrics.hpp"

namespace dmpc::apps {

struct DerandColoringConfig {
  std::uint64_t candidates_per_round = 16;  ///< Seeds per committed round.
  std::uint64_t max_rounds = 100000;
};

struct DerandColoringResult {
  std::vector<std::uint32_t> color;  ///< Proper, in [0, Delta+1).
  std::uint32_t colors_used = 0;
  std::uint64_t rounds = 0;          ///< Outer trial rounds.
  mpc::Metrics metrics;
};

DerandColoringResult derand_coloring(const graph::Graph& g,
                                     const DerandColoringConfig& config = {});

}  // namespace dmpc::apps
