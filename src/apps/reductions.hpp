// Classic reductions on top of the deterministic MIS / maximal matching
// solvers — the downstream problems the paper's introduction motivates
// (vertex cover, domination, coloring). Everything inherits determinism and
// the MPC cost model from the underlying Theorem-1 solvers.
#pragma once

#include <cstdint>
#include <vector>

#include "api/solve_types.hpp"
#include "graph/graph.hpp"

namespace dmpc::apps {

/// 2-approximate minimum vertex cover: the endpoints of any maximal
/// matching. |cover| <= 2 OPT since OPT must hit every matching edge.
struct VertexCoverResult {
  std::vector<bool> in_cover;
  std::uint64_t cover_size = 0;
  std::uint64_t matching_size = 0;  ///< Lower bound on OPT.
  SolveReport report;
};
VertexCoverResult vertex_cover_2approx(const graph::Graph& g,
                                       const SolveOptions& options = {});

/// Dominating set: every MIS is a dominating set (a non-member that were
/// undominated could join, contradicting maximality).
struct DominatingSetResult {
  std::vector<bool> in_set;
  std::uint64_t set_size = 0;
  SolveReport report;
};
DominatingSetResult dominating_set(const graph::Graph& g,
                                   const SolveOptions& options = {});

/// (Delta+1)-coloring via Luby's reduction: build H = G x K_{Delta+1}
/// (node (v, c); edges (v,c)-(u,c) for {u,v} in E and (v,c)-(v,c') for
/// c != c') and take an MIS of H. Each node gets at most one color by the
/// palette clique; maximality forces at least one (a node's <= Delta
/// neighbors can block at most Delta of the Delta+1 palette entries).
struct ColoringResult {
  std::vector<std::uint32_t> color;  ///< In [0, Delta+1).
  std::uint32_t colors_used = 0;
  SolveReport report;
};
ColoringResult delta_plus_one_coloring(const graph::Graph& g,
                                       const SolveOptions& options = {});

}  // namespace dmpc::apps
