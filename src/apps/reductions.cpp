#include "apps/reductions.hpp"

#include <algorithm>

#include "api/solver.hpp"
#include "graph/builder.hpp"
#include "graph/validate.hpp"
#include "support/check.hpp"

namespace dmpc::apps {

using graph::Graph;
using graph::NodeId;

VertexCoverResult vertex_cover_2approx(const Graph& g,
                                       const SolveOptions& options) {
  VertexCoverResult result;
  auto matching = Solver(options).maximal_matching(g);
  result.in_cover.assign(g.num_nodes(), false);
  for (const auto e : matching.matching) {
    result.in_cover[g.edge(e).u] = true;
    result.in_cover[g.edge(e).v] = true;
  }
  result.matching_size = matching.matching.size();
  result.cover_size = 2 * result.matching_size;
  result.report = std::move(matching.report);
  // Soundness: maximality of the matching means every edge touches a
  // matched node.
  for (const auto& e : g.edges()) {
    DMPC_CHECK_MSG(result.in_cover[e.u] || result.in_cover[e.v],
                   "vertex cover misses an edge");
  }
  return result;
}

DominatingSetResult dominating_set(const Graph& g,
                                   const SolveOptions& options) {
  DominatingSetResult result;
  auto mis = Solver(options).mis(g);
  result.in_set = std::move(mis.in_set);
  result.set_size = static_cast<std::uint64_t>(
      std::count(result.in_set.begin(), result.in_set.end(), true));
  result.report = std::move(mis.report);
  return result;
}

ColoringResult delta_plus_one_coloring(const Graph& g,
                                       const SolveOptions& options) {
  ColoringResult result;
  const std::uint32_t palette = g.max_degree() + 1;
  result.color.assign(g.num_nodes(), 0);
  if (g.num_nodes() == 0) return result;

  // Product graph H on n * palette nodes; (v, c) -> v * palette + c.
  graph::GraphBuilder b(g.num_nodes() * palette);
  auto id = [palette](NodeId v, std::uint32_t c) { return v * palette + c; };
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t c = 0; c < palette; ++c) {
      for (std::uint32_t c2 = c + 1; c2 < palette; ++c2) {
        b.add_edge(id(v, c), id(v, c2));
      }
    }
  }
  for (const auto& e : g.edges()) {
    for (std::uint32_t c = 0; c < palette; ++c) {
      b.add_edge(id(e.u, c), id(e.v, c));
    }
  }
  const Graph h = std::move(b).build();

  auto mis = Solver(options).mis(h);
  std::vector<bool> colored(g.num_nodes(), false);
  std::uint32_t max_color = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (std::uint32_t c = 0; c < palette; ++c) {
      if (mis.in_set[id(v, c)]) {
        DMPC_CHECK_MSG(!colored[v], "node received two colors");
        colored[v] = true;
        result.color[v] = c;
        max_color = std::max(max_color, c);
      }
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    DMPC_CHECK_MSG(colored[v], "node left uncolored — MIS not maximal?");
  }
  DMPC_CHECK(graph::is_proper_coloring(g, result.color));
  result.colors_used = max_color + 1;
  result.report = std::move(mis.report);
  return result;
}

}  // namespace dmpc::apps
