#include "apps/derand_coloring.hpp"

#include <algorithm>

#include "graph/validate.hpp"
#include "hash/kwise.hpp"
#include "mpc/cluster.hpp"
#include "support/check.hpp"
#include "support/math.hpp"

namespace dmpc::apps {

using graph::Graph;
using graph::NodeId;

namespace {

constexpr std::uint32_t kUncolored = UINT32_MAX;

/// Nodes that stick under seed `fn`: proposal = remaining_palette[h mod
/// size]; sticks iff no uncolored neighbor proposes the same color (ties on
/// proposals broken in the node's favour only when ids differ... both drop
/// on a clash, the standard symmetric rule) and no colored neighbor owns it.
std::vector<std::pair<NodeId, std::uint32_t>> sticking(
    const Graph& g, const std::vector<std::uint32_t>& color,
    const std::vector<std::vector<std::uint32_t>>& palette,
    const hash::HashFn& fn) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> proposal(n, kUncolored);
  for (NodeId v = 0; v < n; ++v) {
    if (color[v] != kUncolored) continue;
    const auto& options = palette[v];
    DMPC_CHECK_MSG(!options.empty(), "palette exhausted — not (Delta+1)?");
    proposal[v] = options[fn.raw(v) % options.size()];
  }
  std::vector<std::pair<NodeId, std::uint32_t>> stuck;
  for (NodeId v = 0; v < n; ++v) {
    if (proposal[v] == kUncolored) continue;
    bool ok = true;
    for (NodeId u : g.neighbors(v)) {
      if (proposal[u] == proposal[v] || color[u] == proposal[v]) {
        ok = false;
        break;
      }
    }
    if (ok) stuck.emplace_back(v, proposal[v]);
  }
  return stuck;
}

}  // namespace

DerandColoringResult derand_coloring(const Graph& g,
                                     const DerandColoringConfig& config) {
  DerandColoringResult result;
  const NodeId n = g.num_nodes();
  result.color.assign(n, 0);
  if (n == 0) return result;

  // Model: the cluster mirrors the MIS pipeline's provisioning.
  mpc::ClusterConfig cc;
  cc.machine_space = std::max<std::uint64_t>(
      64, 8 * ipow_real(std::max<std::uint64_t>(n, 2), 0.5));
  cc.num_machines = ceil_div(8 * (2 * g.num_edges() + n + 2),
                             cc.machine_space) + 1;
  mpc::Cluster cluster(cc);

  std::vector<std::uint32_t> color(n, kUncolored);
  std::vector<std::vector<std::uint32_t>> palette(n);
  const std::uint32_t palette_size = g.max_degree() + 1;
  for (NodeId v = 0; v < n; ++v) {
    palette[v].resize(palette_size);
    for (std::uint32_t c = 0; c < palette_size; ++c) palette[v][c] = c;
  }

  const std::uint64_t domain = std::max<std::uint64_t>(2, n);
  hash::KWiseFamily family(domain, domain, /*k=*/2);

  std::uint64_t remaining = n;
  while (remaining > 0) {
    DMPC_CHECK_MSG(result.rounds < config.max_rounds, "round cap exceeded");
    ++result.rounds;
    // Deterministic best-of-K seed commit: objective = #sticking nodes.
    // One O(1)-round aggregation evaluates the whole batch (§2.4 recipe).
    const std::uint64_t depth =
        cluster.tree_depth(std::max<std::uint64_t>(n, 2));
    cluster.charge_recoverable(2 * depth + 2, "coloring/commit");
    cluster.metrics().add_communication(
        config.candidates_per_round * cluster.machines(), "coloring/commit");
    std::vector<std::pair<NodeId, std::uint32_t>> best;
    std::uint64_t trial = 0;
    while (best.empty()) {
      // A fruitless batch is possible (a pathological seed set); the family
      // provably contains a working seed (E[stick] > 0), so keep walking.
      DMPC_CHECK_MSG(trial < (1ULL << 20),
                     "coloring seed space exhausted — guarantee violated");
      for (std::uint64_t t = 0; t < config.candidates_per_round; ++t, ++trial) {
        const auto seed = static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(trial) * 0xBF58476D1CE4E5B9ULL +
             result.rounds * 0x9E3779B97F4A7C15ULL) %
            family.seed_count());
        auto stuck = sticking(g, color, palette, family.at(seed));
        if (stuck.size() > best.size()) best = std::move(stuck);
      }
    }
    for (const auto& [v, c] : best) {
      color[v] = c;
      --remaining;
      for (NodeId u : g.neighbors(v)) {
        auto& options = palette[u];
        options.erase(std::remove(options.begin(), options.end(), c),
                      options.end());
      }
    }
  }

  result.color.assign(color.begin(), color.end());
  DMPC_CHECK(graph::is_proper_coloring(g, result.color));
  std::uint32_t max_color = 0;
  for (NodeId v = 0; v < n; ++v) max_color = std::max(max_color, color[v]);
  result.colors_used = max_color + 1;
  result.metrics = cluster.metrics();
  return result;
}

}  // namespace dmpc::apps
