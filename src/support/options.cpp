#include "support/options.hpp"

#include <cstdlib>

namespace dmpc {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& key,
                                std::int64_t fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace dmpc
