#include "support/options.hpp"

#include <cstdint>
#include <cstdlib>

#include "support/parse_error.hpp"

namespace dmpc {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& key,
                                std::int64_t fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::int64_t ArgParser::require_int(const std::string& key,
                                    std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  const bool negative = !text.empty() && text[0] == '-';
  std::uint64_t magnitude = 0;
  bool overflow = false;
  if (!parse::parse_u64(negative ? text.substr(1) : text, &magnitude,
                        &overflow)) {
    if (overflow) {
      throw ParseError(ParseErrorCode::kOverflow,
                       "value of --" + key + " exceeds 64-bit range", 0, 0,
                       parse::clip(text));
    }
    throw ParseError(ParseErrorCode::kBadToken,
                     "value of --" + key + " must be an integer", 0, 0,
                     parse::clip(text));
  }
  const std::uint64_t limit =
      negative ? (1ull << 63) : static_cast<std::uint64_t>(INT64_MAX);
  if (magnitude > limit) {
    throw ParseError(ParseErrorCode::kOverflow,
                     "value of --" + key + " exceeds 64-bit range", 0, 0,
                     parse::clip(text));
  }
  if (negative) {
    // Negate in unsigned space: well-defined even for INT64_MIN's magnitude.
    return static_cast<std::int64_t>(~magnitude + 1);
  }
  return static_cast<std::int64_t>(magnitude);
}

double ArgParser::require_double(const std::string& key,
                                 double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size()) {
    throw ParseError(ParseErrorCode::kBadToken,
                     "value of --" + key + " must be a number", 0, 0,
                     parse::clip(text));
  }
  return value;
}

}  // namespace dmpc
