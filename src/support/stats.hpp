// Summary statistics used by benchmarks and experiment reports.
#pragma once

#include <cstdint>
#include <vector>

namespace dmpc {

/// Streaming accumulator for min/max/mean/variance of a numeric series.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double variance() const;  ///< Population variance.
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double min_ = 0, max_ = 0, sum_ = 0, sum_sq_ = 0;
};

/// Exact percentile of a sample (linear interpolation between order stats).
double percentile(std::vector<double> values, double p);

/// Simple fixed-width histogram over [lo, hi] with `bins` buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Least-squares fit y = a + b*x; used to verify O(log n) round scaling.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r_squared = 0;
};
LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

}  // namespace dmpc
