#include "support/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace dmpc {

namespace {

/// Initial threshold: DMPC_LOG_LEVEL=debug|info|warn|error|off if set and
/// recognized, else Warn. Read once, before any logging call.
int initial_level() {
  const char* env = std::getenv("DMPC_LOG_LEVEL");
  if (env != nullptr) {
    const std::string value(env);
    if (value == "debug") return static_cast<int>(LogLevel::kDebug);
    if (value == "info") return static_cast<int>(LogLevel::kInfo);
    if (value == "warn") return static_cast<int>(LogLevel::kWarn);
    if (value == "error") return static_cast<int>(LogLevel::kError);
    if (value == "off") return static_cast<int>(LogLevel::kOff);
    std::cerr << "[dmpc WARN] unknown DMPC_LOG_LEVEL '" << value
              << "' (want debug|info|warn|error|off); using warn\n";
  }
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int>& level_storage() {
  static std::atomic<int> g_level{initial_level()};
  return g_level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) {
  level_storage() = static_cast<int>(level);
}

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load());
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::cerr << "[dmpc " << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace dmpc
