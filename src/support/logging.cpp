#include "support/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace dmpc {

namespace {

/// Initial threshold: DMPC_LOG_LEVEL if set and recognized, else Warn.
/// Read once, before any logging call, so the unknown-value warning is
/// emitted at most once per process.
int initial_level() {
  const char* env = std::getenv("DMPC_LOG_LEVEL");
  if (env != nullptr) {
    LogLevel level = LogLevel::kWarn;
    if (parse_log_level(env, level)) return static_cast<int>(level);
    std::cerr << "[dmpc WARN] unknown DMPC_LOG_LEVEL '" << env
              << "' (want debug|info|warn|error|off); using warn\n";
  }
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int>& level_storage() {
  static std::atomic<int> g_level{initial_level()};
  return g_level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

bool parse_log_level(const std::string& value, LogLevel& out) {
  const std::size_t begin = value.find_first_not_of(" \t");
  if (begin == std::string::npos) return false;
  const std::size_t end = value.find_last_not_of(" \t");
  std::string token = value.substr(begin, end - begin + 1);
  for (char& c : token) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (token == "debug") out = LogLevel::kDebug;
  else if (token == "info") out = LogLevel::kInfo;
  else if (token == "warn") out = LogLevel::kWarn;
  else if (token == "error") out = LogLevel::kError;
  else if (token == "off") out = LogLevel::kOff;
  else return false;
  return true;
}

void set_log_level(LogLevel level) {
  level_storage() = static_cast<int>(level);
}

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load());
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::cerr << "[dmpc " << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace dmpc
