#include "support/logging.hpp"

#include <atomic>
#include <iostream>

namespace dmpc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::cerr << "[dmpc " << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace dmpc
